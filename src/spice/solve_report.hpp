// Structured diagnostics for one nonlinear solve.
//
// Before this existed, the only record of how a DC/transient solve went was
// the what() string of a thrown ConvergenceError -- useless for campaign
// telemetry and for the rescue ladder, which must decide (deterministically)
// whether a retry with different numerics could help.  SolveReport is filled
// in by detail::newtonSolve / dcSolveLadder / runTransient as they run and
// surfaced through SimSession::solverTelemetry(), for successful solves and
// failed ones alike.
#ifndef VSSTAT_SPICE_SOLVE_REPORT_HPP
#define VSSTAT_SPICE_SOLVE_REPORT_HPP

#include <cstdint>

namespace vsstat::spice {

/// Terminal state of a solve attempt.
enum class SolveOutcome : std::uint8_t {
  ok,              ///< converged
  nonConvergence,  ///< iteration budget exhausted on every homotopy rung
  singular,        ///< Jacobian singular to working precision at the end
  nonFinite,       ///< NaN/Inf in residual, solution, or device evaluation
};

[[nodiscard]] inline const char* toString(SolveOutcome o) noexcept {
  switch (o) {
    case SolveOutcome::ok: return "ok";
    case SolveOutcome::nonConvergence: return "non-convergence";
    case SolveOutcome::singular: return "singular";
    case SolveOutcome::nonFinite: return "non-finite";
  }
  return "non-convergence";
}

/// Homotopy rungs of the DC ladder, in escalation order.
inline constexpr int kRungPlainNewton = 0;
inline constexpr int kRungGminStepping = 1;
inline constexpr int kRungSourceStepping = 2;

/// Diagnostics accumulated across one solve (DC operating point, one sweep
/// point, or a whole transient).  Counters are cumulative over every Newton
/// attempt the solve made, including failed homotopy rungs.
struct SolveReport {
  SolveOutcome outcome = SolveOutcome::ok;
  int iterations = 0;        ///< Newton iterations summed over all attempts
  int homotopyRung = 0;      ///< deepest rung reached (kRung* constants)
  double finalResidual = 0.0;  ///< residual inf-norm at the last iteration
  std::uint64_t pivotFallbacks = 0;  ///< reuse-mode breakdown re-pivots
  bool sawSingular = false;  ///< any refactor hit a singular matrix
  bool sawNonFinite = false;  ///< any residual/device output went NaN/Inf
  /// The solve's first iterate came from a statistical-tier warm-start
  /// predictor (a previous sample's converged state) instead of the zero
  /// guess.  Always false under ToleranceTier::perSample.
  bool warmStarted = false;

  void reset() noexcept { *this = SolveReport{}; }
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_SOLVE_REPORT_HPP
