// Independent source waveforms: DC, PULSE and PWL (the subset of SPICE
// source types the paper's benchmark circuits need).
#ifndef VSSTAT_SPICE_SOURCE_HPP
#define VSSTAT_SPICE_SOURCE_HPP

#include <utility>
#include <vector>

namespace vsstat::spice {

/// Value-semantic source waveform.
class SourceWaveform {
 public:
  /// Constant value.
  [[nodiscard]] static SourceWaveform dc(double value);

  /// SPICE PULSE(v1 v2 delay rise fall width period).  `period <= 0` means
  /// a single pulse.
  [[nodiscard]] static SourceWaveform pulse(double v1, double v2, double delay,
                                            double rise, double fall,
                                            double width, double period = 0.0);

  /// Piecewise-linear waveform; points must be time-sorted.  Holds the first
  /// value before the first point and the last value after the last point.
  [[nodiscard]] static SourceWaveform pwl(
      std::vector<std::pair<double, double>> points);

  [[nodiscard]] double valueAt(double time) const;

  /// Value used by DC analyses (time-zero value).
  [[nodiscard]] double dcValue() const { return valueAt(0.0); }

  /// Replaces a DC waveform's level (used by DC sweeps); converts any
  /// waveform into a DC one.
  void setDcLevel(double value);

 private:
  enum class Kind { Dc, Pulse, Pwl };

  SourceWaveform() = default;

  Kind kind_ = Kind::Dc;
  double dcValue_ = 0.0;
  // PULSE fields
  double v1_ = 0.0, v2_ = 0.0, delay_ = 0.0, rise_ = 0.0, fall_ = 0.0,
         width_ = 0.0, period_ = 0.0;
  std::vector<std::pair<double, double>> points_;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_SOURCE_HPP
