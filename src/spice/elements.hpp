// Concrete circuit elements: R, C, I, V, and the MOSFET wrapper that adapts
// a compact model (VS or BsimLite) to the Newton MNA engine.
#ifndef VSSTAT_SPICE_ELEMENTS_HPP
#define VSSTAT_SPICE_ELEMENTS_HPP

#include <cstdint>
#include <memory>

#include "models/device.hpp"
#include "spice/element.hpp"
#include "spice/source.hpp"

namespace vsstat::spice {

class ResistorElement final : public Element {
 public:
  ResistorElement(std::string name, NodeId a, NodeId b, double ohms);
  void load(LoadContext& ctx) const override;

 private:
  NodeId a_;
  NodeId b_;
  double conductance_;
};

class CapacitorElement final : public Element {
 public:
  CapacitorElement(std::string name, NodeId a, NodeId b, double farads);
  void load(LoadContext& ctx) const override;
  [[nodiscard]] int chargeSlots() const noexcept override { return 1; }

 private:
  NodeId a_;
  NodeId b_;
  double capacitance_;
};

class CurrentSourceElement final : public Element {
 public:
  CurrentSourceElement(std::string name, NodeId from, NodeId to,
                       SourceWaveform waveform);
  void load(LoadContext& ctx) const override;

 private:
  NodeId from_;
  NodeId to_;
  SourceWaveform waveform_;
};

class VoltageSourceElement final : public Element {
 public:
  VoltageSourceElement(std::string name, NodeId pos, NodeId neg,
                       SourceWaveform waveform);
  void load(LoadContext& ctx) const override;
  [[nodiscard]] int branchCount() const noexcept override { return 1; }

  void setWaveform(SourceWaveform w) noexcept { waveform_ = std::move(w); }
  [[nodiscard]] const SourceWaveform& waveform() const noexcept {
    return waveform_;
  }
  /// Convenience for DC sweeps.
  void setDcLevel(double value) { waveform_.setDcLevel(value); }

  [[nodiscard]] NodeId positiveNode() const noexcept { return pos_; }
  [[nodiscard]] NodeId negativeNode() const noexcept { return neg_; }

 private:
  NodeId pos_;
  NodeId neg_;
  SourceWaveform waveform_;
};

/// Finite-difference step for compact models without analytic Newton-load
/// chains: above the models' smoothness scale, below circuit resolution.
/// Shared by the scalar element load and the batched device bank so the
/// two paths hand models identical inputs.
inline constexpr double kMosfetFdStep = 1e-3;

/// MOSFET element.  Owns the per-instance compact-model card (each Monte
/// Carlo sample clones the nominal model and applies its mismatch deltas).
/// Polarity mapping to the N-canonical model convention happens here:
/// canonical voltages are sign*(vg - vs) and sign*(vd - vs) with sign = +1
/// for NMOS and -1 for PMOS, and current/charges map back with the same
/// sign.  Jacobians use forward differences on the compact model.
class MosfetElement final : public Element {
 public:
  MosfetElement(std::string name, NodeId drain, NodeId gate, NodeId source,
                std::unique_ptr<models::MosfetModel> model,
                const models::DeviceGeometry& geometry);

  void load(LoadContext& ctx) const override;

  /// Stamp pass of load() with the model evaluation supplied by the caller
  /// -- the scatter half of the batched device-bank path.  load() is
  /// exactly evaluateLoad() + scatterLoad(), so a banked assembly that
  /// feeds this the batch result reproduces the scalar stamps bit-for-bit.
  void scatterLoad(LoadContext& ctx,
                   const models::MosfetLoadEvaluation& ev) const;

  [[nodiscard]] int chargeSlots() const noexcept override { return 3; }

  [[nodiscard]] NodeId drain() const noexcept { return drain_; }
  [[nodiscard]] NodeId gate() const noexcept { return gate_; }
  [[nodiscard]] NodeId source() const noexcept { return source_; }

  [[nodiscard]] const models::MosfetModel& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const models::DeviceGeometry& geometry() const noexcept {
    return geometry_;
  }
  /// Replaces the instance card/geometry (Monte Carlo re-instancing).
  void setInstance(std::unique_ptr<models::MosfetModel> model,
                   const models::DeviceGeometry& geometry);

  /// Rebinds the instance card/geometry in place -- the per-sample pass of
  /// a build-once campaign session (sim::CampaignSession).  When `model`
  /// has the same dynamic type as the current card its parameters are
  /// copied into the existing object (no heap allocation); a differing
  /// type falls back to a clone.  The device's polarity must not change:
  /// the MNA stamp pattern captured at session construction stays valid
  /// because element sparsity is parameter-independent by contract.
  void rebind(const models::MosfetModel& model,
              const models::DeviceGeometry& geometry);

  /// Monotone counter bumped whenever the instance card or geometry
  /// changes (rebind/setInstance).  Device banks cache bias-independent
  /// per-lane state and compare this against their last-synced value to
  /// know when a lane must be re-derived -- the card object itself is
  /// usually overwritten in place, so pointer identity cannot tell.
  [[nodiscard]] std::uint32_t cardVersion() const noexcept {
    return cardVersion_;
  }

  /// DC drain terminal current at the given terminal voltages.
  [[nodiscard]] double terminalDrainCurrent(double vd, double vg,
                                            double vs) const;

 private:
  NodeId drain_;
  NodeId gate_;
  NodeId source_;
  std::unique_ptr<models::MosfetModel> model_;
  models::DeviceGeometry geometry_;
  std::uint32_t cardVersion_ = 0;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_ELEMENTS_HPP
