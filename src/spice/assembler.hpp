// Internal: Newton assembly state backing LoadContext.
//
// Shared by the DC/transient driver (analysis.cpp) and the small-signal AC
// driver (ac.cpp).  Not part of the public API: element authors only ever
// see LoadContext, and analysis users only see the free functions in
// analysis.hpp / ac.hpp.
#ifndef VSSTAT_SPICE_ASSEMBLER_HPP
#define VSSTAT_SPICE_ASSEMBLER_HPP

#include <algorithm>
#include <vector>

#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"

namespace vsstat::spice::detail {

/// Owns the Newton assembly state and backs LoadContext.
class Assembler {
 public:
  explicit Assembler(const Circuit& circuit)
      : circuit_(circuit),
        numNodes_(circuit.nodeCount() - 1),
        numUnknowns_(circuit.unknownCount()),
        jacobian_(numUnknowns_, numUnknowns_),
        residual_(numUnknowns_, 0.0),
        chargeNow_(static_cast<std::size_t>(circuit.chargeSlotTotal()), 0.0),
        chargePrev_(chargeNow_.size(), 0.0),
        histTerm_(chargeNow_.size(), 0.0) {}

  // --- integration control ---------------------------------------------------
  void setDcMode() noexcept {
    c0_ = 0.0;
    std::fill(histTerm_.begin(), histTerm_.end(), 0.0);
  }
  /// Backward Euler: i = (q - qPrev)/h.
  void setBackwardEuler(double h) noexcept {
    c0_ = 1.0 / h;
    for (std::size_t s = 0; s < histTerm_.size(); ++s)
      histTerm_[s] = -c0_ * chargePrev_[s];
  }
  /// Trapezoidal: i = (2/h)(q - qPrev) - iPrev.
  void setTrapezoidal(double h, const std::vector<double>& currentPrev) noexcept {
    c0_ = 2.0 / h;
    for (std::size_t s = 0; s < histTerm_.size(); ++s)
      histTerm_[s] = -c0_ * chargePrev_[s] - currentPrev[s];
  }
  /// After a converged step: per-slot companion currents at the solution.
  [[nodiscard]] std::vector<double> slotCurrents() const {
    std::vector<double> i(chargeNow_.size());
    for (std::size_t s = 0; s < i.size(); ++s)
      i[s] = c0_ * chargeNow_[s] + histTerm_[s];
    return i;
  }
  void commitCharges() noexcept { chargePrev_ = chargeNow_; }
  [[nodiscard]] const std::vector<double>& charges() const noexcept {
    return chargeNow_;
  }

  void setTime(double t) noexcept { time_ = t; }
  void setSourceScale(double s) noexcept { sourceScale_ = s; }
  void setGmin(double g) noexcept { gmin_ = g; }

  /// Rebuilds jacobian_ and residual_ at iterate x.
  void assemble(const linalg::Vector& x) {
    x_ = &x;
    jacobian_.fill(0.0);
    std::fill(residual_.begin(), residual_.end(), 0.0);
    std::fill(chargeNow_.begin(), chargeNow_.end(), 0.0);

    LoadContext ctx;
    ctx.assembler_ = this;
    for (const auto& element : circuit_.elements()) {
      ctx.branchBase_ = element->branchBase();
      ctx.chargeBase_ = element->chargeBase();
      element->load(ctx);
    }

    if (gmin_ > 0.0) {
      for (std::size_t n = 0; n < numNodes_; ++n) {
        residual_[n] += gmin_ * x[n];
        jacobian_(n, n) += gmin_;
      }
    }
  }

  [[nodiscard]] const linalg::Matrix& jacobian() const noexcept {
    return jacobian_;
  }
  [[nodiscard]] const linalg::Vector& residual() const noexcept {
    return residual_;
  }
  [[nodiscard]] std::size_t numNodes() const noexcept { return numNodes_; }
  [[nodiscard]] std::size_t numUnknowns() const noexcept { return numUnknowns_; }
  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }

  // --- LoadContext backends ---------------------------------------------------
  [[nodiscard]] double nodeVoltage(NodeId node) const noexcept {
    return node == kGround ? 0.0
                           : (*x_)[static_cast<std::size_t>(node - 1)];
  }
  [[nodiscard]] double branchValue(int globalBranch) const noexcept {
    return (*x_)[numNodes_ + static_cast<std::size_t>(globalBranch)];
  }
  void stampCurrent(NodeId node, double i) noexcept {
    if (node != kGround) residual_[static_cast<std::size_t>(node - 1)] += i;
  }
  void stampJacobian(NodeId node, NodeId other, double d) noexcept {
    if (node != kGround && other != kGround)
      jacobian_(static_cast<std::size_t>(node - 1),
                static_cast<std::size_t>(other - 1)) += d;
  }
  void stampJacobianBranch(NodeId node, int globalBranch, double d) noexcept {
    if (node != kGround)
      jacobian_(static_cast<std::size_t>(node - 1),
                numNodes_ + static_cast<std::size_t>(globalBranch)) += d;
  }
  void stampBranchResidual(int globalBranch, double f) noexcept {
    residual_[numNodes_ + static_cast<std::size_t>(globalBranch)] += f;
  }
  void stampBranchJacobianV(int globalBranch, NodeId node, double d) noexcept {
    if (node != kGround)
      jacobian_(numNodes_ + static_cast<std::size_t>(globalBranch),
                static_cast<std::size_t>(node - 1)) += d;
  }
  void stampBranchJacobianI(int globalBranch, int otherGlobalBranch,
                            double d) noexcept {
    jacobian_(numNodes_ + static_cast<std::size_t>(globalBranch),
              numNodes_ + static_cast<std::size_t>(otherGlobalBranch)) += d;
  }
  void recordCharge(int globalSlot, double q) noexcept {
    chargeNow_[static_cast<std::size_t>(globalSlot)] = q;
  }
  [[nodiscard]] double companionCurrent(int globalSlot, double q) const noexcept {
    if (c0_ == 0.0) return 0.0;
    return c0_ * q + histTerm_[static_cast<std::size_t>(globalSlot)];
  }
  [[nodiscard]] double c0() const noexcept { return c0_; }
  [[nodiscard]] double timeNow() const noexcept { return time_; }
  [[nodiscard]] double scaleNow() const noexcept { return sourceScale_; }

 private:
  const Circuit& circuit_;
  std::size_t numNodes_;
  std::size_t numUnknowns_;
  linalg::Matrix jacobian_;
  linalg::Vector residual_;
  std::vector<double> chargeNow_;
  std::vector<double> chargePrev_;
  std::vector<double> histTerm_;
  const linalg::Vector* x_ = nullptr;
  double c0_ = 0.0;
  double time_ = 0.0;
  double sourceScale_ = 1.0;
  double gmin_ = 0.0;
};

}  // namespace vsstat::spice::detail

#endif  // VSSTAT_SPICE_ASSEMBLER_HPP
