// Internal: Newton assembly state backing LoadContext.
//
// Shared by the DC/transient driver (analysis.cpp) and the small-signal AC
// driver (ac.cpp).  Not part of the public API: element authors only ever
// see LoadContext, and analysis users only see the free functions in
// analysis.hpp / ac.hpp.
//
// Construction runs a one-time symbolic capture pass that records every
// Jacobian position the circuit's elements can ever stamp (element sparsity
// structure is bias-independent by contract).  Each assemble() then writes
// straight into the captured CSR slots -- an O(nnz) clear instead of an
// O(n^2) dense fill -- and the owned NewtonWorkspace gives the Newton driver
// a pattern-reusing factorization plus preallocated step buffers, so one
// Newton iteration performs zero heap allocations in steady state.
//
// MOSFET evaluation is banked by default (see spice/device_bank.hpp): the
// assembler batch-evaluates every device group before the element loop and
// scatters each lane's result into precaptured CSR slots in element order,
// bit-identically to the scalar per-element path (useDeviceBank = false).
#ifndef VSSTAT_SPICE_ASSEMBLER_HPP
#define VSSTAT_SPICE_ASSEMBLER_HPP

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"
#include "spice/circuit.hpp"
#include "spice/device_bank.hpp"
#include "spice/fault_injection.hpp"
#include "spice/solve_report.hpp"

namespace vsstat::spice::detail {

/// Per-Assembler scratch for the Newton iteration: the factorization (which
/// owns the LU scratch matrix and pivot order) plus the step vector.  All
/// buffers reach steady-state size after the first iteration and are reused
/// across iterations, transient steps, and homotopy stages.
struct NewtonWorkspace {
  linalg::SparseLu lu;
  linalg::Vector dx;
  // Transient-driver scratch (detail::runTransient): the iterate, the
  // trial step, the per-slot companion currents, and the recorded sample
  // row.  Hoisted into the workspace so a persistent session's transients
  // reuse capacity across Monte Carlo samples instead of reallocating.
  linalg::Vector xTransient;
  linalg::Vector xTrial;
  /// Previous accepted transient state (statistical-tier step predictor).
  linalg::Vector xPrevStep;
  std::vector<double> slotCurrents;
  std::vector<double> sampleBuf;
  /// Homotopy trial iterate (detail::dcSolveLadder gmin/source stepping).
  linalg::Vector xHomotopy;
  /// Diagnostics of the most recent solve (filled by dcSolveLadder /
  /// runTransient, reset at each solve entry).
  SolveReport report;
};

/// Owns the Newton assembly state and backs LoadContext.
class Assembler {
 public:
  /// `useDeviceBank` selects batched MOSFET evaluation (bit-identical to
  /// the scalar element loop; off is the comparison/fallback path).
  /// `numerics` is handed to the bank's model groups: reference (default)
  /// keeps bit-identity, fast swaps in the vectorized kernel pipeline
  /// (requires `useDeviceBank` -- the scalar loop has no fast chain).
  /// `solver` is installed on the workspace factorization: fresh (default)
  /// keeps the per-solve re-pivot semantics, reusePivot makes every
  /// refactor() reuse the analyzed pivot order under the growth monitor
  /// (SimSession additionally primes and restores the canonical snapshot).
  explicit Assembler(
      const Circuit& circuit, bool useDeviceBank = true,
      models::NumericsMode numerics = models::NumericsMode::reference,
      linalg::SolverMode solver = linalg::SolverMode::fresh);

  // Not copyable/movable: values_ and the workspace factorization hold
  // pointers into this object's pattern_.
  Assembler(const Assembler&) = delete;
  Assembler& operator=(const Assembler&) = delete;

  // --- integration control ---------------------------------------------------
  void setDcMode() noexcept {
    c0_ = 0.0;
    std::fill(histTerm_.begin(), histTerm_.end(), 0.0);
  }
  /// Backward Euler: i = (q - qPrev)/h.
  void setBackwardEuler(double h) noexcept {
    c0_ = 1.0 / h;
    for (std::size_t s = 0; s < histTerm_.size(); ++s)
      histTerm_[s] = -c0_ * chargePrev_[s];
  }
  /// Trapezoidal: i = (2/h)(q - qPrev) - iPrev.
  void setTrapezoidal(double h, const std::vector<double>& currentPrev) noexcept {
    c0_ = 2.0 / h;
    for (std::size_t s = 0; s < histTerm_.size(); ++s)
      histTerm_[s] = -c0_ * chargePrev_[s] - currentPrev[s];
  }
  /// After a converged step: per-slot companion currents at the solution,
  /// written into the caller's buffer (resized once, then reused).
  void slotCurrents(std::vector<double>& out) const {
    out.resize(chargeNow_.size());
    for (std::size_t s = 0; s < out.size(); ++s)
      out[s] = c0_ * chargeNow_[s] + histTerm_[s];
  }
  void commitCharges() noexcept {
    std::copy(chargeNow_.begin(), chargeNow_.end(), chargePrev_.begin());
  }
  [[nodiscard]] const std::vector<double>& charges() const noexcept {
    return chargeNow_;
  }

  void setTime(double t) noexcept { time_ = t; }
  void setSourceScale(double s) noexcept { sourceScale_ = s; }
  void setGmin(double g) noexcept { gmin_ = g; }

  /// Rebuilds the Jacobian values and residual at iterate x.  Allocation-free.
  void assemble(const linalg::Vector& x);

  /// Jacobian of the last assemble(), laid out on pattern().
  [[nodiscard]] const linalg::SparseMatrix& jacobian() const noexcept {
    return values_;
  }
  /// MNA stamp sparsity of the circuit, captured once at construction.
  [[nodiscard]] const linalg::SparsePattern& pattern() const noexcept {
    return pattern_;
  }
  /// Dense copy of the last assembled Jacobian (AC / diagnostics path).
  void scatterJacobian(linalg::Matrix& dense) const { values_.scatterTo(dense); }

  [[nodiscard]] const linalg::Vector& residual() const noexcept {
    return residual_;
  }
  [[nodiscard]] NewtonWorkspace& workspace() noexcept { return workspace_; }
  [[nodiscard]] std::size_t numNodes() const noexcept { return numNodes_; }
  [[nodiscard]] std::size_t numUnknowns() const noexcept { return numUnknowns_; }
  [[nodiscard]] const Circuit& circuit() const noexcept { return circuit_; }

  /// Eagerly re-derives device-bank lanes after a rebind pass (campaign
  /// sessions call this per sample so the refresh runs once, outside the
  /// Newton loop).  assemble() also syncs lazily, so calling this is an
  /// optimization, never a correctness requirement.  No-op when banking is
  /// off.
  void syncDeviceBank();
  /// Number of banked MOSFET lanes (0 when banking is off or bank-less).
  [[nodiscard]] std::size_t deviceBankLaneCount() const noexcept {
    return bankSet_ != nullptr ? bankSet_->laneCount() : 0;
  }
  /// Number of homogeneous model groups in the bank.
  [[nodiscard]] std::size_t deviceBankGroupCount() const noexcept {
    return bankSet_ != nullptr ? bankSet_->groupCount() : 0;
  }

  /// Switches the device-bank evaluation contract in place (rescue ladder's
  /// fast -> reference fallback).  Throws when asked for fast numerics on a
  /// bank-less assembler; a no-op when the mode is unchanged.
  void setNumericsMode(models::NumericsMode numerics);
  [[nodiscard]] models::NumericsMode numericsMode() const noexcept {
    return bankSet_ != nullptr ? bankSet_->numerics()
                               : models::NumericsMode::reference;
  }

  // --- fault-injection seam (test-only, deterministic) -----------------------
  /// Installs the campaign's fault schedule; null disarms injection.
  void setFaultInjector(std::shared_ptr<const FaultInjector> injector) noexcept {
    injector_ = std::move(injector);
    faultArmed_ = false;
  }
  /// Arms scheduled faults for (sampleIndex, rescue attempt).  Campaign
  /// sessions call this per bind; outside a campaign no context is armed
  /// and assembly behaves exactly as before.
  void setSampleContext(std::size_t sampleIndex, int attempt) noexcept {
    faultSample_ = sampleIndex;
    faultAttempt_ = attempt;
    faultArmed_ = injector_ != nullptr && !injector_->empty();
  }
  void clearSampleContext() noexcept {
    faultArmed_ = false;
    faultSample_ = 0;
    faultAttempt_ = 0;
  }
  /// Rescue attempt of the armed sample context (0 outside a campaign):
  /// lets metric code consult FaultInjector::metricThrowAt correctly.
  [[nodiscard]] int sampleAttempt() const noexcept { return faultAttempt_; }

  // --- LoadContext backends ---------------------------------------------------
  [[nodiscard]] double nodeVoltage(NodeId node) const noexcept {
    return node == kGround ? 0.0
                           : (*x_)[static_cast<std::size_t>(node - 1)];
  }
  [[nodiscard]] double branchValue(int globalBranch) const noexcept {
    return (*x_)[numNodes_ + static_cast<std::size_t>(globalBranch)];
  }
  void stampCurrent(NodeId node, double i) noexcept {
    if (capturing_) return;
    if (node != kGround) residual_[static_cast<std::size_t>(node - 1)] += i;
  }
  void stampJacobian(NodeId node, NodeId other, double d) noexcept {
    if (node != kGround && other != kGround)
      addEntry(static_cast<std::size_t>(node - 1),
               static_cast<std::size_t>(other - 1), d);
  }
  void stampJacobianBranch(NodeId node, int globalBranch, double d) noexcept {
    if (node != kGround)
      addEntry(static_cast<std::size_t>(node - 1),
               numNodes_ + static_cast<std::size_t>(globalBranch), d);
  }
  void stampBranchResidual(int globalBranch, double f) noexcept {
    if (capturing_) return;
    residual_[numNodes_ + static_cast<std::size_t>(globalBranch)] += f;
  }
  void stampBranchJacobianV(int globalBranch, NodeId node, double d) noexcept {
    if (node != kGround)
      addEntry(numNodes_ + static_cast<std::size_t>(globalBranch),
               static_cast<std::size_t>(node - 1), d);
  }
  void stampBranchJacobianI(int globalBranch, int otherGlobalBranch,
                            double d) noexcept {
    addEntry(numNodes_ + static_cast<std::size_t>(globalBranch),
             numNodes_ + static_cast<std::size_t>(otherGlobalBranch), d);
  }
  void recordCharge(int globalSlot, double q) noexcept {
    chargeNow_[static_cast<std::size_t>(globalSlot)] = q;
  }
  [[nodiscard]] double companionCurrent(int globalSlot, double q) const noexcept {
    if (c0_ == 0.0) return 0.0;
    return c0_ * q + histTerm_[static_cast<std::size_t>(globalSlot)];
  }
  [[nodiscard]] double c0() const noexcept { return c0_; }
  [[nodiscard]] double timeNow() const noexcept { return time_; }
  [[nodiscard]] double scaleNow() const noexcept { return sourceScale_; }

 private:
  void capturePattern();
  void scatterBankedLane(const DeviceBankGroup& grp, std::size_t lane) noexcept;
  /// NaN/Inf guard over every evaluated bank lane; throws NonFiniteError
  /// naming the numerics mode and lane on the first bad value.
  void checkBankLanesFinite() const;

  void addEntry(std::size_t row, std::size_t col, double d) noexcept {
    if (capturing_) {
      coords_.emplace_back(row, col);
      return;
    }
    const std::int32_t s = pattern_.slot(row, col);
    if (s < 0) {
      patternMiss_ = true;  // diagnosed (with a throw) at the end of assemble()
      return;
    }
    values_.addAt(s, d);
  }

  const Circuit& circuit_;
  std::size_t numNodes_;
  std::size_t numUnknowns_;
  linalg::SparsePattern pattern_;
  linalg::SparseMatrix values_;
  std::vector<std::int32_t> gminSlots_;  ///< node-diagonal slots
  linalg::Vector residual_;
  std::vector<double> chargeNow_;
  std::vector<double> chargePrev_;
  std::vector<double> histTerm_;
  NewtonWorkspace workspace_;
  std::unique_ptr<DeviceBankSet> bankSet_;  ///< null when banking is off
  std::vector<std::pair<std::size_t, std::size_t>> coords_;  ///< capture only
  const linalg::Vector* x_ = nullptr;
  double c0_ = 0.0;
  double time_ = 0.0;
  double sourceScale_ = 1.0;
  double gmin_ = 0.0;
  bool capturing_ = false;
  bool patternMiss_ = false;
  // Fault-injection state (campaign tests only; inert by default).
  std::shared_ptr<const FaultInjector> injector_;
  std::size_t faultSample_ = 0;
  int faultAttempt_ = 0;
  bool faultArmed_ = false;
};

}  // namespace vsstat::spice::detail

#endif  // VSSTAT_SPICE_ASSEMBLER_HPP
