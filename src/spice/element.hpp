// Circuit element interface and the load-time context.
//
// The engine is residual-based Newton MNA: each iteration every element
// contributes currents-out-of-node to the residual vector F and partial
// derivatives to the Jacobian J, then J dx = -F is solved.  Dynamic
// elements additionally record their charges q(v); the analysis integrates
// dq/dt with companion coefficients exposed through the context, so
// elements never know which integration method (BE/trapezoidal) is active.
#ifndef VSSTAT_SPICE_ELEMENT_HPP
#define VSSTAT_SPICE_ELEMENT_HPP

#include <string>

namespace vsstat::spice {

/// Node identifier; 0 is ground.
using NodeId = int;
inline constexpr NodeId kGround = 0;

namespace detail {
class Assembler;  // defined in analysis.cpp
}

/// Per-element view of the assembly state during one Newton load.
/// All indices are element-local (branch 0..branchCount-1,
/// slot 0..chargeSlots-1); the context adds the element's global offsets.
class LoadContext {
 public:
  // --- state of the current iterate -----------------------------------------
  [[nodiscard]] double v(NodeId node) const noexcept;
  [[nodiscard]] double branchCurrent(int localBranch) const noexcept;
  [[nodiscard]] double time() const noexcept;
  /// Source scaling in [0,1] used by the source-stepping homotopy.
  [[nodiscard]] double sourceScale() const noexcept;

  // --- KCL residual / Jacobian stamps ----------------------------------------
  /// Adds `i` amperes *leaving* `node` through this element.
  void addCurrent(NodeId node, double i) noexcept;
  /// Adds d(current leaving `node`)/d(voltage of `other`).
  void addJacobian(NodeId node, NodeId other, double didv) noexcept;
  /// Adds d(current leaving `node`)/d(branch current).
  void addJacobianBranch(NodeId node, int localBranch, double d) noexcept;

  // --- branch (voltage source) equations --------------------------------------
  void addBranchResidual(int localBranch, double f) noexcept;
  void addBranchJacobianV(int localBranch, NodeId node, double d) noexcept;
  void addBranchJacobianI(int localBranch, int otherLocalBranch,
                          double d) noexcept;

  // --- charge bookkeeping -------------------------------------------------------
  /// Records the slot's charge at this iterate (required every load).
  void setCharge(int localSlot, double q) noexcept;
  /// Companion-model current for the slot given its present charge:
  /// 0 in DC; c0*(q - qPrev) - c1*iPrev during transient integration.
  [[nodiscard]] double chargeCurrent(int localSlot, double q) const noexcept;
  /// d(chargeCurrent)/dq: 0 in DC, the integrator's c0 during transient.
  [[nodiscard]] double chargeGain() const noexcept;

 private:
  friend class detail::Assembler;
  LoadContext() = default;

  detail::Assembler* assembler_ = nullptr;
  int branchBase_ = 0;
  int chargeBase_ = 0;
};

/// Pure-abstract circuit element.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}
  virtual ~Element() = default;

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Contributes residual/Jacobian/charges for the present iterate.
  virtual void load(LoadContext& ctx) const = 0;

  /// Number of extra branch-current unknowns this element introduces.
  [[nodiscard]] virtual int branchCount() const noexcept { return 0; }

  /// Number of charge-state slots this element owns.
  [[nodiscard]] virtual int chargeSlots() const noexcept { return 0; }

  // Global offsets, assigned by Circuit when the element is added.
  void setBases(int branchBase, int chargeBase) noexcept {
    branchBase_ = branchBase;
    chargeBase_ = chargeBase;
  }
  [[nodiscard]] int branchBase() const noexcept { return branchBase_; }
  [[nodiscard]] int chargeBase() const noexcept { return chargeBase_; }

 private:
  std::string name_;
  int branchBase_ = 0;
  int chargeBase_ = 0;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_ELEMENT_HPP
