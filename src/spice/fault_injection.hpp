// Deterministic fault-injection seam for campaign robustness tests.
//
// Tail Monte Carlo samples are the ones that break solvers -- but they are
// rare, so the rescue ladder and the failure taxonomy would be effectively
// untested if real breakdowns were the only way to exercise them.  A
// FaultInjector forces the three real failure shapes on demand, keyed by
// SAMPLE INDEX (never wall clock, never thread id), so an injected-fault
// campaign is exactly as deterministic as a clean one:
//
//   - singular Jacobian: the assembler zeroes row 0 of the MNA matrix after
//     assembly, so the next refactor hits a hard singular pivot;
//   - non-finite bank lane: the assembler poisons one device-bank output
//     lane with NaN while the bank runs FAST numerics, modeling a fast
//     kernel lane gone bad (the reference-numerics rescue rung heals it);
//   - throwing metric: user metric code consults metricThrowAt() and throws,
//     modeling measurement code that rejects a degenerate waveform.
//
// Each fault is either transient (attempt 0 only -- the rescue ladder's
// retry sees a healthy solve and recovers the sample) or persistent (every
// attempt -- the ladder exhausts and the sample fails with its class).
// The injector is immutable after construction and shared by const pointer,
// so concurrent queries from campaign workers are race-free by construction.
#ifndef VSSTAT_SPICE_FAULT_INJECTION_HPP
#define VSSTAT_SPICE_FAULT_INJECTION_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

namespace vsstat::spice {

/// Kinds of fault the injector can force.
enum class FaultKind : int {
  singularJacobian,  ///< zero a matrix row after assembly
  nanBankLane,       ///< poison a device-bank output lane with NaN
  metricThrow,       ///< advisory: metric fn should throw for this sample
};

/// One scheduled fault.
struct FaultSite {
  FaultKind kind = FaultKind::singularJacobian;
  std::size_t sampleIndex = 0;
  bool persistent = false;  ///< false: attempt 0 only (rescuable)
};

/// Immutable schedule of faults, queried by (sample, rescue attempt).
class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultSite> sites)
      : sites_(std::move(sites)) {}

  [[nodiscard]] bool empty() const noexcept { return sites_.empty(); }

  /// True when `kind` should fire for this sample on this rescue attempt.
  [[nodiscard]] bool firesAt(FaultKind kind, std::size_t sampleIndex,
                             int attempt) const noexcept {
    return std::any_of(sites_.begin(), sites_.end(), [&](const FaultSite& s) {
      return s.kind == kind && s.sampleIndex == sampleIndex &&
             (s.persistent || attempt == 0);
    });
  }

  [[nodiscard]] bool singularAt(std::size_t sample, int attempt) const noexcept {
    return firesAt(FaultKind::singularJacobian, sample, attempt);
  }
  [[nodiscard]] bool nanLaneAt(std::size_t sample, int attempt) const noexcept {
    return firesAt(FaultKind::nanBankLane, sample, attempt);
  }
  [[nodiscard]] bool metricThrowAt(std::size_t sample,
                                   int attempt) const noexcept {
    return firesAt(FaultKind::metricThrow, sample, attempt);
  }

 private:
  std::vector<FaultSite> sites_;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_FAULT_INJECTION_HPP
