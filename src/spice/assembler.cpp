#include "spice/assembler.hpp"

#include <cmath>
#include <string>

#include "spice/element.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::spice::detail {

Assembler::Assembler(const Circuit& circuit, bool useDeviceBank,
                     models::NumericsMode numerics, linalg::SolverMode solver)
    : circuit_(circuit),
      numNodes_(circuit.nodeCount() - 1),
      numUnknowns_(circuit.unknownCount()),
      residual_(numUnknowns_, 0.0),
      chargeNow_(static_cast<std::size_t>(circuit.chargeSlotTotal()), 0.0),
      chargePrev_(chargeNow_.size(), 0.0),
      histTerm_(chargeNow_.size(), 0.0) {
  require(useDeviceBank || numerics == models::NumericsMode::reference,
          "Assembler: fast numerics requires the device bank (the scalar "
          "element loop is reference-only)");
  capturePattern();
  workspace_.dx.assign(numUnknowns_, 0.0);
  workspace_.lu.setSolverMode(solver);
  if (useDeviceBank) {
    auto bank = std::make_unique<DeviceBankSet>(circuit_, pattern_, numerics);
    if (bank->laneCount() > 0) bankSet_ = std::move(bank);
  }
}

void Assembler::syncDeviceBank() {
  if (bankSet_ != nullptr && !bankSet_->sync()) bankSet_->rebuild();
}

void Assembler::setNumericsMode(models::NumericsMode numerics) {
  require(bankSet_ != nullptr || numerics == models::NumericsMode::reference,
          "Assembler: fast numerics requires the device bank (the scalar "
          "element loop is reference-only)");
  if (bankSet_ != nullptr) bankSet_->setNumerics(numerics);
}

void Assembler::checkBankLanesFinite() const {
  for (std::size_t g = 0; g < bankSet_->groupCount(); ++g) {
    const DeviceBankGroup& grp = bankSet_->group(static_cast<std::int32_t>(g));
    for (std::size_t lane = 0; lane < grp.out.size(); ++lane) {
      const models::MosfetLoadEvaluation& ev = grp.out[lane];
      if (std::isfinite(ev.at.id) && std::isfinite(ev.at.qg) &&
          std::isfinite(ev.at.qd) && std::isfinite(ev.at.qs) &&
          std::isfinite(ev.didVgs) && std::isfinite(ev.didVds)) {
        continue;
      }
      throw NonFiniteError(
          "device bank: non-finite evaluation in " +
          std::string(bankSet_->numerics() == models::NumericsMode::fast
                          ? "fast"
                          : "reference") +
          "-numerics group " + std::to_string(g) + ", lane " +
          std::to_string(lane));
    }
  }
}

void Assembler::capturePattern() {
  // Symbolic pass: run every element's load() once in capture mode, where
  // Jacobian stamps record coordinates instead of accumulating values.
  // Element sparsity structure is bias-independent by contract, so one pass
  // at the zero iterate sees every position.  Transient mode (c0 != 0) is
  // forced so charge-derivative stamps are captured too; node diagonals are
  // added explicitly for the gmin homotopy shunts.
  capturing_ = true;
  const linalg::Vector zero(numUnknowns_, 0.0);
  x_ = &zero;
  setBackwardEuler(1.0);

  LoadContext ctx;
  ctx.assembler_ = this;
  for (const auto& element : circuit_.elements()) {
    ctx.branchBase_ = element->branchBase();
    ctx.chargeBase_ = element->chargeBase();
    element->load(ctx);
  }
  for (std::size_t n = 0; n < numNodes_; ++n) coords_.emplace_back(n, n);

  pattern_ = linalg::SparsePattern(numUnknowns_, coords_);
  values_ = linalg::SparseMatrix(pattern_);
  gminSlots_.resize(numNodes_);
  for (std::size_t n = 0; n < numNodes_; ++n)
    gminSlots_[n] = pattern_.slot(n, n);

  coords_.clear();
  coords_.shrink_to_fit();
  std::fill(chargeNow_.begin(), chargeNow_.end(), 0.0);
  setDcMode();
  x_ = nullptr;
  capturing_ = false;
}

void Assembler::assemble(const linalg::Vector& x) {
  x_ = &x;
  values_.clear();
  std::fill(residual_.begin(), residual_.end(), 0.0);
  std::fill(chargeNow_.begin(), chargeNow_.end(), 0.0);

  // Banked path: refresh any lanes invalidated by a rebind, then gather
  // every device's canonical bias and batch-evaluate all model groups up
  // front.  The element loop below scatters the precomputed lane results
  // in circuit element order, so residual/Jacobian accumulation order --
  // and therefore every floating-point sum -- matches the scalar loop.
  if (bankSet_ != nullptr) {
    if (!bankSet_->sync()) bankSet_->rebuild();
    bankSet_->evaluate(x);
    // The NaN-lane fault models a FAST kernel lane gone bad, so it only
    // fires while the bank runs fast numerics: the rescue ladder's
    // reference-numerics rung then genuinely heals it (and the rescued
    // metric is bit-identical to a reference-mode campaign's).
    if (faultArmed_ &&
        bankSet_->numerics() == models::NumericsMode::fast &&
        injector_->nanLaneAt(faultSample_, faultAttempt_))
      bankSet_->poisonLaneForTest(0, 0);
    // Seam guard: garbage must not scatter into the matrix silently.  A
    // bad lane (fast-chain overflow, injected fault) becomes a classified
    // NonFiniteError that the Newton driver and rescue ladder understand.
    checkBankLanesFinite();
  }

  LoadContext ctx;
  ctx.assembler_ = this;
  const auto& elements = circuit_.elements();
  for (std::size_t idx = 0; idx < elements.size(); ++idx) {
    if (bankSet_ != nullptr) {
      const BankLaneRef ref = bankSet_->elementLanes()[idx];
      if (ref.group >= 0) {
        scatterBankedLane(bankSet_->group(ref.group),
                          static_cast<std::size_t>(ref.lane));
        continue;
      }
    }
    const auto& element = elements[idx];
    ctx.branchBase_ = element->branchBase();
    ctx.chargeBase_ = element->chargeBase();
    element->load(ctx);
  }

  if (gmin_ > 0.0) {
    for (std::size_t n = 0; n < numNodes_; ++n) {
      residual_[n] += gmin_ * x[n];
      values_.addAt(gminSlots_[n], gmin_);
    }
  }

  require(!patternMiss_,
          "Assembler: element stamped outside the captured sparsity pattern "
          "(element structure must be bias-independent)");

  if (faultArmed_ && injector_->singularAt(faultSample_, faultAttempt_)) {
    // Zero the first matrix row AFTER the gmin shunts were added, so the
    // injected breakdown survives every homotopy rung and the factorization
    // hits a hard singular pivot.
    const auto& rowStart = pattern_.rowStart();
    for (std::size_t s = rowStart[0]; s < rowStart[1]; ++s)
      values_.setAt(static_cast<std::int32_t>(s), 0.0);
  }
}

void Assembler::scatterBankedLane(const DeviceBankGroup& grp,
                                  std::size_t lane) noexcept {
  // Mirror of MosfetElement::scatterLoad with the LoadContext indirection
  // and per-stamp slot lookups replaced by the lane's captured rows/slots.
  // Stamp order and per-stamp arithmetic are identical, which keeps banked
  // assemblies bit-identical to scalar ones (pinned by tests/spice/
  // test_device_bank.cpp and the campaign bit-identity suite).
  const models::MosfetLoadEvaluation& ev = grp.out[lane];
  const double sign = grp.sign[lane];
  const std::int32_t rowD = grp.rowD[lane];
  const std::int32_t rowG = grp.rowG[lane];
  const std::int32_t rowS = grp.rowS[lane];

  const auto addResidual = [&](std::int32_t row, double v) {
    if (row >= 0) residual_[static_cast<std::size_t>(row)] += v;
  };
  const auto addJ = [&](std::int32_t slot, double v) {
    if (slot >= 0) values_.addAt(slot, v);
  };

  const double didvgs = ev.didVgs;
  const double didvds = ev.didVds;

  const double idTerm = sign * ev.at.id;
  addResidual(rowD, idTerm);
  addResidual(rowS, -idTerm);
  addJ(grp.sDG[lane], didvgs);
  addJ(grp.sDD[lane], didvds);
  addJ(grp.sDS[lane], -(didvgs + didvds));
  addJ(grp.sSG[lane], -didvgs);
  addJ(grp.sSD[lane], -didvds);
  addJ(grp.sSS[lane], didvgs + didvds);

  const double qg = sign * ev.at.qg;
  const double qd = sign * ev.at.qd;
  const double qs = sign * ev.at.qs;
  const std::int32_t cb = grp.chargeBase[lane];
  chargeNow_[static_cast<std::size_t>(cb)] = qg;
  chargeNow_[static_cast<std::size_t>(cb) + 1] = qd;
  chargeNow_[static_cast<std::size_t>(cb) + 2] = qs;

  const double c0 = c0_;
  const double ig = companionCurrent(cb, qg);
  const double idq = companionCurrent(cb + 1, qd);
  const double isq = companionCurrent(cb + 2, qs);
  addResidual(rowG, ig);
  addResidual(rowD, idq);
  addResidual(rowS, isq);

  if (c0 != 0.0) {
    addJ(grp.sGG[lane], c0 * ev.dqgVgs);
    addJ(grp.sGD[lane], c0 * ev.dqgVds);
    addJ(grp.sGS[lane], -c0 * (ev.dqgVgs + ev.dqgVds));
    addJ(grp.sDG[lane], c0 * ev.dqdVgs);
    addJ(grp.sDD[lane], c0 * ev.dqdVds);
    addJ(grp.sDS[lane], -c0 * (ev.dqdVgs + ev.dqdVds));
    addJ(grp.sSG[lane], c0 * ev.dqsVgs);
    addJ(grp.sSD[lane], c0 * ev.dqsVds);
    addJ(grp.sSS[lane], -c0 * (ev.dqsVgs + ev.dqsVds));
  }
}

}  // namespace vsstat::spice::detail
