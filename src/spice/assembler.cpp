#include "spice/assembler.hpp"

#include "spice/element.hpp"
#include "util/error.hpp"

namespace vsstat::spice::detail {

Assembler::Assembler(const Circuit& circuit)
    : circuit_(circuit),
      numNodes_(circuit.nodeCount() - 1),
      numUnknowns_(circuit.unknownCount()),
      residual_(numUnknowns_, 0.0),
      chargeNow_(static_cast<std::size_t>(circuit.chargeSlotTotal()), 0.0),
      chargePrev_(chargeNow_.size(), 0.0),
      histTerm_(chargeNow_.size(), 0.0) {
  capturePattern();
  workspace_.dx.assign(numUnknowns_, 0.0);
}

void Assembler::capturePattern() {
  // Symbolic pass: run every element's load() once in capture mode, where
  // Jacobian stamps record coordinates instead of accumulating values.
  // Element sparsity structure is bias-independent by contract, so one pass
  // at the zero iterate sees every position.  Transient mode (c0 != 0) is
  // forced so charge-derivative stamps are captured too; node diagonals are
  // added explicitly for the gmin homotopy shunts.
  capturing_ = true;
  const linalg::Vector zero(numUnknowns_, 0.0);
  x_ = &zero;
  setBackwardEuler(1.0);

  LoadContext ctx;
  ctx.assembler_ = this;
  for (const auto& element : circuit_.elements()) {
    ctx.branchBase_ = element->branchBase();
    ctx.chargeBase_ = element->chargeBase();
    element->load(ctx);
  }
  for (std::size_t n = 0; n < numNodes_; ++n) coords_.emplace_back(n, n);

  pattern_ = linalg::SparsePattern(numUnknowns_, coords_);
  values_ = linalg::SparseMatrix(pattern_);
  gminSlots_.resize(numNodes_);
  for (std::size_t n = 0; n < numNodes_; ++n)
    gminSlots_[n] = pattern_.slot(n, n);

  coords_.clear();
  coords_.shrink_to_fit();
  std::fill(chargeNow_.begin(), chargeNow_.end(), 0.0);
  setDcMode();
  x_ = nullptr;
  capturing_ = false;
}

void Assembler::assemble(const linalg::Vector& x) {
  x_ = &x;
  values_.clear();
  std::fill(residual_.begin(), residual_.end(), 0.0);
  std::fill(chargeNow_.begin(), chargeNow_.end(), 0.0);

  LoadContext ctx;
  ctx.assembler_ = this;
  for (const auto& element : circuit_.elements()) {
    ctx.branchBase_ = element->branchBase();
    ctx.chargeBase_ = element->chargeBase();
    element->load(ctx);
  }

  if (gmin_ > 0.0) {
    for (std::size_t n = 0; n < numNodes_; ++n) {
      residual_[n] += gmin_ * x[n];
      values_.addAt(gminSlots_[n], gmin_);
    }
  }

  require(!patternMiss_,
          "Assembler: element stamped outside the captured sparsity pattern "
          "(element structure must be bias-independent)");
}

}  // namespace vsstat::spice::detail
