#include "spice/session.hpp"

#include "spice/assembler.hpp"
#include "spice/elements.hpp"
#include "spice/solver_core.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

namespace {

/// Restores the swept source's waveform on scope exit: a level that fails
/// to converge must not leave a persistent session's stimulus pinned at
/// the failing DC level for later analyses.
class SweepSourceGuard {
 public:
  explicit SweepSourceGuard(VoltageSourceElement& source)
      : source_(source), original_(source.waveform()) {}
  ~SweepSourceGuard() { source_.setWaveform(original_); }
  SweepSourceGuard(const SweepSourceGuard&) = delete;
  SweepSourceGuard& operator=(const SweepSourceGuard&) = delete;

 private:
  VoltageSourceElement& source_;
  SourceWaveform original_;
};

}  // namespace

SimSession::SimSession(Circuit& circuit, SessionOptions options)
    : circuit_(&circuit),
      assembler_(std::make_unique<detail::Assembler>(
          circuit, options.useDeviceBank, options.numerics)) {}

SimSession::~SimSession() = default;

void SimSession::syncDeviceBank() { assembler_->syncDeviceBank(); }

std::size_t SimSession::deviceBankLaneCount() const noexcept {
  return assembler_->deviceBankLaneCount();
}

void SimSession::resetNumerics() noexcept {
  assembler_->workspace().lu.reset();
}

OperatingPoint SimSession::dcOperatingPoint(const DcOptions& options) {
  OperatingPoint zeroGuess;
  return dcOperatingPoint(zeroGuess, options);
}

OperatingPoint SimSession::dcOperatingPoint(const OperatingPoint& guess,
                                            const DcOptions& options) {
  resetNumerics();
  linalg::Vector x = detail::unpackGuess(*circuit_, guess);
  if (!detail::dcSolveLadder(*assembler_, x, options)) {
    throw ConvergenceError("SimSession::dcOperatingPoint: no convergence",
                           options.newton.maxIterations);
  }
  return detail::packSolution(*circuit_, x);
}

std::vector<OperatingPoint> SimSession::dcSweep(
    const std::string& sourceName, const std::vector<double>& levels,
    const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  std::vector<OperatingPoint> result;
  result.reserve(levels.size());
  OperatingPoint guess;
  for (double level : levels) {
    src.setDcLevel(level);
    guess = result.empty() ? dcOperatingPoint(options)
                           : dcOperatingPoint(guess, options);
    result.push_back(guess);
  }
  return result;
}

void SimSession::dcSweepNode(const std::string& sourceName,
                             const std::vector<double>& levels,
                             NodeId probeNode, std::vector<double>& out,
                             const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  out.clear();
  out.reserve(levels.size());
  // The iterate persists across levels: handing level k's solution to
  // level k+1 directly is exactly the pack/unpack round trip dcSweep
  // performs (a straight copy), so the Newton trajectories -- and the
  // probed voltages -- are bit-identical to dcSweep's.
  sweepX_.resize(circuit_->unknownCount());
  std::fill(sweepX_.begin(), sweepX_.end(), 0.0);  // level 0: zero guess
  for (double level : levels) {
    src.setDcLevel(level);
    resetNumerics();
    if (!detail::dcSolveLadder(*assembler_, sweepX_, options)) {
      throw ConvergenceError("SimSession::dcSweepNode: no convergence",
                             options.newton.maxIterations);
    }
    out.push_back(probeNode == kGround
                      ? 0.0
                      : sweepX_[static_cast<std::size_t>(probeNode - 1)]);
  }
}

Waveform SimSession::transient(const TransientOptions& options) {
  resetNumerics();
  return detail::runTransient(*assembler_, options);
}

void SimSession::transient(const TransientOptions& options, Waveform& out) {
  resetNumerics();
  detail::runTransient(*assembler_, options, out);
}

}  // namespace vsstat::spice
