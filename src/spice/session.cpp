#include "spice/session.hpp"

#include "spice/assembler.hpp"
#include "spice/elements.hpp"
#include "spice/solver_core.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

namespace {

/// Restores the swept source's waveform on scope exit: a level that fails
/// to converge must not leave a persistent session's stimulus pinned at
/// the failing DC level for later analyses.
class SweepSourceGuard {
 public:
  explicit SweepSourceGuard(VoltageSourceElement& source)
      : source_(source), original_(source.waveform()) {}
  ~SweepSourceGuard() { source_.setWaveform(original_); }
  SweepSourceGuard(const SweepSourceGuard&) = delete;
  SweepSourceGuard& operator=(const SweepSourceGuard&) = delete;

 private:
  VoltageSourceElement& source_;
  SourceWaveform original_;
};

}  // namespace

SimSession::SimSession(Circuit& circuit, SessionOptions options)
    : circuit_(&circuit),
      assembler_(std::make_unique<detail::Assembler>(
          circuit, options.useDeviceBank, options.numerics, options.solver)),
      solverMode_(options.solver) {
  if (options.faultInjector) {
    assembler_->setFaultInjector(std::move(options.faultInjector));
  }
  if (solverMode_ == linalg::SolverMode::reusePivot) primePivotReuse();
}

SimSession::~SimSession() = default;

void SimSession::syncDeviceBank() { assembler_->syncDeviceBank(); }

std::size_t SimSession::deviceBankLaneCount() const noexcept {
  return assembler_->deviceBankLaneCount();
}

SimSession::SolverTelemetry SimSession::solverTelemetry() const noexcept {
  const detail::NewtonWorkspace& ws = assembler_->workspace();
  const linalg::SparseLu& lu = ws.lu;
  return SolverTelemetry{lu.fullFactorCount(),
                         lu.fastRefactorCount(),
                         lu.pivotFallbackCount(),
                         lu.hasPivotSnapshot(),
                         lu.patternNonZeroCount(),
                         lu.factorNonZeroCount(),
                         lu.fillRatio(),
                         lu.orderingMicros(),
                         lu.fullFactorMicros(),
                         ws.report};
}

void SimSession::setSolverMode(linalg::SolverMode mode) {
  if (mode == solverMode_) return;
  solverMode_ = mode;
  assembler_->workspace().lu.setSolverMode(mode);
  // Returning to reusePivot after a fresh-mode rescue retry finds the
  // canonical snapshot still in place (reset() never drops it); priming
  // only runs for a session that was never primed at all.
  if (mode == linalg::SolverMode::reusePivot &&
      !assembler_->workspace().lu.hasPivotSnapshot()) {
    primePivotReuse();
  }
}

void SimSession::setNumericsMode(models::NumericsMode numerics) {
  assembler_->setNumericsMode(numerics);
}

models::NumericsMode SimSession::numericsMode() const noexcept {
  return assembler_->numericsMode();
}

void SimSession::setSampleContext(std::size_t sampleIndex,
                                  int attempt) noexcept {
  assembler_->setSampleContext(sampleIndex, attempt);
}

void SimSession::clearSampleContext() noexcept {
  assembler_->clearSampleContext();
}

int SimSession::sampleAttempt() const noexcept {
  return assembler_->sampleAttempt();
}

DcOptions SimSession::applyEffort(const DcOptions& options) const noexcept {
  DcOptions adjusted = options;
  adjusted.newton = applyEffort(options.newton);
  return adjusted;
}

NewtonOptions SimSession::applyEffort(
    const NewtonOptions& options) const noexcept {
  NewtonOptions adjusted = options;
  adjusted.maxIterations = options.maxIterations * effort_.iterationMultiplier;
  adjusted.maxUpdate = options.maxUpdate * effort_.maxUpdateScale;
  return adjusted;
}

void SimSession::resetNumerics() noexcept {
  linalg::SparseLu& lu = assembler_->workspace().lu;
  if (solverMode_ == linalg::SolverMode::reusePivot) {
    lu.restorePivotSnapshot();
  } else {
    lu.reset();
  }
}

void SimSession::primePivotReuse() {
  detail::Assembler& assembler = *assembler_;
  linalg::SparseLu& lu = assembler.workspace().lu;
  if (circuit_->unknownCount() == 0) return;  // nothing to factor, ever

  // Canonical order from the as-built circuit at the zero iterate -- the
  // exact state a fresh-mode solve's first Newton iteration would pivot on.
  // Campaign workers build their fixtures identically (same builder, same
  // provider seed), so every session primes the same order, which is what
  // keeps reuse-mode campaigns independent of sample-to-session scheduling.
  const linalg::Vector zero(circuit_->unknownCount(), 0.0);
  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  // A zero-iterate MNA Jacobian can be singular at exact zero gmin (off
  // pass transistors isolate nodes); retry under the homotopy ladder's
  // first shunt before giving up -- the shunt only perturbs diagonal
  // values, and pivot ORDER is all the snapshot keeps.
  for (const double gmin : {0.0, 1e-2}) {
    assembler.setGmin(gmin);
    assembler.assemble(zero);
    try {
      lu.refactorReusingPivots(assembler.jacobian());
      lu.snapshotPivotOrder();
      break;
    } catch (const ConvergenceError&) {
      // Singular at this gmin: try the next, or leave the session unprimed
      // (solves fall back to fresh per-solve pivoting, deterministically).
    }
  }
  assembler.setGmin(0.0);
  assembler.setDcMode();
}

OperatingPoint SimSession::dcOperatingPoint(const DcOptions& options) {
  OperatingPoint zeroGuess;
  return dcOperatingPoint(zeroGuess, options);
}

OperatingPoint SimSession::dcOperatingPoint(const OperatingPoint& guess,
                                            const DcOptions& options) {
  resetNumerics();
  const DcOptions effective = applyEffort(options);
  linalg::Vector x = detail::unpackGuess(*circuit_, guess);
  if (!detail::dcSolveLadder(*assembler_, x, effective)) {
    detail::throwSolveFailure(assembler_->workspace().report,
                              "SimSession::dcOperatingPoint: no convergence",
                              effective.newton.maxIterations);
  }
  return detail::packSolution(*circuit_, x);
}

std::vector<OperatingPoint> SimSession::dcSweep(
    const std::string& sourceName, const std::vector<double>& levels,
    const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  std::vector<OperatingPoint> result;
  result.reserve(levels.size());
  OperatingPoint guess;
  for (double level : levels) {
    src.setDcLevel(level);
    guess = result.empty() ? dcOperatingPoint(options)
                           : dcOperatingPoint(guess, options);
    result.push_back(guess);
  }
  return result;
}

void SimSession::dcSweepNode(const std::string& sourceName,
                             const std::vector<double>& levels,
                             NodeId probeNode, std::vector<double>& out,
                             const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  out.clear();
  out.reserve(levels.size());
  // The iterate persists across levels: handing level k's solution to
  // level k+1 directly is exactly the pack/unpack round trip dcSweep
  // performs (a straight copy), so the Newton trajectories -- and the
  // probed voltages -- are bit-identical to dcSweep's.
  sweepX_.resize(circuit_->unknownCount());
  std::fill(sweepX_.begin(), sweepX_.end(), 0.0);  // level 0: zero guess
  const DcOptions effective = applyEffort(options);
  for (double level : levels) {
    src.setDcLevel(level);
    resetNumerics();
    if (!detail::dcSolveLadder(*assembler_, sweepX_, effective)) {
      detail::throwSolveFailure(assembler_->workspace().report,
                                "SimSession::dcSweepNode: no convergence",
                                effective.newton.maxIterations);
    }
    out.push_back(probeNode == kGround
                      ? 0.0
                      : sweepX_[static_cast<std::size_t>(probeNode - 1)]);
  }
}

Waveform SimSession::transient(const TransientOptions& options) {
  resetNumerics();
  TransientOptions effective = options;
  effective.newton = applyEffort(options.newton);
  effective.dcOptions = applyEffort(options.dcOptions);
  return detail::runTransient(*assembler_, effective);
}

void SimSession::transient(const TransientOptions& options, Waveform& out) {
  resetNumerics();
  TransientOptions effective = options;
  effective.newton = applyEffort(options.newton);
  effective.dcOptions = applyEffort(options.dcOptions);
  detail::runTransient(*assembler_, effective, out);
}

}  // namespace vsstat::spice
