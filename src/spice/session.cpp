#include "spice/session.hpp"

#include <algorithm>
#include <cmath>

#include "spice/assembler.hpp"
#include "spice/elements.hpp"
#include "spice/solver_core.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

namespace {

/// Restores the swept source's waveform on scope exit: a level that fails
/// to converge must not leave a persistent session's stimulus pinned at
/// the failing DC level for later analyses.
class SweepSourceGuard {
 public:
  explicit SweepSourceGuard(VoltageSourceElement& source)
      : source_(source), original_(source.waveform()) {}
  ~SweepSourceGuard() { source_.setWaveform(original_); }
  SweepSourceGuard(const SweepSourceGuard&) = delete;
  SweepSourceGuard& operator=(const SweepSourceGuard&) = delete;

 private:
  VoltageSourceElement& source_;
  SourceWaveform original_;
};

}  // namespace

SimSession::SimSession(Circuit& circuit, SessionOptions options)
    : circuit_(&circuit),
      assembler_(std::make_unique<detail::Assembler>(
          circuit, options.useDeviceBank, options.numerics, options.solver)),
      solverMode_(options.solver),
      tier_(options.tier) {
  if (options.faultInjector) {
    assembler_->setFaultInjector(std::move(options.faultInjector));
  }
  if (solverMode_ == linalg::SolverMode::reusePivot) primePivotReuse();
}

SimSession::~SimSession() = default;

void SimSession::syncDeviceBank() { assembler_->syncDeviceBank(); }

std::size_t SimSession::deviceBankLaneCount() const noexcept {
  return assembler_->deviceBankLaneCount();
}

SimSession::SolverTelemetry SimSession::solverTelemetry() const noexcept {
  const detail::NewtonWorkspace& ws = assembler_->workspace();
  const linalg::SparseLu& lu = ws.lu;
  return SolverTelemetry{lu.fullFactorCount(),
                         lu.fastRefactorCount(),
                         lu.pivotFallbackCount(),
                         lu.hasPivotSnapshot(),
                         lu.patternNonZeroCount(),
                         lu.factorNonZeroCount(),
                         lu.fillRatio(),
                         lu.orderingMicros(),
                         lu.fullFactorMicros(),
                         ws.report};
}

void SimSession::setSolverMode(linalg::SolverMode mode) {
  if (mode == solverMode_) return;
  solverMode_ = mode;
  assembler_->workspace().lu.setSolverMode(mode);
  // Returning to reusePivot after a fresh-mode rescue retry finds the
  // canonical snapshot still in place (reset() never drops it); priming
  // only runs for a session that was never primed at all.
  if (mode == linalg::SolverMode::reusePivot &&
      !assembler_->workspace().lu.hasPivotSnapshot()) {
    primePivotReuse();
  }
}

void SimSession::setNumericsMode(models::NumericsMode numerics) {
  assembler_->setNumericsMode(numerics);
}

models::NumericsMode SimSession::numericsMode() const noexcept {
  return assembler_->numericsMode();
}

void SimSession::setSampleContext(std::size_t sampleIndex,
                                  int attempt) noexcept {
  assembler_->setSampleContext(sampleIndex, attempt);
}

void SimSession::clearSampleContext() noexcept {
  assembler_->clearSampleContext();
}

int SimSession::sampleAttempt() const noexcept {
  return assembler_->sampleAttempt();
}

DcOptions SimSession::applyEffort(const DcOptions& options) const noexcept {
  DcOptions adjusted = options;
  adjusted.newton = applyEffort(options.newton);
  return adjusted;
}

NewtonOptions SimSession::applyEffort(
    const NewtonOptions& options) const noexcept {
  NewtonOptions adjusted = options;
  adjusted.maxIterations = options.maxIterations * effort_.iterationMultiplier;
  adjusted.maxUpdate = options.maxUpdate * effort_.maxUpdateScale;
  if (tier_ == ToleranceTier::statistical) {
    // Estimator contract: a 10x looser stationarity test (1e-6 V / 1e-8 A
    // at the defaults) leaves the per-solve error orders of magnitude
    // below one Monte Carlo standard error of any campaign estimator
    // (SNM/delay sigmas are mV-scale).  Looser than this and the bistable
    // sweeps (SRAM hold SNM) start accepting points off the tracked
    // branch, which corrupts the butterfly eye -- measured, not
    // hypothetical.
    adjusted.voltageTolerance = options.voltageTolerance * 10.0;
    adjusted.residualTolerance = options.residualTolerance * 10.0;
  }
  return adjusted;
}

void SimSession::clearWarmStarts() noexcept {
  for (WarmSlot& slot : warmSlots_) slot.valid = false;
  warmCursor_ = 0;
}

SimSession::WarmSlot* SimSession::nextWarmSlot() {
  if (tier_ != ToleranceTier::statistical) return nullptr;
  if (warmCursor_ >= warmSlots_.size()) warmSlots_.emplace_back();
  return &warmSlots_[warmCursor_++];
}

void SimSession::noteSolve(int iterations, bool warmSeeded,
                           bool opportunity) noexcept {
  ++iterTelemetry_.solves;
  iterTelemetry_.newtonIterations += static_cast<std::uint64_t>(
      iterations > 0 ? iterations : 0);
  if (opportunity) {
    ++iterTelemetry_.warmStartOpportunities;
    if (warmSeeded) ++iterTelemetry_.warmStartHits;
  }
}

void SimSession::resetNumerics() noexcept {
  linalg::SparseLu& lu = assembler_->workspace().lu;
  if (solverMode_ == linalg::SolverMode::reusePivot) {
    lu.restorePivotSnapshot();
  } else {
    lu.reset();
  }
}

void SimSession::primePivotReuse() {
  detail::Assembler& assembler = *assembler_;
  linalg::SparseLu& lu = assembler.workspace().lu;
  if (circuit_->unknownCount() == 0) return;  // nothing to factor, ever

  // Canonical order from the as-built circuit at the zero iterate -- the
  // exact state a fresh-mode solve's first Newton iteration would pivot on.
  // Campaign workers build their fixtures identically (same builder, same
  // provider seed), so every session primes the same order, which is what
  // keeps reuse-mode campaigns independent of sample-to-session scheduling.
  const linalg::Vector zero(circuit_->unknownCount(), 0.0);
  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  // A zero-iterate MNA Jacobian can be singular at exact zero gmin (off
  // pass transistors isolate nodes); retry under the homotopy ladder's
  // first shunt before giving up -- the shunt only perturbs diagonal
  // values, and pivot ORDER is all the snapshot keeps.
  for (const double gmin : {0.0, 1e-2}) {
    assembler.setGmin(gmin);
    assembler.assemble(zero);
    try {
      lu.refactorReusingPivots(assembler.jacobian());
      lu.snapshotPivotOrder();
      break;
    } catch (const ConvergenceError&) {
      // Singular at this gmin: try the next, or leave the session unprimed
      // (solves fall back to fresh per-solve pivoting, deterministically).
    }
  }
  assembler.setGmin(0.0);
  assembler.setDcMode();
}

OperatingPoint SimSession::dcOperatingPoint(const DcOptions& options) {
  WarmSlot* slot = nextWarmSlot();
  if (slot == nullptr) {
    OperatingPoint zeroGuess;
    return dcOperatingPoint(zeroGuess, options);
  }
  // Statistical tier: seed Newton from the previous sample's converged
  // operating point (same topology, slightly different device cards) when
  // the slot holds one; the homotopy ladder still backs a failed warm
  // solve, so robustness matches the cold path.
  resetNumerics();
  const DcOptions effective = applyEffort(options);
  linalg::Vector x(circuit_->unknownCount(), 0.0);
  const bool seeded = slot->valid && slot->x.size() == x.size();
  if (seeded) x = slot->x;
  const bool ok = detail::dcSolveLadder(*assembler_, x, effective);
  SolveReport& report = assembler_->workspace().report;
  report.warmStarted = seeded;
  noteSolve(report.iterations, seeded, /*opportunity=*/true);
  if (!ok) {
    slot->valid = false;
    detail::throwSolveFailure(report,
                              "SimSession::dcOperatingPoint: no convergence",
                              effective.newton.maxIterations);
  }
  slot->x = x;
  slot->valid = true;
  return detail::packSolution(*circuit_, x);
}

OperatingPoint SimSession::dcOperatingPoint(const OperatingPoint& guess,
                                            const DcOptions& options) {
  resetNumerics();
  const DcOptions effective = applyEffort(options);
  linalg::Vector x = detail::unpackGuess(*circuit_, guess);
  const bool ok = detail::dcSolveLadder(*assembler_, x, effective);
  noteSolve(assembler_->workspace().report.iterations, false,
            /*opportunity=*/false);
  if (!ok) {
    detail::throwSolveFailure(assembler_->workspace().report,
                              "SimSession::dcOperatingPoint: no convergence",
                              effective.newton.maxIterations);
  }
  return detail::packSolution(*circuit_, x);
}

std::vector<OperatingPoint> SimSession::dcSweep(
    const std::string& sourceName, const std::vector<double>& levels,
    const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  std::vector<OperatingPoint> result;
  result.reserve(levels.size());
  OperatingPoint guess;
  for (double level : levels) {
    src.setDcLevel(level);
    guess = result.empty() ? dcOperatingPoint(options)
                           : dcOperatingPoint(guess, options);
    result.push_back(guess);
  }
  return result;
}

void SimSession::dcSweepNode(const std::string& sourceName,
                             const std::vector<double>& levels,
                             NodeId probeNode, std::vector<double>& out,
                             const DcOptions& options) {
  VoltageSourceElement& src = circuit_->voltageSource(sourceName);
  const SweepSourceGuard restore(src);

  out.clear();
  out.reserve(levels.size());
  // The iterate persists across levels: handing level k's solution to
  // level k+1 directly is exactly the pack/unpack round trip dcSweep
  // performs (a straight copy), so the Newton trajectories -- and the
  // probed voltages -- are bit-identical to dcSweep's.
  //
  // Statistical tier: level 0 seeds from the previous sample's level-0
  // solution (warm slot), and level k+1 seeds from a linear (two converged
  // levels) or quadratic (three or more) extrapolation of the most recent
  // converged states instead of a plain copy -- the sweep-level warm start
  // that removes most of the per-level Newton polish.  When the slot also
  // carries the previous sample's full level trajectory on the SAME level
  // grid, each level instead seeds from that sample's converged state at
  // the same level plus this sample's running offset -- the sweep analogue
  // of the transient trajectory warm start, and the only predictor that
  // stays sharp through the steep VTC transition where extrapolation along
  // the sweep overshoots.  The predictors only move the first iterate; the
  // ladder and tolerances still decide convergence.
  WarmSlot* slot = nextWarmSlot();
  sweepX_.resize(circuit_->unknownCount());
  std::fill(sweepX_.begin(), sweepX_.end(), 0.0);  // level 0: zero guess
  const bool seeded =
      slot != nullptr && slot->valid && slot->x.size() == sweepX_.size();
  if (seeded) sweepX_ = slot->x;
  const TransientTrajectory* ref =
      seeded && slot->traj.usableFor(sweepX_.size()) &&
              slot->traj.times.size() == levels.size()
          ? &slot->traj
          : nullptr;
  if (slot != nullptr) trajScratch_.beginRecording();
  const DcOptions effective = applyEffort(options);
  std::size_t converged = 0;  // levels converged so far (statistical tier)
  double levelK = 0.0;    // converged level values: L_k,
  double levelKm1 = 0.0;  //   L_{k-1},
  double levelKm2 = 0.0;  //   L_{k-2}
  for (double level : levels) {
    // Predictor: writes the level-(k+1) guess into sweepPrev2X_ (whose
    // x_{k-2} payload is rotating out anyway), then rotates the buffers so
    // sweepX_ holds the guess/iterate, sweepPrevX_ the converged x_k, and
    // sweepPrev2X_ the converged x_{k-1} -- allocation-free.
    bool predicted = false;
    const bool refLevel = ref != nullptr && ref->times[converged] == level;
    if (slot != nullptr && converged >= 3) {
      // Quadratic Lagrange extrapolation through (L_k, x_k),
      // (L_{k-1}, x_{k-1}), (L_{k-2}, x_{k-2}); on the uniform grids the
      // measurement loops use the coefficients are the classic 3/-3/1.
      const double dA = (levelK - levelKm1) * (levelK - levelKm2);
      const double dB = (levelKm1 - levelK) * (levelKm1 - levelKm2);
      const double dC = (levelKm2 - levelK) * (levelKm2 - levelKm1);
      if (std::fabs(dA) > 1e-300 && std::fabs(dB) > 1e-300 &&
          std::fabs(dC) > 1e-300) {
        const double cK = (level - levelKm1) * (level - levelKm2) / dA;
        const double cKm1 = (level - levelK) * (level - levelKm2) / dB;
        const double cKm2 = (level - levelK) * (level - levelKm1) / dC;
        // Only trust the parabola near the uniform-grid regime; wildly
        // nonuniform grids fall back to the linear predictor below.
        if (std::fabs(cK) <= 6.0 && std::fabs(cKm1) <= 6.0 &&
            std::fabs(cKm2) <= 6.0) {
          for (std::size_t i = 0; i < sweepX_.size(); ++i)
            sweepPrev2X_[i] = cK * sweepX_[i] + cKm1 * sweepPrevX_[i] +
                              cKm2 * sweepPrev2X_[i];
          if (refLevel) {
            // Reference correction: add the previous sample's deviation
            // from ITS OWN quadratic extrapolation at this level.  The
            // parabola error is dominated by the curve's third derivative,
            // which two adjacent samples share almost exactly -- so the
            // corrected guess tracks even the steep VTC transition, where
            // the bare parabola overshoots.
            const linalg::Vector& r0 = ref->states[converged];
            const linalg::Vector& r1 = ref->states[converged - 1];
            const linalg::Vector& r2 = ref->states[converged - 2];
            const linalg::Vector& r3 = ref->states[converged - 3];
            for (std::size_t i = 0; i < sweepX_.size(); ++i)
              sweepPrev2X_[i] +=
                  r0[i] - (cK * r1[i] + cKm1 * r2[i] + cKm2 * r3[i]);
          }
          predicted = true;
        }
      }
    }
    if (!predicted && refLevel && converged >= 1) {
      // Too early in the sweep for the parabola: seed from the previous
      // sample's state at this level plus this sample's running offset.
      sweepPrev2X_.resize(sweepX_.size());
      const linalg::Vector& refHere = ref->states[converged];
      const linalg::Vector& refPrev = ref->states[converged - 1];
      for (std::size_t i = 0; i < sweepX_.size(); ++i)
        sweepPrev2X_[i] = refHere[i] + (sweepX_[i] - refPrev[i]);
      predicted = true;
    }
    if (slot != nullptr && !predicted && converged >= 2) {
      const double dPrev = levelK - levelKm1;
      double ratio = std::fabs(dPrev) > 1e-300 ? (level - levelK) / dPrev
                                               : 0.0;
      // Clamp the extrapolation on wildly nonuniform grids; ratio = 1 on
      // uniform sweeps.
      ratio = std::clamp(ratio, -2.0, 2.0);
      sweepPrev2X_.resize(sweepX_.size());
      for (std::size_t i = 0; i < sweepX_.size(); ++i)
        sweepPrev2X_[i] =
            sweepX_[i] + ratio * (sweepX_[i] - sweepPrevX_[i]);
      predicted = true;
    }
    if (predicted) {
      sweepPrev2X_.swap(sweepX_);      // sweepX_ = guess, prev2 = x_k
      sweepPrevX_.swap(sweepPrev2X_);  // prev = x_k, prev2 = x_{k-1}
    } else if (slot != nullptr && converged == 1) {
      sweepPrevX_ = sweepX_;  // stash level 0; guess stays the plain copy
      sweepPrev2X_.resize(sweepX_.size());
    }
    src.setDcLevel(level);
    resetNumerics();
    const bool ok = detail::dcSolveLadder(*assembler_, sweepX_, effective);
    SolveReport& report = assembler_->workspace().report;
    report.warmStarted = slot != nullptr && (converged > 0 || seeded);
    noteSolve(report.iterations, converged == 0 && seeded,
              /*opportunity=*/slot != nullptr && converged == 0);
    if (!ok) {
      if (slot != nullptr) slot->valid = false;
      detail::throwSolveFailure(report,
                                "SimSession::dcSweepNode: no convergence",
                                effective.newton.maxIterations);
    }
    if (slot != nullptr) {
      if (converged == 0) {
        slot->x = sweepX_;
        slot->valid = true;
      }
      trajScratch_.append(level, sweepX_);
      levelKm2 = levelKm1;
      levelKm1 = levelK;
      levelK = level;
      ++converged;
    }
    out.push_back(probeNode == kGround
                      ? 0.0
                      : sweepX_[static_cast<std::size_t>(probeNode - 1)]);
  }
  // Hand the full level trajectory to the next sample on this warm chain
  // (buffers recycle through the scratch recorder, so the steady-state
  // campaign records allocation-free).
  if (slot != nullptr) slot->traj.swap(trajScratch_);
}

Waveform SimSession::transient(const TransientOptions& options) {
  Waveform wave(circuit_->nodeCount());
  transient(options, wave);
  return wave;
}

void SimSession::transient(const TransientOptions& options, Waveform& out) {
  resetNumerics();
  TransientOptions effective = options;
  effective.newton = applyEffort(options.newton);
  effective.dcOptions = applyEffort(options.dcOptions);
  if (tier_ == ToleranceTier::statistical) {
    // Statistical tier: half the time resolution.  Trapezoidal LTE is
    // O(h^2) -- a 2x step turns fs-scale truncation error into 4x fs-scale,
    // still orders of magnitude below the mV/ps Monte Carlo standard
    // errors the tier's estimator contract is stated against, and it
    // halves the dominant per-sample cost (assemble+factor per step).
    // Step halving keeps the same dtMin recovery floor.
    effective.dt = options.dt * 2.0;
  }
  WarmSlot* slot = nextWarmSlot();
  detail::TransientControls controls;
  bool seeded = false;
  if (slot != nullptr) {
    controls.predictiveSteps = true;
    seeded = slot->valid && slot->x.size() == circuit_->unknownCount();
    if (seeded) controls.dcWarmStart = &slot->x;
    // The converged t = 0 DC state lands straight in the slot; `valid`
    // only flips once the whole transient succeeds.
    controls.dcSolutionOut = &slot->x;
    // Previous sample's accepted waveform seeds every step; this run's
    // waveform is recorded into the scratch and swapped in on success, so
    // a failed run never leaves a half-trajectory as the next reference.
    if (seeded && slot->traj.usableFor(circuit_->unknownCount()))
      controls.trajectoryIn = &slot->traj;
    controls.trajectoryOut = &trajScratch_;
    slot->valid = false;
  }
  try {
    detail::runTransient(*assembler_, effective, out, controls);
  } catch (...) {
    noteSolve(assembler_->workspace().report.iterations, seeded,
              /*opportunity=*/slot != nullptr);
    throw;
  }
  SolveReport& report = assembler_->workspace().report;
  report.warmStarted = seeded;
  noteSolve(report.iterations, seeded, /*opportunity=*/slot != nullptr);
  if (slot != nullptr) {
    slot->traj.swap(trajScratch_);
    slot->valid = true;
  }
}

}  // namespace vsstat::spice
