#include "spice/circuit.hpp"

#include <utility>

#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

Circuit::Circuit() {
  names_.push_back("0");
  byName_.emplace("0", kGround);
  byName_.emplace("gnd", kGround);
}

NodeId Circuit::node(const std::string& name) {
  const auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  byName_.emplace(name, id);
  return id;
}

const std::string& Circuit::nodeName(NodeId id) const {
  require(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
          "nodeName: unknown node id");
  return names_[static_cast<std::size_t>(id)];
}

void Circuit::registerElement(std::unique_ptr<Element> e) {
  require(elementByName_.find(e->name()) == elementByName_.end(),
          "duplicate element name: " + e->name());
  e->setBases(branchTotal_, chargeTotal_);
  branchTotal_ += e->branchCount();
  chargeTotal_ += e->chargeSlots();
  elementByName_.emplace(e->name(), e.get());
  elements_.push_back(std::move(e));
}

void Circuit::addResistor(const std::string& name, NodeId a, NodeId b,
                          double ohms) {
  registerElement(std::make_unique<ResistorElement>(name, a, b, ohms));
}

void Circuit::addCapacitor(const std::string& name, NodeId a, NodeId b,
                           double farads) {
  registerElement(std::make_unique<CapacitorElement>(name, a, b, farads));
}

void Circuit::addCurrentSource(const std::string& name, NodeId from, NodeId to,
                               SourceWaveform waveform) {
  registerElement(std::make_unique<CurrentSourceElement>(name, from, to,
                                                         std::move(waveform)));
}

VoltageSourceElement& Circuit::addVoltageSource(const std::string& name,
                                                NodeId pos, NodeId neg,
                                                SourceWaveform waveform) {
  auto e = std::make_unique<VoltageSourceElement>(name, pos, neg,
                                                  std::move(waveform));
  VoltageSourceElement& ref = *e;
  registerElement(std::move(e));
  return ref;
}

MosfetElement& Circuit::addMosfet(const std::string& name, NodeId drain,
                                  NodeId gate, NodeId source,
                                  std::unique_ptr<models::MosfetModel> model,
                                  const models::DeviceGeometry& geometry) {
  auto e = std::make_unique<MosfetElement>(name, drain, gate, source,
                                           std::move(model), geometry);
  MosfetElement& ref = *e;
  registerElement(std::move(e));
  return ref;
}

VoltageSourceElement& Circuit::voltageSource(const std::string& name) {
  // Messages are built only on failure: these lookups sit in campaign
  // inner loops (one per sweep), and eager concatenation was a measurable
  // per-sample allocation.
  const auto it = elementByName_.find(name);
  if (it == elementByName_.end())
    throw InvalidArgumentError("no element named " + name);
  auto* v = dynamic_cast<VoltageSourceElement*>(it->second);
  if (v == nullptr) throw InvalidArgumentError(name + " is not a voltage source");
  return *v;
}

MosfetElement& Circuit::mosfet(const std::string& name) {
  const auto it = elementByName_.find(name);
  if (it == elementByName_.end())
    throw InvalidArgumentError("no element named " + name);
  auto* m = dynamic_cast<MosfetElement*>(it->second);
  if (m == nullptr) throw InvalidArgumentError(name + " is not a MOSFET");
  return *m;
}

std::size_t Circuit::unknownCount() const noexcept {
  return (names_.size() - 1) + static_cast<std::size_t>(branchTotal_);
}

}  // namespace vsstat::spice
