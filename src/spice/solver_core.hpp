// Internal: the Newton/homotopy/transient solver core shared by the free
// analysis functions (analysis.cpp) and the persistent SimSession
// (session.cpp).  Not part of the public API.
//
// Determinism contract: given the same Assembler settings, circuit
// parameters, and starting iterate, every function here produces
// bit-identical results whether the assembler/workspace is freshly
// constructed or reused -- provided the workspace factorization was put in
// a solve-boundary state beforehand (the SparseLu pivot order is otherwise
// frozen from whatever solve last ran full pivoting).  The boundary state
// depends on the session's SolverMode: fresh sessions reset() so each
// solve re-derives its own pivot order (bit-identical to the legacy
// rebuild-per-sample path); reuse-pivot sessions restore the canonical
// pivot snapshot so each solve runs on the same primed order (bit-identical
// across solve orderings and thread counts, but on a different --
// statistically equivalent -- Newton trajectory than fresh).  The solver
// loops themselves are mode-blind: SparseLu::refactor() dispatches on the
// mode installed by the Assembler.
#ifndef VSSTAT_SPICE_SOLVER_CORE_HPP
#define VSSTAT_SPICE_SOLVER_CORE_HPP

#include <string>

#include "spice/analysis.hpp"
#include "spice/assembler.hpp"

namespace vsstat::spice::detail {

/// One damped Newton solve at fixed assembler settings.  Returns true on
/// convergence; x holds the final iterate either way.  On return the
/// assembler's residual/charge state is consistent with the final x
/// (convergence is detected *before* applying a step), so callers never
/// need to re-assemble at the solution.
bool newtonSolve(Assembler& assembler, linalg::Vector& x,
                 const NewtonOptions& options);

/// DC solve ladder: plain Newton, then gmin stepping, then source stepping.
/// Resets and fills the workspace SolveReport (outcome, iterations, deepest
/// homotopy rung, final residual, pivot fallbacks, singular/non-finite
/// flags) for successful and failed solves alike.
bool dcSolveLadder(Assembler& assembler, linalg::Vector& x,
                   const DcOptions& options);

/// Throws the SampleFailure subclass matching `report.outcome`:
/// NonFiniteError / SingularMatrixError / ConvergenceError.  Shared by the
/// free analysis entry points and SimSession so campaign failure classes
/// are consistent regardless of the solve surface used.
[[noreturn]] void throwSolveFailure(const SolveReport& report,
                                    const std::string& what, int iterations);

OperatingPoint packSolution(const Circuit& circuit, const linalg::Vector& x);
linalg::Vector unpackGuess(const Circuit& circuit, const OperatingPoint& op);

/// Statistical-tier warm-start seam of the transient driver.  The default
/// state is inert: a zero-initialized TransientControls reproduces the
/// historical code path bit for bit.
struct TransientControls {
  /// Seed for the t = 0 DC ladder (previous sample's DC solution); null or
  /// size-mismatched falls back to the zero guess.
  const linalg::Vector* dcWarmStart = nullptr;
  /// Receives the converged t = 0 DC solution (the state worth handing to
  /// the NEXT sample as dcWarmStart); null skips the copy.
  linalg::Vector* dcSolutionOut = nullptr;
  /// Linear step predictor: seed each trapezoidal step's Newton from
  /// x + (x - xPrev) * h/hPrev instead of the constant x.  Halving retries
  /// always fall back to the constant predictor.
  bool predictiveSteps = false;
  /// Previous sample's accepted-step trajectory: when usable, each step's
  /// first iterate becomes ref(tNext) + (x - ref(t)) -- the reference
  /// waveform carried to the new time plus the current sample's running
  /// offset from it.  Beats the local extrapolation because the reference
  /// already contains the waveform's shape; only the (slowly varying)
  /// mismatch offset is predicted constant.  Null disables.
  const TransientTrajectory* trajectoryIn = nullptr;
  /// Receives this run's accepted trajectory (cleared first; t = 0 DC state
  /// included) -- the reference for the NEXT sample.  Null skips recording.
  TransientTrajectory* trajectoryOut = nullptr;
};

/// Full transient run on an existing assembler (t = 0 DC solve included),
/// recorded into `out` (reset first; capacity reused).  Scratch vectors
/// live in the assembler's workspace, so a warm session transient performs
/// no per-run allocations beyond waveform growth past prior capacity.
void runTransient(Assembler& assembler, const TransientOptions& options,
                  Waveform& out, const TransientControls& controls = {});

/// By-value convenience wrapper around the overload above.
Waveform runTransient(Assembler& assembler, const TransientOptions& options);

}  // namespace vsstat::spice::detail

#endif  // VSSTAT_SPICE_SOLVER_CORE_HPP
