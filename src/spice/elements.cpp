#include "spice/elements.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace vsstat::spice {

// --- Resistor -----------------------------------------------------------------

ResistorElement::ResistorElement(std::string name, NodeId a, NodeId b,
                                 double ohms)
    : Element(std::move(name)), a_(a), b_(b), conductance_(1.0 / ohms) {
  require(ohms > 0.0, "Resistor requires positive resistance");
}

void ResistorElement::load(LoadContext& ctx) const {
  const double g = conductance_;
  const double i = g * (ctx.v(a_) - ctx.v(b_));
  ctx.addCurrent(a_, i);
  ctx.addCurrent(b_, -i);
  ctx.addJacobian(a_, a_, g);
  ctx.addJacobian(a_, b_, -g);
  ctx.addJacobian(b_, a_, -g);
  ctx.addJacobian(b_, b_, g);
}

// --- Capacitor -----------------------------------------------------------------

CapacitorElement::CapacitorElement(std::string name, NodeId a, NodeId b,
                                   double farads)
    : Element(std::move(name)), a_(a), b_(b), capacitance_(farads) {
  require(farads >= 0.0, "Capacitor requires non-negative capacitance");
}

void CapacitorElement::load(LoadContext& ctx) const {
  const double q = capacitance_ * (ctx.v(a_) - ctx.v(b_));
  ctx.setCharge(0, q);
  const double i = ctx.chargeCurrent(0, q);
  const double g = ctx.chargeGain() * capacitance_;
  ctx.addCurrent(a_, i);
  ctx.addCurrent(b_, -i);
  ctx.addJacobian(a_, a_, g);
  ctx.addJacobian(a_, b_, -g);
  ctx.addJacobian(b_, a_, -g);
  ctx.addJacobian(b_, b_, g);
}

// --- Current source ---------------------------------------------------------------

CurrentSourceElement::CurrentSourceElement(std::string name, NodeId from,
                                           NodeId to, SourceWaveform waveform)
    : Element(std::move(name)), from_(from), to_(to),
      waveform_(std::move(waveform)) {}

void CurrentSourceElement::load(LoadContext& ctx) const {
  const double i = ctx.sourceScale() * waveform_.valueAt(ctx.time());
  ctx.addCurrent(from_, i);
  ctx.addCurrent(to_, -i);
}

// --- Voltage source ---------------------------------------------------------------

VoltageSourceElement::VoltageSourceElement(std::string name, NodeId pos,
                                           NodeId neg, SourceWaveform waveform)
    : Element(std::move(name)), pos_(pos), neg_(neg),
      waveform_(std::move(waveform)) {}

void VoltageSourceElement::load(LoadContext& ctx) const {
  const double i = ctx.branchCurrent(0);
  // Branch current flows from pos through the source to neg.
  ctx.addCurrent(pos_, i);
  ctx.addCurrent(neg_, -i);
  ctx.addJacobianBranch(pos_, 0, 1.0);
  ctx.addJacobianBranch(neg_, 0, -1.0);

  const double target = ctx.sourceScale() * waveform_.valueAt(ctx.time());
  ctx.addBranchResidual(0, ctx.v(pos_) - ctx.v(neg_) - target);
  ctx.addBranchJacobianV(0, pos_, 1.0);
  ctx.addBranchJacobianV(0, neg_, -1.0);
}

// --- MOSFET -----------------------------------------------------------------------

MosfetElement::MosfetElement(std::string name, NodeId drain, NodeId gate,
                             NodeId source,
                             std::unique_ptr<models::MosfetModel> model,
                             const models::DeviceGeometry& geometry)
    : Element(std::move(name)), drain_(drain), gate_(gate), source_(source),
      model_(std::move(model)), geometry_(geometry) {
  require(model_ != nullptr, "MosfetElement requires a model");
  require(geometry_.width > 0.0 && geometry_.length > 0.0,
          "MosfetElement requires positive geometry");
}

void MosfetElement::setInstance(std::unique_ptr<models::MosfetModel> model,
                                const models::DeviceGeometry& geometry) {
  require(model != nullptr, "setInstance requires a model");
  model_ = std::move(model);
  geometry_ = geometry;
  ++cardVersion_;
}

void MosfetElement::rebind(const models::MosfetModel& model,
                           const models::DeviceGeometry& geometry) {
  require(geometry.width > 0.0 && geometry.length > 0.0,
          "rebind requires positive geometry");
  require(model.deviceType() == model_->deviceType(),
          "rebind must not change device polarity");
  if (!model_->assignFrom(model)) model_ = model.clone();
  geometry_ = geometry;
  ++cardVersion_;
}

double MosfetElement::terminalDrainCurrent(double vd, double vg,
                                           double vs) const {
  const double sign =
      model_->deviceType() == models::DeviceType::Nmos ? 1.0 : -1.0;
  const double vgs = sign * (vg - vs);
  const double vds = sign * (vd - vs);
  return sign * model_->drainCurrent(geometry_, vgs, vds);
}

void MosfetElement::load(LoadContext& ctx) const {
  const double sign =
      model_->deviceType() == models::DeviceType::Nmos ? 1.0 : -1.0;
  const double vg = ctx.v(gate_);
  const double vd = ctx.v(drain_);
  const double vs = ctx.v(source_);
  const double vgs = sign * (vg - vs);
  const double vds = sign * (vd - vs);

  // One batched model call supplies the evaluation plus all current/charge
  // derivatives in the canonical bias plane -- analytic for the VS model,
  // forward differences for models without analytic chains.  This is the
  // single hottest call in the engine; device banks hoist it out of the
  // element loop and hand the result to scatterLoad directly.
  scatterLoad(ctx, model_->evaluateLoad(geometry_, vgs, vds, kMosfetFdStep));
}

void MosfetElement::scatterLoad(LoadContext& ctx,
                                const models::MosfetLoadEvaluation& ev) const {
  const double sign =
      model_->deviceType() == models::DeviceType::Nmos ? 1.0 : -1.0;
  const models::MosfetEvaluation& e0 = ev.at;

  const double didvgs = ev.didVgs;
  const double didvds = ev.didVds;

  // DC current: canonical id flows into the canonical drain; the sign maps
  // it back to the terminal orientation.  d(current leaving drain)/dVg is
  // sign*did/dvgs*sign = did/dvgs, etc.
  const double idTerm = sign * e0.id;
  ctx.addCurrent(drain_, idTerm);
  ctx.addCurrent(source_, -idTerm);
  ctx.addJacobian(drain_, gate_, didvgs);
  ctx.addJacobian(drain_, drain_, didvds);
  ctx.addJacobian(drain_, source_, -(didvgs + didvds));
  ctx.addJacobian(source_, gate_, -didvgs);
  ctx.addJacobian(source_, drain_, -didvds);
  ctx.addJacobian(source_, source_, didvgs + didvds);

  // Charge currents.  Terminal charges map with the polarity sign.
  const double qg = sign * e0.qg;
  const double qd = sign * e0.qd;
  const double qs = sign * e0.qs;
  ctx.setCharge(0, qg);
  ctx.setCharge(1, qd);
  ctx.setCharge(2, qs);

  const double c0 = ctx.chargeGain();
  const double ig = ctx.chargeCurrent(0, qg);
  const double idq = ctx.chargeCurrent(1, qd);
  const double isq = ctx.chargeCurrent(2, qs);
  ctx.addCurrent(gate_, ig);
  ctx.addCurrent(drain_, idq);
  ctx.addCurrent(source_, isq);

  if (c0 != 0.0) {
    // dq/dvgs, dq/dvds in canonical plane; the polarity signs cancel as for
    // the current derivatives.
    const auto stampCharge = [&](NodeId terminal, double dqdvgs,
                                 double dqdvds) {
      ctx.addJacobian(terminal, gate_, c0 * dqdvgs);
      ctx.addJacobian(terminal, drain_, c0 * dqdvds);
      ctx.addJacobian(terminal, source_, -c0 * (dqdvgs + dqdvds));
    };
    stampCharge(gate_, ev.dqgVgs, ev.dqgVds);
    stampCharge(drain_, ev.dqdVgs, ev.dqdVds);
    stampCharge(source_, ev.dqsVgs, ev.dqsVds);
  }
}

}  // namespace vsstat::spice
