// Persistent per-circuit solver session.
//
// The free functions in analysis.hpp construct a fresh Assembler -- pattern
// capture, symbolic fill analysis, workspace allocation -- on every call,
// which is wasteful when the same topology is solved thousands of times
// (Monte Carlo campaigns, DC sweeps, yield indicators).  A SimSession
// captures that state once and reuses it across every analysis it runs;
// device cards may be rebound between runs (MosfetElement::rebind) because
// the MNA stamp pattern is bias- and parameter-independent by contract.
//
// Numerics contract: each solve resets the workspace factorization's pivot
// order first, so every analysis is bit-identical to the equivalent free
// function on a freshly built circuit.  This is what lets the
// build-once/rebind-per-sample campaign path (sim::CampaignSession) assert
// bit-identical metrics against the legacy rebuild-per-sample path, and it
// keeps campaign results independent of which worker session evaluated
// which sample.
//
// SessionOptions::numerics == NumericsMode::fast opts out of the
// bit-identity half of that contract only: banked VS evaluation runs the
// vectorized kernel pipeline, whose results differ from reference in the
// last ulps (tolerance-tested).  Determinism is unchanged -- a fast session
// still produces the same bits for the same inputs on every run and every
// worker.
//
// SessionOptions::solver == SolverMode::reusePivot opts out of the other
// half: instead of re-pivoting per solve, the session derives ONE canonical
// pivot order + symbolic fill from the as-built circuit at construction and
// restores it at every solve boundary, so every solve skips the dense
// partial-pivot search and the symbolic pass (SparseLu::
// refactorReusingPivots, guarded by the growth/zero-pivot monitor).
// Because the canonical order depends only on the as-built circuit -- never
// on which sample a solve belongs to or which solve ran before -- results
// remain deterministic and bit-identical across thread counts and session
// assignments; only the Newton trajectory differs from fresh mode
// (statistically equivalent, tolerance-tested like fast numerics).  The two
// axes compose freely.
#ifndef VSSTAT_SPICE_SESSION_HPP
#define VSSTAT_SPICE_SESSION_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse_lu.hpp"
#include "models/device.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/fault_injection.hpp"
#include "spice/solve_report.hpp"
#include "spice/waveform.hpp"

namespace vsstat::spice {

namespace detail {
class Assembler;
}

/// Third orthogonal campaign axis (alongside models::NumericsMode and
/// linalg::SolverMode): which accuracy contract the session's solves honor.
enum class ToleranceTier : std::uint8_t {
  /// Default: the per-sample contract.  Every analysis starts from the
  /// documented cold state (zero guess + homotopy ladder), so results are
  /// bit-identical (reference/fresh) or 1e-8-tolerance-contracted
  /// (fast/reusePivot) against the free functions, sample by sample.
  perSample,
  /// Campaign-estimator contract: analyses may warm-start from previous
  /// samples' converged states (SimSession warm slots), sweep levels seed
  /// Newton from a linear extrapolation of earlier levels, transient steps
  /// use a linear step predictor, and Newton tolerances relax 10x.  Every
  /// per-sample value remains deterministic -- a fixed warm-start chain
  /// produces the same bits on every run and every worker -- but is no
  /// longer individually comparable to a cold solve; the accuracy contract
  /// moves to the ESTIMATOR (mean/sigma/quantile/yield within N Monte
  /// Carlo standard errors of a perSample run; see README "Session
  /// modes").  Not for debugging or bit-identity comparisons.
  statistical,
};

[[nodiscard]] inline const char* toString(ToleranceTier tier) noexcept {
  return tier == ToleranceTier::statistical ? "statistical" : "per-sample";
}

struct SessionOptions {
  /// Batched struct-of-arrays MOSFET evaluation (spice/device_bank.hpp).
  /// Bit-identical to the scalar element loop by contract; turning it off
  /// selects the scalar fallback (the comparison axis for benches/tests,
  /// and an escape hatch for exotic element mixes).
  bool useDeviceBank = true;
  /// Numerics contract of the banked model evaluation
  /// (models::NumericsMode).  `reference` (default) pins every analysis
  /// bit-identical to the free functions; `fast` batches the VS chain's
  /// transcendentals through the vectorized kernels of util/simd_math.hpp
  /// -- deterministic and tolerance-checked against reference, but NOT
  /// bit-identical to it.  Fast requires `useDeviceBank` (enforced).
  models::NumericsMode numerics = models::NumericsMode::reference;
  /// Pivot policy of the workspace factorization (linalg::SolverMode).
  /// `fresh` (default) re-pivots per solve, pinning every analysis
  /// bit-identical to the free functions; `reusePivot` amortizes one
  /// canonical pivot order + symbolic fill across all of the session's
  /// solves (breakdown-monitored), trading bit-identity with the free
  /// functions for throughput while staying deterministic and
  /// thread-count-independent.  Composes with `numerics` -- the two axes
  /// gate independent halves of the bit-identity contract.
  linalg::SolverMode solver = linalg::SolverMode::fresh;
  /// Accuracy tier of the session's solves (ToleranceTier).  `perSample`
  /// (default) keeps the cold-start per-sample contract; `statistical`
  /// enables warm-started, relaxed-tolerance solves under the
  /// estimator-level contract.  Orthogonal to `numerics` and `solver`.
  ToleranceTier tier = ToleranceTier::perSample;
  /// Test-only deterministic fault schedule (spice/fault_injection.hpp),
  /// shared across the campaign's worker sessions.  Null (default) leaves
  /// every injection site inert.
  std::shared_ptr<const FaultInjector> faultInjector = nullptr;
};

class SimSession {
 public:
  /// Binds to `circuit` and captures its MNA pattern.  The circuit must
  /// outlive the session; its topology must not change afterwards (device
  /// rebinding and source retuning are fine).
  explicit SimSession(Circuit& circuit, SessionOptions options = {});
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  [[nodiscard]] Circuit& circuit() noexcept { return *circuit_; }

  /// DC operating point from a zero guess; throws ConvergenceError when
  /// every homotopy fails.  Bit-identical to spice::dcOperatingPoint.
  [[nodiscard]] OperatingPoint dcOperatingPoint(const DcOptions& options = {});

  /// Warm-started DC operating point.
  [[nodiscard]] OperatingPoint dcOperatingPoint(const OperatingPoint& guess,
                                                const DcOptions& options);

  /// DC sweep of a named voltage source, warm-starting each point from the
  /// previous solution; the source's waveform is restored afterwards.
  /// Bit-identical to spice::dcSweep.
  [[nodiscard]] std::vector<OperatingPoint> dcSweep(
      const std::string& sourceName, const std::vector<double>& levels,
      const DcOptions& options = {});

  /// Lean sweep for probe-one-node consumers (VTC/butterfly loops): same
  /// solver trajectory as dcSweep -- the warm-start handoff between levels
  /// is an exact copy either way -- but records only `probeNode`'s voltage
  /// per level into `out` instead of materializing an OperatingPoint per
  /// level.  Allocation-free in steady state (out's capacity is reused).
  void dcSweepNode(const std::string& sourceName,
                   const std::vector<double>& levels, NodeId probeNode,
                   std::vector<double>& out, const DcOptions& options = {});

  /// Transient analysis; bit-identical to spice::transient.
  [[nodiscard]] Waveform transient(const TransientOptions& options);

  /// Transient analysis into a caller-owned record (cleared first, capacity
  /// reused) -- the allocation-free variant for campaign inner loops.
  /// Sample-for-sample identical to the overload above.
  void transient(const TransientOptions& options, Waveform& out);

  /// Eagerly re-derives the device bank's cached lane state after a rebind
  /// pass (sim::CampaignSession calls this per sample, hoisting the refresh
  /// out of the Newton loop).  Lazy sync inside the assembler makes this an
  /// optimization, not a correctness requirement.
  void syncDeviceBank();

  /// Banked MOSFET lanes (0 = scalar fallback / no MOSFETs): telemetry for
  /// tests and benches that assert banking is actually engaged.
  [[nodiscard]] std::size_t deviceBankLaneCount() const noexcept;

  /// Workspace-factorization counters: proof that a solver mode is actually
  /// engaged (tests) and visibility into breakdown-fallback frequency
  /// (benches).  reusePivot sessions show ~flat fullFactors after priming;
  /// fresh sessions grow it by one per solve.
  struct SolverTelemetry {
    std::uint64_t fullFactors = 0;     ///< analyze + partial-pivot passes
    std::uint64_t fastRefactors = 0;   ///< structure-reusing refactors
    std::uint64_t pivotFallbacks = 0;  ///< reuse-monitor breakdowns
    bool pivotSnapshotPrimed = false;  ///< canonical order captured
    // Sparse-factor shape and cost: how much fill the fill-reducing order
    // admitted on this topology, and where the full-path time went.  The
    // micros are cumulative wall time over the session (ordering runs once
    // per pattern; full factors once per fresh solve plus breakdowns).
    std::size_t patternNnz = 0;        ///< structural nonzeros of A
    std::size_t factorNnz = 0;         ///< structural nonzeros of L+U
    double fillRatio = 0.0;            ///< factorNnz / patternNnz
    std::uint64_t orderingMicros = 0;
    std::uint64_t fullFactorMicros = 0;
    /// Structured diagnostics of the most recent solve (DC point, sweep
    /// level, or transient), for successful and failed solves alike.
    SolveReport lastSolve;
  };
  [[nodiscard]] SolverTelemetry solverTelemetry() const noexcept;

  // --- rescue-ladder controls (sim::CampaignSession) -------------------------
  // Everything below is deterministic state the rescue ladder flips per
  // retry and restores afterwards; none of it is thread- or time-dependent.

  /// Switches the pivot policy in place.  Fresh -> reusePivot reuses the
  /// snapshot primed at construction (repriming only if none exists);
  /// reusePivot -> fresh makes every solve re-derive its own order.
  void setSolverMode(linalg::SolverMode mode);
  [[nodiscard]] linalg::SolverMode solverMode() const noexcept {
    return solverMode_;
  }

  /// Switches the banked evaluation contract in place (fast <-> reference).
  /// Throws when asked for fast numerics on a bank-less session.
  void setNumericsMode(models::NumericsMode numerics);
  [[nodiscard]] models::NumericsMode numericsMode() const noexcept;

  /// Extra Newton effort applied to every solve's options: the iteration
  /// budget is multiplied and the update clamp scaled (a smaller clamp =
  /// heavier damping).  The identity default changes nothing -- including
  /// at the bit level, since scaling by exactly 1.0 is exact.
  struct SolveEffort {
    int iterationMultiplier = 1;
    double maxUpdateScale = 1.0;
  };
  void setSolveEffort(const SolveEffort& effort) noexcept { effort_ = effort; }
  [[nodiscard]] const SolveEffort& solveEffort() const noexcept {
    return effort_;
  }

  /// Switches the accuracy tier in place (rescue rungs force `perSample`
  /// for their retries and restore the baseline afterwards).  Warm slots
  /// are kept -- only consumption/production is gated -- so restoring the
  /// statistical tier resumes the warm chain deterministically.
  void setToleranceTier(ToleranceTier tier) noexcept { tier_ = tier; }
  [[nodiscard]] ToleranceTier toleranceTier() const noexcept { return tier_; }

  // --- statistical-tier warm starts ------------------------------------------
  // Under ToleranceTier::statistical every top-level analysis entry
  // (dcOperatingPoint from zero, dcSweepNode, transient) consumes one warm
  // SLOT in call order: slot i seeds analysis i from the converged state
  // the PREVIOUS sample's analysis i stored there.  Campaign samples run a
  // fixed analysis sequence, so the cursor-aligned slots always pair like
  // with like.  Under perSample the slots are inert.

  /// Marks the start of a sample's analysis sequence: rewinds the warm
  /// cursor to slot 0.  sim::CampaignSession calls this from every rebind.
  void beginSampleWarmStart() noexcept { warmCursor_ = 0; }
  /// Invalidates every warm slot (deterministic cold-start rule: block
  /// boundaries of a blocked campaign, and rescue-ladder engagement).
  void clearWarmStarts() noexcept;

  /// Cumulative Newton-iteration counters over the session's lifetime.
  /// Campaign wrappers diff them around a sample to aggregate per-campaign
  /// mean iterations/sample and the warm-start hit rate (mc::McResult).
  struct IterationTelemetry {
    std::uint64_t newtonIterations = 0;  ///< summed SolveReport::iterations
    std::uint64_t solves = 0;            ///< top-level + sweep-level solves
    std::uint64_t warmStartHits = 0;     ///< solves seeded from a warm slot
    std::uint64_t warmStartOpportunities = 0;  ///< statistical-tier entries
  };
  [[nodiscard]] const IterationTelemetry& iterationTelemetry() const noexcept {
    return iterTelemetry_;
  }

  /// Arms the fault injector (if any) for (sampleIndex, rescue attempt).
  void setSampleContext(std::size_t sampleIndex, int attempt) noexcept;
  void clearSampleContext() noexcept;
  /// Rescue attempt of the armed sample context (0 on the first attempt
  /// and outside campaigns) -- for metric code consulting
  /// FaultInjector::metricThrowAt.
  [[nodiscard]] int sampleAttempt() const noexcept;

 private:
  /// Resets the workspace LU pivot state at a solve boundary.  Fresh mode
  /// forgets the pivot order so this solve re-derives it from its own
  /// first iterate (the legacy fresh-assembler granularity: one full
  /// pivoting pass per dcOperatingPoint / transient call); reuse-pivot
  /// mode restores the canonical snapshot instead, so the solve runs on
  /// the primed order no matter what a breakdown in an earlier solve did.
  /// Buffers stay at capacity either way -- no steady-state allocation.
  void resetNumerics() noexcept;

  /// reusePivot priming: derives the canonical pivot order from the
  /// as-built circuit at the zero iterate (a sample-independent state, so
  /// identically-built worker sessions all derive the same order) and
  /// snapshots it.  A circuit whose zero-iterate Jacobian is singular even
  /// under a gmin shunt leaves the session unprimed: solves then fall back
  /// to fresh-style per-solve pivoting, still deterministically.
  void primePivotReuse();

  /// Applies the session's SolveEffort to per-call options (exact no-op at
  /// the identity default).  Under the statistical tier the Newton
  /// tolerances additionally relax 10x -- far below the Monte Carlo
  /// standard error the tier's estimator contract is stated against.
  [[nodiscard]] DcOptions applyEffort(const DcOptions& options) const noexcept;
  [[nodiscard]] NewtonOptions applyEffort(
      const NewtonOptions& options) const noexcept;

  /// One sample-to-sample warm-start slot (see beginSampleWarmStart).
  struct WarmSlot {
    linalg::Vector x;
    /// Transient slots also carry the previous sample's accepted-step
    /// trajectory (the reference waveform for the step predictor).
    TransientTrajectory traj;
    bool valid = false;
  };
  /// Next slot in analysis-call order, or nullptr under perSample.
  [[nodiscard]] WarmSlot* nextWarmSlot();
  /// Accumulates one top-level solve into the iteration telemetry.
  void noteSolve(int iterations, bool warmSeeded, bool opportunity) noexcept;

  Circuit* circuit_;
  std::unique_ptr<detail::Assembler> assembler_;
  linalg::SolverMode solverMode_ = linalg::SolverMode::fresh;
  ToleranceTier tier_ = ToleranceTier::perSample;
  SolveEffort effort_;
  linalg::Vector sweepX_;  ///< persistent sweep iterate (dcSweepNode)
  linalg::Vector sweepPrevX_;   ///< previous converged level (extrapolation)
  linalg::Vector sweepPrev2X_;  ///< two-back converged level (quadratic)
  TransientTrajectory trajScratch_;  ///< in-flight transient recording
  std::vector<WarmSlot> warmSlots_;
  std::size_t warmCursor_ = 0;
  IterationTelemetry iterTelemetry_;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_SESSION_HPP
