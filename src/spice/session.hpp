// Persistent per-circuit solver session.
//
// The free functions in analysis.hpp construct a fresh Assembler -- pattern
// capture, symbolic fill analysis, workspace allocation -- on every call,
// which is wasteful when the same topology is solved thousands of times
// (Monte Carlo campaigns, DC sweeps, yield indicators).  A SimSession
// captures that state once and reuses it across every analysis it runs;
// device cards may be rebound between runs (MosfetElement::rebind) because
// the MNA stamp pattern is bias- and parameter-independent by contract.
//
// Numerics contract: each solve resets the workspace factorization's pivot
// order first, so every analysis is bit-identical to the equivalent free
// function on a freshly built circuit.  This is what lets the
// build-once/rebind-per-sample campaign path (sim::CampaignSession) assert
// bit-identical metrics against the legacy rebuild-per-sample path, and it
// keeps campaign results independent of which worker session evaluated
// which sample.
//
// SessionOptions::numerics == NumericsMode::fast opts out of the
// bit-identity half of that contract only: banked VS evaluation runs the
// vectorized kernel pipeline, whose results differ from reference in the
// last ulps (tolerance-tested).  Determinism is unchanged -- a fast session
// still produces the same bits for the same inputs on every run and every
// worker.
#ifndef VSSTAT_SPICE_SESSION_HPP
#define VSSTAT_SPICE_SESSION_HPP

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "models/device.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace vsstat::spice {

namespace detail {
class Assembler;
}

struct SessionOptions {
  /// Batched struct-of-arrays MOSFET evaluation (spice/device_bank.hpp).
  /// Bit-identical to the scalar element loop by contract; turning it off
  /// selects the scalar fallback (the comparison axis for benches/tests,
  /// and an escape hatch for exotic element mixes).
  bool useDeviceBank = true;
  /// Numerics contract of the banked model evaluation
  /// (models::NumericsMode).  `reference` (default) pins every analysis
  /// bit-identical to the free functions; `fast` batches the VS chain's
  /// transcendentals through the vectorized kernels of util/simd_math.hpp
  /// -- deterministic and tolerance-checked against reference, but NOT
  /// bit-identical to it.  Fast requires `useDeviceBank` (enforced).
  models::NumericsMode numerics = models::NumericsMode::reference;
};

class SimSession {
 public:
  /// Binds to `circuit` and captures its MNA pattern.  The circuit must
  /// outlive the session; its topology must not change afterwards (device
  /// rebinding and source retuning are fine).
  explicit SimSession(Circuit& circuit, SessionOptions options = {});
  ~SimSession();

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  [[nodiscard]] Circuit& circuit() noexcept { return *circuit_; }

  /// DC operating point from a zero guess; throws ConvergenceError when
  /// every homotopy fails.  Bit-identical to spice::dcOperatingPoint.
  [[nodiscard]] OperatingPoint dcOperatingPoint(const DcOptions& options = {});

  /// Warm-started DC operating point.
  [[nodiscard]] OperatingPoint dcOperatingPoint(const OperatingPoint& guess,
                                                const DcOptions& options);

  /// DC sweep of a named voltage source, warm-starting each point from the
  /// previous solution; the source's waveform is restored afterwards.
  /// Bit-identical to spice::dcSweep.
  [[nodiscard]] std::vector<OperatingPoint> dcSweep(
      const std::string& sourceName, const std::vector<double>& levels,
      const DcOptions& options = {});

  /// Lean sweep for probe-one-node consumers (VTC/butterfly loops): same
  /// solver trajectory as dcSweep -- the warm-start handoff between levels
  /// is an exact copy either way -- but records only `probeNode`'s voltage
  /// per level into `out` instead of materializing an OperatingPoint per
  /// level.  Allocation-free in steady state (out's capacity is reused).
  void dcSweepNode(const std::string& sourceName,
                   const std::vector<double>& levels, NodeId probeNode,
                   std::vector<double>& out, const DcOptions& options = {});

  /// Transient analysis; bit-identical to spice::transient.
  [[nodiscard]] Waveform transient(const TransientOptions& options);

  /// Transient analysis into a caller-owned record (cleared first, capacity
  /// reused) -- the allocation-free variant for campaign inner loops.
  /// Sample-for-sample identical to the overload above.
  void transient(const TransientOptions& options, Waveform& out);

  /// Eagerly re-derives the device bank's cached lane state after a rebind
  /// pass (sim::CampaignSession calls this per sample, hoisting the refresh
  /// out of the Newton loop).  Lazy sync inside the assembler makes this an
  /// optimization, not a correctness requirement.
  void syncDeviceBank();

  /// Banked MOSFET lanes (0 = scalar fallback / no MOSFETs): telemetry for
  /// tests and benches that assert banking is actually engaged.
  [[nodiscard]] std::size_t deviceBankLaneCount() const noexcept;

 private:
  /// Resets the workspace LU pivot state so this solve re-derives its
  /// pivot order from its own first iterate (the legacy fresh-assembler
  /// granularity: one full pivoting pass per dcOperatingPoint / transient
  /// call).  Buffers stay at capacity -- no steady-state allocation.
  void resetNumerics() noexcept;

  Circuit* circuit_;
  std::unique_ptr<detail::Assembler> assembler_;
  linalg::Vector sweepX_;  ///< persistent sweep iterate (dcSweepNode)
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_SESSION_HPP
