// Small-signal AC analysis.
//
// The circuit is linearized at its DC operating point: G = dF/dv is the
// Newton Jacobian in DC mode and C = dQ/dv is recovered exactly as the
// difference between a backward-Euler(h=1) assembly and the DC assembly at
// the same iterate (elements stamp companion terms as c0 * dq/dv, so the
// difference isolates dq/dv with c0 = 1).  Each sweep point then solves the
// complex linear system (G + j*2*pi*f*C) x = b, where b places the unit AC
// excitation on the chosen source.
#ifndef VSSTAT_SPICE_AC_HPP
#define VSSTAT_SPICE_AC_HPP

#include <string>
#include <vector>

#include "linalg/complex.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"

namespace vsstat::spice {

struct AcOptions {
  DcOptions dc;                      ///< operating-point solve settings
  double excitationMagnitude = 1.0;  ///< AC source amplitude [V]
};

/// Small-signal solution at one frequency.
struct AcPoint {
  double frequencyHz = 0.0;
  linalg::ComplexVector nodeVoltages;   ///< indexed by NodeId (ground = 0+0j)
  linalg::ComplexVector branchCurrents; ///< indexed by global branch index

  [[nodiscard]] linalg::Complex v(NodeId node) const {
    return nodeVoltages[static_cast<std::size_t>(node)];
  }
  /// |V(node)| in dB (20 log10).
  [[nodiscard]] double magnitudeDb(NodeId node) const;
  /// Phase of V(node) in degrees, in (-180, 180].
  [[nodiscard]] double phaseDeg(NodeId node) const;
};

/// Frequency sweep result plus the operating point it was linearized at.
struct AcSweep {
  OperatingPoint op;
  std::vector<AcPoint> points;

  /// |V(node)| per sweep point.
  [[nodiscard]] std::vector<double> magnitude(NodeId node) const;
};

/// Linearized (G, C) system at a fixed operating point; reusable across
/// frequencies and excitations.  This is the building block acAnalysis()
/// uses; it is public so callers can form custom excitations (e.g. noise
/// or loop-gain probes).
class SmallSignalSystem {
 public:
  /// Linearizes the circuit at the given operating point.
  SmallSignalSystem(const Circuit& circuit, const OperatingPoint& op);

  /// Solves (G + j*2*pi*f*C) x = b.  b must have unknownCount entries
  /// (node rows first, then branch rows).
  [[nodiscard]] linalg::ComplexVector solve(
      double frequencyHz, const linalg::ComplexVector& excitation) const;

  /// Excitation vector for a named voltage source with the given AC
  /// amplitude.
  [[nodiscard]] linalg::ComplexVector voltageExcitation(
      Circuit& circuit, const std::string& sourceName,
      double magnitude = 1.0) const;

  [[nodiscard]] const linalg::Matrix& conductance() const noexcept {
    return g_;
  }
  [[nodiscard]] const linalg::Matrix& capacitance() const noexcept {
    return c_;
  }
  [[nodiscard]] std::size_t numNodes() const noexcept { return numNodes_; }
  [[nodiscard]] std::size_t numUnknowns() const noexcept {
    return numUnknowns_;
  }

 private:
  std::size_t numNodes_ = 0;
  std::size_t numUnknowns_ = 0;
  linalg::Matrix g_;  ///< dF/dv at the operating point
  linalg::Matrix c_;  ///< dQ/dv at the operating point
};

/// Full AC analysis: DC operating point, linearization, frequency sweep
/// with a unit (or options.excitationMagnitude) AC drive replacing the
/// named voltage source's small-signal value.
[[nodiscard]] AcSweep acAnalysis(Circuit& circuit,
                                 const std::string& sourceName,
                                 const std::vector<double>& frequenciesHz,
                                 const AcOptions& options = {});

/// Logarithmically spaced frequency grid, `pointsPerDecade` points per
/// decade from fStart to fStop inclusive.
[[nodiscard]] std::vector<double> logFrequencyGrid(double fStartHz,
                                                   double fStopHz,
                                                   int pointsPerDecade);

/// Lowest frequency in the sweep where |V(node)| has dropped 3 dB below
/// its value at the first sweep point; throws InvalidArgumentError when the
/// response never crosses (sweep too narrow).  Log-interpolated between
/// sweep points.
[[nodiscard]] double bandwidth3dB(const AcSweep& sweep, NodeId node);

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_AC_HPP
