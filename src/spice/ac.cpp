#include "spice/ac.hpp"

#include <cmath>
#include <numbers>

#include "spice/assembler.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

namespace {

/// Flattens an OperatingPoint back into the assembler's unknown layout
/// (node voltages 1..N-1 first, then branch currents).
linalg::Vector flatten(const Circuit& circuit, const OperatingPoint& op) {
  require(op.nodeVoltages.size() == circuit.nodeCount(),
          "SmallSignalSystem: operating point does not match circuit");
  linalg::Vector x(circuit.unknownCount(), 0.0);
  const std::size_t numNodes = circuit.nodeCount() - 1;
  for (std::size_t n = 0; n < numNodes; ++n) x[n] = op.nodeVoltages[n + 1];
  for (std::size_t b = 0; b < op.branchCurrents.size(); ++b)
    x[numNodes + b] = op.branchCurrents[b];
  return x;
}

}  // namespace

double AcPoint::magnitudeDb(NodeId node) const {
  return 20.0 * std::log10(std::abs(v(node)));
}

double AcPoint::phaseDeg(NodeId node) const {
  return std::arg(v(node)) * 180.0 / std::numbers::pi;
}

std::vector<double> AcSweep::magnitude(NodeId node) const {
  std::vector<double> mags;
  mags.reserve(points.size());
  for (const AcPoint& p : points) mags.push_back(std::abs(p.v(node)));
  return mags;
}

SmallSignalSystem::SmallSignalSystem(const Circuit& circuit,
                                     const OperatingPoint& op)
    : numNodes_(circuit.nodeCount() - 1),
      numUnknowns_(circuit.unknownCount()) {
  // Two assemblies on a one-shot assembler: not worth bank construction.
  detail::Assembler assembler(circuit, /*useDeviceBank=*/false);
  const linalg::Vector x = flatten(circuit, op);

  // G: Jacobian with all charge terms off.  A tiny gmin keeps the later
  // complex factorization healthy when a node is conductively floating; it
  // is identical in both assemblies so it cancels out of C exactly.
  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  assembler.setGmin(1e-12);
  assembler.assemble(x);
  assembler.scatterJacobian(g_);

  // C: with backward Euler at h = 1 the elements stamp Jacobian terms
  // G + 1 * dQ/dv, so the difference recovers dQ/dv without any numeric
  // differentiation at this level.
  assembler.commitCharges();
  assembler.setBackwardEuler(1.0);
  assembler.assemble(x);
  assembler.scatterJacobian(c_);
  c_ -= g_;
}

linalg::ComplexVector SmallSignalSystem::solve(
    double frequencyHz, const linalg::ComplexVector& excitation) const {
  require(excitation.size() == numUnknowns_,
          "SmallSignalSystem::solve: excitation size mismatch");
  const double omega = 2.0 * std::numbers::pi * frequencyHz;
  linalg::ComplexMatrix a(numUnknowns_, numUnknowns_);
  for (std::size_t r = 0; r < numUnknowns_; ++r) {
    for (std::size_t c = 0; c < numUnknowns_; ++c) {
      a(r, c) = linalg::Complex(g_(r, c), omega * c_(r, c));
    }
  }
  return linalg::ComplexLuFactorization(a).solve(excitation);
}

linalg::ComplexVector SmallSignalSystem::voltageExcitation(
    Circuit& circuit, const std::string& sourceName, double magnitude) const {
  // The branch equation reads v(pos) - v(neg) - V = 0, so perturbing the
  // source value by the AC amplitude puts +magnitude on that branch row of
  // the right-hand side.
  const VoltageSourceElement& src = circuit.voltageSource(sourceName);
  linalg::ComplexVector b(numUnknowns_, linalg::Complex{});
  b[numNodes_ + static_cast<std::size_t>(src.branchBase())] =
      linalg::Complex(magnitude, 0.0);
  return b;
}

AcSweep acAnalysis(Circuit& circuit, const std::string& sourceName,
                   const std::vector<double>& frequenciesHz,
                   const AcOptions& options) {
  require(!frequenciesHz.empty(), "acAnalysis: empty frequency list");

  AcSweep sweep;
  sweep.op = dcOperatingPoint(circuit, options.dc);
  const SmallSignalSystem system(circuit, sweep.op);
  const linalg::ComplexVector excitation = system.voltageExcitation(
      circuit, sourceName, options.excitationMagnitude);

  const std::size_t numNodes = circuit.nodeCount() - 1;
  sweep.points.reserve(frequenciesHz.size());
  for (double f : frequenciesHz) {
    require(f >= 0.0, "acAnalysis: negative frequency");
    const linalg::ComplexVector x = system.solve(f, excitation);

    AcPoint point;
    point.frequencyHz = f;
    point.nodeVoltages.assign(circuit.nodeCount(), linalg::Complex{});
    for (std::size_t n = 0; n < numNodes; ++n)
      point.nodeVoltages[n + 1] = x[n];
    point.branchCurrents.assign(
        static_cast<std::size_t>(circuit.branchTotal()), linalg::Complex{});
    for (std::size_t b = 0; b < point.branchCurrents.size(); ++b)
      point.branchCurrents[b] = x[numNodes + b];
    sweep.points.push_back(std::move(point));
  }
  return sweep;
}

std::vector<double> logFrequencyGrid(double fStartHz, double fStopHz,
                                     int pointsPerDecade) {
  require(fStartHz > 0.0 && fStopHz > fStartHz,
          "logFrequencyGrid: need 0 < fStart < fStop");
  require(pointsPerDecade >= 1, "logFrequencyGrid: pointsPerDecade >= 1");

  const double logStart = std::log10(fStartHz);
  const double logStop = std::log10(fStopHz);
  const int steps = static_cast<int>(
      std::ceil((logStop - logStart) * pointsPerDecade - 1e-12));
  std::vector<double> freqs;
  freqs.reserve(static_cast<std::size_t>(steps) + 1);
  for (int i = 0; i <= steps; ++i) {
    const double lf =
        logStart + (logStop - logStart) * i / std::max(steps, 1);
    freqs.push_back(std::pow(10.0, lf));
  }
  freqs.back() = fStopHz;  // avoid drift at the endpoint
  return freqs;
}

double bandwidth3dB(const AcSweep& sweep, NodeId node) {
  require(sweep.points.size() >= 2, "bandwidth3dB: need at least two points");
  const double ref = std::abs(sweep.points.front().v(node));
  require(ref > 0.0, "bandwidth3dB: zero response at the first point");
  const double target = ref / std::sqrt(2.0);

  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const double m1 = std::abs(sweep.points[i].v(node));
    if (m1 > target) continue;
    const double m0 = std::abs(sweep.points[i - 1].v(node));
    const double f0 = sweep.points[i - 1].frequencyHz;
    const double f1 = sweep.points[i].frequencyHz;
    if (m0 == m1) return f1;
    // Interpolate in (log f, magnitude) between the bracketing points.
    const double t = (m0 - target) / (m0 - m1);
    return std::pow(10.0,
                    std::log10(f0) + t * (std::log10(f1) - std::log10(f0)));
  }
  throw InvalidArgumentError(
      "bandwidth3dB: response never drops 3 dB within the sweep");
}

}  // namespace vsstat::spice
