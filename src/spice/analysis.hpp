// Circuit analyses: Newton DC operating point (with gmin and source
// stepping homotopies), DC sweeps, and charge-conserving transient
// simulation (backward Euler startup, trapezoidal thereafter, with
// step-halving recovery).
#ifndef VSSTAT_SPICE_ANALYSIS_HPP
#define VSSTAT_SPICE_ANALYSIS_HPP

#include <vector>

#include "linalg/matrix.hpp"
#include "spice/circuit.hpp"
#include "spice/waveform.hpp"

namespace vsstat::spice {

struct NewtonOptions {
  int maxIterations = 80;
  double voltageTolerance = 1e-7;   ///< convergence: max |dV| below this [V]
  double residualTolerance = 1e-9;  ///< convergence: max |F| below this [A]
  double maxUpdate = 0.4;           ///< per-iteration voltage-step clamp [V]
};

struct DcOptions {
  NewtonOptions newton;
  bool gminStepping = true;    ///< homotopy 1: decaying shunt conductance
  bool sourceStepping = true;  ///< homotopy 2: ramp sources from zero
};

/// Converged DC solution.
struct OperatingPoint {
  std::vector<double> nodeVoltages;   ///< indexed by NodeId (ground included)
  std::vector<double> branchCurrents; ///< indexed by global branch index

  [[nodiscard]] double v(NodeId node) const {
    return nodeVoltages[static_cast<std::size_t>(node)];
  }
};

/// Solves the DC operating point; throws ConvergenceError when every
/// homotopy fails.
[[nodiscard]] OperatingPoint dcOperatingPoint(const Circuit& circuit,
                                              const DcOptions& options = {});

/// Like dcOperatingPoint but warm-started from a previous solution.
[[nodiscard]] OperatingPoint dcOperatingPoint(const Circuit& circuit,
                                              const OperatingPoint& guess,
                                              const DcOptions& options);

/// Branch current through a named voltage source at an operating point.
[[nodiscard]] double sourceCurrent(Circuit& circuit, const std::string& name,
                                   const OperatingPoint& op);

/// Sweeps the DC level of a named voltage source; each point warm-starts
/// from the previous solution.  The source's original waveform is restored
/// afterwards.
[[nodiscard]] std::vector<OperatingPoint> dcSweep(
    Circuit& circuit, const std::string& sourceName,
    const std::vector<double>& levels, const DcOptions& options = {});

struct TransientOptions {
  double tStop = 0.0;      ///< end time [s]
  double dt = 1e-13;       ///< nominal step [s]
  double dtMin = 1e-16;    ///< recovery floor for step halving [s]
  NewtonOptions newton;
  DcOptions dcOptions;     ///< for the t=0 operating point
};

/// Accepted-step trajectory of one transient run: the full unknown vector
/// at every accepted time point (t = 0 DC state included).  The
/// statistical tier's sample-to-sample transient warm start records the
/// previous sample's trajectory and seeds each step's Newton from it (the
/// reference waveform plus the current sample's running offset).
struct TransientTrajectory {
  /// times.size() is the logical length; states may retain MORE entries
  /// than that (beginRecording keeps previously grown state buffers so a
  /// steady-state campaign records allocation-free).
  std::vector<double> times;
  std::vector<linalg::Vector> states;

  /// Resets the logical length to zero, retaining every state buffer.
  void beginRecording() noexcept { times.clear(); }
  void append(double t, const linalg::Vector& x) {
    if (times.size() < states.size()) {
      states[times.size()] = x;  // reuses the retained buffer's capacity
    } else {
      states.push_back(x);
    }
    times.push_back(t);
  }
  [[nodiscard]] bool usableFor(std::size_t unknowns) const noexcept {
    return times.size() >= 2 && states.size() >= times.size() &&
           states.front().size() == unknowns;
  }
  void swap(TransientTrajectory& other) noexcept {
    times.swap(other.times);
    states.swap(other.states);
  }
};

/// Runs a transient analysis; returns node-voltage waveforms (all nodes).
[[nodiscard]] Waveform transient(const Circuit& circuit,
                                 const TransientOptions& options);

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_ANALYSIS_HPP
