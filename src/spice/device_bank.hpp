// Internal: struct-of-arrays device bank behind the Newton assembler.
//
// At Assembler construction every MosfetElement is gathered into a
// homogeneous group per concrete model type; each group carries a
// models::MosfetLoadBank (the model-specific batched evaluator) plus
// struct-of-arrays lane state captured once: polarity sign, residual rows,
// charge-slot base, and the CSR stamp slots of the element's full Jacobian
// footprint.  A Newton assembly then
//
//   gather:   one pass pulls every lane's canonical (vgs, vds) out of the
//             iterate,
//   evaluate: ONE MosfetLoadBank::evaluateLoadBatch call per group replaces
//             one virtual MosfetModel::evaluateLoad per device,
//   scatter:  the assembler writes each lane's currents/charges/Jacobian
//             entries straight into the captured CSR slots, in circuit
//             element order (Assembler::scatterBankedLane).
//
// Bit-identity contract: the gather reproduces LoadContext::v's voltage
// lookup, the bank reproduces evaluateLoad (models::MosfetLoadBank
// contract), and the scatter replays MosfetElement::scatterLoad's stamp
// sequence value-for-value in the same element order -- so a banked
// assembly accumulates exactly the doubles the scalar element loop would.
//
// Rebinds: lanes cache bias-independent state, so the bank tracks each
// element's cardVersion().  sync() re-derives stale lanes through
// MosfetLoadBank::rebindLane; a card whose dynamic type changed (exotic --
// cross-family setInstance/rebind) fails rebindLane and the caller rebuilds
// the groups from scratch.
#ifndef VSSTAT_SPICE_DEVICE_BANK_HPP
#define VSSTAT_SPICE_DEVICE_BANK_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <typeindex>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "models/device.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"

namespace vsstat::spice::detail {

/// Where a banked element's lane lives: group index + lane index within
/// the group.  group < 0 means "not banked" (non-MOSFET elements).
struct BankLaneRef {
  std::int32_t group = -1;
  std::int32_t lane = -1;
};

/// One homogeneous model group, struct-of-arrays over its lanes.
struct DeviceBankGroup {
  std::unique_ptr<models::MosfetLoadBank> bank;
  std::type_index cardType;

  // --- per-lane captured state (SoA) ----------------------------------------
  std::vector<const MosfetElement*> element;
  std::vector<std::uint32_t> version;   ///< last-synced cardVersion()
  std::vector<double> sign;             ///< +1 NMOS / -1 PMOS
  std::vector<std::int32_t> rowD, rowG, rowS;  ///< residual rows, -1 = ground
  std::vector<std::int32_t> chargeBase;        ///< global slot of qg
  // CSR stamp slots of the 3x3 terminal Jacobian block (row x col over
  // drain/gate/source), -1 where a terminal is ground.  Named s<Row><Col>.
  std::vector<std::int32_t> sDG, sDD, sDS;
  std::vector<std::int32_t> sSG, sSD, sSS;
  std::vector<std::int32_t> sGG, sGD, sGS;

  // --- per-assembly lanes (gather inputs / batch outputs) -------------------
  std::vector<double> vgs, vds;
  std::vector<models::MosfetLoadEvaluation> out;

  explicit DeviceBankGroup(std::type_index type) : cardType(type) {}
};

class DeviceBankSet {
 public:
  /// Captures lane state for every MosfetElement of `circuit`.  `pattern`
  /// is the assembler's captured MNA sparsity (must outlive the bank set,
  /// as must the circuit).  `numerics` selects each group bank's evaluation
  /// contract (models::NumericsMode): reference = bit-identical to the
  /// scalar element loop, fast = vectorized kernels within tolerance.
  DeviceBankSet(const Circuit& circuit, const linalg::SparsePattern& pattern,
                models::NumericsMode numerics = models::NumericsMode::reference);

  DeviceBankSet(const DeviceBankSet&) = delete;
  DeviceBankSet& operator=(const DeviceBankSet&) = delete;

  /// Re-derives lanes whose element card changed since the last sync.
  /// Returns false when a lane's card switched to a different model class;
  /// the caller must rebuild() before the next evaluation.
  [[nodiscard]] bool sync();

  /// Regroups every element from scratch (cross-family rebind fallback).
  void rebuild();

  /// Switches the evaluation contract and rebuilds the group banks.  Used
  /// by the rescue ladder's fast -> reference fallback; a no-op when the
  /// mode is unchanged.
  void setNumerics(models::NumericsMode numerics) {
    if (numerics == numerics_) return;
    numerics_ = numerics;
    rebuild();
  }
  [[nodiscard]] models::NumericsMode numerics() const noexcept {
    return numerics_;
  }

  /// Gather + batch-evaluate every group at iterate `x` (node voltage of
  /// NodeId n is x[n-1], ground reads 0 -- the LoadContext::v convention).
  void evaluate(const linalg::Vector& x);

  /// Per-circuit-element lane mapping, parallel to circuit.elements().
  [[nodiscard]] const std::vector<BankLaneRef>& elementLanes() const noexcept {
    return elementLanes_;
  }
  [[nodiscard]] const DeviceBankGroup& group(std::int32_t g) const {
    return groups_[static_cast<std::size_t>(g)];
  }

  [[nodiscard]] std::size_t groupCount() const noexcept {
    return groups_.size();
  }
  [[nodiscard]] std::size_t laneCount() const noexcept { return laneCount_; }

  /// Fault-injection seam: overwrites one evaluated lane's drain current
  /// with NaN, modeling a numerics lane gone bad.  Called by the assembler
  /// (after evaluate(), before its finite guard) when a FaultInjector
  /// schedules a nanBankLane fault for the current sample.
  void poisonLaneForTest(std::size_t group, std::size_t lane) noexcept {
    if (group < groups_.size() && lane < groups_[group].out.size())
      groups_[group].out[lane].at.id =
          std::numeric_limits<double>::quiet_NaN();
  }

 private:
  const Circuit* circuit_;
  const linalg::SparsePattern* pattern_;
  models::NumericsMode numerics_;
  std::vector<DeviceBankGroup> groups_;
  std::vector<BankLaneRef> elementLanes_;
  std::size_t laneCount_ = 0;
};

}  // namespace vsstat::spice::detail

#endif  // VSSTAT_SPICE_DEVICE_BANK_HPP
