#include "spice/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/matrix.hpp"
#include "spice/assembler.hpp"
#include "spice/elements.hpp"
#include "spice/solver_core.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

// --- LoadContext forwarding ------------------------------------------------------

double LoadContext::v(NodeId node) const noexcept {
  return assembler_->nodeVoltage(node);
}
double LoadContext::branchCurrent(int localBranch) const noexcept {
  return assembler_->branchValue(branchBase_ + localBranch);
}
double LoadContext::time() const noexcept { return assembler_->timeNow(); }
double LoadContext::sourceScale() const noexcept {
  return assembler_->scaleNow();
}
void LoadContext::addCurrent(NodeId node, double i) noexcept {
  assembler_->stampCurrent(node, i);
}
void LoadContext::addJacobian(NodeId node, NodeId other, double didv) noexcept {
  assembler_->stampJacobian(node, other, didv);
}
void LoadContext::addJacobianBranch(NodeId node, int localBranch,
                                    double d) noexcept {
  assembler_->stampJacobianBranch(node, branchBase_ + localBranch, d);
}
void LoadContext::addBranchResidual(int localBranch, double f) noexcept {
  assembler_->stampBranchResidual(branchBase_ + localBranch, f);
}
void LoadContext::addBranchJacobianV(int localBranch, NodeId node,
                                     double d) noexcept {
  assembler_->stampBranchJacobianV(branchBase_ + localBranch, node, d);
}
void LoadContext::addBranchJacobianI(int localBranch, int otherLocalBranch,
                                     double d) noexcept {
  assembler_->stampBranchJacobianI(branchBase_ + localBranch,
                                   branchBase_ + otherLocalBranch, d);
}
void LoadContext::setCharge(int localSlot, double q) noexcept {
  assembler_->recordCharge(chargeBase_ + localSlot, q);
}
double LoadContext::chargeCurrent(int localSlot, double q) const noexcept {
  return assembler_->companionCurrent(chargeBase_ + localSlot, q);
}
double LoadContext::chargeGain() const noexcept { return assembler_->c0(); }

// --- Newton core (shared with SimSession via solver_core.hpp) ------------------

namespace detail {

/// The iteration is allocation-free: the assembler writes into its captured
/// sparsity pattern and the per-assembler NewtonWorkspace supplies the
/// reusable factorization and step buffer.
///
/// Diagnostics accumulate into the workspace SolveReport (iterations,
/// residual, singular/non-finite flags); the report is reset by the solve
/// entry points (dcSolveLadder / runTransient), not here, so homotopy rungs
/// add up.  Non-finite numerics bail out immediately with x unchanged --
/// wasting the remaining iteration budget on NaN would only corrupt the
/// iterate the next homotopy rung starts from.  Samples whose residuals
/// stay finite (every previously-passing sample) take the exact same
/// floating-point path as before.
bool newtonSolve(Assembler& assembler, linalg::Vector& x,
                 const NewtonOptions& options) {
  const std::size_t numNodes = assembler.numNodes();
  detail::NewtonWorkspace& ws = assembler.workspace();
  SolveReport& report = ws.report;
  for (int iter = 0; iter < options.maxIterations; ++iter) {
    try {
      assembler.assemble(x);
    } catch (const NonFiniteError&) {
      // Device evaluation produced NaN/Inf (bank seam guard): classified,
      // recorded, and handed to the homotopy ladder / rescue ladder.
      report.sawNonFinite = true;
      return false;
    }
    ++report.iterations;

    double residualNorm = 0.0;
    bool residualFinite = true;
    for (double f : assembler.residual()) {
      // NB: NaN is invisible to a bare std::max (the comparison is false),
      // so finiteness is tracked explicitly.
      if (!std::isfinite(f)) residualFinite = false;
      residualNorm = std::max(residualNorm, std::fabs(f));
    }
    report.finalResidual = residualNorm;
    if (!residualFinite) {
      report.sawNonFinite = true;
      return false;
    }

    std::copy(assembler.residual().begin(), assembler.residual().end(),
              ws.dx.begin());
    try {
      ws.lu.refactor(assembler.jacobian());
    } catch (const ConvergenceError&) {
      // Singular Jacobian: let the homotopy ladder handle it.
      report.sawSingular = true;
      return false;
    }
    ws.lu.solveInPlace(ws.dx);

    // Newton update is x -= J^{-1} F; clamp by the largest voltage move.
    double maxVoltageStep = 0.0;
    for (std::size_t n = 0; n < numNodes; ++n)
      maxVoltageStep = std::max(maxVoltageStep, std::fabs(ws.dx[n]));
    if (!std::isfinite(maxVoltageStep)) {
      // An Inf-contaminated factorization can pass the pivot checks yet
      // produce a non-finite step; bail before poisoning x.
      report.sawNonFinite = true;
      return false;
    }

    if (maxVoltageStep < options.voltageTolerance &&
        residualNorm < options.residualTolerance) {
      return true;  // assembly state matches x exactly; skip the sub-tol step
    }

    double scaleFactor = 1.0;
    if (maxVoltageStep > options.maxUpdate)
      scaleFactor = options.maxUpdate / maxVoltageStep;
    for (std::size_t i = 0; i < x.size(); ++i) x[i] -= scaleFactor * ws.dx[i];
  }
  return false;
}

void throwSolveFailure(const SolveReport& report, const std::string& what,
                       int iterations) {
  switch (report.outcome) {
    case SolveOutcome::nonFinite:
      throw NonFiniteError(what + " (non-finite numerics)");
    case SolveOutcome::singular:
      throw SingularMatrixError(what, iterations);
    default:
      throw ConvergenceError(what, iterations);
  }
}

OperatingPoint packSolution(const Circuit& circuit, const linalg::Vector& x) {
  OperatingPoint op;
  const std::size_t numNodes = circuit.nodeCount() - 1;
  op.nodeVoltages.assign(circuit.nodeCount(), 0.0);
  for (std::size_t n = 0; n < numNodes; ++n) op.nodeVoltages[n + 1] = x[n];
  op.branchCurrents.assign(static_cast<std::size_t>(circuit.branchTotal()),
                           0.0);
  for (std::size_t b = 0; b < op.branchCurrents.size(); ++b)
    op.branchCurrents[b] = x[numNodes + b];
  return op;
}

linalg::Vector unpackGuess(const Circuit& circuit, const OperatingPoint& op) {
  linalg::Vector x(circuit.unknownCount(), 0.0);
  const std::size_t numNodes = circuit.nodeCount() - 1;
  if (op.nodeVoltages.size() == circuit.nodeCount()) {
    for (std::size_t n = 0; n < numNodes; ++n) x[n] = op.nodeVoltages[n + 1];
  }
  if (op.branchCurrents.size() ==
      static_cast<std::size_t>(circuit.branchTotal())) {
    for (std::size_t b = 0; b < op.branchCurrents.size(); ++b)
      x[numNodes + b] = op.branchCurrents[b];
  }
  return x;
}

bool dcSolveLadder(Assembler& assembler, linalg::Vector& x,
                   const DcOptions& options) {
  SolveReport& report = assembler.workspace().report;
  report.reset();
  const std::uint64_t fallbacksAtEntry =
      assembler.workspace().lu.pivotFallbackCount();
  const auto finish = [&](bool ok) {
    report.pivotFallbacks =
        assembler.workspace().lu.pivotFallbackCount() - fallbacksAtEntry;
    if (ok) {
      report.outcome = SolveOutcome::ok;
    } else if (report.sawNonFinite) {
      report.outcome = SolveOutcome::nonFinite;
    } else if (report.sawSingular) {
      report.outcome = SolveOutcome::singular;
    } else {
      report.outcome = SolveOutcome::nonConvergence;
    }
    return ok;
  };

  assembler.setDcMode();
  assembler.setTime(0.0);
  assembler.setSourceScale(1.0);
  assembler.setGmin(0.0);
  report.homotopyRung = kRungPlainNewton;
  if (newtonSolve(assembler, x, options.newton)) return finish(true);

  // Homotopies keep a gmin floor: a truly floating node (capacitor-only,
  // or isolated by off pass-transistors) leaves the exact-zero-gmin
  // Jacobian singular, and the 1e-12 S floor perturbs node voltages far
  // below the solver tolerances.
  constexpr double kGminFloor = 1e-12;

  // Homotopy trial iterate: workspace scratch (re-initialized to exactly
  // the values a fresh local would hold), so a failed plain Newton does
  // not allocate on persistent sessions.
  linalg::Vector& xTrial = assembler.workspace().xHomotopy;

  if (options.gminStepping) {
    report.homotopyRung = kRungGminStepping;
    xTrial.assign(x.begin(), x.end());
    bool ok = true;
    for (double gmin = 1e-2; gmin >= kGminFloor; gmin *= 0.1) {
      assembler.setGmin(gmin);
      if (!newtonSolve(assembler, xTrial, options.newton)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      x = xTrial;
      return finish(true);
    }
  }

  if (options.sourceStepping) {
    report.homotopyRung = kRungSourceStepping;
    xTrial.assign(x.size(), 0.0);
    assembler.setGmin(1e-9);
    bool ok = true;
    for (int step = 1; step <= 20; ++step) {
      assembler.setSourceScale(static_cast<double>(step) / 20.0);
      if (!newtonSolve(assembler, xTrial, options.newton)) {
        ok = false;
        break;
      }
    }
    if (ok) {
      assembler.setSourceScale(1.0);
      assembler.setGmin(kGminFloor);
      if (newtonSolve(assembler, xTrial, options.newton)) {
        x = xTrial;
        return finish(true);
      }
    }
  }
  return finish(false);
}

void runTransient(Assembler& assembler, const TransientOptions& options,
                  Waveform& wave, const TransientControls& controls) {
  require(options.tStop > 0.0 && options.dt > 0.0,
          "transient: tStop and dt must be positive");
  const Circuit& circuit = assembler.circuit();
  NewtonWorkspace& ws = assembler.workspace();

  // t = 0 operating point.  Scratch buffers live in the workspace and are
  // re-initialized to the exact values a fresh run would construct, so
  // reuse never changes numerics.
  linalg::Vector& x = ws.xTransient;
  if (controls.dcWarmStart != nullptr &&
      controls.dcWarmStart->size() == circuit.unknownCount()) {
    x = *controls.dcWarmStart;
  } else {
    x.assign(circuit.unknownCount(), 0.0);
  }
  const std::uint64_t fallbacksAtEntry = ws.lu.pivotFallbackCount();
  if (!dcSolveLadder(assembler, x, options.dcOptions)) {
    throwSolveFailure(ws.report, "transient: DC operating point failed",
                      options.dcOptions.newton.maxIterations);
  }
  if (controls.dcSolutionOut != nullptr) *controls.dcSolutionOut = x;

  // The DC solve left the assembler's charge state consistent with x;
  // commit it as the t = 0 history.
  assembler.commitCharges();
  std::vector<double>& slotCurrents = ws.slotCurrents;
  slotCurrents.assign(static_cast<std::size_t>(circuit.chargeSlotTotal()),
                      0.0);

  wave.reset(circuit.nodeCount());
  std::vector<double>& sample = ws.sampleBuf;
  sample.assign(circuit.nodeCount(), 0.0);
  const std::size_t numNodes = circuit.nodeCount() - 1;
  const auto record = [&](double t) {
    for (std::size_t n = 0; n < numNodes; ++n) sample[n + 1] = x[n];
    wave.addSample(t, sample);
  };
  record(0.0);

  double t = 0.0;
  bool firstStep = true;
  linalg::Vector& xTrial = ws.xTrial;  // hoisted: reused across steps
  xTrial.assign(x.size(), 0.0);
  // Statistical-tier step predictor state: the previous ACCEPTED state and
  // step size, for the linear extrapolation of the next trial iterate.
  linalg::Vector& xPrev = ws.xPrevStep;
  double hPrev = 0.0;
  bool havePrev = false;
  if (controls.predictiveSteps) xPrev.assign(x.size(), 0.0);

  // Sample-to-sample trajectory warm start: the previous sample's accepted
  // waveform, interpolated at any query time.  Fixed-dt runs align
  // step-for-step; halving retries only shift the interpolation weights.
  const TransientTrajectory* traj = controls.trajectoryIn;
  if (traj != nullptr && !traj->usableFor(x.size())) traj = nullptr;
  const auto trajSegment = [traj](double tq, std::size_t& j, double& alpha) {
    const std::vector<double>& ts = traj->times;
    if (tq <= ts.front()) {
      j = 0;
      alpha = 0.0;
    } else if (tq >= ts.back()) {
      j = ts.size() - 2;
      alpha = 1.0;
    } else {
      j = static_cast<std::size_t>(
              std::upper_bound(ts.begin(), ts.end(), tq) - ts.begin()) -
          1;
      j = std::min(j, ts.size() - 2);
      alpha = (tq - ts[j]) / (ts[j + 1] - ts[j]);
    }
  };
  if (controls.trajectoryOut != nullptr) {
    controls.trajectoryOut->beginRecording();
    controls.trajectoryOut->append(0.0, x);
  }
  while (t < options.tStop - 1e-18) {
    double h = std::min(options.dt, options.tStop - t);

    // Step with halving recovery; fall back to BE on retries (sturdier
    // against the corner where trapezoidal rings on a hard nonlinearity).
    bool accepted = false;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const double tNext = t + h;
      assembler.setTime(tNext);
      if (firstStep || attempt > 0) {
        assembler.setBackwardEuler(h);
      } else {
        assembler.setTrapezoidal(h, slotCurrents);
      }
      if (traj != nullptr && attempt == 0) {
        // Reference-waveform predictor: previous sample's state at tNext
        // plus this sample's current offset from that reference.
        std::size_t j0, j1;
        double a0, a1;
        trajSegment(t, j0, a0);
        trajSegment(tNext, j1, a1);
        const linalg::Vector& lo0 = traj->states[j0];
        const linalg::Vector& hi0 = traj->states[j0 + 1];
        const linalg::Vector& lo1 = traj->states[j1];
        const linalg::Vector& hi1 = traj->states[j1 + 1];
        for (std::size_t i = 0; i < x.size(); ++i) {
          const double ref0 = lo0[i] + a0 * (hi0[i] - lo0[i]);
          const double ref1 = lo1[i] + a1 * (hi1[i] - lo1[i]);
          xTrial[i] = ref1 + (x[i] - ref0);
        }
      } else if (controls.predictiveSteps && havePrev && !firstStep &&
                 attempt == 0) {
        // First iterate from the linear history extrapolation; the Newton
        // clamp and the constant-predictor retries bound a bad guess.
        const double ratio = hPrev > 0.0 ? std::min(h / hPrev, 2.0) : 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
          xTrial[i] = x[i] + ratio * (x[i] - xPrev[i]);
      } else {
        xTrial = x;
      }
      if (newtonSolve(assembler, xTrial, options.newton)) {
        if (controls.predictiveSteps) {
          xPrev = x;
          hPrev = h;
          havePrev = true;
        }
        x = xTrial;
        // newtonSolve left the assembler's charge state consistent with x,
        // so the converged-iterate assembly is reused directly.
        assembler.slotCurrents(slotCurrents);
        assembler.commitCharges();
        t = tNext;
        record(t);
        if (controls.trajectoryOut != nullptr)
          controls.trajectoryOut->append(t, x);
        accepted = true;
        firstStep = false;
        break;
      }
      h *= 0.5;
      if (h < options.dtMin) break;
    }
    if (!accepted) {
      // The step retries accumulated flags into the workspace report (the
      // DC ladder reset it at t = 0); classify the terminal state before
      // throwing so campaigns count this sample under the right class.
      SolveReport& report = ws.report;
      report.pivotFallbacks = ws.lu.pivotFallbackCount() - fallbacksAtEntry;
      if (report.sawNonFinite) {
        report.outcome = SolveOutcome::nonFinite;
      } else if (report.sawSingular) {
        report.outcome = SolveOutcome::singular;
      } else {
        report.outcome = SolveOutcome::nonConvergence;
      }
      throwSolveFailure(report,
                        "transient: step failed at t = " + std::to_string(t),
                        options.newton.maxIterations);
    }
  }
  ws.report.outcome = SolveOutcome::ok;
  ws.report.pivotFallbacks = ws.lu.pivotFallbackCount() - fallbacksAtEntry;
}

Waveform runTransient(Assembler& assembler, const TransientOptions& options) {
  Waveform wave(assembler.circuit().nodeCount());
  runTransient(assembler, options, wave);
  return wave;
}

}  // namespace detail

OperatingPoint dcOperatingPoint(const Circuit& circuit,
                                const DcOptions& options) {
  OperatingPoint zeroGuess;
  return dcOperatingPoint(circuit, zeroGuess, options);
}

OperatingPoint dcOperatingPoint(const Circuit& circuit,
                                const OperatingPoint& guess,
                                const DcOptions& options) {
  // One-shot assembler, a handful of assemblies: device-bank construction
  // would cost more than its dispatch savings here, so the free DC entry
  // points run the scalar element loop (bit-identical either way).
  detail::Assembler assembler(circuit, /*useDeviceBank=*/false);
  linalg::Vector x = detail::unpackGuess(circuit, guess);
  if (!detail::dcSolveLadder(assembler, x, options)) {
    detail::throwSolveFailure(assembler.workspace().report,
                              "dcOperatingPoint: no convergence",
                              options.newton.maxIterations);
  }
  return detail::packSolution(circuit, x);
}

double sourceCurrent(Circuit& circuit, const std::string& name,
                     const OperatingPoint& op) {
  const VoltageSourceElement& src = circuit.voltageSource(name);
  return op.branchCurrents[static_cast<std::size_t>(src.branchBase())];
}

std::vector<OperatingPoint> dcSweep(Circuit& circuit,
                                    const std::string& sourceName,
                                    const std::vector<double>& levels,
                                    const DcOptions& options) {
  VoltageSourceElement& src = circuit.voltageSource(sourceName);
  const SourceWaveform original = src.waveform();

  std::vector<OperatingPoint> result;
  result.reserve(levels.size());
  OperatingPoint guess;
  for (double level : levels) {
    src.setDcLevel(level);
    guess = result.empty() ? dcOperatingPoint(circuit, options)
                           : dcOperatingPoint(circuit, guess, options);
    result.push_back(guess);
  }
  src.setWaveform(original);
  return result;
}

Waveform transient(const Circuit& circuit, const TransientOptions& options) {
  // Thousands of assemblies on one assembler: banking amortizes in the
  // first few steps even for a one-shot run.
  detail::Assembler assembler(circuit);
  return detail::runTransient(assembler, options);
}

}  // namespace vsstat::spice
