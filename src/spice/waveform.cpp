#include "spice/waveform.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vsstat::spice {

Waveform::Waveform(std::size_t nodeCount) : nodeCount_(nodeCount) {
  require(nodeCount > 0, "Waveform: need at least the ground node");
}

void Waveform::reset(std::size_t nodeCount) {
  require(nodeCount > 0, "Waveform: need at least the ground node");
  nodeCount_ = nodeCount;
  times_.clear();
  values_.clear();
}

void Waveform::addSample(double time, const std::vector<double>& nodeVoltages) {
  require(nodeVoltages.size() == nodeCount_, "Waveform: sample arity mismatch");
  require(times_.empty() || time >= times_.back(),
          "Waveform: samples must be time-ordered");
  times_.push_back(time);
  values_.insert(values_.end(), nodeVoltages.begin(), nodeVoltages.end());
}

double Waveform::value(NodeId node, std::size_t i) const {
  require(node >= 0 && static_cast<std::size_t>(node) < nodeCount_,
          "Waveform: node out of range");
  require(i < times_.size(), "Waveform: sample index out of range");
  return values_[i * nodeCount_ + static_cast<std::size_t>(node)];
}

double Waveform::valueAt(NodeId node, double t) const {
  require(!times_.empty(), "Waveform: empty record");
  if (t <= times_.front()) return value(node, 0);
  if (t >= times_.back()) return value(node, times_.size() - 1);
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  const std::size_t hi = static_cast<std::size_t>(it - times_.begin());
  const std::size_t lo = hi - 1;
  const double span = times_[hi] - times_[lo];
  if (span <= 0.0) return value(node, hi);
  const double f = (t - times_[lo]) / span;
  return value(node, lo) * (1.0 - f) + value(node, hi) * f;
}

std::optional<double> Waveform::crossing(NodeId node, double level,
                                         bool rising, double after) const {
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < after) continue;
    const double v0 = value(node, i - 1);
    const double v1 = value(node, i);
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (!crossed) continue;
    const double span = v1 - v0;
    const double f = span != 0.0 ? (level - v0) / span : 0.0;
    const double t = times_[i - 1] + f * (times_[i] - times_[i - 1]);
    if (t >= after) return t;
  }
  return std::nullopt;
}

double Waveform::finalValue(NodeId node) const {
  require(!times_.empty(), "Waveform: empty record");
  return value(node, times_.size() - 1);
}

std::vector<double> Waveform::series(NodeId node) const {
  std::vector<double> s(times_.size());
  for (std::size_t i = 0; i < times_.size(); ++i) s[i] = value(node, i);
  return s;
}

}  // namespace vsstat::spice
