// Time-series record of a transient analysis plus crossing-time queries,
// the primitive behind all delay/setup/hold measurements.
#ifndef VSSTAT_SPICE_WAVEFORM_HPP
#define VSSTAT_SPICE_WAVEFORM_HPP

#include <optional>
#include <vector>

#include "spice/element.hpp"

namespace vsstat::spice {

class Waveform {
 public:
  explicit Waveform(std::size_t nodeCount);

  /// Re-arms the record for a new run: drops all samples, keeps the sample
  /// storage capacity.  Campaign inner loops reuse one Waveform across
  /// samples this way instead of allocating a fresh record per transient.
  void reset(std::size_t nodeCount);

  /// Appends one time sample; `nodeVoltages` is indexed by NodeId and must
  /// include ground at index 0.  Times must be non-decreasing.
  void addSample(double time, const std::vector<double>& nodeVoltages);

  [[nodiscard]] std::size_t sampleCount() const noexcept {
    return times_.size();
  }
  [[nodiscard]] std::size_t nodeCount() const noexcept { return nodeCount_; }
  [[nodiscard]] double time(std::size_t i) const { return times_.at(i); }
  [[nodiscard]] double value(NodeId node, std::size_t i) const;

  /// Linear interpolation at an arbitrary time (clamped to the record).
  [[nodiscard]] double valueAt(NodeId node, double t) const;

  /// First time after `after` where the node crosses `level` in the given
  /// direction (linear interpolation between samples).
  [[nodiscard]] std::optional<double> crossing(NodeId node, double level,
                                               bool rising,
                                               double after = 0.0) const;

  /// Last recorded value of a node.
  [[nodiscard]] double finalValue(NodeId node) const;

  [[nodiscard]] const std::vector<double>& times() const noexcept {
    return times_;
  }
  /// Full series of one node (copies).
  [[nodiscard]] std::vector<double> series(NodeId node) const;

 private:
  std::size_t nodeCount_;
  std::vector<double> times_;
  std::vector<double> values_;  // row-major: sample * nodeCount + node
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_WAVEFORM_HPP
