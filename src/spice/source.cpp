#include "spice/source.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vsstat::spice {

SourceWaveform SourceWaveform::dc(double value) {
  SourceWaveform s;
  s.kind_ = Kind::Dc;
  s.dcValue_ = value;
  return s;
}

SourceWaveform SourceWaveform::pulse(double v1, double v2, double delay,
                                     double rise, double fall, double width,
                                     double period) {
  require(rise > 0.0 && fall > 0.0, "pulse: rise/fall must be > 0");
  require(width >= 0.0, "pulse: width must be >= 0");
  SourceWaveform s;
  s.kind_ = Kind::Pulse;
  s.v1_ = v1;
  s.v2_ = v2;
  s.delay_ = delay;
  s.rise_ = rise;
  s.fall_ = fall;
  s.width_ = width;
  s.period_ = period;
  return s;
}

SourceWaveform SourceWaveform::pwl(
    std::vector<std::pair<double, double>> points) {
  require(!points.empty(), "pwl: need at least one point");
  for (std::size_t i = 1; i < points.size(); ++i) {
    require(points[i].first >= points[i - 1].first,
            "pwl: points must be time-sorted");
  }
  SourceWaveform s;
  s.kind_ = Kind::Pwl;
  s.points_ = std::move(points);
  return s;
}

double SourceWaveform::valueAt(double time) const {
  switch (kind_) {
    case Kind::Dc:
      return dcValue_;

    case Kind::Pulse: {
      double t = time - delay_;
      if (t < 0.0) return v1_;
      if (period_ > 0.0) t = std::fmod(t, period_);
      if (t < rise_) return v1_ + (v2_ - v1_) * t / rise_;
      t -= rise_;
      if (t < width_) return v2_;
      t -= width_;
      if (t < fall_) return v2_ + (v1_ - v2_) * t / fall_;
      return v1_;
    }

    case Kind::Pwl: {
      if (time <= points_.front().first) return points_.front().second;
      if (time >= points_.back().first) return points_.back().second;
      const auto it = std::upper_bound(
          points_.begin(), points_.end(), time,
          [](double t, const std::pair<double, double>& p) { return t < p.first; });
      const auto& hi = *it;
      const auto& lo = *(it - 1);
      const double span = hi.first - lo.first;
      if (span <= 0.0) return hi.second;
      return lo.second + (hi.second - lo.second) * (time - lo.first) / span;
    }
  }
  return 0.0;  // unreachable
}

void SourceWaveform::setDcLevel(double value) {
  kind_ = Kind::Dc;
  dcValue_ = value;
  points_.clear();
}

}  // namespace vsstat::spice
