#include "spice/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <variant>
#include <vector>

#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

namespace {

using ModelCard = std::variant<models::VsParams, models::BsimParams,
                               models::AlphaPowerParams>;

[[noreturn]] void fail(int line, const std::string& message) {
  throw NetlistParseError(line, message);
}

std::string lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Logical lines: comments stripped, '+' continuations joined, parens
/// split into their own tokens.  Keeps the 1-based source line number of
/// each logical line for diagnostics.
struct LogicalLine {
  int number = 0;
  std::vector<std::string> tokens;
};

std::vector<LogicalLine> tokenize(const std::string& text) {
  // Pass 1: physical lines -> (number, content) with comments removed.
  std::vector<std::pair<int, std::string>> physical;
  {
    std::istringstream in(text);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
      ++number;
      const std::size_t first = raw.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (raw[first] == '*') continue;  // comment line
      physical.emplace_back(number, raw.substr(first));
    }
  }

  // Pass 2: fold '+' continuations into the preceding line.
  std::vector<std::pair<int, std::string>> logical;
  for (auto& [number, content] : physical) {
    if (content[0] == '+') {
      if (logical.empty()) fail(number, "continuation without a line");
      logical.back().second += " " + content.substr(1);
    } else {
      logical.emplace_back(number, std::move(content));
    }
  }

  // Pass 3: tokenize (lowercased; parentheses and '=' become separators).
  std::vector<LogicalLine> out;
  for (auto& [number, content] : logical) {
    std::string spaced;
    spaced.reserve(content.size() + 8);
    for (char c : content) {
      if (c == '(' || c == ')' || c == ',' || c == '=') {
        spaced += ' ';
        if (c == '=') spaced += "= ";
      } else {
        spaced += c;
      }
    }
    LogicalLine ll;
    ll.number = number;
    std::istringstream ts(lowered(spaced));
    std::string tok;
    while (ts >> tok) ll.tokens.push_back(tok);
    if (!ll.tokens.empty()) out.push_back(std::move(ll));
  }
  return out;
}

}  // namespace

double parseSpiceValue(const std::string& token) {
  require(!token.empty(), "parseSpiceValue: empty token");
  const std::string t = lowered(token);

  std::size_t consumed = 0;
  double base = 0.0;
  try {
    base = std::stod(t, &consumed);
  } catch (const std::exception&) {
    throw InvalidArgumentError("parseSpiceValue: not a number: '" + token +
                               "'");
  }
  std::string suffix = t.substr(consumed);

  double scale = 1.0;
  if (!suffix.empty()) {
    if (suffix.rfind("meg", 0) == 0) {
      scale = 1e6;
    } else {
      switch (suffix[0]) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        default:
          throw InvalidArgumentError("parseSpiceValue: bad suffix '" +
                                     suffix + "' in '" + token + "'");
      }
    }
    // Anything after the magnitude suffix is a unit word ("10pF", "1kohm")
    // and is ignored, per SPICE convention.
  }
  return base * scale;
}

namespace {

/// key=value overrides for the VS card families.
void applyVsOverride(models::VsParams& p, const std::string& key,
                     double value, int line) {
  static const std::unordered_map<std::string, double models::VsParams::*>
      kFields = {
          {"vt0", &models::VsParams::vt0},
          {"delta0", &models::VsParams::delta0},
          {"n0", &models::VsParams::n0},
          {"cinv", &models::VsParams::cinv},
          {"vxo", &models::VsParams::vxo},
          {"mu", &models::VsParams::mu},
          {"beta", &models::VsParams::beta},
          {"rs", &models::VsParams::rs},
          {"rd", &models::VsParams::rd},
          {"cof", &models::VsParams::cof},
      };
  const auto it = kFields.find(key);
  if (it == kFields.end()) fail(line, "unknown VS model parameter '" + key + "'");
  p.*(it->second) = value;
}

class Parser {
 public:
  explicit Parser(const std::string& text,
                  circuits::DeviceProvider* provider = nullptr)
      : lines_(tokenize(text)), provider_(provider) {}

  ParsedNetlist run() {
    // Models first: device lines may reference a .model defined later,
    // exactly as SPICE allows.
    for (const LogicalLine& ll : lines_) {
      if (ll.tokens[0] == ".model") parseModel(ll);
    }
    for (const LogicalLine& ll : lines_) {
      try {
        dispatch(ll);
      } catch (const NetlistParseError&) {
        throw;  // already line-classified
      } catch (const InvalidArgumentError& e) {
        // Circuit-level rejections (duplicate element name, ...) become
        // line-classified parse errors too: a service front end needs a
        // line-accurate diagnostic for every malformed deck.
        fail(ll.number, e.what());
      }
    }
    return std::move(result_);
  }

 private:
  void dispatch(const LogicalLine& ll) {
    const std::string& head = ll.tokens[0];
    if (head == ".model") return;  // handled in the first pass
    if (head == ".title") {
      for (std::size_t i = 1; i < ll.tokens.size(); ++i) {
        if (i > 1) result_.title += ' ';
        result_.title += ll.tokens[i];
      }
      return;
    }
    if (head == ".tran") {
      if (ll.tokens.size() != 3) fail(ll.number, ".tran needs <dt> <tstop>");
      result_.tran = {value(ll, 1), value(ll, 2)};
      return;
    }
    if (head == ".end") return;
    if (head[0] == '.') fail(ll.number, "unknown directive '" + head + "'");

    switch (head[0]) {
      case 'r': return parseResistor(ll);
      case 'c': return parseCapacitor(ll);
      case 'v': return parseVoltageSource(ll);
      case 'i': return parseCurrentSource(ll);
      case 'm': return parseMosfet(ll);
      default:
        fail(ll.number, "unknown element '" + head + "'");
    }
  }

  // --- helpers -----------------------------------------------------------
  [[nodiscard]] const std::string& tok(const LogicalLine& ll,
                                       std::size_t i) const {
    if (i >= ll.tokens.size()) fail(ll.number, "missing token");
    return ll.tokens[i];
  }
  [[nodiscard]] double value(const LogicalLine& ll, std::size_t i) const {
    try {
      return parseSpiceValue(tok(ll, i));
    } catch (const InvalidArgumentError& e) {
      fail(ll.number, e.what());
    }
  }
  [[nodiscard]] NodeId node(const LogicalLine& ll, std::size_t i) {
    return result_.circuit.node(tok(ll, i));
  }

  // --- element parsers ------------------------------------------------------
  void parseResistor(const LogicalLine& ll) {
    if (ll.tokens.size() != 4) fail(ll.number, "R needs: Rname a b value");
    result_.circuit.addResistor(tok(ll, 0), node(ll, 1), node(ll, 2),
                                value(ll, 3));
  }

  void parseCapacitor(const LogicalLine& ll) {
    if (ll.tokens.size() != 4) fail(ll.number, "C needs: Cname a b value");
    result_.circuit.addCapacitor(tok(ll, 0), node(ll, 1), node(ll, 2),
                                 value(ll, 3));
  }

  [[nodiscard]] SourceWaveform parseWaveform(const LogicalLine& ll,
                                             std::size_t i) const {
    const std::string& kind = tok(ll, i);
    if (kind == "dc") return SourceWaveform::dc(value(ll, i + 1));
    if (kind == "pulse") {
      const std::size_t args = ll.tokens.size() - (i + 1);
      if (args != 6 && args != 7) {
        fail(ll.number, "PULSE needs 6 or 7 arguments");
      }
      return SourceWaveform::pulse(
          value(ll, i + 1), value(ll, i + 2), value(ll, i + 3),
          value(ll, i + 4), value(ll, i + 5), value(ll, i + 6),
          args == 7 ? value(ll, i + 7) : 0.0);
    }
    if (kind == "pwl") {
      const std::size_t args = ll.tokens.size() - (i + 1);
      if (args < 4 || args % 2 != 0) {
        fail(ll.number, "PWL needs an even number (>= 4) of arguments");
      }
      std::vector<std::pair<double, double>> points;
      for (std::size_t k = i + 1; k < ll.tokens.size(); k += 2) {
        points.emplace_back(value(ll, k), value(ll, k + 1));
      }
      return SourceWaveform::pwl(std::move(points));
    }
    // Bare value: "V1 a b 0.9".
    return SourceWaveform::dc(value(ll, i));
  }

  void parseVoltageSource(const LogicalLine& ll) {
    if (ll.tokens.size() < 4) fail(ll.number, "V needs: Vname p n <spec>");
    result_.circuit.addVoltageSource(tok(ll, 0), node(ll, 1), node(ll, 2),
                                     parseWaveform(ll, 3));
  }

  void parseCurrentSource(const LogicalLine& ll) {
    if (ll.tokens.size() < 4) fail(ll.number, "I needs: Iname from to <spec>");
    result_.circuit.addCurrentSource(tok(ll, 0), node(ll, 1), node(ll, 2),
                                     parseWaveform(ll, 3));
  }

  void parseMosfet(const LogicalLine& ll) {
    // Mname d g s model w = <v> l = <v>   ('=' already split into a token)
    if (ll.tokens.size() < 5) fail(ll.number, "M needs: Mname d g s model W=... L=...");
    const std::string& modelName = tok(ll, 4);
    const auto it = models_.find(modelName);
    if (it == models_.end()) {
      fail(ll.number, "undefined model '" + modelName + "'");
    }

    double w = 0.0;
    double l = 0.0;
    for (std::size_t i = 5; i < ll.tokens.size(); i += 3) {
      if (i + 2 >= ll.tokens.size() || tok(ll, i + 1) != "=") {
        fail(ll.number, "expected key=value after the model name");
      }
      if (tok(ll, i) == "w") {
        w = value(ll, i + 2);
      } else if (tok(ll, i) == "l") {
        l = value(ll, i + 2);
      } else {
        fail(ll.number, "unknown MOSFET parameter '" + tok(ll, i) + "'");
      }
    }
    if (w <= 0.0 || l <= 0.0) {
      fail(ll.number, "MOSFET needs positive W= and L=");
    }
    const models::DeviceGeometry nominal{w, l};

    const auto polarity = vsPolarity_.find(modelName);
    if (polarity != vsPolarity_.end()) {
      ++result_.vsMosfets;
      if (provider_ != nullptr) {
        // Statistical build: the provider supplies the instance card (and
        // possibly a perturbed geometry); the deck card only selected the
        // polarity.  Instances are requested in deck order, which is the
        // draw order a CampaignSession later replays per sample.
        circuits::DeviceInstance inst =
            provider_->make(polarity->second, tok(ll, 0), nominal);
        result_.circuit.addMosfet(tok(ll, 0), node(ll, 1), node(ll, 2),
                                  node(ll, 3), std::move(inst.model),
                                  inst.geometry);
        return;
      }
    }

    std::unique_ptr<models::MosfetModel> model = std::visit(
        [](const auto& card) -> std::unique_ptr<models::MosfetModel> {
          using Card = std::decay_t<decltype(card)>;
          if constexpr (std::is_same_v<Card, models::VsParams>) {
            return std::make_unique<models::VsModel>(card);
          } else if constexpr (std::is_same_v<Card, models::BsimParams>) {
            return std::make_unique<models::BsimLite>(card);
          } else {
            return std::make_unique<models::AlphaPowerModel>(card);
          }
        },
        it->second);
    result_.circuit.addMosfet(tok(ll, 0), node(ll, 1), node(ll, 2),
                              node(ll, 3), std::move(model), nominal);
  }

  void parseModel(const LogicalLine& ll) {
    if (ll.tokens.size() < 3) fail(ll.number, ".model needs: name family");
    const std::string& name = tok(ll, 1);
    if (models_.count(name) != 0) {
      fail(ll.number, "duplicate model '" + name + "'");
    }
    const std::string& family = tok(ll, 2);

    ModelCard card;
    std::optional<models::DeviceType> vsType;
    if (family == "vs_nmos") {
      card = models::defaultVsNmos();
      vsType = models::DeviceType::Nmos;
    } else if (family == "vs_pmos") {
      card = models::defaultVsPmos();
      vsType = models::DeviceType::Pmos;
    } else if (family == "bsim_nmos") {
      card = models::defaultBsimNmos();
    } else if (family == "bsim_pmos") {
      card = models::defaultBsimPmos();
    } else if (family == "alpha_nmos") {
      card = models::defaultAlphaNmos();
    } else if (family == "alpha_pmos") {
      card = models::defaultAlphaPmos();
    } else {
      fail(ll.number, "unknown model family '" + family + "'");
    }

    // key = value overrides (VS families only).
    for (std::size_t i = 3; i < ll.tokens.size(); i += 3) {
      if (i + 2 >= ll.tokens.size() || tok(ll, i + 1) != "=") {
        fail(ll.number, "expected key=value");
      }
      if (auto* vs = std::get_if<models::VsParams>(&card)) {
        applyVsOverride(*vs, tok(ll, i), value(ll, i + 2), ll.number);
      } else {
        fail(ll.number,
             "parameter overrides are only supported for vs_* families");
      }
    }
    if (vsType) {
      const auto& vs = std::get<models::VsParams>(card);
      vsPolarity_.emplace(name, *vsType);
      // First card per polarity becomes the deck's nominal for statistical
      // front ends (ParsedNetlist::vsNmos / vsPmos).
      auto& slot = *vsType == models::DeviceType::Nmos ? result_.vsNmos
                                                       : result_.vsPmos;
      if (!slot) slot = vs;
    }
    models_.emplace(name, std::move(card));
  }

  std::vector<LogicalLine> lines_;
  circuits::DeviceProvider* provider_ = nullptr;
  std::unordered_map<std::string, ModelCard> models_;
  std::unordered_map<std::string, models::DeviceType> vsPolarity_;
  ParsedNetlist result_;
};

}  // namespace

ParsedNetlist parseNetlist(const std::string& text) {
  if (text.empty()) throw NetlistParseError(0, "empty netlist");
  return Parser(text).run();
}

ParsedNetlist parseNetlist(const std::string& text,
                           circuits::DeviceProvider& provider) {
  if (text.empty()) throw NetlistParseError(0, "empty netlist");
  return Parser(text, &provider).run();
}

ParsedNetlist parseNetlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgumentError("parseNetlistFile: cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parseNetlist(buffer.str());
}

}  // namespace vsstat::spice
