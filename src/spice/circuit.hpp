// Circuit container: named nodes plus an ordered list of elements.
// Benchmark circuits are netlisted programmatically (src/circuits) against
// this API.
#ifndef VSSTAT_SPICE_CIRCUIT_HPP
#define VSSTAT_SPICE_CIRCUIT_HPP

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "models/device.hpp"
#include "spice/element.hpp"
#include "spice/source.hpp"

namespace vsstat::spice {

class VoltageSourceElement;
class MosfetElement;

class Circuit {
 public:
  Circuit();

  // Movable (element pointers are stable), not copyable.
  Circuit(Circuit&&) = default;
  Circuit& operator=(Circuit&&) = default;
  Circuit(const Circuit&) = delete;
  Circuit& operator=(const Circuit&) = delete;

  // --- nodes -----------------------------------------------------------------
  [[nodiscard]] NodeId ground() const noexcept { return kGround; }
  /// Returns the node with this name, creating it on first use.
  /// "0" and "gnd" map to ground.
  NodeId node(const std::string& name);
  [[nodiscard]] const std::string& nodeName(NodeId id) const;
  /// Total node count including ground.
  [[nodiscard]] std::size_t nodeCount() const noexcept { return names_.size(); }

  // --- element factories -------------------------------------------------------
  void addResistor(const std::string& name, NodeId a, NodeId b, double ohms);
  void addCapacitor(const std::string& name, NodeId a, NodeId b, double farads);
  void addCurrentSource(const std::string& name, NodeId from, NodeId to,
                        SourceWaveform waveform);
  /// Voltage source with a branch-current unknown; returns a stable handle
  /// usable to retune the waveform (DC sweeps, setup/hold searches).
  VoltageSourceElement& addVoltageSource(const std::string& name, NodeId pos,
                                         NodeId neg, SourceWaveform waveform);
  /// MOSFET; the circuit takes ownership of the per-instance model card.
  MosfetElement& addMosfet(const std::string& name, NodeId drain, NodeId gate,
                           NodeId source,
                           std::unique_ptr<models::MosfetModel> model,
                           const models::DeviceGeometry& geometry);

  // --- lookups -------------------------------------------------------------------
  [[nodiscard]] const std::vector<std::unique_ptr<Element>>& elements()
      const noexcept {
    return elements_;
  }
  /// Throws InvalidArgumentError when no voltage source has that name.
  [[nodiscard]] VoltageSourceElement& voltageSource(const std::string& name);
  [[nodiscard]] MosfetElement& mosfet(const std::string& name);

  // --- sizing for the solver -------------------------------------------------------
  /// Unknowns: (nodeCount - 1) node voltages + total branch currents.
  [[nodiscard]] std::size_t unknownCount() const noexcept;
  [[nodiscard]] int branchTotal() const noexcept { return branchTotal_; }
  [[nodiscard]] int chargeSlotTotal() const noexcept { return chargeTotal_; }

 private:
  void registerElement(std::unique_ptr<Element> e);

  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> byName_;
  std::vector<std::unique_ptr<Element>> elements_;
  std::unordered_map<std::string, Element*> elementByName_;
  int branchTotal_ = 0;
  int chargeTotal_ = 0;
};

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_CIRCUIT_HPP
