#include "spice/device_bank.hpp"

#include <span>
#include <typeinfo>

#include "util/error.hpp"

namespace vsstat::spice::detail {

namespace {

/// Residual row of a node: unknown index, or -1 for ground (the same
/// mapping LoadContext::v / Assembler::stampCurrent apply per stamp).
inline std::int32_t rowOf(NodeId node) noexcept {
  return node == kGround ? -1 : static_cast<std::int32_t>(node - 1);
}

}  // namespace

DeviceBankSet::DeviceBankSet(const Circuit& circuit,
                             const linalg::SparsePattern& pattern,
                             models::NumericsMode numerics)
    : circuit_(&circuit), pattern_(&pattern), numerics_(numerics) {
  rebuild();
}

void DeviceBankSet::rebuild() {
  groups_.clear();
  laneCount_ = 0;
  const auto& elements = circuit_->elements();
  elementLanes_.assign(elements.size(), BankLaneRef{});

  // Reserve every per-lane SoA vector at the full MOSFET count up front:
  // a bank rebuild then costs one allocation per vector instead of a
  // doubling-growth series per vector (the usual case is one homogeneous
  // group holding every device, where the bound is exact).
  std::size_t mosfetCount = 0;
  for (const auto& e : elements)
    if (dynamic_cast<const MosfetElement*>(e.get()) != nullptr) ++mosfetCount;

  for (std::size_t idx = 0; idx < elements.size(); ++idx) {
    const auto* m = dynamic_cast<const MosfetElement*>(elements[idx].get());
    if (m == nullptr) continue;

    const std::type_index type(typeid(m->model()));
    std::int32_t g = -1;
    for (std::size_t k = 0; k < groups_.size(); ++k) {
      if (groups_[k].cardType == type) {
        g = static_cast<std::int32_t>(k);
        break;
      }
    }
    if (g < 0) {
      g = static_cast<std::int32_t>(groups_.size());
      groups_.emplace_back(type);
      DeviceBankGroup& fresh = groups_.back();
      fresh.element.reserve(mosfetCount);
      fresh.version.reserve(mosfetCount);
      fresh.sign.reserve(mosfetCount);
      for (std::vector<std::int32_t>* v :
           {&fresh.rowD, &fresh.rowG, &fresh.rowS, &fresh.chargeBase,
            &fresh.sDG, &fresh.sDD, &fresh.sDS, &fresh.sSG, &fresh.sSD,
            &fresh.sSS, &fresh.sGG, &fresh.sGD, &fresh.sGS})
        v->reserve(mosfetCount);
    }
    DeviceBankGroup& grp = groups_[static_cast<std::size_t>(g)];

    const std::int32_t lane = static_cast<std::int32_t>(grp.element.size());
    grp.element.push_back(m);
    grp.version.push_back(m->cardVersion());
    grp.sign.push_back(
        m->model().deviceType() == models::DeviceType::Nmos ? 1.0 : -1.0);
    const std::int32_t rd = rowOf(m->drain());
    const std::int32_t rg = rowOf(m->gate());
    const std::int32_t rs = rowOf(m->source());
    grp.rowD.push_back(rd);
    grp.rowG.push_back(rg);
    grp.rowS.push_back(rs);
    grp.chargeBase.push_back(m->chargeBase());

    // The element's 3x3 terminal Jacobian block was captured by the
    // assembler's symbolic pass (stamp structure is bias-independent by
    // contract), so every non-ground pair must resolve to a slot.
    const auto slotOf = [&](std::int32_t row, std::int32_t col) {
      if (row < 0 || col < 0) return std::int32_t{-1};
      const std::int32_t s = pattern_->slot(static_cast<std::size_t>(row),
                                            static_cast<std::size_t>(col));
      require(s >= 0,
              "DeviceBankSet: MOSFET stamp position missing from the "
              "captured sparsity pattern");
      return s;
    };
    grp.sDG.push_back(slotOf(rd, rg));
    grp.sDD.push_back(slotOf(rd, rd));
    grp.sDS.push_back(slotOf(rd, rs));
    grp.sSG.push_back(slotOf(rs, rg));
    grp.sSD.push_back(slotOf(rs, rd));
    grp.sSS.push_back(slotOf(rs, rs));
    grp.sGG.push_back(slotOf(rg, rg));
    grp.sGD.push_back(slotOf(rg, rd));
    grp.sGS.push_back(slotOf(rg, rs));

    elementLanes_[idx] = BankLaneRef{g, lane};
    ++laneCount_;
  }

  for (DeviceBankGroup& grp : groups_) {
    std::vector<models::BankLane> lanes;
    lanes.reserve(grp.element.size());
    for (const MosfetElement* e : grp.element)
      lanes.push_back(models::BankLane{&e->model(), &e->geometry()});
    grp.bank =
        grp.element.front()->model().makeLoadBank(std::move(lanes), numerics_);
    grp.vgs.resize(grp.element.size());
    grp.vds.resize(grp.element.size());
    grp.out.resize(grp.element.size());
  }
}

bool DeviceBankSet::sync() {
  for (DeviceBankGroup& grp : groups_) {
    for (std::size_t i = 0; i < grp.element.size(); ++i) {
      const MosfetElement* e = grp.element[i];
      if (e->cardVersion() == grp.version[i]) continue;
      if (!grp.bank->rebindLane(i, e->model(), e->geometry()))
        return false;  // dynamic type changed: regroup from scratch
      // Polarity may only change through setInstance (rebind forbids it);
      // either way the sign is re-derived with the lane.
      grp.sign[i] =
          e->model().deviceType() == models::DeviceType::Nmos ? 1.0 : -1.0;
      grp.version[i] = e->cardVersion();
    }
  }
  return true;
}

void DeviceBankSet::evaluate(const linalg::Vector& x) {
  for (DeviceBankGroup& grp : groups_) {
    const std::size_t n = grp.element.size();
    for (std::size_t i = 0; i < n; ++i) {
      const double vd = grp.rowD[i] < 0
                            ? 0.0
                            : x[static_cast<std::size_t>(grp.rowD[i])];
      const double vg = grp.rowG[i] < 0
                            ? 0.0
                            : x[static_cast<std::size_t>(grp.rowG[i])];
      const double vs = grp.rowS[i] < 0
                            ? 0.0
                            : x[static_cast<std::size_t>(grp.rowS[i])];
      const double sign = grp.sign[i];
      grp.vgs[i] = sign * (vg - vs);
      grp.vds[i] = sign * (vd - vs);
    }
    grp.bank->evaluateLoadBatch(std::span<const double>(grp.vgs),
                                std::span<const double>(grp.vds),
                                kMosfetFdStep,
                                std::span<models::MosfetLoadEvaluation>(
                                    grp.out));
  }
}

}  // namespace vsstat::spice::detail
