// SPICE netlist text parser -- the subset this library's circuits need.
//
// Grammar (case-insensitive keywords, '*' comments, '+' continuations):
//
//   R<name> a b <value>
//   C<name> a b <value>
//   V<name> p n [DC] <value> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t v ...)
//   I<name> from to <value>
//   M<name> d g s <model> W=<value> L=<value>
//   .model <name> vs_nmos|vs_pmos|bsim_nmos|bsim_pmos|alpha_nmos|alpha_pmos
//          [key=value ...]           (VS families accept card overrides)
//   .tran <dt> <tstop>               (recorded, not executed)
//   .title <text>  .end
//
// Values accept SPICE suffixes (f p n u m k meg g t) and scientific
// notation; node "0" and "gnd" are ground.  MOSFETs are three-terminal in
// this engine (no bulk), matching spice::MosfetElement.
//
// All errors throw InvalidArgumentError with the offending line number.
#ifndef VSSTAT_SPICE_NETLIST_HPP
#define VSSTAT_SPICE_NETLIST_HPP

#include <optional>
#include <string>

#include "spice/analysis.hpp"
#include "spice/circuit.hpp"

namespace vsstat::spice {

struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  /// From a .tran card, if present: {dt, tstop}.
  std::optional<std::pair<double, double>> tran;
};

/// Parses a complete netlist from text.
[[nodiscard]] ParsedNetlist parseNetlist(const std::string& text);

/// Parses a netlist file from disk.
[[nodiscard]] ParsedNetlist parseNetlistFile(const std::string& path);

/// Parses one numeric token with SPICE magnitude suffixes:
/// "1k" = 1e3, "10meg" = 1e7, "3.3u" = 3.3e-6, "40n", "1.5e-12", ...
/// (SPICE convention: lone "m" is milli, "meg" is 1e6.)  A trailing unit
/// word after the suffix is ignored ("10pF" == "10p").
[[nodiscard]] double parseSpiceValue(const std::string& token);

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_NETLIST_HPP
