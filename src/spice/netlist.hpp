// SPICE netlist text parser -- the subset this library's circuits need.
//
// Grammar (case-insensitive keywords, '*' comments, '+' continuations):
//
//   R<name> a b <value>
//   C<name> a b <value>
//   V<name> p n [DC] <value> | PULSE(v1 v2 td tr tf pw [per]) | PWL(t v ...)
//   I<name> from to <value>
//   M<name> d g s <model> W=<value> L=<value>
//   .model <name> vs_nmos|vs_pmos|bsim_nmos|bsim_pmos|alpha_nmos|alpha_pmos
//          [key=value ...]           (VS families accept card overrides)
//   .tran <dt> <tstop>               (recorded, not executed)
//   .title <text>  .end
//
// Values accept SPICE suffixes (f p n u m k meg g t) and scientific
// notation; node "0" and "gnd" are ground.  MOSFETs are three-terminal in
// this engine (no bulk), matching spice::MosfetElement.
//
// All parse failures throw NetlistParseError, a classified
// InvalidArgumentError carrying the offending 1-based source line -- a
// service front end (serve/) rejects a malformed deck with a line-accurate
// diagnostic instead of aborting.
//
// Statistical builds: the provider overload routes every vs_* MOSFET
// through a circuits::DeviceProvider (deck order = provider draw order),
// which is what lets a parsed deck serve as a sim::CampaignSession fixture
// -- the session replays the same order per sample to rebind mismatch
// draws in place.  bsim_* / alpha_* instances always use their literal
// deck cards.
#ifndef VSSTAT_SPICE_NETLIST_HPP
#define VSSTAT_SPICE_NETLIST_HPP

#include <cstddef>
#include <optional>
#include <string>

#include "circuits/provider.hpp"
#include "models/vs_params.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "util/error.hpp"

namespace vsstat::spice {

/// Classified netlist parse failure.  `line()` is the 1-based source line
/// of the offending statement (continuation lines report the continuation,
/// not the statement head); 0 flags whole-netlist problems (empty input).
/// Derives from InvalidArgumentError so pre-existing catch sites keep
/// working unchanged.
class NetlistParseError : public InvalidArgumentError {
 public:
  NetlistParseError(int line, const std::string& message)
      : InvalidArgumentError(line > 0 ? "netlist line " +
                                            std::to_string(line) + ": " +
                                            message
                                      : "netlist: " + message),
        line_(line),
        message_(message) {}

  [[nodiscard]] int line() const noexcept { return line_; }
  /// Diagnostic without the "netlist line N:" prefix.
  [[nodiscard]] const std::string& message() const noexcept {
    return message_;
  }

 private:
  int line_;
  std::string message_;
};

struct ParsedNetlist {
  Circuit circuit;
  std::string title;
  /// From a .tran card, if present: {dt, tstop}.
  std::optional<std::pair<double, double>> tran;
  /// First vs_nmos / vs_pmos .model card (overrides applied), when the deck
  /// declares one.  A statistical front end uses these as the per-polarity
  /// nominal cards of its mismatch provider.
  std::optional<models::VsParams> vsNmos;
  std::optional<models::VsParams> vsPmos;
  /// Number of MOSFET instances referencing a vs_* model, in deck order --
  /// the devices a provider-routed build draws mismatch for (z-vector
  /// dimension = vsMosfets * VsFixedZProvider::kDimsPerDevice).
  std::size_t vsMosfets = 0;
};

/// Parses a complete netlist from text.
[[nodiscard]] ParsedNetlist parseNetlist(const std::string& text);

/// Parses a netlist, instantiating every vs_* MOSFET through `provider`
/// (deck order).  The deck's vs_* cards select the device polarity only;
/// the instance cards come from the provider -- hand it a NominalProvider
/// built from ParsedNetlist::vsNmos/vsPmos to reproduce the plain parse.
[[nodiscard]] ParsedNetlist parseNetlist(const std::string& text,
                                         circuits::DeviceProvider& provider);

/// Parses a netlist file from disk.
[[nodiscard]] ParsedNetlist parseNetlistFile(const std::string& path);

/// Parses one numeric token with SPICE magnitude suffixes:
/// "1k" = 1e3, "10meg" = 1e7, "3.3u" = 3.3e-6, "40n", "1.5e-12", ...
/// (SPICE convention: lone "m" is milli, "meg" is 1e6.)  A trailing unit
/// word after the suffix is ignored ("10pF" == "10p").
[[nodiscard]] double parseSpiceValue(const std::string& token);

}  // namespace vsstat::spice

#endif  // VSSTAT_SPICE_NETLIST_HPP
