// Circuit-campaign overload of mc::runCampaign: Monte Carlo over one fixed
// circuit topology through build-once / rebind-per-sample sessions
// (sim::CampaignSession) instead of rebuilding the fixture every sample.
//
// Semantics match the classic shape exactly -- decorrelated child RNG per
// sample, bit-identical results regardless of thread count, throwing
// samples dropped and counted -- and, because session rebinding is
// draw-for-draw and solver-numerics identical to a rebuild, the metrics
// are bit-identical to a rebuild-per-sample campaign with the same seed.
//
// `sessionOptions` selects the session-mode axes for every worker session:
// NumericsMode::fast and/or SolverMode::reusePivot keep the
// thread-count-independence guarantee (results never depend on which
// worker served which sample) but replace rebuild bit-identity with the
// documented tolerance contracts (README, "Session modes").
#ifndef VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP
#define VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP

#include <functional>
#include <memory>
#include <vector>

#include "mc/runner.hpp"
#include "sim/rescue.hpp"
#include "sim/session.hpp"

namespace vsstat::mc {

/// Factory for per-worker device providers.  Each session owns one; its
/// initial RNG state is irrelevant (bindSample reseeds before every rebind
/// pass), so statistical providers may be created with any seed.
using ProviderFactory =
    std::function<std::unique_ptr<circuits::DeviceProvider>()>;

/// Sample function of a circuit campaign: the fixture arrives already
/// rebound for this sample's mismatch draw.  `rng` is the sample's child
/// stream at its START -- a COPY of it seeded the provider (exactly like
/// handing a fresh provider the stream in the rebuild flow), so drawing
/// from `rng` directly would replay the very values the rebind consumed.
/// For extra per-sample randomness, fork: `rng.fork(1)`, `rng.fork(2)`,
/// ... are decorrelated from the provider's draws.
template <class Fixture>
using CircuitSampleFn = std::function<void(
    std::size_t index, sim::CampaignSession<Fixture>& session,
    stats::Rng& rng, std::vector<double>& out)>;

/// Runs a Monte Carlo campaign over one circuit topology.  `build` is
/// invoked once per worker session (not per sample); `fn` measures the
/// rebound fixture.  Call with the fixture type explicit, e.g.
/// `mc::runCampaign<circuits::GateFo3Bench>(...)`.
///
/// Failure semantics: a sample whose solve or metric throws a SampleFailure
/// first walks the deterministic rescue ladder (sim/rescue.hpp, disable via
/// `rescue.enabled = false`); a sample the ladder recovers counts in
/// McResult::rescued, one it cannot is dropped under its failure class.
/// Non-SampleFailure exceptions abort the campaign.
template <class Fixture>
[[nodiscard]] McResult runCampaign(
    const McOptions& options, std::size_t metricCount,
    const typename sim::CampaignSession<Fixture>::Builder& build,
    const ProviderFactory& providerFactory, const CircuitSampleFn<Fixture>& fn,
    spice::SessionOptions sessionOptions = {},
    const sim::RescuePolicy& rescue = {}) {
  sim::SessionPool<Fixture> pool(build, providerFactory, sessionOptions);
  return runCampaign(
      options, metricCount,
      SampleFnEx([&](std::size_t index, stats::Rng& rng,
                     std::vector<double>& out, SampleContext& ctx) {
        typename sim::SessionPool<Fixture>::Lease lease = pool.acquire();
        sim::runSampleWithRescue(index, *lease, rng, out, ctx, fn, rescue);
      }));
}

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP
