// Circuit-campaign overload of mc::runCampaign: Monte Carlo over one fixed
// circuit topology through build-once / rebind-per-sample sessions
// (sim::CampaignSession) instead of rebuilding the fixture every sample.
//
// Semantics match the classic shape exactly -- decorrelated child RNG per
// sample, bit-identical results regardless of thread count, throwing
// samples dropped and counted -- and, because session rebinding is
// draw-for-draw and solver-numerics identical to a rebuild, the metrics
// are bit-identical to a rebuild-per-sample campaign with the same seed.
//
// `sessionOptions` selects the session-mode axes for every worker session:
// NumericsMode::fast and/or SolverMode::reusePivot keep the
// thread-count-independence guarantee (results never depend on which
// worker served which sample) but replace rebuild bit-identity with the
// documented tolerance contracts (README, "Session modes").
//
// ToleranceTier::statistical adds the third axis: samples are dispatched
// in fixed-size warm-chain blocks (kStatisticalSampleBlock unless
// McOptions::sampleBlock overrides it).  One session lease spans each
// block; within it sample k's analyses seed Newton from sample k-1's
// converged states and blocks start cold, so the warm-start pattern is a
// pure function of the sample index -- statistical campaigns remain
// bit-identical across 1/2/4/... workers, they only trade per-sample
// bit-identity with perSample runs for the estimator-level contract.
//
// A SamplingPlan with a generator scheme (iid/lhs/halton/sobol) replaces
// the provider's internal RNG with externally computed standardized
// coordinates: the plan's generator is evaluated at each sample index and
// armed on the session's circuits::FixedZProvider before the rebind.
#ifndef VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP
#define VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "mc/runner.hpp"
#include "mc/samplers.hpp"
#include "sim/rescue.hpp"
#include "sim/session.hpp"

namespace vsstat::mc {

/// Default warm-chain block length of statistical-tier campaigns.  Long
/// enough that the per-block cold start is amortized away, short enough
/// that blocks still load-balance across workers for quick-bench sample
/// counts.  Part of the determinism contract: results depend on this
/// value, never on the thread count.
inline constexpr int kStatisticalSampleBlock = 32;

/// Factory for per-worker device providers.  Each session owns one; its
/// initial RNG state is irrelevant (bindSample reseeds before every rebind
/// pass), so statistical providers may be created with any seed.
using ProviderFactory =
    std::function<std::unique_ptr<circuits::DeviceProvider>()>;

/// Sample function of a circuit campaign: the fixture arrives already
/// rebound for this sample's mismatch draw.  `rng` is the sample's child
/// stream at its START -- a COPY of it seeded the provider (exactly like
/// handing a fresh provider the stream in the rebuild flow), so drawing
/// from `rng` directly would replay the very values the rebind consumed.
/// For extra per-sample randomness, fork: `rng.fork(1)`, `rng.fork(2)`,
/// ... are decorrelated from the provider's draws.
template <class Fixture>
using CircuitSampleFn = std::function<void(
    std::size_t index, sim::CampaignSession<Fixture>& session,
    stats::Rng& rng, std::vector<double>& out)>;

namespace detail {

/// Thread-local slot naming the session whose lease the currently running
/// warm-chain block holds.  Save/restore semantics (BlockHold) keep nested
/// same-fixture campaigns from clobbering their caller's block.
template <class Fixture>
[[nodiscard]] inline sim::CampaignSession<Fixture>*&
blockSessionSlot() noexcept {
  static thread_local sim::CampaignSession<Fixture>* slot = nullptr;
  return slot;
}

/// Block-scoped lease holder: acquired on the worker that runs the block,
/// cold-started (warm chains never cross block boundaries), published via
/// the thread-local slot, released when the block's last sample finished.
template <class Fixture>
struct BlockHold {
  typename sim::SessionPool<Fixture>::Lease lease;
  sim::CampaignSession<Fixture>* prev;

  explicit BlockHold(typename sim::SessionPool<Fixture>::Lease l)
      : lease(std::move(l)), prev(blockSessionSlot<Fixture>()) {
    lease->coldStart();
    blockSessionSlot<Fixture>() = &*lease;
  }
  ~BlockHold() { blockSessionSlot<Fixture>() = prev; }
  BlockHold(const BlockHold&) = delete;
  BlockHold& operator=(const BlockHold&) = delete;
};

}  // namespace detail

/// Runs a Monte Carlo campaign over one circuit topology.  `build` is
/// invoked once per worker session (not per sample); `fn` measures the
/// rebound fixture.  Call with the fixture type explicit, e.g.
/// `mc::runCampaign<circuits::GateFo3Bench>(...)`.
///
/// Failure semantics: a sample whose solve or metric throws a SampleFailure
/// first walks the deterministic rescue ladder (sim/rescue.hpp, disable via
/// `rescue.enabled = false`); a sample the ladder recovers counts in
/// McResult::rescued, one it cannot is dropped under its failure class.
/// Non-SampleFailure exceptions abort the campaign.  A failed or rescued
/// sample also voids the statistical tier's warm chain, so the drop/rescue
/// taxonomy stays a pure function of the sample index.
template <class Fixture>
[[nodiscard]] McResult runCampaign(
    const McOptions& options, std::size_t metricCount,
    const typename sim::CampaignSession<Fixture>::Builder& build,
    const ProviderFactory& providerFactory, const CircuitSampleFn<Fixture>& fn,
    spice::SessionOptions sessionOptions = {},
    const sim::RescuePolicy& rescue = {}, const SamplingPlan& plan = {}) {
  McOptions effective = options;
  if (sessionOptions.tier == spice::ToleranceTier::statistical &&
      effective.sampleBlock == 0)
    effective.sampleBlock = kStatisticalSampleBlock;

  const std::unique_ptr<SampleGenerator> generator = makeSampleGenerator(
      plan, static_cast<std::size_t>(effective.samples), effective.seed);

  sim::SessionPool<Fixture> pool(build, providerFactory, sessionOptions);

  // Arms the plan's z-vector for this sample.  FixedZProvider::reseed only
  // rewinds the cursor, so rescue-ladder replays (bindSample per attempt)
  // re-run the same coordinates bit-for-bit.
  const auto armGenerator = [&](sim::CampaignSession<Fixture>& session,
                                std::size_t index) {
    if (generator == nullptr) return;
    auto* fixed =
        dynamic_cast<circuits::FixedZProvider*>(&session.provider());
    require(fixed != nullptr,
            "runCampaign: SamplingPlan generator schemes require the "
            "provider factory to produce circuits::FixedZProvider sessions");
    fixed->setZ(generator->standardNormals(index));
  };

  const auto runSample = [&](std::size_t index, stats::Rng& rng,
                             std::vector<double>& out, SampleContext& ctx) {
    if (sim::CampaignSession<Fixture>* block =
            detail::blockSessionSlot<Fixture>()) {
      armGenerator(*block, index);
      sim::runSampleWithRescue(index, *block, rng, out, ctx, fn, rescue);
      return;
    }
    typename sim::SessionPool<Fixture>::Lease lease = pool.acquire();
    armGenerator(*lease, index);
    sim::runSampleWithRescue(index, *lease, rng, out, ctx, fn, rescue);
  };

  BlockResourceFn blockResource;
  if (effective.sampleBlock > 0)
    blockResource = [&pool](std::size_t) -> std::shared_ptr<void> {
      return std::make_shared<detail::BlockHold<Fixture>>(pool.acquire());
    };

  return runCampaign(effective, metricCount, SampleFnEx(runSample),
                     blockResource);
}

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_CIRCUIT_CAMPAIGN_HPP
