// Sample-point generators over the standardized mismatch space.
//
// Plain Monte Carlo converges as 1/sqrt(N) regardless of what the paper's
// campaigns measure; stratified (Latin hypercube) and low-discrepancy
// (randomized Halton) designs cut the constant substantially for the
// smooth responses that dominate this library (Idsat, delay, SNM).  Every
// generator produces *standard normal* coordinates so downstream code can
// scale by the Pelgrom sigmas exactly as with iid sampling.
//
// All generators are deterministic functions of (seed, sampleIndex), so
// campaigns remain reproducible and thread-order independent.
#ifndef VSSTAT_MC_SAMPLERS_HPP
#define VSSTAT_MC_SAMPLERS_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace vsstat::mc {

/// Abstract generator of standardized-normal sample vectors.
class SampleGenerator {
 public:
  virtual ~SampleGenerator() = default;

  SampleGenerator(const SampleGenerator&) = delete;
  SampleGenerator& operator=(const SampleGenerator&) = delete;

  /// z-vector (length dimension()) for one sample; indices must lie in
  /// [0, samples()).
  [[nodiscard]] virtual std::vector<double> standardNormals(
      std::size_t sampleIndex) const = 0;

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

 protected:
  SampleGenerator(std::size_t dim, std::size_t samples);

  void checkIndex(std::size_t sampleIndex) const;

 private:
  std::size_t dim_;
  std::size_t samples_;
};

/// Independent draws -- the baseline the paper's campaigns use.
class IidSampler final : public SampleGenerator {
 public:
  IidSampler(std::size_t dim, std::size_t samples, std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

 private:
  stats::Rng root_;
};

/// Latin hypercube: every dimension's N values occupy the N probability
/// strata exactly once (random permutation per dimension, jittered within
/// each stratum), mapped through the normal quantile.
class LatinHypercubeSampler final : public SampleGenerator {
 public:
  LatinHypercubeSampler(std::size_t dim, std::size_t samples,
                        std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

 private:
  std::vector<std::vector<std::uint32_t>> permutations_;  ///< [dim][sample]
  stats::Rng root_;
};

/// Randomized Halton low-discrepancy sequence: dimension d uses the d-th
/// prime as its radical-inverse base, with a Cranley-Patterson rotation
/// (per-dimension uniform shift mod 1) so the estimator stays unbiased and
/// the high-dimension correlations of the raw sequence are broken.
class HaltonSampler final : public SampleGenerator {
 public:
  /// Supports up to 64 dimensions (the first 64 primes).
  HaltonSampler(std::size_t dim, std::size_t samples, std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

  /// Radical inverse of `index` in the given base (exposed for tests).
  [[nodiscard]] static double radicalInverse(std::uint64_t index,
                                             std::uint32_t base);

 private:
  std::vector<std::uint32_t> bases_;
  std::vector<double> shifts_;
};

/// Randomized Sobol low-discrepancy sequence (Joe-Kuo direction numbers,
/// Gray-code point construction), with the same Cranley-Patterson rotation
/// as HaltonSampler.  Better high-dimension equidistribution than Halton
/// for the 30-dimensional mismatch spaces of the SRAM yield flow.
class SobolSampler final : public SampleGenerator {
 public:
  /// Supports up to 32 dimensions (embedded direction-number table).
  SobolSampler(std::size_t dim, std::size_t samples, std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

  /// Raw [0,1) coordinate of (sampleIndex, dimension) before the rotation
  /// (exposed for tests: equidistribution checks).
  [[nodiscard]] double coordinate(std::size_t sampleIndex,
                                  std::size_t dimension) const;

 private:
  std::vector<std::uint32_t> directions_;  ///< [dim * kSobolBits] v_k
  std::vector<double> shifts_;
};

/// First-class campaign sampling plan: which generator realizes the
/// standardized mismatch space of a circuit campaign.  `providerRng`
/// (default) keeps the historical behavior -- the DeviceProvider draws
/// from the sample's decorrelated child RNG.  Generator schemes require
/// the campaign's providers to accept externally-supplied z-vectors
/// (circuits::FixedZProvider) and make the variance-reduction designs of
/// this header a mc::runCampaign mode instead of an examples-only loop.
struct SamplingPlan {
  enum class Scheme : std::uint8_t { providerRng, iid, lhs, halton, sobol };
  Scheme scheme = Scheme::providerRng;
  /// Standardized-space dimensionality (entries consumed per sample);
  /// required for generator schemes.
  std::size_t dimension = 0;
  /// Generator seed; 0 derives one from the campaign seed.
  std::uint64_t seed = 0;
};

[[nodiscard]] const char* toString(SamplingPlan::Scheme scheme) noexcept;

/// Parses a CLI scheme name ("iid", "lhs", "halton", "sobol", "rng");
/// throws InvalidArgumentError on anything else.
[[nodiscard]] SamplingPlan::Scheme parseScheme(const std::string& name);

/// Instantiates the plan's generator for a campaign of `samples` samples,
/// or nullptr for Scheme::providerRng.  A zero plan seed falls back to
/// `fallbackSeed` (the campaign seed), keeping runs reproducible.
[[nodiscard]] std::unique_ptr<SampleGenerator> makeSampleGenerator(
    const SamplingPlan& plan, std::size_t samples, std::uint64_t fallbackSeed);

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_SAMPLERS_HPP
