// Sample-point generators over the standardized mismatch space.
//
// Plain Monte Carlo converges as 1/sqrt(N) regardless of what the paper's
// campaigns measure; stratified (Latin hypercube) and low-discrepancy
// (randomized Halton) designs cut the constant substantially for the
// smooth responses that dominate this library (Idsat, delay, SNM).  Every
// generator produces *standard normal* coordinates so downstream code can
// scale by the Pelgrom sigmas exactly as with iid sampling.
//
// All generators are deterministic functions of (seed, sampleIndex), so
// campaigns remain reproducible and thread-order independent.
#ifndef VSSTAT_MC_SAMPLERS_HPP
#define VSSTAT_MC_SAMPLERS_HPP

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace vsstat::mc {

/// Abstract generator of standardized-normal sample vectors.
class SampleGenerator {
 public:
  virtual ~SampleGenerator() = default;

  SampleGenerator(const SampleGenerator&) = delete;
  SampleGenerator& operator=(const SampleGenerator&) = delete;

  /// z-vector (length dimension()) for one sample; indices must lie in
  /// [0, samples()).
  [[nodiscard]] virtual std::vector<double> standardNormals(
      std::size_t sampleIndex) const = 0;

  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }
  [[nodiscard]] std::size_t samples() const noexcept { return samples_; }

 protected:
  SampleGenerator(std::size_t dim, std::size_t samples);

  void checkIndex(std::size_t sampleIndex) const;

 private:
  std::size_t dim_;
  std::size_t samples_;
};

/// Independent draws -- the baseline the paper's campaigns use.
class IidSampler final : public SampleGenerator {
 public:
  IidSampler(std::size_t dim, std::size_t samples, std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

 private:
  stats::Rng root_;
};

/// Latin hypercube: every dimension's N values occupy the N probability
/// strata exactly once (random permutation per dimension, jittered within
/// each stratum), mapped through the normal quantile.
class LatinHypercubeSampler final : public SampleGenerator {
 public:
  LatinHypercubeSampler(std::size_t dim, std::size_t samples,
                        std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

 private:
  std::vector<std::vector<std::uint32_t>> permutations_;  ///< [dim][sample]
  stats::Rng root_;
};

/// Randomized Halton low-discrepancy sequence: dimension d uses the d-th
/// prime as its radical-inverse base, with a Cranley-Patterson rotation
/// (per-dimension uniform shift mod 1) so the estimator stays unbiased and
/// the high-dimension correlations of the raw sequence are broken.
class HaltonSampler final : public SampleGenerator {
 public:
  /// Supports up to 64 dimensions (the first 64 primes).
  HaltonSampler(std::size_t dim, std::size_t samples, std::uint64_t seed);

  [[nodiscard]] std::vector<double> standardNormals(
      std::size_t sampleIndex) const override;

  /// Radical inverse of `index` in the given base (exposed for tests).
  [[nodiscard]] static double radicalInverse(std::uint64_t index,
                                             std::uint32_t base);

 private:
  std::vector<std::uint32_t> bases_;
  std::vector<double> shifts_;
};

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_SAMPLERS_HPP
