#include "mc/samplers.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::mc {

SampleGenerator::SampleGenerator(std::size_t dim, std::size_t samples)
    : dim_(dim), samples_(samples) {
  require(dim_ > 0, "SampleGenerator: dimension must be positive");
  require(samples_ > 0, "SampleGenerator: sample count must be positive");
}

void SampleGenerator::checkIndex(std::size_t sampleIndex) const {
  require(sampleIndex < samples_,
          "SampleGenerator: sample index out of range");
}

// --- iid -----------------------------------------------------------------------

IidSampler::IidSampler(std::size_t dim, std::size_t samples,
                       std::uint64_t seed)
    : SampleGenerator(dim, samples), root_(seed) {}

std::vector<double> IidSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  stats::Rng rng = root_.fork(sampleIndex);
  std::vector<double> z(dimension());
  for (double& v : z) v = rng.normal();
  return z;
}

// --- Latin hypercube ---------------------------------------------------------

LatinHypercubeSampler::LatinHypercubeSampler(std::size_t dim,
                                             std::size_t samples,
                                             std::uint64_t seed)
    : SampleGenerator(dim, samples), root_(seed) {
  permutations_.resize(dim);
  stats::Rng rng(seed);
  for (std::size_t d = 0; d < dim; ++d) {
    auto& perm = permutations_[d];
    perm.resize(samples);
    for (std::size_t i = 0; i < samples; ++i)
      perm[i] = static_cast<std::uint32_t>(i);
    // Fisher-Yates with the library RNG.
    for (std::size_t i = samples; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
      std::swap(perm[i], perm[j]);
    }
  }
}

std::vector<double> LatinHypercubeSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  // Per-sample jitter stream, independent of the permutation stream.
  stats::Rng jitter = root_.fork(0x10C5 + sampleIndex);
  const double n = static_cast<double>(samples());
  std::vector<double> z(dimension());
  for (std::size_t d = 0; d < dimension(); ++d) {
    const double stratum = permutations_[d][sampleIndex];
    const double u = (stratum + jitter.uniform()) / n;
    z[d] = stats::normalQuantile(u);
  }
  return z;
}

// --- randomized Halton ---------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 64> kPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
    43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
    103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
    173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311};

}  // namespace

HaltonSampler::HaltonSampler(std::size_t dim, std::size_t samples,
                             std::uint64_t seed)
    : SampleGenerator(dim, samples) {
  require(dim <= kPrimes.size(),
          "HaltonSampler: supports at most 64 dimensions");
  bases_.assign(kPrimes.begin(),
                kPrimes.begin() + static_cast<std::ptrdiff_t>(dim));
  shifts_.resize(dim);
  stats::Rng rng(seed);
  for (double& s : shifts_) s = rng.uniform();
}

double HaltonSampler::radicalInverse(std::uint64_t index,
                                     std::uint32_t base) {
  double result = 0.0;
  double digitWeight = 1.0 / base;
  while (index > 0) {
    result += static_cast<double>(index % base) * digitWeight;
    index /= base;
    digitWeight /= base;
  }
  return result;
}

std::vector<double> HaltonSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  std::vector<double> z(dimension());
  for (std::size_t d = 0; d < dimension(); ++d) {
    // Skip index 0 (the all-zeros point) and apply the rotation.
    double u = radicalInverse(sampleIndex + 1, bases_[d]) + shifts_[d];
    u -= std::floor(u);
    // Clamp away from {0,1} so the quantile stays finite.
    u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
    z[d] = stats::normalQuantile(u);
  }
  return z;
}

// --- randomized Sobol ----------------------------------------------------------

namespace {

constexpr std::size_t kSobolBits = 32;

/// Primitive polynomial over GF(2) for one Sobol dimension: degree `s`,
/// interior coefficients encoded in `a` (bit s-1-j holds the coefficient of
/// x^(s-j)), and the first `s` initial direction values m_k (0 = "choose a
/// deterministic random odd value" -- used for the degree-7 dimensions,
/// where only the polynomial, not the tuned initialization, is pinned
/// down; every admissible odd m_k < 2^(k+1) yields a valid digital net,
/// and the Cranley-Patterson rotation keeps the estimator unbiased).
struct SobolPoly {
  std::uint32_t s;
  std::uint32_t a;
  std::array<std::uint32_t, 7> m;
};

/// Dimensions 2..32 (dimension 1 is the van der Corput sequence).  The
/// polynomial list is the canonical primitive-polynomial ordering; the
/// degree <= 6 initializations are the standard Joe-Kuo values.
constexpr std::array<SobolPoly, 31> kSobolPolys = {{
    {1, 0, {1, 0, 0, 0, 0, 0, 0}},
    {2, 1, {1, 3, 0, 0, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0, 0, 0}},
    {3, 2, {1, 1, 1, 0, 0, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0, 0, 0}},
    {4, 4, {1, 3, 5, 13, 0, 0, 0}},
    {5, 2, {1, 1, 5, 5, 17, 0, 0}},
    {5, 4, {1, 1, 5, 5, 5, 0, 0}},
    {5, 7, {1, 1, 7, 11, 19, 0, 0}},
    {5, 11, {1, 1, 5, 1, 1, 0, 0}},
    {5, 13, {1, 1, 1, 3, 11, 0, 0}},
    {5, 14, {1, 3, 5, 5, 31, 0, 0}},
    {6, 1, {1, 3, 3, 9, 7, 49, 0}},
    {6, 13, {1, 1, 1, 15, 21, 21, 0}},
    {6, 16, {1, 3, 1, 13, 27, 49, 0}},
    {6, 19, {1, 1, 1, 15, 7, 5, 0}},
    {6, 22, {1, 3, 1, 15, 13, 25, 0}},
    {6, 25, {1, 1, 5, 5, 19, 61, 0}},
    {7, 1, {0, 0, 0, 0, 0, 0, 0}},
    {7, 4, {0, 0, 0, 0, 0, 0, 0}},
    {7, 7, {0, 0, 0, 0, 0, 0, 0}},
    {7, 8, {0, 0, 0, 0, 0, 0, 0}},
    {7, 14, {0, 0, 0, 0, 0, 0, 0}},
    {7, 19, {0, 0, 0, 0, 0, 0, 0}},
    {7, 21, {0, 0, 0, 0, 0, 0, 0}},
    {7, 28, {0, 0, 0, 0, 0, 0, 0}},
    {7, 31, {0, 0, 0, 0, 0, 0, 0}},
    {7, 32, {0, 0, 0, 0, 0, 0, 0}},
    {7, 37, {0, 0, 0, 0, 0, 0, 0}},
    {7, 41, {0, 0, 0, 0, 0, 0, 0}},
    {7, 42, {0, 0, 0, 0, 0, 0, 0}},
}};

}  // namespace

SobolSampler::SobolSampler(std::size_t dim, std::size_t samples,
                           std::uint64_t seed)
    : SampleGenerator(dim, samples) {
  require(dim <= kSobolPolys.size() + 1,
          "SobolSampler: supports at most 32 dimensions");
  directions_.assign(dim * kSobolBits, 0);
  // Dimension 1: van der Corput, v_k = 2^(31-k).
  for (std::size_t k = 0; k < kSobolBits; ++k)
    directions_[k] = 1u << (31 - k);
  // The degree-7 initial values are drawn from a FIXED internal stream
  // (independent of `seed`): every SobolSampler shares one point set, and
  // the caller's seed only randomizes the rotation below.
  stats::Rng init(0x50B01u);
  for (std::size_t d = 1; d < dim; ++d) {
    const SobolPoly& poly = kSobolPolys[d - 1];
    std::array<std::uint32_t, kSobolBits> m{};
    for (std::uint32_t k = 0; k < poly.s; ++k) {
      std::uint32_t mk = poly.m[k];
      if (mk == 0)
        mk = 2u * static_cast<std::uint32_t>(init.below(1u << k)) + 1u;
      // Admissibility: m_k odd and below 2^(k+1) (leading-bit property).
      require((mk & 1u) == 1u && mk < (1u << (k + 1)),
              "SobolSampler: inadmissible direction initialization");
      m[k] = mk;
    }
    for (std::uint32_t k = poly.s; k < kSobolBits; ++k) {
      std::uint32_t v = m[k - poly.s] ^ (m[k - poly.s] << poly.s);
      for (std::uint32_t j = 1; j < poly.s; ++j)
        if ((poly.a >> (poly.s - 1 - j)) & 1u) v ^= m[k - j] << j;
      m[k] = v;
    }
    for (std::size_t k = 0; k < kSobolBits; ++k)
      directions_[d * kSobolBits + k] = m[k] << (31 - k);
  }
  shifts_.resize(dim);
  stats::Rng rng(seed);
  for (double& s : shifts_) s = rng.uniform();
}

double SobolSampler::coordinate(std::size_t sampleIndex,
                                std::size_t dimension) const {
  // Gray-code form of the XOR construction: point n is the XOR of the
  // direction numbers selected by the set bits of gray(n), which gives
  // random access (no sequential state) at the same cost.
  const std::uint64_t gray = sampleIndex ^ (sampleIndex >> 1);
  std::uint32_t x = 0;
  const std::uint32_t* v = directions_.data() + dimension * kSobolBits;
  for (std::size_t k = 0; k < kSobolBits && (gray >> k) != 0; ++k)
    if ((gray >> k) & 1u) x ^= v[k];
  return static_cast<double>(x) * 0x1p-32;
}

std::vector<double> SobolSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  std::vector<double> z(dimension());
  for (std::size_t d = 0; d < dimension(); ++d) {
    double u = coordinate(sampleIndex, d) + shifts_[d];
    u -= std::floor(u);
    u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
    z[d] = stats::normalQuantile(u);
  }
  return z;
}

// --- sampling plans ------------------------------------------------------------

const char* toString(SamplingPlan::Scheme scheme) noexcept {
  switch (scheme) {
    case SamplingPlan::Scheme::providerRng: return "rng";
    case SamplingPlan::Scheme::iid: return "iid";
    case SamplingPlan::Scheme::lhs: return "lhs";
    case SamplingPlan::Scheme::halton: return "halton";
    case SamplingPlan::Scheme::sobol: return "sobol";
  }
  return "rng";
}

SamplingPlan::Scheme parseScheme(const std::string& name) {
  if (name == "rng" || name == "providerRng")
    return SamplingPlan::Scheme::providerRng;
  if (name == "iid") return SamplingPlan::Scheme::iid;
  if (name == "lhs") return SamplingPlan::Scheme::lhs;
  if (name == "halton") return SamplingPlan::Scheme::halton;
  if (name == "sobol") return SamplingPlan::Scheme::sobol;
  throw InvalidArgumentError("SamplingPlan: unknown scheme '" + name +
                             "' (expected rng|iid|lhs|halton|sobol)");
}

std::unique_ptr<SampleGenerator> makeSampleGenerator(
    const SamplingPlan& plan, std::size_t samples,
    std::uint64_t fallbackSeed) {
  if (plan.scheme == SamplingPlan::Scheme::providerRng) return nullptr;
  require(plan.dimension > 0,
          "SamplingPlan: generator schemes need an explicit dimension");
  const std::uint64_t seed = plan.seed != 0 ? plan.seed : fallbackSeed;
  switch (plan.scheme) {
    case SamplingPlan::Scheme::iid:
      return std::make_unique<IidSampler>(plan.dimension, samples, seed);
    case SamplingPlan::Scheme::lhs:
      return std::make_unique<LatinHypercubeSampler>(plan.dimension, samples,
                                                     seed);
    case SamplingPlan::Scheme::halton:
      return std::make_unique<HaltonSampler>(plan.dimension, samples, seed);
    case SamplingPlan::Scheme::sobol:
      return std::make_unique<SobolSampler>(plan.dimension, samples, seed);
    case SamplingPlan::Scheme::providerRng: break;
  }
  return nullptr;
}

}  // namespace vsstat::mc
