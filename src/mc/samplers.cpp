#include "mc/samplers.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::mc {

SampleGenerator::SampleGenerator(std::size_t dim, std::size_t samples)
    : dim_(dim), samples_(samples) {
  require(dim_ > 0, "SampleGenerator: dimension must be positive");
  require(samples_ > 0, "SampleGenerator: sample count must be positive");
}

void SampleGenerator::checkIndex(std::size_t sampleIndex) const {
  require(sampleIndex < samples_,
          "SampleGenerator: sample index out of range");
}

// --- iid -----------------------------------------------------------------------

IidSampler::IidSampler(std::size_t dim, std::size_t samples,
                       std::uint64_t seed)
    : SampleGenerator(dim, samples), root_(seed) {}

std::vector<double> IidSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  stats::Rng rng = root_.fork(sampleIndex);
  std::vector<double> z(dimension());
  for (double& v : z) v = rng.normal();
  return z;
}

// --- Latin hypercube ---------------------------------------------------------

LatinHypercubeSampler::LatinHypercubeSampler(std::size_t dim,
                                             std::size_t samples,
                                             std::uint64_t seed)
    : SampleGenerator(dim, samples), root_(seed) {
  permutations_.resize(dim);
  stats::Rng rng(seed);
  for (std::size_t d = 0; d < dim; ++d) {
    auto& perm = permutations_[d];
    perm.resize(samples);
    for (std::size_t i = 0; i < samples; ++i)
      perm[i] = static_cast<std::uint32_t>(i);
    // Fisher-Yates with the library RNG.
    for (std::size_t i = samples; i-- > 1;) {
      const std::size_t j = static_cast<std::size_t>(rng.below(i + 1));
      std::swap(perm[i], perm[j]);
    }
  }
}

std::vector<double> LatinHypercubeSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  // Per-sample jitter stream, independent of the permutation stream.
  stats::Rng jitter = root_.fork(0x10C5 + sampleIndex);
  const double n = static_cast<double>(samples());
  std::vector<double> z(dimension());
  for (std::size_t d = 0; d < dimension(); ++d) {
    const double stratum = permutations_[d][sampleIndex];
    const double u = (stratum + jitter.uniform()) / n;
    z[d] = stats::normalQuantile(u);
  }
  return z;
}

// --- randomized Halton ---------------------------------------------------------

namespace {

constexpr std::array<std::uint32_t, 64> kPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,
    43,  47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101,
    103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167,
    173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229, 233, 239,
    241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311};

}  // namespace

HaltonSampler::HaltonSampler(std::size_t dim, std::size_t samples,
                             std::uint64_t seed)
    : SampleGenerator(dim, samples) {
  require(dim <= kPrimes.size(),
          "HaltonSampler: supports at most 64 dimensions");
  bases_.assign(kPrimes.begin(),
                kPrimes.begin() + static_cast<std::ptrdiff_t>(dim));
  shifts_.resize(dim);
  stats::Rng rng(seed);
  for (double& s : shifts_) s = rng.uniform();
}

double HaltonSampler::radicalInverse(std::uint64_t index,
                                     std::uint32_t base) {
  double result = 0.0;
  double digitWeight = 1.0 / base;
  while (index > 0) {
    result += static_cast<double>(index % base) * digitWeight;
    index /= base;
    digitWeight /= base;
  }
  return result;
}

std::vector<double> HaltonSampler::standardNormals(
    std::size_t sampleIndex) const {
  checkIndex(sampleIndex);
  std::vector<double> z(dimension());
  for (std::size_t d = 0; d < dimension(); ++d) {
    // Skip index 0 (the all-zeros point) and apply the rotation.
    double u = radicalInverse(sampleIndex + 1, bases_[d]) + shifts_[d];
    u -= std::floor(u);
    // Clamp away from {0,1} so the quantile stays finite.
    u = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
    z[d] = stats::normalQuantile(u);
  }
  return z;
}

}  // namespace vsstat::mc
