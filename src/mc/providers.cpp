#include "mc/providers.hpp"

#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "spice/elements.hpp"

namespace vsstat::mc {

VsStatisticalProvider::VsStatisticalProvider(models::VsParams nmos,
                                             models::VsParams pmos,
                                             models::PelgromAlphas nmosAlphas,
                                             models::PelgromAlphas pmosAlphas,
                                             stats::Rng rng)
    : nmos_(nmos), pmos_(pmos), nmosAlphas_(nmosAlphas),
      pmosAlphas_(pmosAlphas), rng_(rng) {}

models::VariationDelta VsStatisticalProvider::draw(
    models::DeviceType type, const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::PelgromAlphas& alphas = isN ? nmosAlphas_ : pmosAlphas_;
  const models::ParameterSigmas sigmas = models::sigmasFor(alphas, nominal);
  return models::sampleDelta(sigmas, rng_);
}

circuits::DeviceInstance VsStatisticalProvider::make(
    models::DeviceType type, const std::string& /*instanceName*/,
    const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::VsParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  circuits::DeviceInstance inst;
  inst.model = std::make_unique<models::VsModel>(models::applyToVs(card, delta));
  inst.geometry = models::applyGeometry(nominal, delta);
  return inst;
}

void VsStatisticalProvider::resample(models::DeviceType type,
                                     const std::string& /*instanceName*/,
                                     const models::DeviceGeometry& nominal,
                                     spice::MosfetElement& element) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::VsParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  // Stack card + in-place parameter copy: the per-sample rebind pass of a
  // campaign session performs no heap allocation here.
  const models::VsModel varied(models::applyToVs(card, delta));
  element.rebind(varied, models::applyGeometry(nominal, delta));
}

VsFixedZProvider::VsFixedZProvider(models::VsParams nmos,
                                   models::VsParams pmos,
                                   models::PelgromAlphas nmosAlphas,
                                   models::PelgromAlphas pmosAlphas)
    : nmos_(nmos), pmos_(pmos), nmosAlphas_(nmosAlphas),
      pmosAlphas_(pmosAlphas) {}

models::VariationDelta VsFixedZProvider::draw(
    models::DeviceType type, const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::PelgromAlphas& alphas = isN ? nmosAlphas_ : pmosAlphas_;
  const models::ParameterSigmas sigmas = models::sigmasFor(alphas, nominal);
  // Same parameter order as models::sampleDelta, so a z-vector of iid
  // normals reproduces the RNG provider's distribution exactly.
  models::VariationDelta d;
  d.dVt0 = sigmas.sVt0 * nextZ();
  d.dLeff = sigmas.sLeff * nextZ();
  d.dWeff = sigmas.sWeff * nextZ();
  d.dMu = sigmas.sMu * nextZ();
  d.dCinv = sigmas.sCinv * nextZ();
  return d;
}

circuits::DeviceInstance VsFixedZProvider::make(
    models::DeviceType type, const std::string& /*instanceName*/,
    const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::VsParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  circuits::DeviceInstance inst;
  inst.model =
      std::make_unique<models::VsModel>(models::applyToVs(card, delta));
  inst.geometry = models::applyGeometry(nominal, delta);
  return inst;
}

void VsFixedZProvider::resample(models::DeviceType type,
                                const std::string& /*instanceName*/,
                                const models::DeviceGeometry& nominal,
                                spice::MosfetElement& element) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::VsParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  const models::VsModel varied(models::applyToVs(card, delta));
  element.rebind(varied, models::applyGeometry(nominal, delta));
}

BsimStatisticalProvider::BsimStatisticalProvider(
    models::BsimParams nmos, models::BsimParams pmos,
    models::BsimMismatch nmosMismatch, models::BsimMismatch pmosMismatch,
    stats::Rng rng)
    : nmos_(nmos), pmos_(pmos), nmosMismatch_(nmosMismatch),
      pmosMismatch_(pmosMismatch), rng_(rng) {}

models::VariationDelta BsimStatisticalProvider::draw(
    models::DeviceType type, const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::PelgromAlphas alphas =
      models::toPelgromAlphas(isN ? nmosMismatch_ : pmosMismatch_);
  const models::ParameterSigmas sigmas = models::sigmasFor(alphas, nominal);
  return models::sampleDelta(sigmas, rng_);
}

circuits::DeviceInstance BsimStatisticalProvider::make(
    models::DeviceType type, const std::string& /*instanceName*/,
    const models::DeviceGeometry& nominal) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::BsimParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  circuits::DeviceInstance inst;
  inst.model =
      std::make_unique<models::BsimLite>(models::applyToBsim(card, delta));
  inst.geometry = models::applyGeometry(nominal, delta);
  return inst;
}

void BsimStatisticalProvider::resample(models::DeviceType type,
                                       const std::string& /*instanceName*/,
                                       const models::DeviceGeometry& nominal,
                                       spice::MosfetElement& element) {
  const bool isN = type == models::DeviceType::Nmos;
  const models::BsimParams& card = isN ? nmos_ : pmos_;
  const models::VariationDelta delta = draw(type, nominal);

  const models::BsimLite varied(models::applyToBsim(card, delta));
  element.rebind(varied, models::applyGeometry(nominal, delta));
}

}  // namespace vsstat::mc
