// Generic Monte Carlo campaign runner.
//
// A campaign evaluates a user function once per sample; each sample gets a
// decorrelated child RNG derived from (campaign seed, sample index), so
// results are bit-identical regardless of thread count.  Samples that fail
// (non-convergent circuits under extreme mismatch) are dropped and counted
// PER FAILURE CLASS: only exceptions deriving from vsstat::SampleFailure
// are treated as dropped corners -- anything else is a programming error
// and propagates out of runCampaign on the calling thread.
#ifndef VSSTAT_MC_RUNNER_HPP
#define VSSTAT_MC_RUNNER_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::mc {

struct McOptions {
  int samples = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 == hardware concurrency
};

struct McResult {
  /// metrics[m][k]: metric m of the k-th *successful* sample.
  ///
  /// Failure-drop contract: a sample whose function throws a SampleFailure
  /// (or underfills its output) is dropped from EVERY metric row and
  /// counted once in `failures` -- rows are filled in lockstep, so all rows
  /// always share one length, and row index k refers to the same surviving
  /// sample in every metric.  `sampleCount() + failures == McOptions::
  /// samples` for a result produced by runCampaign.
  std::vector<std::vector<double>> metrics;
  int failures = 0;

  /// Dropped samples per FailureClass, indexed by static_cast<int>(class).
  /// Sums to `failures`.  Yield estimators consume this instead of
  /// silently renormalizing over survivors (yield::yieldOfCampaign).
  std::array<int, kFailureClassCount> failuresByClass{};
  [[nodiscard]] int failuresOf(FailureClass c) const noexcept {
    return failuresByClass[static_cast<std::size_t>(c)];
  }

  /// Successful samples that needed at least one rescue-ladder retry
  /// (sim::runCampaign rescue path); 0 for plain sample functions.
  int rescued = 0;

  /// Diagnostics of the LOWEST-INDEXED failed sample -- deterministic by
  /// construction (reduction runs in index order, never schedule order).
  struct FirstFailure {
    bool valid = false;
    std::size_t sampleIndex = 0;
    FailureClass failureClass = FailureClass::unclassified;
    std::string message;
  };
  FirstFailure firstFailure;

  /// Number of successful samples (the shared row length).  Throws
  /// InvalidArgumentError if the rows have been tampered into raggedness.
  [[nodiscard]] std::size_t sampleCount() const;
};

/// Out-parameter a sample function may fill to report how its evaluation
/// went (beyond success/failure).  Campaign-level wrappers (the rescue
/// ladder) use it to flag rescued samples in the result taxonomy.
struct SampleContext {
  int rescueAttempts = 0;  ///< rescue-ladder retries consumed (0 = clean)
};

/// Sample function: fills `out` (size metricCount) for the given sample.
using SampleFn =
    std::function<void(std::size_t index, stats::Rng& rng, std::vector<double>& out)>;

/// Extended sample function: also reports per-sample context.
using SampleFnEx = std::function<void(
    std::size_t index, stats::Rng& rng, std::vector<double>& out,
    SampleContext& ctx)>;

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFn& fn);

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFnEx& fn);

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_RUNNER_HPP
