// Generic Monte Carlo campaign runner.
//
// A campaign evaluates a user function once per sample; each sample gets a
// decorrelated child RNG derived from (campaign seed, sample index), so
// results are bit-identical regardless of thread count.  Samples that fail
// (non-convergent circuits under extreme mismatch) are dropped and counted
// PER FAILURE CLASS: only exceptions deriving from vsstat::SampleFailure
// are treated as dropped corners -- anything else is a programming error
// and propagates out of runCampaign on the calling thread.
#ifndef VSSTAT_MC_RUNNER_HPP
#define VSSTAT_MC_RUNNER_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::mc {

struct McOptions {
  int samples = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 == hardware concurrency
  /// When > 0, samples are dispatched to workers as contiguous fixed-size
  /// index blocks, each processed serially in index order on one worker
  /// (the statistical-tier warm-chain unit: sample k seeds from sample
  /// k-1 within a block, and blocks start cold).  Because the block
  /// geometry depends only on this value -- never on the thread count or
  /// the schedule -- blocked campaigns stay bit-identical across 1/2/4/...
  /// workers, exactly like the default per-sample dispatch (0).
  int sampleBlock = 0;
};

struct McResult {
  /// metrics[m][k]: metric m of the k-th *successful* sample.
  ///
  /// Failure-drop contract: a sample whose function throws a SampleFailure
  /// (or underfills its output) is dropped from EVERY metric row and
  /// counted once in `failures` -- rows are filled in lockstep, so all rows
  /// always share one length, and row index k refers to the same surviving
  /// sample in every metric.  `sampleCount() + failures == McOptions::
  /// samples` for a result produced by runCampaign.
  std::vector<std::vector<double>> metrics;
  int failures = 0;

  /// Dropped samples per FailureClass, indexed by static_cast<int>(class).
  /// Sums to `failures`.  Yield estimators consume this instead of
  /// silently renormalizing over survivors (yield::yieldOfCampaign).
  std::array<int, kFailureClassCount> failuresByClass{};
  [[nodiscard]] int failuresOf(FailureClass c) const noexcept {
    return failuresByClass[static_cast<std::size_t>(c)];
  }

  /// Successful samples that needed at least one rescue-ladder retry
  /// (sim::runCampaign rescue path); 0 for plain sample functions.
  int rescued = 0;

  /// Newton-iteration telemetry summed over SUCCESSFUL samples (filled by
  /// sample functions that report it through SampleContext -- the circuit
  /// campaign's rescue wrapper does; plain functions leave it 0).  Makes
  /// statistical-tier iteration savings observable: mean iters/sample and
  /// the fraction of warm-start opportunities that actually seeded.
  std::uint64_t newtonIterations = 0;
  std::uint64_t warmStartHits = 0;
  std::uint64_t warmStartOpportunities = 0;
  [[nodiscard]] double meanIterationsPerSample() const {
    const std::size_t n = sampleCount();
    return n == 0 ? 0.0
                  : static_cast<double>(newtonIterations) /
                        static_cast<double>(n);
  }
  [[nodiscard]] double warmStartHitRate() const noexcept {
    return warmStartOpportunities == 0
               ? 0.0
               : static_cast<double>(warmStartHits) /
                     static_cast<double>(warmStartOpportunities);
  }

  /// Diagnostics of the LOWEST-INDEXED failed sample -- deterministic by
  /// construction (reduction runs in index order, never schedule order).
  struct FirstFailure {
    bool valid = false;
    std::size_t sampleIndex = 0;
    FailureClass failureClass = FailureClass::unclassified;
    std::string message;
  };
  FirstFailure firstFailure;

  /// Number of successful samples (the shared row length).  Throws
  /// InvalidArgumentError if the rows have been tampered into raggedness.
  [[nodiscard]] std::size_t sampleCount() const;
};

/// Out-parameter a sample function may fill to report how its evaluation
/// went (beyond success/failure).  Campaign-level wrappers (the rescue
/// ladder) use it to flag rescued samples in the result taxonomy.
struct SampleContext {
  int rescueAttempts = 0;  ///< rescue-ladder retries consumed (0 = clean)
  // Per-sample Newton telemetry (sim::runSampleWithRescue fills these by
  // diffing SimSession::iterationTelemetry around the sample; reduced into
  // the McResult aggregates in index order).
  std::uint64_t newtonIterations = 0;
  std::uint64_t warmStartHits = 0;
  std::uint64_t warmStartOpportunities = 0;
};

/// Sample function: fills `out` (size metricCount) for the given sample.
using SampleFn =
    std::function<void(std::size_t index, stats::Rng& rng, std::vector<double>& out)>;

/// Extended sample function: also reports per-sample context.
using SampleFnEx = std::function<void(
    std::size_t index, stats::Rng& rng, std::vector<double>& out,
    SampleContext& ctx)>;

/// Block-scoped resource hook for blocked campaigns (McOptions::
/// sampleBlock > 0): invoked on the executing worker before a block's
/// first sample; the returned owner lives until the block's last sample
/// finished.  The circuit campaign uses it to hold ONE session lease
/// across the whole warm chain.  May be null.
using BlockResourceFn =
    std::function<std::shared_ptr<void>(std::size_t blockIndex)>;

/// Read-only view of one completed chunk of a chunked campaign: the
/// per-sample storage for sample indices [first, end), in index order.
/// Pointers are borrowed from the runner's flat buffers and are valid only
/// for the duration of the callback.
struct McChunkView {
  std::size_t first = 0;  ///< chunk's first sample index
  std::size_t end = 0;    ///< one past the chunk's last sample index
  std::size_t total = 0;  ///< campaign sample budget
  std::size_t metricCount = 0;
  /// Sample-major metric rows: metrics[(i - first) * metricCount + m] is
  /// metric m of sample i -- meaningful only where ok[i - first] != 0.
  const double* metrics = nullptr;
  const char* ok = nullptr;
  /// Failure class per sample (-1 = none recorded); see FailureClass.
  const signed char* failureClass = nullptr;
  const int* rescues = nullptr;  ///< rescue-ladder retries per sample
};

/// Invoked on the CALLING thread after each chunk's workers drain, in chunk
/// order.  Streaming estimators (serve/stream.hpp) fold each view into
/// running statistics so long campaigns report progress incrementally.
using ChunkFn = std::function<void(const McChunkView&)>;

/// Chunked submission: samples are dispatched to the persistent thread pool
/// in contiguous index chunks of ~`chunkSamples` (rounded up to a whole
/// number of McOptions::sampleBlock blocks so statistical-tier warm chains
/// never straddle a chunk), with `onChunk` invoked between chunks.
///
/// Because util::ThreadPool runs one index sweep at a time, a monolithic
/// campaign holds the pool until its last sample; chunking bounds each
/// hold to one chunk, so concurrent campaigns (the campaign server's
/// simultaneous requests) interleave at chunk granularity instead of
/// serializing end-to-end.  Results are bit-identical to the monolithic
/// path: chunk geometry affects scheduling only, never RNG streams, warm
/// chains, or reduction order.  chunkSamples <= 0 means one chunk.
[[nodiscard]] McResult runCampaignChunked(const McOptions& options,
                                          std::size_t metricCount,
                                          const SampleFnEx& fn,
                                          const BlockResourceFn& blockResource,
                                          int chunkSamples,
                                          const ChunkFn& onChunk);

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFn& fn);

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFnEx& fn);

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFnEx& fn,
                                   const BlockResourceFn& blockResource);

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_RUNNER_HPP
