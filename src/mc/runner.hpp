// Generic Monte Carlo campaign runner.
//
// A campaign evaluates a user function once per sample; each sample gets a
// decorrelated child RNG derived from (campaign seed, sample index), so
// results are bit-identical regardless of thread count.  Samples that throw
// (non-convergent circuits under extreme mismatch) are dropped and counted,
// mirroring how a production MC flow flags failing corners.
#ifndef VSSTAT_MC_RUNNER_HPP
#define VSSTAT_MC_RUNNER_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace vsstat::mc {

struct McOptions {
  int samples = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 0;  ///< 0 == hardware concurrency
};

struct McResult {
  /// metrics[m][k]: metric m of the k-th *successful* sample.
  ///
  /// Failure-drop contract: a sample whose function throws (or underfills
  /// its output) is dropped from EVERY metric row and counted once in
  /// `failures` -- rows are filled in lockstep, so all rows always share
  /// one length, and row index k refers to the same surviving sample in
  /// every metric.  `sampleCount() + failures == McOptions::samples` for a
  /// result produced by runCampaign.
  std::vector<std::vector<double>> metrics;
  int failures = 0;

  /// Number of successful samples (the shared row length).  Throws
  /// InvalidArgumentError if the rows have been tampered into raggedness.
  [[nodiscard]] std::size_t sampleCount() const;
};

/// Sample function: fills `out` (size metricCount) for the given sample.
using SampleFn =
    std::function<void(std::size_t index, stats::Rng& rng, std::vector<double>& out)>;

[[nodiscard]] McResult runCampaign(const McOptions& options,
                                   std::size_t metricCount,
                                   const SampleFn& fn);

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_RUNNER_HPP
