#include "mc/runner.hpp"

#include <algorithm>
#include <exception>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vsstat::mc {

std::size_t McResult::sampleCount() const {
  const std::size_t n = metrics.empty() ? 0 : metrics.front().size();
  for (const std::vector<double>& row : metrics)
    require(row.size() == n,
            "McResult: ragged metric rows (every row must hold one entry "
            "per successful sample)");
  return n;
}

McResult runCampaign(const McOptions& options, std::size_t metricCount,
                     const SampleFn& fn) {
  require(options.samples > 0, "runCampaign: samples must be > 0");
  require(metricCount > 0, "runCampaign: metricCount must be > 0");

  const auto n = static_cast<std::size_t>(options.samples);
  // Flat sample-major storage: one allocation for the whole campaign
  // instead of one vector per sample.
  std::vector<double> flat(n * metricCount, 0.0);
  std::vector<char> ok(n, 0);
  const stats::Rng campaign(options.seed);

  util::parallelFor(
      n,
      [&](std::size_t i) {
        stats::Rng rng = campaign.fork(i);
        // Per-worker scratch, reused across every sample this thread runs
        // (and across campaigns -- pool workers are persistent).  assign()
        // keeps the capacity, so steady-state samples allocate nothing
        // here.  One scratch per nesting depth keeps a sample fn that runs
        // an inner campaign from clobbering its caller's buffer.
        thread_local std::vector<std::vector<double>> scratchStack;
        thread_local std::size_t depth = 0;
        if (scratchStack.size() <= depth) scratchStack.resize(depth + 1);
        std::vector<double>& out = scratchStack[depth];
        out.assign(metricCount, 0.0);
        ++depth;
        struct DepthGuard {
          std::size_t& d;
          ~DepthGuard() { --d; }
        } guard{depth};
        try {
          fn(i, rng, out);
          if (out.size() < metricCount) return;  // malformed sample: dropped
          std::copy_n(out.begin(), metricCount, flat.begin() + i * metricCount);
          ok[i] = 1;
        } catch (const std::exception&) {
          ok[i] = 0;  // dropped sample (non-convergence / functional failure)
        }
      },
      options.threads);

  McResult result;
  result.metrics.assign(metricCount, {});
  for (auto& m : result.metrics) m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!ok[i]) {
      ++result.failures;
      continue;
    }
    for (std::size_t m = 0; m < metricCount; ++m)
      result.metrics[m].push_back(flat[i * metricCount + m]);
  }
  return result;
}

}  // namespace vsstat::mc
