#include "mc/runner.hpp"

#include <exception>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vsstat::mc {

McResult runCampaign(const McOptions& options, std::size_t metricCount,
                     const SampleFn& fn) {
  require(options.samples > 0, "runCampaign: samples must be > 0");
  require(metricCount > 0, "runCampaign: metricCount must be > 0");

  const auto n = static_cast<std::size_t>(options.samples);
  std::vector<std::vector<double>> slots(n);
  std::vector<char> ok(n, 0);
  const stats::Rng campaign(options.seed);

  util::parallelFor(
      n,
      [&](std::size_t i) {
        stats::Rng rng = campaign.fork(i);
        std::vector<double> out(metricCount, 0.0);
        try {
          fn(i, rng, out);
          slots[i] = std::move(out);
          ok[i] = 1;
        } catch (const std::exception&) {
          ok[i] = 0;  // dropped sample (non-convergence / functional failure)
        }
      },
      options.threads);

  McResult result;
  result.metrics.assign(metricCount, {});
  for (auto& m : result.metrics) m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!ok[i]) {
      ++result.failures;
      continue;
    }
    for (std::size_t m = 0; m < metricCount; ++m)
      result.metrics[m].push_back(slots[i][m]);
  }
  return result;
}

}  // namespace vsstat::mc
