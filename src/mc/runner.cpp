#include "mc/runner.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace vsstat::mc {

std::size_t McResult::sampleCount() const {
  const std::size_t n = metrics.empty() ? 0 : metrics.front().size();
  for (const std::vector<double>& row : metrics)
    require(row.size() == n,
            "McResult: ragged metric rows (every row must hold one entry "
            "per successful sample)");
  return n;
}

McResult runCampaignChunked(const McOptions& options, std::size_t metricCount,
                            const SampleFnEx& fn,
                            const BlockResourceFn& blockResource,
                            int chunkSamples, const ChunkFn& onChunk) {
  require(options.samples > 0, "runCampaign: samples must be > 0");
  require(metricCount > 0, "runCampaign: metricCount must be > 0");

  const auto n = static_cast<std::size_t>(options.samples);
  // Flat sample-major storage: one allocation for the whole campaign
  // instead of one vector per sample.
  std::vector<double> flat(n * metricCount, 0.0);
  std::vector<char> ok(n, 0);
  // Per-sample failure class (-1 = no classified failure recorded) and
  // rescue count; the what() of each failure is kept so the index-ordered
  // reduction below can pick the first one deterministically.  All of it
  // is written by at most one worker per slot, then reduced single-threaded.
  std::vector<signed char> failClass(n, -1);
  std::vector<int> rescues(n, 0);
  std::vector<SampleContext> contexts(n);
  std::vector<std::string> failMessage(n);
  const stats::Rng campaign(options.seed);

  const auto runOne = [&](std::size_t i) {
    stats::Rng rng = campaign.fork(i);
    // Per-worker scratch, reused across every sample this thread runs
    // (and across campaigns -- pool workers are persistent).  assign()
    // keeps the capacity, so steady-state samples allocate nothing
    // here.  One scratch per nesting depth keeps a sample fn that runs
    // an inner campaign from clobbering its caller's buffer.
    thread_local std::vector<std::vector<double>> scratchStack;
    thread_local std::size_t depth = 0;
    if (scratchStack.size() <= depth) scratchStack.resize(depth + 1);
    std::vector<double>& out = scratchStack[depth];
    out.assign(metricCount, 0.0);
    ++depth;
    struct DepthGuard {
      std::size_t& d;
      ~DepthGuard() { --d; }
    } guard{depth};
    SampleContext ctx;
    try {
      fn(i, rng, out, ctx);
      if (out.size() < metricCount) return;  // malformed sample: dropped
      std::copy_n(out.begin(), metricCount, flat.begin() + i * metricCount);
      ok[i] = 1;
      rescues[i] = ctx.rescueAttempts;
      contexts[i] = ctx;
    } catch (const SampleFailure& e) {
      // A classified dropped corner (non-convergence, singular
      // Jacobian, NaN seam, undefined metric).  Anything not derived
      // from SampleFailure is a programming error, not an extreme
      // sample, and propagates out of the sweep (util::parallelFor
      // rethrows the first such exception on the calling thread).
      ok[i] = 0;
      failClass[i] = static_cast<signed char>(e.failureClass());
      failMessage[i] = e.what();
    }
  };

  // Chunk geometry: a chunk is a contiguous index range dispatched as one
  // thread-pool sweep.  Rounded up to a whole number of sampleBlock blocks
  // so a statistical-tier warm chain is never split across two sweeps --
  // which keeps chunked results bit-identical to the monolithic dispatch
  // (chunking changes WHEN samples run, never what any sample computes).
  std::size_t chunk = chunkSamples > 0 ? static_cast<std::size_t>(chunkSamples)
                                       : n;
  if (options.sampleBlock > 0) {
    const auto block = static_cast<std::size_t>(options.sampleBlock);
    chunk = (chunk + block - 1) / block * block;
  }

  for (std::size_t start = 0; start < n; start += chunk) {
    const std::size_t end = std::min(n, start + chunk);
    if (options.sampleBlock > 0) {
      // Blocked dispatch: work items are fixed-size contiguous index blocks
      // run serially in order.  Block geometry depends only on sampleBlock,
      // so results stay bit-identical across thread counts; the dynamic
      // claiming of whole blocks keeps workers load-balanced.  Block
      // indices are GLOBAL (start / block is exact: chunks are whole
      // blocks), so block resources see the same indices chunked or not.
      const auto block = static_cast<std::size_t>(options.sampleBlock);
      const std::size_t firstBlock = start / block;
      const std::size_t blocks = (end - start + block - 1) / block;
      util::parallelFor(
          blocks,
          [&](std::size_t bi) {
            const std::size_t b = firstBlock + bi;
            const std::shared_ptr<void> resource =
                blockResource ? blockResource(b) : nullptr;
            const std::size_t blockEnd = std::min(end, (b + 1) * block);
            for (std::size_t i = b * block; i < blockEnd; ++i) runOne(i);
          },
          options.threads);
    } else {
      util::parallelFor(
          end - start, [&](std::size_t k) { runOne(start + k); },
          options.threads);
    }
    if (onChunk) {
      McChunkView view;
      view.first = start;
      view.end = end;
      view.total = n;
      view.metricCount = metricCount;
      view.metrics = flat.data() + start * metricCount;
      view.ok = ok.data() + start;
      view.failureClass = failClass.data() + start;
      view.rescues = rescues.data() + start;
      onChunk(view);
    }
  }

  // Single-threaded reduction in sample-index order: metric rows, failure
  // taxonomy, and the first-failure diagnostic are all deterministic
  // regardless of which worker ran which sample.
  McResult result;
  result.metrics.assign(metricCount, {});
  for (auto& m : result.metrics) m.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!ok[i]) {
      ++result.failures;
      const FailureClass cls = failClass[i] < 0
                                   ? FailureClass::unclassified
                                   : static_cast<FailureClass>(failClass[i]);
      ++result.failuresByClass[static_cast<std::size_t>(cls)];
      if (!result.firstFailure.valid) {
        result.firstFailure.valid = true;
        result.firstFailure.sampleIndex = i;
        result.firstFailure.failureClass = cls;
        result.firstFailure.message = failMessage[i];
      }
      continue;
    }
    if (rescues[i] > 0) ++result.rescued;
    result.newtonIterations += contexts[i].newtonIterations;
    result.warmStartHits += contexts[i].warmStartHits;
    result.warmStartOpportunities += contexts[i].warmStartOpportunities;
    for (std::size_t m = 0; m < metricCount; ++m)
      result.metrics[m].push_back(flat[i * metricCount + m]);
  }
  return result;
}

McResult runCampaign(const McOptions& options, std::size_t metricCount,
                     const SampleFnEx& fn,
                     const BlockResourceFn& blockResource) {
  return runCampaignChunked(options, metricCount, fn, blockResource,
                            /*chunkSamples=*/0, ChunkFn{});
}

McResult runCampaign(const McOptions& options, std::size_t metricCount,
                     const SampleFnEx& fn) {
  return runCampaign(options, metricCount, fn, BlockResourceFn{});
}

McResult runCampaign(const McOptions& options, std::size_t metricCount,
                     const SampleFn& fn) {
  return runCampaign(options, metricCount,
                     SampleFnEx([&fn](std::size_t i, stats::Rng& rng,
                                      std::vector<double>& out,
                                      SampleContext&) { fn(i, rng, out); }));
}

}  // namespace vsstat::mc
