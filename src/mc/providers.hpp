// Statistical DeviceProviders: per-instance mismatch sampling for the two
// kits.  Both draw from *independent Gaussian* parameter distributions with
// Pelgrom geometry scaling; each transistor the circuit builder requests
// consumes one mismatch draw, so circuits built in a fixed order are
// reproducible for a given sample seed.
#ifndef VSSTAT_MC_PROVIDERS_HPP
#define VSSTAT_MC_PROVIDERS_HPP

#include "circuits/provider.hpp"
#include "models/bsim_params.hpp"
#include "models/process_variation.hpp"
#include "models/vs_params.hpp"
#include "stats/rng.hpp"

namespace vsstat::mc {

/// Statistical VS model provider (the paper's contribution under test).
class VsStatisticalProvider final : public circuits::DeviceProvider {
 public:
  VsStatisticalProvider(models::VsParams nmos, models::VsParams pmos,
                        models::PelgromAlphas nmosAlphas,
                        models::PelgromAlphas pmosAlphas, stats::Rng rng);

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

  /// Allocation-free rebind: draws the same deltas make() would and copies
  /// the varied card into the element's existing model object.
  void resample(models::DeviceType type, const std::string& instanceName,
                const models::DeviceGeometry& nominal,
                spice::MosfetElement& element) override;

  void reseed(const stats::Rng& rng) override { rng_ = rng; }

 private:
  [[nodiscard]] models::VariationDelta draw(
      models::DeviceType type, const models::DeviceGeometry& nominal);

  models::VsParams nmos_;
  models::VsParams pmos_;
  models::PelgromAlphas nmosAlphas_;
  models::PelgromAlphas pmosAlphas_;
  stats::Rng rng_;
};

/// VS-kit provider over an externally supplied standardized z-vector
/// (circuits::FixedZProvider): every transistor consumes FIVE coordinates
/// in the sampleDelta order (Vt0, Leff, Weff, Mu, Cinv), scaled by the
/// same Pelgrom sigmas VsStatisticalProvider uses.  This is the seam that
/// lets mc::SamplingPlan generators (LHS/Halton/Sobol) and the yield
/// importance sampler drive the standard campaign machinery.
class VsFixedZProvider final : public circuits::FixedZProvider {
 public:
  VsFixedZProvider(models::VsParams nmos, models::VsParams pmos,
                   models::PelgromAlphas nmosAlphas,
                   models::PelgromAlphas pmosAlphas);

  /// Coordinates consumed per transistor instance.
  static constexpr std::size_t kDimsPerDevice = 5;

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

  /// Allocation-free rebind (see VsStatisticalProvider::resample).
  void resample(models::DeviceType type, const std::string& instanceName,
                const models::DeviceGeometry& nominal,
                spice::MosfetElement& element) override;

 private:
  [[nodiscard]] models::VariationDelta draw(
      models::DeviceType type, const models::DeviceGeometry& nominal);

  models::VsParams nmos_;
  models::VsParams pmos_;
  models::PelgromAlphas nmosAlphas_;
  models::PelgromAlphas pmosAlphas_;
};

/// Statistical golden-kit provider (the paper's "golden" BSIM reference).
class BsimStatisticalProvider final : public circuits::DeviceProvider {
 public:
  BsimStatisticalProvider(models::BsimParams nmos, models::BsimParams pmos,
                          models::BsimMismatch nmosMismatch,
                          models::BsimMismatch pmosMismatch, stats::Rng rng);

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

  /// Allocation-free rebind (see VsStatisticalProvider::resample).
  void resample(models::DeviceType type, const std::string& instanceName,
                const models::DeviceGeometry& nominal,
                spice::MosfetElement& element) override;

  void reseed(const stats::Rng& rng) override { rng_ = rng; }

 private:
  [[nodiscard]] models::VariationDelta draw(
      models::DeviceType type, const models::DeviceGeometry& nominal);

  models::BsimParams nmos_;
  models::BsimParams pmos_;
  models::BsimMismatch nmosMismatch_;
  models::BsimMismatch pmosMismatch_;
  stats::Rng rng_;
};

}  // namespace vsstat::mc

#endif  // VSSTAT_MC_PROVIDERS_HPP
