// Deterministic solve-rescue ladder for campaign samples.
//
// When a sample's evaluation throws a SampleFailure, the campaign does not
// have to drop it outright: many failures are artifacts of the session's
// throughput configuration (a reused pivot order gone degenerate for this
// draw, a fast-numerics lane overflowing, a Newton clamp too generous for a
// stiff corner) rather than genuinely unsolvable circuits.  The rescue
// ladder retries the sample through an escalating sequence of rungs:
//
//   1. hardened Newton  -- 3x the iteration budget, 4x heavier damping
//      (the full gmin/source-stepping homotopy reruns on every rung; it is
//      built into every session solve);
//   2. fresh pivoting   -- only for reusePivot sessions: re-derive the
//      pivot order from this sample's own values;
//   3. reference numerics -- only for fast sessions: swap the vectorized
//      kernel chain out for the reference scalar path;
//   4. all of the above combined.
//
// Determinism contract: the ladder is indexed by SAMPLE, never by thread or
// schedule.  Every attempt rebinds from a copy of the sample's original RNG
// state (DeviceProvider draws replay exactly), the rung sequence depends
// only on the session's configuration, and every session-mode change is
// restored before the sample returns -- so campaign results stay
// bit-identical across thread counts and session assignments, with or
// without rescues.  Rescued samples report the rung that succeeded through
// mc::SampleContext::rescueAttempts; exhausted ladders rethrow the LAST
// failure (the most-escalated rung's classification).
#ifndef VSSTAT_SIM_RESCUE_HPP
#define VSSTAT_SIM_RESCUE_HPP

#include <algorithm>
#include <cstddef>
#include <exception>
#include <vector>

#include "mc/runner.hpp"
#include "sim/session.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::sim {

/// Campaign-level rescue configuration.
struct RescuePolicy {
  /// Master switch.  Off reproduces the pre-ladder behavior exactly: the
  /// first SampleFailure drops the sample (still classified).
  bool enabled = true;
};

namespace detail {

/// One rung of the ladder: which escalations it applies on top of the
/// session's baseline configuration.
struct RescueRung {
  bool harden = false;            ///< 3x iterations, 0.25x update clamp
  bool freshPivot = false;        ///< override reusePivot with fresh
  bool referenceNumerics = false;  ///< override fast with reference
};

/// Extra Newton effort of hardened rungs.  3x budget covers slow-creeping
/// stiff corners; a 0.25x clamp quarters the per-iteration voltage move
/// (heavier damping), which is the classic fix for overshooting Newton on
/// exponential device characteristics.
inline constexpr spice::SimSession::SolveEffort kHardenedEffort{3, 0.25};

/// Builds the ladder for a session configuration.  Depends ONLY on the
/// session's baseline modes (identical for every worker), never on the
/// failure or the schedule, so every worker uses the same ladder.
inline std::vector<RescueRung> buildLadder(models::NumericsMode numerics,
                                           linalg::SolverMode solver) {
  const bool fast = numerics == models::NumericsMode::fast;
  const bool reuse = solver == linalg::SolverMode::reusePivot;
  std::vector<RescueRung> rungs;
  rungs.push_back(RescueRung{true, false, false});
  if (reuse) rungs.push_back(RescueRung{false, true, false});
  if (fast) rungs.push_back(RescueRung{false, false, true});
  if (reuse || fast) rungs.push_back(RescueRung{true, reuse, fast});
  return rungs;
}

/// Restores the session's baseline modes, effort, and sample context on
/// scope exit -- including on the rethrow path -- so the next sample this
/// session serves starts from exactly the state every other session has.
class SessionModeGuard {
 public:
  explicit SessionModeGuard(spice::SimSession& session)
      : session_(session),
        numerics_(session.numericsMode()),
        solver_(session.solverMode()),
        tier_(session.toleranceTier()) {}
  ~SessionModeGuard() {
    session_.setSolveEffort(spice::SimSession::SolveEffort{});
    session_.setNumericsMode(numerics_);
    session_.setSolverMode(solver_);
    session_.setToleranceTier(tier_);
    session_.clearSampleContext();
  }
  SessionModeGuard(const SessionModeGuard&) = delete;
  SessionModeGuard& operator=(const SessionModeGuard&) = delete;

 private:
  spice::SimSession& session_;
  models::NumericsMode numerics_;
  linalg::SolverMode solver_;
  spice::ToleranceTier tier_;
};

}  // namespace detail

/// Evaluates one campaign sample with rescue: binds the sample, runs `fn`,
/// and on SampleFailure walks the ladder, replaying the sample's draws from
/// `rngStart` on every attempt.  On success `ctx.rescueAttempts` holds the
/// number of retries consumed (0 = clean first attempt); on exhaustion the
/// last rung's failure is rethrown for the campaign runner to classify.
template <class Fixture, class Fn>
void runSampleWithRescue(std::size_t index, CampaignSession<Fixture>& session,
                         const stats::Rng& rngStart, std::vector<double>& out,
                         mc::SampleContext& ctx, const Fn& fn,
                         const RescuePolicy& policy = {}) {
  spice::SimSession& solver = session.spice();
  const detail::SessionModeGuard restoreModes(solver);
  const models::NumericsMode baseNumerics = solver.numericsMode();
  const linalg::SolverMode baseSolver = solver.solverMode();
  // Per-sample iteration telemetry: diffed across every attempt the sample
  // consumed (failed rungs included -- that is the sample's true cost), and
  // aggregated into McResult by mc::runCampaign.
  const spice::SimSession::IterationTelemetry itersAtEntry =
      solver.iterationTelemetry();
  const auto captureTelemetry = [&]() {
    const spice::SimSession::IterationTelemetry& now =
        solver.iterationTelemetry();
    ctx.newtonIterations = now.newtonIterations - itersAtEntry.newtonIterations;
    ctx.warmStartHits = now.warmStartHits - itersAtEntry.warmStartHits;
    ctx.warmStartOpportunities =
        now.warmStartOpportunities - itersAtEntry.warmStartOpportunities;
  };

  solver.setSampleContext(index, /*attempt=*/0);
  std::exception_ptr lastFailure;
  try {
    stats::Rng rng = rngStart;
    session.bindSample(rng);
    fn(index, session, rng, out);
    captureTelemetry();
    return;  // clean sample: zero mode changes, zero extra work
  } catch (const SampleFailure&) {
    // Statistical-tier state is sample-scoped: a failure voids the warm
    // chain (the next sample on this session cold-starts, deterministically
    // -- the rule depends only on the sample index sequence), and every
    // retry below runs the perSample contract so the ladder's escalations
    // behave identically in either tier.
    solver.clearWarmStarts();
    if (!policy.enabled) throw;
    lastFailure = std::current_exception();
  }

  solver.setToleranceTier(spice::ToleranceTier::perSample);
  const std::vector<detail::RescueRung> ladder =
      detail::buildLadder(baseNumerics, baseSolver);
  for (std::size_t r = 0; r < ladder.size(); ++r) {
    const detail::RescueRung& rung = ladder[r];
    const int attempt = static_cast<int>(r) + 1;
    solver.setSolveEffort(rung.harden ? detail::kHardenedEffort
                                      : spice::SimSession::SolveEffort{});
    solver.setSolverMode(rung.freshPivot ? linalg::SolverMode::fresh
                                         : baseSolver);
    solver.setNumericsMode(
        rung.referenceNumerics ? models::NumericsMode::reference
                               : baseNumerics);
    solver.setSampleContext(index, attempt);
    std::fill(out.begin(), out.end(), 0.0);
    try {
      // Replay the sample from scratch: same RNG state, same provider
      // draws, same bind order -- only the solve configuration differs.
      stats::Rng rng = rngStart;
      session.bindSample(rng);
      fn(index, session, rng, out);
      ctx.rescueAttempts = attempt;
      captureTelemetry();
      return;
    } catch (const SampleFailure&) {
      lastFailure = std::current_exception();
    }
  }
  std::rethrow_exception(lastFailure);
}

}  // namespace vsstat::sim

#endif  // VSSTAT_SIM_RESCUE_HPP
