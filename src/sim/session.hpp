// Build-once / rebind-per-sample campaign sessions.
//
// The paper's statistical flows (MC delay/SNM distributions, BPV variance
// measurement, tail-yield estimation) solve the *same circuit topology*
// tens of thousands of times with only device cards changing.  Rebuilding
// the Circuit, re-instantiating every MosfetElement, and re-capturing the
// assembler's sparsity pattern per sample throws away everything that is
// sample-invariant.  A CampaignSession builds a benchmark fixture exactly
// once and re-evaluates it per sample by *rebinding* device cards in place:
//
//   * the fixture build runs through a circuits::RecordingProvider, which
//     captures the builder's fixed documented device order;
//   * per sample, bindSample() reseeds the provider with the sample's
//     decorrelated child RNG and replays that order through
//     DeviceProvider::resample() -> MosfetElement::rebind();
//   * analyses run through a persistent spice::SimSession, so the MNA
//     pattern, Newton workspace, and factorization buffers live for the
//     whole campaign.
//
// Determinism: resample() consumes exactly the draws make() would, and
// SimSession pins its solver numerics per solve, so a session campaign is
// bit-identical to the legacy rebuild-per-sample path -- and independent
// of which worker session evaluates which sample (SessionPool hands
// sessions out lease-style to the persistent util::ThreadPool workers).
//
// Session modes ride along unchanged: spice::SessionOptions carries the
// NumericsMode (reference/fast) and linalg::SolverMode (fresh/reusePivot)
// axes into every per-worker SimSession.  Both opt-in modes keep the
// scheduling-independence half of the contract -- reuse-pivot sessions
// prime their canonical pivot order from the as-built fixture, which
// identically-built workers share -- they only trade away bit-identity
// with the rebuild path (tolerance-tested instead; see
// tests/sim/test_reuse_pivot_campaign.cpp and test_fast_campaign.cpp).
#ifndef VSSTAT_SIM_SESSION_HPP
#define VSSTAT_SIM_SESSION_HPP

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuits/provider.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "spice/session.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::sim {

/// One worker's build-once fixture state.  `Fixture` is any of the
/// circuits:: benchmark structs (or a user struct) exposing a `circuit`
/// member; the builder instantiates its transistors through the provider
/// it is handed, exactly as in the rebuild-per-sample flow.
template <class Fixture>
class CampaignSession {
 public:
  using Builder = std::function<Fixture(circuits::DeviceProvider&)>;

  CampaignSession(const Builder& build,
                  std::unique_ptr<circuits::DeviceProvider> provider,
                  spice::SessionOptions spiceOptions = {})
      : provider_(std::move(provider)) {
    require(provider_ != nullptr, "CampaignSession: null provider");
    circuits::RecordingProvider recorder(*provider_);
    fixture_ = std::make_unique<Fixture>(build(recorder));
    session_ =
        std::make_unique<spice::SimSession>(fixture_->circuit, spiceOptions);
    // Resolve the recorded build order to the built circuit's elements:
    // builders name each MOSFET after the instanceName they requested.
    const std::vector<circuits::DeviceRecord>& records = recorder.records();
    plan_.reserve(records.size());
    for (const circuits::DeviceRecord& r : records)
      plan_.push_back(Binding{&fixture_->circuit.mosfet(r.instanceName), r});
  }

  /// Rebinds every recorded device for the next sample: reseeds the
  /// provider with the sample's decorrelated RNG, then replays the build's
  /// device order.  Draw-for-draw identical to rebuilding the fixture with
  /// a fresh provider seeded from `rng`.
  void bindSample(const stats::Rng& rng) {
    provider_->reseed(rng);
    rebind();
  }

  /// Replays the rebind pass without reseeding -- for providers whose
  /// state is set externally (e.g. the fixed-z indicators of yield
  /// importance sampling).  The sampled parameters land in the session's
  /// device-bank lanes immediately afterwards (syncDeviceBank): the bank's
  /// struct-of-arrays blocks are re-derived once per sample, here, instead
  /// of inside the first Newton assembly of the sample's solves.
  void rebind() {
    for (Binding& b : plan_)
      provider_->resample(b.record.type, b.record.instanceName,
                          b.record.nominal, *b.element);
    session_->syncDeviceBank();
    // Statistical tier: a rebind marks the start of a sample's analysis
    // sequence, so rewind the warm-slot cursor (inert under perSample).
    session_->beginSampleWarmStart();
  }

  /// Statistical-tier cold-start rule: invalidates every warm slot so the
  /// next sample starts its warm chain from scratch.  Blocked campaigns
  /// call this at block boundaries; inert under perSample.
  void coldStart() noexcept { session_->clearWarmStarts(); }

  [[nodiscard]] Fixture& fixture() noexcept { return *fixture_; }
  [[nodiscard]] spice::SimSession& spice() noexcept { return *session_; }
  [[nodiscard]] circuits::DeviceProvider& provider() noexcept {
    return *provider_;
  }
  /// Number of transistors the per-sample rebind pass touches.
  [[nodiscard]] std::size_t deviceCount() const noexcept {
    return plan_.size();
  }

 private:
  struct Binding {
    spice::MosfetElement* element;
    circuits::DeviceRecord record;
  };

  std::unique_ptr<circuits::DeviceProvider> provider_;
  std::unique_ptr<Fixture> fixture_;
  std::unique_ptr<spice::SimSession> session_;
  std::vector<Binding> plan_;
};

/// Lease-based pool of per-worker sessions for parallel campaigns.
/// Sessions are built lazily on first acquisition (the pool size converges
/// to the number of concurrently active workers, not the sample count) and
/// handed out under a short lock; fixture construction runs outside it.
/// Because session numerics are sample-independent (see CampaignSession),
/// campaign results do not depend on which session served which sample.
template <class Fixture>
class SessionPool {
 public:
  using Builder = typename CampaignSession<Fixture>::Builder;
  using ProviderFactory =
      std::function<std::unique_ptr<circuits::DeviceProvider>()>;

  SessionPool(Builder build, ProviderFactory providerFactory,
              spice::SessionOptions spiceOptions = {})
      : build_(std::move(build)),
        providerFactory_(std::move(providerFactory)),
        spiceOptions_(spiceOptions) {}

  /// RAII lease: returns the session to the free list on destruction.
  class Lease {
   public:
    Lease(SessionPool& pool, CampaignSession<Fixture>& session)
        : pool_(&pool), session_(&session) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->release(session_);
    }
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          session_(std::exchange(other.session_, nullptr)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    [[nodiscard]] CampaignSession<Fixture>& operator*() noexcept {
      return *session_;
    }
    [[nodiscard]] CampaignSession<Fixture>* operator->() noexcept {
      return session_;
    }

   private:
    SessionPool* pool_;
    CampaignSession<Fixture>* session_;
  };

  [[nodiscard]] Lease acquire() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!free_.empty()) {
        CampaignSession<Fixture>* s = free_.back();
        free_.pop_back();
        return Lease(*this, *s);
      }
    }
    // First acquisition on this worker: build outside the lock (fixture
    // construction is the expensive part the pool exists to amortize).
    auto session = std::make_unique<CampaignSession<Fixture>>(
        build_, providerFactory_(), spiceOptions_);
    CampaignSession<Fixture>* raw = session.get();
    const std::lock_guard<std::mutex> lock(mutex_);
    sessions_.push_back(std::move(session));
    return Lease(*this, *raw);
  }

  /// Sessions built so far (telemetry: bounded by peak worker concurrency).
  [[nodiscard]] std::size_t sessionCount() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
  }

 private:
  void release(CampaignSession<Fixture>* session) {
    const std::lock_guard<std::mutex> lock(mutex_);
    free_.push_back(session);
  }

  Builder build_;
  ProviderFactory providerFactory_;
  spice::SessionOptions spiceOptions_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<CampaignSession<Fixture>>> sessions_;
  std::vector<CampaignSession<Fixture>*> free_;
};

/// Multi-tenant session-pool cache: keyed pools with LRU eviction.
///
/// A SessionPool amortizes fixture construction across the samples of ONE
/// campaign; a long-lived service (serve/) runs many campaigns over a
/// recurring set of topologies and wants to amortize across REQUESTS too.
/// The cache maps an opaque key -- the campaign server hashes deck text +
/// session-mode axes + variability spec into it -- to a shared pool, so a
/// repeat request leases already-built (warm) worker sessions instead of
/// re-parsing and re-priming from scratch.
///
/// Pools are handed out as shared_ptr: eviction only drops the cache's
/// reference, so a campaign still running on an evicted pool keeps its
/// sessions alive until its last lease returns.  Distinct keys never share
/// sessions, which is what keeps the per-key determinism contract intact:
/// a pool's results depend only on its own build/provider/options triple.
template <class Fixture>
class SessionPoolCache {
 public:
  using Pool = SessionPool<Fixture>;
  /// Invoked under the cache lock on a miss; must not re-enter the cache.
  using PoolFactory = std::function<std::shared_ptr<Pool>()>;

  struct Stats {
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t evictions = 0;
  };

  explicit SessionPoolCache(std::size_t capacity) : capacity_(capacity) {
    require(capacity > 0, "SessionPoolCache: capacity must be > 0");
  }

  /// Returns the pool for `key`, building it via `makePool` on a miss and
  /// evicting the least-recently-used entry when over capacity.  Building
  /// a pool is cheap (sessions are built lazily on first lease), so the
  /// factory runs under the lock -- concurrent requests for the same key
  /// always converge on one shared pool.
  [[nodiscard]] std::shared_ptr<Pool> acquire(const std::string& key,
                                              const PoolFactory& makePool) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      lru_.splice(lru_.begin(), lru_, it->second.position);
      return it->second.pool;
    }
    ++stats_.misses;
    std::shared_ptr<Pool> pool = makePool();
    require(pool != nullptr, "SessionPoolCache: factory returned null");
    lru_.push_front(key);
    entries_.emplace(key, Entry{pool, lru_.begin()});
    while (entries_.size() > capacity_) {
      ++stats_.evictions;
      entries_.erase(lru_.back());
      lru_.pop_back();
    }
    return pool;
  }

  /// True when the key is resident (does not touch recency; telemetry/tests).
  [[nodiscard]] bool contains(const std::string& key) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(key) != 0;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  struct Entry {
    std::shared_ptr<Pool> pool;
    typename std::list<std::string>::iterator position;
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
  Stats stats_;
};

}  // namespace vsstat::sim

#endif  // VSSTAT_SIM_SESSION_HPP
