#include "measure/snm.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "spice/analysis.hpp"
#include "util/error.hpp"

namespace vsstat::measure {

namespace {

void sweepLevelsInto(double supply, int points, std::vector<double>& levels) {
  require(points >= 3, "measureButterfly: need >= 3 sweep points");
  levels.resize(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    levels[static_cast<std::size_t>(i)] =
        supply * static_cast<double>(i) / static_cast<double>(points - 1);
  }
}

std::vector<double> sweepLevels(double supply, int points) {
  std::vector<double> levels;
  sweepLevelsInto(supply, points, levels);
  return levels;
}

VtcCurve curveFromSweep(const std::vector<double>& levels,
                        const std::vector<spice::OperatingPoint>& ops,
                        spice::NodeId out, bool mirrored) {
  VtcCurve c;
  c.x.reserve(levels.size());
  c.y.reserve(levels.size());
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const double in = levels[i];
    const double response = ops[i].v(out);
    if (mirrored) {
      c.x.push_back(response);
      c.y.push_back(in);
    } else {
      c.x.push_back(in);
      c.y.push_back(response);
    }
  }
  return c;
}

}  // namespace

ButterflyCurves measureButterfly(circuits::SramButterflyBench& bench,
                                 int points) {
  const std::vector<double> levels = sweepLevels(bench.supply, points);
  ButterflyCurves curves;
  curves.curve1 =
      curveFromSweep(levels, spice::dcSweep(bench.circuit, bench.sweep1, levels),
                     bench.out1, /*mirrored=*/false);
  curves.curve2 =
      curveFromSweep(levels, spice::dcSweep(bench.circuit, bench.sweep2, levels),
                     bench.out2, /*mirrored=*/true);
  return curves;
}

namespace {

/// Session butterfly into caller-owned storage: the campaign inner loop
/// reuses one curve/level buffer set across samples (see measureSnm).
void butterflyInto(circuits::SramButterflyBench& bench,
                   spice::SimSession& session, int points,
                   std::vector<double>& levels, ButterflyCurves& curves) {
  require(&session.circuit() == &bench.circuit,
          "measureButterfly: session is bound to a different circuit");
  sweepLevelsInto(bench.supply, points, levels);
  // Lean sweeps: only the probed response node is recorded per level (the
  // solver trajectory -- hence every voltage -- matches dcSweep exactly).
  curves.curve1.x.assign(levels.begin(), levels.end());
  session.dcSweepNode(bench.sweep1, levels, bench.out1, curves.curve1.y);
  curves.curve2.y.assign(levels.begin(), levels.end());
  session.dcSweepNode(bench.sweep2, levels, bench.out2, curves.curve2.x);
  // Seam guard: a swept response that went NaN/Inf must not feed the SNM
  // geometry silently (segment intersection on NaN quietly yields a
  // monostable verdict -- i.e. SNM 0 -- which would bias yield instead of
  // being counted as a non-finite failure).
  for (const double v : curves.curve1.y) {
    if (!std::isfinite(v))
      throw NonFiniteError("measureButterfly: non-finite VTC response");
  }
  for (const double v : curves.curve2.x) {
    if (!std::isfinite(v))
      throw NonFiniteError("measureButterfly: non-finite VTC response");
  }
}

}  // namespace

ButterflyCurves measureButterfly(circuits::SramButterflyBench& bench,
                                 spice::SimSession& session, int points) {
  std::vector<double> levels;
  ButterflyCurves curves;
  butterflyInto(bench, session, points, levels, curves);
  return curves;
}

namespace {

/// Intersection point of two segments, if any (parametric clipping).
std::optional<std::pair<double, double>> segmentIntersection(
    double ax, double ay, double bx, double by, double cx, double cy,
    double dx, double dy) {
  const double rX = bx - ax;
  const double rY = by - ay;
  const double sX = dx - cx;
  const double sY = dy - cy;
  const double denom = rX * sY - rY * sX;
  const double qpX = cx - ax;
  const double qpY = cy - ay;
  if (std::fabs(denom) < 1e-18) return std::nullopt;  // parallel
  const double t = (qpX * sY - qpY * sX) / denom;
  const double u = (qpX * rY - qpY * rX) / denom;
  if (t < -1e-12 || t > 1.0 + 1e-12 || u < -1e-12 || u > 1.0 + 1e-12)
    return std::nullopt;
  return std::make_pair(ax + t * rX, ay + t * rY);
}

/// Geometrically distinct intersection points of two polylines, written
/// into the caller's buffer (cleared first, capacity reused).
void intersectionPointsInto(const VtcCurve& a, const VtcCurve& b,
                            double mergeTolerance,
                            std::vector<std::pair<double, double>>& hits) {
  hits.clear();
  for (std::size_t i = 1; i < a.x.size(); ++i) {
    for (std::size_t j = 1; j < b.x.size(); ++j) {
      const auto hit =
          segmentIntersection(a.x[i - 1], a.y[i - 1], a.x[i], a.y[i],
                              b.x[j - 1], b.y[j - 1], b.x[j], b.y[j]);
      if (!hit) continue;
      bool duplicate = false;
      for (const auto& h : hits) {
        if (std::fabs(h.first - hit->first) < mergeTolerance &&
            std::fabs(h.second - hit->second) < mergeTolerance) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) hits.push_back(*hit);
    }
  }
}

/// Linear interpolation of value(key) on a polyline with ascending keys;
/// clamps beyond the swept range (VTC rails saturate).
double interpolate(const std::vector<double>& keys,
                   const std::vector<double>& values, double key) {
  if (key <= keys.front()) return values.front();
  if (key >= keys.back()) return values.back();
  const auto it = std::upper_bound(keys.begin(), keys.end(), key);
  const std::size_t hi = static_cast<std::size_t>(it - keys.begin());
  const std::size_t lo = hi - 1;
  const double span = keys[hi] - keys[lo];
  if (span <= 0.0) return values[hi];
  const double f = (key - keys[lo]) / span;
  return values[lo] * (1.0 - f) + values[hi] * f;
}

}  // namespace

bool polylinesIntersect(const VtcCurve& a, const VtcCurve& b) {
  std::vector<std::pair<double, double>> hits;
  intersectionPointsInto(a, b, 1e-12, hits);
  return !hits.empty();
}

SnmResult staticNoiseMargin(const ButterflyCurves& curves, double vdd) {
  require(curves.curve1.x.size() >= 2 && curves.curve2.x.size() >= 2,
          "staticNoiseMargin: degenerate curves");

  // A butterfly exists only when the two VTCs cross three times (two
  // stable states + the metastable point).  A monostable (flipped) cell
  // has no eyes and zero noise margin.  The crossing list and the lobe
  // grids below live in per-thread buffers reused across calls: this
  // routine runs once per Monte Carlo sample, and its scratch was most of
  // the campaign's remaining measurement-side allocations.
  static thread_local std::vector<std::pair<double, double>> crossings;
  intersectionPointsInto(curves.curve1, curves.curve2, vdd * 2e-3, crossings);
  if (crossings.size() < 3) return SnmResult{};

  // Identify the stable corners and the metastable point: A = upper-left,
  // B = lower-right, M = the remaining crossing nearest the middle.  The
  // eyes live strictly between the stable points and M; the square scans
  // below are restricted to those ranges so the saturated VTC tails beyond
  // the butterfly cannot fake a square (a READ cell's elevated "low" floor
  // would otherwise do exactly that).
  std::size_t iA = 0, iB = 0;
  for (std::size_t i = 1; i < crossings.size(); ++i) {
    if (crossings[i].second > crossings[iA].second) iA = i;
    if (crossings[i].first > crossings[iB].first) iB = i;
  }
  std::size_t iM = crossings.size();
  double bestMid = 0.0;
  for (std::size_t i = 0; i < crossings.size(); ++i) {
    if (i == iA || i == iB) continue;
    const double mid = std::fabs(crossings[i].first - 0.5 * vdd) +
                       std::fabs(crossings[i].second - 0.5 * vdd);
    if (iM == crossings.size() || mid < bestMid) {
      bestMid = mid;
      iM = i;
    }
  }
  if (iM == crossings.size()) return SnmResult{};  // degenerate butterfly
  const double yA = crossings[iA].second;
  const double xB = crossings[iB].first;
  const double xM = crossings[iM].first;
  const double yM = crossings[iM].second;

  // Express both curves as functions: f1(x) = curve 1 output, and
  // f2(u) = curve 2's x at sweep level u (curve 2 is stored mirrored, so
  // its sweep variable is y).  Both are monotone-decreasing inverter VTCs;
  // interpolation clamps to the rails outside the swept range.
  const auto f1 = [&](double x) {
    return interpolate(curves.curve1.x, curves.curve1.y, x);
  };
  const auto f2 = [&](double u) {
    return interpolate(curves.curve2.y, curves.curve2.x, u);
  };

  // Largest axis-aligned square of side t inside the upper-left eye:
  // corners (xl, yb)..(xl+t, yb+t).  The square must stay below curve 1
  // (f1 decreasing: binding at the top-right corner, yb + t <= f1(xl + t))
  // and right of curve 2 (f2 decreasing in its sweep variable: binding at
  // the bottom-left corner, xl >= f2(yb)).  Substituting the tightest
  // xl = f2(yb):
  //   fits(t)  <=>  exists yb : f1(f2(yb) + t) - t >= yb.
  // The inner anchor interpolation (f2(yb) resp. f1(xl)) does not depend
  // on the square side t, so it is hoisted out of the bisection: one grid
  // evaluation per lobe instead of one per (bisection iteration x grid
  // point).  The surviving arithmetic is unchanged, so SNM values are
  // bit-identical to the unhoisted form.
  const int gridPoints = 360;
  static thread_local std::vector<double> upperYb;
  static thread_local std::vector<double> upperAnchor;
  upperYb.resize(gridPoints + 1);
  upperAnchor.resize(gridPoints + 1);
  for (int i = 0; i <= gridPoints; ++i) {
    upperYb[i] = yM + (yA - yM) * static_cast<double>(i) / gridPoints;
    upperAnchor[i] = f2(upperYb[i]);
  }
  const auto fitsUpper = [&](double t) {
    for (int i = 0; i <= gridPoints; ++i) {
      if (f1(upperAnchor[i] + t) - t >= upperYb[i]) return true;
    }
    return false;
  };
  // Lower-right eye by symmetry (square above curve 1, binding at the
  // bottom-left corner yb >= f1(xl); left of curve 2, binding at the
  // top-right corner xl + t <= f2(yb + t)).  With the tightest yb = f1(xl):
  //   fits(t)  <=>  exists xl : f2(f1(xl) + t) - t >= xl.
  static thread_local std::vector<double> lowerXl;
  static thread_local std::vector<double> lowerAnchor;
  lowerXl.resize(gridPoints + 1);
  lowerAnchor.resize(gridPoints + 1);
  for (int i = 0; i <= gridPoints; ++i) {
    lowerXl[i] = xM + (xB - xM) * static_cast<double>(i) / gridPoints;
    lowerAnchor[i] = f1(lowerXl[i]);
  }
  const auto fitsLower = [&](double t) {
    for (int i = 0; i <= gridPoints; ++i) {
      if (f2(lowerAnchor[i] + t) - t >= lowerXl[i]) return true;
    }
    return false;
  };

  // Generic lambda: no std::function wrapper (whose capture allocation per
  // call was measurable in campaign profiles).
  const auto largestSide = [&](const auto& fits) {
    if (!fits(0.0)) return 0.0;
    double lo = 0.0;
    double hi = vdd;
    if (fits(hi)) return hi;
    for (int iter = 0; iter < 30; ++iter) {
      const double mid = 0.5 * (lo + hi);
      (fits(mid) ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };

  SnmResult r;
  r.lobe1 = largestSide(fitsUpper);
  r.lobe2 = largestSide(fitsLower);
  return r;
}

SnmResult measureSnm(circuits::SramButterflyBench& bench, int points) {
  const ButterflyCurves curves = measureButterfly(bench, points);
  return staticNoiseMargin(curves, bench.supply);
}

SnmResult measureSnm(circuits::SramButterflyBench& bench,
                     spice::SimSession& session, int points) {
  // Campaign inner loop: sweep into per-thread curve buffers whose
  // capacity survives across samples (fully rewritten per call), instead
  // of materializing a fresh ButterflyCurves per sample.
  static thread_local std::vector<double> levels;
  static thread_local ButterflyCurves curves;
  butterflyInto(bench, session, points, levels, curves);
  return staticNoiseMargin(curves, bench.supply);
}

}  // namespace vsstat::measure
