#include "measure/setup_hold.hpp"

#include <cmath>

#include "spice/analysis.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::measure {

using spice::SourceWaveform;

namespace {

/// One capture trial: D rises (or falls) at dEdge, CLK rises at clockEdge.
/// Returns true when Q ends at the expected captured value.
bool captureTrial(circuits::DffBench& bench, const SetupHoldOptions& opt,
                  bool dRising, double dEdge) {
  const double vdd = bench.supply;
  auto& dSrc = bench.circuit.voltageSource(bench.dSource);
  auto& clkSrc = bench.circuit.voltageSource(bench.clkSource);

  const double tStop = opt.clockEdge + opt.settleWindow;
  const double dStart = dRising ? 0.0 : vdd;
  const double dEnd = vdd - dStart;

  // Clamp the data edge into the simulated window; an edge before t=0
  // behaves as "data valid from the start".
  const double tEdge = std::max(dEdge, 1e-15);
  dSrc.setWaveform(SourceWaveform::pwl({{0.0, dStart},
                                        {tEdge, dStart},
                                        {tEdge + opt.slew, dEnd},
                                        {tStop, dEnd}}));
  clkSrc.setWaveform(SourceWaveform::pwl({{0.0, 0.0},
                                          {opt.clockEdge, 0.0},
                                          {opt.clockEdge + opt.slew, vdd},
                                          {tStop, vdd}}));

  spice::TransientOptions topt;
  topt.tStop = tStop;
  topt.dt = opt.dt;
  const spice::Waveform wave = spice::transient(bench.circuit, topt);

  // The slave opens on the rising edge, so a captured value shows at Q
  // within the settle window and stays there.
  const double qFinal = wave.finalValue(bench.q);
  const double target = dRising ? vdd : 0.0;
  return std::fabs(qFinal - target) < 0.1 * vdd;
}

}  // namespace

double measureSetupTime(circuits::DffBench& bench,
                        const SetupHoldOptions& opt) {
  // Offset = how long D leads the CLK edge.  Large lead must pass; D
  // arriving after the edge must fail.
  const auto passes = [&](double lead) {
    return captureTrial(bench, opt, /*dRising=*/true,
                        opt.clockEdge - lead - opt.slew);
  };

  double lo = -opt.searchSpan;  // D after edge: expect fail
  double hi = opt.searchSpan;   // D well before edge: expect pass
  if (!passes(hi)) {
    throw ConvergenceError("measureSetupTime: register never captures", 0);
  }
  if (passes(lo)) return lo;  // captures even with trailing data

  while (hi - lo > opt.resolution) {
    const double mid = 0.5 * (lo + hi);
    (passes(mid) ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

double measureHoldTime(circuits::DffBench& bench,
                       const SetupHoldOptions& opt) {
  // D rises well before the edge (guaranteed setup), then falls again at
  // clockEdge + holdOffset.  Too-early fall corrupts the captured 1.
  const double vdd = bench.supply;
  auto& dSrc = bench.circuit.voltageSource(bench.dSource);
  auto& clkSrc = bench.circuit.voltageSource(bench.clkSource);

  const auto passes = [&](double holdOffset) {
    const double tStop = opt.clockEdge + opt.settleWindow;
    const double dRise = std::max(opt.clockEdge - opt.searchSpan, 1e-15);
    const double dFall = std::max(opt.clockEdge + holdOffset, dRise + opt.slew);
    dSrc.setWaveform(SourceWaveform::pwl({{0.0, 0.0},
                                          {dRise, 0.0},
                                          {dRise + opt.slew, vdd},
                                          {dFall, vdd},
                                          {dFall + opt.slew, 0.0},
                                          {tStop, 0.0}}));
    clkSrc.setWaveform(SourceWaveform::pwl({{0.0, 0.0},
                                            {opt.clockEdge, 0.0},
                                            {opt.clockEdge + opt.slew, vdd},
                                            {tStop, vdd}}));
    spice::TransientOptions topt;
    topt.tStop = tStop;
    topt.dt = opt.dt;
    const spice::Waveform wave = spice::transient(bench.circuit, topt);
    return wave.finalValue(bench.q) > 0.9 * vdd;
  };

  double lo = -opt.searchSpan * 0.5;  // D falls before edge: expect fail
  double hi = opt.searchSpan;         // D held long after edge: expect pass
  if (!passes(hi)) {
    throw ConvergenceError("measureHoldTime: register never captures", 0);
  }
  if (passes(lo)) return lo;

  while (hi - lo > opt.resolution) {
    const double mid = 0.5 * (lo + hi);
    (passes(mid) ? hi : lo) = mid;
  }
  return 0.5 * (lo + hi);
}

double measureClkToQ(circuits::DffBench& bench, const SetupHoldOptions& opt) {
  const double vdd = bench.supply;
  auto& dSrc = bench.circuit.voltageSource(bench.dSource);
  auto& clkSrc = bench.circuit.voltageSource(bench.clkSource);

  const double tStop = opt.clockEdge + opt.settleWindow;
  dSrc.setWaveform(SourceWaveform::pwl(
      {{0.0, 0.0}, {1e-12, 0.0}, {1e-12 + opt.slew, vdd}, {tStop, vdd}}));
  clkSrc.setWaveform(SourceWaveform::pwl({{0.0, 0.0},
                                          {opt.clockEdge, 0.0},
                                          {opt.clockEdge + opt.slew, vdd},
                                          {tStop, vdd}}));
  spice::TransientOptions topt;
  topt.tStop = tStop;
  topt.dt = opt.dt;
  const spice::Waveform wave = spice::transient(bench.circuit, topt);

  const double mid = 0.5 * vdd;
  const auto clkCross =
      wave.crossing(bench.clk, mid, /*rising=*/true, opt.clockEdge - 5e-12);
  const auto qCross = wave.crossing(bench.q, mid, /*rising=*/true,
                                    clkCross.value_or(opt.clockEdge));
  require(clkCross.has_value(), "measureClkToQ: no clock edge");
  if (!qCross) throw ConvergenceError("measureClkToQ: Q never rose", 0);
  return *qCross - *clkCross;
}

}  // namespace vsstat::measure
