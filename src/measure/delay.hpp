// Gate delay and leakage measurements on the fanout-of-3 fixtures.
#ifndef VSSTAT_MEASURE_DELAY_HPP
#define VSSTAT_MEASURE_DELAY_HPP

#include "circuits/benchmarks.hpp"
#include "spice/analysis.hpp"
#include "spice/session.hpp"

namespace vsstat::measure {

struct GateDelays {
  double tphl = 0.0;     ///< input rise 50% -> output fall 50% [s]
  double tplh = 0.0;     ///< input fall 50% -> output rise 50% [s]

  [[nodiscard]] double average() const noexcept {
    return 0.5 * (tphl + tplh);
  }
};

/// Runs a transient on the fixture and extracts both propagation delays.
/// Throws ConvergenceError if an expected output edge never appears
/// (a functional failure under extreme mismatch).
[[nodiscard]] GateDelays measureGateDelays(circuits::GateFo3Bench& bench,
                                           double dt = 0.25e-12);

/// Session variant for build-once campaigns: runs the transient through a
/// persistent spice::SimSession bound to the bench's circuit.
/// Bit-identical to the overload above.
[[nodiscard]] GateDelays measureGateDelays(circuits::GateFo3Bench& bench,
                                           spice::SimSession& session,
                                           double dt = 0.25e-12);

/// Static supply leakage of the fixture, averaged over input low and
/// input high states [A].
[[nodiscard]] double measureLeakage(circuits::GateFo3Bench& bench);

/// Session variant (build-once campaigns); bit-identical to the above.
[[nodiscard]] double measureLeakage(circuits::GateFo3Bench& bench,
                                    spice::SimSession& session);

struct OscillationResult {
  double frequency = 0.0;  ///< [Hz], averaged over the measured cycles
  double period = 0.0;     ///< [s]
  int cyclesMeasured = 0;
  double swing = 0.0;      ///< peak-to-peak at the tap [V]
};

/// Runs the ring-oscillator transient and measures the steady oscillation
/// frequency at tap 0 (skipping `settleCycles` start-up periods).  Throws
/// ConvergenceError when the ring fails to produce enough full cycles --
/// a stuck ring under extreme mismatch is a reportable failure, not a
/// number.
[[nodiscard]] OscillationResult measureOscillation(
    circuits::RingOscillatorBench& bench, int settleCycles = 2,
    int measureCycles = 4);

}  // namespace vsstat::measure

#endif  // VSSTAT_MEASURE_DELAY_HPP
