#include "measure/device_metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vsstat::measure {

double idsat(const models::MosfetModel& model,
             const models::DeviceGeometry& geom, double vdd) {
  return model.drainCurrent(geom, vdd, vdd);
}

double ioff(const models::MosfetModel& model,
            const models::DeviceGeometry& geom, double vdd) {
  return model.drainCurrent(geom, 0.0, vdd);
}

double log10Ioff(const models::MosfetModel& model,
                 const models::DeviceGeometry& geom, double vdd) {
  const double i = ioff(model, geom, vdd);
  require(i > 0.0, "log10Ioff: off current must be positive");
  return std::log10(i);
}

double cggAtVdd(const models::MosfetModel& model,
                const models::DeviceGeometry& geom, double vdd) {
  return models::gateCapacitance(model, geom, vdd, 0.0);
}

ElectricalTargets measureTargets(const models::MosfetModel& model,
                                 const models::DeviceGeometry& geom,
                                 double vdd) {
  ElectricalTargets t;
  t.idsat = idsat(model, geom, vdd);
  t.log10Ioff = log10Ioff(model, geom, vdd);
  t.cgg = cggAtVdd(model, geom, vdd);
  return t;
}

}  // namespace vsstat::measure
