#include "measure/delay.hpp"

#include <cmath>

#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::measure {

using spice::SourceWaveform;

namespace {

GateDelays delaysFromWave(const circuits::GateFo3Bench& bench,
                          const spice::Waveform& wave);

}  // namespace

GateDelays measureGateDelays(circuits::GateFo3Bench& bench, double dt) {
  spice::TransientOptions options;
  options.tStop = bench.tStop;
  options.dt = dt;
  return delaysFromWave(bench, spice::transient(bench.circuit, options));
}

GateDelays measureGateDelays(circuits::GateFo3Bench& bench,
                             spice::SimSession& session, double dt) {
  require(&session.circuit() == &bench.circuit,
          "measureGateDelays: session is bound to a different circuit");
  spice::TransientOptions options;
  options.tStop = bench.tStop;
  options.dt = dt;
  // Campaign inner loop: record into a per-thread waveform whose capacity
  // survives across samples (with the persistent worker pool, a steady
  // state sample allocates nothing here).  Contents are fully rewritten
  // per run, so reuse never leaks state between samples.
  static thread_local spice::Waveform wave(1);
  session.transient(options, wave);
  return delaysFromWave(bench, wave);
}

namespace {

GateDelays delaysFromWave(const circuits::GateFo3Bench& bench,
                          const spice::Waveform& wave) {
  const double mid = 0.5 * bench.supply;

  const auto inRise = wave.crossing(bench.in, mid, /*rising=*/true);
  require(inRise.has_value(), "measureGateDelays: no input rising edge");
  const auto outFall = wave.crossing(bench.out, mid, /*rising=*/false, *inRise);
  if (!outFall) {
    // The solve succeeded; the gate simply never switched for this draw --
    // a failing CORNER (metric-domain), not a failing solver.
    throw MetricDomainError("measureGateDelays: output never fell");
  }

  const auto inFall = wave.crossing(bench.in, mid, /*rising=*/false, *inRise);
  require(inFall.has_value(), "measureGateDelays: no input falling edge");
  const auto outRise = wave.crossing(bench.out, mid, /*rising=*/true, *inFall);
  if (!outRise) {
    throw MetricDomainError("measureGateDelays: output never rose");
  }

  GateDelays d;
  d.tphl = *outFall - *inRise;
  d.tplh = *outRise - *inFall;
  if (!std::isfinite(d.tphl) || !std::isfinite(d.tplh)) {
    throw NonFiniteError("measureGateDelays: non-finite delay");
  }
  if (d.tphl <= 0.0 || d.tplh <= 0.0) {
    // A campaign must classify-and-drop this corner, so it cannot be an
    // InvalidArgumentError (those abort the whole campaign by design).
    throw MetricDomainError("measureGateDelays: negative delay");
  }
  return d;
}

}  // namespace

OscillationResult measureOscillation(circuits::RingOscillatorBench& bench,
                                     int settleCycles, int measureCycles) {
  require(settleCycles >= 0 && measureCycles >= 1,
          "measureOscillation: bad cycle counts");

  spice::TransientOptions opt;
  opt.dt = bench.suggestedDt;
  opt.tStop = bench.suggestedTStop;
  const spice::Waveform wave = spice::transient(bench.circuit, opt);

  // Successive rising mid-rail crossings at tap 0.
  const spice::NodeId tap = bench.taps.front();
  const double mid = 0.5 * bench.supply;
  std::vector<double> edges;
  double after = 0.0;
  while (true) {
    const auto t = wave.crossing(tap, mid, /*rising=*/true, after);
    if (!t) break;
    edges.push_back(*t);
    after = *t + 1e-15;
  }
  const int needed = settleCycles + measureCycles + 1;
  if (static_cast<int>(edges.size()) < needed) {
    throw ConvergenceError(
        "measureOscillation: ring produced " +
            std::to_string(edges.size()) + " edges, need " +
            std::to_string(needed),
        static_cast<int>(edges.size()));
  }

  const double tStart = edges[static_cast<std::size_t>(settleCycles)];
  const double tEnd =
      edges[static_cast<std::size_t>(settleCycles + measureCycles)];

  OscillationResult r;
  r.cyclesMeasured = measureCycles;
  r.period = (tEnd - tStart) / measureCycles;
  r.frequency = 1.0 / r.period;

  // Peak-to-peak swing over the measured window.
  double lo = bench.supply;
  double hi = 0.0;
  for (std::size_t i = 0; i < wave.sampleCount(); ++i) {
    if (wave.time(i) < tStart || wave.time(i) > tEnd) continue;
    const double v = wave.value(tap, i);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  r.swing = hi - lo;
  return r;
}

namespace {

/// Restores a voltage source's waveform on scope exit -- a throwing DC
/// solve must not leave the stimulus clobbered, especially on persistent
/// session fixtures that outlive the failing sample.
class WaveformRestorer {
 public:
  explicit WaveformRestorer(spice::VoltageSourceElement& source)
      : source_(source), original_(source.waveform()) {}
  ~WaveformRestorer() { source_.setWaveform(original_); }
  WaveformRestorer(const WaveformRestorer&) = delete;
  WaveformRestorer& operator=(const WaveformRestorer&) = delete;

 private:
  spice::VoltageSourceElement& source_;
  SourceWaveform original_;
};

}  // namespace

double measureLeakage(circuits::GateFo3Bench& bench) {
  auto& input = bench.circuit.voltageSource(bench.inSource);
  const WaveformRestorer restore(input);

  double total = 0.0;
  for (const double level : {0.0, bench.supply}) {
    input.setDcLevel(level);
    const spice::OperatingPoint op = spice::dcOperatingPoint(bench.circuit);
    total += std::fabs(
        spice::sourceCurrent(bench.circuit, bench.vddSource, op));
  }
  return 0.5 * total;
}

double measureLeakage(circuits::GateFo3Bench& bench,
                      spice::SimSession& session) {
  require(&session.circuit() == &bench.circuit,
          "measureLeakage: session is bound to a different circuit");
  auto& input = bench.circuit.voltageSource(bench.inSource);
  const WaveformRestorer restore(input);

  double total = 0.0;
  for (const double level : {0.0, bench.supply}) {
    input.setDcLevel(level);
    const spice::OperatingPoint op = session.dcOperatingPoint();
    total += std::fabs(
        spice::sourceCurrent(bench.circuit, bench.vddSource, op));
  }
  return 0.5 * total;
}

}  // namespace vsstat::measure
