// SRAM static noise margin (paper Fig. 9): butterfly curves from the two
// broken-feedback half-cells and the largest embedded square per lobe.
//
// The square search is geometric and exact up to polyline resolution:
// a square of side s with axis-parallel sides fits between the curves of a
// lobe iff curve 1 translated by (+s, -s) (resp. (-s, +s) for the other
// lobe) still intersects curve 2; SNM is found by bisecting on s until the
// intersection disappears.  This is equivalent to Seevinck's 45-degree
// formulation but robust to curves that are multivalued after rotation.
#ifndef VSSTAT_MEASURE_SNM_HPP
#define VSSTAT_MEASURE_SNM_HPP

#include <vector>

#include "circuits/benchmarks.hpp"
#include "spice/session.hpp"

namespace vsstat::measure {

/// A voltage transfer curve as a polyline.
struct VtcCurve {
  std::vector<double> x;
  std::vector<double> y;
};

/// Sweeps the half-cell inputs and returns the two butterfly curves:
/// curve 1 = (Vin, f1(Vin)) from half 1; curve 2 = (f2(Vin), Vin) from
/// half 2 (axes mirrored, as plotted in the paper's butterfly).
struct ButterflyCurves {
  VtcCurve curve1;
  VtcCurve curve2;
};

[[nodiscard]] ButterflyCurves measureButterfly(
    circuits::SramButterflyBench& bench, int points = 61);

/// Session variant for build-once campaigns: sweeps through a persistent
/// spice::SimSession bound to the bench's circuit instead of rebuilding
/// solver state per sweep point.  Bit-identical to the overload above.
[[nodiscard]] ButterflyCurves measureButterfly(
    circuits::SramButterflyBench& bench, spice::SimSession& session,
    int points = 61);

/// Sides of the largest embedded squares of the two lobes and the cell
/// SNM (their minimum).  A monostable (already-flipped) cell reports 0.
struct SnmResult {
  double lobe1 = 0.0;
  double lobe2 = 0.0;

  [[nodiscard]] double cellSnm() const noexcept {
    return lobe1 < lobe2 ? lobe1 : lobe2;
  }
};

[[nodiscard]] SnmResult staticNoiseMargin(const ButterflyCurves& curves,
                                          double vdd);

/// Convenience: butterfly sweep + SNM in one call.
[[nodiscard]] SnmResult measureSnm(circuits::SramButterflyBench& bench,
                                   int points = 61);

/// Session variant (build-once campaigns); bit-identical to the above.
[[nodiscard]] SnmResult measureSnm(circuits::SramButterflyBench& bench,
                                   spice::SimSession& session,
                                   int points = 61);

/// True when two polylines intersect (exposed for tests).
[[nodiscard]] bool polylinesIntersect(const VtcCurve& a, const VtcCurve& b);

}  // namespace vsstat::measure

#endif  // VSSTAT_MEASURE_SNM_HPP
