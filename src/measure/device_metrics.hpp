// Device-level electrical targets used throughout the paper:
//   Idsat      = Id at Vgs = Vds = Vdd              (drive strength)
//   Ioff       = Id at Vgs = 0,  Vds = Vdd          (leakage)
//   Cgg@Vdd    = dQg/dVgs at Vgs = Vdd, Vds = 0     (gate capacitance)
//
// These are exactly the e_i of the BPV extraction (Sec. III): chosen
// because their distributions stay Gaussian under mismatch.  Cgg is
// measured directly on the model (the paper measures it LCR-style rather
// than through a transient), and log10(Ioff) is used instead of Ioff since
// Ioff itself is log-normal.
#ifndef VSSTAT_MEASURE_DEVICE_METRICS_HPP
#define VSSTAT_MEASURE_DEVICE_METRICS_HPP

#include "models/device.hpp"

namespace vsstat::measure {

[[nodiscard]] double idsat(const models::MosfetModel& model,
                           const models::DeviceGeometry& geom, double vdd);

[[nodiscard]] double ioff(const models::MosfetModel& model,
                          const models::DeviceGeometry& geom, double vdd);

[[nodiscard]] double log10Ioff(const models::MosfetModel& model,
                               const models::DeviceGeometry& geom, double vdd);

/// Gate capacitance in strong inversion (Vgs = Vdd, Vds = 0).
[[nodiscard]] double cggAtVdd(const models::MosfetModel& model,
                              const models::DeviceGeometry& geom, double vdd);

/// The BPV electrical target vector at one geometry.
struct ElectricalTargets {
  double idsat = 0.0;      ///< A
  double log10Ioff = 0.0;  ///< log10(A)
  double cgg = 0.0;        ///< F
};

[[nodiscard]] ElectricalTargets measureTargets(
    const models::MosfetModel& model, const models::DeviceGeometry& geom,
    double vdd);

}  // namespace vsstat::measure

#endif  // VSSTAT_MEASURE_DEVICE_METRICS_HPP
