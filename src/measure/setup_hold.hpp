// D flip-flop setup/hold characterization (paper Fig. 8).
//
// Setup and hold times cannot be probed directly: each data point requires
// a full transient with a particular data-to-clock offset, and the
// constraint is found by bisecting on that offset until capture fails --
// which is precisely why the paper stresses the VS model's runtime
// advantage for this analysis ("about 20x more SPICE simulations than a
// combinational cell").
#ifndef VSSTAT_MEASURE_SETUP_HOLD_HPP
#define VSSTAT_MEASURE_SETUP_HOLD_HPP

#include "circuits/benchmarks.hpp"

namespace vsstat::measure {

struct SetupHoldOptions {
  double clockEdge = 70e-12;     ///< rising CLK edge time [s]
  double slew = 8e-12;           ///< D and CLK edge slew [s]
  double settleWindow = 70e-12;  ///< time allowed after the edge for Q [s]
  double searchSpan = 50e-12;    ///< bisection bracket half-width [s]
  double resolution = 0.2e-12;   ///< bisection stop resolution [s]
  double dt = 0.3e-12;           ///< transient step [s]
};

/// Minimum D-before-CLK time that still captures a rising D (the paper's
/// Fig. 8c distribution).  Positive means D must lead the clock.
/// Throws ConvergenceError when the register fails even with maximal lead
/// (a dead sample under extreme mismatch).
[[nodiscard]] double measureSetupTime(circuits::DffBench& bench,
                                      const SetupHoldOptions& options = {});

/// Minimum D-hold-after-CLK time for a captured '1' to survive a falling D.
[[nodiscard]] double measureHoldTime(circuits::DffBench& bench,
                                     const SetupHoldOptions& options = {});

/// Clock-to-Q delay with a comfortably early D (reference timing).
[[nodiscard]] double measureClkToQ(circuits::DffBench& bench,
                                   const SetupHoldOptions& options = {});

}  // namespace vsstat::measure

#endif  // VSSTAT_MEASURE_SETUP_HOLD_HPP
