// Fixed-size thread pool used by the Monte Carlo runner.  Work items are
// index-addressed (parallel-for style) because MC samples are embarrassingly
// parallel and identified by their sample index.
#ifndef VSSTAT_UTIL_THREAD_POOL_HPP
#define VSSTAT_UTIL_THREAD_POOL_HPP

#include <cstddef>
#include <functional>

namespace vsstat::util {

/// Runs body(i) for i in [0, count) across `threads` worker threads.
/// `threads == 0` selects std::thread::hardware_concurrency().  Exceptions
/// thrown by any invocation are captured; the first one is rethrown on the
/// calling thread after all workers join.
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body,
                 unsigned threads = 0);

/// Number of workers parallelFor would use for `requested` threads.
[[nodiscard]] unsigned effectiveThreadCount(unsigned requested) noexcept;

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_THREAD_POOL_HPP
