// Persistent thread pool behind the library's parallel-for primitive.
//
// Monte Carlo campaigns call parallelFor once per campaign with tens of
// thousands of samples; spawning and joining raw std::threads on every call
// costs more than many of the samples themselves.  The pool keeps its
// workers alive across calls (lazy singleton, task-queue handshake), growing
// on demand up to the largest concurrency ever requested.  Work items are
// index-addressed (parallel-for style) because MC samples are embarrassingly
// parallel and identified by their sample index.
#ifndef VSSTAT_UTIL_THREAD_POOL_HPP
#define VSSTAT_UTIL_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsstat::util {

/// Lazily-started persistent worker pool.  One index-sweep job runs at a
/// time (concurrent callers queue); nested calls from inside a job degrade
/// to serial execution on the calling thread, so they can never deadlock.
class ThreadPool {
 public:
  /// The process-wide pool.  Workers are only spawned on first parallel use.
  [[nodiscard]] static ThreadPool& instance();

  /// Runs body(i) for i in [0, count) across up to `threads` threads
  /// (calling thread included).  `threads == 0` selects hardware
  /// concurrency.  Every index is executed exactly once; exceptions thrown
  /// by any invocation are captured and the first one is rethrown on the
  /// calling thread after the sweep drains.  With an effective thread count
  /// of one the body runs inline in index order.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body,
                   unsigned threads = 0);

  /// Number of persistent workers currently alive (telemetry/tests).
  [[nodiscard]] unsigned workerCount() const;

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;

  void ensureWorkers(unsigned needed);
  void workerMain();
  /// Claims indices until the sweep drains; never throws (errors are
  /// captured into firstError_ and the remaining indices are drained).
  void runSweep(const std::function<void(std::size_t)>& body,
                std::size_t count) noexcept;

  mutable std::mutex stateMutex_;
  std::condition_variable workCv_;
  std::condition_variable doneCv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // One job at a time; guarded by jobMutex_ across whole sweeps and by
  // stateMutex_ for the publication handshake with workers.
  std::mutex jobMutex_;
  std::uint64_t jobId_ = 0;
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  unsigned helpersWanted_ = 0;  ///< workers allowed to join the current job
  unsigned helpersJoined_ = 0;
  unsigned active_ = 0;  ///< workers currently executing the job
  std::atomic<std::size_t> next_{0};

  std::mutex errorMutex_;
  std::exception_ptr firstError_;
};

/// Runs body(i) for i in [0, count) across `threads` worker threads on the
/// shared persistent pool.  `threads == 0` selects
/// std::thread::hardware_concurrency().  Exceptions thrown by any invocation
/// are captured; the first one is rethrown on the calling thread after the
/// sweep completes.
void parallelFor(std::size_t count, const std::function<void(std::size_t)>& body,
                 unsigned threads = 0);

/// Number of workers parallelFor would use for `requested` threads.
[[nodiscard]] unsigned effectiveThreadCount(unsigned requested) noexcept;

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_THREAD_POOL_HPP
