// Minimal ASCII rendering of histograms and scatter plots so bench binaries
// can show the *shape* of each paper figure directly in the terminal
// (Gaussian vs skewed PDFs, butterfly curves, confidence ellipses, ...).
#ifndef VSSTAT_UTIL_ASCII_PLOT_HPP
#define VSSTAT_UTIL_ASCII_PLOT_HPP

#include <string>
#include <vector>

namespace vsstat::util {

/// Renders a horizontal-bar histogram of `samples` with `bins` bins.
/// Each line shows the bin center, count, and a proportional bar.
[[nodiscard]] std::string asciiHistogram(const std::vector<double>& samples,
                                         int bins = 24, int barWidth = 48,
                                         const std::string& xlabel = "");

/// Renders one or more (x, y) series on a shared character grid.  Series i
/// is drawn with glyphs[i % glyphs.size()].
struct Series {
  std::vector<double> x;
  std::vector<double> y;
  char glyph = '*';
};

[[nodiscard]] std::string asciiScatter(const std::vector<Series>& series,
                                       int width = 64, int height = 24,
                                       const std::string& xlabel = "",
                                       const std::string& ylabel = "");

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_ASCII_PLOT_HPP
