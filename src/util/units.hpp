// Physical constants and unit conversions.
//
// The library works in SI internally (V, A, s, F, m).  Device geometry is
// therefore stored in metres even though the paper (and all printed output)
// speaks in nanometres; the helpers here keep those conversions explicit.
// The Pelgrom alpha coefficients of the paper are carried in the paper's
// own mixed units (V*nm, nm, nm*cm^2/Vs, nm*uF/cm^2) -- see
// extract/pelgrom.hpp for the conversion points.
#ifndef VSSTAT_UTIL_UNITS_HPP
#define VSSTAT_UTIL_UNITS_HPP

namespace vsstat::units {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;

/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;

/// Default simulation temperature [K].
inline constexpr double kRoomTemperatureK = 300.0;

/// Thermal voltage kT/q [V] at the given temperature.
[[nodiscard]] inline constexpr double thermalVoltage(
    double temperatureK = kRoomTemperatureK) noexcept {
  return kBoltzmann * temperatureK / kElementaryCharge;
}

// --- length ---------------------------------------------------------------
inline constexpr double kNm = 1e-9;   ///< nanometre in metres
inline constexpr double kUm = 1e-6;   ///< micrometre in metres
inline constexpr double kCm = 1e-2;   ///< centimetre in metres

[[nodiscard]] inline constexpr double nmToM(double nm) noexcept { return nm * kNm; }
[[nodiscard]] inline constexpr double mToNm(double m) noexcept { return m / kNm; }
[[nodiscard]] inline constexpr double umToM(double um) noexcept { return um * kUm; }
[[nodiscard]] inline constexpr double mToUm(double m) noexcept { return m / kUm; }

// --- areal capacitance ----------------------------------------------------
/// uF/cm^2 expressed in F/m^2 (1 uF/cm^2 = 1e-6 F / 1e-4 m^2 = 1e-2 F/m^2).
inline constexpr double kUFPerCm2 = 1e-2;

[[nodiscard]] inline constexpr double uFPerCm2ToSI(double v) noexcept {
  return v * kUFPerCm2;
}
[[nodiscard]] inline constexpr double siToUFPerCm2(double v) noexcept {
  return v / kUFPerCm2;
}

// --- mobility ---------------------------------------------------------------
/// cm^2/(V*s) expressed in m^2/(V*s).
inline constexpr double kCm2PerVs = 1e-4;

[[nodiscard]] inline constexpr double cm2PerVsToSI(double v) noexcept {
  return v * kCm2PerVs;
}
[[nodiscard]] inline constexpr double siToCm2PerVs(double v) noexcept {
  return v / kCm2PerVs;
}

// --- velocity ---------------------------------------------------------------
/// cm/s expressed in m/s.
inline constexpr double kCmPerS = 1e-2;

[[nodiscard]] inline constexpr double cmPerSToSI(double v) noexcept {
  return v * kCmPerS;
}
[[nodiscard]] inline constexpr double siToCmPerS(double v) noexcept {
  return v / kCmPerS;
}

// --- time -------------------------------------------------------------------
inline constexpr double kPs = 1e-12;  ///< picosecond in seconds
inline constexpr double kNs = 1e-9;   ///< nanosecond in seconds

[[nodiscard]] inline constexpr double psToS(double ps) noexcept { return ps * kPs; }
[[nodiscard]] inline constexpr double sToPs(double s) noexcept { return s / kPs; }

}  // namespace vsstat::units

#endif  // VSSTAT_UTIL_UNITS_HPP
