// Vectorized transcendental kernels for the fast-numerics mode.
//
// The VS equation chain spends ~95% of a device evaluation in libm
// exp/log1p/pow (BENCH_device_bank.json ceiling analysis).  These array
// kernels replace them, in NumericsMode::fast only, with branch-free
// Estrin-scheme polynomial implementations evaluated 4 doubles at a time
// via GNU vector extensions (8 per unrolled block).  Two code paths are
// compiled from one kernel body (util/simd_math_kernels.inc):
//
//   * a baseline path built with the project's default flags (the
//     compiler lowers the 256-bit vectors to SSE2 pairs), and
//   * an AVX2+FMA path (simd_math_avx2.cpp, compiled with -mavx2 -mfma),
//
// selected once per process by __builtin_cpu_supports -- so the same
// binary runs on any x86-64 and uses the wide units where they exist.
// Within one host the selected path is fixed: results are deterministic
// per machine (fast-mode campaigns stay bit-identical across runs and
// thread counts), but may differ across CPU generations -- which is why
// fast mode is tolerance-checked, never golden-bit-checked.
//
// Algorithms (standard Cody-Waite style, tuned for latency over last-ulp
// accuracy -- tolerance mode does not need correctly-rounded results):
//   exp:   k = round(x/ln2); r = x - k*ln2 (hi/lo split); exp(r) by a
//          degree-10 Taylor polynomial in Estrin form; scale by 2^k through
//          direct IEEE-754 exponent-field construction.
//   log:   x = 2^e * m with m in [sqrt(1/2), sqrt(2)); log(m) = 2*atanh(f),
//          f = (m-1)/(m+1), by an even polynomial of degree 6 in f^2.
//   log1p: log(1+x) plus the first-order correction (x - ((1+x)-1))/(1+x),
//          which restores the bits the 1+x rounding loses (exact for
//          tiny x: the log term is 0 and the correction is x itself).
//   pow:   exp(y * log(x)), the classic composition; 0^y maps to 0.
//
// Accuracy contract (asserted by tests/util/test_simd_math.cpp sweeps over
// the full VS argument ranges; measured worst cases carry ~2-4x headroom):
//   expArray    relative error <= 1e-12   over [-708, 708]
//   logArray    absolute error <= 4e-12   (=> relative <= ~1e-11 away
//                                          from log(x) == 0 crossings)
//   log1pArray  relative error <= 1e-11   over [0, 1e18]
//   powArray    relative error <= 1e-9    over the VS Fsat domain
//               (|y*ln x| <= ~70; error ~ |y*ln x| * err(log) + err(exp))
// These are tolerance-mode kernels: NOT bit-compatible with libm, and the
// reference numerics path must never call them.
//
// Domain contract (callers are the VS fast pipeline and its tests):
//   exp:   any finite x; inputs outside [-708, 708] clamp (no inf/0/NaN
//          handling -- the VS chain's arguments stay far inside).
//   log:   x == 0 returns -1023*ln2 = about -709.09 (the zero bit pattern
//          reads as exponent -1023, mantissa 1.0 -- NOT -inf); x must not
//          be negative, NaN, inf, or subnormal.
//   log1p: x > -0.5, finite.
//   pow:   base == 0 or normal positive; y finite.
#ifndef VSSTAT_UTIL_SIMD_MATH_HPP
#define VSSTAT_UTIL_SIMD_MATH_HPP

#include <cstddef>

namespace vsstat::util::simd {

/// Lanes per primitive vector op; the array kernels process two such
/// blocks per unrolled iteration and a padded block for the tail, so every
/// element takes the identical arithmetic path at any array length.
inline constexpr std::size_t kWidth = 4;

/// True when this process dispatches to the AVX2+FMA clones (telemetry
/// for benches; decided once from __builtin_cpu_supports).
[[nodiscard]] bool usingAvx2() noexcept;

void expArray(const double* x, double* out, std::size_t n) noexcept;
void logArray(const double* x, double* out, std::size_t n) noexcept;
void log1pArray(const double* x, double* out, std::size_t n) noexcept;
/// out[i] = base[i]^y[i] via exp(y*log(base)); base[i] == 0 yields exactly 0.
void powArray(const double* base, const double* y, double* out,
              std::size_t n) noexcept;

}  // namespace vsstat::util::simd

#endif  // VSSTAT_UTIL_SIMD_MATH_HPP
