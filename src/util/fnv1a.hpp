// 64-bit FNV-1a accumulator -- the library's cross-run determinism
// fingerprint.
//
// The CI scaling smoke compares campaign results across 1/2/4 workers by
// hashing every metric double's bit pattern: equal hashes mean bit-identical
// runs.  The benches and the multi-fit extraction engine share this one
// accumulator so every "metrics_fnv1a"-style field mixes bytes in exactly
// the same order (low byte first per 64-bit word).
#ifndef VSSTAT_UTIL_FNV1A_HPP
#define VSSTAT_UTIL_FNV1A_HPP

#include <cstdint>
#include <cstring>

namespace vsstat::util {

class Fnv1a {
 public:
  /// Mixes one 64-bit word, low byte first.
  void mix(std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      h_ ^= (v >> (8 * byte)) & 0xFF;
      h_ *= 1099511628211ULL;
    }
  }

  /// Mixes a double's bit pattern (NaNs hash by representation).
  void mixDouble(double v) noexcept {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    mix(bits);
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ULL;  // FNV offset basis
};

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_FNV1A_HPP
