#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/table.hpp"

namespace vsstat::util {

std::string asciiHistogram(const std::vector<double>& samples, int bins,
                           int barWidth, const std::string& xlabel) {
  require(bins > 0 && barWidth > 0, "asciiHistogram: bins/barWidth must be > 0");
  if (samples.empty()) return "(no samples)\n";

  const auto [minIt, maxIt] = std::minmax_element(samples.begin(), samples.end());
  double lo = *minIt;
  double hi = *maxIt;
  if (lo == hi) {  // degenerate distribution: widen artificially
    lo -= 0.5;
    hi += 0.5;
  }
  const double width = (hi - lo) / bins;

  std::vector<int> counts(static_cast<std::size_t>(bins), 0);
  for (double s : samples) {
    auto b = static_cast<int>((s - lo) / width);
    b = std::clamp(b, 0, bins - 1);
    ++counts[static_cast<std::size_t>(b)];
  }
  const int peak = *std::max_element(counts.begin(), counts.end());

  std::ostringstream os;
  if (!xlabel.empty()) os << "  " << xlabel << '\n';
  for (int b = 0; b < bins; ++b) {
    const double center = lo + (b + 0.5) * width;
    const int count = counts[static_cast<std::size_t>(b)];
    const int len = peak > 0 ? (count * barWidth + peak / 2) / peak : 0;
    os << "  " << formatSci(center, 3) << " |" << std::string(len, '#');
    os << ' ' << count << '\n';
  }
  return os.str();
}

std::string asciiScatter(const std::vector<Series>& series, int width,
                         int height, const std::string& xlabel,
                         const std::string& ylabel) {
  require(width > 2 && height > 2, "asciiScatter: grid too small");
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    require(s.x.size() == s.y.size(), "asciiScatter: ragged series");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xmin = std::min(xmin, s.x[i]);
      xmax = std::max(xmax, s.x[i]);
      ymin = std::min(ymin, s.y[i]);
      ymax = std::max(ymax, s.y[i]);
      any = true;
    }
  }
  if (!any) return "(no points)\n";
  if (xmin == xmax) {
    xmin -= 0.5;
    xmax += 0.5;
  }
  if (ymin == ymax) {
    ymin -= 0.5;
    ymax += 0.5;
  }

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      auto cx = static_cast<int>(std::lround((s.x[i] - xmin) / (xmax - xmin) *
                                             (width - 1)));
      auto cy = static_cast<int>(std::lround((s.y[i] - ymin) / (ymax - ymin) *
                                             (height - 1)));
      cx = std::clamp(cx, 0, width - 1);
      cy = std::clamp(cy, 0, height - 1);
      grid[static_cast<std::size_t>(height - 1 - cy)]
          [static_cast<std::size_t>(cx)] = s.glyph;
    }
  }

  std::ostringstream os;
  if (!ylabel.empty()) os << "  " << ylabel << '\n';
  os << "  " << formatSci(ymax, 2) << '\n';
  for (const auto& row : grid) os << "  |" << row << "|\n";
  os << "  " << formatSci(ymin, 2) << '\n';
  os << "  x: [" << formatSci(xmin, 3) << ", " << formatSci(xmax, 3) << "] "
     << xlabel << '\n';
  return os.str();
}

}  // namespace vsstat::util
