#include "util/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vsstat::util {

unsigned effectiveThreadCount(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 unsigned threads) {
  if (count == 0) return;
  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(effectiveThreadCount(threads), count));

  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
        // Keep draining indices so other workers terminate promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (firstError) std::rethrow_exception(firstError);
}

}  // namespace vsstat::util
