#include "util/thread_pool.hpp"

#include <algorithm>

namespace vsstat::util {

namespace {

/// Set while a thread is executing inside a parallelFor sweep (as caller or
/// worker); nested calls from such a thread run serially inline.
thread_local bool tlsInSweep = false;

/// Hard cap on persistent workers; far above any sane request, it only
/// bounds pathological thread counts.
constexpr unsigned kMaxWorkers = 256;

}  // namespace

unsigned effectiveThreadCount(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    stop_ = true;
  }
  workCv_.notify_all();
  for (auto& t : workers_) t.join();
}

unsigned ThreadPool::workerCount() const {
  std::lock_guard<std::mutex> lock(stateMutex_);
  return static_cast<unsigned>(workers_.size());
}

void ThreadPool::ensureWorkers(unsigned needed) {
  std::lock_guard<std::mutex> lock(stateMutex_);
  const unsigned target = std::min(needed, kMaxWorkers);
  while (workers_.size() < target) {
    workers_.emplace_back([this] { workerMain(); });
  }
}

void ThreadPool::runSweep(const std::function<void(std::size_t)>& body,
                          std::size_t count) noexcept {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      body(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(errorMutex_);
        if (!firstError_) firstError_ = std::current_exception();
      }
      // Drain the remaining indices so every participant retires promptly.
      next_.store(count, std::memory_order_relaxed);
      return;
    }
  }
}

void ThreadPool::workerMain() {
  tlsInSweep = true;  // workers never recurse into the pool
  std::uint64_t lastJob = 0;
  std::unique_lock<std::mutex> lock(stateMutex_);
  for (;;) {
    workCv_.wait(lock, [&] { return stop_ || jobId_ != lastJob; });
    if (stop_) return;
    lastJob = jobId_;
    if (helpersJoined_ >= helpersWanted_) continue;  // job fully staffed
    ++helpersJoined_;
    ++active_;
    const std::function<void(std::size_t)>* body = body_;
    const std::size_t count = count_;
    lock.unlock();
    runSweep(*body, count);
    lock.lock();
    if (--active_ == 0) doneCv_.notify_all();
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             unsigned threads) {
  if (count == 0) return;
  const unsigned total = static_cast<unsigned>(
      std::min<std::size_t>(effectiveThreadCount(threads), count));

  if (total <= 1 || tlsInSweep) {
    // Serial path: strictly in index order on the calling thread.
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::lock_guard<std::mutex> jobLock(jobMutex_);
  ensureWorkers(total - 1);  // the calling thread is the remaining lane

  {
    std::lock_guard<std::mutex> lock(stateMutex_);
    count_ = count;
    body_ = &body;
    helpersWanted_ = total - 1;
    helpersJoined_ = 0;
    next_.store(0, std::memory_order_relaxed);
    firstError_ = nullptr;
    ++jobId_;
  }
  workCv_.notify_all();

  tlsInSweep = true;
  runSweep(body, count);
  tlsInSweep = false;

  std::unique_lock<std::mutex> lock(stateMutex_);
  doneCv_.wait(lock, [&] { return active_ == 0; });
  body_ = nullptr;
  helpersWanted_ = 0;

  if (firstError_) {
    std::exception_ptr err = firstError_;
    firstError_ = nullptr;
    std::rethrow_exception(err);
  }
}

void parallelFor(std::size_t count,
                 const std::function<void(std::size_t)>& body,
                 unsigned threads) {
  ThreadPool::instance().parallelFor(count, body, threads);
}

}  // namespace vsstat::util
