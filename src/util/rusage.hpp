// Process-isolated resource measurement for Table IV (runtime & memory of
// Monte Carlo campaigns).  Each campaign runs in a forked child so peak RSS
// is attributable to that campaign alone; the parent collects wall time and
// the child's maxrss via wait4(2).
#ifndef VSSTAT_UTIL_RUSAGE_HPP
#define VSSTAT_UTIL_RUSAGE_HPP

#include <functional>
#include <string>

namespace vsstat::util {

/// Result of running a workload in an isolated child process.
struct CampaignUsage {
  double wallSeconds = 0.0;   ///< wall-clock duration of the child
  double cpuSeconds = 0.0;    ///< user+system CPU time of the child
  double maxRssMiB = 0.0;     ///< peak resident set size in MiB
  int exitCode = 0;           ///< child exit status (0 == success)
};

/// Runs `workload` in a forked child process and reports its resource usage.
/// The workload must be self-contained (no shared mutable state with the
/// parent is visible after the fork).  Throws vsstat::Error if fork/wait
/// fails; a workload that throws is reported via a nonzero exitCode.
CampaignUsage runIsolated(const std::function<void()>& workload);

/// In-process fallback (wall/cpu only; maxRssMiB is the *process* high-water
/// mark, not campaign-attributable).  Used on platforms without fork.
CampaignUsage runInProcess(const std::function<void()>& workload);

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_RUSAGE_HPP
