// CSV writer for benchmark series output.  Every bench binary dumps the raw
// series it prints (PDFs, scatters, sweep curves) under out/ so figures can
// be re-plotted outside this repository.
#ifndef VSSTAT_UTIL_CSV_HPP
#define VSSTAT_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace vsstat::util {

/// Streams rows of doubles (plus a header) into a CSV file.  Creates parent
/// directories as needed.  Throws vsstat::Error when the file cannot be
/// opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  CsvWriter(CsvWriter&&) = default;
  CsvWriter& operator=(CsvWriter&&) = default;

  /// Writes a numeric row; arity must match the header.
  void writeRow(const std::vector<double>& values);

  /// Writes a row of preformatted cells; arity must match the header.
  void writeRow(const std::vector<std::string>& cells);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::size_t arity_;
  std::ofstream out_;
};

/// Convenience: dump aligned columns in one call.  All columns must have the
/// same length.
void writeCsv(const std::string& path, const std::vector<std::string>& names,
              const std::vector<std::vector<double>>& columns);

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_CSV_HPP
