// Baseline compilation of the simd_math kernels plus the per-process
// dispatch.  The AVX2+FMA clones live in simd_math_avx2.cpp (same kernel
// bodies, different flags); __builtin_cpu_supports picks the path once.
#include "util/simd_math.hpp"

#include <cstddef>

namespace vsstat::util::simd {

namespace {
#include "util/simd_math_kernels.inc"
}  // namespace

// AVX2+FMA clones (simd_math_avx2.cpp).  Never called unless the CPU
// reports both features.
namespace avx2 {
void expArray(const double* x, double* out, std::size_t n) noexcept;
void logArray(const double* x, double* out, std::size_t n) noexcept;
void log1pArray(const double* x, double* out, std::size_t n) noexcept;
void powArray(const double* base, const double* y, double* out,
              std::size_t n) noexcept;
}  // namespace avx2

namespace {

bool detectAvx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const bool kUseAvx2 = detectAvx2();

}  // namespace

bool usingAvx2() noexcept { return kUseAvx2; }

void expArray(const double* x, double* out, std::size_t n) noexcept {
  if (kUseAvx2) return avx2::expArray(x, out, n);
  kexpArray(x, out, n);
}

void logArray(const double* x, double* out, std::size_t n) noexcept {
  if (kUseAvx2) return avx2::logArray(x, out, n);
  klogArray(x, out, n);
}

void log1pArray(const double* x, double* out, std::size_t n) noexcept {
  if (kUseAvx2) return avx2::log1pArray(x, out, n);
  klog1pArray(x, out, n);
}

void powArray(const double* base, const double* y, double* out,
              std::size_t n) noexcept {
  if (kUseAvx2) return avx2::powArray(base, y, out, n);
  kpowArray(base, y, out, n);
}

}  // namespace vsstat::util::simd
