// AVX2+FMA compilation of the simd_math kernels.  CMake builds exactly
// this file with -mavx2 -mfma (see set_source_files_properties); the
// anonymous-namespace include keeps these instantiations from ODR-merging
// with the baseline ones in simd_math.cpp.  Only reached through the
// runtime dispatch in simd_math.cpp, so the binary stays runnable on
// pre-AVX2 hardware.
#include "util/simd_math.hpp"

#include <cstddef>

namespace vsstat::util::simd::avx2 {

namespace {
#include "util/simd_math_kernels.inc"
}  // namespace

void expArray(const double* x, double* out, std::size_t n) noexcept {
  kexpArray(x, out, n);
}

void logArray(const double* x, double* out, std::size_t n) noexcept {
  klogArray(x, out, n);
}

void log1pArray(const double* x, double* out, std::size_t n) noexcept {
  klog1pArray(x, out, n);
}

void powArray(const double* base, const double* y, double* out,
              std::size_t n) noexcept {
  kpowArray(base, y, out, n);
}

}  // namespace vsstat::util::simd::avx2
