#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace vsstat::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  require(!headers_.empty(), "Table requires at least one column");
}

void Table::addRow(std::vector<std::string> row) {
  require(row.size() == headers_.size(),
          "Table row arity mismatch: expected " +
              std::to_string(headers_.size()) + ", got " +
              std::to_string(row.size()));
  rows_.push_back(std::move(row));
}

void Table::addSeparator() { rows_.emplace_back(); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }

  const auto printLine = [&](const std::vector<std::string>& cells) {
    os << "| ";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size(), ' ');
      os << (c + 1 == headers_.size() ? " |" : " | ");
    }
    os << '\n';
  };
  const auto printRule = [&] {
    os << "+-";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(widths[c], '-');
      os << (c + 1 == headers_.size() ? "-+" : "-+-");
    }
    os << '\n';
  };

  printRule();
  printLine(headers_);
  printRule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      printRule();
    } else {
      printLine(row);
    }
  }
  printRule();
}

std::string formatValue(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string formatSci(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::scientific);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

std::string formatEng(double v, const std::string& unit, int precision) {
  struct Scale {
    double factor;
    const char* prefix;
  };
  static constexpr Scale kScales[] = {
      {1e-15, "f"}, {1e-12, "p"}, {1e-9, "n"}, {1e-6, "u"},
      {1e-3, "m"},  {1.0, ""},    {1e3, "k"},  {1e6, "M"},
      {1e9, "G"}};
  if (v == 0.0 || !std::isfinite(v)) {
    return formatValue(v, precision) + " " + unit;
  }
  const double mag = std::fabs(v);
  const Scale* best = &kScales[5];
  for (const auto& s : kScales) {
    if (mag >= s.factor) best = &s;
  }
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v / best->factor << ' ' << best->prefix << unit;
  return ss.str();
}

}  // namespace vsstat::util
