#include "util/rusage.hpp"

#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"

namespace vsstat::util {

namespace {

double rusageCpuSeconds(const rusage& ru) {
  const auto tv = [](const timeval& t) {
    return static_cast<double>(t.tv_sec) + static_cast<double>(t.tv_usec) * 1e-6;
  };
  return tv(ru.ru_utime) + tv(ru.ru_stime);
}

}  // namespace

CampaignUsage runIsolated(const std::function<void()>& workload) {
  const auto start = std::chrono::steady_clock::now();
  const pid_t pid = ::fork();
  if (pid < 0) throw Error("runIsolated: fork failed");
  if (pid == 0) {
    // Child: run the workload and exit without running parent-side atexit
    // handlers or flushing shared stdio buffers twice.
    int code = 0;
    try {
      workload();
    } catch (const std::exception&) {
      code = 1;
    } catch (...) {
      code = 2;
    }
    ::_exit(code);
  }

  int status = 0;
  rusage ru{};
  if (::wait4(pid, &status, 0, &ru) < 0) throw Error("runIsolated: wait4 failed");
  const auto end = std::chrono::steady_clock::now();

  CampaignUsage usage;
  usage.wallSeconds = std::chrono::duration<double>(end - start).count();
  usage.cpuSeconds = rusageCpuSeconds(ru);
  // Linux reports ru_maxrss in KiB.
  usage.maxRssMiB = static_cast<double>(ru.ru_maxrss) / 1024.0;
  usage.exitCode = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return usage;
}

CampaignUsage runInProcess(const std::function<void()>& workload) {
  const auto start = std::chrono::steady_clock::now();
  rusage before{};
  ::getrusage(RUSAGE_SELF, &before);
  int code = 0;
  try {
    workload();
  } catch (const std::exception&) {
    code = 1;
  }
  rusage after{};
  ::getrusage(RUSAGE_SELF, &after);
  const auto end = std::chrono::steady_clock::now();

  CampaignUsage usage;
  usage.wallSeconds = std::chrono::duration<double>(end - start).count();
  usage.cpuSeconds = rusageCpuSeconds(after) - rusageCpuSeconds(before);
  usage.maxRssMiB = static_cast<double>(after.ru_maxrss) / 1024.0;
  usage.exitCode = code;
  return usage;
}

}  // namespace vsstat::util
