// Exception hierarchy and precondition checks for the vsstat library.
//
// All library errors derive from vsstat::Error so callers can catch the
// whole family with one handler.  Errors a Monte Carlo campaign may
// legitimately see on an extreme-mismatch sample derive from SampleFailure
// and carry a FailureClass, so the campaign runner can drop-and-classify
// them (mc::McResult taxonomy) while anything else -- a programming error,
// a violated precondition -- propagates and aborts the campaign.
#ifndef VSSTAT_UTIL_ERROR_HPP
#define VSSTAT_UTIL_ERROR_HPP

#include <stdexcept>
#include <string>

namespace vsstat {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad size, bad range, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// Why a Monte Carlo sample failed.  The campaign runner counts failures
/// per class (mc::McResult::failuresByClass) so yield estimates can reason
/// about WHAT was dropped instead of silently renormalizing over survivors.
enum class FailureClass {
  singular,        ///< Jacobian singular to working precision (SparseLu)
  nonConvergence,  ///< iterative method exhausted its budget
  nonFinite,       ///< NaN/Inf crossed a layer seam (bank, fast chain, measure)
  metricDomain,    ///< solve succeeded but the metric is undefined/degenerate
  unclassified,    ///< legacy SampleFailure with no specific class
};
inline constexpr int kFailureClassCount = 5;

[[nodiscard]] inline const char* toString(FailureClass c) noexcept {
  switch (c) {
    case FailureClass::singular: return "singular";
    case FailureClass::nonConvergence: return "non-convergence";
    case FailureClass::nonFinite: return "non-finite";
    case FailureClass::metricDomain: return "metric-domain";
    case FailureClass::unclassified: return "unclassified";
  }
  return "unclassified";
}

/// Base of every error a campaign may count as a dropped/failed sample.
/// mc::runCampaign catches exactly this family; everything else is a
/// programming error and propagates out of the campaign.
class SampleFailure : public Error {
 public:
  SampleFailure(const std::string& what, FailureClass failureClass)
      : Error(what), class_(failureClass) {}

  [[nodiscard]] FailureClass failureClass() const noexcept { return class_; }

 private:
  FailureClass class_;
};

/// An iterative numerical method (Newton, NNLS, LM, bisection) failed to
/// converge within its budget.  Carries the iteration count for diagnostics.
class ConvergenceError : public SampleFailure {
 public:
  ConvergenceError(const std::string& what, int iterations)
      : ConvergenceError(what, iterations, FailureClass::nonConvergence) {}

  [[nodiscard]] int iterations() const noexcept { return iterations_; }

 protected:
  ConvergenceError(const std::string& what, int iterations, FailureClass cls)
      : SampleFailure(
            what + " (after " + std::to_string(iterations) + " iterations)",
            cls),
        iterations_(iterations) {}

 private:
  int iterations_ = 0;
};

/// A matrix came out singular to working precision (near-zero pivot).
/// Derives from ConvergenceError so every existing retry/homotopy handler
/// that catches ConvergenceError keeps working; campaigns see the finer
/// FailureClass::singular.
class SingularMatrixError : public ConvergenceError {
 public:
  SingularMatrixError(const std::string& what, int pivotIndex)
      : ConvergenceError(what, pivotIndex, FailureClass::singular) {}
};

/// NaN or Inf crossed a guarded layer seam: device-bank lane output, the
/// fast-numerics chain, a Newton residual, or a measurement input.
class NonFiniteError : public SampleFailure {
 public:
  explicit NonFiniteError(const std::string& what)
      : SampleFailure(what, FailureClass::nonFinite) {}
};

/// The solve succeeded but the requested metric does not exist for this
/// sample (output never switched, butterfly is monostable, delay came out
/// non-physical) -- a failing CORNER, not a failing solver.
class MetricDomainError : public SampleFailure {
 public:
  explicit MetricDomainError(const std::string& what)
      : SampleFailure(what, FailureClass::metricDomain) {}
};

/// Statistical extraction (BPV / fitting) failed, e.g. the stacked system
/// is rank deficient or a variance came out non-physical.
class ExtractionError : public Error {
 public:
  explicit ExtractionError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgumentError when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgumentError(message);
}

/// Literal-message overload for hot paths: the message string is only
/// materialized on failure, so a passing check performs no allocation.
inline void require(bool condition, const char* message) {
  if (!condition) throw InvalidArgumentError(message);
}

}  // namespace vsstat

#endif  // VSSTAT_UTIL_ERROR_HPP
