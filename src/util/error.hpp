// Exception hierarchy and precondition checks for the vsstat library.
//
// All library errors derive from vsstat::Error so callers can catch the
// whole family with one handler while still distinguishing convergence
// failures (retryable with different settings) from usage errors.
#ifndef VSSTAT_UTIL_ERROR_HPP
#define VSSTAT_UTIL_ERROR_HPP

#include <stdexcept>
#include <string>

namespace vsstat {

/// Base class for every error thrown by this library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad size, bad range, ...).
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// An iterative numerical method (Newton, NNLS, LM, bisection) failed to
/// converge within its budget.  Carries the iteration count for diagnostics.
class ConvergenceError : public Error {
 public:
  ConvergenceError(const std::string& what, int iterations)
      : Error(what + " (after " + std::to_string(iterations) + " iterations)"),
        iterations_(iterations) {}

  [[nodiscard]] int iterations() const noexcept { return iterations_; }

 private:
  int iterations_ = 0;
};

/// Statistical extraction (BPV / fitting) failed, e.g. the stacked system
/// is rank deficient or a variance came out non-physical.
class ExtractionError : public Error {
 public:
  explicit ExtractionError(const std::string& what) : Error(what) {}
};

/// Throws InvalidArgumentError when `condition` is false.
inline void require(bool condition, const std::string& message) {
  if (!condition) throw InvalidArgumentError(message);
}

/// Literal-message overload for hot paths: the message string is only
/// materialized on failure, so a passing check performs no allocation.
inline void require(bool condition, const char* message) {
  if (!condition) throw InvalidArgumentError(message);
}

}  // namespace vsstat

#endif  // VSSTAT_UTIL_ERROR_HPP
