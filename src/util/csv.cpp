#include "util/csv.hpp"

#include <filesystem>
#include <sstream>

#include "util/error.hpp"

namespace vsstat::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), arity_(columns.size()) {
  require(!columns.empty(), "CsvWriter requires at least one column");
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  out_.open(path);
  if (!out_) throw Error("CsvWriter: cannot open '" + path + "'");
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << columns[i] << (i + 1 == columns.size() ? "\n" : ",");
  }
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::writeRow(const std::vector<double>& values) {
  require(values.size() == arity_, "CsvWriter row arity mismatch");
  std::ostringstream ss;
  ss.precision(10);
  for (std::size_t i = 0; i < values.size(); ++i) {
    ss << values[i] << (i + 1 == values.size() ? "\n" : ",");
  }
  out_ << ss.str();
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  require(cells.size() == arity_, "CsvWriter row arity mismatch");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << cells[i] << (i + 1 == cells.size() ? "\n" : ",");
  }
}

void writeCsv(const std::string& path, const std::vector<std::string>& names,
              const std::vector<std::vector<double>>& columns) {
  require(names.size() == columns.size(),
          "writeCsv: names/columns size mismatch");
  require(!columns.empty(), "writeCsv: no columns");
  const std::size_t n = columns.front().size();
  for (const auto& c : columns) {
    require(c.size() == n, "writeCsv: ragged columns");
  }
  CsvWriter w(path, names);
  std::vector<double> row(columns.size());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < columns.size(); ++c) row[c] = columns[c][i];
    w.writeRow(row);
  }
}

}  // namespace vsstat::util
