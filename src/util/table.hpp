// Console table printer used by the benchmark harness to emit paper-style
// tables (Table II, III, IV, ...) with aligned columns.
#ifndef VSSTAT_UTIL_TABLE_HPP
#define VSSTAT_UTIL_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace vsstat::util {

/// A simple left/right aligned text table.  Rows are added as strings (use
/// formatValue/formatSci below to render numbers consistently).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the header row.
  void addRow(std::vector<std::string> row);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table with column alignment and a header underline.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columnCount() const noexcept { return headers_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

/// Fixed-precision decimal rendering ("0.01234").
[[nodiscard]] std::string formatValue(double v, int precision = 4);

/// Scientific rendering ("1.234e-05").
[[nodiscard]] std::string formatSci(double v, int precision = 3);

/// Engineering-style rendering with a unit suffix chosen from {p,n,u,m,-,k,M,G}.
[[nodiscard]] std::string formatEng(double v, const std::string& unit,
                                    int precision = 3);

}  // namespace vsstat::util

#endif  // VSSTAT_UTIL_TABLE_HPP
