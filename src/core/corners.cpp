#include "core/corners.hpp"

#include <cmath>
#include <sstream>

#include "extract/sensitivity.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::core {

namespace {

/// Whether the corner is fast for the given polarity (TT handled before).
bool fastFor(Corner c, models::DeviceType t) noexcept {
  const bool isN = t == models::DeviceType::Nmos;
  switch (c) {
    case Corner::FF:
      return true;
    case Corner::SS:
      return false;
    case Corner::FS:
      return isN;
    case Corner::SF:
      return !isN;
    case Corner::TT:
      break;
  }
  return true;
}

}  // namespace

const char* toString(Corner c) noexcept {
  switch (c) {
    case Corner::TT:
      return "TT";
    case Corner::FF:
      return "FF";
    case Corner::SS:
      return "SS";
    case Corner::FS:
      return "FS";
    case Corner::SF:
      return "SF";
  }
  return "?";
}

StatisticalCorners::StatisticalCorners(const StatisticalVsKit& kit,
                                       const CornerOptions& options)
    : kit_(kit), options_(options) {
  require(options_.nSigma > 0.0, "StatisticalCorners: nSigma must be > 0");
  require(options_.vdd > 0.0, "StatisticalCorners: vdd must be > 0");
  nmos_ = derive(kit.nominal(models::DeviceType::Nmos),
                 kit.alphas(models::DeviceType::Nmos), options_);
  pmos_ = derive(kit.nominal(models::DeviceType::Pmos),
                 kit.alphas(models::DeviceType::Pmos), options_);
}

StatisticalCorners::PolarityCorner StatisticalCorners::derive(
    const models::VsParams& card, const models::PelgromAlphas& a,
    const CornerOptions& options) {
  const models::DeviceGeometry geom = options.referenceGeometry;
  const linalg::Matrix sens =
      extract::targetSensitivities(card, geom, options.vdd);
  const models::ParameterSigmas s = models::sigmasFor(a, geom);

  const auto idsatRow = static_cast<std::size_t>(extract::Target::Idsat);
  const std::array<double, extract::kParameterCount> sigma = {
      s.sVt0, s.sLeff, s.sWeff, s.sMu, s.sCinv};
  std::array<double, extract::kParameterCount> g{};
  double var = 0.0;
  for (std::size_t j = 0; j < extract::kParameterCount; ++j) {
    g[j] = sens(idsatRow, j);
    var += g[j] * sigma[j] * g[j] * sigma[j];
  }
  require(var > 0.0, "StatisticalCorners: zero Idsat variance");
  const double sigmaIdsat = std::sqrt(var);

  // Most-probable point for a +/- nSigma Idsat excursion of a linear
  // target: delta_j = +/- n sigma_j^2 g_j / sigma_e.
  PolarityCorner pc;
  const double scale = options.nSigma / sigmaIdsat;
  const auto fill = [&](models::VariationDelta& d, double sign) {
    d.dVt0 = sign * scale * sigma[0] * sigma[0] * g[0];
    d.dLeff = sign * scale * sigma[1] * sigma[1] * g[1];
    d.dWeff = sign * scale * sigma[2] * sigma[2] * g[2];
    d.dMu = sign * scale * sigma[3] * sigma[3] * g[3];
    d.dCinv = sign * scale * sigma[4] * sigma[4] * g[4];
  };
  fill(pc.fast, 1.0);
  fill(pc.slow, -1.0);

  const models::VsModel nominal(card);
  pc.idsatNominal = nominal.drainCurrent(geom, options.vdd, options.vdd);
  pc.idsatSigma = sigmaIdsat;
  return pc;
}

const models::VariationDelta& StatisticalCorners::delta(
    Corner corner, models::DeviceType type) const noexcept {
  if (corner == Corner::TT) return zero_;
  const PolarityCorner& pc =
      type == models::DeviceType::Nmos ? nmos_ : pmos_;
  return fastFor(corner, type) ? pc.fast : pc.slow;
}

double StatisticalCorners::predictedIdsatRatio(
    Corner corner, models::DeviceType type) const noexcept {
  if (corner == Corner::TT) return 1.0;
  const PolarityCorner& pc =
      type == models::DeviceType::Nmos ? nmos_ : pmos_;
  const double sign = fastFor(corner, type) ? 1.0 : -1.0;
  return 1.0 + sign * options_.nSigma * pc.idsatSigma / pc.idsatNominal;
}

namespace {

/// Applies a fixed per-polarity delta to every requested instance.
class CornerProvider final : public circuits::DeviceProvider {
 public:
  CornerProvider(const StatisticalVsKit& kit,
                 models::VariationDelta nmosDelta,
                 models::VariationDelta pmosDelta)
      : kit_(kit), nmos_(nmosDelta), pmos_(pmosDelta) {}

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string&,
      const models::DeviceGeometry& nominal) override {
    const models::VariationDelta& d =
        type == models::DeviceType::Nmos ? nmos_ : pmos_;
    return {std::make_unique<models::VsModel>(
                models::applyToVs(kit_.nominal(type), d)),
            models::applyGeometry(nominal, d)};
  }

 private:
  const StatisticalVsKit& kit_;
  models::VariationDelta nmos_;
  models::VariationDelta pmos_;
};

}  // namespace

std::unique_ptr<circuits::DeviceProvider> StatisticalCorners::makeProvider(
    Corner corner) const {
  return std::make_unique<CornerProvider>(
      kit_, delta(corner, models::DeviceType::Nmos),
      delta(corner, models::DeviceType::Pmos));
}

std::string StatisticalCorners::summary() const {
  std::ostringstream os;
  os << "Statistical corners at " << options_.nSigma << " sigma (W/L = "
     << options_.referenceGeometry.widthNm() << "/"
     << options_.referenceGeometry.lengthNm() << " nm)\n";
  for (const Corner c : kAllCorners) {
    os << "  " << toString(c) << ":";
    for (const auto type :
         {models::DeviceType::Nmos, models::DeviceType::Pmos}) {
      const models::VariationDelta& d = delta(c, type);
      os << "  " << models::toString(type) << " dVT0 = " << d.dVt0 * 1e3
         << " mV, dLeff = " << d.dLeff * 1e9 << " nm, Idsat x"
         << predictedIdsatRatio(c, type);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace vsstat::core
