// StatisticalVsKit -- the paper's headline deliverable as a public API.
//
// A kit bundles, per polarity, the *fitted nominal* VS card and the
// *BPV-extracted* Pelgrom alpha coefficients.  From it a user can:
//   * query mismatch sigmas for any geometry (Pelgrom laws, Eq. 7/8),
//   * draw per-instance device cards for Monte Carlo (vxo coupling of
//     Eq. 5 included),
//   * build a DeviceProvider to drop into any benchmark circuit.
//
// StatisticalVsKit::characterize() runs the paper's full flow end-to-end:
// Fig. 1 nominal fit -> golden-kit variance measurement -> BPV solve
// (Eq. 10) -> validated statistical model.
#ifndef VSSTAT_CORE_STATISTICAL_VS_HPP
#define VSSTAT_CORE_STATISTICAL_VS_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "circuits/provider.hpp"
#include "extract/bpv.hpp"
#include "extract/fit.hpp"
#include "extract/golden_meter.hpp"
#include "models/process_variation.hpp"
#include "models/vs_params.hpp"
#include "stats/rng.hpp"

namespace vsstat::core {

struct CharacterizeOptions {
  /// MC samples per geometry when "measuring" the golden kit (paper: >1000).
  int samplesPerGeometry = 1000;
  std::uint64_t seed = 20130318;  // DATE'13 ;-)
  /// Use analytic golden variances instead of MC (noise-free extraction;
  /// useful for tests and the ablation bench).
  bool analyticGoldenVariance = false;
  extract::FitOptions fit;
  extract::BpvOptions bpv;
};

class StatisticalVsKit {
 public:
  /// Assembles a kit from already-known cards/alphas.
  StatisticalVsKit(models::VsParams nmos, models::VsParams pmos,
                   models::PelgromAlphas nmosAlphas,
                   models::PelgromAlphas pmosAlphas, double vdd);

  /// The full paper flow against a golden design kit.
  [[nodiscard]] static StatisticalVsKit characterize(
      const extract::GoldenKit& golden, const CharacterizeOptions& options = {});

  [[nodiscard]] const models::VsParams& nominal(models::DeviceType t) const noexcept {
    return t == models::DeviceType::Nmos ? nmos_ : pmos_;
  }
  [[nodiscard]] const models::PelgromAlphas& alphas(models::DeviceType t) const noexcept {
    return t == models::DeviceType::Nmos ? nmosAlphas_ : pmosAlphas_;
  }
  [[nodiscard]] double vdd() const noexcept { return vdd_; }

  /// Mismatch sigmas at a geometry (SI).
  [[nodiscard]] models::ParameterSigmas sigmas(
      models::DeviceType t, const models::DeviceGeometry& geom) const;

  /// One sampled device instance (model card + perturbed geometry).
  [[nodiscard]] circuits::DeviceInstance makeInstance(
      models::DeviceType t, const models::DeviceGeometry& geom,
      stats::Rng& rng) const;

  /// Statistical provider for circuit Monte Carlo; each provider owns an
  /// independent RNG stream.
  [[nodiscard]] std::unique_ptr<circuits::DeviceProvider> makeProvider(
      stats::Rng rng) const;

  /// Nominal (mismatch-free) provider with the fitted cards.
  [[nodiscard]] std::unique_ptr<circuits::DeviceProvider> makeNominalProvider()
      const;

  /// Human-readable report (cards + Table II style alphas).
  [[nodiscard]] std::string summary() const;

 private:
  models::VsParams nmos_;
  models::VsParams pmos_;
  models::PelgromAlphas nmosAlphas_;
  models::PelgromAlphas pmosAlphas_;
  double vdd_ = 0.9;
};

}  // namespace vsstat::core

#endif  // VSSTAT_CORE_STATISTICAL_VS_HPP
