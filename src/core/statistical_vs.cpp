#include "core/statistical_vs.hpp"

#include <sstream>

#include "mc/providers.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::core {

StatisticalVsKit::StatisticalVsKit(models::VsParams nmos,
                                   models::VsParams pmos,
                                   models::PelgromAlphas nmosAlphas,
                                   models::PelgromAlphas pmosAlphas,
                                   double vdd)
    : nmos_(nmos), pmos_(pmos), nmosAlphas_(nmosAlphas),
      pmosAlphas_(pmosAlphas), vdd_(vdd) {
  require(nmos_.type == models::DeviceType::Nmos,
          "StatisticalVsKit: first card must be NMOS");
  require(pmos_.type == models::DeviceType::Pmos,
          "StatisticalVsKit: second card must be PMOS");
  require(vdd_ > 0.0, "StatisticalVsKit: vdd must be positive");
}

StatisticalVsKit StatisticalVsKit::characterize(
    const extract::GoldenKit& golden, const CharacterizeOptions& options) {
  CharacterizeOptions opt = options;
  opt.fit.vdd = golden.vdd;
  opt.bpv.vdd = golden.vdd;

  // Reference geometry for the nominal fit, as in the paper's Fig. 1.
  const models::DeviceGeometry fitGeom = models::geometryNm(300, 40);

  const auto characterizeOne = [&](models::DeviceType type) {
    const models::VsParams seed = type == models::DeviceType::Nmos
                                      ? models::defaultVsNmos()
                                      : models::defaultVsPmos();
    const models::BsimParams& goldenCard =
        type == models::DeviceType::Nmos ? golden.nmos : golden.pmos;

    // Step 1 (Fig. 1): fit the nominal VS card to the golden I-V/C-V.
    const models::BsimLite goldenModel(goldenCard);
    const extract::IvFitResult fit =
        extract::fitVsToGolden(seed, goldenModel, fitGeom, opt.fit);

    // Step 2: measure target variances across the geometry set.
    const std::vector<models::DeviceGeometry> geoms =
        extract::extractionGeometries();
    std::vector<extract::GeometryMeasurement> meas;
    if (opt.analyticGoldenVariance) {
      meas.reserve(geoms.size());
      for (const auto& g : geoms)
        meas.push_back(extract::analyticGoldenVariance(golden, type, g));
    } else {
      extract::GoldenMeterOptions gm;
      gm.samples = opt.samplesPerGeometry;
      gm.seed = opt.seed + (type == models::DeviceType::Nmos ? 0 : 0x9E37);
      meas = extract::measureGoldenVariances(golden, type, geoms, gm);
    }

    // Step 3 (Eq. 10): backward propagation of variance.  Cinv is
    // "measured directly" from the golden kit (the paper measures oxide
    // thickness), so its coefficient is handed to BPV rather than solved.
    extract::BpvOptions bpvOpt = opt.bpv;
    if (!bpvOpt.solveCinvByBpv) {
      bpvOpt.aCinvDirect = type == models::DeviceType::Nmos
                               ? golden.nmosMismatch.aCox
                               : golden.pmosMismatch.aCox;
    }
    const extract::BpvResult bpv = extract::solveBpv(fit.card, meas, bpvOpt);
    return std::make_pair(fit.card, bpv.alphas);
  };

  const auto [nCard, nAlphas] = characterizeOne(models::DeviceType::Nmos);
  const auto [pCard, pAlphas] = characterizeOne(models::DeviceType::Pmos);
  return StatisticalVsKit(nCard, pCard, nAlphas, pAlphas, golden.vdd);
}

models::ParameterSigmas StatisticalVsKit::sigmas(
    models::DeviceType t, const models::DeviceGeometry& geom) const {
  return models::sigmasFor(alphas(t), geom);
}

circuits::DeviceInstance StatisticalVsKit::makeInstance(
    models::DeviceType t, const models::DeviceGeometry& geom,
    stats::Rng& rng) const {
  const models::ParameterSigmas s = sigmas(t, geom);
  const models::VariationDelta delta = models::sampleDelta(s, rng);

  circuits::DeviceInstance inst;
  inst.model =
      std::make_unique<models::VsModel>(models::applyToVs(nominal(t), delta));
  inst.geometry = models::applyGeometry(geom, delta);
  return inst;
}

std::unique_ptr<circuits::DeviceProvider> StatisticalVsKit::makeProvider(
    stats::Rng rng) const {
  return std::make_unique<mc::VsStatisticalProvider>(nmos_, pmos_, nmosAlphas_,
                                                     pmosAlphas_, rng);
}

std::unique_ptr<circuits::DeviceProvider>
StatisticalVsKit::makeNominalProvider() const {
  const models::VsModel n(nmos_);
  const models::VsModel p(pmos_);
  return std::make_unique<circuits::NominalProvider>(n, p);
}

std::string StatisticalVsKit::summary() const {
  std::ostringstream os;
  const auto printCard = [&os](const char* label, const models::VsParams& c) {
    os << label << ": VT0=" << c.vt0 << " V, delta0=" << c.delta0
       << ", n0=" << c.n0 << ", vxo=" << c.vxo / 1e5 << "e5 m/s"
       << ", mu=" << c.mu * 1e4 << " cm^2/Vs"
       << ", Cinv=" << c.cinv * 1e2 << " uF/cm^2, beta=" << c.beta << "\n";
  };
  const auto printAlphas = [&os](const char* label,
                                 const models::PelgromAlphas& a) {
    os << label << " alphas: a1(VT0)=" << a.aVt0 << " V nm, a2(Leff)="
       << a.aLeff << " nm, a3(Weff)=" << a.aWeff << " nm, a4(mu)=" << a.aMu
       << " nm cm^2/Vs, a5(Cinv)=" << a.aCinv << " nm uF/cm^2\n";
  };
  os << "StatisticalVsKit @ Vdd=" << vdd_ << " V\n";
  printCard("  NMOS card", nmos_);
  printAlphas("  NMOS", nmosAlphas_);
  printCard("  PMOS card", pmos_);
  printAlphas("  PMOS", pmosAlphas_);
  return os.str();
}

}  // namespace vsstat::core
