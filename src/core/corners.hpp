// Statistical design corners from the extracted VS variability model.
//
// Classic corner methodology (McAndrew, ISQED'03 -- the paper's ref [12])
// derives FF/SS/FS/SF cards from the statistical model instead of ad-hoc
// skews: each corner is the most-probable parameter-space point that moves
// the polarity's Idsat by +/- n sigma.  For a linear target e = g'p with
// independent Gaussian parameters, that point is
//
//   delta_j = +/- n * sigma_j^2 * g_j / sqrt(sum_k (g_k sigma_k)^2),
//
// i.e. the sigma-scaled gradient direction.  Sigmas come from the
// Pelgrom alphas evaluated at a reference geometry and are interpreted as
// a die-level (global) skew applied identically to every instance -- the
// Eq. (1) composition's inter-die slot.
#ifndef VSSTAT_CORE_CORNERS_HPP
#define VSSTAT_CORE_CORNERS_HPP

#include <array>
#include <memory>
#include <string>

#include "circuits/provider.hpp"
#include "core/statistical_vs.hpp"
#include "models/process_variation.hpp"

namespace vsstat::core {

/// Five-corner set: first letter NMOS speed, second PMOS speed.
enum class Corner { TT, FF, SS, FS, SF };

inline constexpr std::array<Corner, 5> kAllCorners = {
    Corner::TT, Corner::FF, Corner::SS, Corner::FS, Corner::SF};

[[nodiscard]] const char* toString(Corner c) noexcept;

struct CornerOptions {
  double nSigma = 3.0;  ///< corner distance in Idsat sigmas
  models::DeviceGeometry referenceGeometry{300e-9, 40e-9};
  double vdd = 0.9;
};

/// Derives and holds the five corner deltas for a calibrated kit.
class StatisticalCorners {
 public:
  StatisticalCorners(const StatisticalVsKit& kit,
                     const CornerOptions& options = {});

  /// The per-polarity parameter shift at this corner (zero for TT).
  [[nodiscard]] const models::VariationDelta& delta(
      Corner corner, models::DeviceType type) const noexcept;

  /// First-order predicted Idsat at the corner relative to nominal
  /// (e.g. 1.08 for a fast corner), at the reference geometry.
  [[nodiscard]] double predictedIdsatRatio(
      Corner corner, models::DeviceType type) const noexcept;

  /// Device provider applying this corner's skew to every instance
  /// (cards and geometry both shifted; no random component).
  [[nodiscard]] std::unique_ptr<circuits::DeviceProvider> makeProvider(
      Corner corner) const;

  [[nodiscard]] const CornerOptions& options() const noexcept {
    return options_;
  }

  /// Human-readable corner report (per-corner VT0/Leff/mu shifts).
  [[nodiscard]] std::string summary() const;

 private:
  struct PolarityCorner {
    models::VariationDelta fast;  ///< +nSigma Idsat shift
    models::VariationDelta slow;  ///< -nSigma Idsat shift
    double idsatNominal = 0.0;
    double idsatSigma = 0.0;  ///< first-order sigma at the reference geom
  };

  [[nodiscard]] static PolarityCorner derive(const models::VsParams& card,
                                             const models::PelgromAlphas& a,
                                             const CornerOptions& options);

  const StatisticalVsKit& kit_;
  CornerOptions options_;
  PolarityCorner nmos_;
  PolarityCorner pmos_;
  models::VariationDelta zero_{};
};

}  // namespace vsstat::core

#endif  // VSSTAT_CORE_CORNERS_HPP
