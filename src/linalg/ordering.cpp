#include "linalg/ordering.hpp"

#include <algorithm>
#include <limits>

namespace vsstat::linalg {

int permutationSign(const std::vector<std::size_t>& perm) {
  const std::size_t n = perm.size();
  std::vector<char> seen(n, 0);
  int sign = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (seen[i]) continue;
    std::size_t len = 0;
    std::size_t j = i;
    while (!seen[j]) {
      seen[j] = 1;
      j = perm[j];
      ++len;
    }
    if (len % 2 == 0) sign = -sign;
  }
  return sign;
}

FillOrder minDegreeOrder(const SparsePattern& pattern) {
  const std::size_t n = pattern.size();
  FillOrder out;
  out.perm.reserve(n);

  // Symmetrized adjacency of A + A^T, sorted and deduplicated per vertex.
  std::vector<std::vector<std::size_t>> adj(n);
  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  for (std::size_t s = 0; s < pattern.nonZeroCount(); ++s) {
    if (rows[s] == cols[s]) continue;
    adj[rows[s]].push_back(cols[s]);
    adj[cols[s]].push_back(rows[s]);
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<char> eliminated(n, 0);
  std::vector<std::size_t> merged;  // union scratch, reused across steps
  for (std::size_t step = 0; step < n; ++step) {
    // Lowest-index vertex of minimum degree among the survivors.  The linear
    // scan keeps the whole ordering O(n^2 + fill) -- a once-per-pattern cost
    // that is noise next to the factorizations it accelerates.
    std::size_t best = n;
    std::size_t bestDeg = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (!eliminated[i]) {
        if (adj[i].size() < bestDeg) {
          bestDeg = adj[i].size();
          best = i;
        }
      }
    }
    out.perm.push_back(best);
    eliminated[best] = 1;

    // Eliminating `best` turns its neighborhood into a clique: every
    // surviving neighbor u absorbs (adj[best] \ {u}) and drops `best`.
    const std::vector<std::size_t>& clique = adj[best];
    for (const std::size_t u : clique) {
      std::vector<std::size_t>& au = adj[u];
      merged.clear();
      std::size_t i = 0;
      std::size_t j = 0;
      while (i < au.size() && j < clique.size()) {
        const std::size_t a = au[i];
        const std::size_t b = clique[j];
        if (a == best) {
          ++i;
        } else if (b == u) {
          ++j;
        } else if (a < b) {
          merged.push_back(a);
          ++i;
        } else if (b < a) {
          merged.push_back(b);
          ++j;
        } else {
          merged.push_back(a);
          ++i;
          ++j;
        }
      }
      for (; i < au.size(); ++i) {
        if (au[i] != best) merged.push_back(au[i]);
      }
      for (; j < clique.size(); ++j) {
        if (clique[j] != u) merged.push_back(clique[j]);
      }
      au.assign(merged.begin(), merged.end());
    }
    adj[best].clear();
  }

  out.sign = permutationSign(out.perm);
  return out;
}

}  // namespace vsstat::linalg
