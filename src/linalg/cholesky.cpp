#include "linalg/cholesky.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vsstat::linalg {

Matrix choleskyFactor(const Matrix& a) {
  require(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) {
      throw ConvergenceError("Cholesky: matrix not positive definite",
                             static_cast<int>(j));
    }
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / l(j, j);
    }
  }
  return l;
}

Vector choleskySolve(const Matrix& a, const Vector& b) {
  const Matrix l = choleskyFactor(a);
  const std::size_t n = l.rows();
  require(b.size() == n, "choleskySolve: rhs size mismatch");

  // Forward: L y = b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
    y[i] = s / l(i, i);
  }
  // Backward: L^T x = y.
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l(k, ii) * x[k];
    x[ii] = s / l(ii, ii);
  }
  return x;
}

}  // namespace vsstat::linalg
