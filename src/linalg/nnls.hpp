// Non-negative least squares (Lawson–Hanson active set algorithm).
//
// BPV solves the stacked variance system (paper Eq. 10) for the *squared*
// Pelgrom coefficients alpha_j^2, which are physically non-negative; plain
// least squares can return negative variances when measurement noise is
// large, so the extraction uses NNLS.
#ifndef VSSTAT_LINALG_NNLS_HPP
#define VSSTAT_LINALG_NNLS_HPP

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

struct NnlsResult {
  Vector x;             ///< solution with x[i] >= 0
  double residualNorm;  ///< ||A x - b||_2
  int iterations;       ///< outer-loop iterations used
};

/// Minimizes ||A x - b||_2 subject to x >= 0.
/// Throws ConvergenceError if the active-set loop exceeds `maxIterations`.
[[nodiscard]] NnlsResult nnls(const Matrix& a, const Vector& b,
                              int maxIterations = 300);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_NNLS_HPP
