// Compressed-sparse-row pattern/value split for the MNA Newton hot path.
//
// The circuit engine solves the same topology thousands of times per Monte
// Carlo campaign (Newton iterations x transient steps x samples), so the
// sparsity structure of the Jacobian is captured exactly once per circuit
// (the "symbolic" phase) and every subsequent assembly writes straight into
// preallocated pattern slots.  Coordinate -> slot resolution is a binary
// search over the row's column indices: O(log nnz(row)) with nnz(row) in
// the single digits for MNA stamps, and -- unlike the dense n*n lookup
// table it replaced -- O(nnz) memory, so grid-scale patterns (64x64 mesh,
// ~4k unknowns) stay linear instead of costing ~128 MiB of table.
#ifndef VSSTAT_LINALG_SPARSE_HPP
#define VSSTAT_LINALG_SPARSE_HPP

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// Immutable CSR sparsity structure of a square matrix.
///
/// Built once from a coordinate list (duplicates collapse into one slot);
/// afterwards `slot(r, c)` resolves a coordinate to its value index with a
/// binary search over the row's sorted column indices.
class SparsePattern {
 public:
  SparsePattern() = default;

  /// Builds the pattern for an n x n matrix from (row, col) coordinates.
  /// Coordinates may repeat; each distinct position gets exactly one slot.
  SparsePattern(std::size_t n,
                const std::vector<std::pair<std::size_t, std::size_t>>& coords);

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t nonZeroCount() const noexcept {
    return colIndex_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }

  /// Slot index of (r, c), or -1 when the position is structurally zero.
  [[nodiscard]] std::int32_t slot(std::size_t r, std::size_t c) const noexcept {
    // Binary search over the row's ascending column indices.  Row fan-out on
    // MNA patterns is a handful of entries, so this is 2-3 probes.
    std::size_t lo = rowStart_[r];
    std::size_t hi = rowStart_[r + 1];
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (colIndex_[mid] < c) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < rowStart_[r + 1] && colIndex_[lo] == c)
      return static_cast<std::int32_t>(lo);
    return -1;
  }

  /// CSR row boundaries: slots of row r are [rowStart()[r], rowStart()[r+1]).
  [[nodiscard]] const std::vector<std::size_t>& rowStart() const noexcept {
    return rowStart_;
  }
  /// Column of each slot (CSR order: by row, then by column).
  [[nodiscard]] const std::vector<std::size_t>& colIndex() const noexcept {
    return colIndex_;
  }
  /// Row of each slot (redundant with rowStart, kept for O(1) scatter).
  [[nodiscard]] const std::vector<std::size_t>& rowIndex() const noexcept {
    return rowIndex_;
  }

  /// Fraction of structurally zero entries, in [0, 1].
  [[nodiscard]] double sparsity() const noexcept;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> rowStart_;
  std::vector<std::size_t> colIndex_;
  std::vector<std::size_t> rowIndex_;
};

/// Values laid out on a SparsePattern.  The pattern is referenced, not
/// owned: it must outlive the matrix (the Assembler owns both).
class SparseMatrix {
 public:
  SparseMatrix() = default;
  explicit SparseMatrix(const SparsePattern& pattern)
      : pattern_(&pattern), values_(pattern.nonZeroCount(), 0.0) {}

  [[nodiscard]] const SparsePattern& pattern() const noexcept {
    return *pattern_;
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

  /// Zeroes all values; O(nnz), never touches structural zeros.
  void clear() noexcept {
    std::fill(values_.begin(), values_.end(), 0.0);
  }

  /// Accumulates into a known slot (from SparsePattern::slot).
  void addAt(std::int32_t slot, double v) noexcept {
    values_[static_cast<std::size_t>(slot)] += v;
  }

  /// Overwrites a known slot.  Used by the fault-injection seam to force
  /// degenerate values (e.g. zeroing a row) after normal assembly.
  void setAt(std::int32_t slot, double v) noexcept {
    values_[static_cast<std::size_t>(slot)] = v;
  }

  /// Value at (r, c); structural zeros read as 0.0.
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    const std::int32_t s = pattern_->slot(r, c);
    return s < 0 ? 0.0 : values_[static_cast<std::size_t>(s)];
  }

  /// Writes this matrix into `dense` (resized/zeroed as needed).
  void scatterTo(Matrix& dense) const;

 private:
  const SparsePattern* pattern_ = nullptr;
  std::vector<double> values_;
};

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_SPARSE_HPP
