// The pre-sparse factorization, retained as a measured baseline.
//
// This is the dense-pivot, dense-scratch LU that SparseLu replaced: a fresh
// factor runs an O(n^3) dense partial-pivot sweep plus an O(n^3) boolean
// symbolic elimination, and every solve carries O(n^2) scratch.  It stays in
// the tree for two jobs only:
//
//   * the `speedup_vs_dense_lu` bench rows -- the grid-ladder campaign gates
//     the sparse factorization against this implementation at every rung, so
//     the >10x fresh-factor win is a number CI keeps honest rather than a
//     claim in a doc;
//   * equivalence tests -- sparse and dense factors of the same values must
//     agree to residual <= 1e-12 on every fixture rung.
//
// Nothing on the simulation path links against this class.
#ifndef VSSTAT_LINALG_DENSE_PIVOT_LU_HPP
#define VSSTAT_LINALG_DENSE_PIVOT_LU_HPP

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace vsstat::linalg {

class DensePivotLu {
 public:
  DensePivotLu() = default;

  /// Factors the values of `m`.  First call (or pattern change) runs the
  /// dense analyze + partial-pivot path; later calls on the same pattern
  /// reuse the recorded pivot order and fill structure.  Throws
  /// ConvergenceError when the matrix is numerically singular.
  void refactor(const SparseMatrix& m, double pivotTolerance = 1e-14);

  /// Forgets the analyzed pattern so the next refactor() re-pivots from
  /// scratch -- the "fresh factor" the bench baseline times.
  void reset() noexcept { pattern_ = nullptr; }

  /// Solves A x = b in place.
  void solveInPlace(Vector& x) const;
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] std::uint64_t fullFactorCount() const noexcept {
    return fullFactors_;
  }
  [[nodiscard]] std::uint64_t fastRefactorCount() const noexcept {
    return fastRefactors_;
  }

 private:
  void fullFactor(const SparseMatrix& m, double pivotTolerance);
  [[nodiscard]] bool fastRefactor(const SparseMatrix& m,
                                  double pivotTolerance) noexcept;
  void buildSymbolic(const SparsePattern& pattern);

  std::size_t n_ = 0;
  const SparsePattern* pattern_ = nullptr;
  Matrix scratch_;  ///< permuted LU working storage, O(n^2)
  std::vector<std::size_t> rowPerm_;
  std::vector<std::size_t> permInv_;
  int permSign_ = 1;

  // Structural elimination lists over the permuted matrix (flattened).
  std::vector<std::size_t> lStart_, lRows_;
  std::vector<std::size_t> uStart_, uCols_;
  std::vector<std::size_t> uColStart_, uColRows_;
  std::vector<std::size_t> zeroList_;   ///< flattened i*n+j of all L+U slots
  std::vector<char> symbolicScratch_;   ///< O(n^2) fill bitmap

  mutable Vector work_;

  std::uint64_t fullFactors_ = 0;
  std::uint64_t fastRefactors_ = 0;
};

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_DENSE_PIVOT_LU_HPP
