// Householder QR factorization and linear least squares.
// Used by the BPV extraction (stacked over-determined system, Eq. 10 of the
// paper) and as the subproblem solver inside NNLS.
#ifndef VSSTAT_LINALG_QR_HPP
#define VSSTAT_LINALG_QR_HPP

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// QR of an m x n matrix with m >= n via Householder reflections.
class QrFactorization {
 public:
  explicit QrFactorization(Matrix a);

  /// Minimizes ||A x - b||_2.  Throws ConvergenceError when A is rank
  /// deficient to working precision.
  [[nodiscard]] Vector solveLeastSquares(const Vector& b) const;

  /// Residual norm ||A x - b||_2 for the least-squares solution of b.
  [[nodiscard]] double residualNorm(const Vector& b) const;

  [[nodiscard]] std::size_t rows() const noexcept { return qr_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return qr_.cols(); }

 private:
  void applyQt(Vector& v) const;

  Matrix qr_;       // Householder vectors below diagonal, R on/above
  Vector betas_;    // Householder scalars
};

/// One-shot least squares min ||A x - b||.
[[nodiscard]] Vector leastSquares(const Matrix& a, const Vector& b);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_QR_HPP
