// Levenberg–Marquardt nonlinear least squares with numeric Jacobian and
// optional box constraints.
//
// Used to fit the nominal VS model card to the golden kit's I-V data, the
// step the paper shows in Fig. 1 ("VS model fitting for NMOS with data from
// a 40-nm BSIM4 industrial design kit").
#ifndef VSSTAT_LINALG_LEVMAR_HPP
#define VSSTAT_LINALG_LEVMAR_HPP

#include <functional>

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// Residual callback: fills r (fixed size) from parameters x.
using ResidualFn = std::function<void(const Vector& x, Vector& r)>;

struct LevMarOptions {
  int maxIterations = 200;
  double initialLambda = 1e-3;
  double lambdaUp = 10.0;
  double lambdaDown = 0.3;
  double gradientTolerance = 1e-10;  ///< stop when ||J^T r||_inf below this
  double stepTolerance = 1e-12;      ///< stop when relative step below this
  double fdRelStep = 1e-6;           ///< relative finite-difference step
  Vector lowerBounds;                ///< optional, empty == unbounded
  Vector upperBounds;                ///< optional, empty == unbounded
};

struct LevMarResult {
  Vector x;             ///< optimized parameters
  double cost;          ///< 0.5 * ||r||^2 at solution
  double initialCost;   ///< 0.5 * ||r||^2 at start
  int iterations;
  bool converged;
};

/// Minimizes 0.5*||r(x)||^2 starting from x0.  `residualSize` is the fixed
/// length of r.  Throws InvalidArgumentError on inconsistent bounds.
[[nodiscard]] LevMarResult levenbergMarquardt(const ResidualFn& fn,
                                              const Vector& x0,
                                              std::size_t residualSize,
                                              const LevMarOptions& options = {});

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_LEVMAR_HPP
