// Levenberg–Marquardt nonlinear least squares with numeric Jacobian and
// box constraints (projected/clamped trial steps).
//
// Used to fit the nominal VS model card to the golden kit's I-V data (the
// step the paper shows in Fig. 1) and, at campaign volume, by the banked
// multi-fit extraction engine (extract::FitCampaign), which runs thousands
// of small independent fits.  For that workload the solver exposes a
// reusable workspace form: all scratch (residuals, Jacobian, normal
// equations, pivot array) lives in a caller-owned LevMarWorkspace, so a
// steady-state fit performs zero heap allocations.
//
// Failure discipline (PR-6 taxonomy): a residual/gradient/normal-matrix
// that goes non-finite throws NonFiniteError; a damped normal matrix that
// stays singular at every damping level throws SingularMatrixError.  A
// trial point whose residual goes non-finite is merely rejected (the model
// blew up *there*, not *here*) -- the step shrinks and the search continues.
#ifndef VSSTAT_LINALG_LEVMAR_HPP
#define VSSTAT_LINALG_LEVMAR_HPP

#include <cstdint>
#include <functional>

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// Residual callback: fills r (fixed size) from parameters x.
using ResidualFn = std::function<void(const Vector& x, Vector& r)>;

struct LevMarOptions {
  int maxIterations = 200;
  double initialLambda = 1e-3;
  double lambdaUp = 10.0;
  double lambdaDown = 0.3;
  double gradientTolerance = 1e-10;  ///< stop when ||J^T r||_inf below this
  double stepTolerance = 1e-12;      ///< stop when relative step below this
  double fdRelStep = 1e-6;           ///< relative finite-difference step
  Vector lowerBounds;                ///< optional, empty == unbounded
  Vector upperBounds;                ///< optional, empty == unbounded
};

struct LevMarResult {
  Vector x;             ///< optimized parameters
  double cost = 0.0;    ///< 0.5 * ||r||^2 at solution
  double initialCost = 0.0;  ///< 0.5 * ||r||^2 at start
  int iterations = 0;
  bool converged = false;
  /// True when the solver stopped because no damped step reduced the cost
  /// (a numerical local optimum).  `converged` stays true for this exit --
  /// historical behaviour every caller relies on -- but multi-fit campaigns
  /// report such lanes as `stalled` rather than cleanly converged.
  bool stalled = false;
  /// Bit j set when x[j] sits exactly on its lower or upper box bound at
  /// the solution (clamped steps land exactly on the bound).  Campaigns
  /// surface this as the bound-pinned fit outcome: the optimum wants to
  /// leave the physical box.
  std::uint32_t activeBounds = 0;
};

/// Caller-owned scratch for the allocation-free solver form.  Reusable
/// across fits; buffers grow to the largest (n, m) seen and then stay.
struct LevMarWorkspace {
  Vector x, xTrial, xPerturbed;
  Vector r, rTrial, rPerturbed;
  Vector jacobian;  ///< m x n, row-major
  Vector g, step;
  Vector h, hDamped;  ///< n x n, row-major
  std::vector<int> pivot;
};

/// Minimizes 0.5*||r(x)||^2 starting from x0.  `residualSize` is the fixed
/// length of r.  Throws InvalidArgumentError on inconsistent bounds,
/// NonFiniteError when the residual/gradient at the current iterate is not
/// finite, SingularMatrixError when the damped normal equations are
/// singular at every damping level.
[[nodiscard]] LevMarResult levenbergMarquardt(const ResidualFn& fn,
                                              const Vector& x0,
                                              std::size_t residualSize,
                                              const LevMarOptions& options = {});

/// Workspace form: identical semantics and bit-identical results, but all
/// scratch lives in `ws` and the result is written into `result` in place
/// (result.x is reused, not reallocated).  Zero heap allocations once the
/// workspace has seen the problem shape.
void levenbergMarquardt(const ResidualFn& fn, const Vector& x0,
                        std::size_t residualSize, const LevMarOptions& options,
                        LevMarWorkspace& ws, LevMarResult& result);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_LEVMAR_HPP
