// Dense row-major matrix and vector helpers.
//
// The library's numerical core (BPV stacked systems, LM fitting, MNA) deals
// with small dense systems (tens of unknowns), so a straightforward
// value-semantic matrix with O(n^3) direct solvers is the right tool; no
// sparse machinery is needed.
#ifndef VSSTAT_LINALG_MATRIX_HPP
#define VSSTAT_LINALG_MATRIX_HPP

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace vsstat::linalg {

using Vector = std::vector<double>;

/// Value-semantic dense matrix, row-major storage.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws InvalidArgumentError when out of range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] Matrix transposed() const;

  /// Extracts the given columns (in order) into a new matrix.
  [[nodiscard]] Matrix selectColumns(const std::vector<std::size_t>& idx) const;

  void fill(double value) noexcept;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;

  [[nodiscard]] std::string toString(int precision = 4) const;

  [[nodiscard]] const double* data() const noexcept { return data_.data(); }
  [[nodiscard]] double* data() noexcept { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

[[nodiscard]] Matrix operator+(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator-(Matrix lhs, const Matrix& rhs);
[[nodiscard]] Matrix operator*(Matrix lhs, double s);
[[nodiscard]] Matrix operator*(double s, Matrix rhs);
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

// --- vector helpers ---------------------------------------------------------
[[nodiscard]] double dot(const Vector& a, const Vector& b);
[[nodiscard]] double norm2(const Vector& v) noexcept;
[[nodiscard]] double normInf(const Vector& v) noexcept;
[[nodiscard]] Vector add(const Vector& a, const Vector& b);
[[nodiscard]] Vector sub(const Vector& a, const Vector& b);
[[nodiscard]] Vector scale(const Vector& v, double s);
/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// Maximum absolute elementwise difference; infinity on shape mismatch.
[[nodiscard]] double maxAbsDiff(const Matrix& a, const Matrix& b) noexcept;

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_MATRIX_HPP
