#include "linalg/nnls.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "linalg/qr.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {

namespace {

/// Least-squares solve restricted to the passive set P; returns the full-size
/// vector with zeros outside P.
Vector solveOnPassiveSet(const Matrix& a, const Vector& b,
                         const std::vector<std::size_t>& passive) {
  const Matrix ap = a.selectColumns(passive);
  const Vector zp = QrFactorization(ap).solveLeastSquares(b);
  Vector z(a.cols(), 0.0);
  for (std::size_t j = 0; j < passive.size(); ++j) z[passive[j]] = zp[j];
  return z;
}

}  // namespace

NnlsResult nnls(const Matrix& a, const Vector& b, int maxIterations) {
  const std::size_t n = a.cols();
  require(a.rows() == b.size(), "nnls: shape mismatch");
  require(n > 0, "nnls: empty system");

  std::vector<bool> inPassive(n, false);
  Vector x(n, 0.0);

  const Matrix at = a.transposed();
  const double tolerance = 1e-12 * normInf(at * b);

  int outer = 0;
  for (; outer < maxIterations; ++outer) {
    // Gradient w = A^T (b - A x).
    const Vector w = at * sub(b, a * x);

    // Pick the most violated coordinate in the active (zero) set.
    std::size_t best = n;
    double bestW = tolerance > 0 ? tolerance : 1e-300;
    for (std::size_t j = 0; j < n; ++j) {
      if (!inPassive[j] && w[j] > bestW) {
        bestW = w[j];
        best = j;
      }
    }
    if (best == n) break;  // KKT satisfied
    inPassive[best] = true;

    // Inner loop: solve on the passive set; move variables that go negative
    // back to the boundary.
    for (;;) {
      std::vector<std::size_t> passive;
      for (std::size_t j = 0; j < n; ++j)
        if (inPassive[j]) passive.push_back(j);

      const Vector z = solveOnPassiveSet(a, b, passive);

      bool allPositive = true;
      for (std::size_t j : passive) {
        if (z[j] <= 0.0) {
          allPositive = false;
          break;
        }
      }
      if (allPositive) {
        x = z;
        break;
      }

      // Step from x toward z, stopping at the first variable hitting zero.
      double alpha = std::numeric_limits<double>::infinity();
      for (std::size_t j : passive) {
        if (z[j] <= 0.0) {
          const double denom = x[j] - z[j];
          if (denom > 0.0) alpha = std::min(alpha, x[j] / denom);
        }
      }
      require(std::isfinite(alpha), "nnls: degenerate inner step");
      for (std::size_t j = 0; j < n; ++j) x[j] += alpha * (z[j] - x[j]);
      for (std::size_t j : passive) {
        if (x[j] <= 1e-14) {
          x[j] = 0.0;
          inPassive[j] = false;
        }
      }
    }
  }
  if (outer >= maxIterations) {
    throw ConvergenceError("nnls: active-set loop did not converge", outer);
  }

  NnlsResult result;
  result.x = x;
  result.residualNorm = norm2(sub(a * x, b));
  result.iterations = outer;
  return result;
}

}  // namespace vsstat::linalg
