#include "linalg/matrix.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace vsstat::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    require(r.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::selectColumns(const std::vector<std::size_t>& idx) const {
  Matrix s(rows_, idx.size());
  for (std::size_t j = 0; j < idx.size(); ++j) {
    require(idx[j] < cols_, "Matrix::selectColumns index out of range");
    for (std::size_t r = 0; r < rows_; ++r) s(r, j) = (*this)(r, idx[j]);
  }
  return s;
}

void Matrix::fill(double value) noexcept {
  for (auto& v : data_) v = value;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  require(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (auto& v : data_) v *= s;
  return *this;
}

std::string Matrix::toString(int precision) const {
  std::ostringstream ss;
  ss.precision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    ss << '[';
    for (std::size_t c = 0; c < cols_; ++c) {
      ss << (*this)(r, c) << (c + 1 == cols_ ? "" : ", ");
    }
    ss << "]\n";
  }
  return ss.str();
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

Matrix operator*(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "Matrix * shape mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  require(a.cols() == x.size(), "Matrix * vector shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) s += a(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

double dot(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& v) noexcept {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double normInf(const Vector& v) noexcept {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

Vector add(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "add: size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] + b[i];
  return r;
}

Vector sub(const Vector& a, const Vector& b) {
  require(a.size() == b.size(), "sub: size mismatch");
  Vector r(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) r[i] = a[i] - b[i];
  return r;
}

Vector scale(const Vector& v, double s) {
  Vector r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = v[i] * s;
  return r;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

double maxAbsDiff(const Matrix& a, const Matrix& b) noexcept {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    return std::numeric_limits<double>::infinity();
  double m = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::fabs(a(r, c) - b(r, c)));
  return m;
}

}  // namespace vsstat::linalg
