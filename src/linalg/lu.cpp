#include "linalg/lu.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace vsstat::linalg {

LuFactorization::LuFactorization(Matrix a, double pivotTolerance)
    : lu_(std::move(a)) {
  factorize(pivotTolerance);
}

void LuFactorization::refactor(const Matrix& a, double pivotTolerance) {
  require(a.rows() == a.cols(), "LU: matrix must be square");
  const std::size_t n = a.rows();
  if (lu_.rows() != n || lu_.cols() != n) {
    lu_ = Matrix(n, n);
  }
  std::copy(a.data(), a.data() + n * n, lu_.data());
  factorize(pivotTolerance);
}

void LuFactorization::factorize(double pivotTolerance) {
  require(lu_.rows() == lu_.cols(), "LU: matrix must be square");
  const std::size_t n = lu_.rows();
  pivots_.resize(n);
  pivotSign_ = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    std::size_t p = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best < pivotTolerance) {
      throw ConvergenceError("LU: matrix is singular to working precision",
                             static_cast<int>(k));
    }
    pivots_[k] = p;
    if (p != k) {
      pivotSign_ = -pivotSign_;
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const double diag = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / diag;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  Vector x = b;
  solveInPlace(x);
  return x;
}

void LuFactorization::solveInPlace(Vector& x) const {
  const std::size_t n = lu_.rows();
  require(x.size() == n, "LU solve: rhs size mismatch");

  // Apply row permutation.
  for (std::size_t k = 0; k < n; ++k) {
    if (pivots_[k] != k) std::swap(x[k], x[pivots_[k]]);
  }
  // Forward substitution (L has unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double s = x[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
}

double LuFactorization::determinant() const noexcept {
  double d = pivotSign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

Vector luSolve(const Matrix& a, const Vector& b) {
  return LuFactorization(a).solve(b);
}

}  // namespace vsstat::linalg
