#include "linalg/sparse.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vsstat::linalg {

SparsePattern::SparsePattern(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords)
    : n_(n) {
  require(n > 0, "SparsePattern: dimension must be positive");

  // Sort one flat copy of the coordinates into CSR (row-major,
  // ascending-column) order and deduplicate, so a linear walk over the
  // value array is cache-friendly and slot() can binary-search.  O(nnz)
  // memory and O(1) allocations throughout -- construction never
  // materializes an n*n table (or n per-row buckets), so grid-scale
  // patterns stay near-linear and the rebuild-per-sample path stays cheap.
  std::vector<std::pair<std::size_t, std::size_t>> sorted(coords);
  for (const auto& [r, c] : sorted) {
    require(r < n && c < n, "SparsePattern: coordinate out of range");
  }
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  rowStart_.assign(n + 1, 0);
  colIndex_.reserve(sorted.size());
  rowIndex_.reserve(sorted.size());
  std::size_t nextRow = 0;
  for (const auto& [r, c] : sorted) {
    while (nextRow <= r) rowStart_[nextRow++] = colIndex_.size();
    colIndex_.push_back(c);
    rowIndex_.push_back(r);
  }
  while (nextRow <= n) rowStart_[nextRow++] = colIndex_.size();
}

double SparsePattern::sparsity() const noexcept {
  if (n_ == 0) return 0.0;
  const double total = static_cast<double>(n_) * static_cast<double>(n_);
  return 1.0 - static_cast<double>(nonZeroCount()) / total;
}

void SparseMatrix::scatterTo(Matrix& dense) const {
  const std::size_t n = pattern_->size();
  if (dense.rows() != n || dense.cols() != n) {
    dense = Matrix(n, n);
  } else {
    dense.fill(0.0);
  }
  const auto& rows = pattern_->rowIndex();
  const auto& cols = pattern_->colIndex();
  for (std::size_t s = 0; s < values_.size(); ++s) {
    dense(rows[s], cols[s]) = values_[s];
  }
}

}  // namespace vsstat::linalg
