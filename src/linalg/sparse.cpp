#include "linalg/sparse.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vsstat::linalg {

SparsePattern::SparsePattern(
    std::size_t n,
    const std::vector<std::pair<std::size_t, std::size_t>>& coords)
    : n_(n) {
  require(n > 0, "SparsePattern: dimension must be positive");
  slots_.assign(n * n, -1);

  // Mark distinct positions, then lay slots out in CSR (row-major) order so
  // a linear walk over the value array is cache-friendly.
  constexpr std::int32_t kMarked = -2;
  for (const auto& [r, c] : coords) {
    require(r < n && c < n, "SparsePattern: coordinate out of range");
    slots_[r * n + c] = kMarked;
  }
  rowStart_.assign(n + 1, 0);
  std::int32_t next = 0;
  for (std::size_t r = 0; r < n; ++r) {
    rowStart_[r] = static_cast<std::size_t>(next);
    for (std::size_t c = 0; c < n; ++c) {
      if (slots_[r * n + c] == kMarked) {
        slots_[r * n + c] = next++;
        colIndex_.push_back(c);
        rowIndex_.push_back(r);
      }
    }
  }
  rowStart_[n] = static_cast<std::size_t>(next);
}

double SparsePattern::sparsity() const noexcept {
  if (n_ == 0) return 0.0;
  const double total = static_cast<double>(n_) * static_cast<double>(n_);
  return 1.0 - static_cast<double>(nonZeroCount()) / total;
}

void SparseMatrix::scatterTo(Matrix& dense) const {
  const std::size_t n = pattern_->size();
  if (dense.rows() != n || dense.cols() != n) {
    dense = Matrix(n, n);
  } else {
    dense.fill(0.0);
  }
  const auto& rows = pattern_->rowIndex();
  const auto& cols = pattern_->colIndex();
  for (std::size_t s = 0; s < values_.size(); ++s) {
    dense(rows[s], cols[s]) = values_[s];
  }
}

}  // namespace vsstat::linalg
