// Graph-sparse LU for the Newton/MNA hot path.
//
// KLU-style "order once, factor sparse, refactor numeric" pipeline:
//
//   1. ordering   -- a minimum-degree column order (linalg/ordering.hpp) is
//                    computed once per captured MNA pattern and cached; it is
//                    a pure function of the pattern, so it never perturbs any
//                    bit-identity contract.
//   2. symbolic   -- the first numeric factorization is a Gilbert-Peierls
//                    left-looking sweep: per column, a DFS reach over the
//                    graph of L materializes exactly the fill-in pattern,
//                    and row partial pivoting picks PAQ = LU.  The resulting
//                    L and U are stored compressed (CSC), O(nnz) memory.
//   3. refactor   -- later factorizations of the *same* pattern (Newton
//                    iterations, transient steps, Monte Carlo samples of one
//                    topology) replay the numeric sweep over the fixed
//                    structure: no pivot search, no fill analysis, no heap
//                    allocation, O(nnz(L+U)) work.
//   4. solve      -- sparse forward/backward triangular substitution,
//                    O(nnz(L+U)) work per right-hand side.
//
// A pivot falling below tolerance during a refactor transparently falls back
// to the full re-pivoting path, exactly as the dense-pivot predecessor did
// (that implementation survives as linalg/dense_pivot_lu.hpp, the measured
// baseline for the `speedup_vs_dense_lu` bench rows).
//
// Two session-level pivot policies (SolverMode) build on this:
//
//   * fresh      -- the caller reset()s before every solve, so each solve
//                   re-derives its pivot order from its own first iterate.
//                   This is what makes a persistent workspace bit-identical
//                   to a freshly constructed one.  (The fill-reducing column
//                   order is exempt from reset: it depends only on the
//                   pattern, so reusing it is invisible to the numerics.)
//   * reusePivot -- the caller snapshots one canonical pivot order + factor
//                   structure (snapshotPivotOrder) and restores it at every
//                   solve boundary (restorePivotSnapshot) instead of
//                   resetting.  refactorReusingPivots() then skips the pivot
//                   search and symbolic pass entirely, monitored by a cheap
//                   element-growth / zero-pivot check that falls back to a
//                   full re-pivot on breakdown.  Results stay deterministic
//                   (each solve depends only on the canonical order and its
//                   own inputs, never on which solve ran before) and correct
//                   (the Newton convergence test still bounds the residual);
//                   only the Newton trajectory differs from fresh mode --
//                   statistically equivalent, tolerance-tested at the
//                   campaign level.
#ifndef VSSTAT_LINALG_SPARSE_LU_HPP
#define VSSTAT_LINALG_SPARSE_LU_HPP

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace vsstat::linalg {

/// Session pivot policy (see file comment).  Lives here -- next to the
/// factorization that implements it -- so every layer from spice sessions
/// to campaign runners can name it without new dependencies.
enum class SolverMode { fresh, reusePivot };

[[nodiscard]] inline const char* toString(SolverMode m) noexcept {
  return m == SolverMode::fresh ? "fresh" : "reuse-pivot";
}

class SparseLu {
 public:
  SparseLu() = default;

  /// Factors the values of `m` (laid out on its pattern).  The first call --
  /// or a pattern change, or a pivot breakdown -- runs the full ordering +
  /// symbolic + partial-pivot path; steady-state calls are allocation-free.
  /// Throws ConvergenceError when the matrix is numerically singular.
  /// In SolverMode::reusePivot (setSolverMode) this forwards to
  /// refactorReusingPivots(), so generic drivers pick up the session's
  /// pivot policy without mode checks at every call site.
  void refactor(const SparseMatrix& m, double pivotTolerance = 1e-14);

  /// The pivot-reuse path: factors `m` on the previously derived pivot
  /// order and factor structure, skipping the pivot search and the symbolic
  /// pass.  A cheap monitor guards the reuse: if any reused pivot falls
  /// below `pivotTolerance` or the factor's element growth max|LU| / max|A|
  /// exceeds the growth limit (setPivotGrowthLimit), the stale order is
  /// abandoned and a full re-pivot runs instead (counted by
  /// pivotFallbackCount).  With no analyzed pattern (or a different one)
  /// it degrades to the full path.
  void refactorReusingPivots(const SparseMatrix& m,
                             double pivotTolerance = 1e-14);

  /// Forgets the analyzed pivot order and factor structure so the next
  /// refactor() runs the full symbolic + partial-pivot path again.  All
  /// buffers (and the pattern-derived column ordering) are retained, so a
  /// reset + refactor cycle on an unchanged pattern performs no steady-state
  /// heap allocations.  Fresh-mode simulation sessions call this at the
  /// start of every solve so a persistent workspace reproduces the numerics
  /// of a freshly-constructed one bit-for-bit (the row pivot order is
  /// re-derived from the solve's own first iterate instead of whatever
  /// sample last touched the factorization).
  void reset() noexcept { pattern_ = nullptr; }

  // --- pivot snapshot (SolverMode::reusePivot sessions) ----------------------
  /// Captures the current pivot order + factor structure as the canonical
  /// reuse structure.  Sessions prime it once, from a sample-independent
  /// state (the as-built fixture), which is what keeps reuse-mode campaign
  /// results independent of which worker session served which sample.
  /// Requires an analyzed factorization (refactor() succeeded).
  void snapshotPivotOrder();

  /// Restores the snapshot at a solve boundary: the next
  /// refactorReusingPivots() runs on the canonical order regardless of any
  /// breakdown re-pivot a previous solve performed.  No-op (beyond pointer
  /// fixup) when the structure never diverged; without a snapshot it
  /// behaves like reset(), i.e. the solve falls back to fresh pivoting.
  void restorePivotSnapshot() noexcept;

  [[nodiscard]] bool hasPivotSnapshot() const noexcept {
    return snapshotValid_;
  }

  /// Solver-session pivot policy; refactor() dispatches on it.  Purely a
  /// convenience for drivers that share one call site between modes --
  /// the explicit entry points above are mode-independent.
  void setSolverMode(SolverMode m) noexcept { mode_ = m; }
  [[nodiscard]] SolverMode solverMode() const noexcept { return mode_; }

  /// Element-growth ceiling of the reuse monitor: a reused factorization
  /// whose max|LU| exceeds limit * max|A| triggers a full re-pivot.
  /// Partial pivoting keeps growth near 1 on these MNA systems, so the
  /// default flags only genuinely degenerate reuse.
  void setPivotGrowthLimit(double limit) noexcept { growthLimit_ = limit; }
  [[nodiscard]] double pivotGrowthLimit() const noexcept {
    return growthLimit_;
  }

  /// Solves A x = b in place; allocation-free, O(nnz(L+U)).
  void solveInPlace(Vector& x) const;
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // --- telemetry (perf tests / benches / session health) ---------------------
  /// Full symbolic+pivot factorizations performed so far.
  [[nodiscard]] std::uint64_t fullFactorCount() const noexcept {
    return fullFactors_;
  }
  /// Structure-reusing fast refactorizations performed so far.
  [[nodiscard]] std::uint64_t fastRefactorCount() const noexcept {
    return fastRefactors_;
  }
  /// Reuse-monitor breakdowns: refactorReusingPivots() calls that abandoned
  /// the reused order (zero pivot or growth) and re-pivoted from scratch.
  [[nodiscard]] std::uint64_t pivotFallbackCount() const noexcept {
    return pivotFallbacks_;
  }
  /// Structural nonzeros of the assembled pattern (A), from the last full
  /// factorization.
  [[nodiscard]] std::size_t patternNonZeroCount() const noexcept {
    return patternNnz_;
  }
  /// Structural nonzeros of L+U (pattern nonzeros + fill-in).
  [[nodiscard]] std::size_t factorNonZeroCount() const noexcept {
    return lRowIdx_.size() + uRowIdx_.size() + n_;
  }
  /// nnz(L+U) / nnz(A): 1.0 means zero fill-in, near-linear memory means
  /// this stays O(1) as the circuit grows.
  [[nodiscard]] double fillRatio() const noexcept {
    return patternNnz_ == 0 ? 0.0
                            : static_cast<double>(factorNonZeroCount()) /
                                  static_cast<double>(patternNnz_);
  }
  /// Cumulative wall time spent computing fill-reducing orderings (runs
  /// once per distinct pattern) and full factorizations.
  [[nodiscard]] std::uint64_t orderingMicros() const noexcept {
    return orderingMicros_;
  }
  [[nodiscard]] std::uint64_t fullFactorMicros() const noexcept {
    return fullFactorMicros_;
  }
  /// Resident bytes of the factor proper (index + value arrays) -- the
  /// near-linear-memory claim the grid ladder checks.
  [[nodiscard]] std::size_t factorMemoryBytes() const noexcept {
    return (lRowIdx_.size() + uRowIdx_.size()) *
               (sizeof(std::int32_t) + sizeof(double)) +
           uDiag_.size() * sizeof(double) +
           (lColStart_.size() + uColStart_.size()) * sizeof(std::size_t);
  }

 private:
  void ensureOrdering(const SparsePattern& pattern);
  void fullFactor(const SparseMatrix& m, double pivotTolerance);
  [[nodiscard]] bool fastRefactor(const SparseMatrix& m, double pivotTolerance,
                                  double growthLimit) noexcept;

  std::size_t n_ = 0;
  const SparsePattern* pattern_ = nullptr;  ///< identity of analyzed pattern

  // --- fill-reducing ordering cache (pure function of the pattern) ----------
  // Survives reset(): reusing it is invisible to the numerics, and it is the
  // one analysis whose cost should not be paid per fresh-mode solve.
  const SparsePattern* orderPattern_ = nullptr;
  std::size_t orderN_ = 0;
  std::size_t orderNnz_ = 0;
  std::vector<std::size_t> colPerm_;  ///< pivotal column k <- original column
  int colSign_ = 1;
  // Column-major access of the pattern slots (CSC transpose of the CSR
  // pattern): entries of original column c are [aColStart_[c], aColStart_[c+1])
  // with original row aRowIdx_[p] living in value slot aSlotIdx_[p].
  std::vector<std::size_t> aColStart_;
  std::vector<std::size_t> aRowIdx_;
  std::vector<std::size_t> aSlotIdx_;

  // --- factor: PAQ = LU, compressed sparse columns over pivotal indices -----
  std::vector<std::size_t> rowPerm_;   ///< pivotal row k <- original row
  std::vector<std::int32_t> permInv_;  ///< original row -> pivotal row
  int permSign_ = 1;
  // L is strictly lower with implicit unit diagonal; U is strictly upper
  // with the diagonal split into uDiag_.  U's columns are sorted ascending,
  // which is the dependency order the numeric refactor replays.
  std::vector<std::size_t> lColStart_;
  std::vector<std::int32_t> lRowIdx_;
  std::vector<double> lValues_;
  std::vector<std::size_t> uColStart_;
  std::vector<std::int32_t> uRowIdx_;
  std::vector<double> uValues_;
  std::vector<double> uDiag_;

  // --- O(n) work arrays ------------------------------------------------------
  // x_ and visited_ are all-zero between factorizations (every path,
  // including breakdown and throw paths, re-zeroes what it touched), which
  // is what makes the steady-state refactor O(nnz) instead of O(n).
  std::vector<double> x_;
  std::vector<char> visited_;
  std::vector<std::size_t> xi_;        ///< topological reach (symbolic DFS)
  std::vector<std::size_t> dfsStack_;
  std::vector<std::size_t> dfsPos_;
  mutable Vector work_;  ///< permuted rhs scratch for solveInPlace

  // Canonical structure snapshot (reuse-pivot sessions).  Restoring swaps
  // the saved copies back only when a breakdown re-pivot diverged the live
  // structure, so the per-solve restore is O(1) in steady state.
  struct PivotSnapshot {
    const SparsePattern* pattern = nullptr;
    std::size_t n = 0;
    std::size_t patternNnz = 0;
    std::vector<std::size_t> rowPerm;
    std::vector<std::int32_t> permInv;
    int permSign = 1;
    std::vector<std::size_t> lColStart, uColStart;
    std::vector<std::int32_t> lRowIdx, uRowIdx;
    // Ordering state, so a restore is self-contained even if another
    // pattern's factorization replaced the cached ordering in between.
    std::vector<std::size_t> colPerm;
    int colSign = 1;
    std::vector<std::size_t> aColStart, aRowIdx, aSlotIdx;
  };
  PivotSnapshot snapshot_;
  bool snapshotValid_ = false;
  bool divergedFromSnapshot_ = false;

  SolverMode mode_ = SolverMode::fresh;
  double growthLimit_ = 1e8;

  std::uint64_t fullFactors_ = 0;
  std::uint64_t fastRefactors_ = 0;
  std::uint64_t pivotFallbacks_ = 0;
  std::size_t patternNnz_ = 0;
  std::uint64_t orderingMicros_ = 0;
  std::uint64_t fullFactorMicros_ = 0;
};

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_SPARSE_LU_HPP
