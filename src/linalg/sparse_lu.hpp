// Pattern-reusing sparse LU for the Newton/MNA hot path.
//
// Classic SPICE "reorder once, refactor fast" design: the first numeric
// factorization runs dense partial pivoting and records the row permutation,
// then a symbolic elimination of the permuted pattern precomputes the full
// L+U fill structure.  Every later factorization of the *same* pattern
// (subsequent Newton iterations, transient steps, Monte Carlo samples of one
// topology) reuses that structure: no pivot search, no fill analysis, no
// heap allocation -- just a numeric sweep over the structural nonzeros.
// A pivot falling below tolerance during a fast refactor transparently falls
// back to the full re-pivoting path.
//
// Two session-level pivot policies (SolverMode) build on this:
//
//   * fresh      -- the caller reset()s before every solve, so each solve
//                   re-derives its pivot order from its own first iterate.
//                   This is what makes a persistent workspace bit-identical
//                   to a freshly constructed one.
//   * reusePivot -- the caller snapshots one canonical pivot order +
//                   symbolic fill (snapshotPivotOrder) and restores it at
//                   every solve boundary (restorePivotSnapshot) instead of
//                   resetting.  refactorReusingPivots() then skips the dense
//                   partial-pivot search and the symbolic pass entirely,
//                   monitored by a cheap element-growth / zero-pivot check
//                   that falls back to a full re-pivot on breakdown.
//                   Results stay deterministic (each solve depends only on
//                   the canonical order and its own inputs, never on which
//                   solve ran before) and correct (the Newton convergence
//                   test still bounds the residual); only the Newton
//                   trajectory differs from fresh mode -- statistically
//                   equivalent, tolerance-tested at the campaign level.
#ifndef VSSTAT_LINALG_SPARSE_LU_HPP
#define VSSTAT_LINALG_SPARSE_LU_HPP

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace vsstat::linalg {

/// Session pivot policy (see file comment).  Lives here -- next to the
/// factorization that implements it -- so every layer from spice sessions
/// to campaign runners can name it without new dependencies.
enum class SolverMode { fresh, reusePivot };

[[nodiscard]] inline const char* toString(SolverMode m) noexcept {
  return m == SolverMode::fresh ? "fresh" : "reuse-pivot";
}

class SparseLu {
 public:
  SparseLu() = default;

  /// Factors the values of `m` (laid out on its pattern).  The first call --
  /// or a pattern change, or a pivot breakdown -- runs the full analyze +
  /// partial-pivot path; steady-state calls are allocation-free.  Throws
  /// ConvergenceError when the matrix is numerically singular.
  /// In SolverMode::reusePivot (setSolverMode) this forwards to
  /// refactorReusingPivots(), so generic drivers pick up the session's
  /// pivot policy without mode checks at every call site.
  void refactor(const SparseMatrix& m, double pivotTolerance = 1e-14);

  /// The pivot-reuse path: factors `m` on the previously analyzed pivot
  /// order and symbolic fill, skipping the dense partial-pivot search and
  /// the symbolic pass.  A cheap monitor guards the reuse: if any reused
  /// pivot falls below `pivotTolerance` or the factor's element growth
  /// max|LU| / max|A| exceeds the growth limit (setPivotGrowthLimit), the
  /// stale order is abandoned and a full re-pivot runs instead (counted by
  /// pivotFallbackCount).  With no analyzed pattern (or a different one)
  /// it degrades to the full path.
  void refactorReusingPivots(const SparseMatrix& m,
                             double pivotTolerance = 1e-14);

  /// Forgets the analyzed pattern and pivot order so the next refactor()
  /// runs the full analyze + partial-pivot path again.  All buffers are
  /// retained at capacity, so a reset + refactor cycle on an unchanged
  /// pattern performs no steady-state heap allocations.  Fresh-mode
  /// simulation sessions call this at the start of every solve so a
  /// persistent workspace reproduces the numerics of a freshly-constructed
  /// one bit-for-bit (the pivot order is re-derived from the solve's own
  /// first iterate instead of whatever sample last touched the
  /// factorization).
  void reset() noexcept { pattern_ = nullptr; }

  // --- pivot snapshot (SolverMode::reusePivot sessions) ----------------------
  /// Captures the current pivot order + symbolic fill as the canonical
  /// reuse structure.  Sessions prime it once, from a sample-independent
  /// state (the as-built fixture), which is what keeps reuse-mode campaign
  /// results independent of which worker session served which sample.
  /// Requires an analyzed factorization (refactor() succeeded).
  void snapshotPivotOrder();

  /// Restores the snapshot at a solve boundary: the next
  /// refactorReusingPivots() runs on the canonical order regardless of any
  /// breakdown re-pivot a previous solve performed.  No-op (beyond pointer
  /// fixup) when the structure never diverged; without a snapshot it
  /// behaves like reset(), i.e. the solve falls back to fresh pivoting.
  void restorePivotSnapshot() noexcept;

  [[nodiscard]] bool hasPivotSnapshot() const noexcept {
    return snapshotValid_;
  }

  /// Solver-session pivot policy; refactor() dispatches on it.  Purely a
  /// convenience for drivers that share one call site between modes --
  /// the explicit entry points above are mode-independent.
  void setSolverMode(SolverMode m) noexcept { mode_ = m; }
  [[nodiscard]] SolverMode solverMode() const noexcept { return mode_; }

  /// Element-growth ceiling of the reuse monitor: a reused factorization
  /// whose max|LU| exceeds limit * max|A| triggers a full re-pivot.
  /// Partial pivoting keeps growth near 1 on these MNA systems, so the
  /// default flags only genuinely degenerate reuse.
  void setPivotGrowthLimit(double limit) noexcept { growthLimit_ = limit; }
  [[nodiscard]] double pivotGrowthLimit() const noexcept {
    return growthLimit_;
  }

  /// Solves A x = b in place; allocation-free.
  void solveInPlace(Vector& x) const;
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // --- telemetry (perf tests / benches) --------------------------------------
  /// Full analyze+pivot factorizations performed so far.
  [[nodiscard]] std::uint64_t fullFactorCount() const noexcept {
    return fullFactors_;
  }
  /// Structure-reusing fast refactorizations performed so far.
  [[nodiscard]] std::uint64_t fastRefactorCount() const noexcept {
    return fastRefactors_;
  }
  /// Reuse-monitor breakdowns: refactorReusingPivots() calls that abandoned
  /// the reused order (zero pivot or growth) and re-pivoted from scratch.
  [[nodiscard]] std::uint64_t pivotFallbackCount() const noexcept {
    return pivotFallbacks_;
  }
  /// Structural nonzeros of L+U (pattern nonzeros + fill-in).
  [[nodiscard]] std::size_t factorNonZeroCount() const noexcept {
    return zeroList_.size();
  }

 private:
  void fullFactor(const SparseMatrix& m, double pivotTolerance);
  [[nodiscard]] bool fastRefactor(const SparseMatrix& m, double pivotTolerance,
                                  double growthLimit) noexcept;
  void buildSymbolic(const SparsePattern& pattern);

  std::size_t n_ = 0;
  const SparsePattern* pattern_ = nullptr;  ///< identity of analyzed pattern
  Matrix scratch_;                          ///< permuted LU working storage
  std::vector<std::size_t> rowPerm_;  ///< permuted row k holds original row
  std::vector<std::size_t> permInv_;  ///< original row -> permuted row
  int permSign_ = 1;

  // Structural elimination lists over the permuted matrix (flattened CSR
  // style).  For pivot k: lRows_ holds the rows i > k with L(i,k) != 0,
  // uCols_ the columns j > k with U(k,j) != 0, and uColRows_ the rows i < k
  // with U(i,k) != 0 (for the column-sweep back substitution).
  std::vector<std::size_t> lStart_, lRows_;
  std::vector<std::size_t> uStart_, uCols_;
  std::vector<std::size_t> uColStart_, uColRows_;
  std::vector<std::size_t> zeroList_;  ///< flattened i*n+j of all L+U slots
  std::vector<char> symbolicScratch_;  ///< fill bitmap (buildSymbolic)

  mutable Vector work_;  ///< permuted rhs scratch for solveInPlace

  // Canonical structure snapshot (reuse-pivot sessions).  Restoring swaps
  // the saved copies back only when a breakdown re-pivot diverged the live
  // structure, so the per-solve restore is O(1) in steady state.
  struct PivotSnapshot {
    const SparsePattern* pattern = nullptr;
    std::size_t n = 0;
    std::vector<std::size_t> rowPerm, permInv;
    int permSign = 1;
    std::vector<std::size_t> lStart, lRows;
    std::vector<std::size_t> uStart, uCols;
    std::vector<std::size_t> uColStart, uColRows;
    std::vector<std::size_t> zeroList;
  };
  PivotSnapshot snapshot_;
  bool snapshotValid_ = false;
  bool divergedFromSnapshot_ = false;

  SolverMode mode_ = SolverMode::fresh;
  double growthLimit_ = 1e8;

  std::uint64_t fullFactors_ = 0;
  std::uint64_t fastRefactors_ = 0;
  std::uint64_t pivotFallbacks_ = 0;
};

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_SPARSE_LU_HPP
