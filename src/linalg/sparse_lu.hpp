// Pattern-reusing sparse LU for the Newton/MNA hot path.
//
// Classic SPICE "reorder once, refactor fast" design: the first numeric
// factorization runs dense partial pivoting and records the row permutation,
// then a symbolic elimination of the permuted pattern precomputes the full
// L+U fill structure.  Every later factorization of the *same* pattern
// (subsequent Newton iterations, transient steps, Monte Carlo samples of one
// topology) reuses that structure: no pivot search, no fill analysis, no
// heap allocation -- just a numeric sweep over the structural nonzeros.
// A pivot falling below tolerance during a fast refactor transparently falls
// back to the full re-pivoting path.
#ifndef VSSTAT_LINALG_SPARSE_LU_HPP
#define VSSTAT_LINALG_SPARSE_LU_HPP

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace vsstat::linalg {

class SparseLu {
 public:
  SparseLu() = default;

  /// Factors the values of `m` (laid out on its pattern).  The first call --
  /// or a pattern change, or a pivot breakdown -- runs the full analyze +
  /// partial-pivot path; steady-state calls are allocation-free.  Throws
  /// ConvergenceError when the matrix is numerically singular.
  void refactor(const SparseMatrix& m, double pivotTolerance = 1e-14);

  /// Forgets the analyzed pattern and pivot order so the next refactor()
  /// runs the full analyze + partial-pivot path again.  All buffers are
  /// retained at capacity, so a reset + refactor cycle on an unchanged
  /// pattern performs no steady-state heap allocations.  Simulation
  /// sessions call this at the start of every solve so a persistent
  /// workspace reproduces the numerics of a freshly-constructed one
  /// bit-for-bit (the pivot order is re-derived from the solve's own first
  /// iterate instead of whatever sample last touched the factorization).
  void reset() noexcept { pattern_ = nullptr; }

  /// Solves A x = b in place; allocation-free.
  void solveInPlace(Vector& x) const;
  [[nodiscard]] Vector solve(const Vector& b) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  // --- telemetry (perf tests / benches) --------------------------------------
  /// Full analyze+pivot factorizations performed so far.
  [[nodiscard]] std::uint64_t fullFactorCount() const noexcept {
    return fullFactors_;
  }
  /// Structure-reusing fast refactorizations performed so far.
  [[nodiscard]] std::uint64_t fastRefactorCount() const noexcept {
    return fastRefactors_;
  }
  /// Structural nonzeros of L+U (pattern nonzeros + fill-in).
  [[nodiscard]] std::size_t factorNonZeroCount() const noexcept {
    return zeroList_.size();
  }

 private:
  void fullFactor(const SparseMatrix& m, double pivotTolerance);
  [[nodiscard]] bool fastRefactor(const SparseMatrix& m,
                                  double pivotTolerance) noexcept;
  void buildSymbolic(const SparsePattern& pattern);

  std::size_t n_ = 0;
  const SparsePattern* pattern_ = nullptr;  ///< identity of analyzed pattern
  Matrix scratch_;                          ///< permuted LU working storage
  std::vector<std::size_t> rowPerm_;  ///< permuted row k holds original row
  std::vector<std::size_t> permInv_;  ///< original row -> permuted row
  int permSign_ = 1;

  // Structural elimination lists over the permuted matrix (flattened CSR
  // style).  For pivot k: lRows_ holds the rows i > k with L(i,k) != 0,
  // uCols_ the columns j > k with U(k,j) != 0, and uColRows_ the rows i < k
  // with U(i,k) != 0 (for the column-sweep back substitution).
  std::vector<std::size_t> lStart_, lRows_;
  std::vector<std::size_t> uStart_, uCols_;
  std::vector<std::size_t> uColStart_, uColRows_;
  std::vector<std::size_t> zeroList_;  ///< flattened i*n+j of all L+U slots
  std::vector<char> symbolicScratch_;  ///< fill bitmap (buildSymbolic)

  mutable Vector work_;  ///< permuted rhs scratch for solveInPlace

  std::uint64_t fullFactors_ = 0;
  std::uint64_t fastRefactors_ = 0;
};

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_SPARSE_LU_HPP
