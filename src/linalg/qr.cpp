#include "linalg/qr.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace vsstat::linalg {

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  require(m >= n && n > 0, "QR: need m >= n >= 1");
  betas_.assign(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k.
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx += qr_(i, k) * qr_(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) continue;  // column already zero; flagged at solve time

    const double alpha = qr_(k, k) >= 0.0 ? -normx : normx;
    const double v0 = qr_(k, k) - alpha;
    qr_(k, k) = alpha;
    // Store v (scaled so v[k] = 1) below the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    betas_[k] = -v0 / alpha;

    // Apply reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= betas_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
}

void QrFactorization::applyQt(Vector& v) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  for (std::size_t k = 0; k < n; ++k) {
    if (betas_[k] == 0.0) continue;
    double s = v[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * v[i];
    s *= betas_[k];
    v[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) v[i] -= s * qr_(i, k);
  }
}

Vector QrFactorization::solveLeastSquares(const Vector& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  require(b.size() == m, "QR solve: rhs size mismatch");

  Vector y = b;
  applyQt(y);

  // Back substitution on R.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    const double diag = qr_(ii, ii);
    if (std::fabs(diag) < 1e-13) {
      throw ConvergenceError("QR: rank-deficient least-squares system",
                             static_cast<int>(ii));
    }
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= qr_(ii, j) * x[j];
    x[ii] = s / diag;
  }
  return x;
}

double QrFactorization::residualNorm(const Vector& b) const {
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  require(b.size() == m, "QR residual: rhs size mismatch");
  Vector y = b;
  applyQt(y);
  double s = 0.0;
  for (std::size_t i = n; i < m; ++i) s += y[i] * y[i];
  return std::sqrt(s);
}

Vector leastSquares(const Matrix& a, const Vector& b) {
  return QrFactorization(a).solveLeastSquares(b);
}

}  // namespace vsstat::linalg
