#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "linalg/ordering.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {

namespace {

std::uint64_t microsSince(
    const std::chrono::steady_clock::time_point& t0) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

void SparseLu::refactor(const SparseMatrix& m, double pivotTolerance) {
  if (mode_ == SolverMode::reusePivot) {
    refactorReusingPivots(m, pivotTolerance);
    return;
  }
  const SparsePattern& pattern = m.pattern();
  require(!pattern.empty(), "SparseLu: empty pattern");
  if (pattern_ != &pattern || n_ != pattern.size()) {
    fullFactor(m, pivotTolerance);
    return;
  }
  if (!fastRefactor(m, pivotTolerance, 0.0)) {
    // Pivot order went stale for the current values: re-pivot from scratch.
    fullFactor(m, pivotTolerance);
  }
}

void SparseLu::refactorReusingPivots(const SparseMatrix& m,
                                     double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  require(!pattern.empty(), "SparseLu: empty pattern");
  if (pattern_ != &pattern || n_ != pattern.size()) {
    fullFactor(m, pivotTolerance);
    return;
  }
  if (!fastRefactor(m, pivotTolerance, growthLimit_)) {
    // Monitor breakdown: the reused order hit a near-zero pivot or grew the
    // factor past the growth limit for these values.  Abandon it and derive
    // a fresh order from the values themselves; restorePivotSnapshot()
    // brings the canonical order back at the next solve boundary.
    ++pivotFallbacks_;
    fullFactor(m, pivotTolerance);
  }
}

void SparseLu::snapshotPivotOrder() {
  require(pattern_ != nullptr, "SparseLu: snapshot before factorization");
  snapshot_.pattern = pattern_;
  snapshot_.n = n_;
  snapshot_.patternNnz = patternNnz_;
  snapshot_.rowPerm = rowPerm_;
  snapshot_.permInv = permInv_;
  snapshot_.permSign = permSign_;
  snapshot_.lColStart = lColStart_;
  snapshot_.lRowIdx = lRowIdx_;
  snapshot_.uColStart = uColStart_;
  snapshot_.uRowIdx = uRowIdx_;
  snapshot_.colPerm = colPerm_;
  snapshot_.colSign = colSign_;
  snapshot_.aColStart = aColStart_;
  snapshot_.aRowIdx = aRowIdx_;
  snapshot_.aSlotIdx = aSlotIdx_;
  snapshotValid_ = true;
  divergedFromSnapshot_ = false;
}

void SparseLu::restorePivotSnapshot() noexcept {
  if (!snapshotValid_) {
    // No canonical order to reuse: behave like a fresh-mode solve boundary.
    reset();
    return;
  }
  if (!divergedFromSnapshot_) {
    // Steady state: the live structure IS the snapshot; just make sure a
    // reset() between solves (e.g. a mixed-mode caller) is undone.
    pattern_ = snapshot_.pattern;
    return;
  }
  // A breakdown re-pivot replaced the structure mid-solve; copy the
  // canonical one back.  assign()/resize() reuse capacity -- the vectors
  // were sized by a factorization of the same pattern, so no steady-state
  // allocation happens here either.  The value arrays only need their
  // sizes restored: the next refactor overwrites every slot.
  n_ = snapshot_.n;
  patternNnz_ = snapshot_.patternNnz;
  rowPerm_.assign(snapshot_.rowPerm.begin(), snapshot_.rowPerm.end());
  permInv_.assign(snapshot_.permInv.begin(), snapshot_.permInv.end());
  permSign_ = snapshot_.permSign;
  lColStart_.assign(snapshot_.lColStart.begin(), snapshot_.lColStart.end());
  lRowIdx_.assign(snapshot_.lRowIdx.begin(), snapshot_.lRowIdx.end());
  uColStart_.assign(snapshot_.uColStart.begin(), snapshot_.uColStart.end());
  uRowIdx_.assign(snapshot_.uRowIdx.begin(), snapshot_.uRowIdx.end());
  lValues_.resize(lRowIdx_.size());
  uValues_.resize(uRowIdx_.size());
  uDiag_.resize(n_);
  colPerm_.assign(snapshot_.colPerm.begin(), snapshot_.colPerm.end());
  colSign_ = snapshot_.colSign;
  aColStart_.assign(snapshot_.aColStart.begin(), snapshot_.aColStart.end());
  aRowIdx_.assign(snapshot_.aRowIdx.begin(), snapshot_.aRowIdx.end());
  aSlotIdx_.assign(snapshot_.aSlotIdx.begin(), snapshot_.aSlotIdx.end());
  orderPattern_ = snapshot_.pattern;
  orderN_ = snapshot_.n;
  orderNnz_ = snapshot_.patternNnz;
  pattern_ = snapshot_.pattern;
  divergedFromSnapshot_ = false;
}

void SparseLu::ensureOrdering(const SparsePattern& pattern) {
  if (orderPattern_ == &pattern && orderN_ == pattern.size() &&
      orderNnz_ == pattern.nonZeroCount()) {
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  FillOrder order = minDegreeOrder(pattern);
  colPerm_ = std::move(order.perm);
  colSign_ = order.sign;

  // Column-major access of the pattern slots.  The CSR pattern is sorted by
  // (row, col), so a single ascending slot scan lands each column's entries
  // in ascending row order.
  const std::size_t n = pattern.size();
  const std::size_t nnz = pattern.nonZeroCount();
  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  aColStart_.assign(n + 1, 0);
  for (std::size_t s = 0; s < nnz; ++s) ++aColStart_[cols[s] + 1];
  for (std::size_t c = 0; c < n; ++c) aColStart_[c + 1] += aColStart_[c];
  aRowIdx_.resize(nnz);
  aSlotIdx_.resize(nnz);
  std::vector<std::size_t> fill(aColStart_.begin(), aColStart_.end() - 1);
  for (std::size_t s = 0; s < nnz; ++s) {
    const std::size_t c = cols[s];
    aRowIdx_[fill[c]] = rows[s];
    aSlotIdx_[fill[c]] = s;
    ++fill[c];
  }
  orderPattern_ = &pattern;
  orderN_ = n;
  orderNnz_ = nnz;
  orderingMicros_ += microsSince(t0);
}

void SparseLu::fullFactor(const SparseMatrix& m, double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  const std::size_t n = pattern.size();
  const auto t0 = std::chrono::steady_clock::now();
  n_ = n;
  pattern_ = nullptr;  // not analyzed until this factorization succeeds
  if (snapshotValid_) divergedFromSnapshot_ = true;

  ensureOrdering(pattern);

  if (x_.size() != n) {
    x_.assign(n, 0.0);
    visited_.assign(n, 0);
  }
  xi_.resize(n);
  dfsStack_.resize(n);
  dfsPos_.resize(n);
  rowPerm_.resize(n);
  permInv_.assign(n, -1);
  work_.resize(n);
  lColStart_.resize(n + 1);
  uColStart_.resize(n + 1);
  lColStart_[0] = 0;
  uColStart_[0] = 0;
  lRowIdx_.clear();
  lValues_.clear();
  uRowIdx_.clear();
  uValues_.clear();
  uDiag_.resize(n);

  const auto& values = m.values();

  // Gilbert-Peierls left-looking factorization of PAQ with row partial
  // pivoting.  During the sweep, L's row indices are ORIGINAL rows (the
  // final pivotal relabeling happens only after every row is pivotal);
  // permInv_[i] >= 0 marks row i as pivotal and doubles as the "has an L
  // column" test the DFS descends through.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = colPerm_[k];

    // --- symbolic: reach of column j's pattern through the graph of L ------
    // xi_[top..n) receives the reach in topological order (parents before
    // the rows that depend on them), which is the order the numeric solve
    // below must visit.
    std::size_t top = n;
    for (std::size_t p = aColStart_[j]; p < aColStart_[j + 1]; ++p) {
      const std::size_t start = aRowIdx_[p];
      if (visited_[start]) continue;
      // Iterative DFS; dfsStack_ holds the path, dfsPos_ the next child.
      std::size_t head = 0;
      dfsStack_[0] = start;
      visited_[start] = 1;
      dfsPos_[0] =
          permInv_[start] >= 0 ? lColStart_[permInv_[start]] : 0;
      while (true) {
        const std::size_t i = dfsStack_[head];
        const std::int32_t kk = permInv_[i];
        bool descended = false;
        if (kk >= 0) {
          std::size_t q = dfsPos_[head];
          const std::size_t qEnd = lColStart_[static_cast<std::size_t>(kk) + 1];
          while (q < qEnd) {
            const std::size_t child = static_cast<std::size_t>(lRowIdx_[q]);
            ++q;
            if (!visited_[child]) {
              dfsPos_[head] = q;
              ++head;
              dfsStack_[head] = child;
              visited_[child] = 1;
              dfsPos_[head] =
                  permInv_[child] >= 0 ? lColStart_[permInv_[child]] : 0;
              descended = true;
              break;
            }
          }
          if (!descended) dfsPos_[head] = qEnd;
        }
        if (!descended) {
          xi_[--top] = i;
          if (head == 0) break;
          --head;
        }
      }
    }

    // --- numeric: sparse lower-triangular solve L x = A(:, j) --------------
    for (std::size_t p = aColStart_[j]; p < aColStart_[j + 1]; ++p)
      x_[aRowIdx_[p]] = values[aSlotIdx_[p]];
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t i = xi_[px];
      const std::int32_t kk = permInv_[i];
      if (kk < 0) continue;
      const double xk = x_[i];
      if (xk == 0.0) continue;
      const std::size_t qEnd = lColStart_[static_cast<std::size_t>(kk) + 1];
      for (std::size_t q = lColStart_[static_cast<std::size_t>(kk)]; q < qEnd;
           ++q) {
        x_[static_cast<std::size_t>(lRowIdx_[q])] -= lValues_[q] * xk;
      }
    }

    // --- pivot: largest magnitude among the not-yet-pivotal rows -----------
    double best = -1.0;
    std::size_t ipiv = n;
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t i = xi_[px];
      if (permInv_[i] >= 0) continue;
      const double v = std::fabs(x_[i]);
      if (v > best) {
        best = v;
        ipiv = i;
      }
    }
    if (ipiv == n || !(best >= pivotTolerance)) {
      // Negated comparison so a NaN column is also caught here instead of
      // silently poisoning the factors.  Restore the all-zero work
      // invariant before reporting: a later factorization must find x_ and
      // visited_ clean.
      for (std::size_t px = top; px < n; ++px) {
        x_[xi_[px]] = 0.0;
        visited_[xi_[px]] = 0;
      }
      throw SingularMatrixError(
          "SparseLu: matrix is singular to working precision",
          static_cast<int>(k));
    }
    const double pivot = x_[ipiv];
    rowPerm_[k] = ipiv;
    permInv_[ipiv] = static_cast<std::int32_t>(k);
    uDiag_[k] = pivot;

    // --- scatter-gather: partition the reach into U(:,k) and L(:,k) --------
    for (std::size_t px = top; px < n; ++px) {
      const std::size_t i = xi_[px];
      if (i != ipiv) {
        const std::int32_t kk = permInv_[i];
        if (kk >= 0) {
          uRowIdx_.push_back(kk);
          uValues_.push_back(x_[i]);
        } else {
          lRowIdx_.push_back(static_cast<std::int32_t>(i));
          lValues_.push_back(x_[i] / pivot);
        }
      }
      x_[i] = 0.0;
      visited_[i] = 0;
    }
    lColStart_[k + 1] = lRowIdx_.size();
    uColStart_[k + 1] = uRowIdx_.size();
  }

  // Relabel L's rows into pivotal order and sort both factors' columns
  // ascending (U's order is what the numeric refactor replays; L's is for
  // locality).  Insertion sort on the parallel arrays: columns are short
  // and nearly sorted, and it allocates nothing.
  for (auto& r : lRowIdx_) r = permInv_[static_cast<std::size_t>(r)];
  const auto sortColumn = [](std::size_t lo, std::size_t hi,
                             std::vector<std::int32_t>& idx,
                             std::vector<double>& val) noexcept {
    for (std::size_t p = lo + 1; p < hi; ++p) {
      const std::int32_t r = idx[p];
      const double v = val[p];
      std::size_t q = p;
      while (q > lo && idx[q - 1] > r) {
        idx[q] = idx[q - 1];
        val[q] = val[q - 1];
        --q;
      }
      idx[q] = r;
      val[q] = v;
    }
  };
  for (std::size_t k = 0; k < n; ++k) {
    sortColumn(lColStart_[k], lColStart_[k + 1], lRowIdx_, lValues_);
    sortColumn(uColStart_[k], uColStart_[k + 1], uRowIdx_, uValues_);
  }
  // Permutation sign by cycle decomposition, using visited_ as the cycle
  // marker (all-zero here by the work-array invariant, re-zeroed after) so
  // the fresh path stays allocation-free in steady state.
  permSign_ = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (visited_[i]) continue;
    std::size_t len = 0;
    for (std::size_t j = i; !visited_[j]; j = rowPerm_[j]) {
      visited_[j] = 1;
      ++len;
    }
    if (len % 2 == 0) permSign_ = -permSign_;
  }
  std::fill(visited_.begin(), visited_.end(), 0);

  patternNnz_ = pattern.nonZeroCount();
  pattern_ = &pattern;
  ++fullFactors_;
  fullFactorMicros_ += microsSince(t0);
}

bool SparseLu::fastRefactor(const SparseMatrix& m, double pivotTolerance,
                            double growthLimit) noexcept {
  const std::size_t n = n_;
  const auto& values = m.values();
  double* x = x_.data();
  // maxA is only consumed by the growth monitor; the unmonitored (fresh-
  // mode) scatter stays the lean hot path.
  double maxA = 0.0;

  // Replay the numeric sweep over the fixed structure: per pivotal column k,
  // scatter A(:, colPerm_[k]) into pivotal row positions, consume the U
  // entries in ascending pivotal order (each one final when read, because
  // U's columns are sorted), then divide out the pivot into L.  Every
  // touched position is re-zeroed as it is consumed, preserving the
  // all-zero invariant of x_ -- including on the breakdown paths.
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t j = colPerm_[k];
    const std::size_t aEnd = aColStart_[j + 1];
    if (growthLimit > 0.0) {
      for (std::size_t p = aColStart_[j]; p < aEnd; ++p) {
        const double v = values[aSlotIdx_[p]];
        x[permInv_[aRowIdx_[p]]] = v;
        maxA = std::max(maxA, std::fabs(v));
      }
    } else {
      for (std::size_t p = aColStart_[j]; p < aEnd; ++p)
        x[permInv_[aRowIdx_[p]]] = values[aSlotIdx_[p]];
    }

    const std::size_t uEnd = uColStart_[k + 1];
    for (std::size_t p = uColStart_[k]; p < uEnd; ++p) {
      const std::size_t kk = static_cast<std::size_t>(uRowIdx_[p]);
      const double ukj = x[kk];
      uValues_[p] = ukj;
      x[kk] = 0.0;
      if (ukj == 0.0) continue;
      const std::size_t qEnd = lColStart_[kk + 1];
      for (std::size_t q = lColStart_[kk]; q < qEnd; ++q)
        x[static_cast<std::size_t>(lRowIdx_[q])] -= lValues_[q] * ukj;
    }

    const double diag = x[k];
    x[k] = 0.0;
    const std::size_t lEnd = lColStart_[k + 1];
    // Negated form so a NaN diagonal reports breakdown instead of passing.
    if (!(std::fabs(diag) >= pivotTolerance)) {
      for (std::size_t q = lColStart_[k]; q < lEnd; ++q)
        x[static_cast<std::size_t>(lRowIdx_[q])] = 0.0;
      return false;
    }
    uDiag_[k] = diag;
    for (std::size_t q = lColStart_[k]; q < lEnd; ++q) {
      const std::size_t i = static_cast<std::size_t>(lRowIdx_[q]);
      lValues_[q] = x[i] / diag;
      x[i] = 0.0;
    }
  }

  if (growthLimit > 0.0) {
    // Element-growth monitor (pivot-reuse sessions): one O(nnz) post-pass
    // instead of per-update tracking, so the elimination loop above stays
    // identical to the unmonitored fresh-mode path.  Partial pivoting keeps
    // max|LU| / max|A| near 1; a stale order gone degenerate shows up as
    // orders-of-magnitude growth long before results silently degrade.
    double maxLu = 0.0;
    for (const double v : lValues_) maxLu = std::max(maxLu, std::fabs(v));
    for (const double v : uValues_) maxLu = std::max(maxLu, std::fabs(v));
    for (const double v : uDiag_) maxLu = std::max(maxLu, std::fabs(v));
    if (maxLu > growthLimit * maxA) return false;
  }

  ++fastRefactors_;
  return true;
}

void SparseLu::solveInPlace(Vector& x) const {
  const std::size_t n = n_;
  require(pattern_ != nullptr, "SparseLu: solve before factorization");
  require(x.size() == n, "SparseLu: rhs size mismatch");

  // Permute the right-hand side into factorization row order.
  for (std::size_t k = 0; k < n; ++k) work_[k] = x[rowPerm_[k]];

  // Column-sweep forward substitution (L has unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    const double xk = work_[k];
    if (xk == 0.0) continue;
    const std::size_t qEnd = lColStart_[k + 1];
    for (std::size_t q = lColStart_[k]; q < qEnd; ++q)
      work_[static_cast<std::size_t>(lRowIdx_[q])] -= lValues_[q] * xk;
  }
  // Column-sweep back substitution.
  for (std::size_t k = n; k-- > 0;) {
    const double xk = work_[k] / uDiag_[k];
    work_[k] = xk;
    if (xk == 0.0) continue;
    const std::size_t qEnd = uColStart_[k + 1];
    for (std::size_t q = uColStart_[k]; q < qEnd; ++q)
      work_[static_cast<std::size_t>(uRowIdx_[q])] -= uValues_[q] * xk;
  }
  // Undo the fill-reducing column permutation.
  for (std::size_t k = 0; k < n; ++k) x[colPerm_[k]] = work_[k];
}

Vector SparseLu::solve(const Vector& b) const {
  Vector x = b;
  solveInPlace(x);
  return x;
}

double SparseLu::determinant() const noexcept {
  double d = permSign_ * colSign_;
  for (std::size_t k = 0; k < n_; ++k) d *= uDiag_[k];
  return d;
}

}  // namespace vsstat::linalg
