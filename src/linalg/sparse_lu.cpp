#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vsstat::linalg {

void SparseLu::refactor(const SparseMatrix& m, double pivotTolerance) {
  if (mode_ == SolverMode::reusePivot) {
    refactorReusingPivots(m, pivotTolerance);
    return;
  }
  const SparsePattern& pattern = m.pattern();
  require(!pattern.empty(), "SparseLu: empty pattern");
  if (pattern_ != &pattern || n_ != pattern.size()) {
    fullFactor(m, pivotTolerance);
    return;
  }
  if (!fastRefactor(m, pivotTolerance, 0.0)) {
    // Pivot order went stale for the current values: re-pivot from scratch.
    fullFactor(m, pivotTolerance);
  }
}

void SparseLu::refactorReusingPivots(const SparseMatrix& m,
                                     double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  require(!pattern.empty(), "SparseLu: empty pattern");
  if (pattern_ != &pattern || n_ != pattern.size()) {
    fullFactor(m, pivotTolerance);
    return;
  }
  if (!fastRefactor(m, pivotTolerance, growthLimit_)) {
    // Monitor breakdown: the reused order hit a near-zero pivot or grew the
    // factor past the growth limit for these values.  Abandon it and derive
    // a fresh order from the values themselves; restorePivotSnapshot()
    // brings the canonical order back at the next solve boundary.
    ++pivotFallbacks_;
    fullFactor(m, pivotTolerance);
  }
}

void SparseLu::snapshotPivotOrder() {
  require(pattern_ != nullptr, "SparseLu: snapshot before factorization");
  snapshot_.pattern = pattern_;
  snapshot_.n = n_;
  snapshot_.rowPerm = rowPerm_;
  snapshot_.permInv = permInv_;
  snapshot_.permSign = permSign_;
  snapshot_.lStart = lStart_;
  snapshot_.lRows = lRows_;
  snapshot_.uStart = uStart_;
  snapshot_.uCols = uCols_;
  snapshot_.uColStart = uColStart_;
  snapshot_.uColRows = uColRows_;
  snapshot_.zeroList = zeroList_;
  snapshotValid_ = true;
  divergedFromSnapshot_ = false;
}

void SparseLu::restorePivotSnapshot() noexcept {
  if (!snapshotValid_) {
    // No canonical order to reuse: behave like a fresh-mode solve boundary.
    reset();
    return;
  }
  if (!divergedFromSnapshot_) {
    // Steady state: the live structure IS the snapshot; just make sure a
    // reset() between solves (e.g. a mixed-mode caller) is undone.
    pattern_ = snapshot_.pattern;
    return;
  }
  // A breakdown re-pivot replaced the structure mid-solve; copy the
  // canonical one back.  assign() reuses capacity -- the vectors were
  // sized by a factorization of the same pattern, so no steady-state
  // allocation happens here either.
  n_ = snapshot_.n;
  rowPerm_.assign(snapshot_.rowPerm.begin(), snapshot_.rowPerm.end());
  permInv_.assign(snapshot_.permInv.begin(), snapshot_.permInv.end());
  permSign_ = snapshot_.permSign;
  lStart_.assign(snapshot_.lStart.begin(), snapshot_.lStart.end());
  lRows_.assign(snapshot_.lRows.begin(), snapshot_.lRows.end());
  uStart_.assign(snapshot_.uStart.begin(), snapshot_.uStart.end());
  uCols_.assign(snapshot_.uCols.begin(), snapshot_.uCols.end());
  uColStart_.assign(snapshot_.uColStart.begin(), snapshot_.uColStart.end());
  uColRows_.assign(snapshot_.uColRows.begin(), snapshot_.uColRows.end());
  zeroList_.assign(snapshot_.zeroList.begin(), snapshot_.zeroList.end());
  pattern_ = snapshot_.pattern;
  divergedFromSnapshot_ = false;
}

void SparseLu::fullFactor(const SparseMatrix& m, double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  const std::size_t n = pattern.size();
  n_ = n;
  pattern_ = nullptr;  // not analyzed until this factorization succeeds
  if (snapshotValid_) divergedFromSnapshot_ = true;

  if (scratch_.rows() != n || scratch_.cols() != n) scratch_ = Matrix(n, n);
  scratch_.fill(0.0);
  rowPerm_.resize(n);
  permInv_.resize(n);
  work_.resize(n);
  for (std::size_t i = 0; i < n; ++i) rowPerm_[i] = i;
  permSign_ = 1;

  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  const auto& values = m.values();
  for (std::size_t s = 0; s < values.size(); ++s)
    scratch_(rows[s], cols[s]) = values[s];

  // Dense partial-pivot factorization; the swap sequence defines the row
  // order every later fast refactor will reuse.
  double* a = scratch_.data();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::fabs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a[i * n + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (!(best >= pivotTolerance)) {
      // Negated comparison so a NaN column (best == NaN) is also caught here
      // instead of silently poisoning the factors.
      throw SingularMatrixError(
          "SparseLu: matrix is singular to working precision",
          static_cast<int>(k));
    }
    if (p != k) {
      permSign_ = -permSign_;
      std::swap(rowPerm_[k], rowPerm_[p]);
      for (std::size_t j = 0; j < n; ++j) std::swap(a[k * n + j], a[p * n + j]);
    }
    const double diag = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = a[i * n + k] / diag;
      a[i * n + k] = mult;
      if (mult == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a[i * n + j] -= mult * a[k * n + j];
    }
  }
  for (std::size_t k = 0; k < n; ++k) permInv_[rowPerm_[k]] = k;

  buildSymbolic(pattern);
  pattern_ = &pattern;
  ++fullFactors_;
}

void SparseLu::buildSymbolic(const SparsePattern& pattern) {
  const std::size_t n = n_;
  // Boolean elimination of the permuted pattern: every pattern position is
  // treated as nonzero, so the resulting L+U structure is a superset of the
  // numeric nonzeros for *any* values on this pattern under this row order.
  // Member scratch, not a local: sessions reset() the pivot order before
  // every solve, so buildSymbolic reruns per solve and a local bitmap was
  // one heap allocation per DC solve across a whole campaign.
  std::vector<char>& b = symbolicScratch_;
  b.assign(n * n, 0);
  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  for (std::size_t s = 0; s < pattern.nonZeroCount(); ++s)
    b[permInv_[rows[s]] * n + cols[s]] = 1;

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      if (!b[i * n + k]) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        if (b[k * n + j]) b[i * n + j] = 1;
      }
    }
  }

  lStart_.assign(n + 1, 0);
  uStart_.assign(n + 1, 0);
  uColStart_.assign(n + 1, 0);
  lRows_.clear();
  uCols_.clear();
  uColRows_.clear();
  zeroList_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    lStart_[k] = lRows_.size();
    for (std::size_t i = k + 1; i < n; ++i) {
      if (b[i * n + k]) lRows_.push_back(i);
    }
    uStart_[k] = uCols_.size();
    for (std::size_t j = k + 1; j < n; ++j) {
      if (b[k * n + j]) uCols_.push_back(j);
    }
    uColStart_[k] = uColRows_.size();
    for (std::size_t i = 0; i < k; ++i) {
      if (b[i * n + k]) uColRows_.push_back(i);
    }
  }
  lStart_[n] = lRows_.size();
  uStart_[n] = uCols_.size();
  uColStart_[n] = uColRows_.size();

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (b[i * n + j]) zeroList_.push_back(i * n + j);
    }
  }
}

bool SparseLu::fastRefactor(const SparseMatrix& m, double pivotTolerance,
                            double growthLimit) noexcept {
  const std::size_t n = n_;
  double* a = scratch_.data();

  // Reset only the structural L+U positions -- everything the elimination
  // below can read or write -- then overwrite the pattern slots with the
  // fresh values.  No O(n^2) clear, no allocation.
  for (const std::size_t idx : zeroList_) a[idx] = 0.0;
  const auto& rows = pattern_->rowIndex();
  const auto& cols = pattern_->colIndex();
  const auto& values = m.values();
  // maxA is only consumed by the growth monitor; the unmonitored (fresh-
  // mode) scatter stays exactly the pre-reuse hot path.
  double maxA = 0.0;
  if (growthLimit > 0.0) {
    for (std::size_t s = 0; s < values.size(); ++s) {
      const double v = values[s];
      a[permInv_[rows[s]] * n + cols[s]] = v;
      maxA = std::max(maxA, std::fabs(v));
    }
  } else {
    for (std::size_t s = 0; s < values.size(); ++s)
      a[permInv_[rows[s]] * n + cols[s]] = values[s];
  }

  // Numeric elimination along the precomputed structure.
  for (std::size_t k = 0; k < n; ++k) {
    const double diag = a[k * n + k];
    // Negated form so a NaN diagonal reports breakdown instead of passing.
    if (!(std::fabs(diag) >= pivotTolerance)) return false;
    const double* pivotRow = a + k * n;
    const std::size_t uBegin = uStart_[k];
    const std::size_t uEnd = uStart_[k + 1];
    for (std::size_t li = lStart_[k]; li < lStart_[k + 1]; ++li) {
      const std::size_t i = lRows_[li];
      const double mult = a[i * n + k] / diag;
      a[i * n + k] = mult;
      if (mult == 0.0) continue;
      double* row = a + i * n;
      for (std::size_t ui = uBegin; ui < uEnd; ++ui) {
        const std::size_t j = uCols_[ui];
        row[j] -= mult * pivotRow[j];
      }
    }
  }

  if (growthLimit > 0.0) {
    // Element-growth monitor (pivot-reuse sessions): one O(nnz) post-pass
    // instead of per-update tracking, so the elimination loop above stays
    // identical to the unmonitored fresh-mode path.  Partial pivoting keeps
    // max|LU| / max|A| near 1; a stale order gone degenerate shows up as
    // orders-of-magnitude growth long before results silently degrade.
    double maxLu = 0.0;
    for (const std::size_t idx : zeroList_)
      maxLu = std::max(maxLu, std::fabs(a[idx]));
    if (maxLu > growthLimit * maxA) return false;
  }

  ++fastRefactors_;
  return true;
}

void SparseLu::solveInPlace(Vector& x) const {
  const std::size_t n = n_;
  require(pattern_ != nullptr, "SparseLu: solve before factorization");
  require(x.size() == n, "SparseLu: rhs size mismatch");
  const double* a = scratch_.data();

  // Permute the right-hand side into factorization row order.
  for (std::size_t k = 0; k < n; ++k) work_[k] = x[rowPerm_[k]];

  // Column-sweep forward substitution (L has unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    const double xk = work_[k];
    if (xk == 0.0) continue;
    for (std::size_t li = lStart_[k]; li < lStart_[k + 1]; ++li) {
      const std::size_t i = lRows_[li];
      work_[i] -= a[i * n + k] * xk;
    }
  }
  // Column-sweep back substitution.
  for (std::size_t k = n; k-- > 0;) {
    const double xk = work_[k] / a[k * n + k];
    work_[k] = xk;
    if (xk == 0.0) continue;
    for (std::size_t ui = uColStart_[k]; ui < uColStart_[k + 1]; ++ui) {
      const std::size_t i = uColRows_[ui];
      work_[i] -= a[i * n + k] * xk;
    }
  }
  std::copy(work_.begin(), work_.end(), x.begin());
}

Vector SparseLu::solve(const Vector& b) const {
  Vector x = b;
  solveInPlace(x);
  return x;
}

double SparseLu::determinant() const noexcept {
  double d = permSign_;
  for (std::size_t k = 0; k < n_; ++k) d *= scratch_(k, k);
  return d;
}

}  // namespace vsstat::linalg
