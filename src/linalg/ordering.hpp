// Fill-reducing elimination orders for sparse MNA factorization.
//
// A good column order is what makes graph-sparse LU pay: eliminating
// low-degree nodes first keeps the fill-in (and therefore the numeric work
// of every later refactorization) near-linear in the pattern nonzeros on
// grid/mesh-shaped circuits, instead of the O(n^2) fill a natural order can
// produce.  The order is a pure function of the pattern -- no values are
// consulted -- so callers may compute it once per captured MNA pattern and
// reuse it for every sample of a campaign without touching any bit-identity
// contract.
#ifndef VSSTAT_LINALG_ORDERING_HPP
#define VSSTAT_LINALG_ORDERING_HPP

#include <cstddef>
#include <vector>

#include "linalg/sparse.hpp"

namespace vsstat::linalg {

/// A fill-reducing elimination order.
struct FillOrder {
  /// perm[k] = original index eliminated at step k.
  std::vector<std::size_t> perm;
  /// Parity of the permutation (+1 or -1), for determinants.
  int sign = 1;
};

/// Greedy minimum-degree ordering on the symmetrized graph of A + A^T
/// (self-loops ignored).  Each step eliminates the lowest-index vertex of
/// minimum current degree and connects its neighbors into a clique (the
/// structural fill of that elimination step), exactly mirroring what the
/// numeric factorization will do.  Deterministic by construction: ties
/// always break toward the lowest original index.
///
/// Row pivoting composes freely with this column order: the factorization
/// pivots PAQ = LU with Q from here and P chosen numerically per column.
[[nodiscard]] FillOrder minDegreeOrder(const SparsePattern& pattern);

/// Parity (+1 / -1) of a permutation given as perm[k] = original index.
[[nodiscard]] int permutationSign(const std::vector<std::size_t>& perm);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_ORDERING_HPP
