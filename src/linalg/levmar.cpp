#include "linalg/levmar.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/error.hpp"

namespace vsstat::linalg {

namespace {

void clampToBounds(Vector& x, const Vector& lo, const Vector& hi) {
  if (!lo.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], lo[i]);
  }
  if (!hi.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], hi[i]);
  }
}

double costOf(const Vector& r) {
  double s = 0.0;
  for (double v : r) s += v * v;
  return 0.5 * s;
}

bool allFinite(const Vector& v) {
  for (double e : v)
    if (!std::isfinite(e)) return false;
  return true;
}

/// In-place dense LU solve with partial pivoting on the damped normal
/// matrix (a is n x n row-major, overwritten; b becomes the solution).
/// Returns false -- a untouched semantics don't matter, caller rebuilds it
/// -- when a pivot column is exactly zero: with the Marquardt diagonal
/// boost this means the damped system is singular at working precision.
bool solveInPlaceLu(double* a, int* pivot, double* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::fabs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a[i * n + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (!(best > 0.0)) return false;  // zero or NaN pivot column
    pivot[k] = static_cast<int>(p);
    if (p != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a[k * n + j], a[p * n + j]);
      std::swap(b[k], b[p]);
    }
    const double inv = 1.0 / a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = a[i * n + k] * inv;
      if (f == 0.0) continue;
      a[i * n + k] = f;
      for (std::size_t j = k + 1; j < n; ++j) a[i * n + j] -= f * a[k * n + j];
      b[i] -= f * b[k];
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    double s = b[k];
    for (std::size_t j = k + 1; j < n; ++j) s -= a[k * n + j] * b[j];
    b[k] = s / a[k * n + k];
  }
  return true;
}

std::uint32_t boundMaskOf(const Vector& x, const Vector& lo, const Vector& hi) {
  std::uint32_t mask = 0;
  for (std::size_t j = 0; j < x.size() && j < 32; ++j) {
    const bool atLo = !lo.empty() && x[j] <= lo[j];
    const bool atHi = !hi.empty() && x[j] >= hi[j];
    if (atLo || atHi) mask |= (1u << j);
  }
  return mask;
}

}  // namespace

void levenbergMarquardt(const ResidualFn& fn, const Vector& x0,
                        std::size_t residualSize, const LevMarOptions& options,
                        LevMarWorkspace& ws, LevMarResult& result) {
  const std::size_t n = x0.size();
  const std::size_t m = residualSize;
  require(n > 0 && m >= n, "levmar: need residualSize >= #parameters >= 1");
  require(n <= 32, "levmar: at most 32 parameters (bound-mask width)");
  require(options.lowerBounds.empty() || options.lowerBounds.size() == n,
          "levmar: lower bounds size mismatch");
  require(options.upperBounds.empty() || options.upperBounds.size() == n,
          "levmar: upper bounds size mismatch");
  const Vector& lo = options.lowerBounds;
  const Vector& hi = options.upperBounds;

  ws.x.resize(n);
  ws.xTrial.resize(n);
  ws.xPerturbed.resize(n);
  ws.r.resize(m);
  ws.rTrial.resize(m);
  ws.rPerturbed.resize(m);
  ws.jacobian.resize(m * n);
  ws.g.resize(n);
  ws.step.resize(n);
  ws.h.resize(n * n);
  ws.hDamped.resize(n * n);
  ws.pivot.resize(n);

  Vector& x = ws.x;
  std::copy(x0.begin(), x0.end(), x.begin());
  clampToBounds(x, lo, hi);

  fn(x, ws.r);
  if (!allFinite(ws.r))
    throw NonFiniteError("levmar: non-finite residual at the starting point");
  double cost = costOf(ws.r);
  const double initialCost = cost;

  double lambda = options.initialLambda;
  bool converged = false;
  bool stalled = false;
  int iter = 0;

  for (; iter < options.maxIterations; ++iter) {
    // Numeric Jacobian (forward differences, bound-aware direction).
    for (std::size_t j = 0; j < n; ++j) {
      double h = options.fdRelStep * std::max(std::fabs(x[j]), 1e-12);
      std::copy(x.begin(), x.end(), ws.xPerturbed.begin());
      ws.xPerturbed[j] += h;
      if (!hi.empty() && ws.xPerturbed[j] > hi[j]) {
        ws.xPerturbed[j] = x[j] - h;  // step backwards at the upper bound
        h = -h;
      }
      fn(ws.xPerturbed, ws.rPerturbed);
      for (std::size_t i = 0; i < m; ++i)
        ws.jacobian[i * n + j] = (ws.rPerturbed[i] - ws.r[i]) / h;
    }

    // Normal equations pieces: g = J^T r, H = J^T J.
    std::fill(ws.g.begin(), ws.g.end(), 0.0);
    std::fill(ws.h.begin(), ws.h.end(), 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double* row = &ws.jacobian[i * n];
      for (std::size_t j = 0; j < n; ++j) {
        ws.g[j] += row[j] * ws.r[i];
        for (std::size_t k = j; k < n; ++k) ws.h[j * n + k] += row[j] * row[k];
      }
    }
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < j; ++k) ws.h[j * n + k] = ws.h[k * n + j];

    // A Jacobian evaluated off a finite residual can still overflow into
    // the normal equations; classify that here instead of letting NaN walk
    // through the solve and the cost comparisons (which would previously
    // exit reporting success).
    if (!allFinite(ws.g) || !allFinite(ws.h))
      throw NonFiniteError("levmar: non-finite Jacobian/normal equations at iteration " +
                           std::to_string(iter));

    // Projected-gradient first-order check: a component pressed against a
    // bound with its descent direction pointing outside the box cannot
    // move, so it is excluded from the optimality measure (the clamped-step
    // analogue of a KKT check).  Without this, bound-pinned fits never
    // formally converge -- the raw gradient stays large forever.
    double pgInf = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const bool blockedLo = !lo.empty() && x[j] <= lo[j] && ws.g[j] > 0.0;
      const bool blockedHi = !hi.empty() && x[j] >= hi[j] && ws.g[j] < 0.0;
      if (!blockedLo && !blockedHi) pgInf = std::max(pgInf, std::fabs(ws.g[j]));
    }
    if (pgInf < options.gradientTolerance) {
      converged = true;
      break;
    }

    // Try damped steps, growing lambda until the cost decreases.
    bool accepted = false;
    int attempts = 0;
    int singularAttempts = 0;
    for (int attempt = 0; attempt < 30; ++attempt) {
      ++attempts;
      std::copy(ws.h.begin(), ws.h.end(), ws.hDamped.begin());
      for (std::size_t j = 0; j < n; ++j)
        ws.hDamped[j * n + j] += lambda * std::max(ws.h[j * n + j], 1e-12);
      std::copy(ws.g.begin(), ws.g.end(), ws.step.begin());
      if (!solveInPlaceLu(ws.hDamped.data(), ws.pivot.data(), ws.step.data(),
                          n)) {
        ++singularAttempts;
        lambda *= options.lambdaUp;
        continue;
      }

      for (std::size_t j = 0; j < n; ++j) ws.xTrial[j] = x[j] - ws.step[j];
      clampToBounds(ws.xTrial, lo, hi);

      fn(ws.xTrial, ws.rTrial);
      const double costTrial = costOf(ws.rTrial);
      // A non-finite *trial* cost compares false and is rejected like any
      // cost increase: the model failed at the trial point, so the step
      // shrinks and the search continues from the last good iterate.
      if (costTrial < cost) {
        double stepNormSq = 0.0;
        double xNormSq = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          const double d = ws.xTrial[j] - x[j];
          stepNormSq += d * d;
          xNormSq += x[j] * x[j];
        }
        const double relStep =
            std::sqrt(stepNormSq) / std::max(std::sqrt(xNormSq), 1e-12);
        std::swap(x, ws.xTrial);
        std::swap(ws.r, ws.rTrial);
        const double improvement = (cost - costTrial) / std::max(cost, 1e-300);
        cost = costTrial;
        lambda = std::max(lambda * options.lambdaDown, 1e-12);
        accepted = true;
        if (relStep < options.stepTolerance || improvement < 1e-12) {
          converged = true;
        }
        break;
      }
      lambda *= options.lambdaUp;
    }
    if (!accepted) {
      // Every damping level produced a singular system: the normal matrix
      // is rank deficient beyond what Marquardt damping can regularize
      // (e.g. exactly collinear parameter columns).  That is a classified
      // failure, not a local optimum.
      if (singularAttempts == attempts)
        throw SingularMatrixError(
            "levmar: damped normal equations singular at every damping level",
            iter);
      stalled = true;
      converged = true;  // stall == numerical local optimum for us
      break;
    }
    if (converged) break;
  }

  result.x.resize(n);
  std::copy(x.begin(), x.end(), result.x.begin());
  result.cost = cost;
  result.initialCost = initialCost;
  result.iterations = iter;
  result.converged = converged;
  result.stalled = stalled;
  result.activeBounds = boundMaskOf(result.x, lo, hi);
}

LevMarResult levenbergMarquardt(const ResidualFn& fn, const Vector& x0,
                                std::size_t residualSize,
                                const LevMarOptions& options) {
  LevMarWorkspace ws;
  LevMarResult result;
  levenbergMarquardt(fn, x0, residualSize, options, ws, result);
  return result;
}

}  // namespace vsstat::linalg
