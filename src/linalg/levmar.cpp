#include "linalg/levmar.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lu.hpp"
#include "util/error.hpp"

namespace vsstat::linalg {

namespace {

void clampToBounds(Vector& x, const Vector& lo, const Vector& hi) {
  if (!lo.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::max(x[i], lo[i]);
  }
  if (!hi.empty()) {
    for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::min(x[i], hi[i]);
  }
}

double costOf(const Vector& r) {
  double s = 0.0;
  for (double v : r) s += v * v;
  return 0.5 * s;
}

}  // namespace

LevMarResult levenbergMarquardt(const ResidualFn& fn, const Vector& x0,
                                std::size_t residualSize,
                                const LevMarOptions& options) {
  const std::size_t n = x0.size();
  const std::size_t m = residualSize;
  require(n > 0 && m >= n, "levmar: need residualSize >= #parameters >= 1");
  require(options.lowerBounds.empty() || options.lowerBounds.size() == n,
          "levmar: lower bounds size mismatch");
  require(options.upperBounds.empty() || options.upperBounds.size() == n,
          "levmar: upper bounds size mismatch");

  Vector x = x0;
  clampToBounds(x, options.lowerBounds, options.upperBounds);

  Vector r(m), rTrial(m), rPerturbed(m);
  fn(x, r);
  double cost = costOf(r);
  const double initialCost = cost;

  double lambda = options.initialLambda;
  Matrix jacobian(m, n);
  bool converged = false;
  int iter = 0;

  for (; iter < options.maxIterations; ++iter) {
    // Numeric Jacobian (forward differences, bound-aware direction).
    for (std::size_t j = 0; j < n; ++j) {
      double h = options.fdRelStep * std::max(std::fabs(x[j]), 1e-12);
      Vector xp = x;
      xp[j] += h;
      if (!options.upperBounds.empty() && xp[j] > options.upperBounds[j]) {
        xp[j] = x[j] - h;  // step backwards at the upper bound
        h = -h;
      }
      fn(xp, rPerturbed);
      for (std::size_t i = 0; i < m; ++i)
        jacobian(i, j) = (rPerturbed[i] - r[i]) / h;
    }

    // Normal equations pieces: g = J^T r, H = J^T J.
    Vector g(n, 0.0);
    Matrix h(n, n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        g[j] += jacobian(i, j) * r[i];
        for (std::size_t k = j; k < n; ++k)
          h(j, k) += jacobian(i, j) * jacobian(i, k);
      }
    }
    for (std::size_t j = 0; j < n; ++j)
      for (std::size_t k = 0; k < j; ++k) h(j, k) = h(k, j);

    if (normInf(g) < options.gradientTolerance) {
      converged = true;
      break;
    }

    // Try damped steps, growing lambda until the cost decreases.
    bool accepted = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      Matrix hDamped = h;
      for (std::size_t j = 0; j < n; ++j)
        hDamped(j, j) += lambda * std::max(h(j, j), 1e-12);

      Vector step;
      try {
        step = luSolve(hDamped, g);
      } catch (const ConvergenceError&) {
        lambda *= options.lambdaUp;
        continue;
      }

      Vector xTrial(n);
      for (std::size_t j = 0; j < n; ++j) xTrial[j] = x[j] - step[j];
      clampToBounds(xTrial, options.lowerBounds, options.upperBounds);

      fn(xTrial, rTrial);
      const double costTrial = costOf(rTrial);
      if (costTrial < cost) {
        const double relStep = norm2(sub(xTrial, x)) /
                               std::max(norm2(x), 1e-12);
        x = xTrial;
        r = rTrial;
        const double improvement = (cost - costTrial) / std::max(cost, 1e-300);
        cost = costTrial;
        lambda = std::max(lambda * options.lambdaDown, 1e-12);
        accepted = true;
        if (relStep < options.stepTolerance || improvement < 1e-12) {
          converged = true;
        }
        break;
      }
      lambda *= options.lambdaUp;
    }
    if (!accepted || converged) {
      converged = converged || !accepted;  // stall == local optimum for us
      break;
    }
  }

  LevMarResult result;
  result.x = std::move(x);
  result.cost = cost;
  result.initialCost = initialCost;
  result.iterations = iter;
  result.converged = converged;
  return result;
}

}  // namespace vsstat::linalg
