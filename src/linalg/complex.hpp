// Dense complex matrix and LU solver for small-signal (AC) analysis.
//
// The AC system (G + jwC) x = b is complex-symmetric in structure but not
// Hermitian, so a general complex LU with partial pivoting is the right
// tool.  Sizes match the MNA systems (tens of unknowns), hence the same
// value-semantic dense design as linalg::Matrix.
#ifndef VSSTAT_LINALG_COMPLEX_HPP
#define VSSTAT_LINALG_COMPLEX_HPP

#include <complex>
#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

using Complex = std::complex<double>;
using ComplexVector = std::vector<Complex>;

/// Value-semantic dense complex matrix, row-major storage.
class ComplexMatrix {
 public:
  ComplexMatrix() = default;
  ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill = {});

  /// Builds `re + j*im`; shapes must match (im may be empty for a real
  /// matrix promoted to complex).
  static ComplexMatrix fromRealImag(const Matrix& re, const Matrix& im);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] Complex& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] Complex operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  void fill(Complex value) noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  ComplexVector data_;
};

[[nodiscard]] ComplexVector operator*(const ComplexMatrix& a,
                                      const ComplexVector& x);

/// Complex LU factorization with partial pivoting (by modulus).
class ComplexLuFactorization {
 public:
  /// Factors a square matrix.  Throws ConvergenceError on numerical
  /// singularity (pivot modulus below `pivotTolerance`).
  explicit ComplexLuFactorization(ComplexMatrix a,
                                  double pivotTolerance = 1e-14);

  /// Solves A x = b.
  [[nodiscard]] ComplexVector solve(const ComplexVector& b) const;

  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  ComplexMatrix lu_;
  std::vector<std::size_t> pivots_;
};

/// One-shot convenience solve of A x = b.
[[nodiscard]] ComplexVector complexLuSolve(const ComplexMatrix& a,
                                           const ComplexVector& b);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_COMPLEX_HPP
