// Cholesky factorization of symmetric positive definite matrices.
// Used for covariance handling (confidence ellipses, correlated sampling).
#ifndef VSSTAT_LINALG_CHOLESKY_HPP
#define VSSTAT_LINALG_CHOLESKY_HPP

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
/// Throws ConvergenceError when A is not positive definite.
[[nodiscard]] Matrix choleskyFactor(const Matrix& a);

/// Solves A x = b given A SPD (factors internally).
[[nodiscard]] Vector choleskySolve(const Matrix& a, const Vector& b);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_CHOLESKY_HPP
