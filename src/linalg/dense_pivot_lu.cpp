#include "linalg/dense_pivot_lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vsstat::linalg {

void DensePivotLu::refactor(const SparseMatrix& m, double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  require(!pattern.empty(), "DensePivotLu: empty pattern");
  if (pattern_ != &pattern || n_ != pattern.size()) {
    fullFactor(m, pivotTolerance);
    return;
  }
  if (!fastRefactor(m, pivotTolerance)) {
    fullFactor(m, pivotTolerance);
  }
}

void DensePivotLu::fullFactor(const SparseMatrix& m, double pivotTolerance) {
  const SparsePattern& pattern = m.pattern();
  const std::size_t n = pattern.size();
  n_ = n;
  pattern_ = nullptr;

  if (scratch_.rows() != n || scratch_.cols() != n) scratch_ = Matrix(n, n);
  scratch_.fill(0.0);
  rowPerm_.resize(n);
  permInv_.resize(n);
  work_.resize(n);
  for (std::size_t i = 0; i < n; ++i) rowPerm_[i] = i;
  permSign_ = 1;

  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  const auto& values = m.values();
  for (std::size_t s = 0; s < values.size(); ++s)
    scratch_(rows[s], cols[s]) = values[s];

  double* a = scratch_.data();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t p = k;
    double best = std::fabs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(a[i * n + k]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (!(best >= pivotTolerance)) {
      throw SingularMatrixError(
          "DensePivotLu: matrix is singular to working precision",
          static_cast<int>(k));
    }
    if (p != k) {
      permSign_ = -permSign_;
      std::swap(rowPerm_[k], rowPerm_[p]);
      for (std::size_t j = 0; j < n; ++j) std::swap(a[k * n + j], a[p * n + j]);
    }
    const double diag = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mult = a[i * n + k] / diag;
      a[i * n + k] = mult;
      if (mult == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j)
        a[i * n + j] -= mult * a[k * n + j];
    }
  }
  for (std::size_t k = 0; k < n; ++k) permInv_[rowPerm_[k]] = k;

  buildSymbolic(pattern);
  pattern_ = &pattern;
  ++fullFactors_;
}

void DensePivotLu::buildSymbolic(const SparsePattern& pattern) {
  const std::size_t n = n_;
  // Boolean elimination of the permuted pattern: a superset of the numeric
  // nonzeros for any values on this pattern under this row order.
  std::vector<char>& b = symbolicScratch_;
  b.assign(n * n, 0);
  const auto& rows = pattern.rowIndex();
  const auto& cols = pattern.colIndex();
  for (std::size_t s = 0; s < pattern.nonZeroCount(); ++s)
    b[permInv_[rows[s]] * n + cols[s]] = 1;

  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      if (!b[i * n + k]) continue;
      for (std::size_t j = k + 1; j < n; ++j) {
        if (b[k * n + j]) b[i * n + j] = 1;
      }
    }
  }

  lStart_.assign(n + 1, 0);
  uStart_.assign(n + 1, 0);
  uColStart_.assign(n + 1, 0);
  lRows_.clear();
  uCols_.clear();
  uColRows_.clear();
  zeroList_.clear();
  for (std::size_t k = 0; k < n; ++k) {
    lStart_[k] = lRows_.size();
    for (std::size_t i = k + 1; i < n; ++i) {
      if (b[i * n + k]) lRows_.push_back(i);
    }
    uStart_[k] = uCols_.size();
    for (std::size_t j = k + 1; j < n; ++j) {
      if (b[k * n + j]) uCols_.push_back(j);
    }
    uColStart_[k] = uColRows_.size();
    for (std::size_t i = 0; i < k; ++i) {
      if (b[i * n + k]) uColRows_.push_back(i);
    }
  }
  lStart_[n] = lRows_.size();
  uStart_[n] = uCols_.size();
  uColStart_[n] = uColRows_.size();

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (b[i * n + j]) zeroList_.push_back(i * n + j);
    }
  }
}

bool DensePivotLu::fastRefactor(const SparseMatrix& m,
                                double pivotTolerance) noexcept {
  const std::size_t n = n_;
  double* a = scratch_.data();

  for (const std::size_t idx : zeroList_) a[idx] = 0.0;
  const auto& rows = pattern_->rowIndex();
  const auto& cols = pattern_->colIndex();
  const auto& values = m.values();
  for (std::size_t s = 0; s < values.size(); ++s)
    a[permInv_[rows[s]] * n + cols[s]] = values[s];

  for (std::size_t k = 0; k < n; ++k) {
    const double diag = a[k * n + k];
    if (!(std::fabs(diag) >= pivotTolerance)) return false;
    const double* pivotRow = a + k * n;
    const std::size_t uBegin = uStart_[k];
    const std::size_t uEnd = uStart_[k + 1];
    for (std::size_t li = lStart_[k]; li < lStart_[k + 1]; ++li) {
      const std::size_t i = lRows_[li];
      const double mult = a[i * n + k] / diag;
      a[i * n + k] = mult;
      if (mult == 0.0) continue;
      double* row = a + i * n;
      for (std::size_t ui = uBegin; ui < uEnd; ++ui) {
        const std::size_t j = uCols_[ui];
        row[j] -= mult * pivotRow[j];
      }
    }
  }

  ++fastRefactors_;
  return true;
}

void DensePivotLu::solveInPlace(Vector& x) const {
  const std::size_t n = n_;
  require(pattern_ != nullptr, "DensePivotLu: solve before factorization");
  require(x.size() == n, "DensePivotLu: rhs size mismatch");
  const double* a = scratch_.data();

  for (std::size_t k = 0; k < n; ++k) work_[k] = x[rowPerm_[k]];

  for (std::size_t k = 0; k < n; ++k) {
    const double xk = work_[k];
    if (xk == 0.0) continue;
    for (std::size_t li = lStart_[k]; li < lStart_[k + 1]; ++li) {
      const std::size_t i = lRows_[li];
      work_[i] -= a[i * n + k] * xk;
    }
  }
  for (std::size_t k = n; k-- > 0;) {
    const double xk = work_[k] / a[k * n + k];
    work_[k] = xk;
    if (xk == 0.0) continue;
    for (std::size_t ui = uColStart_[k]; ui < uColStart_[k + 1]; ++ui) {
      const std::size_t i = uColRows_[ui];
      work_[i] -= a[i * n + k] * xk;
    }
  }
  std::copy(work_.begin(), work_.end(), x.begin());
}

Vector DensePivotLu::solve(const Vector& b) const {
  Vector x = b;
  solveInPlace(x);
  return x;
}

double DensePivotLu::determinant() const noexcept {
  double d = permSign_;
  for (std::size_t k = 0; k < n_; ++k) d *= scratch_(k, k);
  return d;
}

}  // namespace vsstat::linalg
