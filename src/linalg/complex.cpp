#include "linalg/complex.hpp"

#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace vsstat::linalg {

ComplexMatrix::ComplexMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

ComplexMatrix ComplexMatrix::fromRealImag(const Matrix& re, const Matrix& im) {
  require(im.empty() || (im.rows() == re.rows() && im.cols() == re.cols()),
          "ComplexMatrix::fromRealImag: shape mismatch");
  ComplexMatrix m(re.rows(), re.cols());
  for (std::size_t r = 0; r < re.rows(); ++r) {
    for (std::size_t c = 0; c < re.cols(); ++c) {
      m(r, c) = Complex(re(r, c), im.empty() ? 0.0 : im(r, c));
    }
  }
  return m;
}

void ComplexMatrix::fill(Complex value) noexcept {
  std::fill(data_.begin(), data_.end(), value);
}

ComplexVector operator*(const ComplexMatrix& a, const ComplexVector& x) {
  require(a.cols() == x.size(), "ComplexMatrix * vector: shape mismatch");
  ComplexVector y(a.rows(), Complex{});
  for (std::size_t r = 0; r < a.rows(); ++r) {
    Complex acc{};
    for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
    y[r] = acc;
  }
  return y;
}

ComplexLuFactorization::ComplexLuFactorization(ComplexMatrix a,
                                               double pivotTolerance)
    : lu_(std::move(a)), pivots_(lu_.rows()) {
  require(lu_.rows() == lu_.cols(),
          "ComplexLuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  std::iota(pivots_.begin(), pivots_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot by modulus.
    std::size_t pivotRow = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivotRow = r;
      }
    }
    if (best < pivotTolerance) {
      throw ConvergenceError(
          "ComplexLuFactorization: singular matrix at column " +
              std::to_string(k),
          static_cast<int>(k));
    }
    if (pivotRow != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivotRow, c));
      std::swap(pivots_[k], pivots_[pivotRow]);
    }

    const Complex pivot = lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const Complex factor = lu_(r, k) / pivot;
      lu_(r, k) = factor;
      if (factor == Complex{}) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

ComplexVector ComplexLuFactorization::solve(const ComplexVector& b) const {
  const std::size_t n = lu_.rows();
  require(b.size() == n, "ComplexLuFactorization::solve: size mismatch");

  // Apply row permutation, then forward/back substitution.
  ComplexVector x(n);
  for (std::size_t r = 0; r < n; ++r) x[r] = b[pivots_[r]];

  for (std::size_t r = 1; r < n; ++r) {
    Complex acc = x[r];
    for (std::size_t c = 0; c < r; ++c) acc -= lu_(r, c) * x[c];
    x[r] = acc;
  }
  for (std::size_t ri = n; ri-- > 0;) {
    Complex acc = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) acc -= lu_(ri, c) * x[c];
    x[ri] = acc / lu_(ri, ri);
  }
  return x;
}

ComplexVector complexLuSolve(const ComplexMatrix& a, const ComplexVector& b) {
  return ComplexLuFactorization(a).solve(b);
}

}  // namespace vsstat::linalg
