// LU factorization with partial pivoting.  Workhorse solver for the MNA
// Newton iterations in the circuit engine (systems of a few dozen nodes).
#ifndef VSSTAT_LINALG_LU_HPP
#define VSSTAT_LINALG_LU_HPP

#include <vector>

#include "linalg/matrix.hpp"

namespace vsstat::linalg {

/// Factorization object; reusable for multiple right-hand sides and -- via
/// refactor() -- for repeated factorizations of same-size matrices without
/// reallocating the LU storage or pivot array.
class LuFactorization {
 public:
  /// Empty factorization; call refactor() before solving.
  LuFactorization() = default;

  /// Factors a square matrix.  Throws ConvergenceError on (numerical)
  /// singularity, i.e. a pivot below `pivotTolerance`.
  explicit LuFactorization(Matrix a, double pivotTolerance = 1e-14);

  /// Re-factors in place, reusing the existing LU/pivot storage when `a`
  /// matches the previous size (zero heap allocations in that case).
  /// Throws ConvergenceError on singularity, like the constructor.
  void refactor(const Matrix& a, double pivotTolerance = 1e-14);

  /// Solves A x = b.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves in place: x is the right-hand side on entry, solution on exit.
  void solveInPlace(Vector& x) const;

  [[nodiscard]] double determinant() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return lu_.rows(); }

 private:
  void factorize(double pivotTolerance);

  Matrix lu_;
  std::vector<std::size_t> pivots_;
  int pivotSign_ = 1;
};

/// One-shot convenience solve of A x = b.
[[nodiscard]] Vector luSolve(const Matrix& a, const Vector& b);

}  // namespace vsstat::linalg

#endif  // VSSTAT_LINALG_LU_HPP
