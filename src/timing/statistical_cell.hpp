// Bridge from the statistical VS kit to canonical SSTA delays.
//
// A stage's first-order canonical delay has two shared global sources --
// the NMOS and PMOS speed axes of the statistical corners, at 1 sigma --
// and an independent local term from within-die mismatch:
//
//   D = d0 + gN * X_N + gP * X_P + sigma_local * R
//
// gN/gP come from central differences of the stage delay along the corner
// axes; sigma_local from a mismatch-only Monte Carlo of the same fixture.
#ifndef VSSTAT_TIMING_STATISTICAL_CELL_HPP
#define VSSTAT_TIMING_STATISTICAL_CELL_HPP

#include <cstdint>

#include "circuits/cells.hpp"
#include "core/corners.hpp"
#include "core/statistical_vs.hpp"
#include "timing/ssta.hpp"

namespace vsstat::timing {

struct StageModelOptions {
  double inputSlew = 15e-12;   ///< operating point for the canonical model
  double loadFarads = 2e-15;
  int mismatchSamples = 40;    ///< local-sigma Monte Carlo size
  std::uint64_t seed = 1;
  double dt = 0.3e-12;
};

/// Canonical delay of one inverter stage under the kit's variation model.
/// global[0] is the NMOS axis, global[1] the PMOS axis.
[[nodiscard]] CanonicalDelay characterizeStageDelay(
    const core::StatisticalVsKit& kit, const core::StatisticalCorners& corners,
    const circuits::CellSizing& sizing, const StageModelOptions& options = {});

}  // namespace vsstat::timing

#endif  // VSSTAT_TIMING_STATISTICAL_CELL_HPP
