// Statistical static timing analysis on first-order canonical delays.
//
// The paper's Fig. 7 discussion cites ref [14]: when delay distributions
// go non-Gaussian at low Vdd, "the application of statistical static
// timing analysis becomes more difficult".  This module supplies the SSTA
// machinery that discussion presumes, in its standard first-order
// (Gaussian, canonical) form:
//
//   D = mean + sum_k global_k * X_k + local * R
//
// with X_k shared unit Gaussians (die-level sources, e.g. the corner
// axes) and R an independent unit Gaussian per stage.  Series composition
// adds means and global coefficients and RSS-combines local terms;
// arrival-time max uses Clark's moment matching with the usual
// tightness-weighted coefficient propagation.
#ifndef VSSTAT_TIMING_SSTA_HPP
#define VSSTAT_TIMING_SSTA_HPP

#include <vector>

namespace vsstat::timing {

/// First-order canonical delay/arrival-time form.
struct CanonicalDelay {
  double mean = 0.0;
  std::vector<double> global;  ///< coefficients on shared unit Gaussians
  double local = 0.0;          ///< independent sigma (RSS-combined)

  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double sigma() const noexcept;
  /// mean + n * sigma
  [[nodiscard]] double quantileSigma(double n) const noexcept;
};

/// Series composition (a stage after an arrival): means and global
/// coefficients add, local parts RSS.  Global vectors must have equal
/// length (use zero-padding helpers when mixing sources).
[[nodiscard]] CanonicalDelay addSeries(const CanonicalDelay& a,
                                       const CanonicalDelay& b);

/// Correlation implied by the shared global sources.
[[nodiscard]] double correlation(const CanonicalDelay& a,
                                 const CanonicalDelay& b);

/// Clark's max: Gaussian moment matching of max(a, b) with
/// tightness-weighted propagation of the canonical coefficients.  The
/// result's variance is matched exactly to Clark's second moment by
/// scaling the local term.
[[nodiscard]] CanonicalDelay statisticalMax(const CanonicalDelay& a,
                                            const CanonicalDelay& b);

/// Probability that a exceeds b (P[a - b > 0]) under the shared-source
/// model; the building block of path criticality.
[[nodiscard]] double exceedanceProbability(const CanonicalDelay& a,
                                           const CanonicalDelay& b);

}  // namespace vsstat::timing

#endif  // VSSTAT_TIMING_SSTA_HPP
