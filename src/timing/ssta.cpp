#include "timing/ssta.hpp"

#include <cmath>
#include <numbers>

#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::timing {

namespace {

double normalPdf(double x) noexcept {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * std::numbers::pi);
}

void requireSameSources(const CanonicalDelay& a, const CanonicalDelay& b) {
  require(a.global.size() == b.global.size(),
          "CanonicalDelay: mismatched global source counts");
}

}  // namespace

double CanonicalDelay::variance() const noexcept {
  double v = local * local;
  for (double g : global) v += g * g;
  return v;
}

double CanonicalDelay::sigma() const noexcept { return std::sqrt(variance()); }

double CanonicalDelay::quantileSigma(double n) const noexcept {
  return mean + n * sigma();
}

CanonicalDelay addSeries(const CanonicalDelay& a, const CanonicalDelay& b) {
  requireSameSources(a, b);
  CanonicalDelay out;
  out.mean = a.mean + b.mean;
  out.global.resize(a.global.size());
  for (std::size_t k = 0; k < a.global.size(); ++k)
    out.global[k] = a.global[k] + b.global[k];
  out.local = std::hypot(a.local, b.local);
  return out;
}

double correlation(const CanonicalDelay& a, const CanonicalDelay& b) {
  requireSameSources(a, b);
  double cov = 0.0;
  for (std::size_t k = 0; k < a.global.size(); ++k)
    cov += a.global[k] * b.global[k];
  const double denom = a.sigma() * b.sigma();
  if (denom <= 0.0) return 0.0;
  return cov / denom;
}

CanonicalDelay statisticalMax(const CanonicalDelay& a,
                              const CanonicalDelay& b) {
  requireSameSources(a, b);
  const double va = a.variance();
  const double vb = b.variance();
  double cov = 0.0;
  for (std::size_t k = 0; k < a.global.size(); ++k)
    cov += a.global[k] * b.global[k];

  // theta = sigma of (a - b).
  const double theta2 = va + vb - 2.0 * cov;
  if (theta2 <= 1e-30) {
    // Perfectly correlated with equal spread: max is just the larger mean.
    return a.mean >= b.mean ? a : b;
  }
  const double theta = std::sqrt(theta2);
  const double alpha = (a.mean - b.mean) / theta;
  const double phiA = stats::normalCdf(alpha);      // tightness P[a > b]
  const double pdfA = normalPdf(alpha);

  // Clark's first and second moments of max(a, b).
  const double m1 =
      a.mean * phiA + b.mean * (1.0 - phiA) + theta * pdfA;
  const double m2 = (va + a.mean * a.mean) * phiA +
                    (vb + b.mean * b.mean) * (1.0 - phiA) +
                    (a.mean + b.mean) * theta * pdfA;
  const double variance = std::max(m2 - m1 * m1, 0.0);

  // Tightness-weighted canonical form, variance-corrected via the local
  // term (the standard Clark-based SSTA propagation).
  CanonicalDelay out;
  out.mean = m1;
  out.global.resize(a.global.size());
  double globalVar = 0.0;
  for (std::size_t k = 0; k < a.global.size(); ++k) {
    out.global[k] = phiA * a.global[k] + (1.0 - phiA) * b.global[k];
    globalVar += out.global[k] * out.global[k];
  }
  if (globalVar > variance) {
    // The weighted globals overshoot the matched variance (possible when
    // the inputs anti-correlate): rescale them and drop the local term.
    const double s = std::sqrt(variance / globalVar);
    for (double& g : out.global) g *= s;
    out.local = 0.0;
  } else {
    out.local = std::sqrt(variance - globalVar);
  }
  return out;
}

double exceedanceProbability(const CanonicalDelay& a,
                             const CanonicalDelay& b) {
  requireSameSources(a, b);
  double cov = 0.0;
  for (std::size_t k = 0; k < a.global.size(); ++k)
    cov += a.global[k] * b.global[k];
  const double theta2 = a.variance() + b.variance() - 2.0 * cov;
  if (theta2 <= 1e-30) return a.mean > b.mean ? 1.0 : 0.0;
  return stats::normalCdf((a.mean - b.mean) / std::sqrt(theta2));
}

}  // namespace vsstat::timing
