// NLDM-style cell timing characterization: delay and output-slew lookup
// tables over an (input slew, load capacitance) grid, built by transient
// simulation of the cell.
//
// This is the substrate the paper's SSTA discussion (Sec. IV-B, ref [14])
// presumes: statistical timing operates on characterized cells, not on
// transistor-level simulations of whole paths.  The statistical layer
// lives in timing/ssta.hpp; these tables carry the nominal behaviour.
#ifndef VSSTAT_TIMING_TABLES_HPP
#define VSSTAT_TIMING_TABLES_HPP

#include <vector>

#include "circuits/cells.hpp"
#include "circuits/provider.hpp"
#include "linalg/matrix.hpp"

namespace vsstat::timing {

/// One timing arc's tables: rows follow inputSlews, columns follow
/// loadsFarads.
struct TimingTable {
  std::vector<double> inputSlews;   ///< 10-90% input transition times [s]
  std::vector<double> loadsFarads;  ///< load capacitance grid [F]
  linalg::Matrix delay;             ///< 50%-to-50% propagation delay [s]
  linalg::Matrix outputSlew;        ///< 10-90% output transition [s]

  /// Bilinear interpolation (clamped at the grid edges).
  [[nodiscard]] double delayAt(double slew, double load) const;
  [[nodiscard]] double outputSlewAt(double slew, double load) const;
};

/// Both arcs of an inverting cell.
struct CellTiming {
  TimingTable fall;  ///< input rise -> output fall (tpHL)
  TimingTable rise;  ///< input fall -> output rise (tpLH)

  [[nodiscard]] double averageDelayAt(double slew, double load) const {
    return 0.5 * (fall.delayAt(slew, load) + rise.delayAt(slew, load));
  }
};

struct CharacterizationOptions {
  double vdd = 0.9;
  std::vector<double> inputSlews = {6e-12, 15e-12, 35e-12};
  std::vector<double> loadsFarads = {0.5e-15, 2e-15, 6e-15};
  double dt = 0.25e-12;
};

/// One operating point of one concrete inverter (fixed device cards).
struct DelayPoint {
  double fallDelay = 0.0;  ///< tpHL [s]
  double riseDelay = 0.0;  ///< tpLH [s]
  double fallSlew = 0.0;   ///< output 90-10% [s]
  double riseSlew = 0.0;   ///< output 10-90% [s]

  [[nodiscard]] double averageDelay() const noexcept {
    return 0.5 * (fallDelay + riseDelay);
  }
};

/// Measures one (slew, load) point of the given device pair; the models
/// are cloned, so repeated calls see identical devices.  This is the
/// primitive behind characterizeInverter() and the statistical stage
/// characterization.
[[nodiscard]] DelayPoint measureInverterPoint(
    const models::MosfetModel& pmosModel,
    const models::DeviceGeometry& pmosGeom,
    const models::MosfetModel& nmosModel,
    const models::DeviceGeometry& nmosGeom, double vdd, double inputSlew,
    double loadFarads, double dt = 0.25e-12);

/// Characterizes a static CMOS inverter built from `provider`.  Each grid
/// point runs one transient with a PULSE input shaped to the requested
/// slew and a pure capacitive load.
[[nodiscard]] CellTiming characterizeInverter(
    circuits::DeviceProvider& provider, const circuits::CellSizing& sizing,
    const CharacterizationOptions& options = {});

}  // namespace vsstat::timing

#endif  // VSSTAT_TIMING_TABLES_HPP
