#include "timing/tables.hpp"

#include <algorithm>
#include <cmath>

#include "circuits/cells.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::timing {

namespace {

/// Clamped 1-D bracket: returns (index, fraction) for linear interpolation.
std::pair<std::size_t, double> bracket(const std::vector<double>& grid,
                                       double x) {
  if (x <= grid.front()) return {0, 0.0};
  if (x >= grid.back()) return {grid.size() - 2, 1.0};
  std::size_t i = 0;
  while (x > grid[i + 1]) ++i;
  return {i, (x - grid[i]) / (grid[i + 1] - grid[i])};
}

double bilinear(const std::vector<double>& rows,
                const std::vector<double>& cols, const linalg::Matrix& table,
                double r, double c) {
  require(rows.size() >= 2 && cols.size() >= 2,
          "TimingTable: need at least a 2x2 grid");
  const auto [i, fr] = bracket(rows, r);
  const auto [j, fc] = bracket(cols, c);
  const double v00 = table(i, j);
  const double v01 = table(i, j + 1);
  const double v10 = table(i + 1, j);
  const double v11 = table(i + 1, j + 1);
  return (1.0 - fr) * ((1.0 - fc) * v00 + fc * v01) +
         fr * ((1.0 - fc) * v10 + fc * v11);
}

}  // namespace

double TimingTable::delayAt(double slew, double load) const {
  return bilinear(inputSlews, loadsFarads, delay, slew, load);
}

double TimingTable::outputSlewAt(double slew, double load) const {
  return bilinear(inputSlews, loadsFarads, outputSlew, slew, load);
}

CellTiming characterizeInverter(circuits::DeviceProvider& provider,
                                const circuits::CellSizing& sizing,
                                const CharacterizationOptions& options) {
  require(options.inputSlews.size() >= 2 && options.loadsFarads.size() >= 2,
          "characterizeInverter: need at least a 2x2 grid");
  require(std::is_sorted(options.inputSlews.begin(),
                         options.inputSlews.end()) &&
              std::is_sorted(options.loadsFarads.begin(),
                             options.loadsFarads.end()),
          "characterizeInverter: grids must be ascending");
  require(options.vdd > 0.0, "characterizeInverter: vdd must be positive");

  const std::size_t nSlew = options.inputSlews.size();
  const std::size_t nLoad = options.loadsFarads.size();

  CellTiming cell;
  for (TimingTable* t : {&cell.fall, &cell.rise}) {
    t->inputSlews = options.inputSlews;
    t->loadsFarads = options.loadsFarads;
    t->delay = linalg::Matrix(nSlew, nLoad);
    t->outputSlew = linalg::Matrix(nSlew, nLoad);
  }

  // The device instances are drawn from the provider ONCE: a statistical
  // provider contributes a single mismatch realization shared by all grid
  // points (grid points are operating conditions, not new devices).
  const circuits::DeviceInstance pmos = provider.make(
      models::DeviceType::Pmos, "XDUT.MP",
      models::geometryNm(sizing.wPmosNm, sizing.lengthNm));
  const circuits::DeviceInstance nmos = provider.make(
      models::DeviceType::Nmos, "XDUT.MN",
      models::geometryNm(sizing.wNmosNm, sizing.lengthNm));

  for (std::size_t si = 0; si < nSlew; ++si) {
    for (std::size_t li = 0; li < nLoad; ++li) {
      const DelayPoint p = measureInverterPoint(
          *pmos.model, pmos.geometry, *nmos.model, nmos.geometry,
          options.vdd, options.inputSlews[si], options.loadsFarads[li],
          options.dt);
      cell.fall.delay(si, li) = p.fallDelay;
      cell.fall.outputSlew(si, li) = p.fallSlew;
      cell.rise.delay(si, li) = p.riseDelay;
      cell.rise.outputSlew(si, li) = p.riseSlew;
    }
  }
  return cell;
}

DelayPoint measureInverterPoint(const models::MosfetModel& pmosModel,
                                const models::DeviceGeometry& pmosGeom,
                                const models::MosfetModel& nmosModel,
                                const models::DeviceGeometry& nmosGeom,
                                double vdd, double inputSlew,
                                double loadFarads, double dt) {
  require(vdd > 0.0 && inputSlew > 0.0 && loadFarads > 0.0 && dt > 0.0,
          "measureInverterPoint: all parameters must be positive");

  // PULSE edge time for the requested 10-90% slew: the source ramps
  // linearly over tEdge, of which the 10-90% window is 0.8.
  const double tEdge = inputSlew / 0.8;
  const double tHigh = 12.0 * inputSlew + 60e-12;

  spice::Circuit run;
  const spice::NodeId rin = run.node("in");
  const spice::NodeId rout = run.node("out");
  const spice::NodeId rvdd = run.node("vdd");
  run.addMosfet("MP", rout, rin, rvdd, pmosModel.clone(), pmosGeom);
  run.addMosfet("MN", rout, rin, run.ground(), nmosModel.clone(), nmosGeom);
  run.addVoltageSource("VDD", rvdd, run.ground(),
                       spice::SourceWaveform::dc(vdd));
  run.addVoltageSource(
      "VIN", rin, run.ground(),
      spice::SourceWaveform::pulse(0.0, vdd, 10e-12, tEdge, tEdge, tHigh));
  run.addCapacitor("CL", rout, run.ground(), loadFarads);

  spice::TransientOptions tran;
  tran.dt = dt;
  tran.tStop = 10e-12 + 2.0 * tEdge + tHigh + 12.0 * inputSlew + 100e-12;
  const spice::Waveform wave = spice::transient(run, tran);

  const auto cross = [&](spice::NodeId node, double level, bool rising,
                         double after) {
    const auto t = wave.crossing(node, level, rising, after);
    if (!t) {
      throw ConvergenceError("measureInverterPoint: missing output edge", 0);
    }
    return *t;
  };

  DelayPoint p;
  // Input rise -> output fall.
  const double inRise50 = cross(rin, 0.5 * vdd, true, 0.0);
  const double outFall50 = cross(rout, 0.5 * vdd, false, inRise50);
  const double outFall90 = cross(rout, 0.9 * vdd, false, inRise50 - 5e-12);
  const double outFall10 = cross(rout, 0.1 * vdd, false, outFall90);
  p.fallDelay = outFall50 - inRise50;
  p.fallSlew = outFall10 - outFall90;

  // Input fall -> output rise.
  const double inFall50 = cross(rin, 0.5 * vdd, false, outFall50);
  const double outRise50 = cross(rout, 0.5 * vdd, true, inFall50);
  const double outRise10 = cross(rout, 0.1 * vdd, true, inFall50 - 5e-12);
  const double outRise90 = cross(rout, 0.9 * vdd, true, outRise10);
  p.riseDelay = outRise50 - inFall50;
  p.riseSlew = outRise90 - outRise10;
  return p;
}

}  // namespace vsstat::timing
