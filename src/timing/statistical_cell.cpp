#include "timing/statistical_cell.hpp"

#include <cmath>

#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"
#include "timing/tables.hpp"
#include "util/error.hpp"

namespace vsstat::timing {

namespace {

/// Scales a 3-sigma corner delta down to z sigmas.
models::VariationDelta scaledCorner(const models::VariationDelta& fast3,
                                    double z) {
  models::VariationDelta d;
  const double f = z / 3.0;
  d.dVt0 = f * fast3.dVt0;
  d.dLeff = f * fast3.dLeff;
  d.dWeff = f * fast3.dWeff;
  d.dMu = f * fast3.dMu;
  d.dCinv = f * fast3.dCinv;
  return d;
}

}  // namespace

CanonicalDelay characterizeStageDelay(const core::StatisticalVsKit& kit,
                                      const core::StatisticalCorners& corners,
                                      const circuits::CellSizing& sizing,
                                      const StageModelOptions& options) {
  require(options.mismatchSamples >= 8,
          "characterizeStageDelay: need >= 8 mismatch samples");
  require(corners.options().nSigma == 3.0,
          "characterizeStageDelay: expects 3-sigma corner axes");

  const models::DeviceGeometry pGeom =
      models::geometryNm(sizing.wPmosNm, sizing.lengthNm);
  const models::DeviceGeometry nGeom =
      models::geometryNm(sizing.wNmosNm, sizing.lengthNm);
  const double vdd = kit.vdd();

  // Stage delay for explicit per-polarity deltas.
  const auto delayWith = [&](const models::VariationDelta& dN,
                             const models::VariationDelta& dP) {
    const models::VsModel pmos(
        models::applyToVs(kit.nominal(models::DeviceType::Pmos), dP));
    const models::VsModel nmos(
        models::applyToVs(kit.nominal(models::DeviceType::Nmos), dN));
    return measureInverterPoint(pmos, models::applyGeometry(pGeom, dP), nmos,
                                models::applyGeometry(nGeom, dN), vdd,
                                options.inputSlew, options.loadFarads,
                                options.dt)
        .averageDelay();
  };

  const models::VariationDelta zero{};
  const models::VariationDelta& fastN =
      corners.delta(core::Corner::FF, models::DeviceType::Nmos);
  const models::VariationDelta& fastP =
      corners.delta(core::Corner::FF, models::DeviceType::Pmos);

  CanonicalDelay d;
  d.mean = delayWith(zero, zero);
  d.global.resize(2);
  // Central differences along each 1-sigma corner axis.
  d.global[0] = 0.5 * (delayWith(scaledCorner(fastN, 1.0), zero) -
                       delayWith(scaledCorner(fastN, -1.0), zero));
  d.global[1] = 0.5 * (delayWith(zero, scaledCorner(fastP, 1.0)) -
                       delayWith(zero, scaledCorner(fastP, -1.0)));

  // Local sigma: mismatch-only Monte Carlo of the same fixture.
  stats::Rng rng(options.seed);
  std::vector<double> delays;
  delays.reserve(static_cast<std::size_t>(options.mismatchSamples));
  for (int s = 0; s < options.mismatchSamples; ++s) {
    stats::Rng sampleRng = rng.fork(static_cast<std::uint64_t>(s));
    const models::VariationDelta dN = models::sampleDelta(
        kit.sigmas(models::DeviceType::Nmos, nGeom), sampleRng);
    const models::VariationDelta dP = models::sampleDelta(
        kit.sigmas(models::DeviceType::Pmos, pGeom), sampleRng);
    delays.push_back(delayWith(dN, dP));
  }
  d.local = stats::summarize(delays).stddev;
  return d;
}

}  // namespace vsstat::timing
