#include "yield/importance.hpp"

#include <cmath>

#include "mc/samplers.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vsstat::yield {

namespace {

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

ImportanceResult importanceSample(const FailureIndicator& fails,
                                  const std::vector<double>& shift,
                                  const ImportanceOptions& options) {
  require(static_cast<bool>(fails), "importanceSample: empty indicator");
  require(!shift.empty(), "importanceSample: empty shift vector");
  require(options.samples > 1, "importanceSample: need > 1 samples");
  if (options.generator != nullptr) {
    require(options.generator->dimension() == shift.size(),
            "importanceSample: generator dimension != shift dimension");
    require(options.generator->samples() >=
                static_cast<std::size_t>(options.samples),
            "importanceSample: generator holds fewer points than samples");
  }

  const double shiftNormSq = dot(shift, shift);
  const stats::Rng campaign(options.seed);
  const auto n = static_cast<std::size_t>(options.samples);

  // Evaluate the indicator in parallel: each sample draws from its own
  // decorrelated child stream, and per-sample weights land in flat
  // index-addressed storage so the reduction below is independent of
  // scheduling (bit-identical across thread counts).
  std::vector<double> weight(n, 0.0);
  std::vector<char> failed(n, 0);
  util::parallelFor(
      n,
      [&](std::size_t s) {
        // Per-call buffer: an indicator may itself run a nested campaign
        // on this thread (nested parallelFor degrades to serial), so a
        // thread_local scratch would be overwritten under the caller.
        // Either source of base points is a deterministic function of the
        // sample index, preserving the thread-count independence below.
        std::vector<double> z;
        if (options.generator != nullptr) {
          z = options.generator->standardNormals(s);
          for (std::size_t i = 0; i < z.size(); ++i) z[i] += shift[i];
        } else {
          stats::Rng rng = campaign.fork(s);
          z.resize(shift.size());
          for (std::size_t i = 0; i < z.size(); ++i)
            z[i] = shift[i] + rng.normal();
        }
        if (!fails(z)) return;
        failed[s] = 1;
        // Likelihood ratio phi(z)/phi(z - shift).
        weight[s] = std::exp(-dot(shift, z) + 0.5 * shiftNormSq);
      },
      options.threads);

  double sumW = 0.0;
  double sumW2 = 0.0;
  int hits = 0;
  for (std::size_t s = 0; s < n; ++s) {
    if (!failed[s]) continue;
    const double w = weight[s];
    sumW += w;
    sumW2 += w * w;
    ++hits;
  }

  const double count = static_cast<double>(options.samples);
  ImportanceResult r;
  r.probability = sumW / count;
  r.failingDraws = hits;
  r.effectiveSamples = sumW2 > 0.0 ? sumW * sumW / sumW2 : 0.0;
  if (r.probability > 0.0) {
    // Var[P_hat] = (E[w^2 1_fail] - P^2) / n, estimated from the samples.
    const double var =
        (sumW2 / count - r.probability * r.probability) / (count - 1.0);
    r.relStdError = std::sqrt(std::max(var, 0.0)) / r.probability;
  }
  return r;
}

ImportanceResult bruteForceProbability(const FailureIndicator& fails,
                                       std::size_t dim,
                                       const ImportanceOptions& options) {
  require(dim > 0, "bruteForceProbability: dim must be positive");
  return importanceSample(fails, std::vector<double>(dim, 0.0), options);
}

std::vector<double> findFailureShift(
    const FailureIndicator& fails, std::size_t dim,
    const std::vector<std::vector<double>>& extraDirections,
    const ShiftSearchOptions& options) {
  require(dim > 0, "findFailureShift: dim must be positive");
  require(options.maxRadius > 0.0 && options.tolerance > 0.0,
          "findFailureShift: bad search options");

  // Direction set: +/- coordinate axes plus normalized extras.
  std::vector<std::vector<double>> directions;
  for (std::size_t i = 0; i < dim; ++i) {
    for (const double sign : {1.0, -1.0}) {
      std::vector<double> d(dim, 0.0);
      d[i] = sign;
      directions.push_back(std::move(d));
    }
  }
  for (const auto& extra : extraDirections) {
    require(extra.size() == dim, "findFailureShift: direction dim mismatch");
    const double norm = std::sqrt(dot(extra, extra));
    require(norm > 0.0, "findFailureShift: zero extra direction");
    std::vector<double> d(dim);
    for (std::size_t i = 0; i < dim; ++i) d[i] = extra[i] / norm;
    directions.push_back(std::move(d));
  }

  const auto failsAt = [&](const std::vector<double>& dir, double radius) {
    std::vector<double> z(dim);
    for (std::size_t i = 0; i < dim; ++i) z[i] = radius * dir[i];
    return fails(z);
  };

  double bestRadius = options.maxRadius + 1.0;
  std::vector<double> bestDir;
  for (const auto& dir : directions) {
    if (!failsAt(dir, options.maxRadius)) continue;  // never fails this way
    double lo = 0.0;
    double hi = options.maxRadius;
    while (hi - lo > options.tolerance) {
      const double mid = 0.5 * (lo + hi);
      (failsAt(dir, mid) ? hi : lo) = mid;
    }
    if (hi < bestRadius) {
      bestRadius = hi;
      bestDir = dir;
    }
  }
  if (bestDir.empty()) {
    throw ConvergenceError(
        "findFailureShift: no failing direction within maxRadius",
        static_cast<int>(directions.size()));
  }

  std::vector<double> shift(dim);
  for (std::size_t i = 0; i < dim; ++i)
    shift[i] = options.backoff * bestRadius * bestDir[i];
  return shift;
}

}  // namespace vsstat::yield
