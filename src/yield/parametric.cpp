#include "yield/parametric.hpp"

#include <cmath>

#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::yield {

double gaussianYield(double mean, double sigma, const SpecLimit& spec) {
  require(sigma > 0.0, "gaussianYield: sigma must be positive");
  double y = 1.0;
  if (spec.upper) y = stats::normalCdf((*spec.upper - mean) / sigma);
  if (spec.lower) y -= stats::normalCdf((*spec.lower - mean) / sigma);
  return std::max(y, 0.0);
}

double empiricalYield(const std::vector<double>& samples,
                      const SpecLimit& spec) {
  require(!samples.empty(), "empiricalYield: no samples");
  long passed = 0;
  for (double v : samples) passed += spec.passes(v) ? 1 : 0;
  return static_cast<double>(passed) / static_cast<double>(samples.size());
}

YieldEstimate yieldWithConfidence(long passed, long total, double z) {
  require(total > 0, "yieldWithConfidence: total must be positive");
  require(passed >= 0 && passed <= total,
          "yieldWithConfidence: passed out of range");
  require(z > 0.0, "yieldWithConfidence: z must be positive");

  const double n = static_cast<double>(total);
  const double p = static_cast<double>(passed) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;

  YieldEstimate e;
  e.yield = p;
  e.lower = std::max(centre - half, 0.0);
  e.upper = std::min(centre + half, 1.0);
  e.passed = passed;
  e.total = total;
  return e;
}

YieldEstimate yieldOfSamples(const std::vector<double>& samples,
                             const SpecLimit& spec, double z) {
  require(!samples.empty(), "yieldOfSamples: no samples");
  long passed = 0;
  for (double v : samples) passed += spec.passes(v) ? 1 : 0;
  return yieldWithConfidence(passed, static_cast<long>(samples.size()), z);
}

}  // namespace vsstat::yield
