#include "yield/parametric.hpp"

#include <cmath>
#include <string>

#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::yield {

double gaussianYield(double mean, double sigma, const SpecLimit& spec) {
  require(sigma > 0.0, "gaussianYield: sigma must be positive");
  double y = 1.0;
  if (spec.upper) y = stats::normalCdf((*spec.upper - mean) / sigma);
  if (spec.lower) y -= stats::normalCdf((*spec.lower - mean) / sigma);
  return std::max(y, 0.0);
}

double empiricalYield(const std::vector<double>& samples,
                      const SpecLimit& spec) {
  require(!samples.empty(), "empiricalYield: no samples");
  long passed = 0;
  for (double v : samples) passed += spec.passes(v) ? 1 : 0;
  return static_cast<double>(passed) / static_cast<double>(samples.size());
}

YieldEstimate yieldWithConfidence(long passed, long total, double z) {
  require(total > 0, "yieldWithConfidence: total must be positive");
  require(passed >= 0 && passed <= total,
          "yieldWithConfidence: passed out of range");
  require(z > 0.0, "yieldWithConfidence: z must be positive");

  const double n = static_cast<double>(total);
  const double p = static_cast<double>(passed) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;

  YieldEstimate e;
  e.yield = p;
  e.lower = std::max(centre - half, 0.0);
  e.upper = std::min(centre + half, 1.0);
  e.passed = passed;
  e.total = total;
  return e;
}

YieldEstimate yieldOfSamples(const std::vector<double>& samples,
                             const SpecLimit& spec, double z) {
  require(!samples.empty(), "yieldOfSamples: no samples");
  long passed = 0;
  for (double v : samples) passed += spec.passes(v) ? 1 : 0;
  return yieldWithConfidence(passed, static_cast<long>(samples.size()), z);
}

YieldEstimate yieldOfCampaign(const mc::McResult& result,
                              std::size_t metricIndex, const SpecLimit& spec,
                              const DropPolicy& policy, double z) {
  require(metricIndex < result.metrics.size(),
          "yieldOfCampaign: metric index out of range");
  const std::vector<double>& samples = result.metrics[metricIndex];
  const long survivors = static_cast<long>(result.sampleCount());
  const long dropped = result.failures;
  const long total = survivors + dropped;
  require(total > 0, "yieldOfCampaign: empty campaign");

  if (policy.mode == DroppedSamplePolicy::errorAboveThreshold) {
    const double fraction =
        static_cast<double>(dropped) / static_cast<double>(total);
    if (fraction > policy.maxDropFraction) {
      throw DroppedSamplesError(
          "yieldOfCampaign: " + std::to_string(dropped) + " of " +
          std::to_string(total) + " samples were dropped (" +
          std::to_string(fraction) + " > allowed " +
          std::to_string(policy.maxDropFraction) +
          "); first failure: " +
          (result.firstFailure.valid ? result.firstFailure.message
                                     : std::string("<none recorded>")));
    }
  }

  long passed = 0;
  for (double v : samples) passed += spec.passes(v) ? 1 : 0;
  if (policy.mode == DroppedSamplePolicy::countAsFail) {
    // Dropped corners count against yield: the denominator is the FULL
    // campaign, and none of the dropped samples contribute a pass.
    return yieldWithConfidence(passed, total, z);
  }
  require(survivors > 0, "yieldOfCampaign: every sample was dropped");
  return yieldWithConfidence(passed, survivors, z);
}

}  // namespace vsstat::yield
