// Parametric yield: pass/fail statistics of a circuit metric against spec
// limits.  The paper points out that the statistical VS model "may be used
// to predict the distribution of frequency, leakage power, and even
// parametric yield" (Sec. IV-B); this module supplies the yield-side
// arithmetic -- Gaussian and empirical yield plus binomial confidence
// intervals -- used by the SRAM and timing examples.
#ifndef VSSTAT_YIELD_PARAMETRIC_HPP
#define VSSTAT_YIELD_PARAMETRIC_HPP

#include <optional>
#include <vector>

namespace vsstat::yield {

/// One- or two-sided specification window; absent bounds are open.
struct SpecLimit {
  std::optional<double> lower;
  std::optional<double> upper;

  [[nodiscard]] bool passes(double value) const noexcept {
    if (lower && value < *lower) return false;
    if (upper && value > *upper) return false;
    return true;
  }
};

/// Yield of a Gaussian metric N(mean, sigma^2) against the spec window.
/// sigma must be positive; a spec with no bounds yields 1.
[[nodiscard]] double gaussianYield(double mean, double sigma,
                                   const SpecLimit& spec);

/// Fraction of samples inside the window.  Throws on empty input.
[[nodiscard]] double empiricalYield(const std::vector<double>& samples,
                                    const SpecLimit& spec);

/// Binomial yield estimate with a Wilson score interval.
struct YieldEstimate {
  double yield = 0.0;
  double lower = 0.0;   ///< Wilson interval bounds at the given z
  double upper = 0.0;
  long passed = 0;
  long total = 0;
};

/// Wilson score interval for `passed` successes in `total` trials;
/// z = 1.96 gives a 95% interval.  Throws when total <= 0 or counts are
/// inconsistent.
[[nodiscard]] YieldEstimate yieldWithConfidence(long passed, long total,
                                                double z = 1.96);

/// Convenience: empirical yield of samples with a Wilson interval.
[[nodiscard]] YieldEstimate yieldOfSamples(const std::vector<double>& samples,
                                           const SpecLimit& spec,
                                           double z = 1.96);

}  // namespace vsstat::yield

#endif  // VSSTAT_YIELD_PARAMETRIC_HPP
