// Parametric yield: pass/fail statistics of a circuit metric against spec
// limits.  The paper points out that the statistical VS model "may be used
// to predict the distribution of frequency, leakage power, and even
// parametric yield" (Sec. IV-B); this module supplies the yield-side
// arithmetic -- Gaussian and empirical yield plus binomial confidence
// intervals -- used by the SRAM and timing examples.
#ifndef VSSTAT_YIELD_PARAMETRIC_HPP
#define VSSTAT_YIELD_PARAMETRIC_HPP

#include <cstddef>
#include <optional>
#include <vector>

#include "mc/runner.hpp"
#include "util/error.hpp"

namespace vsstat::yield {

/// One- or two-sided specification window; absent bounds are open.
struct SpecLimit {
  std::optional<double> lower;
  std::optional<double> upper;

  [[nodiscard]] bool passes(double value) const noexcept {
    if (lower && value < *lower) return false;
    if (upper && value > *upper) return false;
    return true;
  }
};

/// Yield of a Gaussian metric N(mean, sigma^2) against the spec window.
/// sigma must be positive; a spec with no bounds yields 1.
[[nodiscard]] double gaussianYield(double mean, double sigma,
                                   const SpecLimit& spec);

/// Fraction of samples inside the window.  Throws on empty input.
[[nodiscard]] double empiricalYield(const std::vector<double>& samples,
                                    const SpecLimit& spec);

/// Binomial yield estimate with a Wilson score interval.
struct YieldEstimate {
  double yield = 0.0;
  double lower = 0.0;   ///< Wilson interval bounds at the given z
  double upper = 0.0;
  long passed = 0;
  long total = 0;
};

/// Wilson score interval for `passed` successes in `total` trials;
/// z = 1.96 gives a 95% interval.  Throws when total <= 0 or counts are
/// inconsistent.
[[nodiscard]] YieldEstimate yieldWithConfidence(long passed, long total,
                                                double z = 1.96);

/// Convenience: empirical yield of samples with a Wilson interval.
[[nodiscard]] YieldEstimate yieldOfSamples(const std::vector<double>& samples,
                                           const SpecLimit& spec,
                                           double z = 1.96);

// --- campaign yield with an explicit dropped-sample policy -------------------

/// What a yield estimate does about samples the campaign dropped (solver
/// failures, undefined metrics).  Dropped corners are disproportionately
/// the extreme draws -- exactly the ones most likely to violate spec -- so
/// silently renormalizing over survivors biases yield OPTIMISTICALLY.  The
/// policy must be chosen, not defaulted away.
enum class DroppedSamplePolicy {
  /// Every dropped sample counts as a spec failure (conservative: the
  /// estimate is a lower bound on true yield).
  countAsFail,
  /// Dropped samples are excluded from the denominator (the legacy
  /// renormalizing behavior, now explicit -- optimistic on tail metrics).
  drop,
  /// Like `drop`, but throws DroppedSamplesError when the dropped fraction
  /// exceeds `maxDropFraction` -- for unattended flows where a silently
  /// degraded campaign must fail loudly instead of reporting a biased
  /// number.
  errorAboveThreshold,
};

/// Thrown by the errorAboveThreshold policy.
class DroppedSamplesError : public Error {
 public:
  explicit DroppedSamplesError(const std::string& what) : Error(what) {}
};

struct DropPolicy {
  DroppedSamplePolicy mode = DroppedSamplePolicy::countAsFail;
  /// Largest acceptable failures / samples ratio under errorAboveThreshold.
  double maxDropFraction = 0.01;
};

/// Yield of campaign metric `metricIndex` against `spec` under an explicit
/// dropped-sample policy.  The Wilson interval uses the policy's effective
/// denominator (total samples for countAsFail, survivors otherwise).
[[nodiscard]] YieldEstimate yieldOfCampaign(const mc::McResult& result,
                                            std::size_t metricIndex,
                                            const SpecLimit& spec,
                                            const DropPolicy& policy,
                                            double z = 1.96);

}  // namespace vsstat::yield

#endif  // VSSTAT_YIELD_PARAMETRIC_HPP
