// Mean-shift importance sampling for rare failure events.
//
// SRAM cells fail at the far tail of the SNM distribution (paper Fig. 9
// territory): brute-force Monte Carlo needs ~100/P samples to see a
// failure probability P, which is hopeless at 5-sigma.  Mean-shift IS
// samples the standardized parameter space around a point near the
// failure boundary and reweights by the Gaussian likelihood ratio
// w(z) = exp(-shift.z + |shift|^2/2), giving an unbiased estimate with
// orders-of-magnitude variance reduction.
#ifndef VSSTAT_YIELD_IMPORTANCE_HPP
#define VSSTAT_YIELD_IMPORTANCE_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace vsstat::mc {
class SampleGenerator;
}

namespace vsstat::yield {

/// Failure indicator over the standardized Gaussian space: z has one entry
/// per statistical parameter; returns true when the sample FAILS.
///
/// importanceSample/bruteForceProbability evaluate the indicator from the
/// shared persistent thread pool, so it must be safe to call concurrently
/// (circuit-backed indicators should lease per-worker fixtures from a
/// sim::SessionPool; see examples/sram_yield.cpp).
using FailureIndicator = std::function<bool(const std::vector<double>& z)>;

struct ImportanceOptions {
  int samples = 2000;
  std::uint64_t seed = 1;
  unsigned threads = 0;  ///< 0 == hardware concurrency
  /// Optional standardized-normal generator for the base draws (mc::
  /// samplers -- LHS/Halton/Sobol variance reduction COMPOSED with the
  /// mean shift: z = shift + generator point).  Must be sized for
  /// >= samples points of the shift's dimension; not owned, must outlive
  /// the call.  nullptr keeps the iid child-stream draws.
  const mc::SampleGenerator* generator = nullptr;
};

struct ImportanceResult {
  double probability = 0.0;     ///< unbiased failure-probability estimate
  double relStdError = 0.0;     ///< sigma(P_hat)/P_hat from sample variance
  double effectiveSamples = 0;  ///< (sum w)^2 / sum w^2 over failing draws
  int failingDraws = 0;         ///< raw count of indicator hits
};

/// Mean-shift importance sampling: draws z ~ N(shift, I) and averages
/// 1_fail(z) * w(z).  The shift should sit at (or slightly inside) the
/// failure boundary; see findFailureShift().
///
/// Samples are evaluated in parallel on the shared persistent pool; each
/// draws from its own child RNG stream derived from (seed, sample index),
/// and the weight reduction runs serially in index order afterwards, so
/// results are bit-identical regardless of thread count (the same scheme
/// as mc::runCampaign).
[[nodiscard]] ImportanceResult importanceSample(
    const FailureIndicator& fails, const std::vector<double>& shift,
    const ImportanceOptions& options = {});

/// Plain Monte Carlo baseline over the same space (shift = 0, weights 1).
[[nodiscard]] ImportanceResult bruteForceProbability(
    const FailureIndicator& fails, std::size_t dim,
    const ImportanceOptions& options = {});

struct ShiftSearchOptions {
  double maxRadius = 8.0;      ///< search limit in sigma units
  double tolerance = 0.05;     ///< bisection width on the radius [sigma]
  double backoff = 0.9;        ///< place the shift slightly inside the
                               ///< failure region (times boundary radius)
};

/// Finds a mean-shift vector for importanceSample(): scans a direction set
/// (coordinate axes, both signs, plus the caller's extra directions),
/// bisects each direction for the failure-boundary radius, and returns
/// backoff * radius * direction for the closest boundary -- an
/// approximation of the most-probable failure point.  Throws
/// ConvergenceError when no direction fails within maxRadius.
[[nodiscard]] std::vector<double> findFailureShift(
    const FailureIndicator& fails, std::size_t dim,
    const std::vector<std::vector<double>>& extraDirections = {},
    const ShiftSearchOptions& options = {});

}  // namespace vsstat::yield

#endif  // VSSTAT_YIELD_IMPORTANCE_HPP
