#include "stats/normality.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "stats/qq.hpp"
#include "util/error.hpp"

namespace vsstat::stats {

JarqueBera jarqueBera(const std::vector<double>& samples) {
  require(samples.size() >= 8, "jarqueBera: need >= 8 samples");
  MomentAccumulator acc;
  for (double v : samples) acc.add(v);
  const auto n = static_cast<double>(samples.size());
  const double s = acc.skewness();
  const double k = acc.excessKurtosis();

  JarqueBera jb;
  jb.statistic = n / 6.0 * (s * s + 0.25 * k * k);
  jb.rejectAt5Percent = jb.statistic > 5.991;  // chi2(2) 95%
  return jb;
}

KsNormal ksAgainstNormal(std::vector<double> samples) {
  require(samples.size() >= 8, "ksAgainstNormal: need >= 8 samples");
  const double mu = mean(samples);
  const double sd = stddev(samples);
  require(sd > 0.0, "ksAgainstNormal: zero-variance sample");

  std::sort(samples.begin(), samples.end());
  const auto n = static_cast<double>(samples.size());

  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double z = (samples[i] - mu) / sd;
    const double f = normalCdf(z);
    const double empHi = (static_cast<double>(i) + 1.0) / n;
    const double empLo = static_cast<double>(i) / n;
    d = std::max({d, std::fabs(empHi - f), std::fabs(f - empLo)});
  }

  KsNormal ks;
  ks.statistic = d;
  // Lilliefors asymptotic critical value for estimated parameters.
  ks.critical5Percent = 0.886 / std::sqrt(n);
  ks.rejectAt5Percent = d > ks.critical5Percent;
  return ks;
}

}  // namespace vsstat::stats
