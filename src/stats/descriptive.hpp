// Descriptive statistics: streaming moments (Welford), quantiles, summary.
#ifndef VSSTAT_STATS_DESCRIPTIVE_HPP
#define VSSTAT_STATS_DESCRIPTIVE_HPP

#include <cstddef>
#include <vector>

namespace vsstat::stats {

/// Numerically stable streaming accumulator of the first four moments.
class MomentAccumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Bias-uncorrected skewness g1; 0 for n < 3 or zero variance.
  [[nodiscard]] double skewness() const noexcept;
  /// Excess kurtosis g2; 0 for n < 4 or zero variance.
  [[nodiscard]] double excessKurtosis() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator (Jain & Chlamtac's P-squared algorithm):
/// tracks one quantile of an unbounded stream in O(1) memory by keeping
/// five markers whose heights are nudged toward their ideal positions with
/// piecewise-parabolic interpolation.  The campaign server's progress
/// frames use one of these per reported quantile -- exact quantiles over
/// the full sample set would cost a sort per frame.  Approximation only:
/// final frames recompute quantiles exactly from the full sample buffer.
class StreamingQuantile {
 public:
  /// q in (0, 1); throws InvalidArgumentError outside that open interval.
  explicit StreamingQuantile(double q);

  void add(double x);

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  /// Current estimate.  Before five observations arrive this falls back to
  /// the exact quantile of the values seen so far.
  [[nodiscard]] double value() const;

 private:
  double q_;
  std::size_t n_ = 0;
  double heights_[5] = {};     ///< marker heights (sorted)
  double positions_[5] = {};   ///< actual marker positions (1-based)
  double desired_[5] = {};     ///< desired marker positions
  double increments_[5] = {};  ///< desired-position increment per sample
};

/// One-stop summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double skewness = 0.0;
  double excessKurtosis = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double q25 = 0.0;
  double q75 = 0.0;
};

[[nodiscard]] Summary summarize(const std::vector<double>& samples);

/// Linear-interpolated quantile of an unsorted sample, q in [0, 1].
[[nodiscard]] double quantile(std::vector<double> samples, double q);

/// Quantile of an already-sorted sample (no copy).
[[nodiscard]] double quantileSorted(const std::vector<double>& sorted, double q);

[[nodiscard]] double mean(const std::vector<double>& samples);
[[nodiscard]] double stddev(const std::vector<double>& samples);

/// Pearson correlation coefficient.
[[nodiscard]] double correlation(const std::vector<double>& x,
                                 const std::vector<double>& y);

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_DESCRIPTIVE_HPP
