// Bivariate Gaussian confidence ellipses for the Ion / log10(Ioff) scatter
// validation (paper Fig. 4: 1/2/3-sigma ellipses for VS vs BSIM).
#ifndef VSSTAT_STATS_ELLIPSE_HPP
#define VSSTAT_STATS_ELLIPSE_HPP

#include <vector>

namespace vsstat::stats {

/// Sample mean and covariance of a 2-D point cloud.
struct Bivariate {
  double meanX = 0.0;
  double meanY = 0.0;
  double varX = 0.0;
  double varY = 0.0;
  double covXY = 0.0;

  [[nodiscard]] double correlation() const noexcept;
};

[[nodiscard]] Bivariate bivariateMoments(const std::vector<double>& x,
                                         const std::vector<double>& y);

/// k-sigma ellipse of a bivariate Gaussian: principal semi-axes and tilt.
struct EllipseSpec {
  double centerX = 0.0;
  double centerY = 0.0;
  double semiMajor = 0.0;   ///< k * sqrt(largest eigenvalue)
  double semiMinor = 0.0;   ///< k * sqrt(smallest eigenvalue)
  double angleRad = 0.0;    ///< tilt of the major axis w.r.t. +x
};

[[nodiscard]] EllipseSpec sigmaEllipse(const Bivariate& m, double k);

/// Samples `points` perimeter points of the ellipse (closed polyline).
struct EllipsePolyline {
  std::vector<double> x;
  std::vector<double> y;
};

[[nodiscard]] EllipsePolyline traceEllipse(const EllipseSpec& e,
                                           std::size_t points = 90);

/// Fraction of points falling inside the k-sigma ellipse (Mahalanobis
/// distance <= k).  For a true bivariate Gaussian the expectation is
/// 1 - exp(-k^2/2) (39.3% / 86.5% / 98.9% for k = 1/2/3).
[[nodiscard]] double fractionInside(const Bivariate& m, double k,
                                    const std::vector<double>& x,
                                    const std::vector<double>& y);

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_ELLIPSE_HPP
