#include "stats/ellipse.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vsstat::stats {

double Bivariate::correlation() const noexcept {
  const double denom = std::sqrt(varX * varY);
  return denom > 0.0 ? covXY / denom : 0.0;
}

Bivariate bivariateMoments(const std::vector<double>& x,
                           const std::vector<double>& y) {
  require(x.size() == y.size(), "bivariateMoments: size mismatch");
  require(x.size() >= 2, "bivariateMoments: need >= 2 points");
  const auto n = static_cast<double>(x.size());

  Bivariate m;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m.meanX += x[i];
    m.meanY += y[i];
  }
  m.meanX /= n;
  m.meanY /= n;

  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - m.meanX;
    const double dy = y[i] - m.meanY;
    m.varX += dx * dx;
    m.varY += dy * dy;
    m.covXY += dx * dy;
  }
  m.varX /= n - 1.0;
  m.varY /= n - 1.0;
  m.covXY /= n - 1.0;
  return m;
}

EllipseSpec sigmaEllipse(const Bivariate& m, double k) {
  require(k > 0.0, "sigmaEllipse: k must be > 0");
  // Eigen-decomposition of the 2x2 symmetric covariance matrix.
  const double tr = m.varX + m.varY;
  const double det = m.varX * m.varY - m.covXY * m.covXY;
  const double disc = std::sqrt(std::max(0.25 * tr * tr - det, 0.0));
  const double l1 = 0.5 * tr + disc;  // largest eigenvalue
  const double l2 = 0.5 * tr - disc;

  EllipseSpec e;
  e.centerX = m.meanX;
  e.centerY = m.meanY;
  e.semiMajor = k * std::sqrt(std::max(l1, 0.0));
  e.semiMinor = k * std::sqrt(std::max(l2, 0.0));
  if (std::fabs(m.covXY) < 1e-300 && m.varX >= m.varY) {
    e.angleRad = 0.0;
  } else if (std::fabs(m.covXY) < 1e-300) {
    e.angleRad = M_PI / 2.0;
  } else {
    e.angleRad = std::atan2(l1 - m.varX, m.covXY);
  }
  return e;
}

EllipsePolyline traceEllipse(const EllipseSpec& e, std::size_t points) {
  require(points >= 3, "traceEllipse: need >= 3 points");
  EllipsePolyline p;
  p.x.resize(points + 1);
  p.y.resize(points + 1);
  const double ca = std::cos(e.angleRad);
  const double sa = std::sin(e.angleRad);
  for (std::size_t i = 0; i <= points; ++i) {
    const double t =
        2.0 * M_PI * static_cast<double>(i) / static_cast<double>(points);
    const double u = e.semiMajor * std::cos(t);
    const double v = e.semiMinor * std::sin(t);
    p.x[i] = e.centerX + u * ca - v * sa;
    p.y[i] = e.centerY + u * sa + v * ca;
  }
  return p;
}

double fractionInside(const Bivariate& m, double k,
                      const std::vector<double>& x,
                      const std::vector<double>& y) {
  require(x.size() == y.size(), "fractionInside: size mismatch");
  require(!x.empty(), "fractionInside: empty sample");
  const double det = m.varX * m.varY - m.covXY * m.covXY;
  require(det > 0.0, "fractionInside: degenerate covariance");

  const double inv00 = m.varY / det;
  const double inv01 = -m.covXY / det;
  const double inv11 = m.varX / det;
  const double k2 = k * k;

  std::size_t inside = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - m.meanX;
    const double dy = y[i] - m.meanY;
    const double d2 = dx * (inv00 * dx + inv01 * dy) +
                      dy * (inv01 * dx + inv11 * dy);
    if (d2 <= k2) ++inside;
  }
  return static_cast<double>(inside) / static_cast<double>(x.size());
}

}  // namespace vsstat::stats
