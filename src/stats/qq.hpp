// Quantile-quantile analysis against the standard normal, matching the
// paper's Fig. 7 (NAND2 delay at scaled Vdd) and Fig. 9(f) (SRAM HOLD SNM).
#ifndef VSSTAT_STATS_QQ_HPP
#define VSSTAT_STATS_QQ_HPP

#include <vector>

namespace vsstat::stats {

/// Standard normal CDF.
[[nodiscard]] double normalCdf(double x) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |error| < 1e-9 over (0, 1)).
[[nodiscard]] double normalQuantile(double p);

struct QqData {
  std::vector<double> theoretical;  ///< standard normal quantiles
  std::vector<double> sample;       ///< sorted sample values
  /// Pearson r^2 of (theoretical, sample); 1.0 == perfectly Gaussian shape.
  double linearity = 0.0;
};

/// Builds QQ-plot data: sample order statistics vs normal quantiles at
/// plotting positions (i + 0.5)/n.
[[nodiscard]] QqData qqAgainstNormal(std::vector<double> samples);

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_QQ_HPP
