#include "stats/spatial.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/error.hpp"

namespace vsstat::stats {

double distance(const DiePoint& a, const DiePoint& b) noexcept {
  return std::hypot(a.x - b.x, a.y - b.y);
}

CorrelatedGaussianField::CorrelatedGaussianField(std::vector<DiePoint> points,
                                                 double correlationLength,
                                                 double nugget)
    : points_(std::move(points)), length_(correlationLength), nugget_(nugget) {
  require(!points_.empty(), "CorrelatedGaussianField: no points");
  require(length_ > 0.0,
          "CorrelatedGaussianField: correlation length must be positive");
  require(nugget_ >= 0.0 && nugget_ < 1.0,
          "CorrelatedGaussianField: nugget must lie in [0, 1)");

  const std::size_t n = points_.size();
  linalg::Matrix corr(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      corr(i, j) = correlation(i, j);
    }
  }
  cholesky_ = linalg::choleskyFactor(corr);
}

std::vector<double> CorrelatedGaussianField::sample(Rng& rng) const {
  const std::size_t n = points_.size();
  std::vector<double> z(n);
  for (double& v : z) v = rng.normal();

  // field = L z, with L the lower Cholesky factor.
  std::vector<double> field(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j <= i; ++j) acc += cholesky_(i, j) * z[j];
    field[i] = acc;
  }
  return field;
}

double CorrelatedGaussianField::correlation(std::size_t i,
                                            std::size_t j) const {
  require(i < points_.size() && j < points_.size(),
          "CorrelatedGaussianField::correlation: index out of range");
  if (i == j) return 1.0;
  return (1.0 - nugget_) *
         std::exp(-distance(points_[i], points_[j]) / length_);
}

}  // namespace vsstat::stats
