#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vsstat::stats {

void MomentAccumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Pébay's one-pass update of central moments.
  const auto n1 = static_cast<double>(n_);
  ++n_;
  const auto n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double deltaN = delta / n;
  const double deltaN2 = deltaN * deltaN;
  const double term1 = delta * deltaN * n1;
  mean_ += deltaN;
  m4_ += term1 * deltaN2 * (n * n - 3.0 * n + 3.0) + 6.0 * deltaN2 * m2_ -
         4.0 * deltaN * m3_;
  m3_ += term1 * deltaN * (n - 2.0) - 3.0 * deltaN * m2_;
  m2_ += term1;
}

double MomentAccumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double MomentAccumulator::stddev() const noexcept {
  return std::sqrt(variance());
}

double MomentAccumulator::skewness() const noexcept {
  if (n_ < 3 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double MomentAccumulator::excessKurtosis() const noexcept {
  if (n_ < 4 || m2_ <= 0.0) return 0.0;
  const auto n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

StreamingQuantile::StreamingQuantile(double q) : q_(q) {
  require(q > 0.0 && q < 1.0, "StreamingQuantile: q must be in (0, 1)");
  increments_[0] = 0.0;
  increments_[1] = q / 2.0;
  increments_[2] = q;
  increments_[3] = (1.0 + q) / 2.0;
  increments_[4] = 1.0;
}

void StreamingQuantile::add(double x) {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
        desired_[i] = 1.0 + 4.0 * increments_[i];
      }
    }
    return;
  }

  // Locate the cell containing x; clamp the extreme markers to the stream's
  // running min/max.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++n_;

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (P^2) height update, falling back to linear
  // interpolation when the parabola would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 0 ? 1.0 : -1.0;
      const double span = positions_[i + 1] - positions_[i - 1];
      const double parabolic =
          heights_[i] +
          s / span *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double StreamingQuantile::value() const {
  require(n_ > 0, "StreamingQuantile: no observations");
  if (n_ < 5) {
    std::vector<double> sorted(heights_, heights_ + n_);
    std::sort(sorted.begin(), sorted.end());
    return quantileSorted(sorted, q_);
  }
  return heights_[2];
}

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  if (samples.empty()) return s;

  MomentAccumulator acc;
  for (double v : samples) acc.add(v);
  s.count = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.skewness = acc.skewness();
  s.excessKurtosis = acc.excessKurtosis();
  s.min = acc.min();
  s.max = acc.max();

  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  s.median = quantileSorted(sorted, 0.5);
  s.q25 = quantileSorted(sorted, 0.25);
  s.q75 = quantileSorted(sorted, 0.75);
  return s;
}

double quantileSorted(const std::vector<double>& sorted, double q) {
  require(!sorted.empty(), "quantile: empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile: q must be in [0, 1]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantileSorted(samples, q);
}

double mean(const std::vector<double>& samples) {
  require(!samples.empty(), "mean: empty sample");
  double s = 0.0;
  for (double v : samples) s += v;
  return s / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  MomentAccumulator acc;
  for (double v : samples) acc.add(v);
  return acc.stddev();
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  require(x.size() == y.size(), "correlation: size mismatch");
  require(x.size() >= 2, "correlation: need at least 2 points");
  const double mx = mean(x);
  const double my = mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace vsstat::stats
