#include "stats/rng.hpp"

#include <cmath>

namespace vsstat::stats {

namespace {

std::uint64_t splitMix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitMix64(sm);
  // xoshiro requires a nonzero state; SplitMix64 output of any seed gives
  // that with probability 1 - 2^-256, but be explicit anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::fork(std::uint64_t index) const noexcept {
  // Mix the parent state with the child index through SplitMix64 so child
  // streams are decorrelated even for consecutive indices.
  std::uint64_t mix = state_[0] ^ rotl(state_[2], 17) ^ (index * 0xD2B74407B1CE6E93ULL);
  std::uint64_t sm = mix + 0x9E3779B97F4A7C15ULL * (index + 1);
  return Rng(splitMix64(sm));
}

std::uint64_t Rng::nextU64() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 random bits into [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Rng::normal() noexcept {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cachedNormal_ = v * factor;
  hasCachedNormal_ = true;
  return u * factor;
}

double Rng::normal(double mean, double sigma) noexcept {
  return mean + sigma * normal();
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = nextU64();
    if (r >= threshold) return r % bound;
  }
}

}  // namespace vsstat::stats
