// Fixed-bin histogram with optional probability-density normalization.
#ifndef VSSTAT_STATS_HISTOGRAM_HPP
#define VSSTAT_STATS_HISTOGRAM_HPP

#include <cstddef>
#include <vector>

namespace vsstat::stats {

class Histogram {
 public:
  /// Builds a histogram over [lo, hi) with `bins` equal-width bins.
  Histogram(double lo, double hi, std::size_t bins);

  /// Convenience: auto range [min, max] from the sample, then count.
  static Histogram fromSamples(const std::vector<double>& samples,
                               std::size_t bins);

  void add(double x) noexcept;   ///< out-of-range values clamp to edge bins

  [[nodiscard]] std::size_t binCount() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const;
  [[nodiscard]] double binCenter(std::size_t bin) const;
  [[nodiscard]] double binWidth() const noexcept { return width_; }
  [[nodiscard]] std::size_t totalCount() const noexcept { return total_; }

  /// Probability density per bin (integrates to ~1 over the range).
  [[nodiscard]] std::vector<double> density() const;
  [[nodiscard]] std::vector<double> centers() const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_HISTOGRAM_HPP
