// Normality diagnostics.  The paper's BPV derivation assumes Gaussian
// electrical targets (Sec. III), and its low-Vdd results hinge on detecting
// when delay distributions *stop* being Gaussian; these tests quantify both.
#ifndef VSSTAT_STATS_NORMALITY_HPP
#define VSSTAT_STATS_NORMALITY_HPP

#include <vector>

namespace vsstat::stats {

/// Jarque–Bera statistic: n/6 * (skew^2 + kurt^2/4).  Under normality it is
/// asymptotically chi-square with 2 dof (95% critical value ~ 5.99).
struct JarqueBera {
  double statistic = 0.0;
  bool rejectAt5Percent = false;
};

[[nodiscard]] JarqueBera jarqueBera(const std::vector<double>& samples);

/// Lilliefors / Kolmogorov–Smirnov distance against a normal with the
/// sample's own mean and stddev, plus the 5% Lilliefors critical value
/// (asymptotic 0.886/sqrt(n)).
struct KsNormal {
  double statistic = 0.0;
  double critical5Percent = 0.0;
  bool rejectAt5Percent = false;
};

[[nodiscard]] KsNormal ksAgainstNormal(std::vector<double> samples);

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_NORMALITY_HPP
