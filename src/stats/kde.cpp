#include "stats/kde.hpp"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.hpp"
#include "util/error.hpp"

namespace vsstat::stats {

double silvermanBandwidth(const std::vector<double>& samples) {
  require(samples.size() >= 2, "silvermanBandwidth: need >= 2 samples");
  const double sd = stddev(samples);
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double iqr = quantileSorted(sorted, 0.75) - quantileSorted(sorted, 0.25);
  double spread = sd;
  if (iqr > 0.0) spread = std::min(sd, iqr / 1.349);
  if (spread <= 0.0) spread = std::max(sd, 1e-300);
  const auto n = static_cast<double>(samples.size());
  return 0.9 * spread * std::pow(n, -0.2);
}

double kdeAt(const std::vector<double>& samples, double x, double bandwidth) {
  require(!samples.empty(), "kdeAt: empty sample");
  require(bandwidth > 0.0, "kdeAt: bandwidth must be > 0");
  constexpr double kInvSqrt2Pi = 0.3989422804014327;
  double s = 0.0;
  for (double v : samples) {
    const double u = (x - v) / bandwidth;
    s += std::exp(-0.5 * u * u);
  }
  return s * kInvSqrt2Pi /
         (bandwidth * static_cast<double>(samples.size()));
}

KdeCurve kde(const std::vector<double>& samples, std::size_t points,
             double bandwidth) {
  require(samples.size() >= 2, "kde: need >= 2 samples");
  require(points >= 2, "kde: need >= 2 grid points");

  double h = bandwidth > 0.0 ? bandwidth : silvermanBandwidth(samples);
  if (h <= 0.0) h = 1e-12;

  const auto [mnIt, mxIt] = std::minmax_element(samples.begin(), samples.end());
  const double lo = *mnIt - 3.0 * h;
  const double hi = *mxIt + 3.0 * h;

  KdeCurve curve;
  curve.bandwidth = h;
  curve.x.resize(points);
  curve.density.resize(points);
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    curve.x[i] = lo + static_cast<double>(i) * step;
    curve.density[i] = kdeAt(samples, curve.x[i], h);
  }
  return curve;
}

}  // namespace vsstat::stats
