// Deterministic pseudo-random number generation for Monte Carlo.
//
// Implementation: xoshiro256++ seeded via SplitMix64.  Every MC sample gets
// its own child stream derived from (campaign seed, sample index), so runs
// are bit-reproducible regardless of thread count or scheduling — a
// requirement for the paper-reproduction benches to print stable numbers.
#ifndef VSSTAT_STATS_RNG_HPP
#define VSSTAT_STATS_RNG_HPP

#include <cstdint>

namespace vsstat::stats {

/// Value-semantic random stream.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Derives an independent child stream; children with different indices
  /// are decorrelated from each other and from the parent.
  [[nodiscard]] Rng fork(std::uint64_t index) const noexcept;

  /// Next raw 64-bit value.
  std::uint64_t nextU64() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal draw (Marsaglia polar method with caching).
  double normal() noexcept;

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double sigma) noexcept;

  /// Integer in [0, bound) without modulo bias (bound must be > 0).
  std::uint64_t below(std::uint64_t bound) noexcept;

 private:
  std::uint64_t state_[4];
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_RNG_HPP
