// Gaussian kernel density estimation.  The paper's Figs. 5/7/8/9 plot
// smooth delay/SNM probability densities from Monte Carlo samples; KDE is
// how we regenerate those curves.
#ifndef VSSTAT_STATS_KDE_HPP
#define VSSTAT_STATS_KDE_HPP

#include <vector>

namespace vsstat::stats {

struct KdeCurve {
  std::vector<double> x;
  std::vector<double> density;
  double bandwidth = 0.0;
};

/// Silverman's rule-of-thumb bandwidth for a Gaussian kernel.
[[nodiscard]] double silvermanBandwidth(const std::vector<double>& samples);

/// Evaluates the Gaussian KDE of `samples` on `points` grid points spanning
/// [min - 3h, max + 3h].  `bandwidth <= 0` selects Silverman's rule.
[[nodiscard]] KdeCurve kde(const std::vector<double>& samples,
                           std::size_t points = 200, double bandwidth = 0.0);

/// Evaluates the KDE at a single location.
[[nodiscard]] double kdeAt(const std::vector<double>& samples, double x,
                           double bandwidth);

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_KDE_HPP
