#include "stats/histogram.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace vsstat::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  require(bins > 0, "Histogram: bins must be > 0");
  require(hi > lo, "Histogram: need hi > lo");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

Histogram Histogram::fromSamples(const std::vector<double>& samples,
                                 std::size_t bins) {
  require(!samples.empty(), "Histogram::fromSamples: empty sample");
  auto [mn, mx] = std::minmax_element(samples.begin(), samples.end());
  double lo = *mn;
  double hi = *mx;
  if (lo == hi) {
    lo -= 0.5;
    hi += 0.5;
  }
  // Nudge the top edge so the max sample falls inside the last bin.
  hi += (hi - lo) * 1e-9;
  Histogram h(lo, hi, bins);
  for (double s : samples) h.add(s);
  return h;
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<long>((x - lo_) / width_);
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::count: bin out of range");
  return counts_[bin];
}

double Histogram::binCenter(std::size_t bin) const {
  require(bin < counts_.size(), "Histogram::binCenter: bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::vector<double> Histogram::density() const {
  std::vector<double> d(counts_.size(), 0.0);
  if (total_ == 0) return d;
  const double norm = 1.0 / (static_cast<double>(total_) * width_);
  for (std::size_t i = 0; i < counts_.size(); ++i)
    d[i] = static_cast<double>(counts_[i]) * norm;
  return d;
}

std::vector<double> Histogram::centers() const {
  std::vector<double> c(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) c[i] = binCenter(i);
  return c;
}

}  // namespace vsstat::stats
