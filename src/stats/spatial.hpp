// Spatially correlated Gaussian fields over die coordinates.
//
// Reference [14] of the paper (Agarwal/Blaauw/Zolotov) treats intra-die
// variation with spatial correlation; the paper's own extraction handles
// the area-scaled *uncorrelated* mismatch component.  This module supplies
// the correlated component so the two can be composed: a unit-variance
// Gaussian field with exponential correlation rho(d) = exp(-d / Lc),
// realized exactly over a fixed set of device locations through the
// Cholesky factor of the correlation matrix.
#ifndef VSSTAT_STATS_SPATIAL_HPP
#define VSSTAT_STATS_SPATIAL_HPP

#include <vector>

#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace vsstat::stats {

/// Device location on the die [m].
struct DiePoint {
  double x = 0.0;
  double y = 0.0;
};

[[nodiscard]] double distance(const DiePoint& a, const DiePoint& b) noexcept;

/// Unit-variance Gaussian field with exponential spatial correlation,
/// sampled exactly at a fixed set of points via Cholesky factorization.
///
/// The optional nugget adds an uncorrelated variance fraction on the
/// diagonal (measurement noise / residual white mismatch); it also keeps
/// the factorization positive definite when two points coincide.
class CorrelatedGaussianField {
 public:
  /// correlationLength Lc > 0 [m]; nugget in [0, 1).
  CorrelatedGaussianField(std::vector<DiePoint> points,
                          double correlationLength, double nugget = 1e-9);

  /// One field realization; entry i is the field value at points[i].
  /// Marginal variance is 1 at every point.
  [[nodiscard]] std::vector<double> sample(Rng& rng) const;

  /// Model correlation between points i and j:
  /// (1 - nugget) * exp(-d_ij / Lc) plus the nugget at i == j.
  [[nodiscard]] double correlation(std::size_t i, std::size_t j) const;

  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }
  [[nodiscard]] const std::vector<DiePoint>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] double correlationLength() const noexcept { return length_; }

 private:
  std::vector<DiePoint> points_;
  double length_ = 0.0;
  double nugget_ = 0.0;
  linalg::Matrix cholesky_;  ///< lower factor of the correlation matrix
};

}  // namespace vsstat::stats

#endif  // VSSTAT_STATS_SPATIAL_HPP
