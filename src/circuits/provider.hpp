// DeviceProvider: the seam between circuit topology and device statistics.
//
// Cell builders ask the provider for each transistor instance; a nominal
// provider clones prototype cards, while the Monte Carlo providers
// (src/mc/providers.hpp) sample fresh mismatch deltas per instance.  This
// keeps every benchmark circuit topology-identical between the nominal,
// VS-statistical and golden-statistical runs -- only the provider changes.
#ifndef VSSTAT_CIRCUITS_PROVIDER_HPP
#define VSSTAT_CIRCUITS_PROVIDER_HPP

#include <memory>
#include <string>

#include "models/device.hpp"

namespace vsstat::circuits {

/// One concrete transistor: per-instance card + per-instance geometry.
struct DeviceInstance {
  std::unique_ptr<models::MosfetModel> model;
  models::DeviceGeometry geometry;
};

/// Pure-abstract factory for transistor instances.
class DeviceProvider {
 public:
  virtual ~DeviceProvider() = default;

  DeviceProvider() = default;
  DeviceProvider(const DeviceProvider&) = delete;
  DeviceProvider& operator=(const DeviceProvider&) = delete;

  /// Produces the instance for a named transistor of the given type and
  /// nominal geometry.  Statistical providers draw mismatch here, so the
  /// call order must be deterministic (builders guarantee it).
  [[nodiscard]] virtual DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) = 0;
};

/// Clones fixed prototype cards; geometry passes through unchanged.
class NominalProvider final : public DeviceProvider {
 public:
  NominalProvider(const models::MosfetModel& nmosPrototype,
                  const models::MosfetModel& pmosPrototype);

  [[nodiscard]] DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

 private:
  std::unique_ptr<models::MosfetModel> nmos_;
  std::unique_ptr<models::MosfetModel> pmos_;
};

}  // namespace vsstat::circuits

#endif  // VSSTAT_CIRCUITS_PROVIDER_HPP
