// DeviceProvider: the seam between circuit topology and device statistics.
//
// Cell builders ask the provider for each transistor instance; a nominal
// provider clones prototype cards, while the Monte Carlo providers
// (src/mc/providers.hpp) sample fresh mismatch deltas per instance.  This
// keeps every benchmark circuit topology-identical between the nominal,
// VS-statistical and golden-statistical runs -- only the provider changes.
//
// Build-once / rebind-per-sample campaigns (sim::CampaignSession) add a
// second pass to the same seam: after a fixture is built once, the session
// replays the build's device order per sample through resample(), which
// rebinds cards onto the existing elements instead of re-creating them.
// reseed() resets the provider's random stream to the sample's
// decorrelated child RNG first, so a rebind pass draws exactly what a
// fresh provider plus rebuild would have drawn -- that is what makes the
// two paths bit-identical.
#ifndef VSSTAT_CIRCUITS_PROVIDER_HPP
#define VSSTAT_CIRCUITS_PROVIDER_HPP

#include <memory>
#include <string>
#include <vector>

#include "models/device.hpp"

namespace vsstat::spice {
class MosfetElement;
}

namespace vsstat::stats {
class Rng;
}

namespace vsstat::circuits {

/// One concrete transistor: per-instance card + per-instance geometry.
struct DeviceInstance {
  std::unique_ptr<models::MosfetModel> model;
  models::DeviceGeometry geometry;
};

/// One make() call of a fixture build, as recorded by RecordingProvider:
/// everything needed to replay the request against the built circuit.
struct DeviceRecord {
  models::DeviceType type = models::DeviceType::Nmos;
  std::string instanceName;
  models::DeviceGeometry nominal;
};

/// Pure-abstract factory for transistor instances.
class DeviceProvider {
 public:
  virtual ~DeviceProvider() = default;

  DeviceProvider() = default;
  DeviceProvider(const DeviceProvider&) = delete;
  DeviceProvider& operator=(const DeviceProvider&) = delete;

  /// Produces the instance for a named transistor of the given type and
  /// nominal geometry.  Statistical providers draw mismatch here, so the
  /// call order must be deterministic (builders guarantee it).
  [[nodiscard]] virtual DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) = 0;

  /// Per-sample rebind pass: regenerates the card for one transistor and
  /// rebinds it onto an existing element in place.  Must consume exactly
  /// the draws make() would, so replaying the build order reproduces the
  /// rebuild path bit-for-bit.  The default routes through make() (one
  /// temporary card allocation); statistical providers override it with a
  /// stack-card + in-place parameter copy that never touches the heap.
  virtual void resample(models::DeviceType type,
                        const std::string& instanceName,
                        const models::DeviceGeometry& nominal,
                        spice::MosfetElement& element);

  /// Resets the provider's random stream for the next sample (campaign
  /// sessions call this once per sample with the sample's decorrelated
  /// child RNG).  Providers without internal randomness ignore it.
  virtual void reseed(const stats::Rng& rng);
};

/// Clones fixed prototype cards; geometry passes through unchanged.
class NominalProvider final : public DeviceProvider {
 public:
  NominalProvider(const models::MosfetModel& nmosPrototype,
                  const models::MosfetModel& pmosPrototype);

  [[nodiscard]] DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

 private:
  std::unique_ptr<models::MosfetModel> nmos_;
  std::unique_ptr<models::MosfetModel> pmos_;
};

/// Base for providers that realize mismatch from an externally supplied
/// vector of STANDARDIZED normal coordinates instead of an internal RNG:
/// variance-reduction designs (Latin hypercube, Halton/Sobol, importance
/// sampling) compute the z-vector up front and the provider scales it by
/// the process sigmas.  Consumption contract: derived make()/resample()
/// pull coordinates via nextZ() in the build's device order; setZ() arms
/// the vector for the next sample and rewinds the cursor; reseed() ONLY
/// rewinds the cursor (there is no random stream), which is exactly what
/// lets rescue-ladder replays re-run the same z-vector bit-for-bit.
class FixedZProvider : public DeviceProvider {
 public:
  /// Arms the provider with one sample's standardized coordinates.
  void setZ(std::vector<double> z) {
    z_ = std::move(z);
    cursor_ = 0;
  }

  /// Rewinds the cursor; the armed z-vector replays from the start.
  void reseed(const stats::Rng& /*rng*/) override { cursor_ = 0; }

 protected:
  /// Next standardized coordinate; 0.0 (the nominal point) past the end,
  /// so shorter-than-needed vectors perturb only the leading devices.
  [[nodiscard]] double nextZ() noexcept {
    return cursor_ < z_.size() ? z_[cursor_++] : 0.0;
  }

 private:
  std::vector<double> z_;
  std::size_t cursor_ = 0;
};

/// Pass-through wrapper that records every make() call during a one-time
/// fixture build.  sim::CampaignSession wraps the worker's provider in one
/// of these while the builder runs, then resolves the records to the built
/// circuit's elements (builders name elements after the instanceName they
/// request) to form its per-sample rebind plan.
class RecordingProvider final : public DeviceProvider {
 public:
  explicit RecordingProvider(DeviceProvider& inner) : inner_(inner) {}

  [[nodiscard]] DeviceInstance make(
      models::DeviceType type, const std::string& instanceName,
      const models::DeviceGeometry& nominal) override;

  [[nodiscard]] const std::vector<DeviceRecord>& records() const noexcept {
    return records_;
  }

 private:
  DeviceProvider& inner_;
  std::vector<DeviceRecord> records_;
};

}  // namespace vsstat::circuits

#endif  // VSSTAT_CIRCUITS_PROVIDER_HPP
