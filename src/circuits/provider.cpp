#include "circuits/provider.hpp"

#include "spice/elements.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"

namespace vsstat::circuits {

void DeviceProvider::resample(models::DeviceType type,
                              const std::string& instanceName,
                              const models::DeviceGeometry& nominal,
                              spice::MosfetElement& element) {
  DeviceInstance inst = make(type, instanceName, nominal);
  element.rebind(*inst.model, inst.geometry);
}

void DeviceProvider::reseed(const stats::Rng& /*rng*/) {}

NominalProvider::NominalProvider(const models::MosfetModel& nmosPrototype,
                                 const models::MosfetModel& pmosPrototype)
    : nmos_(nmosPrototype.clone()), pmos_(pmosPrototype.clone()) {
  require(nmos_->deviceType() == models::DeviceType::Nmos,
          "NominalProvider: first prototype must be NMOS");
  require(pmos_->deviceType() == models::DeviceType::Pmos,
          "NominalProvider: second prototype must be PMOS");
}

DeviceInstance NominalProvider::make(models::DeviceType type,
                                     const std::string& /*instanceName*/,
                                     const models::DeviceGeometry& nominal) {
  DeviceInstance inst;
  inst.model =
      type == models::DeviceType::Nmos ? nmos_->clone() : pmos_->clone();
  inst.geometry = nominal;
  return inst;
}

DeviceInstance RecordingProvider::make(models::DeviceType type,
                                       const std::string& instanceName,
                                       const models::DeviceGeometry& nominal) {
  records_.push_back(DeviceRecord{type, instanceName, nominal});
  return inner_.make(type, instanceName, nominal);
}

}  // namespace vsstat::circuits
