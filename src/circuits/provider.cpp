#include "circuits/provider.hpp"

#include "util/error.hpp"

namespace vsstat::circuits {

NominalProvider::NominalProvider(const models::MosfetModel& nmosPrototype,
                                 const models::MosfetModel& pmosPrototype)
    : nmos_(nmosPrototype.clone()), pmos_(pmosPrototype.clone()) {
  require(nmos_->deviceType() == models::DeviceType::Nmos,
          "NominalProvider: first prototype must be NMOS");
  require(pmos_->deviceType() == models::DeviceType::Pmos,
          "NominalProvider: second prototype must be PMOS");
}

DeviceInstance NominalProvider::make(models::DeviceType type,
                                     const std::string& /*instanceName*/,
                                     const models::DeviceGeometry& nominal) {
  DeviceInstance inst;
  inst.model =
      type == models::DeviceType::Nmos ? nmos_->clone() : pmos_->clone();
  inst.geometry = nominal;
  return inst;
}

}  // namespace vsstat::circuits
