// Standard-cell builders: static CMOS inverter and NAND2.  Each builder
// instantiates its transistors through a DeviceProvider and wires them into
// an existing Circuit under a unique name prefix.
#ifndef VSSTAT_CIRCUITS_CELLS_HPP
#define VSSTAT_CIRCUITS_CELLS_HPP

#include <string>

#include "circuits/provider.hpp"
#include "spice/circuit.hpp"

namespace vsstat::circuits {

/// Transistor sizing of a cell, nanometres (paper notation).
struct CellSizing {
  double wPmosNm = 600.0;
  double wNmosNm = 300.0;
  double lengthNm = 40.0;

  [[nodiscard]] CellSizing scaled(double factor) const noexcept {
    return CellSizing{wPmosNm * factor, wNmosNm * factor, lengthNm};
  }
};

/// Static CMOS inverter between `in` and `out`.
void addInverter(spice::Circuit& circuit, DeviceProvider& provider,
                 const std::string& prefix, spice::NodeId in,
                 spice::NodeId out, spice::NodeId vdd,
                 const CellSizing& sizing);

/// Two-input static CMOS NAND.  Series NMOS stack a(top input, nearer the
/// output) / b(bottom), parallel PMOS pull-ups.
void addNand2(spice::Circuit& circuit, DeviceProvider& provider,
              const std::string& prefix, spice::NodeId a, spice::NodeId b,
              spice::NodeId out, spice::NodeId vdd, const CellSizing& sizing);

/// Two-input static CMOS NOR.  Series PMOS stack a(top, at the supply) /
/// b(nearer the output), parallel NMOS pull-downs.
void addNor2(spice::Circuit& circuit, DeviceProvider& provider,
             const std::string& prefix, spice::NodeId a, spice::NodeId b,
             spice::NodeId out, spice::NodeId vdd, const CellSizing& sizing);

/// Three-input static CMOS NAND: three series NMOS (a nearest the output),
/// three parallel PMOS pull-ups.
void addNand3(spice::Circuit& circuit, DeviceProvider& provider,
              const std::string& prefix, spice::NodeId a, spice::NodeId b,
              spice::NodeId c, spice::NodeId out, spice::NodeId vdd,
              const CellSizing& sizing);

/// NMOS pass transistor (gate `ctl`) between `x` and `y`.
void addNmosPass(spice::Circuit& circuit, DeviceProvider& provider,
                 const std::string& name, spice::NodeId x, spice::NodeId y,
                 spice::NodeId ctl, double widthNm, double lengthNm);

}  // namespace vsstat::circuits

#endif  // VSSTAT_CIRCUITS_CELLS_HPP
