#include "circuits/benchmarks.hpp"

#include "spice/elements.hpp"
#include "util/error.hpp"

namespace vsstat::circuits {

using models::DeviceType;
using models::geometryNm;
using spice::NodeId;
using spice::SourceWaveform;

namespace {

/// Wires supply + pulsed input; returns tStop covering both output edges.
double attachStimulus(GateFo3Bench& bench, const StimulusSpec& stimulus) {
  bench.supply = stimulus.vdd;
  bench.circuit.addVoltageSource(bench.vddSource, bench.vdd,
                                 bench.circuit.ground(),
                                 SourceWaveform::dc(stimulus.vdd));
  bench.circuit.addVoltageSource(
      bench.inSource, bench.in, bench.circuit.ground(),
      SourceWaveform::pulse(0.0, stimulus.vdd, stimulus.delay, stimulus.slew,
                            stimulus.slew, stimulus.width));
  return stimulus.delay + 2.0 * stimulus.slew + stimulus.width + 60e-12;
}

}  // namespace

GateFo3Bench buildInvFo3(DeviceProvider& provider, const CellSizing& sizing,
                         const StimulusSpec& stimulus, int fanout) {
  GateFo3Bench bench;
  auto& c = bench.circuit;
  bench.in = c.node("in");
  bench.out = c.node("out");
  bench.vdd = c.node("vdd");

  addInverter(c, provider, "XDRV", bench.in, bench.out, bench.vdd, sizing);
  for (int k = 0; k < fanout; ++k) {
    const std::string prefix = "XL" + std::to_string(k);
    const NodeId lo = c.node(prefix + ".out");
    addInverter(c, provider, prefix, bench.out, lo, bench.vdd, sizing);
  }
  bench.tStop = attachStimulus(bench, stimulus);
  return bench;
}

GateFo3Bench buildNand2Fo3(DeviceProvider& provider, const CellSizing& sizing,
                           const StimulusSpec& stimulus, int fanout) {
  GateFo3Bench bench;
  auto& c = bench.circuit;
  bench.in = c.node("in");
  bench.out = c.node("out");
  bench.vdd = c.node("vdd");

  // Input A switches; input B tied to Vdd so the gate inverts A.
  addNand2(c, provider, "XDRV", bench.in, bench.vdd, bench.out, bench.vdd,
           sizing);
  for (int k = 0; k < fanout; ++k) {
    const std::string prefix = "XL" + std::to_string(k);
    const NodeId lo = c.node(prefix + ".out");
    addNand2(c, provider, prefix, bench.out, bench.vdd, lo, bench.vdd, sizing);
  }
  bench.tStop = attachStimulus(bench, stimulus);
  return bench;
}

DffBench buildDff(DeviceProvider& provider, double vdd,
                  const CellSizing& inverterSizing, double passWidthNm) {
  DffBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;

  const NodeId vddN = c.node("vdd");
  bench.d = c.node("d");
  bench.clk = c.node("clk");
  const NodeId clkb = c.node("clkb");
  const NodeId m1 = c.node("m1");    // master storage (= D while transparent)
  const NodeId m2 = c.node("m2");    // master output (= !D)
  const NodeId mfb = c.node("mfb");  // master feedback
  const NodeId s1 = c.node("s1");    // slave storage (= !D after capture)
  bench.q = c.node("q");             // slave inverter output (= D)
  const NodeId sfb = c.node("sfb");  // slave feedback
  const NodeId qbar = c.node("qbar");
  bench.master = m1;

  const double lNm = inverterSizing.lengthNm;
  // Weak keepers: half-width feedback inverters so writes win the fight.
  const CellSizing weak = inverterSizing.scaled(0.5);

  // Local clock inversion.
  addInverter(c, provider, "XCKB", bench.clk, clkb, vddN, inverterSizing);

  // Master: transparent while CLK low (pass gated by clkb); keeper loop
  // closes while CLK high.
  addNmosPass(c, provider, "MPASS1", bench.d, m1, clkb, passWidthNm, lNm);
  addInverter(c, provider, "XM1", m1, m2, vddN, inverterSizing);
  addInverter(c, provider, "XM2", m2, mfb, vddN, weak);
  addNmosPass(c, provider, "MFB1", mfb, m1, bench.clk, passWidthNm, lNm);

  // Slave: transparent while CLK high; keeper closes while CLK low.
  addNmosPass(c, provider, "MPASS2", m2, s1, bench.clk, passWidthNm, lNm);
  addInverter(c, provider, "XS1", s1, bench.q, vddN, inverterSizing);
  addInverter(c, provider, "XS2", bench.q, sfb, vddN, weak);
  addNmosPass(c, provider, "MFB2", sfb, s1, clkb, passWidthNm, lNm);

  // Complement output (also loads Q realistically).
  addInverter(c, provider, "XQ", bench.q, qbar, vddN, inverterSizing);

  c.addVoltageSource("VDD", vddN, c.ground(), SourceWaveform::dc(vdd));
  c.addVoltageSource(bench.dSource, bench.d, c.ground(),
                     SourceWaveform::dc(0.0));
  c.addVoltageSource(bench.clkSource, bench.clk, c.ground(),
                     SourceWaveform::dc(0.0));
  return bench;
}

SramButterflyBench buildSramButterfly(DeviceProvider& provider, double vdd,
                                      SramMode mode, const SramSizing& sizing) {
  SramButterflyBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;

  const NodeId vddN = c.node("vdd");
  const NodeId wl = c.node("wl");
  const NodeId bl = c.node("bl");

  bench.in1 = c.node("u1");
  bench.out1 = c.node("y1");
  bench.in2 = c.node("u2");
  bench.out2 = c.node("y2");

  const auto addHalf = [&](int half, NodeId in, NodeId out) {
    const std::string suffix = std::to_string(half);
    {
      DeviceInstance pu =
          provider.make(DeviceType::Pmos, "MPU" + suffix,
                        geometryNm(sizing.wPullUpNm, sizing.lengthNm));
      c.addMosfet("MPU" + suffix, out, in, vddN, std::move(pu.model),
                  pu.geometry);
    }
    {
      DeviceInstance pd =
          provider.make(DeviceType::Nmos, "MPD" + suffix,
                        geometryNm(sizing.wPullDownNm, sizing.lengthNm));
      c.addMosfet("MPD" + suffix, out, in, c.ground(), std::move(pd.model),
                  pd.geometry);
    }
    {
      DeviceInstance pg =
          provider.make(DeviceType::Nmos, "MPG" + suffix,
                        geometryNm(sizing.wPassNm, sizing.lengthNm));
      c.addMosfet("MPG" + suffix, bl, wl, out, std::move(pg.model),
                  pg.geometry);
    }
  };
  addHalf(1, bench.in1, bench.out1);
  addHalf(2, bench.in2, bench.out2);

  c.addVoltageSource("VDD", vddN, c.ground(), SourceWaveform::dc(vdd));
  c.addVoltageSource("VBL", bl, c.ground(), SourceWaveform::dc(vdd));
  c.addVoltageSource("VWL", wl, c.ground(),
                     SourceWaveform::dc(mode == SramMode::Read ? vdd : 0.0));
  c.addVoltageSource(bench.sweep1, bench.in1, c.ground(),
                     SourceWaveform::dc(0.0));
  c.addVoltageSource(bench.sweep2, bench.in2, c.ground(),
                     SourceWaveform::dc(0.0));
  return bench;
}

spice::OperatingPoint SramCellBench::stateGuess(bool qHigh) const {
  spice::OperatingPoint guess;
  guess.nodeVoltages.assign(circuit.nodeCount(), 0.0);
  guess.nodeVoltages[static_cast<std::size_t>(vdd)] = supply;
  guess.nodeVoltages[static_cast<std::size_t>(q)] = qHigh ? supply : 0.0;
  guess.nodeVoltages[static_cast<std::size_t>(qb)] = qHigh ? 0.0 : supply;
  return guess;
}

SramCellBench buildSramCell(DeviceProvider& provider, double vdd,
                            bool wordlineOn, const SramSizing& sizing) {
  SramCellBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;

  bench.vdd = c.node("vdd");
  const NodeId wl = c.node("wl");
  const NodeId bl = c.node("bl");
  const NodeId blb = c.node("blb");
  bench.q = c.node("q");
  bench.qb = c.node("qb");

  // One cross-coupled half: inverter driving `out` from `in` plus the
  // access transistor tying `out` to its bitline.  Same device order as
  // the butterfly fixture.
  const auto addHalf = [&](int half, NodeId in, NodeId out, NodeId bitline) {
    const std::string suffix = std::to_string(half);
    {
      DeviceInstance pu =
          provider.make(DeviceType::Pmos, "MPU" + suffix,
                        geometryNm(sizing.wPullUpNm, sizing.lengthNm));
      c.addMosfet("MPU" + suffix, out, in, bench.vdd, std::move(pu.model),
                  pu.geometry);
    }
    {
      DeviceInstance pd =
          provider.make(DeviceType::Nmos, "MPD" + suffix,
                        geometryNm(sizing.wPullDownNm, sizing.lengthNm));
      c.addMosfet("MPD" + suffix, out, in, c.ground(), std::move(pd.model),
                  pd.geometry);
    }
    {
      DeviceInstance pg =
          provider.make(DeviceType::Nmos, "MPG" + suffix,
                        geometryNm(sizing.wPassNm, sizing.lengthNm));
      c.addMosfet("MPG" + suffix, bitline, wl, out, std::move(pg.model),
                  pg.geometry);
    }
  };
  addHalf(1, bench.qb, bench.q, bl);
  addHalf(2, bench.q, bench.qb, blb);

  c.addVoltageSource(bench.vddSource, bench.vdd, c.ground(),
                     SourceWaveform::dc(vdd));
  c.addVoltageSource(bench.wlSource, wl, c.ground(),
                     SourceWaveform::dc(wordlineOn ? vdd : 0.0));
  c.addVoltageSource(bench.blSource, bl, c.ground(), SourceWaveform::dc(vdd));
  c.addVoltageSource(bench.blbSource, blb, c.ground(),
                     SourceWaveform::dc(vdd));
  return bench;
}

RingOscillatorBench buildRingOscillator(DeviceProvider& provider, int stages,
                                        const CellSizing& sizing,
                                        double vdd) {
  require(stages >= 3 && stages % 2 == 1,
          "buildRingOscillator: stages must be odd and >= 3");

  RingOscillatorBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;
  bench.vdd = c.node("vdd");
  c.addVoltageSource(bench.vddSource, bench.vdd, c.ground(),
                     SourceWaveform::dc(vdd));

  bench.taps.reserve(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s)
    bench.taps.push_back(c.node("ring" + std::to_string(s)));

  for (int s = 0; s < stages; ++s) {
    const NodeId in = bench.taps[static_cast<std::size_t>(s)];
    const NodeId out =
        bench.taps[static_cast<std::size_t>((s + 1) % stages)];
    addInverter(c, provider, "XS" + std::to_string(s), in, out, bench.vdd,
                sizing);
  }

  // Kick: a short current pulse into stage 0's output breaks the
  // metastable DC symmetry.  50 uA for 4 ps moves a few-fF node by a few
  // hundred mV -- plenty, while staying far from any damage regime.
  c.addCurrentSource("IKICK", c.ground(), bench.taps[1],
                     SourceWaveform::pulse(0.0, 50e-6, 1e-12, 0.5e-12,
                                           0.5e-12, 4e-12));

  // ~10 periods at a conservative 12 ps/stage estimate.
  bench.suggestedTStop =
      10.0 * 2.0 * static_cast<double>(stages) * 12e-12;
  return bench;
}

PowerGridBench buildPowerGridIrDrop(DeviceProvider& provider, int rows,
                                    int cols, double vdd, double meshOhms,
                                    double leakWidthNm, double lengthNm) {
  require(rows >= 2 && cols >= 2,
          "buildPowerGridIrDrop: rows and cols must be >= 2");
  require(meshOhms > 0.0, "buildPowerGridIrDrop: meshOhms must be positive");

  PowerGridBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;

  std::vector<NodeId> grid;
  grid.reserve(static_cast<std::size_t>(rows) *
               static_cast<std::size_t>(cols));
  for (int r = 0; r < rows; ++r)
    for (int col = 0; col < cols; ++col)
      grid.push_back(
          c.node("g" + std::to_string(r) + "_" + std::to_string(col)));
  const auto at = [&](int r, int col) {
    return grid[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
                static_cast<std::size_t>(col)];
  };
  bench.feed = at(0, 0);
  bench.farNode = at(rows - 1, cols - 1);

  // Mesh segments between 4-neighbors.  A diode-connected leakage NMOS at
  // every node draws its sample's current; diode connection keeps the DC
  // transfer monotone, so the supply sweep warm-starts cleanly.
  for (int r = 0; r < rows; ++r) {
    for (int col = 0; col < cols; ++col) {
      const std::string suffix =
          std::to_string(r) + "_" + std::to_string(col);
      if (col + 1 < cols)
        c.addResistor("RH" + suffix, at(r, col), at(r, col + 1), meshOhms);
      if (r + 1 < rows)
        c.addResistor("RV" + suffix, at(r, col), at(r + 1, col), meshOhms);
      DeviceInstance leak = provider.make(DeviceType::Nmos, "ML" + suffix,
                                          geometryNm(leakWidthNm, lengthNm));
      c.addMosfet("ML" + suffix, at(r, col), at(r, col), c.ground(),
                  std::move(leak.model), leak.geometry);
    }
  }

  c.addVoltageSource(bench.feedSource, bench.feed, c.ground(),
                     SourceWaveform::dc(vdd));
  return bench;
}

HTreeClockBench buildHTreeClock(DeviceProvider& provider, int levels,
                                double vdd, double segmentOhms,
                                double leafWidthNm, double lengthNm) {
  require(levels >= 1, "buildHTreeClock: levels must be >= 1");
  require(segmentOhms > 0.0, "buildHTreeClock: segmentOhms must be positive");

  HTreeClockBench bench;
  bench.supply = vdd;
  auto& c = bench.circuit;

  // Breadth-first binary tree of nodes: level l has 2^l of them.  Segment
  // resistance halves with depth, the usual tapered-H-tree sizing.
  bench.root = c.node("t0_0");
  std::vector<NodeId> frontier{bench.root};
  double ohms = segmentOhms;
  for (int l = 1; l <= levels; ++l) {
    std::vector<NodeId> next;
    next.reserve(frontier.size() * 2);
    for (std::size_t p = 0; p < frontier.size(); ++p) {
      for (int side = 0; side < 2; ++side) {
        const std::string suffix = std::to_string(l) + "_" +
                                   std::to_string(2 * p + static_cast<std::size_t>(side));
        const NodeId child = c.node("t" + suffix);
        c.addResistor("RT" + suffix, frontier[p], child, ohms);
        next.push_back(child);
      }
    }
    frontier = std::move(next);
    ohms *= 0.5;
  }
  bench.leaves = frontier;

  // One diode-connected NMOS load per leaf, same idiom as the power grid:
  // each draws its sample's leakage and keeps the DC transfer monotone.
  for (std::size_t k = 0; k < bench.leaves.size(); ++k) {
    const std::string name = "ML" + std::to_string(k);
    DeviceInstance leak = provider.make(DeviceType::Nmos, name,
                                        geometryNm(leafWidthNm, lengthNm));
    c.addMosfet(name, bench.leaves[k], bench.leaves[k], c.ground(),
                std::move(leak.model), leak.geometry);
  }

  c.addVoltageSource(bench.rootSource, bench.root, c.ground(),
                     SourceWaveform::dc(vdd));
  return bench;
}

spice::OperatingPoint SramColumnBench::stateGuess() const {
  spice::OperatingPoint guess;
  guess.nodeVoltages.assign(circuit.nodeCount(), 0.0);
  guess.nodeVoltages[static_cast<std::size_t>(vdd)] = supply;
  guess.nodeVoltages[static_cast<std::size_t>(bl)] = supply;
  guess.nodeVoltages[static_cast<std::size_t>(blb)] = supply;
  for (const spice::NodeId node : q)
    guess.nodeVoltages[static_cast<std::size_t>(node)] = supply;
  return guess;
}

SramColumnBench buildSramColumn(DeviceProvider& provider, int cells,
                                double vdd, const SramSizing& sizing,
                                int selected) {
  require(cells >= 1, "buildSramColumn: cells must be >= 1");
  require(selected >= 0 && selected < cells,
          "buildSramColumn: selected cell out of range");

  SramColumnBench bench;
  bench.supply = vdd;
  bench.selected = selected;
  auto& c = bench.circuit;

  bench.vdd = c.node("vdd");
  bench.bl = c.node("bl");
  bench.blb = c.node("blb");
  // Two wordline rails instead of one source per cell: the selected cell
  // hangs off the on-rail, everyone else off the off-rail.
  const NodeId wlOn = c.node("wl_on");
  const NodeId wlOff = c.node("wl_off");

  bench.q.reserve(static_cast<std::size_t>(cells));
  bench.qb.reserve(static_cast<std::size_t>(cells));
  for (int i = 0; i < cells; ++i) {
    const std::string cell = std::to_string(i);
    const NodeId q = c.node("q" + cell);
    const NodeId qb = c.node("qb" + cell);
    bench.q.push_back(q);
    bench.qb.push_back(qb);
    const NodeId wl = i == selected ? wlOn : wlOff;
    const auto addHalf = [&](int half, NodeId in, NodeId out, NodeId bitline) {
      const std::string suffix = cell + "_" + std::to_string(half);
      {
        DeviceInstance pu =
            provider.make(DeviceType::Pmos, "MPU" + suffix,
                          geometryNm(sizing.wPullUpNm, sizing.lengthNm));
        c.addMosfet("MPU" + suffix, out, in, bench.vdd, std::move(pu.model),
                    pu.geometry);
      }
      {
        DeviceInstance pd =
            provider.make(DeviceType::Nmos, "MPD" + suffix,
                          geometryNm(sizing.wPullDownNm, sizing.lengthNm));
        c.addMosfet("MPD" + suffix, out, in, c.ground(), std::move(pd.model),
                    pd.geometry);
      }
      {
        DeviceInstance pg =
            provider.make(DeviceType::Nmos, "MPG" + suffix,
                          geometryNm(sizing.wPassNm, sizing.lengthNm));
        c.addMosfet("MPG" + suffix, bitline, wl, out, std::move(pg.model),
                    pg.geometry);
      }
    };
    addHalf(1, qb, q, bench.bl);
    addHalf(2, q, qb, bench.blb);
  }

  c.addVoltageSource(bench.vddSource, bench.vdd, c.ground(),
                     SourceWaveform::dc(vdd));
  c.addVoltageSource("VWLON", wlOn, c.ground(), SourceWaveform::dc(vdd));
  c.addVoltageSource("VWLOFF", wlOff, c.ground(), SourceWaveform::dc(0.0));
  c.addVoltageSource(bench.blSource, bench.bl, c.ground(),
                     SourceWaveform::dc(vdd));
  c.addVoltageSource(bench.blbSource, bench.blb, c.ground(),
                     SourceWaveform::dc(vdd));
  return bench;
}

}  // namespace circuits
