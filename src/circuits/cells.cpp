#include "circuits/cells.hpp"

namespace vsstat::circuits {

using models::DeviceType;
using models::geometryNm;
using spice::Circuit;
using spice::NodeId;

void addInverter(Circuit& circuit, DeviceProvider& provider,
                 const std::string& prefix, NodeId in, NodeId out, NodeId vdd,
                 const CellSizing& sizing) {
  {
    DeviceInstance p = provider.make(DeviceType::Pmos, prefix + ".MP",
                                     geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MP", out, in, vdd, std::move(p.model),
                      p.geometry);
  }
  {
    DeviceInstance n = provider.make(DeviceType::Nmos, prefix + ".MN",
                                     geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MN", out, in, circuit.ground(),
                      std::move(n.model), n.geometry);
  }
}

void addNand2(Circuit& circuit, DeviceProvider& provider,
              const std::string& prefix, NodeId a, NodeId b, NodeId out,
              NodeId vdd, const CellSizing& sizing) {
  const NodeId mid = circuit.node(prefix + ".mid");

  {
    DeviceInstance pa = provider.make(DeviceType::Pmos, prefix + ".MPA",
                                      geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MPA", out, a, vdd, std::move(pa.model),
                      pa.geometry);
  }
  {
    DeviceInstance pb = provider.make(DeviceType::Pmos, prefix + ".MPB",
                                      geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MPB", out, b, vdd, std::move(pb.model),
                      pb.geometry);
  }
  {
    DeviceInstance na = provider.make(DeviceType::Nmos, prefix + ".MNA",
                                      geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MNA", out, a, mid, std::move(na.model),
                      na.geometry);
  }
  {
    DeviceInstance nb = provider.make(DeviceType::Nmos, prefix + ".MNB",
                                      geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MNB", mid, b, circuit.ground(),
                      std::move(nb.model), nb.geometry);
  }
}

void addNor2(Circuit& circuit, DeviceProvider& provider,
             const std::string& prefix, NodeId a, NodeId b, NodeId out,
             NodeId vdd, const CellSizing& sizing) {
  const NodeId mid = circuit.node(prefix + ".mid");

  {
    DeviceInstance pa = provider.make(DeviceType::Pmos, prefix + ".MPA",
                                      geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MPA", mid, a, vdd, std::move(pa.model),
                      pa.geometry);
  }
  {
    DeviceInstance pb = provider.make(DeviceType::Pmos, prefix + ".MPB",
                                      geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MPB", out, b, mid, std::move(pb.model),
                      pb.geometry);
  }
  {
    DeviceInstance na = provider.make(DeviceType::Nmos, prefix + ".MNA",
                                      geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MNA", out, a, circuit.ground(),
                      std::move(na.model), na.geometry);
  }
  {
    DeviceInstance nb = provider.make(DeviceType::Nmos, prefix + ".MNB",
                                      geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MNB", out, b, circuit.ground(),
                      std::move(nb.model), nb.geometry);
  }
}

void addNand3(Circuit& circuit, DeviceProvider& provider,
              const std::string& prefix, NodeId a, NodeId b, NodeId c,
              NodeId out, NodeId vdd, const CellSizing& sizing) {
  const NodeId mid1 = circuit.node(prefix + ".mid1");
  const NodeId mid2 = circuit.node(prefix + ".mid2");

  for (const auto& [suffix, input] :
       {std::pair{"A", a}, {"B", b}, {"C", c}}) {
    DeviceInstance p =
        provider.make(DeviceType::Pmos, prefix + ".MP" + suffix,
                      geometryNm(sizing.wPmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MP" + suffix, out, input, vdd,
                      std::move(p.model), p.geometry);
  }
  const auto addN = [&](const std::string& suffix, NodeId gate, NodeId d,
                        NodeId s) {
    DeviceInstance n =
        provider.make(DeviceType::Nmos, prefix + ".MN" + suffix,
                      geometryNm(sizing.wNmosNm, sizing.lengthNm));
    circuit.addMosfet(prefix + ".MN" + suffix, d, gate, s,
                      std::move(n.model), n.geometry);
  };
  addN("A", a, out, mid1);
  addN("B", b, mid1, mid2);
  addN("C", c, mid2, circuit.ground());
}

void addNmosPass(Circuit& circuit, DeviceProvider& provider,
                 const std::string& name, NodeId x, NodeId y, NodeId ctl,
                 double widthNm, double lengthNm) {
  DeviceInstance n =
      provider.make(DeviceType::Nmos, name, geometryNm(widthNm, lengthNm));
  // Drain/source assignment is nominal; the compact models are symmetric
  // and the engine handles bias reversal.
  circuit.addMosfet(name, x, ctl, y, std::move(n.model), n.geometry);
}

}  // namespace vsstat::circuits
