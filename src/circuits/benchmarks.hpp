// The paper's benchmark fixtures (Sec. IV):
//   * fanout-of-3 static INV (Fig. 5/6),
//   * fanout-of-3 static NAND2 under Vdd scaling (Fig. 7),
//   * master-slave register built from NMOS-only pass transistors (Fig. 8a),
//   * 6T SRAM cell butterfly half-cells for READ/HOLD SNM (Fig. 9).
//
// Every fixture owns its Circuit and exposes the probe nodes by id.  All
// transistors are created through the given DeviceProvider in a fixed,
// documented order so Monte Carlo providers yield reproducible instancing.
#ifndef VSSTAT_CIRCUITS_BENCHMARKS_HPP
#define VSSTAT_CIRCUITS_BENCHMARKS_HPP

#include <string>

#include "circuits/cells.hpp"
#include "circuits/provider.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"

namespace vsstat::circuits {

/// Input stimulus shape for the delay benches.
struct StimulusSpec {
  double vdd = 0.9;          ///< supply [V]
  double slew = 12e-12;      ///< input rise/fall time [s]
  double delay = 10e-12;     ///< time of the first (rising) input edge [s]
  double width = 80e-12;     ///< input high time [s]
};

/// Driver gate loaded by `fanout` copies of itself (gate-capacitance load).
struct GateFo3Bench {
  spice::Circuit circuit;
  spice::NodeId in = 0;
  spice::NodeId out = 0;
  spice::NodeId vdd = 0;
  std::string vddSource = "VDD";
  std::string inSource = "VIN";
  double supply = 0.9;
  double tStop = 0.0;        ///< suggested transient window
};

/// Fanout-of-3 inverter (paper Fig. 5/6).  Device order: driver MP, MN,
/// then load k = 0..fanout-1 (MP, MN each).
[[nodiscard]] GateFo3Bench buildInvFo3(DeviceProvider& provider,
                                       const CellSizing& sizing,
                                       const StimulusSpec& stimulus,
                                       int fanout = 3);

/// Fanout-of-3 NAND2 (paper Fig. 7); input A switches, input B tied high.
/// Device order: MPA, MPB, MNA, MNB, then loads as for the inverter.
[[nodiscard]] GateFo3Bench buildNand2Fo3(DeviceProvider& provider,
                                         const CellSizing& sizing,
                                         const StimulusSpec& stimulus,
                                         int fanout = 3);

/// Master-slave register from NMOS-only pass transistors (paper Fig. 8a):
/// master transparent while CLK is low, slave while CLK is high, so data
/// is captured on the rising CLK edge.  Weak feedback inverters plus
/// clocked NMOS pass gates close each loop.
struct DffBench {
  spice::Circuit circuit;
  spice::NodeId d = 0;
  spice::NodeId clk = 0;
  spice::NodeId q = 0;
  spice::NodeId master = 0;  ///< master storage node (diagnostics)
  std::string dSource = "VD";
  std::string clkSource = "VCLK";
  double supply = 0.9;
};

/// Sizing per the paper: inverter P/N = 600/300 nm, pass NMOS 300 nm wide,
/// L = 40 nm everywhere.  Device order: input inverters for clkb, master
/// pass, master fwd/fb inverters + fb pass, slave pass, slave fwd/fb
/// inverters + fb pass, output buffer.
[[nodiscard]] DffBench buildDff(DeviceProvider& provider, double vdd,
                                const CellSizing& inverterSizing,
                                double passWidthNm = 300.0);

/// SRAM butterfly fixture: the cell's two cross-coupled halves broken at
/// the feedback and driven by independent sweep sources (the standard SNM
/// measurement).  READ mode: BL/BLB precharged to Vdd, WL on.  HOLD mode:
/// WL off.  Device order: PU1, PD1, PG1, PU2, PD2, PG2 -- i.e. one
/// mismatch draw per physical transistor of the cell.
enum class SramMode { Read, Hold };

struct SramButterflyBench {
  spice::Circuit circuit;
  spice::NodeId in1 = 0;   ///< swept input of half 1 (== node QB)
  spice::NodeId out1 = 0;  ///< response of half 1 (== node Q)
  spice::NodeId in2 = 0;   ///< swept input of half 2 (== node Q side)
  spice::NodeId out2 = 0;  ///< response of half 2
  std::string sweep1 = "U1";
  std::string sweep2 = "U2";
  double supply = 0.9;
};

/// Paper sizing: N/P = 150/40 nm for the cross-coupled pair.  The paper
/// does not size the access transistors; the conventional weaker pass gate
/// (cell ratio ~1.5) is used so the READ butterfly keeps a usable eye, as
/// in the paper's Fig. 9(a).
struct SramSizing {
  double wPullDownNm = 150.0;
  double wPullUpNm = 150.0;
  double wPassNm = 100.0;
  double lengthNm = 40.0;
};

[[nodiscard]] SramButterflyBench buildSramButterfly(DeviceProvider& provider,
                                                    double vdd, SramMode mode,
                                                    const SramSizing& sizing);

/// Closed 6T SRAM cell (feedback intact, unlike the butterfly fixture):
/// cross-coupled inverters Q/QB plus access transistors to driven BL/BLB.
/// Intended for operating-point and small-signal (AC) analyses -- e.g. the
/// supply-noise transfer campaign standing in for the paper's Table IV
/// "SRAM AC" row.  Device order: PU1, PD1, PG1, PU2, PD2, PG2 (matching
/// the butterfly fixture, so Monte Carlo draws map one-to-one).
struct SramCellBench {
  spice::Circuit circuit;
  spice::NodeId q = 0;
  spice::NodeId qb = 0;
  spice::NodeId vdd = 0;
  std::string vddSource = "VDD";
  std::string wlSource = "VWL";
  std::string blSource = "VBL";
  std::string blbSource = "VBLB";
  double supply = 0.9;

  /// Operating-point guess biasing Newton into the Q=1 / QB=0 state (pass
  /// qHigh=false for the mirrored state).  A closed cell is bistable, so
  /// the DC solve must be seeded on the wanted side.
  [[nodiscard]] spice::OperatingPoint stateGuess(bool qHigh = true) const;
};

[[nodiscard]] SramCellBench buildSramCell(DeviceProvider& provider, double vdd,
                                          bool wordlineOn,
                                          const SramSizing& sizing);

/// Ring oscillator of an odd number of inverter stages.  The DC operating
/// point of a ring is its metastable mid-rail state, so the fixture
/// includes a brief kick current pulse into stage 0's output that tips the
/// ring into oscillation at the start of the transient.  Frequency =
/// 1/(2 * stages * stage delay) ties directly to the paper's Fig. 6
/// "frequency = 1/delay" axis.
struct RingOscillatorBench {
  spice::Circuit circuit;
  std::vector<spice::NodeId> taps;  ///< output node of each stage
  spice::NodeId vdd = 0;
  std::string vddSource = "VDD";
  double supply = 0.9;
  double suggestedDt = 0.3e-12;
  double suggestedTStop = 0.0;  ///< covers ~10 estimated periods
};

/// Device order: stage 0 (MP, MN), stage 1, ...  `stages` must be odd and
/// >= 3.
[[nodiscard]] RingOscillatorBench buildRingOscillator(
    DeviceProvider& provider, int stages, const CellSizing& sizing,
    double vdd);

/// Post-layout-scale fixture: a rows x cols on-chip power-grid mesh of
/// resistors with one diode-connected NMOS leakage load per grid node,
/// fed at corner (0,0).  Sweeping the feed supply characterizes the
/// worst-case IR drop (far corner) under per-device leakage variability --
/// the many-unknown regime (hundreds of nodes, one MNA unknown each) the
/// paper-scale cells never reach, where per-solve LU costs (dense
/// partial-pivot + symbolic pass) rival total device evaluation and the
/// pivot-reuse solver mode pays off.  Mesh segment conductance is kept far
/// above any device conductance so the partial-pivot order is governed by
/// the grid, not the sample draws.
struct PowerGridBench {
  spice::Circuit circuit;
  spice::NodeId feed = 0;     ///< corner (0,0), tied to the swept source
  spice::NodeId farNode = 0;  ///< corner (rows-1, cols-1): worst IR drop
  std::string feedSource = "VGRID";
  double supply = 0.9;
};

/// Device order: node (r, c) in row-major order, one NMOS "ML<r>_<c>"
/// each.  `rows`/`cols` >= 2; `meshOhms` is the per-segment resistance.
[[nodiscard]] PowerGridBench buildPowerGridIrDrop(DeviceProvider& provider,
                                                  int rows, int cols,
                                                  double vdd,
                                                  double meshOhms = 5.0,
                                                  double leakWidthNm = 200.0,
                                                  double lengthNm = 40.0);

/// Grid-ladder fixture: a binary H-tree clock distribution network.  A
/// swept root source drives `levels` levels of resistive segments; every
/// leaf carries a diode-connected NMOS load (one mismatch draw per leaf).
/// Topologically the opposite extreme from the power-grid mesh: a tree
/// eliminates with zero fill-in under a fill-reducing order, so the pair
/// brackets the sparse factorization's behavior (mesh = 2-D fill growth,
/// tree = none).  levels = 9 gives ~1k MNA unknowns.
struct HTreeClockBench {
  spice::Circuit circuit;
  spice::NodeId root = 0;
  std::vector<spice::NodeId> leaves;  ///< breadth-first leaf order
  std::string rootSource = "VCLK";
  double supply = 0.9;
};

/// Device order: leaf k = 0..2^levels-1, one NMOS "ML<k>" each.
/// `levels` >= 1; `segmentOhms` is the per-segment resistance (halved each
/// level down, as physical H-trees taper).
[[nodiscard]] HTreeClockBench buildHTreeClock(DeviceProvider& provider,
                                              int levels, double vdd,
                                              double segmentOhms = 16.0,
                                              double leafWidthNm = 400.0,
                                              double lengthNm = 40.0);

/// Grid-ladder fixture: a column of `cells` closed 6T SRAM cells sharing
/// one BL/BLB bitline pair (cell `selected` has its wordline on, all others
/// off).  The shared bitlines are high-degree hub rows in the MNA system --
/// the adversarial case for a fill-reducing order, which must eliminate
/// the hubs last.  Device order: cell i = 0..cells-1, each PU1, PD1, PG1,
/// PU2, PD2, PG2 (matching buildSramCell, so draws map per-cell).
struct SramColumnBench {
  spice::Circuit circuit;
  spice::NodeId bl = 0;
  spice::NodeId blb = 0;
  spice::NodeId vdd = 0;
  std::vector<spice::NodeId> q;   ///< per-cell storage nodes
  std::vector<spice::NodeId> qb;
  int selected = 0;
  std::string vddSource = "VDD";
  std::string blSource = "VBL";
  std::string blbSource = "VBLB";
  double supply = 0.9;

  /// Newton guess with every cell biased into the Q=1 / QB=0 state (the
  /// column is bistable per cell, so DC solves must be seeded).
  [[nodiscard]] spice::OperatingPoint stateGuess() const;
};

[[nodiscard]] SramColumnBench buildSramColumn(DeviceProvider& provider,
                                              int cells, double vdd,
                                              const SramSizing& sizing,
                                              int selected = 0);

}  // namespace vsstat::circuits

#endif  // VSSTAT_CIRCUITS_BENCHMARKS_HPP
