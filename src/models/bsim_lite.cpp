#include "models/bsim_lite.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

BsimLite::BsimLite(BsimParams params) : params_(params) {
  require(params_.cox > 0.0 && params_.u0 > 0.0 && params_.vsat > 0.0,
          "BsimLite: cox, u0, vsat must be positive");
  require(params_.nfactor >= 1.0, "BsimLite: nfactor >= 1 required");
}

std::unique_ptr<MosfetModel> BsimLite::clone() const {
  return std::make_unique<BsimLite>(*this);
}

bool BsimLite::assignFrom(const MosfetModel& other) {
  const auto* o = dynamic_cast<const BsimLite*>(&other);
  if (o == nullptr) return false;
  params_ = o->params_;
  return true;
}

BsimLite::Operating BsimLite::operatingPoint(const DeviceGeometry& geom,
                                             double vgs, double vds) const {
  const BsimParams& p = params_;
  const double phit = units::thermalVoltage(p.temperatureK);
  const double leff = geom.length;
  const double w = geom.width;

  // Threshold with DIBL.
  const double vth = p.vth0 - p.diblAt(leff) * vds;

  // BSIM4-style unified effective overdrive: smooth ramp through the
  // subthreshold region.
  const double nphit = p.nfactor * phit;
  const double vgsteff = nphit * softplus((vgs - vth) / nphit);

  // Vertical-field mobility degradation.
  const double mueff = p.u0 / (1.0 + p.ua * vgsteff + p.ub * vgsteff * vgsteff);

  // Velocity saturation.  The +2*phit keeps Vdsat from collapsing below the
  // thermal voltage in weak inversion (BSIM4's subthreshold-consistent
  // Vdsat); without it the subthreshold slope would erroneously double.
  const double esat = 2.0 * p.vsat / mueff;
  const double esatL = esat * leff;
  const double vgst2 = vgsteff + 2.0 * phit;
  const double vdsat = esatL * vgst2 / (esatL + vgst2);

  // Smooth Vdseff (BSIM4 delta-smoothing).
  constexpr double kDelta = 0.01;
  const double a = vdsat - vds - kDelta;
  const double vdseff =
      vdsat - 0.5 * (a + std::sqrt(a * a + 4.0 * kDelta * vdsat));

  // Bulk-charge-free triode/saturation current with velocity saturation.
  const double vb = vgsteff + 2.0 * phit;  // effective bulk-charge voltage
  const double ids0 = mueff * p.cox * (w / leff) * vgsteff *
                      (1.0 - vdseff / (2.0 * vb)) * vdseff /
                      (1.0 + vdseff / esatL);

  // Channel-length modulation.
  const double va = p.pclm * (esatL + vdsat);
  double id = ids0 * (1.0 + std::max(vds - vdseff, 0.0) / va);

  // Series resistance (first-order, non-iterative: BSIM's Rds0 current
  // degradation form).
  if (p.rdsw > 0.0 && id > 0.0) {
    const double rds = p.rdsw / w;
    const double gds0 = id / std::max(vdseff, 1e-9);
    id = id / (1.0 + gds0 * rds);
  }

  Operating op;
  op.id = id;
  // Channel-end charge densities for the trapezoidal C-V partition.
  op.qSrcAreal = p.cox * vgsteff;
  const double vgdteff = nphit * softplus((vgs - vdseff - vth) / nphit);
  op.qDrnAreal = p.cox * vgdteff;
  return op;
}

double BsimLite::drainCurrent(const DeviceGeometry& geom, double vgs,
                              double vds) const {
  if (vds < 0.0) return -operatingPoint(geom, vgs - vds, -vds).id;
  return operatingPoint(geom, vgs, vds).id;
}

MosfetEvaluation BsimLite::evaluate(const DeviceGeometry& geom, double vgs,
                                    double vds) const {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const Operating op = operatingPoint(geom, cvgs, cvds);

  const double w = geom.width;
  const double l = geom.length;

  const double qChanSrc = w * l * (2.0 * op.qSrcAreal + op.qDrnAreal) / 6.0;
  const double qChanDrn = w * l * (op.qSrcAreal + 2.0 * op.qDrnAreal) / 6.0;

  const double cov = params_.cgo * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = op.id;
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

}  // namespace vsstat::models
