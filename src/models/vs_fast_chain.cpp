// Baseline compilation of the fused VS-chain kernels plus the per-process
// dispatch; the AVX2+FMA clones live in vs_fast_chain_avx2.cpp.  Same
// two-TU scheme as util/simd_math.cpp -- see there for the rationale.
#include "models/vs_fast_chain.hpp"

#include "util/simd_math.hpp"

namespace vsstat::models::fastchain {

namespace {
#include "util/simd_math_kernels.inc"
#include "models/vs_fast_chain_kernels.inc"
}  // namespace

namespace avx2 {
void currentBatch(const CurrentIo& io) noexcept;
void chargeBatch(const ChargeIo& io) noexcept;
}  // namespace avx2

void currentBatch(const CurrentIo& io) noexcept {
  if (util::simd::usingAvx2()) return avx2::currentBatch(io);
  kcurrentBatch(io);
}

void chargeBatch(const ChargeIo& io) noexcept {
  if (util::simd::usingAvx2()) return avx2::chargeBatch(io);
  kchargeBatch(io);
}

}  // namespace vsstat::models::fastchain
