// Per-instance device geometry.  Stored in SI metres; the paper quotes all
// sizes in nanometres, so helpers convert explicitly at the boundaries.
#ifndef VSSTAT_MODELS_GEOMETRY_HPP
#define VSSTAT_MODELS_GEOMETRY_HPP

#include "util/units.hpp"

namespace vsstat::models {

/// Effective channel geometry of one transistor instance.
struct DeviceGeometry {
  double width = 0.0;   ///< effective channel width Weff [m]
  double length = 0.0;  ///< effective channel length Leff [m]

  [[nodiscard]] double widthNm() const noexcept { return units::mToNm(width); }
  [[nodiscard]] double lengthNm() const noexcept { return units::mToNm(length); }
  [[nodiscard]] double areaM2() const noexcept { return width * length; }
};

/// Convenience constructor from nanometre sizes (the paper's W/L notation).
[[nodiscard]] inline DeviceGeometry geometryNm(double widthNm,
                                               double lengthNm) noexcept {
  return DeviceGeometry{units::nmToM(widthNm), units::nmToM(lengthNm)};
}

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_GEOMETRY_HPP
