#include "models/die_variation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace vsstat::models {

DieSampler::DieSampler(DieVariationSpec spec,
                       std::vector<stats::DiePoint> locations)
    : spec_(std::move(spec)), locations_(std::move(locations)) {
  require(!locations_.empty(), "DieSampler: no device locations");
  if (spec_.spatial) {
    require(spec_.spatial->correlationLength > 0.0,
            "DieSampler: spatial correlation length must be positive");
    field_.emplace(locations_, spec_.spatial->correlationLength);
  }
  fieldValues_.assign(locations_.size(), 0.0);
}

void DieSampler::newDie(stats::Rng& rng) {
  const GlobalSigmas& g = spec_.global;
  globalDelta_.dVt0 = g.sVt0 > 0.0 ? rng.normal(0.0, g.sVt0) : 0.0;
  globalDelta_.dLeff = g.sLeff > 0.0 ? rng.normal(0.0, g.sLeff) : 0.0;
  globalDelta_.dWeff = g.sWeff > 0.0 ? rng.normal(0.0, g.sWeff) : 0.0;
  globalDelta_.dMu = g.sMu > 0.0 ? rng.normal(0.0, g.sMu) : 0.0;
  globalDelta_.dCinv = g.sCinv > 0.0 ? rng.normal(0.0, g.sCinv) : 0.0;

  if (field_) {
    fieldValues_ = field_->sample(rng);
  }
}

VariationDelta DieSampler::deltaFor(std::size_t locationIndex,
                                    const DeviceGeometry& geom,
                                    stats::Rng& rng) const {
  require(locationIndex < locations_.size(),
          "DieSampler::deltaFor: location index out of range");

  // Local Pelgrom mismatch: fresh independent draw per instance.
  const ParameterSigmas localSigmas = sigmasFor(spec_.local, geom);
  VariationDelta delta = sampleDelta(localSigmas, rng);

  // Die-shared global shift.
  delta.dVt0 += globalDelta_.dVt0;
  delta.dLeff += globalDelta_.dLeff;
  delta.dWeff += globalDelta_.dWeff;
  delta.dMu += globalDelta_.dMu;
  delta.dCinv += globalDelta_.dCinv;

  // Spatially correlated component, scaled by its per-parameter amplitude.
  if (spec_.spatial) {
    const double f = fieldValues_[locationIndex];
    const GlobalSigmas& s = spec_.spatial->sigmas;
    delta.dVt0 += f * s.sVt0;
    delta.dLeff += f * s.sLeff;
    delta.dWeff += f * s.sWeff;
    delta.dMu += f * s.sMu;
    delta.dCinv += f * s.sCinv;
  }
  return delta;
}

VarianceDecomposition decomposeVariance(
    const std::vector<std::vector<double>>& perDieSamples) {
  require(perDieSamples.size() >= 2, "decomposeVariance: need >= 2 dies");

  // Grand mean and per-die means.
  double grandSum = 0.0;
  std::size_t n = 0;
  std::vector<double> dieMeans;
  dieMeans.reserve(perDieSamples.size());
  for (const auto& die : perDieSamples) {
    require(die.size() >= 2, "decomposeVariance: need >= 2 devices per die");
    double s = 0.0;
    for (double v : die) s += v;
    dieMeans.push_back(s / static_cast<double>(die.size()));
    grandSum += s;
    n += die.size();
  }
  const double grandMean = grandSum / static_cast<double>(n);

  // Pooled within-die variance (around each die's own mean) and total
  // variance (around the grand mean).
  double within = 0.0;
  double total = 0.0;
  for (std::size_t d = 0; d < perDieSamples.size(); ++d) {
    for (double v : perDieSamples[d]) {
      const double dw = v - dieMeans[d];
      within += dw * dw;
      const double dt = v - grandMean;
      total += dt * dt;
    }
  }
  within /= static_cast<double>(n - perDieSamples.size());
  total /= static_cast<double>(n - 1);

  VarianceDecomposition out;
  out.total = total;
  out.withinDie = within;
  out.interDie = std::max(total - within, 0.0);  // Eq. (1)
  return out;
}

}  // namespace vsstat::models
