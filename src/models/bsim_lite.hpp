// BsimLite: drift-diffusion / velocity-saturation baseline model.
//
// Stands in for the paper's industrial BSIM4 kit (see DESIGN.md, S2).  It
// is intentionally a *different physics family* from the VS model: velocity
// is field-driven and saturates via Esat = 2 vsat / mueff, mobility degrades
// with vertical field, and the output characteristic gains slope through
// explicit channel-length modulation.  The cross-model BPV extraction in
// the paper is only meaningful because of this mismatch in formulations.
#ifndef VSSTAT_MODELS_BSIM_LITE_HPP
#define VSSTAT_MODELS_BSIM_LITE_HPP

#include "models/bsim_params.hpp"
#include "models/device.hpp"

namespace vsstat::models {

class BsimLite final : public MosfetModel {
 public:
  explicit BsimLite(BsimParams params);

  [[nodiscard]] DeviceType deviceType() const noexcept override {
    return params_.type;
  }
  [[nodiscard]] std::string name() const override { return "BSIM-lite"; }

  [[nodiscard]] MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                          double vgs,
                                          double vds) const override;

  [[nodiscard]] double drainCurrent(const DeviceGeometry& geom, double vgs,
                                    double vds) const override;

  [[nodiscard]] std::unique_ptr<MosfetModel> clone() const override;
  [[nodiscard]] bool assignFrom(const MosfetModel& other) override;

  [[nodiscard]] const BsimParams& params() const noexcept { return params_; }
  [[nodiscard]] BsimParams& mutableParams() noexcept { return params_; }

 private:
  struct Operating {
    double id = 0.0;          ///< drain current [A]
    double qSrcAreal = 0.0;   ///< source-end inversion charge [C/m^2]
    double qDrnAreal = 0.0;   ///< drain-end inversion charge [C/m^2]
  };
  [[nodiscard]] Operating operatingPoint(const DeviceGeometry& geom,
                                         double vgs, double vds) const;

  BsimParams params_;
};

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_BSIM_LITE_HPP
