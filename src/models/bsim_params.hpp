// Parameter card for BsimLite, the drift-diffusion / velocity-saturation
// baseline standing in for the paper's 40-nm industrial BSIM4 kit.
//
// BsimLite keeps the BSIM4 formulation skeleton (unified Vgsteff, mobility
// degradation, Esat velocity saturation, smooth Vdseff, channel-length
// modulation, DIBL) with a compact parameter set.  Alongside the electrical
// card it carries its *own* statistical truth (Pelgrom-style mismatch
// coefficients) -- this plays the role of the foundry's statistical model
// that the paper treats as "golden".
#ifndef VSSTAT_MODELS_BSIM_PARAMS_HPP
#define VSSTAT_MODELS_BSIM_PARAMS_HPP

#include "models/device.hpp"

namespace vsstat::models {

struct BsimParams {
  DeviceType type = DeviceType::Nmos;

  // --- DC card ---------------------------------------------------------------
  double vth0 = 0.45;        ///< long-channel threshold [V]
  double dibl0 = 0.115;      ///< DIBL coefficient at lNom [V/V]
  double lDibl = 32e-9;      ///< DIBL roll-off length [m]
  double lNom = 40e-9;       ///< reference effective length [m]
  double nfactor = 1.40;     ///< subthreshold ideality
  double cox = 1.8e-2;       ///< gate oxide capacitance [F/m^2]
  double u0 = 3.0e-2;        ///< low-field mobility [m^2/(V s)]
  double ua = 0.5;           ///< 1st-order mobility degradation [1/V]
  double ub = 0.05;          ///< 2nd-order mobility degradation [1/V^2]
  double vsat = 1.0e5;       ///< saturation velocity [m/s]
  double pclm = 8.0;         ///< channel-length modulation coefficient
  double rdsw = 160e-6;      ///< total S+D series resistance * W [Ohm m]

  // --- parasitics -------------------------------------------------------------
  double cgo = 1.5e-10;      ///< overlap+fringe cap per gate edge [F/m]

  // --- statistical coupling ----------------------------------------------------
  /// Stress-induced mobility fluctuation drags the saturation velocity
  /// along: d(vsat)/vsat = muVsatCoupling * d(u0)/u0.  This is the golden
  /// kit's counterpart of the VS model's Eq. (5) -- without it a deeply
  /// velocity-saturated 40-nm device would be blind to mobility mismatch,
  /// which contradicts measured silicon (Zhao et al., ESSDERC'07).
  double muVsatCoupling = 0.5;

  // --- environment -------------------------------------------------------------
  double temperatureK = 300.0;

  /// delta(Leff), same roll-off form as the VS card.
  [[nodiscard]] double diblAt(double leff) const noexcept;
};

/// Statistical truth of the golden kit: independent Gaussian mismatch on the
/// BsimLite card with Pelgrom geometry scaling.  Units follow the paper's
/// Table II convention so the two kits are directly comparable:
///   sigma_Vth  = aVth  / sqrt(W L)        [aVth in V nm, W/L in nm]
///   sigma_L    = aLeff * sqrt(L / W)      [nm]
///   sigma_W    = aWeff * sqrt(W / L)      [nm]
///   sigma_u0   = aMu   / sqrt(W L)        [cm^2/(V s)]
///   sigma_Cox  = aCox  / sqrt(W L)        [uF/cm^2]
struct BsimMismatch {
  double aVth = 2.4;    ///< V nm
  double aLeff = 3.8;   ///< nm
  double aWeff = 3.8;   ///< nm
  double aMu = 2400.0;  ///< nm cm^2/(V s)
  double aCox = 0.30;   ///< nm uF/cm^2
};

[[nodiscard]] BsimParams defaultBsimNmos();
[[nodiscard]] BsimParams defaultBsimPmos();
[[nodiscard]] BsimMismatch defaultBsimMismatchNmos();
[[nodiscard]] BsimMismatch defaultBsimMismatchPmos();

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_BSIM_PARAMS_HPP
