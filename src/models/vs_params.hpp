// Parameter card for the Virtual Source (MVS-style) compact model.
//
// The DC card follows Khakifirooz et al., TED 2009 (11 DC parameters) plus
// the charge/parasitic parameters needed for transient simulation, and the
// ballistic-coupling constants of the paper's Eq. (5)/(6) used by the
// statistical extension.  All values SI.
#ifndef VSSTAT_MODELS_VS_PARAMS_HPP
#define VSSTAT_MODELS_VS_PARAMS_HPP

#include "models/device.hpp"

namespace vsstat::models {

struct VsParams {
  DeviceType type = DeviceType::Nmos;

  // --- transport / electrostatics (DC) -------------------------------------
  double vt0 = 0.42;          ///< zero-bias threshold voltage VT0 [V]
  double delta0 = 0.12;       ///< DIBL coefficient at lNom [V/V]
  double lDibl = 30e-9;       ///< DIBL roll-off length in delta(Leff) [m]
  double lNom = 40e-9;        ///< Leff at which delta0/vxo are quoted [m]
  double n0 = 1.45;           ///< subthreshold ideality factor
  double cinv = 1.8e-2;       ///< effective gate-channel capacitance [F/m^2]
  double vxo = 1.2e5;         ///< virtual source velocity at lNom [m/s]
  double mu = 2.0e-2;         ///< apparent channel mobility [m^2/(V s)]
  double beta = 1.8;          ///< Fsat transition sharpness
  double alpha = 3.5;         ///< Vt-shift blending constant (weak inversion)
  double rs = 80e-6;          ///< source series resistance [Ohm m] (R*W)
  double rd = 80e-6;          ///< drain series resistance [Ohm m]

  // --- parasitics (C-V) -----------------------------------------------------
  double cof = 1.5e-10;       ///< gate overlap+fringe cap per edge [F/m]

  // --- environment ----------------------------------------------------------
  double temperatureK = 300.0;

  // --- statistical coupling, paper Eq. (5)/(6) ------------------------------
  double lambdaMfp = 9e-9;    ///< carrier mean free path lambda [m]
  double lCritical = 5e-9;    ///< critical backscattering length l [m]
  double alphaFit = 0.5;      ///< power-law index alpha (~0.5)
  double gammaFit = 0.45;     ///< power-law index gamma (~0.45)
  double dVxoDDelta = 2.0;    ///< d(vxo)/vxo per unit d(delta) (~2)

  /// DIBL coefficient at an arbitrary effective length:
  /// delta(L) = delta0 * exp(-(L - lNom)/lDibl).
  [[nodiscard]] double diblAt(double leff) const noexcept;

  /// d delta / d Leff at the given length [V/V per m].
  [[nodiscard]] double diblSlopeAt(double leff) const noexcept;

  /// Ballistic efficiency B = lambda / (lambda + 2 l), Eq. (6).
  [[nodiscard]] double ballisticEfficiency() const noexcept;

  /// Sensitivity of vxo to relative mobility change,
  /// alpha + (1 - B)(1 - alpha + gamma), Eq. (5).
  [[nodiscard]] double vxoMobilitySensitivity() const noexcept;

  /// vxo at an arbitrary effective length: shorter channels have higher
  /// DIBL and therefore (Eq. 5, second term) higher vxo.
  [[nodiscard]] double vxoAt(double leff) const noexcept;
};

/// Nominal 40-nm-class cards.  These are the *seed* values; the cards used
/// by the reproduction benches are re-fitted against the golden BsimLite
/// kit (extract/fit, paper Fig. 1) before statistical work.
[[nodiscard]] VsParams defaultVsNmos();
[[nodiscard]] VsParams defaultVsPmos();

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_VS_PARAMS_HPP
