// Alpha-power-law MOSFET model (Sakurai-Newton), the empirical
// ultra-compact baseline the paper's introduction contrasts the VS model
// against (reference [5], Consoli et al.): a handful of parameters chosen
// to maximize inverter timing accuracy, with no physical transport content
// and no subthreshold conduction.
//
//   Idsat/W = kSat * (Vgs - VT)^alphaSat,   VT = vth0 - delta0 * Vds
//   Vdsat   = kV   * (Vgs - VT)^(alphaSat/2)
//   Id      = Idsat * (2 - v) * v  for v = Vds/Vdsat < 1, else Idsat
//
// The overdrive is softplus-smoothed with width vSmooth so the model stays
// C1 through VT for the Newton engine; this is a numerical aid, not a
// subthreshold model -- off-state current is orders of magnitude below any
// physical leakage, which is exactly the baseline's documented limitation
// (it cannot model Ioff, so it cannot participate in the paper's BPV
// leakage targets).
//
// Charges: Meyer-style.  Channel charge cg*W*L*overdrive partitioned
// 50/50 in the linear region sliding to 40(drain)/60(source) in
// saturation, plus per-edge overlap capacitance -- enough C-V fidelity
// for delay comparisons, which is the regime this baseline targets.
#ifndef VSSTAT_MODELS_ALPHA_POWER_HPP
#define VSSTAT_MODELS_ALPHA_POWER_HPP

#include "models/device.hpp"

namespace vsstat::models {

struct AlphaPowerParams {
  DeviceType type = DeviceType::Nmos;

  double vth0 = 0.35;      ///< zero-Vds threshold [V]
  double delta0 = 0.10;    ///< DIBL coefficient [V/V]
  double alphaSat = 1.3;   ///< velocity-saturation power index (1..2)
  double kSat = 1.2e3;     ///< saturation transconductance [A/m / V^alpha]
  double kV = 0.9;         ///< Vdsat coefficient [V^(1 - alpha/2)]
  double cg = 1.8e-2;      ///< effective gate capacitance [F/m^2]
  double cof = 1.5e-10;    ///< overlap+fringe capacitance per edge [F/m]
  double vSmooth = 0.012;  ///< overdrive smoothing width [V]
};

/// Seed cards in the same 40-nm-class ballpark as the VS/golden cards;
/// intended as LM starting points for fitAlphaPowerToGolden().
[[nodiscard]] AlphaPowerParams defaultAlphaNmos();
[[nodiscard]] AlphaPowerParams defaultAlphaPmos();

class AlphaPowerModel final : public MosfetModel {
 public:
  explicit AlphaPowerModel(AlphaPowerParams params);

  [[nodiscard]] DeviceType deviceType() const noexcept override {
    return params_.type;
  }
  [[nodiscard]] std::string name() const override { return "AlphaPower"; }

  [[nodiscard]] MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                          double vgs,
                                          double vds) const override;

  [[nodiscard]] double drainCurrent(const DeviceGeometry& geom, double vgs,
                                    double vds) const override;

  [[nodiscard]] std::unique_ptr<MosfetModel> clone() const override;
  [[nodiscard]] bool assignFrom(const MosfetModel& other) override;

  [[nodiscard]] const AlphaPowerParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] AlphaPowerParams& mutableParams() noexcept { return params_; }

 private:
  /// Canonical-polarity current per width at vds >= 0.
  [[nodiscard]] double idPerWidth(double vgs, double vds) const;

  AlphaPowerParams params_;
};

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_ALPHA_POWER_HPP
