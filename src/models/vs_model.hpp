// The Virtual Source (VS / MVS) ultra-compact MOSFET model.
//
// DC transport per Khakifirooz/Antoniadis (TED 2009): the saturation drain
// current is Qixo * vxo, where Qixo is the virtual-source inversion charge
// from a unified softplus expression and vxo the ballistic injection
// velocity; the Fsat function blends linear and saturation regions
// (paper Eq. 2/3).  Threshold shifts with DIBL, delta(Leff)*Vds (Eq. 4).
//
// C-V: the same inversion-charge expression evaluated at both channel ends
// (drain end at the smoothed Vdseff) with a trapezoidal Ward-Dutton
// partition plus overlap/fringe capacitance.  This is a documented
// simplification of the MVS 1.0.1 ballistic charge partition -- see
// DESIGN.md, system S1.
//
// Series resistance: Rs/Rd produce internal-node IR drop, resolved by a
// damped fixed-point loop inside evaluate() so the external terminal
// behaviour stays smooth for the Newton solver.
#ifndef VSSTAT_MODELS_VS_MODEL_HPP
#define VSSTAT_MODELS_VS_MODEL_HPP

#include "models/device.hpp"
#include "models/vs_params.hpp"

namespace vsstat::models {

class VsModel final : public MosfetModel {
 public:
  explicit VsModel(VsParams params);

  [[nodiscard]] DeviceType deviceType() const noexcept override {
    return params_.type;
  }
  [[nodiscard]] std::string name() const override { return "VS"; }

  [[nodiscard]] MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                          double vgs,
                                          double vds) const override;

  [[nodiscard]] double drainCurrent(const DeviceGeometry& geom, double vgs,
                                    double vds) const override;

  /// Newton-load hot path: shares the per-geometry derived parameters
  /// between the three bias points and warm-starts the series-resistance
  /// secant of the two forward-difference points from the base solution.
  [[nodiscard]] MosfetDerivEvaluation evaluateForNewton(
      const DeviceGeometry& geom, double vgs, double vds,
      double step) const override;

  /// Analytic Newton-load evaluation: the full derivative chain of the VS
  /// equations closes in a handful of multiplies with no extra
  /// transcendentals, and the series-resistance fixed point is solved with
  /// a derivative-aware Newton instead of finite-difference re-solves.
  /// One load costs ~3 intrinsic evaluations instead of ~12.
  [[nodiscard]] MosfetLoadEvaluation evaluateLoad(const DeviceGeometry& geom,
                                                  double vgs, double vds,
                                                  double fdStep) const override;

  [[nodiscard]] std::unique_ptr<MosfetModel> clone() const override;
  [[nodiscard]] bool assignFrom(const MosfetModel& other) override;

  [[nodiscard]] const VsParams& params() const noexcept { return params_; }
  [[nodiscard]] VsParams& mutableParams() noexcept { return params_; }

  /// Virtual-source inversion charge density [C/m^2] at the given internal
  /// bias (exposed for tests and for the extraction sensitivities).
  [[nodiscard]] double inversionCharge(const DeviceGeometry& geom, double vgs,
                                       double vds) const;

 private:
  /// Core intrinsic solution at internal (post-Rs/Rd) voltages.
  struct Intrinsic {
    double idPerWidth = 0.0;  ///< A/m, positive for canonical vds >= 0
    double qSrcAreal = 0.0;   ///< source-end channel charge [C/m^2]
    double qDrnAreal = 0.0;   ///< drain-end channel charge [C/m^2]
  };

  /// Bias-independent values derived from (params, geometry).  Computed
  /// once per evaluation chain and shared across every intrinsic call of
  /// the series-resistance loop and the Newton finite-difference points.
  struct Derived {
    double phit = 0.0;          ///< thermal voltage
    double delta = 0.0;         ///< DIBL coefficient at Leff
    double vxo = 0.0;           ///< injection velocity at Leff
    double nphit = 0.0;         ///< n0 * phit
    double alphaPhit = 0.0;     ///< alpha * phit
    double qref = 0.0;          ///< cinv * nphit
    double vdsatStrong = 0.0;   ///< vxo * Leff / mu
  };
  [[nodiscard]] Derived derive(const DeviceGeometry& geom) const noexcept;

  /// Intrinsic model at internal (post-Rs/Rd) voltages.  The drain-end
  /// charge block is only computed when `withCharges` is set: the
  /// series-resistance secant needs the current alone.
  [[nodiscard]] Intrinsic intrinsic(const Derived& d, double vgs, double vds,
                                    bool withCharges) const;

  /// Secant solve of the Rs/Rd IR-drop fixed point; returns the external
  /// terminal current [A].  `warmStart` (if non-null) seeds the iteration
  /// with a nearby known current instead of the cold f(0) start.
  [[nodiscard]] double solveSeriesCurrent(const DeviceGeometry& geom,
                                          const Derived& d, double vgs,
                                          double vds,
                                          const double* warmStart) const;

  /// Full intrinsic solution with the IR drop resolved.
  [[nodiscard]] Intrinsic solveWithSeriesR(const DeviceGeometry& geom,
                                           const Derived& d, double vgs,
                                           double vds,
                                           const double* warmStart) const;

  /// Canonicalization + Ward-Dutton partition shared by evaluate() and
  /// evaluateForNewton().  `warmCurrent` (if non-null) carries the previous
  /// nearby solve's canonical current in, and the present one out.
  [[nodiscard]] MosfetEvaluation evaluateImpl(const DeviceGeometry& geom,
                                              const Derived& d, double vgs,
                                              double vds,
                                              double* warmCurrent,
                                              bool useWarm) const;

  /// Intrinsic solution with the full analytic derivative chain (w.r.t. the
  /// internal canonical voltages).  Charges are filled only when
  /// `withCharges` is set.
  struct IntrinsicDeriv {
    double idW = 0.0;  ///< drain current [A] (width-scaled)
    double gm = 0.0;   ///< d(idW)/dvgs [S]
    double gd = 0.0;   ///< d(idW)/dvds [S]
    double qS = 0.0;   ///< source-end areal charge [C/m^2]
    double qD = 0.0;   ///< drain-end areal charge [C/m^2]
    double dqSvg = 0.0, dqSvd = 0.0;
    double dqDvg = 0.0, dqDvd = 0.0;
  };
  [[nodiscard]] IntrinsicDeriv intrinsicDeriv(const DeviceGeometry& geom,
                                              const Derived& d, double vgs,
                                              double vds,
                                              bool withCharges) const;

  VsParams params_;
};

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_VS_MODEL_HPP
