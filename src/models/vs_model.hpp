// The Virtual Source (VS / MVS) ultra-compact MOSFET model.
//
// DC transport per Khakifirooz/Antoniadis (TED 2009): the saturation drain
// current is Qixo * vxo, where Qixo is the virtual-source inversion charge
// from a unified softplus expression and vxo the ballistic injection
// velocity; the Fsat function blends linear and saturation regions
// (paper Eq. 2/3).  Threshold shifts with DIBL, delta(Leff)*Vds (Eq. 4).
//
// C-V: the same inversion-charge expression evaluated at both channel ends
// (drain end at the smoothed Vdseff) with a trapezoidal Ward-Dutton
// partition plus overlap/fringe capacitance.  This is a documented
// simplification of the MVS 1.0.1 ballistic charge partition -- see
// DESIGN.md, system S1.
//
// Series resistance: Rs/Rd produce internal-node IR drop, resolved by a
// damped fixed-point loop inside evaluate() so the external terminal
// behaviour stays smooth for the Newton solver.
//
// The model equations themselves live in vs_model.cpp as free functions of
// (params, geometry, bias); the class is a thin card-owning adapter.  That
// lets the scalar Newton-load entry point (evaluateLoad) and the batched
// device-bank lane loop (makeLoadBank) share one arithmetic chain, which
// is what makes banked evaluation bit-identical to the scalar path.
#ifndef VSSTAT_MODELS_VS_MODEL_HPP
#define VSSTAT_MODELS_VS_MODEL_HPP

#include "models/device.hpp"
#include "models/vs_params.hpp"

namespace vsstat::models {

class VsModel final : public MosfetModel {
 public:
  explicit VsModel(VsParams params);

  [[nodiscard]] DeviceType deviceType() const noexcept override {
    return params_.type;
  }
  [[nodiscard]] std::string name() const override { return "VS"; }

  [[nodiscard]] MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                          double vgs,
                                          double vds) const override;

  [[nodiscard]] double drainCurrent(const DeviceGeometry& geom, double vgs,
                                    double vds) const override;

  /// Newton-load hot path: shares the per-geometry derived parameters
  /// between the three bias points and warm-starts the series-resistance
  /// secant of the two forward-difference points from the base solution.
  [[nodiscard]] MosfetDerivEvaluation evaluateForNewton(
      const DeviceGeometry& geom, double vgs, double vds,
      double step) const override;

  /// Analytic Newton-load evaluation: the full derivative chain of the VS
  /// equations closes in a handful of multiplies with no extra
  /// transcendentals, and the series-resistance fixed point is solved with
  /// a derivative-aware Newton instead of finite-difference re-solves.
  /// One load costs ~3 intrinsic evaluations instead of ~12.
  [[nodiscard]] MosfetLoadEvaluation evaluateLoad(const DeviceGeometry& geom,
                                                  double vgs, double vds,
                                                  double fdStep) const override;

  /// Struct-of-arrays device bank: per-lane bias-independent evaluation
  /// cards (derived parameters, pre-divided series resistances, charge
  /// prefactors) cached once per rebind, then one flat lane loop through
  /// the same analytic chain evaluateLoad runs.  In NumericsMode::reference
  /// (default) it is bit-identical to the scalar path by construction --
  /// both call the same chain function.  NumericsMode::fast batches the
  /// chain's exp/log1p/pow across all lanes through the vectorized kernels
  /// of util/simd_math.hpp: tolerance-checked against reference
  /// (tests/models/test_fast_numerics.cpp), still deterministic.
  /// (Default for `mode` lives on the base declaration only: defaults on
  /// virtuals bind statically, so repeating it here could drift.)
  [[nodiscard]] std::unique_ptr<MosfetLoadBank> makeLoadBank(
      std::vector<BankLane> lanes, NumericsMode mode) const override;

  [[nodiscard]] std::unique_ptr<MosfetModel> clone() const override;
  [[nodiscard]] bool assignFrom(const MosfetModel& other) override;

  [[nodiscard]] const VsParams& params() const noexcept { return params_; }
  [[nodiscard]] VsParams& mutableParams() noexcept { return params_; }

  /// Virtual-source inversion charge density [C/m^2] at the given internal
  /// bias (exposed for tests and for the extraction sensitivities).
  [[nodiscard]] double inversionCharge(const DeviceGeometry& geom, double vgs,
                                       double vds) const;

 private:
  VsParams params_;
};

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_VS_MODEL_HPP
