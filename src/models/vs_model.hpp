// The Virtual Source (VS / MVS) ultra-compact MOSFET model.
//
// DC transport per Khakifirooz/Antoniadis (TED 2009): the saturation drain
// current is Qixo * vxo, where Qixo is the virtual-source inversion charge
// from a unified softplus expression and vxo the ballistic injection
// velocity; the Fsat function blends linear and saturation regions
// (paper Eq. 2/3).  Threshold shifts with DIBL, delta(Leff)*Vds (Eq. 4).
//
// C-V: the same inversion-charge expression evaluated at both channel ends
// (drain end at the smoothed Vdseff) with a trapezoidal Ward-Dutton
// partition plus overlap/fringe capacitance.  This is a documented
// simplification of the MVS 1.0.1 ballistic charge partition -- see
// DESIGN.md, system S1.
//
// Series resistance: Rs/Rd produce internal-node IR drop, resolved by a
// damped fixed-point loop inside evaluate() so the external terminal
// behaviour stays smooth for the Newton solver.
#ifndef VSSTAT_MODELS_VS_MODEL_HPP
#define VSSTAT_MODELS_VS_MODEL_HPP

#include "models/device.hpp"
#include "models/vs_params.hpp"

namespace vsstat::models {

class VsModel final : public MosfetModel {
 public:
  explicit VsModel(VsParams params);

  [[nodiscard]] DeviceType deviceType() const noexcept override {
    return params_.type;
  }
  [[nodiscard]] std::string name() const override { return "VS"; }

  [[nodiscard]] MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                          double vgs,
                                          double vds) const override;

  [[nodiscard]] double drainCurrent(const DeviceGeometry& geom, double vgs,
                                    double vds) const override;

  [[nodiscard]] std::unique_ptr<MosfetModel> clone() const override;

  [[nodiscard]] const VsParams& params() const noexcept { return params_; }
  [[nodiscard]] VsParams& mutableParams() noexcept { return params_; }

  /// Virtual-source inversion charge density [C/m^2] at the given internal
  /// bias (exposed for tests and for the extraction sensitivities).
  [[nodiscard]] double inversionCharge(const DeviceGeometry& geom, double vgs,
                                       double vds) const;

 private:
  /// Core intrinsic solution at internal (post-Rs/Rd) voltages.
  struct Intrinsic {
    double idPerWidth = 0.0;  ///< A/m, positive for canonical vds >= 0
    double qSrcAreal = 0.0;   ///< source-end channel charge [C/m^2]
    double qDrnAreal = 0.0;   ///< drain-end channel charge [C/m^2]
  };
  [[nodiscard]] Intrinsic intrinsic(const DeviceGeometry& geom, double vgs,
                                    double vds) const;

  /// Resolves the Rs/Rd IR drop; returns internal (vgsInt, vdsInt).
  [[nodiscard]] Intrinsic solveWithSeriesR(const DeviceGeometry& geom,
                                           double vgs, double vds) const;

  VsParams params_;
};

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_VS_MODEL_HPP
