#include "models/alpha_power.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace vsstat::models {

AlphaPowerParams defaultAlphaNmos() { return AlphaPowerParams{}; }

AlphaPowerParams defaultAlphaPmos() {
  AlphaPowerParams p;
  p.type = DeviceType::Pmos;
  p.vth0 = 0.33;
  p.kSat = 0.7e3;  // weaker holes
  p.alphaSat = 1.35;
  return p;
}

AlphaPowerModel::AlphaPowerModel(AlphaPowerParams params) : params_(params) {
  require(params_.kSat > 0.0 && params_.kV > 0.0,
          "AlphaPowerModel: kSat and kV must be positive");
  require(params_.alphaSat >= 1.0 && params_.alphaSat <= 2.0,
          "AlphaPowerModel: alphaSat must lie in [1, 2]");
  require(params_.vSmooth > 0.0, "AlphaPowerModel: vSmooth must be positive");
}

double AlphaPowerModel::idPerWidth(double vgs, double vds) const {
  const AlphaPowerParams& p = params_;
  const double vth = p.vth0 - p.delta0 * vds;
  // Softplus-smoothed overdrive keeps the model C1 through threshold.
  const double vov = p.vSmooth * softplus((vgs - vth) / p.vSmooth);
  if (vov <= 0.0) return 0.0;

  const double idsat = p.kSat * std::pow(vov, p.alphaSat);
  const double vdsat = p.kV * std::pow(vov, 0.5 * p.alphaSat);
  const double v = vds / vdsat;
  // Sakurai-Newton parabola meets the flat saturation branch with matching
  // value and slope at v = 1 (both chain-rule terms vanish there), so the
  // piecewise form is exactly C1.
  if (v >= 1.0) return idsat;
  return idsat * (2.0 - v) * v;
}

double AlphaPowerModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                                     double vds) const {
  if (vds < 0.0) return -geom.width * idPerWidth(vgs - vds, -vds);
  return geom.width * idPerWidth(vgs, vds);
}

MosfetEvaluation AlphaPowerModel::evaluate(const DeviceGeometry& geom,
                                           double vgs, double vds) const {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const AlphaPowerParams& p = params_;
  const double w = geom.width;
  const double l = geom.length;

  const double vth = p.vth0 - p.delta0 * cvds;
  const double vov = p.vSmooth * softplus((cvgs - vth) / p.vSmooth);
  const double vdsat = p.kV * std::pow(std::max(vov, 1e-12), 0.5 * p.alphaSat);

  // Saturation metric: smooth 0 -> 1 transition of vds/vdsat (same family
  // of blending as the VS Fsat, exponent fixed at 4).
  const double v = cvds / std::max(vdsat, 1e-12);
  const double sat = v / std::pow(1.0 + v * v * v * v, 0.25);

  // Meyer channel charge: magnitude cg*W*L*vov, drain share sliding from
  // 1/2 (triode) to 2/5 (saturation).
  const double qChan = p.cg * w * l * vov;
  const double drainShare = 0.5 - 0.1 * sat;
  const double qChanDrn = drainShare * qChan;
  const double qChanSrc = (1.0 - drainShare) * qChan;

  // Overlap/fringe parasitics (linear, per gate edge).
  const double cov = p.cof * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = w * idPerWidth(cvgs, cvds);
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

std::unique_ptr<MosfetModel> AlphaPowerModel::clone() const {
  return std::make_unique<AlphaPowerModel>(params_);
}

bool AlphaPowerModel::assignFrom(const MosfetModel& other) {
  const auto* o = dynamic_cast<const AlphaPowerModel*>(&other);
  if (o == nullptr) return false;
  params_ = o->params_;
  return true;
}

}  // namespace vsstat::models
