#include "models/process_variation.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

ParameterSigmas sigmasFor(const PelgromAlphas& alphas,
                          const DeviceGeometry& geom) {
  const double wNm = geom.widthNm();
  const double lNm = geom.lengthNm();
  require(wNm > 0.0 && lNm > 0.0, "sigmasFor: geometry must be positive");

  const double invSqrtWL = 1.0 / std::sqrt(wNm * lNm);

  ParameterSigmas s;
  s.sVt0 = alphas.aVt0 * invSqrtWL;                                    // V
  s.sLeff = units::nmToM(alphas.aLeff * std::sqrt(lNm / wNm));         // m
  s.sWeff = units::nmToM(alphas.aWeff * std::sqrt(wNm / lNm));         // m
  s.sMu = units::cm2PerVsToSI(alphas.aMu * invSqrtWL);                 // m^2/Vs
  s.sCinv = units::uFPerCm2ToSI(alphas.aCinv * invSqrtWL);             // F/m^2
  return s;
}

VariationDelta sampleDelta(const ParameterSigmas& sigmas, stats::Rng& rng) {
  VariationDelta d;
  d.dVt0 = rng.normal(0.0, sigmas.sVt0);
  d.dLeff = rng.normal(0.0, sigmas.sLeff);
  d.dWeff = rng.normal(0.0, sigmas.sWeff);
  d.dMu = rng.normal(0.0, sigmas.sMu);
  d.dCinv = rng.normal(0.0, sigmas.sCinv);
  return d;
}

DeviceGeometry applyGeometry(const DeviceGeometry& geom,
                             const VariationDelta& delta) {
  DeviceGeometry g = geom;
  g.length += delta.dLeff;
  g.width += delta.dWeff;
  // Mismatch sigma is a small fraction of the geometry for every realistic
  // card; the clamps only guard absurd synthetic inputs in tests.
  g.length = std::max(g.length, 0.2 * geom.length);
  g.width = std::max(g.width, 0.2 * geom.width);
  return g;
}

VsParams applyToVs(const VsParams& card, const VariationDelta& delta) {
  VsParams varied = card;
  varied.vt0 += delta.dVt0;
  const double muRel = delta.dMu / card.mu;
  varied.mu = card.mu * (1.0 + muRel);
  varied.cinv += delta.dCinv;
  // Eq. (5), first term: vxo tracks mobility with the ballistic-efficiency
  // weighted sensitivity.  The second (DIBL) term is realized through the
  // instance's varied Leff at evaluation time via VsParams::vxoAt().
  varied.vxo = card.vxo * (1.0 + card.vxoMobilitySensitivity() * muRel);
  return varied;
}

BsimParams applyToBsim(const BsimParams& card, const VariationDelta& delta) {
  BsimParams varied = card;
  varied.vth0 += delta.dVt0;
  varied.u0 += delta.dMu;
  varied.cox += delta.dCinv;
  // Stress moves mobility and saturation velocity together (the golden
  // kit's analogue of the VS model's Eq. 5 coupling).
  varied.vsat =
      card.vsat * (1.0 + card.muVsatCoupling * delta.dMu / card.u0);
  return varied;
}

PelgromAlphas toPelgromAlphas(const BsimMismatch& m) {
  PelgromAlphas a;
  a.aVt0 = m.aVth;
  a.aLeff = m.aLeff;
  a.aWeff = m.aWeff;
  a.aMu = m.aMu;
  a.aCinv = m.aCox;
  return a;
}

}  // namespace vsstat::models
