// AVX2+FMA compilation of the fused VS-chain kernels (CMake builds this
// file with -mavx2 -mfma).  Only reached through the runtime dispatch in
// vs_fast_chain.cpp, so the binary stays runnable on pre-AVX2 hardware.
#include "models/vs_fast_chain.hpp"

namespace vsstat::models::fastchain::avx2 {

namespace {
#include "util/simd_math_kernels.inc"
#include "models/vs_fast_chain_kernels.inc"
}  // namespace

void currentBatch(const CurrentIo& io) noexcept { kcurrentBatch(io); }

void chargeBatch(const ChargeIo& io) noexcept { kchargeBatch(io); }

}  // namespace vsstat::models::fastchain::avx2
