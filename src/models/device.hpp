// Abstract compact-model interface shared by the Virtual Source model and
// the BsimLite "golden kit" baseline.
//
// Convention: models are written in N-canonical form.  `vgs` and `vds` are
// the *canonical* (polarity-normalized) gate-source and drain-source
// voltages; for a PMOS instance the circuit element negates terminal
// voltages before calling in and negates current/charges on the way out.
// Negative canonical vds (source/drain role reversal) is handled inside
// evaluate() by the symmetry relation Id(vgs, vds) = -Id(vgs - vds, -vds)
// with source/drain charges swapped.
#ifndef VSSTAT_MODELS_DEVICE_HPP
#define VSSTAT_MODELS_DEVICE_HPP

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "models/geometry.hpp"

namespace vsstat::models {

enum class DeviceType { Nmos, Pmos };

[[nodiscard]] inline const char* toString(DeviceType t) noexcept {
  return t == DeviceType::Nmos ? "NMOS" : "PMOS";
}

/// Numerics contract of batched (device-bank) model evaluation.
///
/// `reference` -- the default -- pins every transcendental to libm and every
/// accumulation to the scalar path's order: banked evaluation is
/// bit-identical to per-element evaluateLoad, which is what all identity
/// tests and the cross-thread determinism contract are built on.
///
/// `fast` replaces the lane loop's exp/log1p/pow with the vectorized
/// polynomial kernels of util/simd_math.hpp, batched across the bank's
/// lanes.  It is tolerance-checked, not bit-checked, against reference:
/// per-lane relative current/charge error stays within the bounds asserted
/// by tests/models/test_fast_numerics.cpp, and campaign metrics agree
/// within solver tolerance.  Fast mode is still deterministic -- the same
/// inputs produce the same bits on every run and every thread count -- it
/// just rounds differently from libm.  Models without a fast kernel chain
/// (the generic bank) evaluate reference numerics regardless of mode.
enum class NumericsMode { reference, fast };

[[nodiscard]] inline const char* toString(NumericsMode m) noexcept {
  return m == NumericsMode::reference ? "reference" : "fast";
}

/// Full evaluation at one bias point.
struct MosfetEvaluation {
  double id = 0.0;  ///< drain terminal current [A], positive into the drain
  double qg = 0.0;  ///< gate terminal charge [C]
  double qd = 0.0;  ///< drain terminal charge [C]
  double qs = 0.0;  ///< source terminal charge [C]
};

/// The three evaluations one Newton load needs: the bias point itself plus
/// the forward-difference points for the gate and drain derivatives.
struct MosfetDerivEvaluation {
  MosfetEvaluation base;
  MosfetEvaluation gateStep;   ///< at (vgs + step, vds)
  MosfetEvaluation drainStep;  ///< at (vgs, vds + step)
};

/// Everything one Newton load consumes: the evaluation at the bias point
/// plus the current/charge derivatives w.r.t. the call's (vgs, vds) inputs.
struct MosfetLoadEvaluation {
  MosfetEvaluation at;
  double didVgs = 0.0;
  double didVds = 0.0;
  double dqgVgs = 0.0;
  double dqgVds = 0.0;
  double dqdVgs = 0.0;
  double dqdVds = 0.0;
  double dqsVgs = 0.0;
  double dqsVds = 0.0;
};

class MosfetModel;

/// One lane of a homogeneous device bank: the element's live per-instance
/// card and geometry.  The referents stay authoritative -- a bank caches
/// bias-independent derived state from them and must be told (rebindLane)
/// when either changes.
struct BankLane {
  const MosfetModel* card = nullptr;
  const DeviceGeometry* geometry = nullptr;
};

/// Struct-of-arrays batched Newton-load evaluator over a group of device
/// instances sharing one concrete model class.  Created once per circuit by
/// MosfetModel::makeLoadBank; the circuit engine then evaluates every lane
/// of the bank with ONE call per Newton assembly instead of one virtual
/// evaluateLoad() per device.
///
/// Numerics contract: in NumericsMode::reference (the default),
/// evaluateLoadBatch(...)[i] must equal
/// lane(i).card->evaluateLoad(*lane(i).geometry, vgs[i], vds[i], fdStep)
/// BIT-for-bit -- a bank is a layout restructuring of the scalar path, never
/// a different arithmetic.  Implementations may hoist bias-independent
/// work per lane (that is the point), but every hoisted value must be the
/// same double the scalar path would recompute.  In NumericsMode::fast a
/// bank may substitute vectorized kernels for the transcendentals; results
/// must then stay within the documented tolerance of the reference path
/// (see NumericsMode) and remain deterministic.
class MosfetLoadBank {
 public:
  virtual ~MosfetLoadBank() = default;

  MosfetLoadBank(const MosfetLoadBank&) = delete;
  MosfetLoadBank& operator=(const MosfetLoadBank&) = delete;

  [[nodiscard]] std::size_t laneCount() const noexcept {
    return lanes_.size();
  }
  [[nodiscard]] const BankLane& lane(std::size_t i) const {
    return lanes_[i];
  }

  /// Re-points a lane at a (possibly new) card/geometry and re-derives its
  /// cached per-lane state -- the per-sample pass after a Monte Carlo
  /// rebind.  Returns false (lane untouched) when the card's dynamic type
  /// is incompatible with this bank; the owner must then rebuild its banks.
  [[nodiscard]] virtual bool rebindLane(std::size_t laneIndex,
                                        const MosfetModel& card,
                                        const DeviceGeometry& geometry);

  /// Re-points EVERY lane at one shared card/geometry and re-derives the
  /// cached state -- the multi-fit extraction engine's between-iterations
  /// pass, where the lanes are bias points of a single device under fit.
  /// Returns false (bank untouched) when the card type is incompatible.
  /// The default loops rebindLane; banks with per-lane derived caches
  /// override it to derive ONCE and broadcast, which is bit-identical
  /// because every lane's cached values are a pure function of the shared
  /// (card, geometry).
  [[nodiscard]] virtual bool rebindUniform(const MosfetModel& card,
                                           const DeviceGeometry& geometry);

  /// Batched Newton load: out[i] = scalar evaluateLoad of lane i at
  /// (vgs[i], vds[i]).  All spans have laneCount() entries.
  virtual void evaluateLoadBatch(std::span<const double> vgs,
                                 std::span<const double> vds, double fdStep,
                                 std::span<MosfetLoadEvaluation> out) const = 0;

 protected:
  explicit MosfetLoadBank(std::vector<BankLane> lanes)
      : lanes_(std::move(lanes)) {}

  [[nodiscard]] std::vector<BankLane>& lanes() noexcept { return lanes_; }

 private:
  std::vector<BankLane> lanes_;
};

/// Pure-abstract compact model.  Implementations must be smooth (C1) in the
/// bias voltages across all operating regions; the circuit engine
/// differentiates them numerically inside Newton iterations.
class MosfetModel {
 public:
  virtual ~MosfetModel() = default;

  MosfetModel() = default;
  MosfetModel(const MosfetModel&) = default;
  MosfetModel& operator=(const MosfetModel&) = default;
  MosfetModel(MosfetModel&&) = default;
  MosfetModel& operator=(MosfetModel&&) = default;

  [[nodiscard]] virtual DeviceType deviceType() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Current + terminal charges at (vgs, vds), canonical polarity.
  [[nodiscard]] virtual MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                                  double vgs,
                                                  double vds) const = 0;

  /// Drain current only (hot path for DC analyses); default goes through
  /// evaluate().
  [[nodiscard]] virtual double drainCurrent(const DeviceGeometry& geom,
                                            double vgs, double vds) const;

  /// Batched evaluation for one Newton load: the bias point plus the two
  /// forward-difference points.  The default simply calls evaluate() three
  /// times; models with internal iterations (series-resistance loops)
  /// override it to share work between the three nearby points.
  [[nodiscard]] virtual MosfetDerivEvaluation evaluateForNewton(
      const DeviceGeometry& geom, double vgs, double vds, double step) const;

  /// The Newton-load entry point: evaluation plus current/charge
  /// derivatives.  The default forms forward differences (step `fdStep`)
  /// from evaluateForNewton(); models with cheap analytic derivatives (the
  /// VS model) override it, which is the single biggest win on the circuit
  /// hot path.  Derivatives must stay consistent with evaluate() to the
  /// accuracy the Newton iteration needs (a few percent), not bit-exactly.
  [[nodiscard]] virtual MosfetLoadEvaluation evaluateLoad(
      const DeviceGeometry& geom, double vgs, double vds,
      double fdStep) const;

  /// Creates the batched Newton-load evaluator for a homogeneous group of
  /// lanes (every card must share this model's dynamic type; the circuit
  /// engine groups by typeid before calling).  The default returns a
  /// generic bank that routes each lane through its card's evaluateLoad()
  /// -- correct for every model and reference-numerics regardless of
  /// `mode`; models with a flat analytic chain (the VS model) override it
  /// with a struct-of-arrays lane loop that caches the bias-independent
  /// derived parameters per lane and, in NumericsMode::fast, batches the
  /// chain's transcendentals through util/simd_math.hpp kernels.
  [[nodiscard]] virtual std::unique_ptr<MosfetLoadBank> makeLoadBank(
      std::vector<BankLane> lanes,
      NumericsMode mode = NumericsMode::reference) const;

  /// Deep copy (used to give each Monte Carlo instance its own varied card).
  [[nodiscard]] virtual std::unique_ptr<MosfetModel> clone() const = 0;

  /// In-place parameter copy from another card of the same dynamic type;
  /// returns false (leaving this card untouched) when the types differ.
  /// This powers allocation-free Monte Carlo rebinding
  /// (spice::MosfetElement::rebind): a campaign session overwrites the
  /// existing instance card per sample instead of cloning a fresh one.
  [[nodiscard]] virtual bool assignFrom(const MosfetModel& other) {
    (void)other;
    return false;
  }
};

/// Bank whose every lane references the same card and geometry -- the
/// multi-fit extraction engine's layout, where the "lanes" are the bias
/// points of ONE device under fit and the shared card is rewritten (then
/// lane-rebound) between optimizer iterations.  Lane count is the caller's
/// bias-grid size.
[[nodiscard]] std::unique_ptr<MosfetLoadBank> makeUniformLoadBank(
    const MosfetModel& card, const DeviceGeometry& geometry,
    std::size_t laneCount, NumericsMode mode = NumericsMode::reference);

/// Total gate capacitance Cgg = dQg/dVgs at the bias point, by central
/// finite difference on the model's gate charge.
[[nodiscard]] double gateCapacitance(const MosfetModel& model,
                                     const DeviceGeometry& geom, double vgs,
                                     double vds, double step = 1e-3);

/// Numerically-stable softplus ln(1 + exp(x)); linear tail for large x.
[[nodiscard]] double softplus(double x) noexcept;

/// Logistic function 1 / (1 + exp(x)) with overflow guards.
[[nodiscard]] double logistic(double x) noexcept;

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_DEVICE_HPP
