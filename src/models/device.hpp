// Abstract compact-model interface shared by the Virtual Source model and
// the BsimLite "golden kit" baseline.
//
// Convention: models are written in N-canonical form.  `vgs` and `vds` are
// the *canonical* (polarity-normalized) gate-source and drain-source
// voltages; for a PMOS instance the circuit element negates terminal
// voltages before calling in and negates current/charges on the way out.
// Negative canonical vds (source/drain role reversal) is handled inside
// evaluate() by the symmetry relation Id(vgs, vds) = -Id(vgs - vds, -vds)
// with source/drain charges swapped.
#ifndef VSSTAT_MODELS_DEVICE_HPP
#define VSSTAT_MODELS_DEVICE_HPP

#include <memory>
#include <string>

#include "models/geometry.hpp"

namespace vsstat::models {

enum class DeviceType { Nmos, Pmos };

[[nodiscard]] inline const char* toString(DeviceType t) noexcept {
  return t == DeviceType::Nmos ? "NMOS" : "PMOS";
}

/// Full evaluation at one bias point.
struct MosfetEvaluation {
  double id = 0.0;  ///< drain terminal current [A], positive into the drain
  double qg = 0.0;  ///< gate terminal charge [C]
  double qd = 0.0;  ///< drain terminal charge [C]
  double qs = 0.0;  ///< source terminal charge [C]
};

/// Pure-abstract compact model.  Implementations must be smooth (C1) in the
/// bias voltages across all operating regions; the circuit engine
/// differentiates them numerically inside Newton iterations.
class MosfetModel {
 public:
  virtual ~MosfetModel() = default;

  MosfetModel() = default;
  MosfetModel(const MosfetModel&) = default;
  MosfetModel& operator=(const MosfetModel&) = default;
  MosfetModel(MosfetModel&&) = default;
  MosfetModel& operator=(MosfetModel&&) = default;

  [[nodiscard]] virtual DeviceType deviceType() const noexcept = 0;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Current + terminal charges at (vgs, vds), canonical polarity.
  [[nodiscard]] virtual MosfetEvaluation evaluate(const DeviceGeometry& geom,
                                                  double vgs,
                                                  double vds) const = 0;

  /// Drain current only (hot path for DC analyses); default goes through
  /// evaluate().
  [[nodiscard]] virtual double drainCurrent(const DeviceGeometry& geom,
                                            double vgs, double vds) const;

  /// Deep copy (used to give each Monte Carlo instance its own varied card).
  [[nodiscard]] virtual std::unique_ptr<MosfetModel> clone() const = 0;
};

/// Total gate capacitance Cgg = dQg/dVgs at the bias point, by central
/// finite difference on the model's gate charge.
[[nodiscard]] double gateCapacitance(const MosfetModel& model,
                                     const DeviceGeometry& geom, double vgs,
                                     double vds, double step = 1e-3);

/// Numerically-stable softplus ln(1 + exp(x)); linear tail for large x.
[[nodiscard]] double softplus(double x) noexcept;

/// Logistic function 1 / (1 + exp(x)) with overflow guards.
[[nodiscard]] double logistic(double x) noexcept;

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_DEVICE_HPP
