#include "models/bsim_params.hpp"

#include <cmath>

namespace vsstat::models {

double BsimParams::diblAt(double leff) const noexcept {
  return dibl0 * std::exp(-(leff - lNom) / lDibl);
}

BsimParams defaultBsimNmos() {
  BsimParams p;
  p.type = DeviceType::Nmos;
  p.vth0 = 0.37;
  p.dibl0 = 0.118;
  p.lDibl = 32e-9;
  p.lNom = 40e-9;
  p.nfactor = 1.38;
  p.cox = 1.8e-2;
  p.u0 = 2.8e-2;      // 280 cm^2/Vs low-field
  p.ua = 0.25;
  p.ub = 0.015;
  p.vsat = 1.05e5;
  p.pclm = 8.0;
  p.rdsw = 160e-6;
  p.cgo = 1.5e-10;
  return p;
}

BsimParams defaultBsimPmos() {
  BsimParams p;
  p.type = DeviceType::Pmos;
  p.vth0 = 0.39;
  p.dibl0 = 0.128;
  p.lDibl = 32e-9;
  p.lNom = 40e-9;
  p.nfactor = 1.45;
  p.cox = 1.75e-2;
  p.u0 = 1.8e-2;      // 180 cm^2/Vs
  p.ua = 0.25;
  p.ub = 0.015;
  p.vsat = 0.80e5;
  p.pclm = 8.5;
  p.rdsw = 190e-6;
  p.cgo = 1.5e-10;
  return p;
}

BsimMismatch defaultBsimMismatchNmos() {
  BsimMismatch m;
  m.aVth = 2.4;
  m.aLeff = 3.8;
  m.aWeff = 3.8;
  m.aMu = 2400.0;
  m.aCox = 0.30;
  return m;
}

BsimMismatch defaultBsimMismatchPmos() {
  BsimMismatch m;
  m.aVth = 2.95;
  m.aLeff = 3.75;
  m.aWeff = 3.75;
  m.aMu = 1900.0;
  m.aCox = 0.82;
  return m;
}

}  // namespace vsstat::models
