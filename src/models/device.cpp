#include "models/device.hpp"

#include <cmath>

namespace vsstat::models {

double MosfetModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                                 double vds) const {
  return evaluate(geom, vgs, vds).id;
}

MosfetDerivEvaluation MosfetModel::evaluateForNewton(const DeviceGeometry& geom,
                                                     double vgs, double vds,
                                                     double step) const {
  MosfetDerivEvaluation out;
  out.base = evaluate(geom, vgs, vds);
  out.gateStep = evaluate(geom, vgs + step, vds);
  out.drainStep = evaluate(geom, vgs, vds + step);
  return out;
}

MosfetLoadEvaluation MosfetModel::evaluateLoad(const DeviceGeometry& geom,
                                               double vgs, double vds,
                                               double fdStep) const {
  const MosfetDerivEvaluation t = evaluateForNewton(geom, vgs, vds, fdStep);
  MosfetLoadEvaluation out;
  out.at = t.base;
  out.didVgs = (t.gateStep.id - t.base.id) / fdStep;
  out.didVds = (t.drainStep.id - t.base.id) / fdStep;
  out.dqgVgs = (t.gateStep.qg - t.base.qg) / fdStep;
  out.dqgVds = (t.drainStep.qg - t.base.qg) / fdStep;
  out.dqdVgs = (t.gateStep.qd - t.base.qd) / fdStep;
  out.dqdVds = (t.drainStep.qd - t.base.qd) / fdStep;
  out.dqsVgs = (t.gateStep.qs - t.base.qs) / fdStep;
  out.dqsVds = (t.drainStep.qs - t.base.qs) / fdStep;
  return out;
}

double gateCapacitance(const MosfetModel& model, const DeviceGeometry& geom,
                       double vgs, double vds, double step) {
  const MosfetEvaluation hi = model.evaluate(geom, vgs + step, vds);
  const MosfetEvaluation lo = model.evaluate(geom, vgs - step, vds);
  return (hi.qg - lo.qg) / (2.0 * step);
}

double softplus(double x) noexcept {
  if (x > 34.0) return x;           // exp(-x) below double epsilon
  if (x < -34.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double logistic(double x) noexcept {
  if (x > 34.0) return 0.0;
  if (x < -34.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace vsstat::models
