#include "models/device.hpp"

#include <cmath>

namespace vsstat::models {

double MosfetModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                                 double vds) const {
  return evaluate(geom, vgs, vds).id;
}

double gateCapacitance(const MosfetModel& model, const DeviceGeometry& geom,
                       double vgs, double vds, double step) {
  const MosfetEvaluation hi = model.evaluate(geom, vgs + step, vds);
  const MosfetEvaluation lo = model.evaluate(geom, vgs - step, vds);
  return (hi.qg - lo.qg) / (2.0 * step);
}

double softplus(double x) noexcept {
  if (x > 34.0) return x;           // exp(-x) below double epsilon
  if (x < -34.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double logistic(double x) noexcept {
  if (x > 34.0) return 0.0;
  if (x < -34.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace vsstat::models
