#include "models/device.hpp"

#include <cmath>

namespace vsstat::models {

bool MosfetLoadBank::rebindLane(std::size_t laneIndex, const MosfetModel& card,
                                const DeviceGeometry& geometry) {
  lanes()[laneIndex] = BankLane{&card, &geometry};
  return true;
}

bool MosfetLoadBank::rebindUniform(const MosfetModel& card,
                                   const DeviceGeometry& geometry) {
  for (std::size_t i = 0; i < laneCount(); ++i) {
    if (!rebindLane(i, card, geometry)) return false;
  }
  return true;
}

namespace {

/// Default bank: one scalar evaluateLoad per lane.  No per-lane cached
/// state, so the base rebindLane (pointer swap) is already complete, and
/// the batch trivially matches the scalar path bit-for-bit.  Models whose
/// Newton load is not on any campaign hot path (BsimLite, AlphaPower) stay
/// on this and are still correct lanes of a banked circuit.  NumericsMode
/// is accepted and ignored: the generic bank always evaluates reference
/// numerics, which trivially satisfies the fast-mode tolerance contract.
class GenericLoadBank final : public MosfetLoadBank {
 public:
  explicit GenericLoadBank(std::vector<BankLane> lanes)
      : MosfetLoadBank(std::move(lanes)) {}

  void evaluateLoadBatch(std::span<const double> vgs,
                         std::span<const double> vds, double fdStep,
                         std::span<MosfetLoadEvaluation> out) const override {
    for (std::size_t i = 0; i < laneCount(); ++i) {
      const BankLane& l = lane(i);
      out[i] = l.card->evaluateLoad(*l.geometry, vgs[i], vds[i], fdStep);
    }
  }
};

}  // namespace

std::unique_ptr<MosfetLoadBank> MosfetModel::makeLoadBank(
    std::vector<BankLane> lanes, NumericsMode /*mode*/) const {
  return std::make_unique<GenericLoadBank>(std::move(lanes));
}

std::unique_ptr<MosfetLoadBank> makeUniformLoadBank(
    const MosfetModel& card, const DeviceGeometry& geometry,
    std::size_t laneCount, NumericsMode mode) {
  std::vector<BankLane> lanes(laneCount, BankLane{&card, &geometry});
  return card.makeLoadBank(std::move(lanes), mode);
}

double MosfetModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                                 double vds) const {
  return evaluate(geom, vgs, vds).id;
}

MosfetDerivEvaluation MosfetModel::evaluateForNewton(const DeviceGeometry& geom,
                                                     double vgs, double vds,
                                                     double step) const {
  MosfetDerivEvaluation out;
  out.base = evaluate(geom, vgs, vds);
  out.gateStep = evaluate(geom, vgs + step, vds);
  out.drainStep = evaluate(geom, vgs, vds + step);
  return out;
}

MosfetLoadEvaluation MosfetModel::evaluateLoad(const DeviceGeometry& geom,
                                               double vgs, double vds,
                                               double fdStep) const {
  const MosfetDerivEvaluation t = evaluateForNewton(geom, vgs, vds, fdStep);
  MosfetLoadEvaluation out;
  out.at = t.base;
  out.didVgs = (t.gateStep.id - t.base.id) / fdStep;
  out.didVds = (t.drainStep.id - t.base.id) / fdStep;
  out.dqgVgs = (t.gateStep.qg - t.base.qg) / fdStep;
  out.dqgVds = (t.drainStep.qg - t.base.qg) / fdStep;
  out.dqdVgs = (t.gateStep.qd - t.base.qd) / fdStep;
  out.dqdVds = (t.drainStep.qd - t.base.qd) / fdStep;
  out.dqsVgs = (t.gateStep.qs - t.base.qs) / fdStep;
  out.dqsVds = (t.drainStep.qs - t.base.qs) / fdStep;
  return out;
}

double gateCapacitance(const MosfetModel& model, const DeviceGeometry& geom,
                       double vgs, double vds, double step) {
  const MosfetEvaluation hi = model.evaluate(geom, vgs + step, vds);
  const MosfetEvaluation lo = model.evaluate(geom, vgs - step, vds);
  return (hi.qg - lo.qg) / (2.0 * step);
}

double softplus(double x) noexcept {
  if (x > 34.0) return x;           // exp(-x) below double epsilon
  if (x < -34.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double logistic(double x) noexcept {
  if (x > 34.0) return 0.0;
  if (x < -34.0) return 1.0;
  return 1.0 / (1.0 + std::exp(x));
}

}  // namespace vsstat::models
