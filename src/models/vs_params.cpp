#include "models/vs_params.hpp"

#include <cmath>

namespace vsstat::models {

double VsParams::diblAt(double leff) const noexcept {
  return delta0 * std::exp(-(leff - lNom) / lDibl);
}

double VsParams::diblSlopeAt(double leff) const noexcept {
  return -diblAt(leff) / lDibl;
}

double VsParams::ballisticEfficiency() const noexcept {
  return lambdaMfp / (lambdaMfp + 2.0 * lCritical);
}

double VsParams::vxoMobilitySensitivity() const noexcept {
  const double b = ballisticEfficiency();
  return alphaFit + (1.0 - b) * (1.0 - alphaFit + gammaFit);
}

double VsParams::vxoAt(double leff) const noexcept {
  // Relative vxo shift from the DIBL change between lNom and leff
  // (Eq. 5 second term integrated for a pure geometry change).
  const double dDelta = diblAt(leff) - delta0;
  return vxo * (1.0 + dVxoDDelta * dDelta);
}

VsParams defaultVsNmos() {
  VsParams p;
  p.type = DeviceType::Nmos;
  p.vt0 = 0.40;
  p.delta0 = 0.115;
  p.lDibl = 32e-9;
  p.lNom = 40e-9;
  p.n0 = 1.42;
  p.cinv = 1.80e-2;      // 1.8 uF/cm^2
  p.vxo = 1.0e5;         // 1.0e7 cm/s
  p.mu = 2.0e-2;         // 200 cm^2/Vs
  p.beta = 1.8;
  p.alpha = 3.5;
  p.rs = 80e-6;          // 80 Ohm um
  p.rd = 80e-6;
  p.cof = 1.5e-10;       // 0.15 fF/um per edge
  p.lambdaMfp = 9e-9;
  p.lCritical = 5e-9;
  return p;
}

VsParams defaultVsPmos() {
  VsParams p;
  p.type = DeviceType::Pmos;
  p.vt0 = 0.42;
  p.delta0 = 0.125;
  p.lDibl = 32e-9;
  p.lNom = 40e-9;
  p.n0 = 1.48;
  p.cinv = 1.75e-2;
  p.vxo = 0.75e5;        // 0.75e7 cm/s
  p.mu = 1.4e-2;         // 140 cm^2/Vs
  p.beta = 1.6;
  p.alpha = 3.5;
  p.rs = 95e-6;
  p.rd = 95e-6;
  p.cof = 1.5e-10;
  p.lambdaMfp = 7e-9;
  p.lCritical = 6e-9;
  return p;
}

}  // namespace vsstat::models
