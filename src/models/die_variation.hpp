// Die-level composition of variation components (paper Sec. I, Eq. 1).
//
// The paper's extraction characterizes the *within-die* (mismatch)
// component and notes that inter-die variation can be handled with the
// same BPV idea through the variance split
//
//   sigma^2_inter-die = sigma^2_total - sigma^2_within-die          (Eq. 1)
//
// This module supplies the other half of that picture: a DieSampler that
// composes, per device instance,
//
//   delta = global (one draw per die, geometry-independent)
//         + spatially-correlated intra-die component (optional, ref [14])
//         + local Pelgrom mismatch (the paper's extracted component),
//
// and the decomposition helpers to recover the components from population
// statistics, so the Eq. (1) workflow can be exercised end to end.
#ifndef VSSTAT_MODELS_DIE_VARIATION_HPP
#define VSSTAT_MODELS_DIE_VARIATION_HPP

#include <optional>
#include <vector>

#include "models/process_variation.hpp"
#include "stats/spatial.hpp"

namespace vsstat::models {

/// Inter-die (global) standard deviations, SI absolute units; one draw per
/// die shifts every device on it identically.
struct GlobalSigmas {
  double sVt0 = 0.0;   ///< V
  double sLeff = 0.0;  ///< m
  double sWeff = 0.0;  ///< m
  double sMu = 0.0;    ///< m^2/(V s)
  double sCinv = 0.0;  ///< F/m^2
};

/// Spatially correlated intra-die component: a single unit field scales
/// each parameter through its own sigma (perfectly correlated across
/// parameters at one location, exponentially decorrelating across the
/// die -- the standard principal-component simplification of ref [14]).
struct SpatialComponent {
  GlobalSigmas sigmas;          ///< per-parameter field amplitudes
  double correlationLength = 1e-3;  ///< [m]
};

struct DieVariationSpec {
  PelgromAlphas local;  ///< within-die mismatch (the paper's component)
  GlobalSigmas global;  ///< inter-die shifts
  std::optional<SpatialComponent> spatial;  ///< correlated intra-die part
};

/// Samples whole dies: call newDie() once per die, then deltaFor() once
/// per device instance.  Device locations are fixed up front so the
/// spatial field factorization happens once.
class DieSampler {
 public:
  DieSampler(DieVariationSpec spec, std::vector<stats::DiePoint> locations);

  /// Draws the die-level state (global delta + spatial field realization).
  void newDie(stats::Rng& rng);

  /// Per-instance delta for the device at `locationIndex`; composes the
  /// current die state with a fresh local mismatch draw.
  [[nodiscard]] VariationDelta deltaFor(std::size_t locationIndex,
                                        const DeviceGeometry& geom,
                                        stats::Rng& rng) const;

  [[nodiscard]] const VariationDelta& globalDelta() const noexcept {
    return globalDelta_;
  }
  [[nodiscard]] std::size_t locationCount() const noexcept {
    return locations_.size();
  }

 private:
  DieVariationSpec spec_;
  std::vector<stats::DiePoint> locations_;
  std::optional<stats::CorrelatedGaussianField> field_;
  VariationDelta globalDelta_{};
  std::vector<double> fieldValues_;
};

/// Eq. (1) decomposition of a measured population.
struct VarianceDecomposition {
  double total = 0.0;      ///< variance over all devices, all dies
  double withinDie = 0.0;  ///< pooled variance around per-die means
  double interDie = 0.0;   ///< total - withinDie, clamped at 0 (Eq. 1)
};

/// Decomposes per-die samples (outer index: die, inner: device) into
/// within-die and inter-die variance components.  Requires at least two
/// dies with at least two devices each.
[[nodiscard]] VarianceDecomposition decomposeVariance(
    const std::vector<std::vector<double>>& perDieSamples);

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_DIE_VARIATION_HPP
