// Fused vectorized VS equation chain for NumericsMode::fast.
//
// The staged form (one simd_math kernel call per transcendental site)
// loses most of its gain at real bank sizes (6-10 lanes) to per-stage
// staging: every stage re-reads the lane arrays, and seven kernel-call
// round trips per currentPart dominate the saved libm time.  These two
// entry points instead evaluate the ENTIRE currentPart / chargePart of
// vs_model.cpp in vector registers, four lanes at a time: card parameters
// arrive as struct-of-arrays (pre-inverted where the scalar chain
// divides), all intermediate arithmetic stays in V4d, and only the final
// states are stored.
//
// Like util/simd_math.hpp the bodies compile twice -- baseline flags and
// an AVX2+FMA clone -- sharing one source (vs_fast_chain_kernels.inc,
// which itself builds on simd_math_kernels.inc), dispatched once per
// process.  Numerics: same tolerance contract as the simd_math kernels
// (the chain is their composition); bit-different from the reference
// chain, deterministic per host.
//
// Layout contract: `n` is the PADDED lane count, a multiple of 4.  The
// caller (VsLoadBank's fast scratch) pads trailing lanes with benign card
// values -- the kernels evaluate them like any lane, so pad values must
// keep every operation finite (see makeBenignPad in vs_model.cpp).  All
// arrays hold >= n elements; none may alias.
#ifndef VSSTAT_MODELS_VS_FAST_CHAIN_HPP
#define VSSTAT_MODELS_VS_FAST_CHAIN_HPP

#include <cstddef>

namespace vsstat::models::fastchain {

/// SoA views for one batched currentPart evaluation (see the scalar
/// currentPart in vs_model.cpp for the meaning of every field).
struct CurrentIo {
  std::size_t n = 0;  ///< padded lane count, multiple of 4

  // Card parameters (refreshed per rebind).
  const double* vt0 = nullptr;
  const double* delta = nullptr;
  const double* alphaPhit = nullptr;
  const double* invAlphaPhit = nullptr;
  const double* invNphit = nullptr;
  const double* qref = nullptr;
  const double* vxo = nullptr;
  const double* vdsatStrong = nullptr;
  const double* phit = nullptr;
  const double* beta = nullptr;
  const double* invBeta = nullptr;
  const double* width = nullptr;

  // Internal bias inputs.
  const double* vgs = nullptr;
  const double* vds = nullptr;

  // CurrentState outputs.
  double* vt = nullptr;
  double* vdsat = nullptr;
  double* dvdsatg = nullptr;
  double* dvdsatd = nullptr;
  double* fsat = nullptr;
  double* dfsatdr = nullptr;
  double* drg = nullptr;
  double* drd = nullptr;
  double* idW = nullptr;
  double* gm = nullptr;
  double* gd = nullptr;
  double* qS = nullptr;
  double* dqSvg = nullptr;
  double* dqSvd = nullptr;
};

/// SoA views for one batched chargePart evaluation; reads the
/// currentPart outputs of the accepted internal solution.
struct ChargeIo {
  std::size_t n = 0;  ///< padded lane count, multiple of 4

  const double* delta = nullptr;
  const double* alphaPhit = nullptr;
  const double* invAlphaPhit = nullptr;
  const double* invNphit = nullptr;
  const double* qref = nullptr;

  const double* vgs = nullptr;  ///< internal vgs of the accepted solution
  const double* vt = nullptr;
  const double* vdsat = nullptr;
  const double* dvdsatg = nullptr;
  const double* dvdsatd = nullptr;
  const double* fsat = nullptr;
  const double* dfsatdr = nullptr;
  const double* drg = nullptr;
  const double* drd = nullptr;

  // ChargeState outputs.
  double* qD = nullptr;
  double* dqDvg = nullptr;
  double* dqDvd = nullptr;
};

void currentBatch(const CurrentIo& io) noexcept;
void chargeBatch(const ChargeIo& io) noexcept;

}  // namespace vsstat::models::fastchain

#endif  // VSSTAT_MODELS_VS_FAST_CHAIN_HPP
