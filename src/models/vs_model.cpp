#include "models/vs_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

namespace {

/// logistic(x) = 1/(1+e^x) with its x-derivative, consistent with the
/// clamped tails of models::logistic (derivative 0 where the value clamps).
inline void logisticVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = 0.0;
    dv = 0.0;
    return;
  }
  if (x < -34.0) {
    v = 1.0;
    dv = 0.0;
    return;
  }
  const double e = std::exp(x);
  v = 1.0 / (1.0 + e);
  dv = -e * v * v;
}

/// softplus(x) = ln(1+e^x) with its x-derivative, matching models::softplus
/// bit-for-bit in the value.
inline void softplusVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = x;
    dv = 1.0;
    return;
  }
  if (x < -34.0) {
    v = std::exp(x);
    dv = v;
    return;
  }
  const double e = std::exp(x);
  v = std::log1p(e);
  dv = e / (1.0 + e);
}

}  // namespace

VsModel::VsModel(VsParams params) : params_(params) {
  require(params_.cinv > 0.0 && params_.vxo > 0.0 && params_.mu > 0.0,
          "VsModel: cinv, vxo, mu must be positive");
  require(params_.beta > 0.0 && params_.n0 >= 1.0,
          "VsModel: beta > 0 and n0 >= 1 required");
}

std::unique_ptr<MosfetModel> VsModel::clone() const {
  return std::make_unique<VsModel>(*this);
}

bool VsModel::assignFrom(const MosfetModel& other) {
  const auto* o = dynamic_cast<const VsModel*>(&other);
  if (o == nullptr) return false;
  params_ = o->params_;
  return true;
}

VsModel::Derived VsModel::derive(const DeviceGeometry& geom) const noexcept {
  const VsParams& p = params_;
  Derived d;
  d.phit = units::thermalVoltage(p.temperatureK);
  d.delta = p.diblAt(geom.length);
  d.vxo = p.vxoAt(geom.length);
  d.nphit = p.n0 * d.phit;
  d.alphaPhit = p.alpha * d.phit;
  d.qref = p.cinv * d.nphit;
  d.vdsatStrong = d.vxo * geom.length / p.mu;
  return d;
}

VsModel::Intrinsic VsModel::intrinsic(const Derived& d, double vgs, double vds,
                                      bool withCharges) const {
  const VsParams& p = params_;

  // Threshold with DIBL (paper Eq. 4).
  const double vt = p.vt0 - d.delta * vds;

  // Weak/strong inversion transition function FF and the blended Vt shift
  // (MVS formulation): in weak inversion the effective threshold lowers by
  // alpha*phit.
  const double ff = logistic((vgs - (vt - d.alphaPhit / 2.0)) / d.alphaPhit);
  const double eta = (vgs - (vt - d.alphaPhit * ff)) / d.nphit;

  // Virtual-source inversion charge (paper's Qixo).
  const double qix = d.qref * softplus(eta);

  // Saturation voltage: strong-inversion value vxo*L/mu blended toward phit
  // in weak inversion.
  const double vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;

  // Fsat (paper Eq. 3).
  const double ratio = vds / vdsat;
  const double fsat = ratio / std::pow(1.0 + std::pow(ratio, p.beta),
                                       1.0 / p.beta);

  Intrinsic out;
  out.idPerWidth = qix * d.vxo * fsat;
  out.qSrcAreal = qix;
  if (!withCharges) return out;

  // Drain-end charge at the smoothed internal drain voltage
  // Vdseff = Vdsat * Fsat (equals Vds in the linear region, clamps to ~Vdsat
  // in saturation), keeping the charge model continuous everywhere.
  const double vdseff = vdsat * fsat;
  const double ffd = logistic((vgs - vdseff - (vt - d.alphaPhit / 2.0)) /
                              d.alphaPhit);
  const double etaD = (vgs - vdseff - (vt - d.alphaPhit * ffd)) / d.nphit;
  out.qDrnAreal = d.qref * softplus(etaD);
  return out;
}

double VsModel::solveSeriesCurrent(const DeviceGeometry& geom, const Derived& d,
                                   double vgs, double vds,
                                   const double* warmStart) const {
  const VsParams& p = params_;

  // Per-instance resistances: cards carry R*W [Ohm m].
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;

  // Solve h(i) = f(i) - i = 0, where f maps a trial current to the model
  // current at the post-IR internal voltages.  The IR drop is a small
  // fraction of the bias (|f'| ~ gm*Rs ~ 0.1), so a secant iteration
  // converges in two or three evaluations -- this is the evaluation hot
  // path for every Newton load in circuit simulation.  Only the current is
  // evaluated here; charges are filled in once at the solution.
  const auto evalCurrent = [&](double i) {
    const double vgsInt = vgs - i * rsOhm;
    const double vdsInt = vds - i * (rsOhm + rdOhm);
    return intrinsic(d, std::max(vgsInt, -1.0), std::max(vdsInt, 0.0),
                     /*withCharges=*/false)
               .idPerWidth *
           geom.width;
  };

  double i0, h0, i1;
  if (warmStart != nullptr) {
    // A nearby bias was just solved (Newton finite-difference point): start
    // the secant from its current, which lands within one or two updates.
    i0 = *warmStart;
    h0 = evalCurrent(i0) - i0;
    i1 = i0 + h0;
  } else {
    i0 = 0.0;
    h0 = evalCurrent(0.0);  // = f(0)
    i1 = h0;                // start at f(0)
  }
  for (int it = 0; it < 6; ++it) {
    const double h1 = evalCurrent(i1) - i1;
    if (std::fabs(h1) < 1e-13 + 1e-6 * std::fabs(i1)) break;
    const double denom = h1 - h0;
    double iNext;
    if (std::fabs(denom) > 1e-300) {
      iNext = i1 - h1 * (i1 - i0) / denom;
    } else {
      iNext = i1 + h1;  // degenerate secant: plain fixed-point step
    }
    i0 = i1;
    h0 = h1;
    i1 = iNext;
  }
  return i1;
}

VsModel::Intrinsic VsModel::solveWithSeriesR(const DeviceGeometry& geom,
                                             const Derived& d, double vgs,
                                             double vds,
                                             const double* warmStart) const {
  const VsParams& p = params_;
  if (p.rs <= 0.0 && p.rd <= 0.0)
    return intrinsic(d, vgs, vds, /*withCharges=*/true);

  const double i1 = solveSeriesCurrent(geom, d, vgs, vds, warmStart);
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;
  const double vgsInt = vgs - i1 * rsOhm;
  const double vdsInt = vds - i1 * (rsOhm + rdOhm);
  Intrinsic result = intrinsic(d, std::max(vgsInt, -1.0),
                               std::max(vdsInt, 0.0), /*withCharges=*/true);
  result.idPerWidth = i1 / geom.width;
  return result;
}

double VsModel::inversionCharge(const DeviceGeometry& geom, double vgs,
                                double vds) const {
  const Derived d = derive(geom);
  if (vds < 0.0) return intrinsic(d, vgs - vds, -vds, true).qSrcAreal;
  return intrinsic(d, vgs, vds, true).qSrcAreal;
}

double VsModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                             double vds) const {
  const Derived d = derive(geom);
  if (params_.rs <= 0.0 && params_.rd <= 0.0) {
    if (vds < 0.0)
      return -intrinsic(d, vgs - vds, -vds, false).idPerWidth * geom.width;
    return intrinsic(d, vgs, vds, false).idPerWidth * geom.width;
  }
  if (vds < 0.0) {
    // Source/drain role reversal (device is symmetric).
    return -solveSeriesCurrent(geom, d, vgs - vds, -vds, nullptr);
  }
  return solveSeriesCurrent(geom, d, vgs, vds, nullptr);
}

MosfetEvaluation VsModel::evaluateImpl(const DeviceGeometry& geom,
                                       const Derived& d, double vgs,
                                       double vds, double* warmCurrent,
                                       bool useWarm) const {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const double* warm = useWarm ? warmCurrent : nullptr;
  const Intrinsic in = solveWithSeriesR(geom, d, cvgs, cvds, warm);
  if (warmCurrent != nullptr) *warmCurrent = in.idPerWidth * geom.width;

  const double w = geom.width;
  const double l = geom.length;

  // Ward-Dutton partition of a linear charge profile between the source-end
  // and drain-end densities.  Channel charge is electrons (negative) mirrored
  // by positive gate charge.
  const double qChanSrc = w * l * (2.0 * in.qSrcAreal + in.qDrnAreal) / 6.0;
  const double qChanDrn = w * l * (in.qSrcAreal + 2.0 * in.qDrnAreal) / 6.0;

  // Overlap/fringe parasitics (linear, per gate edge).
  const double cov = params_.cof * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = in.idPerWidth * w;
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

MosfetEvaluation VsModel::evaluate(const DeviceGeometry& geom, double vgs,
                                   double vds) const {
  return evaluateImpl(geom, derive(geom), vgs, vds, nullptr, false);
}

VsModel::IntrinsicDeriv VsModel::intrinsicDeriv(const DeviceGeometry& geom,
                                                const Derived& d, double vgs,
                                                double vds,
                                                bool withCharges) const {
  const VsParams& p = params_;
  const double w = geom.width;

  // Same expressions as intrinsic(), with every chain-rule factor closed in
  // plain arithmetic: the logistic/softplus derivatives reuse the already
  // computed exponentials, and dFsat/dr = 1/((1+r^beta) * (1+r^beta)^(1/beta))
  // reuses the powers, so derivatives cost no extra transcendentals.
  const double vt = p.vt0 - d.delta * vds;

  double ff, dffdu;
  logisticVD((vgs - (vt - d.alphaPhit / 2.0)) / d.alphaPhit, ff, dffdu);
  const double dffg = dffdu / d.alphaPhit;            // dff/dvgs
  const double dffd = dffdu * d.delta / d.alphaPhit;  // dff/dvds

  double sp, dsp;
  softplusVD((vgs - (vt - d.alphaPhit * ff)) / d.nphit, sp, dsp);
  const double qix = d.qref * sp;
  const double detag = (1.0 + d.alphaPhit * dffg) / d.nphit;
  const double detad = (d.delta + d.alphaPhit * dffd) / d.nphit;
  const double dqixg = d.qref * dsp * detag;
  const double dqixd = d.qref * dsp * detad;

  const double vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;
  const double dvdsatg = (d.phit - d.vdsatStrong) * dffg;
  const double dvdsatd = (d.phit - d.vdsatStrong) * dffd;

  const double ratio = vds / vdsat;
  const double drg = -(ratio / vdsat) * dvdsatg;
  const double drd = 1.0 / vdsat - (ratio / vdsat) * dvdsatd;

  const double t = std::pow(ratio, p.beta);
  const double s = std::pow(1.0 + t, 1.0 / p.beta);
  const double fsat = ratio / s;
  const double dfsatdr = 1.0 / ((1.0 + t) * s);

  IntrinsicDeriv out;
  out.idW = qix * d.vxo * fsat * w;
  out.gm = d.vxo * (dqixg * fsat + qix * dfsatdr * drg) * w;
  out.gd = d.vxo * (dqixd * fsat + qix * dfsatdr * drd) * w;
  out.qS = qix;
  out.dqSvg = dqixg;
  out.dqSvd = dqixd;
  if (!withCharges) return out;

  const double vdseff = vdsat * fsat;
  const double dvdseffg = dvdsatg * fsat + vdsat * dfsatdr * drg;
  const double dvdseffd = dvdsatd * fsat + vdsat * dfsatdr * drd;

  double ffd2, dffd2du;
  logisticVD((vgs - vdseff - (vt - d.alphaPhit / 2.0)) / d.alphaPhit, ffd2,
             dffd2du);
  const double dudg = (1.0 - dvdseffg) / d.alphaPhit;
  const double dudd = (d.delta - dvdseffd) / d.alphaPhit;

  double spd, dspd;
  softplusVD((vgs - vdseff - (vt - d.alphaPhit * ffd2)) / d.nphit, spd, dspd);
  out.qD = d.qref * spd;
  const double detaDg =
      (1.0 - dvdseffg + d.alphaPhit * dffd2du * dudg) / d.nphit;
  const double detaDd =
      (d.delta - dvdseffd + d.alphaPhit * dffd2du * dudd) / d.nphit;
  out.dqDvg = d.qref * dspd * detaDg;
  out.dqDvd = d.qref * dspd * detaDd;
  return out;
}

MosfetLoadEvaluation VsModel::evaluateLoad(const DeviceGeometry& geom,
                                           double vgs, double vds,
                                           double /*fdStep*/) const {
  const Derived d = derive(geom);
  const VsParams& p = params_;

  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const double rsOhm = p.rs > 0.0 ? p.rs / geom.width : 0.0;
  const double rdOhm = p.rd > 0.0 ? p.rd / geom.width : 0.0;
  const bool hasSeriesR = rsOhm > 0.0 || rdOhm > 0.0;

  // Resolve the series-resistance fixed point i = f(cvgs - i*Rs,
  // cvds - i*(Rs+Rd)) with a derivative-aware Newton: h'(i) =
  // -(gm*Rs + gd*(Rs+Rd)) - 1 is available analytically, so the iteration
  // is quadratic and typically lands in two or three evaluations.
  double i = 0.0;
  double vgsInt = cvgs;
  double vdsInt = cvds;
  bool clampG = false;
  bool clampD = false;
  if (hasSeriesR) {
    for (int it = 0; it < 8; ++it) {
      vgsInt = cvgs - i * rsOhm;
      vdsInt = cvds - i * (rsOhm + rdOhm);
      clampG = vgsInt < -1.0;
      clampD = vdsInt < 0.0;
      if (clampG) vgsInt = -1.0;
      if (clampD) vdsInt = 0.0;
      const IntrinsicDeriv cur =
          intrinsicDeriv(geom, d, vgsInt, vdsInt, /*withCharges=*/false);
      const double h = cur.idW - i;
      if (std::fabs(h) < 1e-13 + 1e-6 * std::fabs(i)) break;
      const double gmIt = clampG ? 0.0 : cur.gm;
      const double gdIt = clampD ? 0.0 : cur.gd;
      const double hp = -(gmIt * rsOhm + gdIt * (rsOhm + rdOhm)) - 1.0;
      i -= h / hp;
    }
    // Internal bias of the accepted current (refreshed in case the loop
    // exhausted its budget with a pending update).
    vgsInt = cvgs - i * rsOhm;
    vdsInt = cvds - i * (rsOhm + rdOhm);
    clampG = vgsInt < -1.0;
    clampD = vdsInt < 0.0;
    if (clampG) vgsInt = -1.0;
    if (clampD) vdsInt = 0.0;
  }

  // Charges (and their derivatives) at the internal solution.
  const IntrinsicDeriv in =
      intrinsicDeriv(geom, d, vgsInt, vdsInt, /*withCharges=*/true);
  if (!hasSeriesR) i = in.idW;

  // External small-signal map via the implicit function theorem.
  const double gmEff = clampG ? 0.0 : in.gm;
  const double gdEff = clampD ? 0.0 : in.gd;
  double digs, dids;      // di/dcvgs, di/dcvds
  double svgG, svgD;      // dvgsInt/dcvgs, dvgsInt/dcvds
  double svdG, svdD;      // dvdsInt/dcvgs, dvdsInt/dcvds
  if (hasSeriesR) {
    const double den = 1.0 + gmEff * rsOhm + gdEff * (rsOhm + rdOhm);
    digs = gmEff / den;
    dids = gdEff / den;
    svgG = clampG ? 0.0 : 1.0 - rsOhm * digs;
    svgD = clampG ? 0.0 : -rsOhm * dids;
    svdG = clampD ? 0.0 : -(rsOhm + rdOhm) * digs;
    svdD = clampD ? 0.0 : 1.0 - (rsOhm + rdOhm) * dids;
  } else {
    digs = gmEff;
    dids = gdEff;
    svgG = 1.0;
    svgD = 0.0;
    svdG = 0.0;
    svdD = 1.0;
  }

  // Areal charge sensitivities to the external canonical voltages.
  const double dqSg = in.dqSvg * svgG + in.dqSvd * svdG;
  const double dqSd = in.dqSvg * svgD + in.dqSvd * svdD;
  const double dqDg = in.dqDvg * svgG + in.dqDvd * svdG;
  const double dqDd = in.dqDvg * svgD + in.dqDvd * svdD;

  // Ward-Dutton partition + overlap, as in evaluateImpl.
  const double w = geom.width;
  const double l = geom.length;
  const double wl6 = w * l / 6.0;
  const double qChanSrc = wl6 * (2.0 * in.qS + in.qD);
  const double qChanDrn = wl6 * (in.qS + 2.0 * in.qD);
  const double dqChanSrcG = wl6 * (2.0 * dqSg + dqDg);
  const double dqChanSrcD = wl6 * (2.0 * dqSd + dqDd);
  const double dqChanDrnG = wl6 * (dqSg + 2.0 * dqDg);
  const double dqChanDrnD = wl6 * (dqSd + 2.0 * dqDd);

  const double cov = params_.cof * w;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * (cvgs - cvds);

  // Canonical-frame evaluation and derivatives.
  const double id = i;
  const double qg = qChanSrc + qChanDrn + qOvS + qOvD;
  const double qs = -qChanSrc - qOvS;
  const double qd = -qChanDrn - qOvD;
  const double dqgG = dqChanSrcG + dqChanDrnG + 2.0 * cov;
  const double dqgD = dqChanSrcD + dqChanDrnD - cov;
  const double dqsG = -dqChanSrcG - cov;
  const double dqsD = -dqChanSrcD;
  const double dqdG = -dqChanDrnG - cov;
  const double dqdD = -dqChanDrnD + cov;

  MosfetLoadEvaluation out;
  if (!reversed) {
    out.at.id = id;
    out.at.qg = qg;
    out.at.qs = qs;
    out.at.qd = qd;
    out.didVgs = digs;
    out.didVds = dids;
    out.dqgVgs = dqgG;
    out.dqgVds = dqgD;
    out.dqsVgs = dqsG;
    out.dqsVds = dqsD;
    out.dqdVgs = dqdG;
    out.dqdVds = dqdD;
  } else {
    // cvgs = vgs - vds, cvds = -vds: for any F(cvgs, cvds),
    // dF/dvgs = Fg and dF/dvds = -Fg - Fd.  The terminal current flips
    // sign and the source/drain charges swap.
    out.at.id = -id;
    out.at.qg = qg;
    out.at.qs = qd;  // swapped
    out.at.qd = qs;
    out.didVgs = -digs;
    out.didVds = digs + dids;
    out.dqgVgs = dqgG;
    out.dqgVds = -dqgG - dqgD;
    out.dqsVgs = dqdG;
    out.dqsVds = -dqdG - dqdD;
    out.dqdVgs = dqsG;
    out.dqdVds = -dqsG - dqsD;
  }
  return out;
}

MosfetDerivEvaluation VsModel::evaluateForNewton(const DeviceGeometry& geom,
                                                 double vgs, double vds,
                                                 double step) const {
  const Derived d = derive(geom);
  const bool baseReversed = vds < 0.0;

  MosfetDerivEvaluation out;
  double warm = 0.0;
  out.base = evaluateImpl(geom, d, vgs, vds, &warm, false);
  // The finite-difference points sit 1 mV from the base bias, so the base
  // current is an excellent secant seed -- as long as the polarity
  // canonicalization did not flip between the two points.
  out.gateStep = evaluateImpl(geom, d, vgs + step, vds, &warm,
                              /*useWarm=*/true);
  const bool drainReversed = (vds + step) < 0.0;
  double warmDrain = warm;
  out.drainStep = evaluateImpl(geom, d, vgs, vds + step, &warmDrain,
                               /*useWarm=*/drainReversed == baseReversed);
  return out;
}

}  // namespace vsstat::models
