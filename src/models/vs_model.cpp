#include "models/vs_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "models/vs_fast_chain.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

namespace {

/// logistic(x) = 1/(1+e^x) with its x-derivative, consistent with the
/// clamped tails of models::logistic (derivative 0 where the value clamps).
inline void logisticVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = 0.0;
    dv = 0.0;
    return;
  }
  if (x < -34.0) {
    v = 1.0;
    dv = 0.0;
    return;
  }
  const double e = std::exp(x);
  v = 1.0 / (1.0 + e);
  dv = -e * v * v;
}

/// softplus(x) = ln(1+e^x) with its x-derivative, matching models::softplus
/// bit-for-bit in the value.
inline void softplusVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = x;
    dv = 1.0;
    return;
  }
  if (x < -34.0) {
    v = std::exp(x);
    dv = v;
    return;
  }
  const double e = std::exp(x);
  v = std::log1p(e);
  dv = e / (1.0 + e);
}

// --- model equations ---------------------------------------------------------
//
// Free functions of (params, geometry, bias): one arithmetic chain serves
// the card-owning VsModel adapter, the scalar Newton-load entry point, and
// the banked lane loop.

/// Bias-independent values derived from (params, geometry).  Computed once
/// per evaluation chain and shared across every intrinsic call of the
/// series-resistance loop and the Newton finite-difference points.
struct Derived {
  double phit = 0.0;          ///< thermal voltage
  double delta = 0.0;         ///< DIBL coefficient at Leff
  double vxo = 0.0;           ///< injection velocity at Leff
  double nphit = 0.0;         ///< n0 * phit
  double alphaPhit = 0.0;     ///< alpha * phit
  double qref = 0.0;          ///< cinv * nphit
  double vdsatStrong = 0.0;   ///< vxo * Leff / mu
};

Derived derive(const VsParams& p, const DeviceGeometry& geom) noexcept {
  Derived d;
  d.phit = units::thermalVoltage(p.temperatureK);
  d.delta = p.diblAt(geom.length);
  d.vxo = p.vxoAt(geom.length);
  d.nphit = p.n0 * d.phit;
  d.alphaPhit = p.alpha * d.phit;
  d.qref = p.cinv * d.nphit;
  d.vdsatStrong = d.vxo * geom.length / p.mu;
  return d;
}

/// Core intrinsic solution at internal (post-Rs/Rd) voltages.
struct Intrinsic {
  double idPerWidth = 0.0;  ///< A/m, positive for canonical vds >= 0
  double qSrcAreal = 0.0;   ///< source-end channel charge [C/m^2]
  double qDrnAreal = 0.0;   ///< drain-end channel charge [C/m^2]
};

/// Intrinsic model at internal (post-Rs/Rd) voltages.  The drain-end
/// charge block is only computed when `withCharges` is set: the
/// series-resistance secant needs the current alone.
Intrinsic intrinsic(const VsParams& p, const Derived& d, double vgs,
                    double vds, bool withCharges) {
  // Threshold with DIBL (paper Eq. 4).
  const double vt = p.vt0 - d.delta * vds;

  // Weak/strong inversion transition function FF and the blended Vt shift
  // (MVS formulation): in weak inversion the effective threshold lowers by
  // alpha*phit.
  const double ff = logistic((vgs - (vt - d.alphaPhit / 2.0)) / d.alphaPhit);
  const double eta = (vgs - (vt - d.alphaPhit * ff)) / d.nphit;

  // Virtual-source inversion charge (paper's Qixo).
  const double qix = d.qref * softplus(eta);

  // Saturation voltage: strong-inversion value vxo*L/mu blended toward phit
  // in weak inversion.
  const double vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;

  // Fsat (paper Eq. 3).
  const double ratio = vds / vdsat;
  const double fsat = ratio / std::pow(1.0 + std::pow(ratio, p.beta),
                                       1.0 / p.beta);

  Intrinsic out;
  out.idPerWidth = qix * d.vxo * fsat;
  out.qSrcAreal = qix;
  if (!withCharges) return out;

  // Drain-end charge at the smoothed internal drain voltage
  // Vdseff = Vdsat * Fsat (equals Vds in the linear region, clamps to ~Vdsat
  // in saturation), keeping the charge model continuous everywhere.
  const double vdseff = vdsat * fsat;
  const double ffd = logistic((vgs - vdseff - (vt - d.alphaPhit / 2.0)) /
                              d.alphaPhit);
  const double etaD = (vgs - vdseff - (vt - d.alphaPhit * ffd)) / d.nphit;
  out.qDrnAreal = d.qref * softplus(etaD);
  return out;
}

double solveSeriesCurrent(const VsParams& p, const DeviceGeometry& geom,
                          const Derived& d, double vgs, double vds,
                          const double* warmStart) {
  // Per-instance resistances: cards carry R*W [Ohm m].
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;

  // Solve h(i) = f(i) - i = 0, where f maps a trial current to the model
  // current at the post-IR internal voltages.  The IR drop is a small
  // fraction of the bias (|f'| ~ gm*Rs ~ 0.1), so a secant iteration
  // converges in two or three evaluations -- this is the evaluation hot
  // path for every Newton load in circuit simulation.  Only the current is
  // evaluated here; charges are filled in once at the solution.
  const auto evalCurrent = [&](double i) {
    const double vgsInt = vgs - i * rsOhm;
    const double vdsInt = vds - i * (rsOhm + rdOhm);
    return intrinsic(p, d, std::max(vgsInt, -1.0), std::max(vdsInt, 0.0),
                     /*withCharges=*/false)
               .idPerWidth *
           geom.width;
  };

  double i0, h0, i1;
  if (warmStart != nullptr) {
    // A nearby bias was just solved (Newton finite-difference point): start
    // the secant from its current, which lands within one or two updates.
    i0 = *warmStart;
    h0 = evalCurrent(i0) - i0;
    i1 = i0 + h0;
  } else {
    i0 = 0.0;
    h0 = evalCurrent(0.0);  // = f(0)
    i1 = h0;                // start at f(0)
  }
  for (int it = 0; it < 6; ++it) {
    const double h1 = evalCurrent(i1) - i1;
    if (std::fabs(h1) < 1e-13 + 1e-6 * std::fabs(i1)) break;
    const double denom = h1 - h0;
    double iNext;
    if (std::fabs(denom) > 1e-300) {
      iNext = i1 - h1 * (i1 - i0) / denom;
    } else {
      iNext = i1 + h1;  // degenerate secant: plain fixed-point step
    }
    i0 = i1;
    h0 = h1;
    i1 = iNext;
  }
  return i1;
}

/// Full intrinsic solution with the IR drop resolved.
Intrinsic solveWithSeriesR(const VsParams& p, const DeviceGeometry& geom,
                           const Derived& d, double vgs, double vds,
                           const double* warmStart) {
  if (p.rs <= 0.0 && p.rd <= 0.0)
    return intrinsic(p, d, vgs, vds, /*withCharges=*/true);

  const double i1 = solveSeriesCurrent(p, geom, d, vgs, vds, warmStart);
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;
  const double vgsInt = vgs - i1 * rsOhm;
  const double vdsInt = vds - i1 * (rsOhm + rdOhm);
  Intrinsic result = intrinsic(p, d, std::max(vgsInt, -1.0),
                               std::max(vdsInt, 0.0), /*withCharges=*/true);
  result.idPerWidth = i1 / geom.width;
  return result;
}

/// Canonicalization + Ward-Dutton partition shared by evaluate() and
/// evaluateForNewton().  `warmCurrent` (if non-null) carries the previous
/// nearby solve's canonical current in, and the present one out.
MosfetEvaluation evaluateImpl(const VsParams& p, const DeviceGeometry& geom,
                              const Derived& d, double vgs, double vds,
                              double* warmCurrent, bool useWarm) {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const double* warm = useWarm ? warmCurrent : nullptr;
  const Intrinsic in = solveWithSeriesR(p, geom, d, cvgs, cvds, warm);
  if (warmCurrent != nullptr) *warmCurrent = in.idPerWidth * geom.width;

  const double w = geom.width;
  const double l = geom.length;

  // Ward-Dutton partition of a linear charge profile between the source-end
  // and drain-end densities.  Channel charge is electrons (negative) mirrored
  // by positive gate charge.
  const double qChanSrc = w * l * (2.0 * in.qSrcAreal + in.qDrnAreal) / 6.0;
  const double qChanDrn = w * l * (in.qSrcAreal + 2.0 * in.qDrnAreal) / 6.0;

  // Overlap/fringe parasitics (linear, per gate edge).
  const double cov = p.cof * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = in.idPerWidth * w;
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

// --- Newton-load chain (scalar entry point + banked lane loop) ---------------

/// Everything the analytic Newton-load chain reads, hoisted out of the
/// bias-dependent arithmetic: parameter-card scalars, the per-geometry
/// Derived block, pre-divided series resistances, and the charge
/// prefactors.  Built per call on the scalar path; cached per lane (and
/// refreshed per rebind) by the device bank -- every field is the same
/// double the scalar path computes, so caching does not change bits.
struct LoadCard {
  double vt0 = 0.0;
  double beta = 0.0;
  Derived d;
  double rsOhm = 0.0;
  double rdOhm = 0.0;
  bool hasSeriesR = false;
  double cov = 0.0;    ///< cof * W
  double width = 0.0;
  double wl6 = 0.0;    ///< W * L / 6
};

LoadCard makeLoadCard(const VsParams& p, const DeviceGeometry& geom) noexcept {
  LoadCard c;
  c.vt0 = p.vt0;
  c.beta = p.beta;
  c.d = derive(p, geom);
  c.rsOhm = p.rs > 0.0 ? p.rs / geom.width : 0.0;
  c.rdOhm = p.rd > 0.0 ? p.rd / geom.width : 0.0;
  c.hasSeriesR = c.rsOhm > 0.0 || c.rdOhm > 0.0;
  c.cov = p.cof * geom.width;
  c.width = geom.width;
  c.wl6 = geom.width * geom.length / 6.0;
  return c;
}

/// Intrinsic current + source-end charge with the full analytic derivative
/// chain (w.r.t. the internal canonical voltages), plus every intermediate
/// the drain-end charge block consumes.  Splitting the chain here lets the
/// series-resistance loop's final iteration be reused for the charge pass
/// instead of recomputed -- the saved intermediates are bitwise the values
/// a recomputation at the same bias would produce.
struct CurrentState {
  double vt = 0.0;
  double vdsat = 0.0, dvdsatg = 0.0, dvdsatd = 0.0;
  double fsat = 0.0, dfsatdr = 0.0;
  double drg = 0.0, drd = 0.0;
  double idW = 0.0;  ///< drain current [A] (width-scaled)
  double gm = 0.0;   ///< d(idW)/dvgs [S]
  double gd = 0.0;   ///< d(idW)/dvds [S]
  double qS = 0.0;   ///< source-end areal charge [C/m^2]
  double dqSvg = 0.0, dqSvd = 0.0;
};

CurrentState currentPart(const LoadCard& c, double vgs, double vds) {
  const Derived& d = c.d;

  // Same expressions as intrinsic(), with every chain-rule factor closed in
  // plain arithmetic: the logistic/softplus derivatives reuse the already
  // computed exponentials, and dFsat/dr = 1/((1+r^beta) * (1+r^beta)^(1/beta))
  // reuses the powers, so derivatives cost no extra transcendentals.
  CurrentState s;
  s.vt = c.vt0 - d.delta * vds;

  double ff, dffdu;
  logisticVD((vgs - (s.vt - d.alphaPhit / 2.0)) / d.alphaPhit, ff, dffdu);
  const double dffg = dffdu / d.alphaPhit;            // dff/dvgs
  const double dffd = dffdu * d.delta / d.alphaPhit;  // dff/dvds

  double sp, dsp;
  softplusVD((vgs - (s.vt - d.alphaPhit * ff)) / d.nphit, sp, dsp);
  const double qix = d.qref * sp;
  const double detag = (1.0 + d.alphaPhit * dffg) / d.nphit;
  const double detad = (d.delta + d.alphaPhit * dffd) / d.nphit;
  const double dqixg = d.qref * dsp * detag;
  const double dqixd = d.qref * dsp * detad;

  s.vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;
  s.dvdsatg = (d.phit - d.vdsatStrong) * dffg;
  s.dvdsatd = (d.phit - d.vdsatStrong) * dffd;

  const double ratio = vds / s.vdsat;
  s.drg = -(ratio / s.vdsat) * s.dvdsatg;
  s.drd = 1.0 / s.vdsat - (ratio / s.vdsat) * s.dvdsatd;

  const double t = std::pow(ratio, c.beta);
  const double sPow = std::pow(1.0 + t, 1.0 / c.beta);
  s.fsat = ratio / sPow;
  s.dfsatdr = 1.0 / ((1.0 + t) * sPow);

  s.idW = qix * d.vxo * s.fsat * c.width;
  s.gm = d.vxo * (dqixg * s.fsat + qix * s.dfsatdr * s.drg) * c.width;
  s.gd = d.vxo * (dqixd * s.fsat + qix * s.dfsatdr * s.drd) * c.width;
  s.qS = qix;
  s.dqSvg = dqixg;
  s.dqSvd = dqixd;
  return s;
}

struct ChargeState {
  double qD = 0.0;  ///< drain-end areal charge [C/m^2]
  double dqDvg = 0.0, dqDvd = 0.0;
};

ChargeState chargePart(const LoadCard& c, double vgs, const CurrentState& s) {
  const Derived& d = c.d;

  const double vdseff = s.vdsat * s.fsat;
  const double dvdseffg = s.dvdsatg * s.fsat + s.vdsat * s.dfsatdr * s.drg;
  const double dvdseffd = s.dvdsatd * s.fsat + s.vdsat * s.dfsatdr * s.drd;

  double ffd2, dffd2du;
  logisticVD((vgs - vdseff - (s.vt - d.alphaPhit / 2.0)) / d.alphaPhit, ffd2,
             dffd2du);
  const double dudg = (1.0 - dvdseffg) / d.alphaPhit;
  const double dudd = (d.delta - dvdseffd) / d.alphaPhit;

  double spd, dspd;
  softplusVD((vgs - vdseff - (s.vt - d.alphaPhit * ffd2)) / d.nphit, spd,
             dspd);
  ChargeState out;
  out.qD = d.qref * spd;
  const double detaDg =
      (1.0 - dvdseffg + d.alphaPhit * dffd2du * dudg) / d.nphit;
  const double detaDd =
      (d.delta - dvdseffd + d.alphaPhit * dffd2du * dudd) / d.nphit;
  out.dqDvg = d.qref * dspd * detaDg;
  out.dqDvd = d.qref * dspd * detaDd;
  return out;
}

/// The accepted internal solution finishLoad consumes: canonical frame,
/// terminal current, and the clamp flags of the internal bias.
struct SolveFrame {
  bool reversed = false;
  double cvgs = 0.0, cvds = 0.0;
  double i = 0.0;  ///< accepted terminal current [A]
  bool clampG = false, clampD = false;
};

/// External small-signal map + Ward-Dutton partition + polarity restore:
/// the shared tail of the scalar chain (evaluateLoadCard) and the banked
/// fast pipeline (VsLoadBank).  Pure arithmetic on the already-solved
/// states, so sharing it costs the fast path nothing and keeps the two
/// paths structurally identical after the transcendental stage.
MosfetLoadEvaluation finishLoad(const LoadCard& c, const SolveFrame& f,
                                const CurrentState& cur,
                                const ChargeState& chg) {
  const double rsOhm = c.rsOhm;
  const double rdOhm = c.rdOhm;
  const bool hasSeriesR = c.hasSeriesR;
  const bool reversed = f.reversed;
  const bool clampG = f.clampG;
  const bool clampD = f.clampD;
  const double cvgs = f.cvgs;
  const double cvds = f.cvds;
  const double i = f.i;

  // External small-signal map via the implicit function theorem.
  const double gmEff = clampG ? 0.0 : cur.gm;
  const double gdEff = clampD ? 0.0 : cur.gd;
  double digs, dids;      // di/dcvgs, di/dcvds
  double svgG, svgD;      // dvgsInt/dcvgs, dvgsInt/dcvds
  double svdG, svdD;      // dvdsInt/dcvgs, dvdsInt/dcvds
  if (hasSeriesR) {
    const double den = 1.0 + gmEff * rsOhm + gdEff * (rsOhm + rdOhm);
    digs = gmEff / den;
    dids = gdEff / den;
    svgG = clampG ? 0.0 : 1.0 - rsOhm * digs;
    svgD = clampG ? 0.0 : -rsOhm * dids;
    svdG = clampD ? 0.0 : -(rsOhm + rdOhm) * digs;
    svdD = clampD ? 0.0 : 1.0 - (rsOhm + rdOhm) * dids;
  } else {
    digs = gmEff;
    dids = gdEff;
    svgG = 1.0;
    svgD = 0.0;
    svdG = 0.0;
    svdD = 1.0;
  }

  // Areal charge sensitivities to the external canonical voltages.
  const double dqSg = cur.dqSvg * svgG + cur.dqSvd * svdG;
  const double dqSd = cur.dqSvg * svgD + cur.dqSvd * svdD;
  const double dqDg = chg.dqDvg * svgG + chg.dqDvd * svdG;
  const double dqDd = chg.dqDvg * svgD + chg.dqDvd * svdD;

  // Ward-Dutton partition + overlap, as in evaluateImpl.
  const double wl6 = c.wl6;
  const double qChanSrc = wl6 * (2.0 * cur.qS + chg.qD);
  const double qChanDrn = wl6 * (cur.qS + 2.0 * chg.qD);
  const double dqChanSrcG = wl6 * (2.0 * dqSg + dqDg);
  const double dqChanSrcD = wl6 * (2.0 * dqSd + dqDd);
  const double dqChanDrnG = wl6 * (dqSg + 2.0 * dqDg);
  const double dqChanDrnD = wl6 * (dqSd + 2.0 * dqDd);

  const double cov = c.cov;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * (cvgs - cvds);

  // Canonical-frame evaluation and derivatives.
  const double id = i;
  const double qg = qChanSrc + qChanDrn + qOvS + qOvD;
  const double qs = -qChanSrc - qOvS;
  const double qd = -qChanDrn - qOvD;
  const double dqgG = dqChanSrcG + dqChanDrnG + 2.0 * cov;
  const double dqgD = dqChanSrcD + dqChanDrnD - cov;
  const double dqsG = -dqChanSrcG - cov;
  const double dqsD = -dqChanSrcD;
  const double dqdG = -dqChanDrnG - cov;
  const double dqdD = -dqChanDrnD + cov;

  MosfetLoadEvaluation out;
  if (!reversed) {
    out.at.id = id;
    out.at.qg = qg;
    out.at.qs = qs;
    out.at.qd = qd;
    out.didVgs = digs;
    out.didVds = dids;
    out.dqgVgs = dqgG;
    out.dqgVds = dqgD;
    out.dqsVgs = dqsG;
    out.dqsVds = dqsD;
    out.dqdVgs = dqdG;
    out.dqdVds = dqdD;
  } else {
    // cvgs = vgs - vds, cvds = -vds: for any F(cvgs, cvds),
    // dF/dvgs = Fg and dF/dvds = -Fg - Fd.  The terminal current flips
    // sign and the source/drain charges swap.
    out.at.id = -id;
    out.at.qg = qg;
    out.at.qs = qd;  // swapped
    out.at.qd = qs;
    out.didVgs = -digs;
    out.didVds = digs + dids;
    out.dqgVgs = dqgG;
    out.dqgVds = -dqgG - dqgD;
    out.dqsVgs = dqdG;
    out.dqsVds = -dqdG - dqdD;
    out.dqdVgs = dqsG;
    out.dqdVds = -dqsG - dqsD;
  }
  return out;
}

MosfetLoadEvaluation evaluateLoadCard(const LoadCard& c, double vgs,
                                      double vds) {
  SolveFrame f;
  f.reversed = vds < 0.0;
  f.cvgs = f.reversed ? vgs - vds : vgs;
  f.cvds = f.reversed ? -vds : vds;

  const double rsOhm = c.rsOhm;
  const double rdOhm = c.rdOhm;

  // Resolve the series-resistance fixed point i = f(cvgs - i*Rs,
  // cvds - i*(Rs+Rd)) with a derivative-aware Newton: h'(i) =
  // -(gm*Rs + gd*(Rs+Rd)) - 1 is available analytically, so the iteration
  // is quadratic and typically lands in two or three evaluations.
  double i = 0.0;
  double vgsInt = f.cvgs;
  double vdsInt = f.cvds;
  CurrentState cur;
  bool curValid = false;
  if (c.hasSeriesR) {
    bool converged = false;
    for (int it = 0; it < 8; ++it) {
      vgsInt = f.cvgs - i * rsOhm;
      vdsInt = f.cvds - i * (rsOhm + rdOhm);
      f.clampG = vgsInt < -1.0;
      f.clampD = vdsInt < 0.0;
      if (f.clampG) vgsInt = -1.0;
      if (f.clampD) vdsInt = 0.0;
      cur = currentPart(c, vgsInt, vdsInt);
      const double h = cur.idW - i;
      if (std::fabs(h) < 1e-13 + 1e-6 * std::fabs(i)) {
        converged = true;
        break;
      }
      const double gmIt = f.clampG ? 0.0 : cur.gm;
      const double gdIt = f.clampD ? 0.0 : cur.gd;
      const double hp = -(gmIt * rsOhm + gdIt * (rsOhm + rdOhm)) - 1.0;
      i -= h / hp;
    }
    // Internal bias of the accepted current (refreshed in case the loop
    // exhausted its budget with a pending update).
    vgsInt = f.cvgs - i * rsOhm;
    vdsInt = f.cvds - i * (rsOhm + rdOhm);
    f.clampG = vgsInt < -1.0;
    f.clampD = vdsInt < 0.0;
    if (f.clampG) vgsInt = -1.0;
    if (f.clampD) vdsInt = 0.0;
    // On convergence the loop broke before updating i, so the refreshed
    // biases equal the ones the last currentPart ran at and its state is
    // reusable as-is; only an exhausted budget forces a recomputation.
    curValid = converged;
  }
  if (!curValid) cur = currentPart(c, vgsInt, vdsInt);

  // Charges (and their derivatives) at the internal solution.
  const ChargeState chg = chargePart(c, vgsInt, cur);
  f.i = c.hasSeriesR ? i : cur.idW;
  return finishLoad(c, f, cur, chg);
}

// --- fast-numerics banked pipeline -------------------------------------------
//
// NumericsMode::fast restructures the lane loop into a struct-of-arrays
// pipeline around the fused vector kernels of models/vs_fast_chain.hpp:
// card parameters live as pre-inverted SoA arrays (refreshed per rebind),
// each series-resistance Newton iteration evaluates the ENTIRE currentPart
// of every lane with one fused kernel call (4 lanes per vector block), and
// the charge block runs once on the accepted solution.  Everything outside
// the two kernel calls -- canonicalization, the per-lane Newton update,
// finishLoad -- is the scalar chain's own code.
//
// Numerics: the kernels' polynomial exp/log and the pre-inverted divisions
// put results within ~1e-9 relative of the reference chain (the bound
// tests/models/test_fast_numerics.cpp asserts), so the fast path is
// tolerance-checked, never bit-checked.  The reference tails (logistic
// hard 0/1 beyond +-34, softplus linear tail) are not special-cased: the
// kernels cover the full argument range smoothly and agree with the
// clamped tails to ~1e-15 absolute.  Results are deterministic for a given
// lane population -- kernel arithmetic depends only on lane values and
// block position, both fixed per bank -- so fast campaigns stay
// bit-identical across runs and thread counts on one host (the AVX2
// dispatch may round differently across CPU generations).

/// Per-bank SoA state for the fast pipeline: padded card parameters +
/// kernel in/out arrays.  Owned mutable by the bank (a bank belongs to one
/// session, which is single-threaded by contract -- parallel campaigns use
/// one session per worker).
struct FastState {
  std::size_t lanes = 0;
  std::size_t padded = 0;  ///< lanes rounded up to a vector multiple

  // All 31 SoA arrays live in one arena (one allocation per session, not
  // 31): 12 card-parameter arrays refreshed per rebind (divisions
  // pre-inverted), 2 bias inputs, 14 currentPart outputs, 3 chargePart
  // outputs.  The named pointers below index into it.
  std::vector<double> arena;
  double *vt0 = nullptr, *delta = nullptr, *alphaPhit = nullptr,
         *invAlphaPhit = nullptr, *invNphit = nullptr, *qref = nullptr,
         *vxo = nullptr, *vdsatStrong = nullptr, *phit = nullptr,
         *beta = nullptr, *invBeta = nullptr, *width = nullptr;
  double *vgsInt = nullptr, *vdsInt = nullptr;
  double *vt = nullptr, *vdsat = nullptr, *dvdsatg = nullptr,
         *dvdsatd = nullptr, *fsat = nullptr, *dfsatdr = nullptr,
         *drg = nullptr, *drd = nullptr, *idW = nullptr, *gm = nullptr,
         *gd = nullptr, *qS = nullptr, *dqSvg = nullptr, *dqSvd = nullptr;
  double *qD = nullptr, *dqDvg = nullptr, *dqDvd = nullptr;
  // Canonical frame + series-resistance iterate, per lane.
  std::vector<SolveFrame> frame;
  std::vector<std::uint8_t> settled;

  void resizeLanes(std::size_t n) {
    lanes = n;
    padded = (n + 3) & ~std::size_t{3};
    arena.assign(31 * padded, 0.0);
    double* p = arena.data();
    for (double** slot :
         {&vt0, &delta, &alphaPhit, &invAlphaPhit, &invNphit, &qref, &vxo,
          &vdsatStrong, &phit, &beta, &invBeta, &width, &vgsInt, &vdsInt,
          &vt, &vdsat, &dvdsatg, &dvdsatd, &fsat, &dfsatdr, &drg, &drd,
          &idW, &gm, &gd, &qS, &dqSvg, &dqSvd, &qD, &dqDvg, &dqDvd}) {
      *slot = p;
      p += padded;
    }
    frame.resize(n);
    settled.resize(n);
    // Benign pad lanes: every kernel operation on them must stay finite
    // (unity scales dodge the reciprocals; zero charge/velocity/width
    // makes their outputs inert).  Their results are never read.
    for (std::size_t i = n; i < padded; ++i) {
      alphaPhit[i] = 1.0;
      invAlphaPhit[i] = 1.0;
      invNphit[i] = 1.0;
      vdsatStrong[i] = 1.0;
      phit[i] = 1.0;
      beta[i] = 1.0;
      invBeta[i] = 1.0;
    }
  }

  void setCard(std::size_t i, const LoadCard& c) {
    vt0[i] = c.vt0;
    delta[i] = c.d.delta;
    alphaPhit[i] = c.d.alphaPhit;
    invAlphaPhit[i] = 1.0 / c.d.alphaPhit;
    invNphit[i] = 1.0 / c.d.nphit;
    qref[i] = c.d.qref;
    vxo[i] = c.d.vxo;
    vdsatStrong[i] = c.d.vdsatStrong;
    phit[i] = c.d.phit;
    beta[i] = c.beta;
    invBeta[i] = 1.0 / c.beta;
    width[i] = c.width;
  }

  [[nodiscard]] fastchain::CurrentIo currentIo() noexcept {
    fastchain::CurrentIo io;
    io.n = padded;
    io.vt0 = vt0;
    io.delta = delta;
    io.alphaPhit = alphaPhit;
    io.invAlphaPhit = invAlphaPhit;
    io.invNphit = invNphit;
    io.qref = qref;
    io.vxo = vxo;
    io.vdsatStrong = vdsatStrong;
    io.phit = phit;
    io.beta = beta;
    io.invBeta = invBeta;
    io.width = width;
    io.vgs = vgsInt;
    io.vds = vdsInt;
    io.vt = vt;
    io.vdsat = vdsat;
    io.dvdsatg = dvdsatg;
    io.dvdsatd = dvdsatd;
    io.fsat = fsat;
    io.dfsatdr = dfsatdr;
    io.drg = drg;
    io.drd = drd;
    io.idW = idW;
    io.gm = gm;
    io.gd = gd;
    io.qS = qS;
    io.dqSvg = dqSvg;
    io.dqSvd = dqSvd;
    return io;
  }

  [[nodiscard]] fastchain::ChargeIo chargeIo() noexcept {
    fastchain::ChargeIo io;
    io.n = padded;
    io.delta = delta;
    io.alphaPhit = alphaPhit;
    io.invAlphaPhit = invAlphaPhit;
    io.invNphit = invNphit;
    io.qref = qref;
    io.vgs = vgsInt;
    io.vt = vt;
    io.vdsat = vdsat;
    io.dvdsatg = dvdsatg;
    io.dvdsatd = dvdsatd;
    io.fsat = fsat;
    io.dfsatdr = dfsatdr;
    io.drg = drg;
    io.drd = drd;
    io.qD = qD;
    io.dqDvg = dqDvg;
    io.dqDvd = dqDvd;
    return io;
  }
};

/// Gathers each series-resistance lane's internal bias from its iterate
/// (non-series lanes stay pinned at the canonical bias, like the scalar
/// path, which never clamps them).
void gatherInternalBiases(const std::vector<LoadCard>& cards, FastState& s,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const LoadCard& c = cards[i];
    SolveFrame& f = s.frame[i];
    if (!c.hasSeriesR) continue;
    double vg = f.cvgs - f.i * c.rsOhm;
    double vd = f.cvds - f.i * (c.rsOhm + c.rdOhm);
    f.clampG = vg < -1.0;
    f.clampD = vd < 0.0;
    if (f.clampG) vg = -1.0;
    if (f.clampD) vd = 0.0;
    s.vgsInt[i] = vg;
    s.vdsInt[i] = vd;
  }
}

void evaluateLoadBatchFast(const std::vector<LoadCard>& cards, FastState& s,
                           std::span<const double> vgs,
                           std::span<const double> vds,
                           std::span<MosfetLoadEvaluation> out) {
  const std::size_t n = cards.size();
  const fastchain::CurrentIo curIo = s.currentIo();

  bool anySeriesR = false;
  for (std::size_t i = 0; i < n; ++i) {
    SolveFrame& f = s.frame[i];
    f.reversed = vds[i] < 0.0;
    f.cvgs = f.reversed ? vgs[i] - vds[i] : vgs[i];
    f.cvds = f.reversed ? -vds[i] : vds[i];
    f.i = 0.0;
    f.clampG = false;
    f.clampD = false;
    s.vgsInt[i] = f.cvgs;
    s.vdsInt[i] = f.cvds;
    s.settled[i] = cards[i].hasSeriesR ? 0 : 1;
    anySeriesR = anySeriesR || cards[i].hasSeriesR;
  }

  if (anySeriesR) {
    // Lockstep derivative-aware Newton on i = f(internal biases), same
    // 8-evaluation budget and convergence test as the scalar loop.  A lane
    // that converges keeps its iterate; re-evaluating it at the unchanged
    // bias while other lanes finish reproduces the same state, so no
    // per-lane masking of the batch is needed.
    gatherInternalBiases(cards, s, n);  // i = 0: clamp like scalar it 0
    bool pending = false;
    for (int it = 0; it < 8; ++it) {
      fastchain::currentBatch(curIo);
      pending = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (s.settled[i] != 0) continue;
        const LoadCard& c = cards[i];
        SolveFrame& f = s.frame[i];
        const double h = s.idW[i] - f.i;
        if (std::fabs(h) < 1e-13 + 1e-6 * std::fabs(f.i)) {
          s.settled[i] = 1;
          continue;
        }
        const double gmIt = f.clampG ? 0.0 : s.gm[i];
        const double gdIt = f.clampD ? 0.0 : s.gd[i];
        const double hp =
            -(gmIt * c.rsOhm + gdIt * (c.rsOhm + c.rdOhm)) - 1.0;
        f.i -= h / hp;
        pending = true;
      }
      if (!pending) break;
      gatherInternalBiases(cards, s, n);
    }
    if (pending) {
      // Budget exhausted with updates still in flight: accept the final
      // iterates and re-evaluate once at their biases (the scalar path's
      // post-loop refresh; gatherInternalBiases already ran on them).
      fastchain::currentBatch(curIo);
    }
  } else {
    fastchain::currentBatch(curIo);
  }

  for (std::size_t i = 0; i < n; ++i)
    if (!cards[i].hasSeriesR) s.frame[i].i = s.idW[i];

  fastchain::chargeBatch(s.chargeIo());
  for (std::size_t i = 0; i < n; ++i) {
    CurrentState cur;
    cur.vt = s.vt[i];
    cur.vdsat = s.vdsat[i];
    cur.dvdsatg = s.dvdsatg[i];
    cur.dvdsatd = s.dvdsatd[i];
    cur.fsat = s.fsat[i];
    cur.dfsatdr = s.dfsatdr[i];
    cur.drg = s.drg[i];
    cur.drd = s.drd[i];
    cur.idW = s.idW[i];
    cur.gm = s.gm[i];
    cur.gd = s.gd[i];
    cur.qS = s.qS[i];
    cur.dqSvg = s.dqSvg[i];
    cur.dqSvd = s.dqSvd[i];
    ChargeState chg;
    chg.qD = s.qD[i];
    chg.dqDvg = s.dqDvg[i];
    chg.dqDvd = s.dqDvd[i];
    out[i] = finishLoad(cards[i], s.frame[i], cur, chg);
  }
}

/// Struct-of-arrays lane block of the VS device bank: one cached LoadCard
/// per lane, refreshed on rebind, evaluated by a flat loop through the
/// shared analytic chain.  One bank evaluation performs zero virtual calls
/// and zero derive() work.  NumericsMode::reference runs the scalar chain
/// per lane (bit-identical to evaluateLoad); NumericsMode::fast runs the
/// batched SIMD pipeline above.
class VsLoadBank final : public MosfetLoadBank {
 public:
  VsLoadBank(std::vector<BankLane> laneRefs, NumericsMode mode)
      : MosfetLoadBank(std::move(laneRefs)), mode_(mode),
        cards_(laneCount()) {
    if (mode_ == NumericsMode::fast) fastState_.resizeLanes(laneCount());
    for (std::size_t i = 0; i < laneCount(); ++i) refresh(i);
  }

  [[nodiscard]] bool rebindLane(std::size_t laneIndex, const MosfetModel& card,
                                const DeviceGeometry& geometry) override {
    if (dynamic_cast<const VsModel*>(&card) == nullptr) return false;
    (void)MosfetLoadBank::rebindLane(laneIndex, card, geometry);
    refresh(laneIndex);
    return true;
  }

  [[nodiscard]] bool rebindUniform(const MosfetModel& card,
                                   const DeviceGeometry& geometry) override {
    const auto* vs = dynamic_cast<const VsModel*>(&card);
    if (vs == nullptr) return false;
    // Every lane shares one (card, geometry): derive once and broadcast.
    // Bit-identical to the rebindLane loop because the derived LoadCard is
    // a pure function of (params, geometry).
    const LoadCard derived = makeLoadCard(vs->params(), geometry);
    for (std::size_t i = 0; i < laneCount(); ++i) {
      (void)MosfetLoadBank::rebindLane(i, card, geometry);
      cards_[i] = derived;
      if (mode_ == NumericsMode::fast) fastState_.setCard(i, derived);
    }
    return true;
  }

  void evaluateLoadBatch(std::span<const double> vgs,
                         std::span<const double> vds, double /*fdStep*/,
                         std::span<MosfetLoadEvaluation> out) const override {
    if (mode_ == NumericsMode::fast) {
      evaluateLoadBatchFast(cards_, fastState_, vgs, vds, out);
      return;
    }
    for (std::size_t i = 0; i < cards_.size(); ++i)
      out[i] = evaluateLoadCard(cards_[i], vgs[i], vds[i]);
  }

 private:
  void refresh(std::size_t i) {
    const BankLane& l = lane(i);
    const auto* vs = dynamic_cast<const VsModel*>(l.card);
    require(vs != nullptr, "VsLoadBank: lane card is not a VsModel");
    cards_[i] = makeLoadCard(vs->params(), *l.geometry);
    if (mode_ == NumericsMode::fast) fastState_.setCard(i, cards_[i]);
  }

  NumericsMode mode_;
  std::vector<LoadCard> cards_;
  mutable FastState fastState_;  ///< fast-mode SoA state (single-session)
};

}  // namespace

VsModel::VsModel(VsParams params) : params_(params) {
  require(params_.cinv > 0.0 && params_.vxo > 0.0 && params_.mu > 0.0,
          "VsModel: cinv, vxo, mu must be positive");
  require(params_.beta > 0.0 && params_.n0 >= 1.0,
          "VsModel: beta > 0 and n0 >= 1 required");
}

std::unique_ptr<MosfetModel> VsModel::clone() const {
  return std::make_unique<VsModel>(*this);
}

bool VsModel::assignFrom(const MosfetModel& other) {
  const auto* o = dynamic_cast<const VsModel*>(&other);
  if (o == nullptr) return false;
  params_ = o->params_;
  return true;
}

std::unique_ptr<MosfetLoadBank> VsModel::makeLoadBank(
    std::vector<BankLane> lanes, NumericsMode mode) const {
  return std::make_unique<VsLoadBank>(std::move(lanes), mode);
}

double VsModel::inversionCharge(const DeviceGeometry& geom, double vgs,
                                double vds) const {
  const Derived d = derive(params_, geom);
  if (vds < 0.0) return intrinsic(params_, d, vgs - vds, -vds, true).qSrcAreal;
  return intrinsic(params_, d, vgs, vds, true).qSrcAreal;
}

double VsModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                             double vds) const {
  const Derived d = derive(params_, geom);
  if (params_.rs <= 0.0 && params_.rd <= 0.0) {
    if (vds < 0.0)
      return -intrinsic(params_, d, vgs - vds, -vds, false).idPerWidth *
             geom.width;
    return intrinsic(params_, d, vgs, vds, false).idPerWidth * geom.width;
  }
  if (vds < 0.0) {
    // Source/drain role reversal (device is symmetric).
    return -solveSeriesCurrent(params_, geom, d, vgs - vds, -vds, nullptr);
  }
  return solveSeriesCurrent(params_, geom, d, vgs, vds, nullptr);
}

MosfetEvaluation VsModel::evaluate(const DeviceGeometry& geom, double vgs,
                                   double vds) const {
  return evaluateImpl(params_, geom, derive(params_, geom), vgs, vds, nullptr,
                      false);
}

MosfetLoadEvaluation VsModel::evaluateLoad(const DeviceGeometry& geom,
                                           double vgs, double vds,
                                           double /*fdStep*/) const {
  return evaluateLoadCard(makeLoadCard(params_, geom), vgs, vds);
}

MosfetDerivEvaluation VsModel::evaluateForNewton(const DeviceGeometry& geom,
                                                 double vgs, double vds,
                                                 double step) const {
  const Derived d = derive(params_, geom);
  const bool baseReversed = vds < 0.0;

  MosfetDerivEvaluation out;
  double warm = 0.0;
  out.base = evaluateImpl(params_, geom, d, vgs, vds, &warm, false);
  // The finite-difference points sit 1 mV from the base bias, so the base
  // current is an excellent secant seed -- as long as the polarity
  // canonicalization did not flip between the two points.
  out.gateStep = evaluateImpl(params_, geom, d, vgs + step, vds, &warm,
                              /*useWarm=*/true);
  const bool drainReversed = (vds + step) < 0.0;
  double warmDrain = warm;
  out.drainStep = evaluateImpl(params_, geom, d, vgs, vds + step, &warmDrain,
                               /*useWarm=*/drainReversed == baseReversed);
  return out;
}

}  // namespace vsstat::models
