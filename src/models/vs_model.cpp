#include "models/vs_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

VsModel::VsModel(VsParams params) : params_(params) {
  require(params_.cinv > 0.0 && params_.vxo > 0.0 && params_.mu > 0.0,
          "VsModel: cinv, vxo, mu must be positive");
  require(params_.beta > 0.0 && params_.n0 >= 1.0,
          "VsModel: beta > 0 and n0 >= 1 required");
}

std::unique_ptr<MosfetModel> VsModel::clone() const {
  return std::make_unique<VsModel>(*this);
}

VsModel::Intrinsic VsModel::intrinsic(const DeviceGeometry& geom, double vgs,
                                      double vds) const {
  const VsParams& p = params_;
  const double phit = units::thermalVoltage(p.temperatureK);
  const double leff = geom.length;

  const double delta = p.diblAt(leff);
  const double vxo = p.vxoAt(leff);
  const double nphit = p.n0 * phit;

  // Threshold with DIBL (paper Eq. 4).
  const double vt = p.vt0 - delta * vds;

  // Weak/strong inversion transition function FF and the blended Vt shift
  // (MVS formulation): in weak inversion the effective threshold lowers by
  // alpha*phit.
  const double ff = logistic((vgs - (vt - p.alpha * phit / 2.0)) /
                             (p.alpha * phit));
  const double eta = (vgs - (vt - p.alpha * phit * ff)) / nphit;

  // Virtual-source inversion charge (paper's Qixo).
  const double qref = p.cinv * nphit;
  const double qix = qref * softplus(eta);

  // Saturation voltage: strong-inversion value vxo*L/mu blended toward phit
  // in weak inversion.
  const double vdsatStrong = vxo * leff / p.mu;
  const double vdsat = vdsatStrong * (1.0 - ff) + phit * ff;

  // Fsat (paper Eq. 3).
  const double ratio = vds / vdsat;
  const double fsat = ratio / std::pow(1.0 + std::pow(ratio, p.beta),
                                       1.0 / p.beta);

  Intrinsic out;
  out.idPerWidth = qix * vxo * fsat;
  out.qSrcAreal = qix;

  // Drain-end charge at the smoothed internal drain voltage
  // Vdseff = Vdsat * Fsat (equals Vds in the linear region, clamps to ~Vdsat
  // in saturation), keeping the charge model continuous everywhere.
  const double vdseff = vdsat * fsat;
  const double ffd = logistic((vgs - vdseff - (vt - p.alpha * phit / 2.0)) /
                              (p.alpha * phit));
  const double etaD = (vgs - vdseff - (vt - p.alpha * phit * ffd)) / nphit;
  out.qDrnAreal = qref * softplus(etaD);
  return out;
}

VsModel::Intrinsic VsModel::solveWithSeriesR(const DeviceGeometry& geom,
                                             double vgs, double vds) const {
  const VsParams& p = params_;
  if (p.rs <= 0.0 && p.rd <= 0.0) return intrinsic(geom, vgs, vds);

  // Per-instance resistances: cards carry R*W [Ohm m].
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;

  // Solve h(i) = f(i) - i = 0, where f maps a trial current to the model
  // current at the post-IR internal voltages.  The IR drop is a small
  // fraction of the bias (|f'| ~ gm*Rs ~ 0.1), so a secant iteration
  // converges in two or three evaluations -- this is the evaluation hot
  // path for every Newton load in circuit simulation.
  const auto evalAt = [&](double i) {
    const double vgsInt = vgs - i * rsOhm;
    const double vdsInt = vds - i * (rsOhm + rdOhm);
    return intrinsic(geom, std::max(vgsInt, -1.0), std::max(vdsInt, 0.0));
  };

  double i0 = 0.0;
  Intrinsic result = evalAt(i0);
  double h0 = result.idPerWidth * geom.width - i0;  // = f(0)
  double i1 = h0;                                   // start at f(0)
  for (int it = 0; it < 6; ++it) {
    result = evalAt(i1);
    const double h1 = result.idPerWidth * geom.width - i1;
    if (std::fabs(h1) < 1e-13 + 1e-6 * std::fabs(i1)) {
      i0 = i1;
      break;
    }
    const double denom = h1 - h0;
    double iNext;
    if (std::fabs(denom) > 1e-300) {
      iNext = i1 - h1 * (i1 - i0) / denom;
    } else {
      iNext = i1 + h1;  // degenerate secant: plain fixed-point step
    }
    i0 = i1;
    h0 = h1;
    i1 = iNext;
  }
  result.idPerWidth = i1 / geom.width;
  return result;
}

double VsModel::inversionCharge(const DeviceGeometry& geom, double vgs,
                                double vds) const {
  if (vds < 0.0) return intrinsic(geom, vgs - vds, -vds).qSrcAreal;
  return intrinsic(geom, vgs, vds).qSrcAreal;
}

double VsModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                             double vds) const {
  if (vds < 0.0) {
    // Source/drain role reversal (device is symmetric).
    return -solveWithSeriesR(geom, vgs - vds, -vds).idPerWidth * geom.width;
  }
  return solveWithSeriesR(geom, vgs, vds).idPerWidth * geom.width;
}

MosfetEvaluation VsModel::evaluate(const DeviceGeometry& geom, double vgs,
                                   double vds) const {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const Intrinsic in = solveWithSeriesR(geom, cvgs, cvds);

  const double w = geom.width;
  const double l = geom.length;

  // Ward-Dutton partition of a linear charge profile between the source-end
  // and drain-end densities.  Channel charge is electrons (negative) mirrored
  // by positive gate charge.
  const double qChanSrc = w * l * (2.0 * in.qSrcAreal + in.qDrnAreal) / 6.0;
  const double qChanDrn = w * l * (in.qSrcAreal + 2.0 * in.qDrnAreal) / 6.0;

  // Overlap/fringe parasitics (linear, per gate edge).
  const double cov = params_.cof * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = in.idPerWidth * w;
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

}  // namespace vsstat::models
