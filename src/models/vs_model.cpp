#include "models/vs_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace vsstat::models {

namespace {

/// logistic(x) = 1/(1+e^x) with its x-derivative, consistent with the
/// clamped tails of models::logistic (derivative 0 where the value clamps).
inline void logisticVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = 0.0;
    dv = 0.0;
    return;
  }
  if (x < -34.0) {
    v = 1.0;
    dv = 0.0;
    return;
  }
  const double e = std::exp(x);
  v = 1.0 / (1.0 + e);
  dv = -e * v * v;
}

/// softplus(x) = ln(1+e^x) with its x-derivative, matching models::softplus
/// bit-for-bit in the value.
inline void softplusVD(double x, double& v, double& dv) noexcept {
  if (x > 34.0) {
    v = x;
    dv = 1.0;
    return;
  }
  if (x < -34.0) {
    v = std::exp(x);
    dv = v;
    return;
  }
  const double e = std::exp(x);
  v = std::log1p(e);
  dv = e / (1.0 + e);
}

// --- model equations ---------------------------------------------------------
//
// Free functions of (params, geometry, bias): one arithmetic chain serves
// the card-owning VsModel adapter, the scalar Newton-load entry point, and
// the banked lane loop.

/// Bias-independent values derived from (params, geometry).  Computed once
/// per evaluation chain and shared across every intrinsic call of the
/// series-resistance loop and the Newton finite-difference points.
struct Derived {
  double phit = 0.0;          ///< thermal voltage
  double delta = 0.0;         ///< DIBL coefficient at Leff
  double vxo = 0.0;           ///< injection velocity at Leff
  double nphit = 0.0;         ///< n0 * phit
  double alphaPhit = 0.0;     ///< alpha * phit
  double qref = 0.0;          ///< cinv * nphit
  double vdsatStrong = 0.0;   ///< vxo * Leff / mu
};

Derived derive(const VsParams& p, const DeviceGeometry& geom) noexcept {
  Derived d;
  d.phit = units::thermalVoltage(p.temperatureK);
  d.delta = p.diblAt(geom.length);
  d.vxo = p.vxoAt(geom.length);
  d.nphit = p.n0 * d.phit;
  d.alphaPhit = p.alpha * d.phit;
  d.qref = p.cinv * d.nphit;
  d.vdsatStrong = d.vxo * geom.length / p.mu;
  return d;
}

/// Core intrinsic solution at internal (post-Rs/Rd) voltages.
struct Intrinsic {
  double idPerWidth = 0.0;  ///< A/m, positive for canonical vds >= 0
  double qSrcAreal = 0.0;   ///< source-end channel charge [C/m^2]
  double qDrnAreal = 0.0;   ///< drain-end channel charge [C/m^2]
};

/// Intrinsic model at internal (post-Rs/Rd) voltages.  The drain-end
/// charge block is only computed when `withCharges` is set: the
/// series-resistance secant needs the current alone.
Intrinsic intrinsic(const VsParams& p, const Derived& d, double vgs,
                    double vds, bool withCharges) {
  // Threshold with DIBL (paper Eq. 4).
  const double vt = p.vt0 - d.delta * vds;

  // Weak/strong inversion transition function FF and the blended Vt shift
  // (MVS formulation): in weak inversion the effective threshold lowers by
  // alpha*phit.
  const double ff = logistic((vgs - (vt - d.alphaPhit / 2.0)) / d.alphaPhit);
  const double eta = (vgs - (vt - d.alphaPhit * ff)) / d.nphit;

  // Virtual-source inversion charge (paper's Qixo).
  const double qix = d.qref * softplus(eta);

  // Saturation voltage: strong-inversion value vxo*L/mu blended toward phit
  // in weak inversion.
  const double vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;

  // Fsat (paper Eq. 3).
  const double ratio = vds / vdsat;
  const double fsat = ratio / std::pow(1.0 + std::pow(ratio, p.beta),
                                       1.0 / p.beta);

  Intrinsic out;
  out.idPerWidth = qix * d.vxo * fsat;
  out.qSrcAreal = qix;
  if (!withCharges) return out;

  // Drain-end charge at the smoothed internal drain voltage
  // Vdseff = Vdsat * Fsat (equals Vds in the linear region, clamps to ~Vdsat
  // in saturation), keeping the charge model continuous everywhere.
  const double vdseff = vdsat * fsat;
  const double ffd = logistic((vgs - vdseff - (vt - d.alphaPhit / 2.0)) /
                              d.alphaPhit);
  const double etaD = (vgs - vdseff - (vt - d.alphaPhit * ffd)) / d.nphit;
  out.qDrnAreal = d.qref * softplus(etaD);
  return out;
}

double solveSeriesCurrent(const VsParams& p, const DeviceGeometry& geom,
                          const Derived& d, double vgs, double vds,
                          const double* warmStart) {
  // Per-instance resistances: cards carry R*W [Ohm m].
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;

  // Solve h(i) = f(i) - i = 0, where f maps a trial current to the model
  // current at the post-IR internal voltages.  The IR drop is a small
  // fraction of the bias (|f'| ~ gm*Rs ~ 0.1), so a secant iteration
  // converges in two or three evaluations -- this is the evaluation hot
  // path for every Newton load in circuit simulation.  Only the current is
  // evaluated here; charges are filled in once at the solution.
  const auto evalCurrent = [&](double i) {
    const double vgsInt = vgs - i * rsOhm;
    const double vdsInt = vds - i * (rsOhm + rdOhm);
    return intrinsic(p, d, std::max(vgsInt, -1.0), std::max(vdsInt, 0.0),
                     /*withCharges=*/false)
               .idPerWidth *
           geom.width;
  };

  double i0, h0, i1;
  if (warmStart != nullptr) {
    // A nearby bias was just solved (Newton finite-difference point): start
    // the secant from its current, which lands within one or two updates.
    i0 = *warmStart;
    h0 = evalCurrent(i0) - i0;
    i1 = i0 + h0;
  } else {
    i0 = 0.0;
    h0 = evalCurrent(0.0);  // = f(0)
    i1 = h0;                // start at f(0)
  }
  for (int it = 0; it < 6; ++it) {
    const double h1 = evalCurrent(i1) - i1;
    if (std::fabs(h1) < 1e-13 + 1e-6 * std::fabs(i1)) break;
    const double denom = h1 - h0;
    double iNext;
    if (std::fabs(denom) > 1e-300) {
      iNext = i1 - h1 * (i1 - i0) / denom;
    } else {
      iNext = i1 + h1;  // degenerate secant: plain fixed-point step
    }
    i0 = i1;
    h0 = h1;
    i1 = iNext;
  }
  return i1;
}

/// Full intrinsic solution with the IR drop resolved.
Intrinsic solveWithSeriesR(const VsParams& p, const DeviceGeometry& geom,
                           const Derived& d, double vgs, double vds,
                           const double* warmStart) {
  if (p.rs <= 0.0 && p.rd <= 0.0)
    return intrinsic(p, d, vgs, vds, /*withCharges=*/true);

  const double i1 = solveSeriesCurrent(p, geom, d, vgs, vds, warmStart);
  const double rsOhm = p.rs / geom.width;
  const double rdOhm = p.rd / geom.width;
  const double vgsInt = vgs - i1 * rsOhm;
  const double vdsInt = vds - i1 * (rsOhm + rdOhm);
  Intrinsic result = intrinsic(p, d, std::max(vgsInt, -1.0),
                               std::max(vdsInt, 0.0), /*withCharges=*/true);
  result.idPerWidth = i1 / geom.width;
  return result;
}

/// Canonicalization + Ward-Dutton partition shared by evaluate() and
/// evaluateForNewton().  `warmCurrent` (if non-null) carries the previous
/// nearby solve's canonical current in, and the present one out.
MosfetEvaluation evaluateImpl(const VsParams& p, const DeviceGeometry& geom,
                              const Derived& d, double vgs, double vds,
                              double* warmCurrent, bool useWarm) {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const double* warm = useWarm ? warmCurrent : nullptr;
  const Intrinsic in = solveWithSeriesR(p, geom, d, cvgs, cvds, warm);
  if (warmCurrent != nullptr) *warmCurrent = in.idPerWidth * geom.width;

  const double w = geom.width;
  const double l = geom.length;

  // Ward-Dutton partition of a linear charge profile between the source-end
  // and drain-end densities.  Channel charge is electrons (negative) mirrored
  // by positive gate charge.
  const double qChanSrc = w * l * (2.0 * in.qSrcAreal + in.qDrnAreal) / 6.0;
  const double qChanDrn = w * l * (in.qSrcAreal + 2.0 * in.qDrnAreal) / 6.0;

  // Overlap/fringe parasitics (linear, per gate edge).
  const double cov = p.cof * w;
  const double vgd = cvgs - cvds;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * vgd;

  MosfetEvaluation eval;
  eval.id = in.idPerWidth * w;
  eval.qg = qChanSrc + qChanDrn + qOvS + qOvD;
  eval.qs = -qChanSrc - qOvS;
  eval.qd = -qChanDrn - qOvD;

  if (reversed) {
    eval.id = -eval.id;
    std::swap(eval.qs, eval.qd);
  }
  return eval;
}

// --- Newton-load chain (scalar entry point + banked lane loop) ---------------

/// Everything the analytic Newton-load chain reads, hoisted out of the
/// bias-dependent arithmetic: parameter-card scalars, the per-geometry
/// Derived block, pre-divided series resistances, and the charge
/// prefactors.  Built per call on the scalar path; cached per lane (and
/// refreshed per rebind) by the device bank -- every field is the same
/// double the scalar path computes, so caching does not change bits.
struct LoadCard {
  double vt0 = 0.0;
  double beta = 0.0;
  Derived d;
  double rsOhm = 0.0;
  double rdOhm = 0.0;
  bool hasSeriesR = false;
  double cov = 0.0;    ///< cof * W
  double width = 0.0;
  double wl6 = 0.0;    ///< W * L / 6
};

LoadCard makeLoadCard(const VsParams& p, const DeviceGeometry& geom) noexcept {
  LoadCard c;
  c.vt0 = p.vt0;
  c.beta = p.beta;
  c.d = derive(p, geom);
  c.rsOhm = p.rs > 0.0 ? p.rs / geom.width : 0.0;
  c.rdOhm = p.rd > 0.0 ? p.rd / geom.width : 0.0;
  c.hasSeriesR = c.rsOhm > 0.0 || c.rdOhm > 0.0;
  c.cov = p.cof * geom.width;
  c.width = geom.width;
  c.wl6 = geom.width * geom.length / 6.0;
  return c;
}

/// Intrinsic current + source-end charge with the full analytic derivative
/// chain (w.r.t. the internal canonical voltages), plus every intermediate
/// the drain-end charge block consumes.  Splitting the chain here lets the
/// series-resistance loop's final iteration be reused for the charge pass
/// instead of recomputed -- the saved intermediates are bitwise the values
/// a recomputation at the same bias would produce.
struct CurrentState {
  double vt = 0.0;
  double vdsat = 0.0, dvdsatg = 0.0, dvdsatd = 0.0;
  double fsat = 0.0, dfsatdr = 0.0;
  double drg = 0.0, drd = 0.0;
  double idW = 0.0;  ///< drain current [A] (width-scaled)
  double gm = 0.0;   ///< d(idW)/dvgs [S]
  double gd = 0.0;   ///< d(idW)/dvds [S]
  double qS = 0.0;   ///< source-end areal charge [C/m^2]
  double dqSvg = 0.0, dqSvd = 0.0;
};

CurrentState currentPart(const LoadCard& c, double vgs, double vds) {
  const Derived& d = c.d;

  // Same expressions as intrinsic(), with every chain-rule factor closed in
  // plain arithmetic: the logistic/softplus derivatives reuse the already
  // computed exponentials, and dFsat/dr = 1/((1+r^beta) * (1+r^beta)^(1/beta))
  // reuses the powers, so derivatives cost no extra transcendentals.
  CurrentState s;
  s.vt = c.vt0 - d.delta * vds;

  double ff, dffdu;
  logisticVD((vgs - (s.vt - d.alphaPhit / 2.0)) / d.alphaPhit, ff, dffdu);
  const double dffg = dffdu / d.alphaPhit;            // dff/dvgs
  const double dffd = dffdu * d.delta / d.alphaPhit;  // dff/dvds

  double sp, dsp;
  softplusVD((vgs - (s.vt - d.alphaPhit * ff)) / d.nphit, sp, dsp);
  const double qix = d.qref * sp;
  const double detag = (1.0 + d.alphaPhit * dffg) / d.nphit;
  const double detad = (d.delta + d.alphaPhit * dffd) / d.nphit;
  const double dqixg = d.qref * dsp * detag;
  const double dqixd = d.qref * dsp * detad;

  s.vdsat = d.vdsatStrong * (1.0 - ff) + d.phit * ff;
  s.dvdsatg = (d.phit - d.vdsatStrong) * dffg;
  s.dvdsatd = (d.phit - d.vdsatStrong) * dffd;

  const double ratio = vds / s.vdsat;
  s.drg = -(ratio / s.vdsat) * s.dvdsatg;
  s.drd = 1.0 / s.vdsat - (ratio / s.vdsat) * s.dvdsatd;

  const double t = std::pow(ratio, c.beta);
  const double sPow = std::pow(1.0 + t, 1.0 / c.beta);
  s.fsat = ratio / sPow;
  s.dfsatdr = 1.0 / ((1.0 + t) * sPow);

  s.idW = qix * d.vxo * s.fsat * c.width;
  s.gm = d.vxo * (dqixg * s.fsat + qix * s.dfsatdr * s.drg) * c.width;
  s.gd = d.vxo * (dqixd * s.fsat + qix * s.dfsatdr * s.drd) * c.width;
  s.qS = qix;
  s.dqSvg = dqixg;
  s.dqSvd = dqixd;
  return s;
}

struct ChargeState {
  double qD = 0.0;  ///< drain-end areal charge [C/m^2]
  double dqDvg = 0.0, dqDvd = 0.0;
};

ChargeState chargePart(const LoadCard& c, double vgs, const CurrentState& s) {
  const Derived& d = c.d;

  const double vdseff = s.vdsat * s.fsat;
  const double dvdseffg = s.dvdsatg * s.fsat + s.vdsat * s.dfsatdr * s.drg;
  const double dvdseffd = s.dvdsatd * s.fsat + s.vdsat * s.dfsatdr * s.drd;

  double ffd2, dffd2du;
  logisticVD((vgs - vdseff - (s.vt - d.alphaPhit / 2.0)) / d.alphaPhit, ffd2,
             dffd2du);
  const double dudg = (1.0 - dvdseffg) / d.alphaPhit;
  const double dudd = (d.delta - dvdseffd) / d.alphaPhit;

  double spd, dspd;
  softplusVD((vgs - vdseff - (s.vt - d.alphaPhit * ffd2)) / d.nphit, spd,
             dspd);
  ChargeState out;
  out.qD = d.qref * spd;
  const double detaDg =
      (1.0 - dvdseffg + d.alphaPhit * dffd2du * dudg) / d.nphit;
  const double detaDd =
      (d.delta - dvdseffd + d.alphaPhit * dffd2du * dudd) / d.nphit;
  out.dqDvg = d.qref * dspd * detaDg;
  out.dqDvd = d.qref * dspd * detaDd;
  return out;
}

MosfetLoadEvaluation evaluateLoadCard(const LoadCard& c, double vgs,
                                      double vds) {
  const bool reversed = vds < 0.0;
  const double cvgs = reversed ? vgs - vds : vgs;
  const double cvds = reversed ? -vds : vds;

  const double rsOhm = c.rsOhm;
  const double rdOhm = c.rdOhm;
  const bool hasSeriesR = c.hasSeriesR;

  // Resolve the series-resistance fixed point i = f(cvgs - i*Rs,
  // cvds - i*(Rs+Rd)) with a derivative-aware Newton: h'(i) =
  // -(gm*Rs + gd*(Rs+Rd)) - 1 is available analytically, so the iteration
  // is quadratic and typically lands in two or three evaluations.
  double i = 0.0;
  double vgsInt = cvgs;
  double vdsInt = cvds;
  bool clampG = false;
  bool clampD = false;
  CurrentState cur;
  bool curValid = false;
  if (hasSeriesR) {
    bool converged = false;
    for (int it = 0; it < 8; ++it) {
      vgsInt = cvgs - i * rsOhm;
      vdsInt = cvds - i * (rsOhm + rdOhm);
      clampG = vgsInt < -1.0;
      clampD = vdsInt < 0.0;
      if (clampG) vgsInt = -1.0;
      if (clampD) vdsInt = 0.0;
      cur = currentPart(c, vgsInt, vdsInt);
      const double h = cur.idW - i;
      if (std::fabs(h) < 1e-13 + 1e-6 * std::fabs(i)) {
        converged = true;
        break;
      }
      const double gmIt = clampG ? 0.0 : cur.gm;
      const double gdIt = clampD ? 0.0 : cur.gd;
      const double hp = -(gmIt * rsOhm + gdIt * (rsOhm + rdOhm)) - 1.0;
      i -= h / hp;
    }
    // Internal bias of the accepted current (refreshed in case the loop
    // exhausted its budget with a pending update).
    vgsInt = cvgs - i * rsOhm;
    vdsInt = cvds - i * (rsOhm + rdOhm);
    clampG = vgsInt < -1.0;
    clampD = vdsInt < 0.0;
    if (clampG) vgsInt = -1.0;
    if (clampD) vdsInt = 0.0;
    // On convergence the loop broke before updating i, so the refreshed
    // biases equal the ones the last currentPart ran at and its state is
    // reusable as-is; only an exhausted budget forces a recomputation.
    curValid = converged;
  }
  if (!curValid) cur = currentPart(c, vgsInt, vdsInt);

  // Charges (and their derivatives) at the internal solution.
  const ChargeState chg = chargePart(c, vgsInt, cur);
  if (!hasSeriesR) i = cur.idW;

  // External small-signal map via the implicit function theorem.
  const double gmEff = clampG ? 0.0 : cur.gm;
  const double gdEff = clampD ? 0.0 : cur.gd;
  double digs, dids;      // di/dcvgs, di/dcvds
  double svgG, svgD;      // dvgsInt/dcvgs, dvgsInt/dcvds
  double svdG, svdD;      // dvdsInt/dcvgs, dvdsInt/dcvds
  if (hasSeriesR) {
    const double den = 1.0 + gmEff * rsOhm + gdEff * (rsOhm + rdOhm);
    digs = gmEff / den;
    dids = gdEff / den;
    svgG = clampG ? 0.0 : 1.0 - rsOhm * digs;
    svgD = clampG ? 0.0 : -rsOhm * dids;
    svdG = clampD ? 0.0 : -(rsOhm + rdOhm) * digs;
    svdD = clampD ? 0.0 : 1.0 - (rsOhm + rdOhm) * dids;
  } else {
    digs = gmEff;
    dids = gdEff;
    svgG = 1.0;
    svgD = 0.0;
    svdG = 0.0;
    svdD = 1.0;
  }

  // Areal charge sensitivities to the external canonical voltages.
  const double dqSg = cur.dqSvg * svgG + cur.dqSvd * svdG;
  const double dqSd = cur.dqSvg * svgD + cur.dqSvd * svdD;
  const double dqDg = chg.dqDvg * svgG + chg.dqDvd * svdG;
  const double dqDd = chg.dqDvg * svgD + chg.dqDvd * svdD;

  // Ward-Dutton partition + overlap, as in evaluateImpl.
  const double wl6 = c.wl6;
  const double qChanSrc = wl6 * (2.0 * cur.qS + chg.qD);
  const double qChanDrn = wl6 * (cur.qS + 2.0 * chg.qD);
  const double dqChanSrcG = wl6 * (2.0 * dqSg + dqDg);
  const double dqChanSrcD = wl6 * (2.0 * dqSd + dqDd);
  const double dqChanDrnG = wl6 * (dqSg + 2.0 * dqDg);
  const double dqChanDrnD = wl6 * (dqSd + 2.0 * dqDd);

  const double cov = c.cov;
  const double qOvS = cov * cvgs;
  const double qOvD = cov * (cvgs - cvds);

  // Canonical-frame evaluation and derivatives.
  const double id = i;
  const double qg = qChanSrc + qChanDrn + qOvS + qOvD;
  const double qs = -qChanSrc - qOvS;
  const double qd = -qChanDrn - qOvD;
  const double dqgG = dqChanSrcG + dqChanDrnG + 2.0 * cov;
  const double dqgD = dqChanSrcD + dqChanDrnD - cov;
  const double dqsG = -dqChanSrcG - cov;
  const double dqsD = -dqChanSrcD;
  const double dqdG = -dqChanDrnG - cov;
  const double dqdD = -dqChanDrnD + cov;

  MosfetLoadEvaluation out;
  if (!reversed) {
    out.at.id = id;
    out.at.qg = qg;
    out.at.qs = qs;
    out.at.qd = qd;
    out.didVgs = digs;
    out.didVds = dids;
    out.dqgVgs = dqgG;
    out.dqgVds = dqgD;
    out.dqsVgs = dqsG;
    out.dqsVds = dqsD;
    out.dqdVgs = dqdG;
    out.dqdVds = dqdD;
  } else {
    // cvgs = vgs - vds, cvds = -vds: for any F(cvgs, cvds),
    // dF/dvgs = Fg and dF/dvds = -Fg - Fd.  The terminal current flips
    // sign and the source/drain charges swap.
    out.at.id = -id;
    out.at.qg = qg;
    out.at.qs = qd;  // swapped
    out.at.qd = qs;
    out.didVgs = -digs;
    out.didVds = digs + dids;
    out.dqgVgs = dqgG;
    out.dqgVds = -dqgG - dqgD;
    out.dqsVgs = dqdG;
    out.dqsVds = -dqdG - dqdD;
    out.dqdVgs = dqsG;
    out.dqdVds = -dqsG - dqsD;
  }
  return out;
}

/// Struct-of-arrays lane block of the VS device bank: one cached LoadCard
/// per lane, refreshed on rebind, evaluated by a flat loop through the
/// shared analytic chain.  One bank evaluation performs zero virtual calls
/// and zero derive() work.
class VsLoadBank final : public MosfetLoadBank {
 public:
  explicit VsLoadBank(std::vector<BankLane> laneRefs)
      : MosfetLoadBank(std::move(laneRefs)), cards_(laneCount()) {
    for (std::size_t i = 0; i < laneCount(); ++i) refresh(i);
  }

  [[nodiscard]] bool rebindLane(std::size_t laneIndex, const MosfetModel& card,
                                const DeviceGeometry& geometry) override {
    if (dynamic_cast<const VsModel*>(&card) == nullptr) return false;
    (void)MosfetLoadBank::rebindLane(laneIndex, card, geometry);
    refresh(laneIndex);
    return true;
  }

  void evaluateLoadBatch(std::span<const double> vgs,
                         std::span<const double> vds, double /*fdStep*/,
                         std::span<MosfetLoadEvaluation> out) const override {
    for (std::size_t i = 0; i < cards_.size(); ++i)
      out[i] = evaluateLoadCard(cards_[i], vgs[i], vds[i]);
  }

 private:
  void refresh(std::size_t i) {
    const BankLane& l = lane(i);
    const auto* vs = dynamic_cast<const VsModel*>(l.card);
    require(vs != nullptr, "VsLoadBank: lane card is not a VsModel");
    cards_[i] = makeLoadCard(vs->params(), *l.geometry);
  }

  std::vector<LoadCard> cards_;
};

}  // namespace

VsModel::VsModel(VsParams params) : params_(params) {
  require(params_.cinv > 0.0 && params_.vxo > 0.0 && params_.mu > 0.0,
          "VsModel: cinv, vxo, mu must be positive");
  require(params_.beta > 0.0 && params_.n0 >= 1.0,
          "VsModel: beta > 0 and n0 >= 1 required");
}

std::unique_ptr<MosfetModel> VsModel::clone() const {
  return std::make_unique<VsModel>(*this);
}

bool VsModel::assignFrom(const MosfetModel& other) {
  const auto* o = dynamic_cast<const VsModel*>(&other);
  if (o == nullptr) return false;
  params_ = o->params_;
  return true;
}

std::unique_ptr<MosfetLoadBank> VsModel::makeLoadBank(
    std::vector<BankLane> lanes) const {
  return std::make_unique<VsLoadBank>(std::move(lanes));
}

double VsModel::inversionCharge(const DeviceGeometry& geom, double vgs,
                                double vds) const {
  const Derived d = derive(params_, geom);
  if (vds < 0.0) return intrinsic(params_, d, vgs - vds, -vds, true).qSrcAreal;
  return intrinsic(params_, d, vgs, vds, true).qSrcAreal;
}

double VsModel::drainCurrent(const DeviceGeometry& geom, double vgs,
                             double vds) const {
  const Derived d = derive(params_, geom);
  if (params_.rs <= 0.0 && params_.rd <= 0.0) {
    if (vds < 0.0)
      return -intrinsic(params_, d, vgs - vds, -vds, false).idPerWidth *
             geom.width;
    return intrinsic(params_, d, vgs, vds, false).idPerWidth * geom.width;
  }
  if (vds < 0.0) {
    // Source/drain role reversal (device is symmetric).
    return -solveSeriesCurrent(params_, geom, d, vgs - vds, -vds, nullptr);
  }
  return solveSeriesCurrent(params_, geom, d, vgs, vds, nullptr);
}

MosfetEvaluation VsModel::evaluate(const DeviceGeometry& geom, double vgs,
                                   double vds) const {
  return evaluateImpl(params_, geom, derive(params_, geom), vgs, vds, nullptr,
                      false);
}

MosfetLoadEvaluation VsModel::evaluateLoad(const DeviceGeometry& geom,
                                           double vgs, double vds,
                                           double /*fdStep*/) const {
  return evaluateLoadCard(makeLoadCard(params_, geom), vgs, vds);
}

MosfetDerivEvaluation VsModel::evaluateForNewton(const DeviceGeometry& geom,
                                                 double vgs, double vds,
                                                 double step) const {
  const Derived d = derive(params_, geom);
  const bool baseReversed = vds < 0.0;

  MosfetDerivEvaluation out;
  double warm = 0.0;
  out.base = evaluateImpl(params_, geom, d, vgs, vds, &warm, false);
  // The finite-difference points sit 1 mV from the base bias, so the base
  // current is an excellent secant seed -- as long as the polarity
  // canonicalization did not flip between the two points.
  out.gateStep = evaluateImpl(params_, geom, d, vgs + step, vds, &warm,
                              /*useWarm=*/true);
  const bool drainReversed = (vds + step) < 0.0;
  double warmDrain = warm;
  out.drainStep = evaluateImpl(params_, geom, d, vgs, vds + step, &warmDrain,
                               /*useWarm=*/drainReversed == baseReversed);
  return out;
}

}  // namespace vsstat::models
