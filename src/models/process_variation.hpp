// Within-die (mismatch) variation model -- the statistical half of the
// paper's contribution.
//
// Variability is carried by five *independent Gaussian* VS parameters
// (paper Table I): VT0 (RDF), Leff & Weff (LER), mu (stress), Cinv (OTF),
// with Pelgrom geometry scaling (paper Eq. 7/8):
//
//   sigma_VT0  = alpha1 / sqrt(W L)      [alpha1 in V nm]
//   sigma_Leff = alpha2 * sqrt(L / W)    [alpha2 in nm]
//   sigma_Weff = alpha3 * sqrt(W / L)    [alpha3 in nm]
//   sigma_mu   = alpha4 / sqrt(W L)      [alpha4 in nm cm^2/(V s)]
//   sigma_Cinv = alpha5 / sqrt(W L)      [alpha5 in nm uF/cm^2]
//
// (W, L in nanometres inside these formulas, exactly as printed in the
// paper; conversions to SI happen here and nowhere else.)
//
// vxo is NOT an independent statistical parameter: per paper Eq. (5) its
// variation follows mobility (ballistic-efficiency weighted) and
// delta(Leff).  The Leff-induced part is reproduced automatically because
// the VS model evaluates delta() and vxo() at the instance's effective
// length; the mobility-induced part is applied here when building the
// instance card.
#ifndef VSSTAT_MODELS_PROCESS_VARIATION_HPP
#define VSSTAT_MODELS_PROCESS_VARIATION_HPP

#include "models/bsim_params.hpp"
#include "models/geometry.hpp"
#include "models/vs_params.hpp"
#include "stats/rng.hpp"

namespace vsstat::models {

/// Pelgrom coefficients in the paper's Table II units.
struct PelgromAlphas {
  double aVt0 = 0.0;   ///< V nm
  double aLeff = 0.0;  ///< nm
  double aWeff = 0.0;  ///< nm
  double aMu = 0.0;    ///< nm cm^2/(V s)
  double aCinv = 0.0;  ///< nm uF/cm^2
};

/// Per-geometry standard deviations in SI units.
struct ParameterSigmas {
  double sVt0 = 0.0;   ///< V
  double sLeff = 0.0;  ///< m
  double sWeff = 0.0;  ///< m
  double sMu = 0.0;    ///< m^2/(V s)
  double sCinv = 0.0;  ///< F/m^2
};

/// One sampled mismatch realization (absolute SI deltas).
struct VariationDelta {
  double dVt0 = 0.0;   ///< V
  double dLeff = 0.0;  ///< m
  double dWeff = 0.0;  ///< m
  double dMu = 0.0;    ///< m^2/(V s)
  double dCinv = 0.0;  ///< F/m^2
};

/// Evaluates the Pelgrom scaling laws at a geometry.
[[nodiscard]] ParameterSigmas sigmasFor(const PelgromAlphas& alphas,
                                        const DeviceGeometry& geom);

/// Draws one independent-Gaussian mismatch realization.
[[nodiscard]] VariationDelta sampleDelta(const ParameterSigmas& sigmas,
                                         stats::Rng& rng);

/// Instance geometry after applying the sampled Leff/Weff deltas.
[[nodiscard]] DeviceGeometry applyGeometry(const DeviceGeometry& geom,
                                           const VariationDelta& delta);

/// Instance VS card after applying the sampled deltas.  Applies the
/// mobility part of the vxo coupling (Eq. 5 first term); the delta(Leff)
/// part enters through the varied geometry at evaluation time.
[[nodiscard]] VsParams applyToVs(const VsParams& card,
                                 const VariationDelta& delta);

/// Instance BsimLite card after applying the sampled deltas (Vth, u0, Cox).
[[nodiscard]] BsimParams applyToBsim(const BsimParams& card,
                                     const VariationDelta& delta);

/// Adapter: the golden kit's mismatch truth expressed as PelgromAlphas so
/// both kits share the same sampling machinery.
[[nodiscard]] PelgromAlphas toPelgromAlphas(const BsimMismatch& m);

}  // namespace vsstat::models

#endif  // VSSTAT_MODELS_PROCESS_VARIATION_HPP
