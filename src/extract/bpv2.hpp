// Second-order and correlation-aware BPV -- the *full* paper Eq. (8).
//
// The production flow (bpv.hpp) uses the simplified Eq. (9): independent
// parameters, first-order sensitivities.  The paper justifies that with
// two claims: (a) the linear approximation of e_i(p) "is sufficiently
// accurate", and (b) the chosen p_j can be treated as independent.  This
// module implements the machinery to *test* those claims rather than
// assume them:
//
//   * targetHessians(): d2 e_i / dp_j dp_k by central differences, the
//     second-order term of Eq. (8);
//   * propagateVarianceSecondOrder(): Gaussian moment propagation
//     Var[e] = g' S g + 0.5 tr((H S)^2) for a full parameter covariance
//     S = D R D (sigmas D, correlation R), plus the mean shift
//     0.5 tr(H S);
//   * solveBpvCorrelated(): BPV extraction when the r_jk cross terms of
//     Eq. (8) are NOT dropped -- the bilinear terms are folded into the
//     left-hand side and the system re-solved to a fixed point.
//
// bench_ablation_bpv2 uses these to quantify both paper assumptions.
#ifndef VSSTAT_EXTRACT_BPV2_HPP
#define VSSTAT_EXTRACT_BPV2_HPP

#include <array>

#include "extract/bpv.hpp"
#include "extract/sensitivity.hpp"
#include "linalg/matrix.hpp"

namespace vsstat::extract {

/// d2(e_i)/dp_j dp_k at the nominal card, one symmetric
/// kParameterCount x kParameterCount matrix per target (SI units).
[[nodiscard]] std::array<linalg::Matrix, kTargetCount> targetHessians(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    double vdd);

/// Identity correlation (the paper's independence assumption).
[[nodiscard]] linalg::Matrix independentCorrelation();

/// Validates a parameter correlation matrix: square kParameterCount,
/// symmetric, unit diagonal, entries in [-1, 1].  Throws
/// InvalidArgumentError otherwise.
void validateCorrelation(const linalg::Matrix& r);

/// One target's Gaussian moment propagation split by order.
struct SecondOrderVariance {
  double firstOrder = 0.0;   ///< g' S g (includes r_jk cross terms)
  double secondOrder = 0.0;  ///< 0.5 tr((H S)^2)
  double meanShift = 0.0;    ///< E[e] - e(p0) = 0.5 tr(H S)

  [[nodiscard]] double total() const noexcept {
    return firstOrder + secondOrder;
  }
};

/// Second-order Gaussian propagation of all three targets for sigmas from
/// the Pelgrom alphas at `geom` and the given parameter correlation.
[[nodiscard]] std::array<SecondOrderVariance, kTargetCount>
propagateVarianceSecondOrder(const models::VsParams& card,
                             const models::DeviceGeometry& geom,
                             const models::PelgromAlphas& alphas,
                             const linalg::Matrix& correlation, double vdd);

struct CorrelatedBpvOptions {
  BpvOptions base;
  int maxOuterIterations = 60;
  double relTolerance = 1e-4;  ///< outer-loop alpha convergence
};

struct CorrelatedBpvResult {
  models::PelgromAlphas alphas;
  int outerIterations = 0;
  bool converged = false;
  double residualNorm = 0.0;  ///< NNLS residual of the final inner solve
};

/// BPV with the Eq. (8) correlation cross terms retained.  The full
/// forward model -- diagonal plus bilinear r_jk cross terms -- is fitted
/// directly in alpha space with bounded Levenberg-Marquardt, initialized
/// from the independent solve (zero-pinned coefficients are re-seeded at
/// their single-parameter variance-budget scale).  With r = I the
/// independent solution is already a zero-residual point and is returned
/// unchanged.
[[nodiscard]] CorrelatedBpvResult solveBpvCorrelated(
    const models::VsParams& card,
    const std::vector<GeometryMeasurement>& meas,
    const linalg::Matrix& correlation,
    const CorrelatedBpvOptions& options = {});

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_BPV2_HPP
