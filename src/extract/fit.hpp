// Nominal VS card fitting against the golden kit's I-V/C-V data -- the
// step the paper shows in Fig. 1 ("VS model fitting for NMOS with data
// from a 40-nm BSIM4 industrial design kit", W = 300 nm).
//
// A well-characterized nominal model is the foundation of the BPV flow
// (paper Sec. III): the sensitivities d(e_i)/d(p_j) are evaluated on this
// fitted card.  Residuals mix log-space Id-Vg (so subthreshold decades
// count), relative-space Id-Vd, and a Cgg point; Levenberg-Marquardt with
// box bounds does the minimization.
#ifndef VSSTAT_EXTRACT_FIT_HPP
#define VSSTAT_EXTRACT_FIT_HPP

#include "models/alpha_power.hpp"
#include "models/device.hpp"
#include "models/vs_params.hpp"

namespace vsstat::extract {

struct FitOptions {
  double vdd = 0.9;
  double vgsStep = 0.05;     ///< Id-Vg grid pitch [V]
  double vdsStep = 0.05;     ///< Id-Vd grid pitch [V]
  double vdsLin = 0.05;      ///< linear-region drain bias [V]
  int maxIterations = 300;
};

struct IvFitResult {
  models::VsParams card;       ///< fitted card
  double rmsLogIdVg = 0.0;     ///< RMS of ln(Id_VS/Id_golden) on Id-Vg grid
  double rmsRelIdVd = 0.0;     ///< RMS relative error on Id-Vd grid
  double relCggError = 0.0;    ///< relative Cgg error at Vgs=Vdd
  int iterations = 0;
  bool converged = false;
};

/// Fits {VT0, delta0, n0, vxo, mu, beta, cinv} of the seed card so the VS
/// model reproduces the golden model's characteristics at the reference
/// geometry (paper: W/L = 300/40 nm).
[[nodiscard]] IvFitResult fitVsToGolden(const models::VsParams& seed,
                                        const models::MosfetModel& golden,
                                        const models::DeviceGeometry& geom,
                                        const FitOptions& options = {});

struct AlphaFitResult {
  models::AlphaPowerParams card;  ///< fitted card
  double rmsRelIdVg = 0.0;  ///< RMS relative error, above-VT Id-Vg grid
  double rmsRelIdVd = 0.0;  ///< RMS relative error, Id-Vd grid
  double relCggError = 0.0; ///< relative Cgg error at Vgs=Vdd
  int iterations = 0;
  bool converged = false;
};

/// Fits the alpha-power-law baseline (paper ref [5]) to the golden model's
/// strong-inversion characteristics.  Only above-threshold bias points
/// enter the residual: the alpha-power law has no subthreshold conduction
/// to fit, which is precisely the limitation the paper's introduction
/// holds against purely empirical ultra-compact models.
[[nodiscard]] AlphaFitResult fitAlphaPowerToGolden(
    const models::AlphaPowerParams& seed, const models::MosfetModel& golden,
    const models::DeviceGeometry& geom, const FitOptions& options = {});

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_FIT_HPP
