// Backward Propagation of Variance (paper Sec. III, Eq. 8-10).
//
// Measured target variances at several geometries are mapped back onto the
// squared Pelgrom coefficients alpha_j^2 through the sensitivity matrix and
// the geometry scaling laws, then solved with non-negative least squares.
// Following the paper:
//   * alpha2 == alpha3 (same line-edge roughness for length and width),
//   * Cinv is NOT an extraction unknown -- the oxide is tightly controlled
//     (sigma < 0.5%), it is "measured" directly and its contribution is
//     subtracted from the left-hand side (Eq. 10),
//   * per-geometry individual solves are also provided (Fig. 2 compares
//     them against the joint solve).
#ifndef VSSTAT_EXTRACT_BPV_HPP
#define VSSTAT_EXTRACT_BPV_HPP

#include <vector>

#include "linalg/matrix.hpp"
#include "models/process_variation.hpp"
#include "models/vs_params.hpp"

namespace vsstat::extract {

/// Measured (or synthesized) target variances at one geometry.
struct GeometryMeasurement {
  models::DeviceGeometry geom;
  double varIdsat = 0.0;       ///< A^2
  double varLog10Ioff = 0.0;   ///< (decades)^2
  double varCgg = 0.0;         ///< F^2
};

struct BpvOptions {
  double vdd = 0.9;
  /// Directly-measured Cinv Pelgrom coefficient in paper units
  /// [nm uF/cm^2]: sigma_Cinv(geom) = aCinvDirect / sqrt(W L).  The paper
  /// measures this through the oxide thickness instead of extracting it by
  /// BPV (the relative sigma stays below 0.5%).
  double aCinvDirect = 0.30;
  /// Tie alpha2 == alpha3 (paper's LER argument).  When false, Leff and
  /// Weff are extracted as separate unknowns.
  bool tieLengthWidth = true;
  /// Ablation: treat Cinv as a BPV unknown instead of measuring it
  /// directly (the paper argues BPV overestimates tightly-controlled
  /// parameters; bench_ablation_bpv quantifies that).
  bool solveCinvByBpv = false;
  /// Drop rows whose LHS goes non-positive after the Cinv subtraction.
  bool dropDegenerateRows = true;
};

struct BpvResult {
  models::PelgromAlphas alphas;   ///< paper-unit coefficients
  double residualNorm = 0.0;      ///< NNLS residual of the scaled system
  int rowsUsed = 0;               ///< rows surviving degeneracy filtering
  int rowsDropped = 0;
};

/// Joint solve over all geometries (the paper's preferred, more scalable
/// variant).  Throws ExtractionError when no usable rows remain.
[[nodiscard]] BpvResult solveBpv(const models::VsParams& card,
                                 const std::vector<GeometryMeasurement>& meas,
                                 const BpvOptions& options = {});

/// Individual solve from a single geometry (three equations).  Used by the
/// Fig. 2 consistency comparison.
[[nodiscard]] BpvResult solveBpvIndividual(const models::VsParams& card,
                                           const GeometryMeasurement& meas,
                                           const BpvOptions& options = {});

/// Forward propagation: predicted target variances at a geometry from a
/// set of alphas (first-order, Eq. 9).  Used for verification/round-trip
/// tests and the Fig. 3 variance decomposition.
struct VarianceBreakdown {
  // Per-parameter contribution to each target's variance; rows follow
  // Target, columns follow Parameter.
  linalg::Matrix contributions{3, 5, 0.0};

  [[nodiscard]] double totalFor(std::size_t targetRow) const;
};

[[nodiscard]] VarianceBreakdown propagateVariance(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    const models::PelgromAlphas& alphas, double vdd);

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_BPV_HPP
