#include "extract/fit_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "models/alpha_power.hpp"
#include "models/bsim_lite.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"
#include "util/fnv1a.hpp"
#include "util/thread_pool.hpp"

namespace vsstat::extract {

namespace {

/// Forward-difference step of every Newton-load evaluation in a campaign --
/// shared by synthesis and fitting so a noiseless synthetic lane has an
/// exactly-zero residual at the truth card.
constexpr double kLoadFdStep = 1e-3;

/// Log-space residuals floor the model current here so a card driven deep
/// below threshold produces a large finite residual, not -inf.
constexpr double kIdFloor = 1e-18;

/// Family adapter: the bijection between a card's fitted fields and the
/// optimizer's parameter vector, plus the family's physical box.
struct FamilySpec {
  std::size_t n = 0;
  const double* lo = nullptr;
  const double* hi = nullptr;
  void (*read)(const models::MosfetModel&, linalg::Vector&) = nullptr;
  void (*write)(const linalg::Vector&, models::MosfetModel&) = nullptr;
};

// --- VS family: [vt0, delta0, n0, vxo, mu, beta, cinv] ----------------------
constexpr std::size_t kVsN = 7;
constexpr double kVsLo[kVsN] = {0.15, 0.04, 1.22, 0.4e5, 0.6e-2, 1.2, 1.0e-2};
constexpr double kVsHi[kVsN] = {0.65, 0.25, 1.90, 2.5e5, 5.0e-2, 2.8, 2.6e-2};

void vsRead(const models::MosfetModel& m, linalg::Vector& x) {
  const models::VsParams& p = static_cast<const models::VsModel&>(m).params();
  x[0] = p.vt0;
  x[1] = p.delta0;
  x[2] = p.n0;
  x[3] = p.vxo;
  x[4] = p.mu;
  x[5] = p.beta;
  x[6] = p.cinv;
}

void vsWrite(const linalg::Vector& x, models::MosfetModel& m) {
  models::VsParams& p = static_cast<models::VsModel&>(m).mutableParams();
  p.vt0 = x[0];
  p.delta0 = x[1];
  p.n0 = x[2];
  p.vxo = x[3];
  p.mu = x[4];
  p.beta = x[5];
  p.cinv = x[6];
}

// --- alpha-power family: [vth0, delta0, alphaSat, kSat, kV, cg] -------------
constexpr std::size_t kAlphaN = 6;
constexpr double kAlphaLo[kAlphaN] = {0.10, 0.00, 1.0, 1e2, 0.3, 0.5e-2};
constexpr double kAlphaHi[kAlphaN] = {0.55, 0.30, 2.0, 5e3, 2.5, 3.0e-2};

void alphaRead(const models::MosfetModel& m, linalg::Vector& x) {
  const models::AlphaPowerParams& p =
      static_cast<const models::AlphaPowerModel&>(m).params();
  x[0] = p.vth0;
  x[1] = p.delta0;
  x[2] = p.alphaSat;
  x[3] = p.kSat;
  x[4] = p.kV;
  x[5] = p.cg;
}

void alphaWrite(const linalg::Vector& x, models::MosfetModel& m) {
  models::AlphaPowerParams& p =
      static_cast<models::AlphaPowerModel&>(m).mutableParams();
  p.vth0 = x[0];
  p.delta0 = x[1];
  p.alphaSat = x[2];
  p.kSat = x[3];
  p.kV = x[4];
  p.cg = x[5];
}

// --- bsim-lite family: [vth0, dibl0, nfactor, u0, vsat, cox] ----------------
constexpr std::size_t kBsimN = 6;
constexpr double kBsimLo[kBsimN] = {0.2, 0.04, 1.1, 1.0e-2, 0.5e5, 1.0e-2};
constexpr double kBsimHi[kBsimN] = {0.7, 0.25, 1.9, 6.0e-2, 2.0e5, 2.6e-2};

void bsimRead(const models::MosfetModel& m, linalg::Vector& x) {
  const models::BsimParams& p =
      static_cast<const models::BsimLite&>(m).params();
  x[0] = p.vth0;
  x[1] = p.dibl0;
  x[2] = p.nfactor;
  x[3] = p.u0;
  x[4] = p.vsat;
  x[5] = p.cox;
}

void bsimWrite(const linalg::Vector& x, models::MosfetModel& m) {
  models::BsimParams& p = static_cast<models::BsimLite&>(m).mutableParams();
  p.vth0 = x[0];
  p.dibl0 = x[1];
  p.nfactor = x[2];
  p.u0 = x[3];
  p.vsat = x[4];
  p.cox = x[5];
}

const FamilySpec& specFor(CardFamily family) noexcept {
  static const FamilySpec vs{kVsN, kVsLo, kVsHi, &vsRead, &vsWrite};
  static const FamilySpec alpha{kAlphaN, kAlphaLo, kAlphaHi, &alphaRead,
                                &alphaWrite};
  static const FamilySpec bsim{kBsimN, kBsimLo, kBsimHi, &bsimRead,
                               &bsimWrite};
  switch (family) {
    case CardFamily::vs: return vs;
    case CardFamily::alphaPower: return alpha;
    case CardFamily::bsim: return bsim;
  }
  return vs;
}

}  // namespace

const char* toString(CardFamily f) noexcept {
  switch (f) {
    case CardFamily::vs: return "vs";
    case CardFamily::alphaPower: return "alpha-power";
    case CardFamily::bsim: return "bsim-lite";
  }
  return "unknown";
}

const char* toString(FitOutcome o) noexcept {
  switch (o) {
    case FitOutcome::converged: return "converged";
    case FitOutcome::boundPinned: return "bound-pinned";
    case FitOutcome::stalled: return "stalled";
    case FitOutcome::singularJtJ: return "singular-jtj";
    case FitOutcome::nonFinite: return "non-finite";
  }
  return "unknown";
}

MeasurementGrid vsMeasurementGrid(double vdd, double vgsStep, double vdsStep,
                                  double vdsLin) {
  MeasurementGrid g;
  g.vdd = vdd;
  // Id-Vg transfer scan at linear and saturation drain bias, log space so
  // subthreshold decades carry weight (the paper fits Ioff AND Ion).
  for (double vgs = 0.10; vgs <= vdd + 1e-9; vgs += vgsStep) {
    g.points.push_back({vgs, vdsLin, true});
    g.points.push_back({vgs, vdd, true});
  }
  // Id-Vd output family at three gate overdrives, relative space.
  for (const double frac : {0.56, 0.78, 1.0}) {
    const double vgs = frac * vdd;
    for (double vds = vdsStep; vds <= vdd + 1e-9; vds += vdsStep)
      g.points.push_back({vgs, vds, false});
  }
  return g;
}

MeasurementGrid strongInversionGrid(double vdd, double vgsStep, double vdsStep,
                                    double vdsLin) {
  MeasurementGrid g;
  g.vdd = vdd;
  for (double vgs = 0.45 * vdd; vgs <= vdd + 1e-9; vgs += vgsStep) {
    g.points.push_back({vgs, vdsLin, false});
    g.points.push_back({vgs, vdd, false});
  }
  for (const double frac : {0.6, 0.8, 1.0}) {
    const double vgs = frac * vdd;
    for (double vds = vdsStep; vds <= vdd + 1e-9; vds += vdsStep)
      g.points.push_back({vgs, vds, false});
  }
  return g;
}

double FitCampaignResult::convergedFraction() const noexcept {
  if (laneCount == 0) return 1.0;
  const int good = outcomeCounts[static_cast<int>(FitOutcome::converged)] +
                   outcomeCounts[static_cast<int>(FitOutcome::boundPinned)];
  return static_cast<double>(good) / static_cast<double>(laneCount);
}

double FitCampaignResult::meanIterationsPerFit() const noexcept {
  if (laneCount == 0) return 0.0;
  return static_cast<double>(totalLmIterations) /
         static_cast<double>(laneCount);
}

std::uint64_t FitCampaignResult::paramsFnv1a() const noexcept {
  util::Fnv1a h;
  h.mix(laneCount);
  h.mix(paramCount);
  for (std::size_t i = 0; i < laneCount; ++i) {
    h.mix(static_cast<std::uint64_t>(static_cast<int>(outcomes[i])));
    h.mix(boundMask[i]);
    h.mix(static_cast<std::uint64_t>(
        static_cast<std::uint32_t>(iterations[i])));
    h.mixDouble(cost[i]);
  }
  for (double v : params) h.mixDouble(v);
  return h.value();
}

/// Per-worker fit state: the worker-owned card, the bias-point device bank
/// over it, the solver workspace and the lane dataset.  One engine is
/// materialized lazily per (worker thread, run) and reused for every lane
/// that worker executes, so a steady-state fit allocates nothing.
struct LaneEngine {
  explicit LaneEngine(const FitCampaign& campaign)
      : owner(&campaign),
        spec(specFor(campaign.family_)),
        model(campaign.seed_->clone()),
        pointCount(campaign.grid_.points.size()) {
    const std::size_t lanes = pointCount + 1;  // + the Cgg anchor lane
    vgs.resize(lanes);
    vds.resize(lanes);
    evals.resize(lanes);
    for (std::size_t i = 0; i < pointCount; ++i) {
      vgs[i] = campaign.grid_.points[i].vgs;
      vds[i] = campaign.grid_.points[i].vds;
    }
    vgs[pointCount] = campaign.grid_.vdd;
    vds[pointCount] = campaign.grid_.vdd;
    if (campaign.options_.useBank) {
      bank = models::makeUniformLoadBank(*model, campaign.geometry_, lanes,
                                         campaign.options_.numerics);
    }
    dataset.id.resize(pointCount);
    residual = [this](const linalg::Vector& x, linalg::Vector& r) {
      response(x, r);
    };
  }

  /// The campaign residual: write the trial parameters into the worker
  /// card, re-derive the bank ONCE for all bias lanes (rebindUniform), then
  /// evaluate the whole I-V grid plus the Cgg anchor in one batched call.
  void response(const linalg::Vector& x, linalg::Vector& r) {
    spec.write(x, *model);
    if (bank) {
      require(bank->rebindUniform(*model, owner->geometry_),
              "FitCampaign: bank rejected its own card type");
      bank->evaluateLoadBatch(vgs, vds, kLoadFdStep, evals);
    } else {
      for (std::size_t i = 0; i < evals.size(); ++i)
        evals[i] = model->evaluateLoad(owner->geometry_, vgs[i], vds[i],
                                       kLoadFdStep);
    }
    const MeasurementGrid& g = owner->grid_;
    for (std::size_t i = 0; i < pointCount; ++i) {
      const double id = evals[i].at.id;
      const double d = dataset.id[i];
      r[i] = g.points[i].logSpace
                 ? g.logWeight * std::log(std::max(id, kIdFloor) / d)
                 : g.relWeight * (id / d - 1.0);
    }
    r[pointCount] =
        g.cggWeight * (evals[pointCount].dqgVgs / dataset.cgg - 1.0);
  }

  const FitCampaign* owner;
  const FamilySpec& spec;
  std::unique_ptr<models::MosfetModel> model;
  std::size_t pointCount;
  std::unique_ptr<models::MosfetLoadBank> bank;  ///< null when useBank=false
  std::vector<double> vgs, vds;
  std::vector<models::MosfetLoadEvaluation> evals;
  FitDataset dataset;
  linalg::LevMarWorkspace ws;
  linalg::LevMarResult lm;
  linalg::ResidualFn residual;
};

namespace {

/// Worker-local engine cache, keyed by the campaign's process-unique
/// instance id.  Ids are never reissued, so an engine built for a destroyed
/// campaign can never be mistaken for the current one -- and repeated run()
/// calls on the SAME campaign reuse the worker's engine, keeping the
/// steady-state batch path allocation-free.
struct EngineSlot {
  std::uint64_t campaignId = 0;
  std::unique_ptr<LaneEngine> engine;
};
thread_local EngineSlot tEngineSlot;
std::atomic<std::uint64_t> gCampaignCounter{0};

FitOutcome outcomeForFailure(FailureClass c) noexcept {
  switch (c) {
    case FailureClass::singular: return FitOutcome::singularJtJ;
    case FailureClass::nonFinite: return FitOutcome::nonFinite;
    default: return FitOutcome::stalled;
  }
}

}  // namespace

FitCampaign::FitCampaign(const models::VsParams& seed,
                         models::DeviceGeometry geometry, MeasurementGrid grid,
                         FitCampaignOptions options)
    : family_(CardFamily::vs),
      geometry_(geometry),
      grid_(std::move(grid)),
      options_(std::move(options)),
      seed_(std::make_unique<models::VsModel>(seed)) {
  finishInit();
}

FitCampaign::FitCampaign(const models::AlphaPowerParams& seed,
                         models::DeviceGeometry geometry, MeasurementGrid grid,
                         FitCampaignOptions options)
    : family_(CardFamily::alphaPower),
      geometry_(geometry),
      grid_(std::move(grid)),
      options_(std::move(options)),
      seed_(std::make_unique<models::AlphaPowerModel>(seed)) {
  finishInit();
}

FitCampaign::FitCampaign(const models::BsimParams& seed,
                         models::DeviceGeometry geometry, MeasurementGrid grid,
                         FitCampaignOptions options)
    : family_(CardFamily::bsim),
      geometry_(geometry),
      grid_(std::move(grid)),
      options_(std::move(options)),
      seed_(std::make_unique<models::BsimLite>(seed)) {
  finishInit();
}

FitCampaign::~FitCampaign() = default;

void FitCampaign::finishInit() {
  id_ = gCampaignCounter.fetch_add(1, std::memory_order_relaxed) + 1;
  require(!grid_.points.empty(), "FitCampaign: measurement grid is empty");
  require(grid_.vdd > 0.0, "FitCampaign: vdd must be positive");
  require(geometry_.width > 0.0 && geometry_.length > 0.0,
          "FitCampaign: geometry must be positive");
  require(options_.maxIterations > 0,
          "FitCampaign: maxIterations must be positive");
  const FamilySpec& spec = specFor(family_);
  lmOptions_ = options_.levmar;
  lmOptions_.maxIterations = options_.maxIterations;
  if (lmOptions_.lowerBounds.empty())
    lmOptions_.lowerBounds.assign(spec.lo, spec.lo + spec.n);
  if (lmOptions_.upperBounds.empty())
    lmOptions_.upperBounds.assign(spec.hi, spec.hi + spec.n);
  require(lmOptions_.lowerBounds.size() == spec.n &&
              lmOptions_.upperBounds.size() == spec.n,
          "FitCampaign: bounds size mismatch for card family");
  x0_.resize(spec.n);
  spec.read(*seed_, x0_);
  for (std::size_t j = 0; j < spec.n; ++j) {
    x0_[j] = std::min(std::max(x0_[j], lmOptions_.lowerBounds[j]),
                      lmOptions_.upperBounds[j]);
  }
}

std::size_t FitCampaign::paramCount() const noexcept {
  return specFor(family_).n;
}

FitCampaignResult FitCampaign::run(std::size_t laneCount, std::uint64_t seed,
                                   const DatasetFn& makeDataset) const {
  require(laneCount > 0, "FitCampaign: need at least one lane");
  require(makeDataset != nullptr, "FitCampaign: null dataset callback");
  const std::size_t n = specFor(family_).n;

  FitCampaignResult res;
  res.laneCount = laneCount;
  res.paramCount = n;
  res.params.resize(laneCount * n);
  res.outcomes.assign(laneCount, FitOutcome::converged);
  res.cost.assign(laneCount, 0.0);
  res.iterations.assign(laneCount, 0);
  res.boundMask.assign(laneCount, 0);
  // SSO keeps the empty-message common case allocation-free.
  std::vector<std::string> messages(laneCount);

  const stats::Rng root(seed);

  util::parallelFor(
      laneCount,
      [&](std::size_t lane) {
        EngineSlot& slot = tEngineSlot;
        if (slot.campaignId != id_ || slot.engine == nullptr) {
          slot.engine = std::make_unique<LaneEngine>(*this);
          slot.campaignId = id_;
        }
        LaneEngine& e = *slot.engine;

        stats::Rng rng = root.fork(lane);
        e.dataset.cgg = 0.0;
        makeDataset(lane, rng, e.dataset);
        require(e.dataset.id.size() == e.pointCount,
                "FitCampaign: dataset resized away from the grid");

        double* out = res.params.data() + lane * n;
        const auto fail = [&](FitOutcome outcome, int iterations,
                              const char* what) {
          res.outcomes[lane] = outcome;
          res.iterations[lane] = iterations;
          res.cost[lane] = std::numeric_limits<double>::quiet_NaN();
          res.boundMask[lane] = 0;
          std::copy(x0_.begin(), x0_.end(), out);
          messages[lane] = what;
        };

        try {
          linalg::levenbergMarquardt(e.residual, x0_, e.pointCount + 1,
                                     lmOptions_, e.ws, e.lm);
        } catch (const SingularMatrixError& err) {
          fail(FitOutcome::singularJtJ, err.iterations(), err.what());
          return;
        } catch (const NonFiniteError& err) {
          fail(FitOutcome::nonFinite, 0, err.what());
          return;
        } catch (const SampleFailure& err) {
          // Defensive: any other classified failure still lands in the
          // taxonomy instead of aborting the campaign.
          fail(outcomeForFailure(err.failureClass()), 0, err.what());
          return;
        }

        std::copy(e.lm.x.begin(), e.lm.x.end(), out);
        res.cost[lane] = e.lm.cost;
        res.iterations[lane] = e.lm.iterations;
        res.boundMask[lane] = e.lm.activeBounds;
        if (e.lm.activeBounds != 0) {
          // Any non-exception exit on a bound face is bound-pinned: the
          // data wants parameters outside the physical box, whether the
          // solver formally converged there or exhausted its budget
          // crawling along the face (free parameters compensating for the
          // clamped one improve the cost indefinitely but negligibly).
          res.outcomes[lane] = FitOutcome::boundPinned;
        } else if (!e.lm.converged || e.lm.stalled) {
          res.outcomes[lane] = FitOutcome::stalled;
        } else {
          res.outcomes[lane] = FitOutcome::converged;
        }
      },
      options_.threads);

  // Serial reduction keeps the counters and the first-failure pick
  // deterministic regardless of worker count.
  for (std::size_t i = 0; i < laneCount; ++i) {
    ++res.outcomeCounts[static_cast<int>(res.outcomes[i])];
    res.totalLmIterations += static_cast<std::uint64_t>(res.iterations[i]);
    const FitOutcome o = res.outcomes[i];
    if (!res.firstFailure.valid &&
        (o == FitOutcome::singularJtJ || o == FitOutcome::nonFinite)) {
      res.firstFailure.valid = true;
      res.firstFailure.lane = i;
      res.firstFailure.outcome = o;
      res.firstFailure.message = messages[i];
    }
  }
  return res;
}

void FitCampaign::synthesizeDataset(const models::MosfetModel& truth,
                                    double noiseRel, stats::Rng& rng,
                                    FitDataset& out) const {
  const std::size_t count = grid_.points.size();
  out.id.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const models::MosfetLoadEvaluation ev = truth.evaluateLoad(
        geometry_, grid_.points[i].vgs, grid_.points[i].vds, kLoadFdStep);
    double id = ev.at.id;
    if (noiseRel > 0.0) id *= std::exp(noiseRel * rng.normal());
    out.id[i] = id;
  }
  const models::MosfetLoadEvaluation anchor =
      truth.evaluateLoad(geometry_, grid_.vdd, grid_.vdd, kLoadFdStep);
  double cgg = anchor.dqgVgs;
  if (noiseRel > 0.0) cgg *= std::exp(noiseRel * rng.normal());
  out.cgg = cgg;
}

models::VsParams FitCampaign::vsCard(const FitCampaignResult& r,
                                     std::size_t lane) const {
  require(family_ == CardFamily::vs, "FitCampaign: not a VS-family campaign");
  models::VsParams p = static_cast<const models::VsModel&>(*seed_).params();
  const std::span<const double> x = r.lane(lane);
  p.vt0 = x[0];
  p.delta0 = x[1];
  p.n0 = x[2];
  p.vxo = x[3];
  p.mu = x[4];
  p.beta = x[5];
  p.cinv = x[6];
  return p;
}

models::AlphaPowerParams FitCampaign::alphaCard(const FitCampaignResult& r,
                                                std::size_t lane) const {
  require(family_ == CardFamily::alphaPower,
          "FitCampaign: not an alpha-power campaign");
  models::AlphaPowerParams p =
      static_cast<const models::AlphaPowerModel&>(*seed_).params();
  const std::span<const double> x = r.lane(lane);
  p.vth0 = x[0];
  p.delta0 = x[1];
  p.alphaSat = x[2];
  p.kSat = x[3];
  p.kV = x[4];
  p.cg = x[5];
  return p;
}

models::BsimParams FitCampaign::bsimCard(const FitCampaignResult& r,
                                         std::size_t lane) const {
  require(family_ == CardFamily::bsim,
          "FitCampaign: not a bsim-lite campaign");
  models::BsimParams p =
      static_cast<const models::BsimLite&>(*seed_).params();
  const std::span<const double> x = r.lane(lane);
  p.vth0 = x[0];
  p.dibl0 = x[1];
  p.nfactor = x[2];
  p.u0 = x[3];
  p.vsat = x[4];
  p.cox = x[5];
  return p;
}

}  // namespace vsstat::extract
