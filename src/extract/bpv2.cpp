#include "extract/bpv2.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/levmar.hpp"
#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::extract {

namespace {

void setDelta(models::VariationDelta& d, Parameter p, double value) noexcept {
  switch (p) {
    case Parameter::Vt0:
      d.dVt0 = value;
      break;
    case Parameter::Leff:
      d.dLeff = value;
      break;
    case Parameter::Weff:
      d.dWeff = value;
      break;
    case Parameter::Mu:
      d.dMu = value;
      break;
    case Parameter::Cinv:
      d.dCinv = value;
      break;
  }
}

std::array<double, kTargetCount> evalTargets(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    double vdd, const models::VariationDelta& delta) {
  const models::VsParams varied = models::applyToVs(card, delta);
  const models::DeviceGeometry g = models::applyGeometry(geom, delta);
  const models::VsModel model(varied);
  const measure::ElectricalTargets t = measure::measureTargets(model, g, vdd);
  return {t.idsat, t.log10Ioff, t.cgg};
}

std::array<double, kParameterCount> sigmaArray(
    const models::PelgromAlphas& alphas, const models::DeviceGeometry& geom) {
  const models::ParameterSigmas s = models::sigmasFor(alphas, geom);
  return {s.sVt0, s.sLeff, s.sWeff, s.sMu, s.sCinv};
}

}  // namespace

std::array<linalg::Matrix, kTargetCount> targetHessians(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    double vdd) {
  require(vdd > 0.0, "targetHessians: vdd must be positive");
  const auto steps = sensitivitySteps(card, geom);

  const auto at = [&](double hj, Parameter pj, double hk, Parameter pk) {
    models::VariationDelta d{};
    setDelta(d, pj, hj);
    if (pk != pj) {
      setDelta(d, pk, hk);
    } else {
      setDelta(d, pj, hj + hk);
    }
    return evalTargets(card, geom, vdd, d);
  };

  std::array<linalg::Matrix, kTargetCount> h;
  for (auto& m : h) m = linalg::Matrix(kParameterCount, kParameterCount);

  const auto base = evalTargets(card, geom, vdd, models::VariationDelta{});
  for (std::size_t j = 0; j < kParameterCount; ++j) {
    const Parameter pj = static_cast<Parameter>(j);
    const double hj = steps[j];

    // Diagonal: (f(+h) - 2 f(0) + f(-h)) / h^2.
    const auto up = at(hj, pj, 0.0, pj);
    const auto dn = at(-hj, pj, 0.0, pj);
    for (std::size_t i = 0; i < kTargetCount; ++i)
      h[i](j, j) = (up[i] - 2.0 * base[i] + dn[i]) / (hj * hj);

    // Off-diagonal: four-point cross stencil, mirrored by symmetry.
    for (std::size_t k = j + 1; k < kParameterCount; ++k) {
      const Parameter pk = static_cast<Parameter>(k);
      const double hk = steps[k];
      const auto pp = at(hj, pj, hk, pk);
      const auto pm = at(hj, pj, -hk, pk);
      const auto mp = at(-hj, pj, hk, pk);
      const auto mm = at(-hj, pj, -hk, pk);
      for (std::size_t i = 0; i < kTargetCount; ++i) {
        const double d2 = (pp[i] - pm[i] - mp[i] + mm[i]) / (4.0 * hj * hk);
        h[i](j, k) = d2;
        h[i](k, j) = d2;
      }
    }
  }
  return h;
}

linalg::Matrix independentCorrelation() {
  return linalg::Matrix::identity(kParameterCount);
}

void validateCorrelation(const linalg::Matrix& r) {
  require(r.rows() == kParameterCount && r.cols() == kParameterCount,
          "correlation matrix must be kParameterCount square");
  for (std::size_t j = 0; j < kParameterCount; ++j) {
    require(std::fabs(r(j, j) - 1.0) < 1e-12,
            "correlation matrix must have unit diagonal");
    for (std::size_t k = 0; k < kParameterCount; ++k) {
      require(std::fabs(r(j, k) - r(k, j)) < 1e-12,
              "correlation matrix must be symmetric");
      require(r(j, k) >= -1.0 - 1e-12 && r(j, k) <= 1.0 + 1e-12,
              "correlation entries must lie in [-1, 1]");
    }
  }
}

std::array<SecondOrderVariance, kTargetCount> propagateVarianceSecondOrder(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    const models::PelgromAlphas& alphas, const linalg::Matrix& correlation,
    double vdd) {
  validateCorrelation(correlation);
  const linalg::Matrix sens = targetSensitivities(card, geom, vdd);
  const auto hessians = targetHessians(card, geom, vdd);
  const auto sigma = sigmaArray(alphas, geom);

  // Covariance S = D R D.
  linalg::Matrix cov(kParameterCount, kParameterCount);
  for (std::size_t j = 0; j < kParameterCount; ++j)
    for (std::size_t k = 0; k < kParameterCount; ++k)
      cov(j, k) = correlation(j, k) * sigma[j] * sigma[k];

  std::array<SecondOrderVariance, kTargetCount> result;
  for (std::size_t i = 0; i < kTargetCount; ++i) {
    // First order: g' S g.
    double first = 0.0;
    for (std::size_t j = 0; j < kParameterCount; ++j)
      for (std::size_t k = 0; k < kParameterCount; ++k)
        first += sens(i, j) * cov(j, k) * sens(i, k);

    // Second order: 0.5 tr((H S)^2) and mean shift 0.5 tr(H S).
    const linalg::Matrix hs = hessians[i] * cov;
    double trHs = 0.0;
    double trHsSq = 0.0;
    for (std::size_t j = 0; j < kParameterCount; ++j) {
      trHs += hs(j, j);
      for (std::size_t k = 0; k < kParameterCount; ++k)
        trHsSq += hs(j, k) * hs(k, j);
    }

    result[i].firstOrder = first;
    result[i].secondOrder = 0.5 * trHsSq;
    result[i].meanShift = 0.5 * trHs;
  }
  return result;
}

CorrelatedBpvResult solveBpvCorrelated(
    const models::VsParams& card,
    const std::vector<GeometryMeasurement>& meas,
    const linalg::Matrix& correlation, const CorrelatedBpvOptions& options) {
  require(!meas.empty(), "solveBpvCorrelated: no measurements");
  validateCorrelation(correlation);

  // Sensitivities are alpha-independent: compute once per geometry.
  std::vector<linalg::Matrix> sens;
  sens.reserve(meas.size());
  for (const GeometryMeasurement& m : meas)
    sens.push_back(targetSensitivities(card, m.geom, options.base.vdd));

  // Init from the independence assumption.
  const BpvResult inner = solveBpv(card, meas, options.base);

  // A naive fixed-point iteration (subtract the cross terms evaluated at
  // the current alpha estimate, re-solve, repeat) is unstable here: with a
  // strong planted correlation the independent solve starts on the NNLS
  // zero boundary, where the correction vanishes and the iteration
  // freezes; away from the boundary its gain can exceed one.  Instead the
  // full Eq. (8) forward model -- diagonal plus bilinear cross terms -- is
  // fitted directly in alpha space with bounded Levenberg-Marquardt.
  //
  // Unknown layout mirrors bpv.cpp: [aVt0, aLeff, (aWeff), aMu, (aCinv)].
  std::vector<std::size_t> unknownOf;  // parameter index per unknown
  std::array<std::size_t, kParameterCount> columnOf{};
  columnOf.fill(static_cast<std::size_t>(-1));
  const auto addUnknown = [&](Parameter p) {
    columnOf[static_cast<std::size_t>(p)] = unknownOf.size();
    unknownOf.push_back(static_cast<std::size_t>(p));
  };
  addUnknown(Parameter::Vt0);
  addUnknown(Parameter::Leff);
  if (options.base.tieLengthWidth) {
    columnOf[static_cast<std::size_t>(Parameter::Weff)] =
        columnOf[static_cast<std::size_t>(Parameter::Leff)];
  } else {
    addUnknown(Parameter::Weff);
  }
  addUnknown(Parameter::Mu);
  if (options.base.solveCinvByBpv) addUnknown(Parameter::Cinv);

  // Per-geometry conversion factors k_j with sigma_j = k_j * alpha_j.
  std::vector<std::array<double, kParameterCount>> unitSigma(meas.size());
  models::PelgromAlphas unit;
  unit.aVt0 = unit.aLeff = unit.aWeff = unit.aMu = unit.aCinv = 1.0;
  for (std::size_t g = 0; g < meas.size(); ++g)
    unitSigma[g] = sigmaArray(unit, meas[g].geom);

  const auto alphaAt = [&](const linalg::Vector& x, std::size_t param) {
    const std::size_t col = columnOf[param];
    if (col != static_cast<std::size_t>(-1)) return x[col];
    // Cinv in the direct-measurement flow.
    return options.base.aCinvDirect;
  };

  const std::size_t residualSize = meas.size() * kTargetCount;
  const auto residualFn = [&](const linalg::Vector& x, linalg::Vector& r) {
    std::size_t row = 0;
    for (std::size_t g = 0; g < meas.size(); ++g) {
      std::array<double, kParameterCount> sigma{};
      for (std::size_t j = 0; j < kParameterCount; ++j)
        sigma[j] = alphaAt(x, j) * unitSigma[g][j];

      const std::array<double, kTargetCount> measured = {
          meas[g].varIdsat, meas[g].varLog10Ioff, meas[g].varCgg};
      for (std::size_t i = 0; i < kTargetCount; ++i) {
        double predicted = 0.0;
        for (std::size_t j = 0; j < kParameterCount; ++j)
          for (std::size_t k = 0; k < kParameterCount; ++k)
            predicted += correlation(j, k) * sens[g](i, j) * sens[g](i, k) *
                         sigma[j] * sigma[k];
        // Relative residual: targets span many orders of magnitude.
        r[row++] = predicted / std::max(measured[i], 1e-300) - 1.0;
      }
    }
  };

  // Start from the independent solve, but re-seed any coefficient it
  // pinned at zero with the alpha that parameter would need to explain a
  // share of the measured Idsat variance on its own.  That keeps the start
  // at the right order of magnitude, which bounded LM needs for a usable
  // finite-difference gradient.
  const auto singleParameterSeed = [&](std::size_t param) {
    double sumSq = 0.0;
    for (std::size_t g = 0; g < meas.size(); ++g) {
      const double gk = sens[g](0, param) * unitSigma[g][param];
      if (gk != 0.0) sumSq += meas[g].varIdsat / (gk * gk);
    }
    return std::sqrt(sumSq / static_cast<double>(meas.size()) /
                     static_cast<double>(kParameterCount));
  };

  linalg::Vector x0(unknownOf.size(), 0.0);
  const auto initial = [&](Parameter p, double fromIndependent) {
    const std::size_t param = static_cast<std::size_t>(p);
    const std::size_t col = columnOf[param];
    if (col == static_cast<std::size_t>(-1)) return;
    x0[col] = fromIndependent > 0.0 ? fromIndependent
                                    : singleParameterSeed(param);
  };
  initial(Parameter::Vt0, inner.alphas.aVt0);
  initial(Parameter::Leff, inner.alphas.aLeff);
  if (!options.base.tieLengthWidth) initial(Parameter::Weff, inner.alphas.aWeff);
  initial(Parameter::Mu, inner.alphas.aMu);
  if (options.base.solveCinvByBpv) initial(Parameter::Cinv, inner.alphas.aCinv);

  linalg::LevMarOptions lm;
  lm.maxIterations = options.maxOuterIterations;
  lm.lowerBounds.assign(unknownOf.size(), 0.0);
  const linalg::LevMarResult fit =
      linalg::levenbergMarquardt(residualFn, x0, residualSize, lm);

  CorrelatedBpvResult result;
  result.outerIterations = fit.iterations;
  result.converged = fit.converged || fit.cost < 1e-10 * residualSize;
  result.alphas.aVt0 = alphaAt(fit.x, static_cast<std::size_t>(Parameter::Vt0));
  result.alphas.aLeff =
      alphaAt(fit.x, static_cast<std::size_t>(Parameter::Leff));
  result.alphas.aWeff =
      alphaAt(fit.x, static_cast<std::size_t>(Parameter::Weff));
  result.alphas.aMu = alphaAt(fit.x, static_cast<std::size_t>(Parameter::Mu));
  result.alphas.aCinv =
      alphaAt(fit.x, static_cast<std::size_t>(Parameter::Cinv));
  result.residualNorm = std::sqrt(2.0 * fit.cost);
  if (!result.converged) {
    throw ConvergenceError("solveBpvCorrelated: LM did not converge",
                           result.outerIterations);
  }
  return result;
}

}  // namespace vsstat::extract
