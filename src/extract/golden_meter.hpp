// "Measurement" of target variances from the golden design kit.
//
// The paper extracts its statistics from an industrial BSIM kit rather
// than silicon; this module plays that role: per geometry it Monte-Carlo
// samples the golden BsimLite mismatch model and reports the variance of
// each electrical target.  An analytic (first-order propagation) variant
// is provided for fast tests and for separating MC noise from BPV error.
#ifndef VSSTAT_EXTRACT_GOLDEN_METER_HPP
#define VSSTAT_EXTRACT_GOLDEN_METER_HPP

#include <cstdint>
#include <vector>

#include "extract/bpv.hpp"
#include "models/bsim_params.hpp"

namespace vsstat::extract {

/// The golden "industrial design kit": nominal cards + mismatch truth.
struct GoldenKit {
  models::BsimParams nmos;
  models::BsimParams pmos;
  models::BsimMismatch nmosMismatch;
  models::BsimMismatch pmosMismatch;
  double vdd = 0.9;

  /// The default 40-nm-class kit used throughout the reproduction.
  [[nodiscard]] static GoldenKit default40nm();
};

struct GoldenMeterOptions {
  int samples = 1000;          ///< MC samples per geometry (paper: > 1000)
  std::uint64_t seed = 1234;   ///< campaign seed
  unsigned threads = 0;        ///< 0 == hardware concurrency
};

/// Monte-Carlo variance measurement at one geometry for the given polarity.
/// Samples run in parallel on the shared persistent pool with one child
/// RNG stream per sample and a serial index-order reduction, so the
/// variances are bit-identical for any thread count (and to the historical
/// serial implementation, which already forked per sample).
[[nodiscard]] GeometryMeasurement measureGoldenVariance(
    const GoldenKit& kit, models::DeviceType type,
    const models::DeviceGeometry& geom, const GoldenMeterOptions& options);

/// Sweep over a geometry set.
[[nodiscard]] std::vector<GeometryMeasurement> measureGoldenVariances(
    const GoldenKit& kit, models::DeviceType type,
    const std::vector<models::DeviceGeometry>& geoms,
    const GoldenMeterOptions& options);

/// First-order analytic variance of the golden kit's targets (no MC noise).
[[nodiscard]] GeometryMeasurement analyticGoldenVariance(
    const GoldenKit& kit, models::DeviceType type,
    const models::DeviceGeometry& geom);

/// The extraction geometry set used for Table II (widths spanning the
/// paper's Fig. 2 sweep at L = 40 nm, plus longer-L points that separate
/// the 1/sqrt(WL) and sqrt(L/W) scaling laws).
[[nodiscard]] std::vector<models::DeviceGeometry> extractionGeometries();

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_GOLDEN_METER_HPP
