#include "extract/sensitivity.hpp"

#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::extract {

const char* toString(Target t) noexcept {
  switch (t) {
    case Target::Idsat:
      return "Idsat";
    case Target::Log10Ioff:
      return "log10(Ioff)";
    case Target::Cgg:
      return "Cgg@Vdd";
  }
  return "?";
}

const char* toString(Parameter p) noexcept {
  switch (p) {
    case Parameter::Vt0:
      return "VT0";
    case Parameter::Leff:
      return "Leff";
    case Parameter::Weff:
      return "Weff";
    case Parameter::Mu:
      return "mu";
    case Parameter::Cinv:
      return "Cinv";
  }
  return "?";
}

std::array<double, kParameterCount> sensitivitySteps(
    const models::VsParams& card, const models::DeviceGeometry& geom) {
  std::array<double, kParameterCount> h{};
  h[static_cast<std::size_t>(Parameter::Vt0)] = 2e-3;            // 2 mV
  h[static_cast<std::size_t>(Parameter::Leff)] = 0.01 * geom.length;
  h[static_cast<std::size_t>(Parameter::Weff)] = 0.01 * geom.width;
  h[static_cast<std::size_t>(Parameter::Mu)] = 0.01 * card.mu;
  h[static_cast<std::size_t>(Parameter::Cinv)] = 0.005 * card.cinv;
  return h;
}

linalg::Matrix targetSensitivities(const models::VsParams& card,
                                   const models::DeviceGeometry& geom,
                                   double vdd) {
  require(vdd > 0.0, "targetSensitivities: vdd must be positive");
  const auto steps = sensitivitySteps(card, geom);

  // Evaluate all three targets for a card/geometry perturbed by delta.
  const auto evalTargets = [&](const models::VariationDelta& delta) {
    const models::VsParams varied = models::applyToVs(card, delta);
    const models::DeviceGeometry g = models::applyGeometry(geom, delta);
    const models::VsModel model(varied);
    const measure::ElectricalTargets t = measure::measureTargets(model, g, vdd);
    return std::array<double, kTargetCount>{t.idsat, t.log10Ioff, t.cgg};
  };

  linalg::Matrix sens(kTargetCount, kParameterCount, 0.0);
  for (std::size_t j = 0; j < kParameterCount; ++j) {
    models::VariationDelta plus{};
    models::VariationDelta minus{};
    const double h = steps[j];
    switch (static_cast<Parameter>(j)) {
      case Parameter::Vt0:
        plus.dVt0 = h;
        minus.dVt0 = -h;
        break;
      case Parameter::Leff:
        plus.dLeff = h;
        minus.dLeff = -h;
        break;
      case Parameter::Weff:
        plus.dWeff = h;
        minus.dWeff = -h;
        break;
      case Parameter::Mu:
        plus.dMu = h;
        minus.dMu = -h;
        break;
      case Parameter::Cinv:
        plus.dCinv = h;
        minus.dCinv = -h;
        break;
    }
    const auto up = evalTargets(plus);
    const auto dn = evalTargets(minus);
    for (std::size_t i = 0; i < kTargetCount; ++i) {
      sens(i, j) = (up[i] - dn[i]) / (2.0 * h);
    }
  }
  return sens;
}

}  // namespace vsstat::extract
