// Sensitivities of the electrical targets e_i = {Idsat, log10(Ioff),
// Cgg@Vdd} with respect to the statistical VS parameters p_j = {VT0, Leff,
// Weff, mu, Cinv}.  These populate the BPV system matrix (paper Eq. 10).
//
// The derivatives are central finite differences routed through the same
// applyToVs/applyGeometry path as Monte Carlo sampling, so the Eq. (5)
// vxo coupling (mobility and DIBL terms) is part of the sensitivity --
// matching the paper, which folds vxo variation into Leff and mu rather
// than treating it as an independent parameter.
#ifndef VSSTAT_EXTRACT_SENSITIVITY_HPP
#define VSSTAT_EXTRACT_SENSITIVITY_HPP

#include <array>

#include "linalg/matrix.hpp"
#include "models/process_variation.hpp"
#include "models/vs_params.hpp"

namespace vsstat::extract {

/// Row order of the electrical targets.
enum class Target : std::size_t { Idsat = 0, Log10Ioff = 1, Cgg = 2 };
inline constexpr std::size_t kTargetCount = 3;

/// Column order of the statistical parameters.
enum class Parameter : std::size_t {
  Vt0 = 0,
  Leff = 1,
  Weff = 2,
  Mu = 3,
  Cinv = 4
};
inline constexpr std::size_t kParameterCount = 5;

[[nodiscard]] const char* toString(Target t) noexcept;
[[nodiscard]] const char* toString(Parameter p) noexcept;

/// d(e_i)/d(p_j) in SI units at the nominal card and geometry.
/// Rows follow Target, columns follow Parameter.
[[nodiscard]] linalg::Matrix targetSensitivities(
    const models::VsParams& card, const models::DeviceGeometry& geom,
    double vdd);

/// Finite-difference steps used for each parameter (absolute, SI).
[[nodiscard]] std::array<double, kParameterCount> sensitivitySteps(
    const models::VsParams& card, const models::DeviceGeometry& geom);

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_SENSITIVITY_HPP
