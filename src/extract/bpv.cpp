#include "extract/bpv.hpp"

#include <cmath>

#include "extract/sensitivity.hpp"
#include "linalg/nnls.hpp"
#include "util/error.hpp"

namespace vsstat::extract {

namespace {

constexpr std::size_t kVt0 = static_cast<std::size_t>(Parameter::Vt0);
constexpr std::size_t kLeff = static_cast<std::size_t>(Parameter::Leff);
constexpr std::size_t kWeff = static_cast<std::size_t>(Parameter::Weff);
constexpr std::size_t kMu = static_cast<std::size_t>(Parameter::Mu);
constexpr std::size_t kCinv = static_cast<std::size_t>(Parameter::Cinv);

/// SI sigma per unit alpha for each parameter at this geometry, i.e. the
/// conversion * geometry factor k_j with sigma_j = k_j * alpha_j.
std::array<double, kParameterCount> perUnitAlphaSigmas(
    const models::DeviceGeometry& geom) {
  models::PelgromAlphas unit;
  unit.aVt0 = unit.aLeff = unit.aWeff = unit.aMu = unit.aCinv = 1.0;
  const models::ParameterSigmas s = models::sigmasFor(unit, geom);
  return {s.sVt0, s.sLeff, s.sWeff, s.sMu, s.sCinv};
}

/// Unknown layout of the NNLS system.
struct UnknownLayout {
  // Index of each alpha^2 unknown in the solution vector; SIZE_MAX when the
  // parameter is not an unknown (Cinv in the default flow).
  std::array<std::size_t, kParameterCount> column{};
  std::size_t count = 0;
};

UnknownLayout makeLayout(const BpvOptions& opt) {
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  UnknownLayout layout;
  layout.column.fill(kNone);
  std::size_t next = 0;
  layout.column[kVt0] = next++;
  layout.column[kLeff] = next++;
  layout.column[kWeff] = opt.tieLengthWidth ? layout.column[kLeff] : next++;
  layout.column[kMu] = next++;
  if (opt.solveCinvByBpv) layout.column[kCinv] = next++;
  layout.count = next;
  return layout;
}

struct StackedSystem {
  linalg::Matrix a;
  linalg::Vector b;
  int dropped = 0;
};

StackedSystem buildSystem(const models::VsParams& card,
                          const std::vector<GeometryMeasurement>& meas,
                          const BpvOptions& opt, const UnknownLayout& layout) {
  std::vector<std::array<double, 8>> rows;  // coefficients (<=5) + rhs
  int dropped = 0;

  for (const GeometryMeasurement& m : meas) {
    const linalg::Matrix sens = targetSensitivities(card, m.geom, opt.vdd);
    const auto k = perUnitAlphaSigmas(m.geom);
    // Directly-measured Cinv sigma at this geometry (SI): k[kCinv] is the
    // per-unit-alpha conversion, so multiply by the measured coefficient.
    const double sigmaCinv = opt.aCinvDirect * k[kCinv];

    const std::array<double, kTargetCount> measuredVar = {
        m.varIdsat, m.varLog10Ioff, m.varCgg};

    for (std::size_t i = 0; i < kTargetCount; ++i) {
      double rhs = measuredVar[i];
      if (!opt.solveCinvByBpv) {
        const double cinvTerm = sens(i, kCinv) * sigmaCinv;
        rhs -= cinvTerm * cinvTerm;
      }
      if (rhs <= 0.0) {
        if (opt.dropDegenerateRows) {
          ++dropped;
          continue;
        }
        rhs = 0.0;
      }

      std::array<double, 8> row{};
      for (std::size_t j = 0; j < kParameterCount; ++j) {
        const std::size_t col = layout.column[j];
        if (col == static_cast<std::size_t>(-1)) continue;
        const double coeff = sens(i, j) * k[j];
        row[col] += coeff * coeff;
      }
      // Normalize the row by its RHS: targets have wildly different scales
      // (A^2 vs decades^2 vs F^2); after scaling every equation reads
      // "predicted relative variance == 1" with comparable weight.
      const double scale = 1.0 / rhs;
      for (std::size_t c = 0; c < layout.count; ++c) row[c] *= scale;
      row[layout.count] = 1.0;
      rows.push_back(row);
    }
  }

  StackedSystem sys;
  sys.dropped = dropped;
  if (rows.empty()) return sys;
  sys.a = linalg::Matrix(rows.size(), layout.count);
  sys.b.assign(rows.size(), 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < layout.count; ++c) sys.a(r, c) = rows[r][c];
    sys.b[r] = rows[r][layout.count];
  }
  return sys;
}

BpvResult solveFromSystem(const StackedSystem& sys, const BpvOptions& opt,
                          const UnknownLayout& layout) {
  if (sys.b.empty()) {
    throw ExtractionError("BPV: no usable equations after degeneracy filter");
  }
  require(sys.b.size() >= layout.count,
          "BPV: fewer equations than unknowns; add geometries");

  const linalg::NnlsResult nnls = linalg::nnls(sys.a, sys.b);

  BpvResult result;
  const auto alphaOf = [&](std::size_t param) {
    const std::size_t col = layout.column[param];
    if (col == static_cast<std::size_t>(-1)) return -1.0;
    return std::sqrt(std::max(nnls.x[col], 0.0));
  };
  result.alphas.aVt0 = alphaOf(kVt0);
  result.alphas.aLeff = alphaOf(kLeff);
  result.alphas.aWeff = alphaOf(kWeff);
  result.alphas.aMu = alphaOf(kMu);
  if (opt.solveCinvByBpv) {
    result.alphas.aCinv = alphaOf(kCinv);
  } else {
    // Cinv is measured directly (oxide thickness), not extracted: report
    // the measured coefficient alongside the BPV-extracted ones, exactly
    // as the paper's Table II lists alpha5 next to alpha1-4.
    result.alphas.aCinv = opt.aCinvDirect;
  }
  result.residualNorm = nnls.residualNorm;
  result.rowsUsed = static_cast<int>(sys.b.size());
  result.rowsDropped = sys.dropped;
  return result;
}

}  // namespace

BpvResult solveBpv(const models::VsParams& card,
                   const std::vector<GeometryMeasurement>& meas,
                   const BpvOptions& options) {
  require(!meas.empty(), "solveBpv: no measurements");
  const UnknownLayout layout = makeLayout(options);
  const StackedSystem sys = buildSystem(card, meas, options, layout);
  return solveFromSystem(sys, options, layout);
}

BpvResult solveBpvIndividual(const models::VsParams& card,
                             const GeometryMeasurement& meas,
                             const BpvOptions& options) {
  return solveBpv(card, {meas}, options);
}

double VarianceBreakdown::totalFor(std::size_t targetRow) const {
  double s = 0.0;
  for (std::size_t j = 0; j < contributions.cols(); ++j)
    s += contributions(targetRow, j);
  return s;
}

VarianceBreakdown propagateVariance(const models::VsParams& card,
                                    const models::DeviceGeometry& geom,
                                    const models::PelgromAlphas& alphas,
                                    double vdd) {
  const linalg::Matrix sens = targetSensitivities(card, geom, vdd);
  const models::ParameterSigmas sig = models::sigmasFor(alphas, geom);
  const std::array<double, kParameterCount> sigmas = {
      sig.sVt0, sig.sLeff, sig.sWeff, sig.sMu, sig.sCinv};

  VarianceBreakdown vb;
  for (std::size_t i = 0; i < kTargetCount; ++i) {
    for (std::size_t j = 0; j < kParameterCount; ++j) {
      const double term = sens(i, j) * sigmas[j];
      vb.contributions(i, j) = term * term;
    }
  }
  return vb;
}

}  // namespace vsstat::extract
