#include "extract/golden_meter.hpp"

#include <array>

#include "measure/device_metrics.hpp"
#include "models/bsim_lite.hpp"
#include "models/process_variation.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace vsstat::extract {

GoldenKit GoldenKit::default40nm() {
  GoldenKit kit;
  kit.nmos = models::defaultBsimNmos();
  kit.pmos = models::defaultBsimPmos();
  kit.nmosMismatch = models::defaultBsimMismatchNmos();
  kit.pmosMismatch = models::defaultBsimMismatchPmos();
  kit.vdd = 0.9;
  return kit;
}

namespace {

const models::BsimParams& cardFor(const GoldenKit& kit,
                                  models::DeviceType type) {
  return type == models::DeviceType::Nmos ? kit.nmos : kit.pmos;
}

const models::BsimMismatch& mismatchFor(const GoldenKit& kit,
                                        models::DeviceType type) {
  return type == models::DeviceType::Nmos ? kit.nmosMismatch
                                          : kit.pmosMismatch;
}

}  // namespace

GeometryMeasurement measureGoldenVariance(const GoldenKit& kit,
                                          models::DeviceType type,
                                          const models::DeviceGeometry& geom,
                                          const GoldenMeterOptions& options) {
  require(options.samples >= 16, "measureGoldenVariance: need >= 16 samples");
  const models::BsimParams& card = cardFor(kit, type);
  const models::PelgromAlphas alphas =
      models::toPelgromAlphas(mismatchFor(kit, type));
  const models::ParameterSigmas sigmas = models::sigmasFor(alphas, geom);

  // Parallel sample evaluation into flat index-addressed storage, then a
  // serial index-order reduction: bit-identical to the historical serial
  // loop (which already drew from one child stream per sample) for any
  // thread count.
  const auto n = static_cast<std::size_t>(options.samples);
  std::vector<double> idsat(n), log10Ioff(n), cgg(n);
  const stats::Rng campaign(options.seed);
  util::parallelFor(
      n,
      [&](std::size_t s) {
        stats::Rng rng = campaign.fork(static_cast<std::uint64_t>(s));
        const models::VariationDelta delta = models::sampleDelta(sigmas, rng);
        const models::BsimLite model(models::applyToBsim(card, delta));
        const models::DeviceGeometry g = models::applyGeometry(geom, delta);
        const measure::ElectricalTargets t =
            measure::measureTargets(model, g, kit.vdd);
        idsat[s] = t.idsat;
        log10Ioff[s] = t.log10Ioff;
        cgg[s] = t.cgg;
      },
      options.threads);

  stats::MomentAccumulator idsatAcc;
  stats::MomentAccumulator ioffAcc;
  stats::MomentAccumulator cggAcc;
  for (std::size_t s = 0; s < n; ++s) {
    idsatAcc.add(idsat[s]);
    ioffAcc.add(log10Ioff[s]);
    cggAcc.add(cgg[s]);
  }

  GeometryMeasurement m;
  m.geom = geom;
  m.varIdsat = idsatAcc.variance();
  m.varLog10Ioff = ioffAcc.variance();
  m.varCgg = cggAcc.variance();
  return m;
}

std::vector<GeometryMeasurement> measureGoldenVariances(
    const GoldenKit& kit, models::DeviceType type,
    const std::vector<models::DeviceGeometry>& geoms,
    const GoldenMeterOptions& options) {
  std::vector<GeometryMeasurement> result;
  result.reserve(geoms.size());
  GoldenMeterOptions o = options;
  for (std::size_t i = 0; i < geoms.size(); ++i) {
    // Decorrelate per-geometry campaigns deterministically.
    o.seed = options.seed + 7919 * (i + 1);
    result.push_back(measureGoldenVariance(kit, type, geoms[i], o));
  }
  return result;
}

GeometryMeasurement analyticGoldenVariance(const GoldenKit& kit,
                                           models::DeviceType type,
                                           const models::DeviceGeometry& geom) {
  const models::BsimParams& card = cardFor(kit, type);
  const models::PelgromAlphas alphas =
      models::toPelgromAlphas(mismatchFor(kit, type));
  const models::ParameterSigmas sig = models::sigmasFor(alphas, geom);

  // Central-difference sensitivities of the golden model's targets w.r.t.
  // its own parameters, then first-order variance accumulation.
  const auto evalTargets = [&](const models::VariationDelta& delta) {
    const models::BsimLite model(models::applyToBsim(card, delta));
    const models::DeviceGeometry g = models::applyGeometry(geom, delta);
    const measure::ElectricalTargets t =
        measure::measureTargets(model, g, kit.vdd);
    return std::array<double, 3>{t.idsat, t.log10Ioff, t.cgg};
  };

  const std::array<double, 5> sigmas = {sig.sVt0, sig.sLeff, sig.sWeff,
                                        sig.sMu, sig.sCinv};
  GeometryMeasurement m;
  m.geom = geom;
  for (std::size_t j = 0; j < sigmas.size(); ++j) {
    if (sigmas[j] <= 0.0) continue;
    const double h = sigmas[j];  // differentiate at the one-sigma scale
    models::VariationDelta plus{};
    models::VariationDelta minus{};
    switch (j) {
      case 0:
        plus.dVt0 = h;
        minus.dVt0 = -h;
        break;
      case 1:
        plus.dLeff = h;
        minus.dLeff = -h;
        break;
      case 2:
        plus.dWeff = h;
        minus.dWeff = -h;
        break;
      case 3:
        plus.dMu = h;
        minus.dMu = -h;
        break;
      case 4:
        plus.dCinv = h;
        minus.dCinv = -h;
        break;
      default:
        break;
    }
    const auto up = evalTargets(plus);
    const auto dn = evalTargets(minus);
    const double dIdsat = (up[0] - dn[0]) / 2.0;
    const double dIoff = (up[1] - dn[1]) / 2.0;
    const double dCgg = (up[2] - dn[2]) / 2.0;
    m.varIdsat += dIdsat * dIdsat;
    m.varLog10Ioff += dIoff * dIoff;
    m.varCgg += dCgg * dCgg;
  }
  return m;
}

std::vector<models::DeviceGeometry> extractionGeometries() {
  return {
      models::geometryNm(120, 40),  models::geometryNm(300, 40),
      models::geometryNm(600, 40),  models::geometryNm(1000, 40),
      models::geometryNm(1500, 40), models::geometryNm(300, 60),
      models::geometryNm(600, 60),  models::geometryNm(600, 100),
  };
}

}  // namespace vsstat::extract
