#include "extract/fit.hpp"

#include <cmath>
#include <vector>

#include "linalg/levmar.hpp"
#include "measure/device_metrics.hpp"
#include "models/vs_model.hpp"
#include "util/error.hpp"

namespace vsstat::extract {

namespace {

struct BiasPoint {
  double vgs = 0.0;
  double vds = 0.0;
  bool logSpace = false;  // subthreshold/transfer points compare in log space
};

std::vector<BiasPoint> buildGrid(const FitOptions& opt) {
  std::vector<BiasPoint> grid;
  // Id-Vg at linear and saturation drain bias: log-space residuals.
  for (double vgs = 0.10; vgs <= opt.vdd + 1e-9; vgs += opt.vgsStep) {
    grid.push_back({vgs, opt.vdsLin, true});
    grid.push_back({vgs, opt.vdd, true});
  }
  // Id-Vd family at three gate biases: relative residuals.
  for (const double vgs : {0.5, 0.7, 0.9}) {
    for (double vds = opt.vdsStep; vds <= opt.vdd + 1e-9; vds += opt.vdsStep) {
      grid.push_back({vgs, vds, false});
    }
  }
  return grid;
}

}  // namespace

IvFitResult fitVsToGolden(const models::VsParams& seed,
                          const models::MosfetModel& golden,
                          const models::DeviceGeometry& geom,
                          const FitOptions& options) {
  require(options.vdd > 0.0, "fitVsToGolden: vdd must be positive");
  const std::vector<BiasPoint> grid = buildGrid(options);

  // Golden reference data (the "measurements" of Fig. 1).
  std::vector<double> goldenId(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    goldenId[i] = golden.drainCurrent(geom, grid[i].vgs, grid[i].vds);
    require(goldenId[i] > 0.0, "fitVsToGolden: golden current must be > 0");
  }
  const double goldenCgg = measure::cggAtVdd(golden, geom, options.vdd);

  // Parameter vector: [vt0, delta0, n0, vxo, mu, beta, cinv].
  const linalg::Vector x0 = {seed.vt0, seed.delta0, seed.n0, seed.vxo,
                             seed.mu,  seed.beta,   seed.cinv};
  linalg::LevMarOptions lmOptions;
  lmOptions.maxIterations = options.maxIterations;
  lmOptions.lowerBounds = {0.15, 0.04, 1.22, 0.4e5, 0.6e-2, 1.2, 1.0e-2};
  lmOptions.upperBounds = {0.65, 0.25, 1.90, 2.5e5, 5.0e-2, 2.8, 2.6e-2};

  const auto makeCard = [&](const linalg::Vector& x) {
    models::VsParams p = seed;
    p.vt0 = x[0];
    p.delta0 = x[1];
    p.n0 = x[2];
    p.vxo = x[3];
    p.mu = x[4];
    p.beta = x[5];
    p.cinv = x[6];
    return p;
  };

  // Anchor targets: the BPV electrical targets e_i = {Idsat, log10(Ioff),
  // Cgg} must be matched tightly at the reference geometry, since the
  // extraction sensitivities are evaluated on this card.  The VS and golden
  // transport formulations cannot agree everywhere, so the anchors get
  // heavy weights and the curve-shape residuals moderate ones.
  constexpr double kLogWeight = 0.55;
  constexpr double kRelWeight = 1.5;
  constexpr double kIdsatAnchorWeight = 8.0;
  constexpr double kIoffAnchorWeight = 5.0;
  const double goldenIdsat = golden.drainCurrent(geom, options.vdd, options.vdd);
  const double goldenIoffLog =
      std::log(golden.drainCurrent(geom, 0.0, options.vdd));

  const std::size_t residualSize = grid.size() + 3;  // + Cgg/Idsat/Ioff
  const auto residualFn = [&](const linalg::Vector& x, linalg::Vector& r) {
    const models::VsModel model(makeCard(x));
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double id = model.drainCurrent(geom, grid[i].vgs, grid[i].vds);
      if (grid[i].logSpace) {
        r[i] = kLogWeight * std::log(std::max(id, 1e-18) / goldenId[i]);
      } else {
        r[i] = kRelWeight * (id / goldenId[i] - 1.0);
      }
    }
    const double cgg = measure::cggAtVdd(model, geom, options.vdd);
    // Weight the single C-V point so capacitance counts like a few I-V
    // points rather than being drowned out.
    r[grid.size()] = 4.0 * (cgg / goldenCgg - 1.0);
    r[grid.size() + 1] =
        kIdsatAnchorWeight *
        (model.drainCurrent(geom, options.vdd, options.vdd) / goldenIdsat - 1.0);
    r[grid.size() + 2] =
        kIoffAnchorWeight *
        (std::log(std::max(model.drainCurrent(geom, 0.0, options.vdd), 1e-18)) -
         goldenIoffLog);
  };

  const linalg::LevMarResult lm =
      linalg::levenbergMarquardt(residualFn, x0, residualSize, lmOptions);

  IvFitResult result;
  result.card = makeCard(lm.x);
  result.iterations = lm.iterations;
  // Cross-family fits approach their floor asymptotically and can exhaust
  // the iteration budget before the formal step/gradient criteria fire;
  // a large cost reduction with intact anchors is still a converged fit.
  result.converged = lm.converged || lm.cost < 0.2 * lm.initialCost;

  // Report region-wise errors on the final card.
  const models::VsModel fitted(result.card);
  double sumLog = 0.0;
  int nLog = 0;
  double sumRel = 0.0;
  int nRel = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double id = fitted.drainCurrent(geom, grid[i].vgs, grid[i].vds);
    if (grid[i].logSpace) {
      const double e = std::log(std::max(id, 1e-18) / goldenId[i]);
      sumLog += e * e;
      ++nLog;
    } else {
      const double e = id / goldenId[i] - 1.0;
      sumRel += e * e;
      ++nRel;
    }
  }
  result.rmsLogIdVg = std::sqrt(sumLog / std::max(nLog, 1));
  result.rmsRelIdVd = std::sqrt(sumRel / std::max(nRel, 1));
  result.relCggError =
      measure::cggAtVdd(fitted, geom, options.vdd) / goldenCgg - 1.0;
  return result;
}

AlphaFitResult fitAlphaPowerToGolden(const models::AlphaPowerParams& seed,
                                     const models::MosfetModel& golden,
                                     const models::DeviceGeometry& geom,
                                     const FitOptions& options) {
  require(options.vdd > 0.0, "fitAlphaPowerToGolden: vdd must be positive");

  // Strong-inversion grid only: Id-Vg from ~threshold-plus up to Vdd at
  // two drain biases, plus the Id-Vd family.  No subthreshold points --
  // the model has nothing to fit there.
  std::vector<BiasPoint> grid;
  for (double vgs = 0.45 * options.vdd; vgs <= options.vdd + 1e-9;
       vgs += options.vgsStep) {
    grid.push_back({vgs, options.vdsLin, false});
    grid.push_back({vgs, options.vdd, false});
  }
  for (const double vgsFrac : {0.6, 0.8, 1.0}) {
    const double vgs = vgsFrac * options.vdd;
    for (double vds = options.vdsStep; vds <= options.vdd + 1e-9;
         vds += options.vdsStep) {
      grid.push_back({vgs, vds, false});
    }
  }

  std::vector<double> goldenId(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    goldenId[i] = golden.drainCurrent(geom, grid[i].vgs, grid[i].vds);
    require(goldenId[i] > 0.0,
            "fitAlphaPowerToGolden: golden current must be > 0");
  }
  const double goldenCgg = measure::cggAtVdd(golden, geom, options.vdd);

  // Parameter vector: [vth0, delta0, alphaSat, kSat, kV, cg].
  const linalg::Vector x0 = {seed.vth0, seed.delta0, seed.alphaSat,
                             seed.kSat, seed.kV,     seed.cg};
  linalg::LevMarOptions lmOptions;
  lmOptions.maxIterations = options.maxIterations;
  lmOptions.lowerBounds = {0.10, 0.00, 1.0, 1e2, 0.3, 0.5e-2};
  lmOptions.upperBounds = {0.55, 0.30, 2.0, 5e3, 2.5, 3.0e-2};

  const auto makeCard = [&](const linalg::Vector& x) {
    models::AlphaPowerParams p = seed;
    p.vth0 = x[0];
    p.delta0 = x[1];
    p.alphaSat = x[2];
    p.kSat = x[3];
    p.kV = x[4];
    p.cg = x[5];
    return p;
  };

  const std::size_t residualSize = grid.size() + 2;  // + Cgg + Idsat anchor
  const double goldenIdsat =
      golden.drainCurrent(geom, options.vdd, options.vdd);
  const auto residualFn = [&](const linalg::Vector& x, linalg::Vector& r) {
    const models::AlphaPowerModel model(makeCard(x));
    for (std::size_t i = 0; i < grid.size(); ++i) {
      const double id = model.drainCurrent(geom, grid[i].vgs, grid[i].vds);
      r[i] = id / goldenId[i] - 1.0;
    }
    r[grid.size()] =
        4.0 * (measure::cggAtVdd(model, geom, options.vdd) / goldenCgg - 1.0);
    r[grid.size() + 1] =
        8.0 *
        (model.drainCurrent(geom, options.vdd, options.vdd) / goldenIdsat -
         1.0);
  };

  const linalg::LevMarResult lm =
      linalg::levenbergMarquardt(residualFn, x0, residualSize, lmOptions);

  AlphaFitResult result;
  result.card = makeCard(lm.x);
  result.iterations = lm.iterations;
  result.converged = lm.converged || lm.cost < 0.2 * lm.initialCost;

  const models::AlphaPowerModel fitted(result.card);
  double sumVg = 0.0;
  int nVg = 0;
  double sumVd = 0.0;
  int nVd = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double id = fitted.drainCurrent(geom, grid[i].vgs, grid[i].vds);
    const double e = id / goldenId[i] - 1.0;
    // The first block of the grid is the two-bias Id-Vg scan.
    if (i < 2 * static_cast<std::size_t>((options.vdd - 0.45 * options.vdd) /
                                             options.vgsStep +
                                         1.5)) {
      sumVg += e * e;
      ++nVg;
    } else {
      sumVd += e * e;
      ++nVd;
    }
  }
  result.rmsRelIdVg = std::sqrt(sumVg / std::max(nVg, 1));
  result.rmsRelIdVd = std::sqrt(sumVd / std::max(nVd, 1));
  result.relCggError =
      measure::cggAtVdd(fitted, geom, options.vdd) / goldenCgg - 1.0;
  return result;
}

}  // namespace vsstat::extract
