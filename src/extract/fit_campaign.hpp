// Banked multi-fit extraction engine: thousands of independent VS-card
// extractions run as one campaign.
//
// The paper's actual pipeline is measure -> extract VS cards -> statistical
// model -> yield.  Production-volume extraction (per-die, per-corner) means
// thousands of small box-bounded Levenberg-Marquardt fits, each over a few
// dozen I-V/C-V points -- the exact shape of FEBioVFM's ConstrainedLevmar
// driver and Gpufit's LMFitCPP.  Here each fit is an independent *lane*:
//
//   * residual/Jacobian evaluation routes through models::MosfetLoadBank --
//     one bank per worker whose bank-lanes are the BIAS POINTS of the
//     device under fit, all referencing one worker-owned card that the
//     optimizer rewrites (and lane-rebinds) between iterations.  Under
//     NumericsMode::fast the VS bank batches the whole I-V grid through
//     the SIMD chain; under reference (the default) banked evaluation is
//     bit-identical to the scalar path, which is what the banked-vs-scalar
//     agreement tests pin.
//   * linalg::levenbergMarquardt runs in its allocation-free workspace form
//     with per-family box bounds, so extracted cards stay physical.
//   * lanes are scheduled over the persistent util::ThreadPool with
//     per-worker engines and fork-per-lane RNG: results are bit-identical
//     across 1/2/4 workers by construction.
//   * every lane lands in a FitOutcome taxonomy (converged / bound-pinned /
//     stalled / singular-JtJ / non-finite) mirroring the SampleFailure
//     discipline -- a bad lane is classified and counted, never garbage.
//
// Numerics contract: extraction carries a FIT TOLERANCE, not a bit-identity
// contract -- the acceptance question is "does the fitted card reproduce
// the data within the fit residual", so NumericsMode::fast is a legitimate
// throughput mode here.  Reference numerics stays the default and the
// baseline the agreement tests compare against.
#ifndef VSSTAT_EXTRACT_FIT_CAMPAIGN_HPP
#define VSSTAT_EXTRACT_FIT_CAMPAIGN_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "linalg/levmar.hpp"
#include "models/alpha_power.hpp"
#include "models/bsim_params.hpp"
#include "models/device.hpp"
#include "models/vs_params.hpp"
#include "stats/rng.hpp"

namespace vsstat::extract {

/// Which compact-model card family a campaign extracts.
enum class CardFamily { vs, alphaPower, bsim };

[[nodiscard]] const char* toString(CardFamily f) noexcept;

/// Per-lane fit classification.  The first two are successful extractions
/// (boundPinned means the optimum pressed against the physical box -- the
/// card is valid but the data wants parameters outside it); the last three
/// mirror the SampleFailure discipline of mc::McResult.
enum class FitOutcome : int {
  converged = 0,   ///< formal convergence criteria met, interior solution
  boundPinned,     ///< finished with >=1 parameter exactly on a box bound
  stalled,         ///< no damped step improved the cost / budget exhausted
  singularJtJ,     ///< damped normal equations singular at every damping level
  nonFinite,       ///< residual/Jacobian went non-finite (bad data, blow-up)
};
inline constexpr int kFitOutcomeCount = 5;

[[nodiscard]] const char* toString(FitOutcome o) noexcept;

/// One bias point of the campaign's shared measurement plan.
struct IvPoint {
  double vgs = 0.0;
  double vds = 0.0;
  bool logSpace = false;  ///< subthreshold/transfer points compare in log space
};

/// The measurement plan every lane shares: bias points, the Cgg anchor at
/// (vdd, vdd), and the residual weights (same scheme as extract::fit).
struct MeasurementGrid {
  std::vector<IvPoint> points;
  double vdd = 0.9;
  double logWeight = 0.55;  ///< weight of log-space Id residuals
  double relWeight = 1.5;   ///< weight of relative-space Id residuals
  double cggWeight = 4.0;   ///< weight of the single Cgg point
};

/// The full-pipeline VS plan: two-bias Id-Vg scan (log space, subthreshold
/// decades count) plus a three-gate-bias Id-Vd family (relative space).
[[nodiscard]] MeasurementGrid vsMeasurementGrid(double vdd = 0.9,
                                                double vgsStep = 0.1,
                                                double vdsStep = 0.1,
                                                double vdsLin = 0.05);

/// Strong-inversion-only plan (all relative space) for families with no
/// subthreshold conduction to fit (alpha-power law).
[[nodiscard]] MeasurementGrid strongInversionGrid(double vdd = 0.9,
                                                  double vgsStep = 0.1,
                                                  double vdsStep = 0.1,
                                                  double vdsLin = 0.05);

/// One lane's measurements on the campaign grid.
struct FitDataset {
  std::vector<double> id;  ///< drain current per grid point [A]
  double cgg = 0.0;        ///< gate capacitance at (vdd, vdd) [F]
};

struct FitCampaignOptions {
  int maxIterations = 60;
  unsigned threads = 0;  ///< parallelFor workers; 0 = hardware concurrency
  /// Route lane evaluation through the device bank (the point of the
  /// engine).  false = per-point scalar evaluateLoad, the agreement
  /// baseline; bit-identical to banked reference by the bank contract.
  bool useBank = true;
  models::NumericsMode numerics = models::NumericsMode::reference;
  /// Solver options; empty bounds are filled with the family's physical
  /// box, and maxIterations above overrides the solver default.
  linalg::LevMarOptions levmar;
};

/// Campaign output: a bank of fitted cards (lane-major parameter storage)
/// plus the per-lane outcome taxonomy and telemetry.  Lane i's card is
/// reconstructed with FitCampaign::{vs,alpha,bsim}Card(result, i).
struct FitCampaignResult {
  std::size_t laneCount = 0;
  std::size_t paramCount = 0;
  std::vector<double> params;  ///< laneCount x paramCount, lane-major
  std::vector<FitOutcome> outcomes;
  std::vector<double> cost;        ///< final 0.5||r||^2 (NaN on failed lanes)
  std::vector<std::int32_t> iterations;
  std::vector<std::uint32_t> boundMask;  ///< bit j: param j pinned at a bound
  std::array<int, kFitOutcomeCount> outcomeCounts{};
  std::uint64_t totalLmIterations = 0;

  /// First failed lane (singular-JtJ or non-finite), by lane index --
  /// deterministic regardless of worker count.
  struct FirstFailure {
    bool valid = false;
    std::size_t lane = 0;
    FitOutcome outcome = FitOutcome::converged;
    std::string message;
  } firstFailure;

  [[nodiscard]] std::span<const double> lane(std::size_t i) const {
    return {params.data() + i * paramCount, paramCount};
  }
  /// Fraction of lanes that extracted a valid card (converged + pinned).
  [[nodiscard]] double convergedFraction() const noexcept;
  [[nodiscard]] double meanIterationsPerFit() const noexcept;
  /// FNV-1a over every lane's outcome, bound mask, iteration count and
  /// fitted parameter bits: equal hashes mean bit-identical campaigns
  /// (the 1/2/4-worker scaling smoke compares exactly this).
  [[nodiscard]] std::uint64_t paramsFnv1a() const noexcept;
};

/// The multi-fit engine.  Construct once per extraction plan (family seed
/// card, geometry, measurement grid), then run() any number of campaigns.
/// Thread-safe for the duration of run(): per-worker state lives in
/// worker-local engines, the campaign object itself is read-only.
class FitCampaign {
 public:
  FitCampaign(const models::VsParams& seed, models::DeviceGeometry geometry,
              MeasurementGrid grid, FitCampaignOptions options = {});
  FitCampaign(const models::AlphaPowerParams& seed,
              models::DeviceGeometry geometry, MeasurementGrid grid,
              FitCampaignOptions options = {});
  FitCampaign(const models::BsimParams& seed, models::DeviceGeometry geometry,
              MeasurementGrid grid, FitCampaignOptions options = {});
  ~FitCampaign();

  FitCampaign(const FitCampaign&) = delete;
  FitCampaign& operator=(const FitCampaign&) = delete;

  [[nodiscard]] CardFamily family() const noexcept { return family_; }
  [[nodiscard]] std::size_t paramCount() const noexcept;
  [[nodiscard]] const MeasurementGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const FitCampaignOptions& options() const noexcept {
    return options_;
  }

  /// Produces lane `lane`'s measurements.  Called once per lane with a
  /// decorrelated child RNG (root.fork(lane)), so datasets -- and therefore
  /// results -- are bit-identical across worker counts.  `dataset.id` is
  /// pre-sized to the grid.
  using DatasetFn =
      std::function<void(std::size_t lane, stats::Rng& rng, FitDataset& dataset)>;

  /// Runs `laneCount` independent fits over the thread pool.
  [[nodiscard]] FitCampaignResult run(std::size_t laneCount, std::uint64_t seed,
                                      const DatasetFn& makeDataset) const;

  /// Synthesizes one lane's dataset from a truth card: evaluates the truth
  /// model on the campaign grid (same evaluation path the fit uses) and
  /// applies multiplicative log-normal measurement noise of relative sigma
  /// `noiseRel` (0 = noiseless).
  void synthesizeDataset(const models::MosfetModel& truth, double noiseRel,
                         stats::Rng& rng, FitDataset& out) const;

  /// Reconstructs lane i's fitted card (campaign family must match).
  [[nodiscard]] models::VsParams vsCard(const FitCampaignResult& r,
                                        std::size_t lane) const;
  [[nodiscard]] models::AlphaPowerParams alphaCard(const FitCampaignResult& r,
                                                   std::size_t lane) const;
  [[nodiscard]] models::BsimParams bsimCard(const FitCampaignResult& r,
                                            std::size_t lane) const;

 private:
  friend struct LaneEngine;

  void finishInit();

  std::uint64_t id_ = 0;  ///< process-unique, keys the worker engine cache
  CardFamily family_;
  models::DeviceGeometry geometry_;
  MeasurementGrid grid_;
  FitCampaignOptions options_;
  linalg::LevMarOptions lmOptions_;  ///< bounds resolved at construction
  std::unique_ptr<models::MosfetModel> seed_;  ///< prototype card
  linalg::Vector x0_;                          ///< clamped seed parameters
};

}  // namespace vsstat::extract

#endif  // VSSTAT_EXTRACT_FIT_CAMPAIGN_HPP
