// Deck-driven campaigns and the server's multi-tenant session cache.
//
// The campaign server receives topology as TEXT (a SPICE deck inside the
// request JSON), so the build-once/rebind-per-sample machinery needs a
// fixture whose builder is "parse this deck through the worker's
// provider".  The one-time derivation work splits along cacheability:
//
//   DeckPlan     -- everything that depends on the deck TEXT alone: the
//                   validation parse (classified, line-numbered rejects),
//                   the node-name table snapshot, the .model cards, the
//                   .tran parameters.  Cached by SessionCache keyed on
//                   deck content, so a warm request never parses its deck.
//   CampaignPlan -- the per-request resolution against a DeckPlan:
//                   probe-name lookups, measure/deck consistency, the
//                   builder/provider-factory closures, and the cache key
//                   naming the topology+options combination.
//
// SessionCache keys sim::SessionPoolCache<DeckFixture> by that key: a
// repeat request (same deck text, session-mode axes, variability spec, and
// sampling scheme) leases the warm worker sessions the previous campaign
// built instead of re-parsing and re-priming.  Together the two cache
// levels are the server's warm-path speedup -- a warm request's
// time-to-first-stat pays neither deck parse nor session build, only the
// first chunk's samples -- and the bench gates it (warm_vs_cold_ttfs).
//
// Determinism: NodeIds are assigned in first-mention deck order, so the
// validation parse and every worker's build resolve identical ids; the
// campaign itself runs the same fork-per-sample RNG / index-order
// reduction contract as mc::runCampaign (results are bit-identical across
// 1/2/4/... workers and identical to an in-process campaign over the same
// deck, seed, and axes).
#ifndef VSSTAT_SERVE_SESSION_CACHE_HPP
#define VSSTAT_SERVE_SESSION_CACHE_HPP

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mc/circuit_campaign.hpp"
#include "serve/request.hpp"
#include "serve/stream.hpp"
#include "sim/session.hpp"
#include "spice/netlist.hpp"

namespace vsstat::serve {

/// Campaign fixture of a parsed deck (the `circuit` member is the
/// sim::CampaignSession fixture contract).
struct DeckFixture {
  spice::Circuit circuit;
};

/// Sink for outbound frames (one line each, no trailing newline).
using FrameSink = std::function<void(const std::string&)>;

/// Cached result of a deck's validation parse: everything a request needs
/// that depends only on the deck text.  Immutable once built, shared
/// across concurrent requests (probe resolution reads the node table, it
/// never mutates a Circuit).
struct DeckPlan {
  std::size_t vsMosfets = 0;       ///< vs_* MOSFET instances, deck order
  models::VsParams nmos;           ///< first vs_nmos card (default if none)
  models::VsParams pmos;           ///< first vs_pmos card (default if none)
  std::optional<std::pair<double, double>> tran;  ///< .tran {dt, tstop}
  /// Lowercase node name -> first-mention-ordered NodeId, snapshotted from
  /// the validation parse (ids match every worker's parse of this deck).
  std::unordered_map<std::string, spice::NodeId> nodeByName;
  spice::NodeId ground = 0;
};

/// Validation parse of a deck.  A malformed deck throws
/// spice::NetlistParseError carrying the 1-based deck line.
[[nodiscard]] std::shared_ptr<const DeckPlan> parseDeckPlan(
    const std::string& deck);

/// One validated request, resolved against its deck and ready to run.
/// The two-argument form resolves against an already-parsed (possibly
/// cached) DeckPlan and performs no deck parse at all; the single-argument
/// convenience form parses the deck first.  A malformed deck throws
/// spice::NetlistParseError (the server's deck_error frame); an unknown
/// probe or a measure/deck mismatch throws RequestValidationError with
/// code badRequest.
class CampaignPlan {
 public:
  explicit CampaignPlan(CampaignRequest request);
  CampaignPlan(CampaignRequest request, std::shared_ptr<const DeckPlan> deck);

  [[nodiscard]] const CampaignRequest& request() const noexcept {
    return request_;
  }
  /// Opaque key naming (deck text, mode axes, variability, scheme) -- the
  /// session-cache identity.  Requests differing only in samples / seed /
  /// threads / measure / streaming cadence share a pool.
  [[nodiscard]] const std::string& cacheKey() const noexcept { return key_; }
  /// Standardized mismatch dimensionality (vs_* devices x 5 coordinates).
  [[nodiscard]] std::size_t zDimension() const noexcept;
  [[nodiscard]] std::size_t metricCount() const noexcept {
    return request_.measure.probes.size();
  }

  /// Builds a fresh (cold) session pool for this plan.
  [[nodiscard]] std::shared_ptr<sim::SessionPool<DeckFixture>> makePool()
      const;

  /// Runs the campaign against `pool` (shared, possibly concurrently with
  /// other campaigns on other pools), emitting progress / kde / final
  /// frames through `emit` on the calling thread.  `warm` is echoed into
  /// the final frame's "cache" field.
  [[nodiscard]] mc::McResult run(sim::SessionPool<DeckFixture>& pool,
                                 const FrameSink& emit, bool warm) const;

 private:
  void resolveMeasure();

  CampaignRequest request_;
  std::string key_;
  std::shared_ptr<const DeckPlan> deck_;
  std::vector<spice::NodeId> probeNodes_;
};

/// Multi-tenant two-level cache, thread-safe:
///   deckPlan() -- validation-parse results keyed by deck content (its own
///                 LRU list, same capacity), so warm requests skip the
///                 deck parse;
///   acquire()  -- shared session pools keyed by CampaignPlan::cacheKey()
///                 with LRU eviction (sim::SessionPoolCache), so warm
///                 requests lease already-built worker sessions.
/// The levels need no eviction coupling: a DeckPlan is keyed by content,
/// so a cached entry stays correct even after its pool is evicted.
class SessionCache {
 public:
  explicit SessionCache(std::size_t capacity = 8)
      : planCapacity_(capacity), cache_(capacity) {}

  /// Cached validation parse of `deck` (parses and caches on miss).
  [[nodiscard]] std::shared_ptr<const DeckPlan> deckPlan(
      const std::string& deck);

  struct Acquired {
    std::shared_ptr<sim::SessionPool<DeckFixture>> pool;
    bool warm = false;  ///< key was resident (sessions already built)
  };

  [[nodiscard]] Acquired acquire(const CampaignPlan& plan);

  [[nodiscard]] sim::SessionPoolCache<DeckFixture>::Stats stats() const {
    return cache_.stats();
  }

 private:
  using PlanLru =
      std::list<std::pair<std::string, std::shared_ptr<const DeckPlan>>>;

  std::mutex planMutex_;
  std::size_t planCapacity_;
  PlanLru planLru_;  ///< front = most recently used
  std::unordered_map<std::string, PlanLru::iterator> planByKey_;
  sim::SessionPoolCache<DeckFixture> cache_;
};

}  // namespace vsstat::serve

#endif  // VSSTAT_SERVE_SESSION_CACHE_HPP
