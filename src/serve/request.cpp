#include "serve/request.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace vsstat::serve {

// --- JSON document ---------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const noexcept {
  if (kind != Kind::object) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

const char* JsonValue::kindName() const noexcept {
  switch (kind) {
    case Kind::null: return "null";
    case Kind::boolean: return "boolean";
    case Kind::number: return "number";
    case Kind::string: return "string";
    case Kind::array: return "array";
    case Kind::object: return "object";
  }
  return "null";
}

namespace {

/// Recursive-descent JSON parser over a byte range.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue run() {
    JsonValue v = value();
    skipSpace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw JsonParseError("json offset " + std::to_string(pos_) + ": " +
                         message);
  }

  void skipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  [[nodiscard]] char peek() {
    skipSpace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue value() {
    const char c = peek();
    JsonValue v;
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::Kind::string;
        v.string = string();
        return v;
      case 't':
        if (!literal("true")) fail("bad literal");
        v.kind = JsonValue::Kind::boolean;
        v.boolean = true;
        return v;
      case 'f':
        if (!literal("false")) fail("bad literal");
        v.kind = JsonValue::Kind::boolean;
        v.boolean = false;
        return v;
      case 'n':
        if (!literal("null")) fail("bad literal");
        return v;
      default:
        return numberValue();
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = string();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}'");
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char next = peek();
      if (next == ',') {
        ++pos_;
        continue;
      }
      if (next == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']'");
    }
  }

  std::string string() {
    // pos_ is at the opening quote.
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // UTF-8 encode the code point (BMP only; surrogate pairs are not
          // needed by this protocol -- decks and node names are ASCII).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue numberValue() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    bool sawDigit = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      sawDigit = sawDigit ||
                 std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0;
      ++pos_;
    }
    if (!sawDigit) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parseJson(const std::string& text) { return JsonParser(text).run(); }

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendJsonNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  // %.17g round-trips every finite double exactly: a client parsing the
  // final frame recovers bit-identical values (the server's bit-equality
  // contract with in-process campaigns rides on this).
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

// --- request schema --------------------------------------------------------

const char* toString(RequestError code) noexcept {
  switch (code) {
    case RequestError::badJson: return "bad_json";
    case RequestError::badRequest: return "bad_request";
    case RequestError::deckError: return "deck_error";
    case RequestError::campaignError: return "campaign_error";
  }
  return "bad_request";
}

models::PelgromAlphas defaultAlphas() noexcept {
  models::PelgromAlphas a;
  a.aVt0 = 2.3;    // V nm
  a.aLeff = 3.7;   // nm
  a.aWeff = 3.7;   // nm
  a.aMu = 900.0;   // nm cm^2/(V s)
  a.aCinv = 0.3;   // nm uF/cm^2
  return a;
}

namespace {

[[noreturn]] void badRequest(const std::string& message) {
  throw RequestValidationError(RequestError::badRequest, message);
}

const JsonValue& member(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) badRequest(std::string("missing required field '") + key +
                               "'");
  return *v;
}

std::string asString(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::string)
    badRequest(std::string(what) + " must be a string, got " + v.kindName());
  return v.string;
}

double asNumber(const JsonValue& v, const char* what) {
  if (v.kind != JsonValue::Kind::number)
    badRequest(std::string(what) + " must be a number, got " + v.kindName());
  return v.number;
}

long asInteger(const JsonValue& v, const char* what) {
  const double d = asNumber(v, what);
  const double r = std::nearbyint(d);
  if (d != r) badRequest(std::string(what) + " must be an integer");
  return static_cast<long>(r);
}

void rejectUnknownKeys(const JsonValue& obj, const char* what,
                       std::initializer_list<const char*> allowed) {
  for (const auto& [key, value] : obj.members) {
    bool known = false;
    for (const char* a : allowed) known = known || key == a;
    if (!known)
      badRequest(std::string("unknown ") + what + " field '" + key + "'");
  }
}

void parseMode(const JsonValue& v, spice::SessionOptions& mode) {
  if (v.kind != JsonValue::Kind::object) badRequest("mode must be an object");
  rejectUnknownKeys(v, "mode", {"numerics", "solver", "tier"});
  if (const JsonValue* numerics = v.find("numerics")) {
    const std::string s = asString(*numerics, "mode.numerics");
    if (s == "reference") {
      mode.numerics = models::NumericsMode::reference;
    } else if (s == "fast") {
      mode.numerics = models::NumericsMode::fast;
    } else {
      badRequest("mode.numerics must be 'reference' or 'fast'");
    }
  }
  if (const JsonValue* solver = v.find("solver")) {
    const std::string s = asString(*solver, "mode.solver");
    if (s == "fresh") {
      mode.solver = linalg::SolverMode::fresh;
    } else if (s == "reusePivot") {
      mode.solver = linalg::SolverMode::reusePivot;
    } else {
      badRequest("mode.solver must be 'fresh' or 'reusePivot'");
    }
  }
  if (const JsonValue* tier = v.find("tier")) {
    const std::string s = asString(*tier, "mode.tier");
    if (s == "perSample") {
      mode.tier = spice::ToleranceTier::perSample;
    } else if (s == "statistical") {
      mode.tier = spice::ToleranceTier::statistical;
    } else {
      badRequest("mode.tier must be 'perSample' or 'statistical'");
    }
  }
}

void parseAlphaOverrides(const JsonValue& v, const char* what,
                         models::PelgromAlphas& a) {
  if (v.kind != JsonValue::Kind::object)
    badRequest(std::string(what) + " must be an object");
  rejectUnknownKeys(v, what, {"avt0", "aleff", "aweff", "amu", "acinv"});
  if (const JsonValue* f = v.find("avt0")) a.aVt0 = asNumber(*f, "avt0");
  if (const JsonValue* f = v.find("aleff")) a.aLeff = asNumber(*f, "aleff");
  if (const JsonValue* f = v.find("aweff")) a.aWeff = asNumber(*f, "aweff");
  if (const JsonValue* f = v.find("amu")) a.aMu = asNumber(*f, "amu");
  if (const JsonValue* f = v.find("acinv")) a.aCinv = asNumber(*f, "acinv");
}

void parseVariability(const JsonValue& v, CampaignRequest& req) {
  if (v.kind != JsonValue::Kind::object)
    badRequest("variability must be an object");
  rejectUnknownKeys(v, "variability", {"sigma_scale", "nmos", "pmos"});
  if (const JsonValue* nmos = v.find("nmos"))
    parseAlphaOverrides(*nmos, "variability.nmos", req.nmosAlphas);
  if (const JsonValue* pmos = v.find("pmos"))
    parseAlphaOverrides(*pmos, "variability.pmos", req.pmosAlphas);
  if (const JsonValue* scale = v.find("sigma_scale")) {
    const double s = asNumber(*scale, "variability.sigma_scale");
    if (s < 0.0) badRequest("variability.sigma_scale must be >= 0");
    for (models::PelgromAlphas* a : {&req.nmosAlphas, &req.pmosAlphas}) {
      a->aVt0 *= s;
      a->aLeff *= s;
      a->aWeff *= s;
      a->aMu *= s;
      a->aCinv *= s;
    }
  }
}

void parseMeasure(const JsonValue& v, MeasureSpec& measure) {
  if (v.kind != JsonValue::Kind::object)
    badRequest("measure must be an object");
  rejectUnknownKeys(v, "measure", {"analysis", "probes", "spec"});
  if (const JsonValue* analysis = v.find("analysis")) {
    const std::string s = asString(*analysis, "measure.analysis");
    if (s == "op") {
      measure.analysis = MeasureSpec::Analysis::op;
    } else if (s == "tran") {
      measure.analysis = MeasureSpec::Analysis::tran;
    } else {
      badRequest("measure.analysis must be 'op' or 'tran'");
    }
  }
  const JsonValue& probes = member(v, "probes");
  if (probes.kind != JsonValue::Kind::array || probes.items.empty())
    badRequest("measure.probes must be a non-empty array of node names");
  for (const JsonValue& p : probes.items)
    measure.probes.push_back(asString(p, "measure.probes entry"));
  if (const JsonValue* spec = v.find("spec")) {
    if (spec->kind != JsonValue::Kind::object)
      badRequest("measure.spec must be an object");
    rejectUnknownKeys(*spec, "measure.spec", {"min", "max"});
    yield::SpecLimit limit;
    if (const JsonValue* lo = spec->find("min")) {
      if (!lo->isNull()) limit.lower = asNumber(*lo, "measure.spec.min");
    }
    if (const JsonValue* hi = spec->find("max")) {
      if (!hi->isNull()) limit.upper = asNumber(*hi, "measure.spec.max");
    }
    measure.spec = limit;
  }
}

}  // namespace

CampaignRequest parseCampaignRequest(const JsonValue& root) {
  if (root.kind != JsonValue::Kind::object)
    badRequest("request must be a JSON object");
  rejectUnknownKeys(root, "request",
                    {"id", "deck", "samples", "seed", "threads", "mode",
                     "scheme", "variability", "measure", "stream_every",
                     "kde_every", "kde_points"});

  CampaignRequest req;
  req.nmosAlphas = defaultAlphas();
  req.pmosAlphas = defaultAlphas();

  if (const JsonValue* id = root.find("id")) req.id = asString(*id, "id");
  req.deck = asString(member(root, "deck"), "deck");
  if (req.deck.empty()) badRequest("deck must not be empty");

  if (const JsonValue* samples = root.find("samples")) {
    const long n = asInteger(*samples, "samples");
    if (n <= 0 || n > 100'000'000) badRequest("samples out of range");
    req.samples = static_cast<int>(n);
  }
  if (const JsonValue* seed = root.find("seed")) {
    const long s = asInteger(*seed, "seed");
    if (s < 0) badRequest("seed must be >= 0");
    req.seed = static_cast<std::uint64_t>(s);
  }
  if (const JsonValue* threads = root.find("threads")) {
    const long t = asInteger(*threads, "threads");
    if (t < 0 || t > 1024) badRequest("threads out of range");
    req.threads = static_cast<unsigned>(t);
  }
  if (const JsonValue* mode = root.find("mode")) parseMode(*mode, req.mode);
  if (const JsonValue* scheme = root.find("scheme")) {
    try {
      req.scheme = mc::parseScheme(asString(*scheme, "scheme"));
    } catch (const InvalidArgumentError& e) {
      badRequest(e.what());
    }
  }
  if (const JsonValue* variability = root.find("variability"))
    parseVariability(*variability, req);
  parseMeasure(member(root, "measure"), req.measure);

  if (const JsonValue* every = root.find("stream_every")) {
    const long k = asInteger(*every, "stream_every");
    if (k <= 0) badRequest("stream_every must be > 0");
    req.streamEvery = static_cast<int>(k);
  }
  if (const JsonValue* every = root.find("kde_every")) {
    const long k = asInteger(*every, "kde_every");
    if (k < 0) badRequest("kde_every must be >= 0");
    req.kdeEvery = static_cast<int>(k);
  }
  if (const JsonValue* points = root.find("kde_points")) {
    const long k = asInteger(*points, "kde_points");
    if (k < 2 || k > 4096) badRequest("kde_points out of range");
    req.kdePoints = static_cast<int>(k);
  }
  return req;
}

}  // namespace vsstat::serve
