// Campaign-server wire protocol: request schema and the minimal JSON layer
// behind it.
//
// The daemon (serve/server.hpp) speaks line-delimited JSON: one request
// object per line in, a stream of frame objects per line out (progress /
// kde / final / error -- serve/stream.hpp builds them).  This header owns
// the request side: a small self-contained JSON document model (the
// container images this library targets carry no JSON dependency, so the
// parser is hand-rolled -- strict UTF-8-agnostic byte handling, \uXXXX
// escapes preserved as-is) and the validated CampaignRequest the server
// executes.
//
// Request schema (all keys lowercase; unknown keys rejected so typos fail
// loudly instead of silently running defaults):
//
//   {"id": "r1",                      optional echo tag (default "")
//    "deck": "...\n...",              REQUIRED SPICE netlist text
//    "samples": 1000,                 sample budget           (default 1000)
//    "seed": 42,                      campaign seed           (default 42)
//    "threads": 1,                    worker threads, 0=all   (default 1)
//    "mode": {"numerics": "reference"|"fast",
//             "solver":   "fresh"|"reusePivot",
//             "tier":     "perSample"|"statistical"},
//    "scheme": "rng"|"iid"|"lhs"|"halton"|"sobol",  (default "rng")
//    "variability": {"sigma_scale": 1.0,            scales every alpha
//                    "nmos": {"avt0":2.3,"aleff":3.7,"aweff":3.7,
//                             "amu":900.0,"acinv":0.3},   (any subset)
//                    "pmos": {...}},
//    "measure": {"analysis": "op"|"tran",           (default "op")
//                "probes": ["out", ...],            REQUIRED, >= 1 node
//                "spec": {"min": 0.1, "max": 0.5}}, (optional yield window)
//    "stream_every": 256,             progress-frame cadence in samples
//    "kde_every": 0,                  KDE-frame cadence (0 = off)
//    "kde_points": 32}                KDE grid resolution
#ifndef VSSTAT_SERVE_REQUEST_HPP
#define VSSTAT_SERVE_REQUEST_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "mc/samplers.hpp"
#include "models/process_variation.hpp"
#include "spice/session.hpp"
#include "util/error.hpp"
#include "yield/parametric.hpp"

namespace vsstat::serve {

// --- minimal JSON ----------------------------------------------------------

/// One JSON document node.  Object member order is preserved (insertion
/// order), numbers are doubles (the protocol's integers all fit exactly).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { null, boolean, number, string, array, object };

  Kind kind = Kind::null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                                 ///< array
  std::vector<std::pair<std::string, JsonValue>> members;       ///< object

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept;

  [[nodiscard]] bool isNull() const noexcept { return kind == Kind::null; }
  [[nodiscard]] const char* kindName() const noexcept;
};

/// Thrown on malformed JSON text (wire-level, before schema validation).
class JsonParseError : public Error {
 public:
  explicit JsonParseError(const std::string& what) : Error(what) {}
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
[[nodiscard]] JsonValue parseJson(const std::string& text);

/// Appends a JSON string literal (quotes + escapes) to `out`.
void appendJsonString(std::string& out, const std::string& s);

/// Appends a round-trip-exact double (%.17g; NaN/Inf become null -- JSON
/// has no representation for them and the failure taxonomy reports them
/// separately).
void appendJsonNumber(std::string& out, double v);

// --- request schema --------------------------------------------------------

/// Wire-protocol error codes (the "code" field of error frames).
enum class RequestError : std::uint8_t {
  badJson,        ///< line is not a JSON object
  badRequest,     ///< schema violation (missing/unknown/ill-typed field)
  deckError,      ///< netlist rejected (carries the deck line number)
  campaignError,  ///< campaign aborted after it started
};
[[nodiscard]] const char* toString(RequestError code) noexcept;

/// Schema validation failure; `code()` selects the error-frame code.
class RequestValidationError : public Error {
 public:
  RequestValidationError(RequestError code, const std::string& what)
      : Error(what), code_(code) {}
  [[nodiscard]] RequestError code() const noexcept { return code_; }

 private:
  RequestError code_;
};

/// What one campaign request measures per sample.
struct MeasureSpec {
  enum class Analysis : std::uint8_t {
    op,    ///< DC operating point; metric m = V(probes[m])
    tran,  ///< transient per the deck's .tran card; metric m = final V(probes[m])
  };
  Analysis analysis = Analysis::op;
  std::vector<std::string> probes;  ///< node names; metricCount = probes.size()
  /// Optional spec window on metric 0 for the streamed yield estimate.
  std::optional<yield::SpecLimit> spec;
};

/// A validated campaign request, ready to execute.
struct CampaignRequest {
  std::string id;
  std::string deck;
  int samples = 1000;
  std::uint64_t seed = 42;
  unsigned threads = 1;
  spice::SessionOptions mode;  ///< numerics / solver / tier axes
  mc::SamplingPlan::Scheme scheme = mc::SamplingPlan::Scheme::providerRng;
  models::PelgromAlphas nmosAlphas;
  models::PelgromAlphas pmosAlphas;
  MeasureSpec measure;
  int streamEvery = 256;
  int kdeEvery = 0;
  int kdePoints = 32;
};

/// Paper-flavored default Pelgrom alphas (Table II ballpark), used when a
/// request omits the variability block.
[[nodiscard]] models::PelgromAlphas defaultAlphas() noexcept;

/// Validates a parsed JSON document against the request schema.  Throws
/// RequestValidationError (code badRequest) on any violation.
[[nodiscard]] CampaignRequest parseCampaignRequest(const JsonValue& root);

}  // namespace vsstat::serve

#endif  // VSSTAT_SERVE_REQUEST_HPP
