#include "serve/stream.hpp"

#include <cinttypes>
#include <cstdio>

#include "stats/kde.hpp"
#include "util/fnv1a.hpp"

namespace vsstat::serve {

StreamingEstimator::StreamingEstimator(std::size_t metricCount,
                                       std::optional<yield::SpecLimit> spec)
    : metricCount_(metricCount), spec_(std::move(spec)) {
  require(metricCount_ > 0, "StreamingEstimator: metricCount must be > 0");
}

void StreamingEstimator::fold(const mc::McChunkView& view) {
  total_ = view.total;
  for (std::size_t i = view.first; i < view.end; ++i) {
    const std::size_t local = i - view.first;
    ++done_;
    rescued_ += view.rescues[local];
    if (view.ok[local] == 0) {
      ++failures_;
      const int cls = view.failureClass[local];
      if (cls >= 0 && cls < kFailureClassCount) ++failuresByClass_[cls];
      continue;
    }
    const double x = view.metrics[local * view.metricCount];
    moments_.add(x);
    q05_.add(x);
    q50_.add(x);
    q95_.add(x);
    if (spec_ && spec_->passes(x)) ++passed_;
    values_.push_back(x);
  }
}

double StreamingEstimator::q05() const {
  return q05_.count() == 0 ? 0.0 : q05_.value();
}
double StreamingEstimator::q50() const {
  return q50_.count() == 0 ? 0.0 : q50_.value();
}
double StreamingEstimator::q95() const {
  return q95_.count() == 0 ? 0.0 : q95_.value();
}

std::optional<double> StreamingEstimator::runningYield() const {
  if (!spec_ || done_ == 0) return std::nullopt;
  // Conservative running estimate: every dropped sample counts as a spec
  // failure, matching the final frame's DropPolicy::countAsFail.
  return static_cast<double>(passed_) / static_cast<double>(done_);
}

std::uint64_t metricsFingerprint(const mc::McResult& result) {
  util::Fnv1a hash;
  for (const std::vector<double>& row : result.metrics)
    for (const double v : row) hash.mixDouble(v);
  return hash.value();
}

namespace {

void appendKey(std::string& out, const char* key) {
  appendJsonString(out, key);
  out += ':';
}

void appendFailures(std::string& out, std::size_t totalFailures,
                    const std::array<int, kFailureClassCount>& byClass) {
  appendKey(out, "failures");
  out += "{\"total\":" + std::to_string(totalFailures);
  for (int c = 0; c < kFailureClassCount; ++c) {
    out += ',';
    appendKey(out, toString(static_cast<FailureClass>(c)));
    out += std::to_string(byClass[static_cast<std::size_t>(c)]);
  }
  out += '}';
}

void appendNumberField(std::string& out, const char* key, double v) {
  appendKey(out, key);
  appendJsonNumber(out, v);
}

}  // namespace

std::string progressFrame(const std::string& id, const StreamingEstimator& est,
                          double elapsedMs) {
  std::string out = "{\"type\":\"progress\",";
  appendKey(out, "id");
  appendJsonString(out, id);
  out += ",\"done\":" + std::to_string(est.done());
  out += ",\"total\":" + std::to_string(est.total());
  out += ",\"ok\":" + std::to_string(est.okCount());
  out += ',';
  appendNumberField(out, "mean", est.mean());
  out += ',';
  appendNumberField(out, "sigma", est.sigma());
  out += ',';
  appendNumberField(out, "q05", est.q05());
  out += ',';
  appendNumberField(out, "q50", est.q50());
  out += ',';
  appendNumberField(out, "q95", est.q95());
  out += ',';
  appendKey(out, "yield");
  if (const std::optional<double> y = est.runningYield()) {
    appendJsonNumber(out, *y);
  } else {
    out += "null";
  }
  out += ',';
  std::array<int, kFailureClassCount> byClass{};
  for (int c = 0; c < kFailureClassCount; ++c)
    byClass[static_cast<std::size_t>(c)] =
        est.failureOf(static_cast<std::size_t>(c));
  appendFailures(out, est.failureCount(), byClass);
  out += ",\"rescued\":" + std::to_string(est.rescued());
  out += ',';
  appendNumberField(out, "elapsed_ms", elapsedMs);
  out += '}';
  return out;
}

std::string kdeFrame(const std::string& id, const StreamingEstimator& est,
                     std::size_t points) {
  std::string out = "{\"type\":\"kde\",";
  appendKey(out, "id");
  appendJsonString(out, id);
  out += ",\"done\":" + std::to_string(est.done());
  if (est.values().size() >= 2) {
    const stats::KdeCurve curve = stats::kde(est.values(), points);
    out += ',';
    appendNumberField(out, "bandwidth", curve.bandwidth);
    out += ",\"x\":[";
    for (std::size_t i = 0; i < curve.x.size(); ++i) {
      if (i != 0) out += ',';
      appendJsonNumber(out, curve.x[i]);
    }
    out += "],\"density\":[";
    for (std::size_t i = 0; i < curve.density.size(); ++i) {
      if (i != 0) out += ',';
      appendJsonNumber(out, curve.density[i]);
    }
    out += ']';
  } else {
    // Too few survivors for a density estimate yet.
    out += ",\"bandwidth\":null,\"x\":[],\"density\":[]";
  }
  out += '}';
  return out;
}

std::string finalFrame(const std::string& id, const mc::McResult& result,
                       std::size_t totalSamples,
                       const std::optional<yield::SpecLimit>& spec, bool warm,
                       double ttfsMs, double elapsedMs,
                       double maxDegradedFraction) {
  const std::vector<double>& values = result.metrics.at(0);
  const stats::Summary summary =
      values.empty() ? stats::Summary{} : stats::summarize(values);

  std::string out = "{\"type\":\"final\",";
  appendKey(out, "id");
  appendJsonString(out, id);
  out += ",\"samples\":" + std::to_string(totalSamples);
  out += ",\"ok\":" + std::to_string(values.size());
  out += ',';
  appendNumberField(out, "mean", summary.mean);
  out += ',';
  appendNumberField(out, "sigma", summary.stddev);
  out += ',';
  appendNumberField(out, "min", summary.min);
  out += ',';
  appendNumberField(out, "max", summary.max);
  out += ',';
  appendNumberField(out, "median", summary.median);
  out += ',';
  appendNumberField(out, "q25", summary.q25);
  out += ',';
  appendNumberField(out, "q75", summary.q75);
  out += ',';
  appendKey(out, "yield");
  if (spec && !values.empty()) {
    const yield::YieldEstimate estimate =
        yield::yieldOfCampaign(result, 0, *spec, yield::DropPolicy{});
    out += "{\"value\":";
    appendJsonNumber(out, estimate.yield);
    out += ",\"lower\":";
    appendJsonNumber(out, estimate.lower);
    out += ",\"upper\":";
    appendJsonNumber(out, estimate.upper);
    out += ",\"passed\":" + std::to_string(estimate.passed);
    out += ",\"total\":" + std::to_string(estimate.total);
    out += '}';
  } else {
    out += "null";
  }
  out += ',';
  std::array<int, kFailureClassCount> byClass{};
  for (int c = 0; c < kFailureClassCount; ++c)
    byClass[static_cast<std::size_t>(c)] = result.failuresByClass[
        static_cast<std::size_t>(c)];
  appendFailures(out, static_cast<std::size_t>(result.failures), byClass);
  out += ",\"rescued\":" + std::to_string(result.rescued);
  char hashBuf[32];
  std::snprintf(hashBuf, sizeof hashBuf, "0x%016" PRIx64,
                metricsFingerprint(result));
  out += ',';
  appendKey(out, "metrics_fnv1a");
  appendJsonString(out, hashBuf);
  out += ",\"cache\":";
  appendJsonString(out, warm ? "warm" : "cold");
  const bool healthy =
      totalSamples > 0 &&
      static_cast<double>(result.failures) <=
          maxDegradedFraction * static_cast<double>(totalSamples);
  out += ",\"health\":";
  appendJsonString(out, healthy ? "OK" : "DEGRADED");
  out += ',';
  appendNumberField(out, "ttfs_ms", ttfsMs);
  out += ',';
  appendNumberField(out, "elapsed_ms", elapsedMs);
  out += '}';
  return out;
}

std::string errorFrame(const std::string& id, RequestError code,
                       const std::string& message, int line) {
  std::string out = "{\"type\":\"error\",";
  appendKey(out, "id");
  appendJsonString(out, id);
  out += ",\"code\":";
  appendJsonString(out, toString(code));
  if (code == RequestError::deckError)
    out += ",\"line\":" + std::to_string(line);
  out += ",\"message\":";
  appendJsonString(out, message);
  out += '}';
  return out;
}

}  // namespace vsstat::serve
