#include "serve/session_cache.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>

#include "mc/providers.hpp"
#include "mc/samplers.hpp"
#include "sim/rescue.hpp"
#include "spice/waveform.hpp"
#include "util/fnv1a.hpp"

namespace vsstat::serve {

namespace {

std::string lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

void mixString(util::Fnv1a& hash, const std::string& s) {
  hash.mix(s.size());
  for (const char c : s)
    hash.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
}

void mixAlphas(util::Fnv1a& hash, const models::PelgromAlphas& a) {
  hash.mixDouble(a.aVt0);
  hash.mixDouble(a.aLeff);
  hash.mixDouble(a.aWeff);
  hash.mixDouble(a.aMu);
  hash.mixDouble(a.aCinv);
}

/// Hashes everything that determines a pool's identity: deck text, the
/// three session-mode axes, the variability spec, and the sampling scheme
/// (generator schemes need FixedZProvider sessions, so they cannot share a
/// pool with provider-RNG requests).
std::string cacheKeyOf(const CampaignRequest& req) {
  util::Fnv1a hash;
  mixString(hash, req.deck);
  hash.mix(static_cast<std::uint64_t>(req.mode.numerics));
  hash.mix(static_cast<std::uint64_t>(req.mode.solver));
  hash.mix(static_cast<std::uint64_t>(req.mode.tier));
  hash.mix(static_cast<std::uint64_t>(req.mode.useDeviceBank));
  hash.mix(static_cast<std::uint64_t>(req.scheme));
  mixAlphas(hash, req.nmosAlphas);
  mixAlphas(hash, req.pmosAlphas);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx-%zu",
                static_cast<unsigned long long>(hash.value()),
                req.deck.size());
  return buf;
}

/// Deck-plan cache key: content hash of the deck text alone (the DeckPlan
/// depends on nothing else).
std::string deckKeyOf(const std::string& deck) {
  util::Fnv1a hash;
  mixString(hash, deck);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx-%zu",
                static_cast<unsigned long long>(hash.value()), deck.size());
  return buf;
}

double millisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

std::shared_ptr<const DeckPlan> parseDeckPlan(const std::string& deck) {
  // Validation parse: classified deck rejects surface here with their
  // 1-based line (spice::NetlistParseError propagates to the server's
  // deck_error frame), before any pool or session is touched.
  const spice::ParsedNetlist parsed = spice::parseNetlist(deck);
  auto plan = std::make_shared<DeckPlan>();
  plan->vsMosfets = parsed.vsMosfets;
  if (parsed.vsNmos) plan->nmos = *parsed.vsNmos;
  if (parsed.vsPmos) plan->pmos = *parsed.vsPmos;
  plan->tran = parsed.tran;
  plan->ground = parsed.circuit.ground();
  // Snapshot the node table: NodeIds are contiguous and first-mention-
  // ordered, so every worker's parse of this deck assigns the same ids.
  const std::size_t nodes = parsed.circuit.nodeCount();
  plan->nodeByName.reserve(nodes);
  for (std::size_t id = 0; id < nodes; ++id)
    plan->nodeByName.emplace(
        parsed.circuit.nodeName(static_cast<spice::NodeId>(id)),
        static_cast<spice::NodeId>(id));
  return plan;
}

CampaignPlan::CampaignPlan(CampaignRequest request)
    : request_(std::move(request)),
      key_(cacheKeyOf(request_)),
      deck_(parseDeckPlan(request_.deck)) {
  resolveMeasure();
}

CampaignPlan::CampaignPlan(CampaignRequest request,
                           std::shared_ptr<const DeckPlan> deck)
    : request_(std::move(request)),
      key_(cacheKeyOf(request_)),
      deck_(std::move(deck)) {
  require(deck_ != nullptr, "CampaignPlan: null deck plan");
  resolveMeasure();
}

void CampaignPlan::resolveMeasure() {
  if (request_.measure.analysis == MeasureSpec::Analysis::tran &&
      !deck_->tran)
    throw RequestValidationError(
        RequestError::badRequest,
        "measure.analysis is 'tran' but the deck has no .tran card");

  // Resolve probe names against the deck plan's node-table snapshot (no
  // Circuit mutation: the DeckPlan is shared across concurrent requests).
  probeNodes_.reserve(request_.measure.probes.size());
  for (const std::string& probe : request_.measure.probes) {
    const std::string name = lowercase(probe);
    if (name == "0" || name == "gnd") {
      probeNodes_.push_back(deck_->ground);
      continue;
    }
    const auto it = deck_->nodeByName.find(name);
    if (it == deck_->nodeByName.end())
      throw RequestValidationError(
          RequestError::badRequest,
          "measure.probes: unknown node '" + probe + "'");
    probeNodes_.push_back(it->second);
  }
}

std::size_t CampaignPlan::zDimension() const noexcept {
  return deck_->vsMosfets * mc::VsFixedZProvider::kDimsPerDevice;
}

std::shared_ptr<sim::SessionPool<DeckFixture>> CampaignPlan::makePool() const {
  const std::string deck = request_.deck;
  const sim::SessionPool<DeckFixture>::Builder build =
      [deck](circuits::DeviceProvider& provider) {
        spice::ParsedNetlist parsed = spice::parseNetlist(deck, provider);
        return DeckFixture{std::move(parsed.circuit)};
      };

  const models::VsParams nmos = deck_->nmos;
  const models::VsParams pmos = deck_->pmos;
  const models::PelgromAlphas nmosAlphas = request_.nmosAlphas;
  const models::PelgromAlphas pmosAlphas = request_.pmosAlphas;
  mc::ProviderFactory providerFactory;
  if (request_.scheme == mc::SamplingPlan::Scheme::providerRng) {
    providerFactory = [nmos, pmos, nmosAlphas, pmosAlphas]() {
      // Initial seed is irrelevant: bindSample reseeds per sample.
      return std::make_unique<mc::VsStatisticalProvider>(
          nmos, pmos, nmosAlphas, pmosAlphas, stats::Rng(1));
    };
  } else {
    providerFactory = [nmos, pmos, nmosAlphas, pmosAlphas]() {
      return std::make_unique<mc::VsFixedZProvider>(nmos, pmos, nmosAlphas,
                                                    pmosAlphas);
    };
  }
  return std::make_shared<sim::SessionPool<DeckFixture>>(
      build, providerFactory, request_.mode);
}

mc::McResult CampaignPlan::run(sim::SessionPool<DeckFixture>& pool,
                               const FrameSink& emit, bool warm) const {
  const auto start = std::chrono::steady_clock::now();

  mc::McOptions options;
  options.samples = request_.samples;
  options.seed = request_.seed;
  options.threads = request_.threads;
  if (request_.mode.tier == spice::ToleranceTier::statistical)
    options.sampleBlock = mc::kStatisticalSampleBlock;

  mc::SamplingPlan plan;
  plan.scheme = request_.scheme;
  plan.dimension = zDimension();
  const std::unique_ptr<mc::SampleGenerator> generator =
      mc::makeSampleGenerator(plan, static_cast<std::size_t>(options.samples),
                              options.seed);

  // Per-sample measurement: the fixture arrives rebound for the sample.
  const std::optional<std::pair<double, double>> tran = deck_->tran;
  const std::vector<spice::NodeId> probes = probeNodes_;
  const MeasureSpec::Analysis analysis = request_.measure.analysis;
  const mc::CircuitSampleFn<DeckFixture> measure =
      [tran, probes, analysis](std::size_t /*index*/,
                               sim::CampaignSession<DeckFixture>& session,
                               stats::Rng& /*rng*/,
                               std::vector<double>& out) {
        spice::SimSession& spice = session.spice();
        if (analysis == MeasureSpec::Analysis::op) {
          const spice::OperatingPoint op = spice.dcOperatingPoint();
          for (std::size_t m = 0; m < probes.size(); ++m)
            out[m] = op.v(probes[m]);
          return;
        }
        spice::TransientOptions topt;
        topt.dt = tran->first;
        topt.tStop = tran->second;
        static thread_local spice::Waveform wf(0);
        spice.transient(topt, wf);
        for (std::size_t m = 0; m < probes.size(); ++m)
          out[m] = wf.finalValue(probes[m]);
      };

  const sim::RescuePolicy rescue;
  const auto armGenerator = [&](sim::CampaignSession<DeckFixture>& session,
                                std::size_t index) {
    if (generator == nullptr) return;
    auto* fixed =
        dynamic_cast<circuits::FixedZProvider*>(&session.provider());
    require(fixed != nullptr,
            "CampaignPlan: generator schemes require FixedZProvider "
            "sessions");
    fixed->setZ(generator->standardNormals(index));
  };

  // Same shape as mc::runCampaign<Fixture>, but against the SHARED pool:
  // blocked dispatch holds one lease per warm-chain block via the
  // thread-local slot, per-sample dispatch leases per sample.
  const mc::SampleFnEx runSample = [&](std::size_t index, stats::Rng& rng,
                                       std::vector<double>& out,
                                       mc::SampleContext& ctx) {
    if (sim::CampaignSession<DeckFixture>* block =
            mc::detail::blockSessionSlot<DeckFixture>()) {
      armGenerator(*block, index);
      sim::runSampleWithRescue(index, *block, rng, out, ctx, measure, rescue);
      return;
    }
    sim::SessionPool<DeckFixture>::Lease lease = pool.acquire();
    armGenerator(*lease, index);
    sim::runSampleWithRescue(index, *lease, rng, out, ctx, measure, rescue);
  };

  mc::BlockResourceFn blockResource;
  if (options.sampleBlock > 0)
    blockResource = [&pool](std::size_t) -> std::shared_ptr<void> {
      return std::make_shared<mc::detail::BlockHold<DeckFixture>>(
          pool.acquire());
    };

  StreamingEstimator estimator(metricCount(), request_.measure.spec);
  double ttfsMs = -1.0;
  std::size_t lastKde = 0;
  const mc::ChunkFn onChunk = [&](const mc::McChunkView& view) {
    estimator.fold(view);
    if (ttfsMs < 0.0) ttfsMs = millisSince(start);
    if (emit) {
      emit(progressFrame(request_.id, estimator, millisSince(start)));
      if (request_.kdeEvery > 0 &&
          estimator.done() / static_cast<std::size_t>(request_.kdeEvery) >
              lastKde) {
        lastKde = estimator.done() / static_cast<std::size_t>(request_.kdeEvery);
        emit(kdeFrame(request_.id, estimator,
                      static_cast<std::size_t>(request_.kdePoints)));
      }
    }
  };

  mc::McResult result =
      mc::runCampaignChunked(options, metricCount(), runSample, blockResource,
                             request_.streamEvery, onChunk);
  if (ttfsMs < 0.0) ttfsMs = millisSince(start);
  if (emit)
    emit(finalFrame(request_.id, result,
                    static_cast<std::size_t>(request_.samples),
                    request_.measure.spec, warm, ttfsMs, millisSince(start)));
  return result;
}

std::shared_ptr<const DeckPlan> SessionCache::deckPlan(
    const std::string& deck) {
  const std::string key = deckKeyOf(deck);
  {
    const std::lock_guard<std::mutex> lock(planMutex_);
    const auto it = planByKey_.find(key);
    if (it != planByKey_.end()) {
      planLru_.splice(planLru_.begin(), planLru_, it->second);
      return it->second->second;
    }
  }
  // Parse outside the lock: a slow (or throwing) parse must not serialize
  // concurrent requests.  A racing duplicate parse is harmless -- both
  // produce equivalent immutable plans and the second insert wins nothing.
  std::shared_ptr<const DeckPlan> plan = parseDeckPlan(deck);
  const std::lock_guard<std::mutex> lock(planMutex_);
  const auto it = planByKey_.find(key);
  if (it != planByKey_.end()) {
    planLru_.splice(planLru_.begin(), planLru_, it->second);
    return it->second->second;
  }
  planLru_.emplace_front(key, plan);
  planByKey_.emplace(key, planLru_.begin());
  while (planLru_.size() > planCapacity_) {
    planByKey_.erase(planLru_.back().first);
    planLru_.pop_back();
  }
  return plan;
}

SessionCache::Acquired SessionCache::acquire(const CampaignPlan& plan) {
  Acquired acquired;
  acquired.warm = cache_.contains(plan.cacheKey());
  acquired.pool =
      cache_.acquire(plan.cacheKey(), [&plan] { return plan.makePool(); });
  return acquired;
}

}  // namespace vsstat::serve
