// Streaming campaign statistics and the server's outbound frame builders.
//
// A campaign request answers with a *stream* of line-delimited JSON frames
// rather than one blocking result: running estimates every stream_every
// samples, optional KDE snapshots, then one exact final frame.  This
// header owns both halves -- the StreamingEstimator that folds
// mc::McChunkView chunks into O(1)-memory running statistics, and the
// frame serializers.
//
// Frame schemas (one JSON object per line; "type" discriminates):
//
//   progress  {"type":"progress","id":...,"done":N,"total":N,"ok":N,
//              "mean":x,"sigma":x,"q05":x,"q50":x,"q95":x,
//              "yield":x|null,                    streamed pass fraction
//              "failures":{"total":n,"singular":n,"non-convergence":n,
//                          "non-finite":n,"metric-domain":n,
//                          "unclassified":n},
//              "rescued":n,"elapsed_ms":x}
//
//   kde       {"type":"kde","id":...,"done":N,"bandwidth":x,
//              "x":[...],"density":[...]}        metric-0 snapshot
//
//   final     {"type":"final","id":...,"samples":N,"ok":N,
//              "mean":x,"sigma":x,"min":x,"max":x,
//              "median":x,"q25":x,"q75":x,
//              "yield":{"value":x,"lower":x,"upper":x,
//                       "passed":n,"total":n}|null,
//              "failures":{...as progress...},"rescued":n,
//              "metrics_fnv1a":"0x...",          determinism fingerprint
//              "cache":"warm"|"cold","health":"OK"|"DEGRADED",
//              "ttfs_ms":x,"elapsed_ms":x}
//
//   error     {"type":"error","id":...,"code":"bad_json"|"bad_request"|
//              "deck_error"|"campaign_error","line":n,"message":"..."}
//              ("line" present only for deck_error, 1-based deck line)
//
// Bit-equality contract: the final frame's mean/sigma/quantiles come from
// stats::summarize over McResult::metrics[0] and its yield from
// yield::yieldOfCampaign -- the same calls an in-process campaign makes --
// and every double is serialized with %.17g, which round-trips exactly.
// A client parsing the final frame therefore recovers bit-identical
// statistics to running the campaign locally with the same seed.
#ifndef VSSTAT_SERVE_STREAM_HPP
#define VSSTAT_SERVE_STREAM_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mc/runner.hpp"
#include "serve/request.hpp"
#include "stats/descriptive.hpp"
#include "yield/parametric.hpp"

namespace vsstat::serve {

/// Folds completed campaign chunks (mc::McChunkView, index order) into
/// running statistics for progress frames: Welford moments and P-squared
/// quantiles of metric 0, streamed pass counts against the optional spec
/// window, per-class failure counts, rescues.  Metric-0 survivor values
/// are retained verbatim -- KDE snapshots and exactness checks need them.
class StreamingEstimator {
 public:
  StreamingEstimator(std::size_t metricCount,
                     std::optional<yield::SpecLimit> spec);

  /// Folds one chunk; chunks must arrive in index order (the runner's
  /// ChunkFn contract guarantees it).
  void fold(const mc::McChunkView& view);

  [[nodiscard]] std::size_t done() const noexcept { return done_; }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t okCount() const noexcept { return values_.size(); }
  [[nodiscard]] std::size_t failureCount() const noexcept { return failures_; }
  [[nodiscard]] int failureOf(std::size_t classIndex) const noexcept {
    return failuresByClass_[classIndex];
  }
  [[nodiscard]] int rescued() const noexcept { return rescued_; }

  [[nodiscard]] double mean() const noexcept { return moments_.mean(); }
  [[nodiscard]] double sigma() const noexcept { return moments_.stddev(); }
  [[nodiscard]] double q05() const;
  [[nodiscard]] double q50() const;
  [[nodiscard]] double q95() const;
  /// Streamed pass fraction against the spec (failed samples count as spec
  /// failures -- the conservative DropPolicy); nullopt without a spec.
  [[nodiscard]] std::optional<double> runningYield() const;

  /// Metric-0 values of surviving samples, in sample-index order.
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::size_t metricCount_;
  std::optional<yield::SpecLimit> spec_;
  std::size_t done_ = 0;
  std::size_t total_ = 0;
  std::size_t failures_ = 0;
  std::array<int, kFailureClassCount> failuresByClass_{};
  int rescued_ = 0;
  long passed_ = 0;
  stats::MomentAccumulator moments_;
  stats::StreamingQuantile q05_{0.05};
  stats::StreamingQuantile q50_{0.50};
  stats::StreamingQuantile q95_{0.95};
  std::vector<double> values_;
};

/// FNV-1a fingerprint over every metric row of a campaign result, row-major
/// (metric 0's samples, then metric 1's, ...).  The final frame reports it
/// and the scaling tests compare it across worker counts.
[[nodiscard]] std::uint64_t metricsFingerprint(const mc::McResult& result);

// --- frame builders (each returns one line WITHOUT the trailing '\n') ------

[[nodiscard]] std::string progressFrame(const std::string& id,
                                        const StreamingEstimator& est,
                                        double elapsedMs);

[[nodiscard]] std::string kdeFrame(const std::string& id,
                                   const StreamingEstimator& est,
                                   std::size_t points);

/// Builds the exact final frame from the finished campaign result.
/// `warm` reports whether the request leased a cached session pool; health
/// is "OK" when no more than `maxDegradedFraction` of the budget failed.
[[nodiscard]] std::string finalFrame(const std::string& id,
                                     const mc::McResult& result,
                                     std::size_t totalSamples,
                                     const std::optional<yield::SpecLimit>& spec,
                                     bool warm, double ttfsMs, double elapsedMs,
                                     double maxDegradedFraction = 0.05);

[[nodiscard]] std::string errorFrame(const std::string& id, RequestError code,
                                     const std::string& message, int line = 0);

}  // namespace vsstat::serve

#endif  // VSSTAT_SERVE_STREAM_HPP
