// Campaign server: netlist-in, statistics-out daemon.
//
// Wire protocol (line-delimited JSON over a unix-domain or local TCP
// socket): each inbound line is one campaign request (serve/request.hpp
// schema); the server answers with a stream of frames (serve/stream.hpp
// schemas) -- progress every stream_every samples, optional KDE snapshots,
// then exactly one final or error frame -- and keeps the connection open
// for the next request.  Try it:
//
//   echo '{"deck":"...","measure":{"probes":["out"]}}' | nc -U /tmp/vsstat.sock
//
// Concurrency model: one handler thread per connection; concurrent
// campaigns share the process-wide util::ThreadPool, interleaving at chunk
// granularity (mc::runCampaignChunked), and lease worker sessions from the
// multi-tenant SessionCache -- a repeat topology+options request goes
// warm.  The protocol core (handleLine) is socket-free so tests and
// benches drive it in-process.
#ifndef VSSTAT_SERVE_SERVER_HPP
#define VSSTAT_SERVE_SERVER_HPP

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session_cache.hpp"

namespace vsstat::serve {

class CampaignServer {
 public:
  struct Options {
    /// Session-cache capacity (distinct warm topology+options entries).
    std::size_t cacheCapacity = 8;
  };

  CampaignServer();
  explicit CampaignServer(Options options);
  ~CampaignServer();

  CampaignServer(const CampaignServer&) = delete;
  CampaignServer& operator=(const CampaignServer&) = delete;

  /// Protocol core, socket-free: handles one request line, emitting every
  /// response frame (no trailing newline) through `emit` on this thread.
  /// Blank lines are ignored; all failures become error frames -- this
  /// never throws on bad input.  Thread-safe: concurrent calls run
  /// concurrent campaigns against the shared cache.
  void handleLine(const std::string& line, const FrameSink& emit);

  /// Binds a unix-domain listening socket at `path` (an existing socket
  /// file is replaced).  Call serve() afterwards.
  void listenUnix(const std::string& path);

  /// Binds a TCP listening socket on 127.0.0.1 (loopback only); port 0
  /// picks an ephemeral port.  Returns the bound port.
  int listenTcp(int port);

  /// Accept loop: serves connections until stop() is called from another
  /// thread.  One thread per connection.
  void serve();

  /// Stops the accept loop and shuts down every live connection; serve()
  /// returns and joins its handler threads.  Idempotent.
  void stop();

  [[nodiscard]] SessionCache& cache() noexcept { return cache_; }

 private:
  void handleConnection(int fd);

  SessionCache cache_;
  int listenFd_ = -1;
  std::atomic<bool> running_{false};
  std::mutex mutex_;  ///< guards connections_ and threads_
  std::vector<int> connections_;
  std::vector<std::thread> threads_;
};

}  // namespace vsstat::serve

#endif  // VSSTAT_SERVE_SERVER_HPP
