#include "serve/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "spice/netlist.hpp"

namespace vsstat::serve {

namespace {

/// Writes the whole buffer, retrying on partial writes and EINTR.  Returns
/// false when the peer is gone (the campaign keeps running; its frames are
/// simply dropped -- a disconnect must not abort shared-pool work).
bool writeAll(int fd, const char* data, std::size_t size) {
  while (size > 0) {
#ifdef MSG_NOSIGNAL
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
#else
    const ssize_t n = ::send(fd, data, size, 0);
#endif
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

CampaignServer::CampaignServer() : CampaignServer(Options{}) {}

CampaignServer::CampaignServer(Options options)
    : cache_(options.cacheCapacity) {}

CampaignServer::~CampaignServer() {
  stop();
  if (listenFd_ >= 0) ::close(listenFd_);
}

void CampaignServer::handleLine(const std::string& line,
                                const FrameSink& emit) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return;
  std::string id;
  try {
    const JsonValue doc = parseJson(line);
    // Best-effort id echo for error frames emitted after this point.
    if (const JsonValue* idValue = doc.find("id");
        idValue != nullptr && idValue->kind == JsonValue::Kind::string)
      id = idValue->string;
    CampaignRequest request = parseCampaignRequest(doc);
    // Warm path: the deck-plan cache skips the validation parse, the pool
    // cache skips the session builds -- a repeat topology goes straight
    // to its first chunk.
    std::shared_ptr<const DeckPlan> deck = cache_.deckPlan(request.deck);
    const CampaignPlan plan(std::move(request), std::move(deck));
    const SessionCache::Acquired acquired = cache_.acquire(plan);
    (void)plan.run(*acquired.pool, emit, acquired.warm);
  } catch (const JsonParseError& e) {
    emit(errorFrame(id, RequestError::badJson, e.what()));
  } catch (const spice::NetlistParseError& e) {
    emit(errorFrame(id, RequestError::deckError, e.message(), e.line()));
  } catch (const RequestValidationError& e) {
    emit(errorFrame(id, e.code(), e.what()));
  } catch (const std::exception& e) {
    emit(errorFrame(id, RequestError::campaignError, e.what()));
  }
}

void CampaignServer::listenUnix(const std::string& path) {
  require(listenFd_ < 0, "CampaignServer: already listening");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  require(path.size() < sizeof(addr.sun_path),
          "CampaignServer: socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  require(fd >= 0, "CampaignServer: socket() failed");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    require(false, "CampaignServer: bind/listen on '" + path + "' failed");
  }
  listenFd_ = fd;
}

int CampaignServer::listenTcp(int port) {
  require(listenFd_ < 0, "CampaignServer: already listening");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  require(fd >= 0, "CampaignServer: socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    ::close(fd);
    require(false, "CampaignServer: bind/listen on 127.0.0.1:" +
                       std::to_string(port) + " failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  listenFd_ = fd;
  return static_cast<int>(ntohs(bound.sin_port));
}

void CampaignServer::serve() {
  require(listenFd_ >= 0, "CampaignServer: listen before serve");
  running_.store(true);
  while (running_.load()) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listening socket shut down by stop()
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    connections_.push_back(fd);
    threads_.emplace_back([this, fd] { handleConnection(fd); });
  }
  // Drain handler threads so serve() returns with everything quiesced.
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
}

void CampaignServer::stop() {
  if (!running_.exchange(false)) return;
  if (listenFd_ >= 0) ::shutdown(listenFd_, SHUT_RDWR);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const int fd : connections_) ::shutdown(fd, SHUT_RDWR);
}

void CampaignServer::handleConnection(int fd) {
  const FrameSink emit = [fd](const std::string& frame) {
    const std::string line = frame + "\n";
    writeAll(fd, line.data(), line.size());
  };

  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      handleLine(line, emit);
    }
  }
  ::close(fd);
  const std::lock_guard<std::mutex> lock(mutex_);
  connections_.erase(
      std::remove(connections_.begin(), connections_.end(), fd),
      connections_.end());
}

}  // namespace vsstat::serve
