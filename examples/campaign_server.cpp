// Campaign server: the netlist-in, statistics-out daemon end to end.
//
// Daemon mode (default) binds a unix-domain socket (or 127.0.0.1 TCP with
// --tcp) and serves line-delimited JSON campaign requests until killed:
//
//   ./example_campaign_server --unix /tmp/vsstat.sock
//   echo '{"deck":"...", "measure":{"probes":["q"]}}' | nc -U /tmp/vsstat.sock
//
// Self-test mode (--self-test [samples], the CI smoke) starts the daemon
// in-process on a private socket, connects a real client, and runs the
// same SRAM read-disturb campaign twice -- cold, then warm from the
// session cache -- checking that each run streams at least three progress
// frames before its final frame and that the two final frames carry
// bit-identical statistics (same seed => same metrics_fnv1a, warm or
// cold).  The half-cell deck is monostable by construction (access NMOS
// pulls the internal node toward the precharged bitline, driver NMOS
// fights it), so DC convergence is unambiguous and the read-disturb
// voltage V(q) yields against a 0.25*VDD spec window.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"

using namespace vsstat;

namespace {

constexpr const char* kDeck = R"(* SRAM read-disturb half cell
.title read disturb proxy
VDD vdd 0 0.9
VWL wl 0 0.9
VBL bl 0 0.9
VQB qb 0 0.9
* driver NMOS holds q low; access NMOS pulls it toward the bitline
MDRV q qb 0 nfet W=300n L=40n
MACC bl wl q nfet W=150n L=40n
* load PMOS is off (gate held high) -- leakage path only
MLD q qb vdd pfet W=150n L=40n
.model nfet vs_nmos
.model pfet vs_pmos
.end
)";

std::string buildRequest(const std::string& id, int samples) {
  std::string req = "{\"id\":";
  serve::appendJsonString(req, id);
  req += ",\"deck\":";
  serve::appendJsonString(req, kDeck);
  req += ",\"samples\":" + std::to_string(samples);
  req += ",\"seed\":7,\"threads\":2";
  req += ",\"mode\":{\"tier\":\"statistical\"}";
  req += ",\"stream_every\":24";
  req += ",\"measure\":{\"analysis\":\"op\",\"probes\":[\"q\"],"
         "\"spec\":{\"max\":0.225}}}";
  return req;
}

/// Sends one request line and collects response frames until the final or
/// error frame arrives.
std::vector<std::string> roundTrip(int fd, const std::string& request) {
  const std::string line = request + "\n";
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = ::send(fd, line.data() + sent, line.size() - sent, 0);
    if (n <= 0) return {};
    sent += static_cast<size_t>(n);
  }
  std::vector<std::string> frames;
  std::string buffer;
  char chunk[4096];
  while (true) {
    const size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      frames.push_back(buffer.substr(0, newline));
      buffer.erase(0, newline + 1);
      const std::string& frame = frames.back();
      if (frame.find("\"type\":\"final\"") != std::string::npos ||
          frame.find("\"type\":\"error\"") != std::string::npos)
        return frames;
      continue;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return frames;
    buffer.append(chunk, static_cast<size_t>(n));
  }
}

std::string stringField(const serve::JsonValue& obj, const char* key) {
  const serve::JsonValue* v = obj.find(key);
  return v != nullptr && v->kind == serve::JsonValue::Kind::string ? v->string
                                                                   : "";
}

int selfTest(int samples) {
  const std::string socketPath =
      "/tmp/vsstat_campaign_server_" + std::to_string(::getpid()) + ".sock";
  serve::CampaignServer server;
  server.listenUnix(socketPath);
  std::thread serverThread([&server] { server.serve(); });

  int exitCode = 0;
  std::string coldHash;
  std::string coldHealth;
  for (const char* label : {"cold", "warm"}) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (fd < 0 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) != 0) {
      std::printf("self-test: connect failed\n");
      exitCode = 2;
      break;
    }

    const std::vector<std::string> frames =
        roundTrip(fd, buildRequest(label, samples));
    ::close(fd);

    int progress = 0;
    std::string finalFrame;
    for (const std::string& frame : frames) {
      if (frame.find("\"type\":\"progress\"") != std::string::npos)
        ++progress;
      if (frame.find("\"type\":\"final\"") != std::string::npos)
        finalFrame = frame;
    }
    if (finalFrame.empty()) {
      std::printf("%s request: no final frame (%zu frames)\n", label,
                  frames.size());
      if (!frames.empty())
        std::printf("  last frame: %s\n", frames.back().c_str());
      exitCode = 2;
      break;
    }

    const serve::JsonValue parsed = serve::parseJson(finalFrame);
    const std::string cache = stringField(parsed, "cache");
    const std::string health = stringField(parsed, "health");
    const std::string hash = stringField(parsed, "metrics_fnv1a");
    std::printf("%s request: %d progress frames, cache=%s, health=%s,\n"
                "  metrics_fnv1a=%s\n",
                label, progress, cache.c_str(), health.c_str(), hash.c_str());

    if (progress < 3) {
      std::printf("  FAIL: expected >= 3 progress frames before final\n");
      exitCode = 3;
    }
    if (cache != label) {
      std::printf("  FAIL: expected cache=%s\n", label);
      exitCode = 3;
    }
    if (std::string(label) == "cold") {
      coldHash = hash;
      coldHealth = health;
    } else if (hash != coldHash) {
      std::printf("  FAIL: warm metrics_fnv1a differs from cold (same seed "
                  "must be bit-identical)\n");
      exitCode = 3;
    }
    if (health != "OK") exitCode = 3;
  }

  server.stop();
  serverThread.join();
  ::unlink(socketPath.c_str());

  const sim::SessionPoolCache<serve::DeckFixture>::Stats stats =
      server.cache().stats();
  std::printf("session cache: %zu hits, %zu misses, %zu evictions\n",
              stats.hits, stats.misses, stats.evictions);
  std::printf("campaign health: %s\n",
              exitCode == 0 && coldHealth == "OK" ? "OK" : "DEGRADED");
  return exitCode;
}

}  // namespace

int main(int argc, char** argv) {
  std::string unixPath = "/tmp/vsstat_campaign.sock";
  int tcpPort = -1;
  bool runSelfTest = false;
  int samples = 96;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--self-test") {
      runSelfTest = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') samples = std::atoi(argv[++i]);
    } else if (arg == "--unix" && i + 1 < argc) {
      unixPath = argv[++i];
    } else if (arg == "--tcp" && i + 1 < argc) {
      tcpPort = std::atoi(argv[++i]);
    } else {
      std::printf(
          "usage: %s [--self-test [samples]] [--unix PATH] [--tcp PORT]\n",
          argv[0]);
      return 1;
    }
  }

  if (runSelfTest) return selfTest(samples);

  serve::CampaignServer server;
  if (tcpPort >= 0) {
    const int port = server.listenTcp(tcpPort);
    std::printf("campaign server listening on 127.0.0.1:%d\n", port);
  } else {
    server.listenUnix(unixPath);
    std::printf("campaign server listening on %s\n", unixPath.c_str());
    std::printf("try: echo '{\"deck\":\"...\",\"measure\":{\"probes\":[\"out\"]"
                "}}' | nc -U %s\n",
                unixPath.c_str());
  }
  server.serve();
  return 0;
}
