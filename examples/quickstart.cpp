// Quickstart: evaluate the Virtual Source compact model, run a SPICE-level
// inverter simulation, and draw a statistical device sample.
//
//   $ ./quickstart
//
// Walks through the three layers of the library bottom-up.
#include <cstdio>
#include <memory>

#include "models/process_variation.hpp"
#include "models/vs_model.hpp"
#include "spice/analysis.hpp"
#include "spice/circuit.hpp"
#include "spice/elements.hpp"
#include "stats/rng.hpp"

using namespace vsstat;

int main() {
  // --- 1. The compact model ---------------------------------------------------
  const models::VsModel nmos(models::defaultVsNmos());
  const models::DeviceGeometry geom = models::geometryNm(600, 40);  // W/L nm

  std::printf("VS NMOS, W/L = 600/40 nm, Vdd = 0.9 V\n");
  std::printf("  Idsat = %.1f uA   Ioff = %.2f nA\n",
              nmos.drainCurrent(geom, 0.9, 0.9) * 1e6,
              nmos.drainCurrent(geom, 0.0, 0.9) * 1e9);
  std::printf("  Id-Vg at Vds = 0.9 V:\n");
  for (double vgs = 0.0; vgs <= 0.91; vgs += 0.15) {
    std::printf("    vgs = %.2f V -> Id = %10.3e A\n", vgs,
                nmos.drainCurrent(geom, vgs, 0.9));
  }

  // --- 2. Circuit simulation ----------------------------------------------------
  spice::Circuit c;
  const auto vdd = c.node("vdd");
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.addVoltageSource("VDD", vdd, c.ground(), spice::SourceWaveform::dc(0.9));
  c.addVoltageSource("VIN", in, c.ground(),
                     spice::SourceWaveform::pulse(0.0, 0.9, 10e-12, 10e-12,
                                                  10e-12, 60e-12));
  c.addMosfet("MP", out, in, vdd,
              std::make_unique<models::VsModel>(models::defaultVsPmos()),
              models::geometryNm(600, 40));
  c.addMosfet("MN", out, in, c.ground(),
              std::make_unique<models::VsModel>(models::defaultVsNmos()),
              models::geometryNm(300, 40));
  c.addCapacitor("CL", out, c.ground(), 1e-15);

  spice::TransientOptions topt;
  topt.tStop = 140e-12;
  topt.dt = 0.2e-12;
  const spice::Waveform wave = spice::transient(c, topt);

  const auto inRise = wave.crossing(in, 0.45, true);
  const auto outFall = wave.crossing(out, 0.45, false, inRise.value_or(0.0));
  if (inRise && outFall) {
    std::printf("\nInverter propagation delay (tpHL): %.2f ps\n",
                (*outFall - *inRise) * 1e12);
  }

  // --- 3. Statistical sampling --------------------------------------------------
  // Paper Table II NMOS coefficients; sigma_VT0 = a1/sqrt(WL) etc.
  models::PelgromAlphas alphas;
  alphas.aVt0 = 2.3;
  alphas.aLeff = 3.71;
  alphas.aWeff = 3.71;
  alphas.aMu = 944.0;
  alphas.aCinv = 0.29;

  stats::Rng rng(1);
  const auto sigmas = models::sigmasFor(alphas, geom);
  std::printf("\nMismatch sigmas at 600/40 nm: sigma(VT0) = %.1f mV, "
              "sigma(Leff) = %.2f nm\n",
              sigmas.sVt0 * 1e3, sigmas.sLeff * 1e9);
  std::printf("Five statistical instances (Idsat):\n");
  for (int i = 0; i < 5; ++i) {
    const auto delta = models::sampleDelta(sigmas, rng);
    const models::VsModel instance(
        models::applyToVs(models::defaultVsNmos(), delta));
    std::printf("  sample %d: Idsat = %.1f uA\n", i,
                instance.drainCurrent(models::applyGeometry(geom, delta), 0.9,
                                      0.9) * 1e6);
  }
  return 0;
}
