// Power-grid IR-drop campaign on the grid-scale fixture ladder -- the
// beyond-paper-scale workload class (thousand-node meshes under per-device
// leakage variability) that motivated the graph-sparse LU.  Each sample
// draws every leakage FET of a rows x cols mesh, sweeps the feed supply,
// and reports the worst-case (far-corner) IR drop.
//
// The health footer prints the sparse-factor telemetry for the chosen
// rung: pattern nonzeros vs factor nonzeros (fill ratio), the one-time
// fill-reducing ordering cost, and the cumulative full-factor time -- the
// numbers that make "near-linear memory, >10x fresh factors" a printed
// fact instead of a claim.
//
// Usage: example_grid_ir [samples] [mesh_edge] [--fast] [--reuse-pivot]
//                        [--statistical]
//   samples        default 60; CI smoke uses a few
//   mesh_edge      mesh is edge x edge; default 32 (~1k MNA unknowns);
//                  10 and 64 are the other ladder rungs
//   --fast         NumericsMode::fast (SIMD device-bank kernels)
//   --reuse-pivot  SolverMode::reusePivot (canonical pivot order amortized
//                  across every solve of a worker session)
//   --statistical  ToleranceTier::statistical (warm-chain blocks: sweep
//                  levels extrapolate, sample k seeds from sample k-1;
//                  accuracy contract moves to the IR-drop estimators)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "mc/circuit_campaign.hpp"
#include "mc/runner.hpp"
#include "sim/rescue.hpp"
#include "sim/session.hpp"
#include "stats/descriptive.hpp"
#include "util/error.hpp"

using namespace vsstat;

namespace {

using GridSession = sim::CampaignSession<circuits::PowerGridBench>;

// Warm-chain block lease (statistical tier): one session serves a whole
// contiguous sample block, published through a thread-local so the sample
// function below finds it; blocks start cold per the determinism contract.
thread_local GridSession* tlsBlockSession = nullptr;

struct BlockLease {
  sim::SessionPool<circuits::PowerGridBench>::Lease lease;
  explicit BlockLease(sim::SessionPool<circuits::PowerGridBench>::Lease l)
      : lease(std::move(l)) {
    lease->coldStart();
    tlsBlockSession = &*lease;
  }
  ~BlockLease() { tlsBlockSession = nullptr; }
  BlockLease(const BlockLease&) = delete;
  BlockLease& operator=(const BlockLease&) = delete;
};

}  // namespace

int main(int argc, char** argv) {
  int samples = 60;
  int edge = 32;
  spice::SessionOptions sessionOptions;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      sessionOptions.numerics = models::NumericsMode::fast;
    } else if (std::strcmp(argv[i], "--reuse-pivot") == 0) {
      sessionOptions.solver = linalg::SolverMode::reusePivot;
    } else if (std::strcmp(argv[i], "--statistical") == 0) {
      sessionOptions.tier = spice::ToleranceTier::statistical;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "example_grid_ir: unknown flag '%s' (usage: "
                   "example_grid_ir [samples] [mesh_edge] [--fast] "
                   "[--reuse-pivot] [--statistical])\n", argv[i]);
      return 2;
    } else if (positional == 0) {
      samples = std::max(std::atoi(argv[i]), 4);
      ++positional;
    } else {
      edge = std::atoi(argv[i]);
      ++positional;
    }
  }
  require(edge >= 2 && edge <= 128, "mesh_edge must be in [2, 128]");

  core::CharacterizeOptions copt;
  copt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), copt);

  constexpr int kLevels = 21;
  sim::SessionPool<circuits::PowerGridBench> pool(
      [&kit, edge](circuits::DeviceProvider& provider) {
        return circuits::buildPowerGridIrDrop(provider, edge, edge,
                                              kit.vdd());
      },
      [&kit] { return kit.makeProvider(stats::Rng(0)); }, sessionOptions);

  mc::McOptions mcOpt;
  mcOpt.samples = samples;
  mcOpt.seed = 77;
  if (sessionOptions.tier == spice::ToleranceTier::statistical)
    mcOpt.sampleBlock = mc::kStatisticalSampleBlock;

  // Measurement body (session arrives rebound by the rescue wrapper): sweep
  // the feed supply, report the far-corner IR drop at full rail.
  const mc::CircuitSampleFn<circuits::PowerGridBench> measure =
      [&](std::size_t, GridSession& session, stats::Rng&,
          std::vector<double>& out) {
        circuits::PowerGridBench& fx = session.fixture();
        std::vector<double> levels;
        levels.reserve(kLevels);
        for (int i = 0; i < kLevels; ++i)
          levels.push_back(fx.supply * i / (kLevels - 1));
        std::vector<double> farVolts;
        session.spice().dcSweepNode(fx.feedSource, levels, fx.farNode,
                                    farVolts);
        out[0] = fx.supply - farVolts.back();
      };

  mc::BlockResourceFn blockFn;
  if (mcOpt.sampleBlock > 0)
    blockFn = [&pool](std::size_t) -> std::shared_ptr<void> {
      return std::make_shared<BlockLease>(pool.acquire());
    };
  const mc::McResult r = mc::runCampaign(
      mcOpt, 1,
      mc::SampleFnEx([&](std::size_t index, stats::Rng& rng,
                         std::vector<double>& out, mc::SampleContext& ctx) {
        if (tlsBlockSession != nullptr) {
          sim::runSampleWithRescue(index, *tlsBlockSession, rng, out, ctx,
                                   measure);
          return;
        }
        auto lease = pool.acquire();
        sim::runSampleWithRescue(index, *lease, rng, out, ctx, measure);
      }),
      blockFn);

  const auto s = stats::summarize(r.metrics[0]);
  std::printf("%dx%d power-grid IR drop (%d MC samples, %zu leakage FETs, "
              "%s numerics, %s solver, %s tier)\n\n", edge, edge, samples,
              static_cast<std::size_t>(edge) * static_cast<std::size_t>(edge),
              models::toString(sessionOptions.numerics),
              linalg::toString(sessionOptions.solver),
              spice::toString(sessionOptions.tier));
  std::printf("worst-case IR drop: mean = %.3f mV  sigma = %.3f mV  "
              "max = %.3f mV\n", s.mean * 1e3, s.stddev * 1e3, s.max * 1e3);

  // Same unattended-health contract as the other campaign examples: more
  // than 1% dropped samples is a degraded campaign and exits non-zero.
  const int total = static_cast<int>(r.sampleCount()) + r.failures;
  std::printf("\nfailure accounting: %d of %d samples dropped, %d rescued\n",
              r.failures, total, r.rescued);
  for (int c = 0; c < kFailureClassCount; ++c) {
    const auto cls = static_cast<FailureClass>(c);
    if (r.failuresOf(cls) > 0)
      std::printf("  %-15s %d\n", toString(cls), r.failuresOf(cls));
  }
  constexpr double kMaxDropFraction = 0.01;
  const double dropFraction =
      static_cast<double>(r.failures) / static_cast<double>(total);
  if (dropFraction > kMaxDropFraction) {
    std::printf("campaign health: DEGRADED (drop fraction %.2f %% > %.0f %%)\n",
                100.0 * dropFraction, 100.0 * kMaxDropFraction);
    return 3;
  }
  std::printf("campaign health: OK (drop fraction within %.0f %% budget)\n",
              100.0 * kMaxDropFraction);
  if (r.sampleCount() > 0) {
    std::printf("newton: %.1f iterations/sample, warm-start hit rate %.0f %% "
                "(%s tier)\n",
                r.meanIterationsPerSample(), 100.0 * r.warmStartHitRate(),
                spice::toString(sessionOptions.tier));
  }

  // Sparse-factor telemetry from one of the campaign's own workers.
  {
    auto lease = pool.acquire();
    const auto t = lease->spice().solverTelemetry();
    std::printf("solver factor: %zu pattern nnz -> %zu factor nnz "
                "(fill %.2fx), ordering %llu us, %llu full factors "
                "(%llu us), %llu fast refactors, %llu pivot fallbacks\n",
                t.patternNnz, t.factorNnz, t.fillRatio,
                static_cast<unsigned long long>(t.orderingMicros),
                static_cast<unsigned long long>(t.fullFactors),
                static_cast<unsigned long long>(t.fullFactorMicros),
                static_cast<unsigned long long>(t.fastRefactors),
                static_cast<unsigned long long>(t.pivotFallbacks));
  }
  return 0;
}
