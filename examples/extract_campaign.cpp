// Production-volume extraction as a campaign: re-extract a VS card per die
// across a wafer's worth of vt0-perturbed devices and recover the injected
// threshold-voltage spread from the fitted population.
//
//   1. synthesize a noisy I-V/Cgg dataset per die from a vt0-perturbed
//      truth card (the "measurements"),
//   2. run extract::FitCampaign: box-bounded LM fits over the thread pool,
//      residuals through the banked device-evaluation path,
//   3. report the per-class fit outcome breakdown and compare the
//      recovered sigma(vt0) of the fitted population to the injected one.
//
// Usage: extract_campaign [dies] [--fast] [--threads N]
//   dies        campaign size (default 1500; CI smoke runs 80)
//   --fast      NumericsMode::fast device kernels (fit-tolerance contract)
//   --threads N worker count (default: hardware concurrency)
//
// Exits 0 with "campaign health: OK" when no lane failed hard (singular
// normal equations / non-finite data) and >= 90% formally converged --
// lanes that stall at the measurement-noise floor still carry a usable
// card.  A degraded campaign prints DEGRADED and exits 3.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "extract/fit_campaign.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"

using namespace vsstat;

int main(int argc, char** argv) {
  int dies = 1500;
  unsigned threads = 0;
  bool fast = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      fast = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::atoi(argv[i]) > 0) {
      dies = std::atoi(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: extract_campaign [dies] [--fast] [--threads N]\n");
      return 2;
    }
  }

  const models::VsParams seed;  // nominal 40-nm-class card
  const models::DeviceGeometry geom{80e-9, 40e-9};
  const double vtSigma = 0.015;  // injected die-to-die vt0 spread [V]
  const double noiseRel = 0.004; // relative measurement noise

  extract::FitCampaignOptions opt;
  opt.threads = threads;
  if (fast) opt.numerics = models::NumericsMode::fast;
  const extract::FitCampaign campaign(seed, geom,
                                      extract::vsMeasurementGrid(), opt);

  std::printf("Extracting %d dies (%s numerics, %u threads):\n", dies,
              fast ? "fast" : "reference", threads);
  const auto t0 = std::chrono::steady_clock::now();
  const extract::FitCampaignResult result = campaign.run(
      static_cast<std::size_t>(dies), /*seed=*/2013,
      [&](std::size_t, stats::Rng& rng, extract::FitDataset& d) {
        models::VsParams truth = seed;
        truth.vt0 += vtSigma * rng.normal();
        campaign.synthesizeDataset(models::VsModel(truth), noiseRel, rng, d);
      });
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds =
      std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0).count() *
      1e-6;

  std::printf("  outcome breakdown:\n");
  for (int i = 0; i < extract::kFitOutcomeCount; ++i) {
    if (result.outcomeCounts[i] == 0) continue;
    std::printf("    %-12s %6d\n",
                toString(static_cast<extract::FitOutcome>(i)),
                result.outcomeCounts[i]);
  }
  if (result.firstFailure.valid) {
    std::printf("  first failed lane: #%zu (%s): %s\n", result.firstFailure.lane,
                toString(result.firstFailure.outcome),
                result.firstFailure.message.c_str());
  }
  std::printf("  %.1f fits/s, %.1f LM iterations/fit\n", dies / seconds,
              result.meanIterationsPerFit());

  // The point of the exercise: the fitted population carries the wafer's
  // statistics.  sigma(vt0) across extracted cards vs what was injected.
  stats::MomentAccumulator vt0;
  for (std::size_t lane = 0; lane < result.laneCount; ++lane) {
    if (result.outcomes[lane] == extract::FitOutcome::converged ||
        result.outcomes[lane] == extract::FitOutcome::boundPinned) {
      vt0.add(campaign.vsCard(result, lane).vt0);
    }
  }
  std::printf("  recovered vt0: mean %.4f V (seed %.4f), sigma %.4f V "
              "(injected %.4f)\n",
              vt0.mean(), seed.vt0, vt0.stddev(), vtSigma);

  // Health contract: zero hard failures (those lanes have no card at all)
  // and a 90% formal-convergence floor.  Stalled lanes terminated at a
  // numerical local optimum -- their best-iterate card is still usable.
  const int hardFailures =
      result.outcomeCounts[static_cast<int>(extract::FitOutcome::singularJtJ)] +
      result.outcomeCounts[static_cast<int>(extract::FitOutcome::nonFinite)];
  const bool healthy = hardFailures == 0 && result.convergedFraction() >= 0.90;
  if (!healthy) {
    std::printf("campaign health: DEGRADED (%d hard failure(s), %.1f%% "
                "converged)\n",
                hardFailures, 100.0 * result.convergedFraction());
    return 3;
  }
  std::printf("campaign health: OK (%.1f%% converged, 0 hard failures)\n",
              100.0 * result.convergedFraction());
  return 0;
}
