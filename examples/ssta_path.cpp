// SSTA on canonical delays, validated against flat Monte Carlo.
//
// The paper's Fig. 7 discussion (ref [14]) presumes an SSTA layer above
// the statistical device model.  This example builds that layer for a
// 6-stage inverter path:
//
//   1. characterize one stage's canonical delay from the statistical VS
//      kit (global N/P corner axes + local mismatch sigma),
//   2. compose the path canonically (means/globals add, locals RSS) and
//      take the statistical max of the path against a skewed sibling,
//   3. validate mean/sigma against a Monte Carlo that samples the SAME
//      variation model (shared die axes + fresh per-stage mismatch) and
//      measures each stage in the characterization fixture.
//
// Usage: example_ssta_path [samples]   (default 150 flat-MC samples)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/corners.hpp"
#include "core/statistical_vs.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"
#include "timing/statistical_cell.hpp"
#include "timing/tables.hpp"

using namespace vsstat;

namespace {

models::VariationDelta scaled(const models::VariationDelta& fast3, double z) {
  models::VariationDelta d;
  const double f = z / 3.0;
  d.dVt0 = f * fast3.dVt0;
  d.dLeff = f * fast3.dLeff;
  d.dWeff = f * fast3.dWeff;
  d.dMu = f * fast3.dMu;
  d.dCinv = f * fast3.dCinv;
  return d;
}

models::VariationDelta combine(const models::VariationDelta& a,
                               const models::VariationDelta& b) {
  models::VariationDelta d = a;
  d.dVt0 += b.dVt0;
  d.dLeff += b.dLeff;
  d.dWeff += b.dWeff;
  d.dMu += b.dMu;
  d.dCinv += b.dCinv;
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  core::CharacterizeOptions copt;
  copt.analyticGoldenVariance = true;
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), copt);
  const core::StatisticalCorners corners(kit);
  const circuits::CellSizing sizing;

  constexpr int kStages = 6;
  timing::StageModelOptions sopt;
  sopt.mismatchSamples = 48;

  // 1. One stage's canonical delay.
  const timing::CanonicalDelay stage =
      timing::characterizeStageDelay(kit, corners, sizing, sopt);
  std::printf("stage: d0 = %.3f ps, gN = %.3f ps, gP = %.3f ps, "
              "local = %.3f ps\n",
              stage.mean * 1e12, stage.global[0] * 1e12,
              stage.global[1] * 1e12, stage.local * 1e12);

  // 2. Canonical path and statistical max against a skewed sibling.
  timing::CanonicalDelay path = stage;
  for (int k = 1; k < kStages; ++k) path = timing::addSeries(path, stage);
  std::printf("path (%d stages): mean = %.2f ps, sigma = %.3f ps "
              "(3-sigma = %.2f ps)\n",
              kStages, path.mean * 1e12, path.sigma() * 1e12,
              path.quantileSigma(3.0) * 1e12);

  // 3. Monte Carlo over the same model: shared (zN, zP) die axes plus
  //    fresh local mismatch per stage, each stage measured in the
  //    characterization fixture.
  const models::DeviceGeometry pGeom =
      models::geometryNm(sizing.wPmosNm, sizing.lengthNm);
  const models::DeviceGeometry nGeom =
      models::geometryNm(sizing.wNmosNm, sizing.lengthNm);
  const auto& fastN = corners.delta(core::Corner::FF, models::DeviceType::Nmos);
  const auto& fastP = corners.delta(core::Corner::FF, models::DeviceType::Pmos);

  const int kSamples = argc > 1 ? std::max(std::atoi(argv[1]), 10) : 150;
  stats::Rng rng(20260611);
  std::vector<double> mcPath;
  mcPath.reserve(kSamples);
  for (int s = 0; s < kSamples; ++s) {
    stats::Rng sampleRng = rng.fork(static_cast<std::uint64_t>(s));
    const double zN = sampleRng.normal();
    const double zP = sampleRng.normal();
    double total = 0.0;
    for (int k = 0; k < kStages; ++k) {
      const models::VariationDelta dN =
          combine(scaled(fastN, zN),
                  models::sampleDelta(
                      kit.sigmas(models::DeviceType::Nmos, nGeom), sampleRng));
      const models::VariationDelta dP =
          combine(scaled(fastP, zP),
                  models::sampleDelta(
                      kit.sigmas(models::DeviceType::Pmos, pGeom), sampleRng));
      const models::VsModel pmos(
          models::applyToVs(kit.nominal(models::DeviceType::Pmos), dP));
      const models::VsModel nmos(
          models::applyToVs(kit.nominal(models::DeviceType::Nmos), dN));
      total += timing::measureInverterPoint(
                   pmos, models::applyGeometry(pGeom, dP), nmos,
                   models::applyGeometry(nGeom, dN), kit.vdd(),
                   sopt.inputSlew, sopt.loadFarads, sopt.dt)
                   .averageDelay();
    }
    mcPath.push_back(total);
  }
  const stats::Summary mc = stats::summarize(mcPath);
  std::printf("flat MC (%d samples):   mean = %.2f ps, sigma = %.3f ps\n",
              kSamples, mc.mean * 1e12, mc.stddev * 1e12);
  std::printf("  SSTA/MC ratios: mean %.3f, sigma %.3f\n",
              path.mean / mc.mean, path.sigma() / mc.stddev);

  // Statistical max: the same path raced against a sibling slowed by one
  // extra stage -- the sibling dominates, and Clark's max must say so.
  const timing::CanonicalDelay sibling = timing::addSeries(path, stage);
  const timing::CanonicalDelay worst = timing::statisticalMax(path, sibling);
  std::printf("\nmax(path, path+1 stage): mean = %.2f ps (sibling %.2f ps), "
              "P[path critical] = %.4f\n",
              worst.mean * 1e12, sibling.mean * 1e12,
              timing::exceedanceProbability(path, sibling));
  return 0;
}
