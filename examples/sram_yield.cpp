// SRAM read-stability yield under within-die variation -- the use case the
// paper's Fig. 9 motivates.  Two stages:
//
//   1. plain Monte Carlo of the 6T cell's READ/HOLD SNM with the
//      statistical VS kit (distribution, moderate-floor yield);
//   2. the deep tail, where plain MC sees no failures at all: mean-shift
//      importance sampling over the standardized 30-dimensional mismatch
//      space (6 transistors x 5 VS parameters) resolves the failure
//      probability with a tight relative error.
#include <cmath>
#include <cstdio>
#include <vector>

#include "circuits/benchmarks.hpp"
#include "core/statistical_vs.hpp"
#include "measure/snm.hpp"
#include "mc/runner.hpp"
#include "models/process_variation.hpp"
#include "models/vs_model.hpp"
#include "stats/descriptive.hpp"
#include "stats/qq.hpp"
#include "yield/importance.hpp"
#include "yield/parametric.hpp"

using namespace vsstat;

namespace {

/// Provider that realizes a FIXED standardized mismatch vector: entry
/// 5*i+j of z scales parameter j of the i-th requested transistor by its
/// Pelgrom sigma.  This is the bridge between the importance sampler's
/// z-space and circuit instances.
class FixedDeltaProvider final : public circuits::DeviceProvider {
 public:
  FixedDeltaProvider(const core::StatisticalVsKit& kit,
                     const std::vector<double>& z)
      : kit_(kit), z_(z) {}

  [[nodiscard]] circuits::DeviceInstance make(
      models::DeviceType type, const std::string&,
      const models::DeviceGeometry& nominal) override {
    const models::ParameterSigmas s = kit_.sigmas(type, nominal);
    models::VariationDelta d;
    d.dVt0 = next() * s.sVt0;
    d.dLeff = next() * s.sLeff;
    d.dWeff = next() * s.sWeff;
    d.dMu = next() * s.sMu;
    d.dCinv = next() * s.sCinv;
    return {std::make_unique<models::VsModel>(
                models::applyToVs(kit_.nominal(type), d)),
            models::applyGeometry(nominal, d)};
  }

 private:
  double next() { return cursor_ < z_.size() ? z_[cursor_++] : 0.0; }

  const core::StatisticalVsKit& kit_;
  const std::vector<double>& z_;
  std::size_t cursor_ = 0;
};

}  // namespace

int main() {
  core::CharacterizeOptions opt;
  opt.analyticGoldenVariance = true;  // fast, noise-free characterization
  const core::StatisticalVsKit kit = core::StatisticalVsKit::characterize(
      extract::GoldenKit::default40nm(), opt);

  constexpr int kSamples = 800;
  constexpr double kSnmFloor = 0.04;  // V; stability criterion

  mc::McOptions mcOpt;
  mcOpt.samples = kSamples;
  mcOpt.seed = 2026;
  const mc::McResult r = mc::runCampaign(
      mcOpt, 2, [&](std::size_t, stats::Rng& rng, std::vector<double>& out) {
        auto provider = kit.makeProvider(rng);
        auto read = circuits::buildSramButterfly(
            *provider, kit.vdd(), circuits::SramMode::Read,
            circuits::SramSizing{});
        out[0] = measure::measureSnm(read, 45).cellSnm();
        // Same dies, HOLD mode needs a fresh fixture with identical draws:
        auto provider2 = kit.makeProvider(rng.fork(1));
        auto hold = circuits::buildSramButterfly(
            *provider2, kit.vdd(), circuits::SramMode::Hold,
            circuits::SramSizing{});
        out[1] = measure::measureSnm(hold, 45).cellSnm();
      });

  const auto read = stats::summarize(r.metrics[0]);
  const auto hold = stats::summarize(r.metrics[1]);
  std::printf("6T SRAM (N/P 150/40 nm, pass 100 nm) at Vdd = %.2f V, %d MC "
              "samples\n\n", kit.vdd(), kSamples);
  std::printf("READ SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              read.mean * 1e3, read.stddev * 1e3, read.min * 1e3);
  std::printf("HOLD SNM: mean = %.1f mV  sigma = %.1f mV  min = %.1f mV\n",
              hold.mean * 1e3, hold.stddev * 1e3, hold.min * 1e3);

  const yield::YieldEstimate moderate = yield::yieldOfSamples(
      r.metrics[0], {kSnmFloor, std::nullopt});
  std::printf("\nRead-stability yield (SNM >= %.0f mV): %.2f %%  "
              "[95%% CI %.2f..%.2f]  (%ld/%ld failing)\n",
              kSnmFloor * 1e3, 100.0 * moderate.yield, 100.0 * moderate.lower,
              100.0 * moderate.upper, moderate.total - moderate.passed,
              moderate.total);

  const auto qq = stats::qqAgainstNormal(r.metrics[1]);
  std::printf("HOLD SNM QQ linearity r^2 = %.4f (slightly non-Gaussian, as "
              "in the paper's Fig. 9f)\n", qq.linearity);

  // --- Stage 2: the deep tail via importance sampling ---------------------
  constexpr double kTailFloor = 0.015;  // V; plain MC sees ~no failures here
  constexpr std::size_t kDims = 6 * 5;  // transistors x VS parameters

  const yield::FailureIndicator cellFails =
      [&](const std::vector<double>& z) {
        FixedDeltaProvider provider(kit, z);
        auto fixture = circuits::buildSramButterfly(
            provider, kit.vdd(), circuits::SramMode::Read,
            circuits::SramSizing{});
        return measure::measureSnm(fixture, 45).cellSnm() < kTailFloor;
      };

  // Physics-guided extra directions: READ failures are driven by opposing
  // VT0 shifts of the cross-coupled pair (PD1 vs PD2) and the pass gates.
  std::vector<double> skewPulldowns(kDims, 0.0);
  skewPulldowns[1 * 5 + 0] = 1.0;   // PD1 VT0 up
  skewPulldowns[4 * 5 + 0] = -1.0;  // PD2 VT0 down
  std::vector<double> skewWithPass = skewPulldowns;
  skewWithPass[2 * 5 + 0] = -1.0;   // PG1 VT0 down: stronger read disturb

  std::printf("\nDeep-tail failure probability (READ SNM < %.0f mV):\n",
              kTailFloor * 1e3);
  const std::vector<double> shift = yield::findFailureShift(
      cellFails, kDims, {skewPulldowns, skewWithPass});
  double shiftNorm = 0.0;
  for (double s : shift) shiftNorm += s * s;
  std::printf("  shift found at |z| = %.2f sigma\n", std::sqrt(shiftNorm));

  yield::ImportanceOptions isOpt;
  isOpt.samples = 400;
  isOpt.seed = 99;
  const yield::ImportanceResult is =
      yield::importanceSample(cellFails, shift, isOpt);
  const yield::ImportanceResult bf =
      yield::bruteForceProbability(cellFails, kDims, isOpt);

  std::printf("  importance sampling: P = %.3e  (rel. std. err. %.1f %%, "
              "%d/%d hits)\n", is.probability, 100.0 * is.relStdError,
              is.failingDraws, isOpt.samples);
  std::printf("  brute force, same budget: %d hits -> no usable estimate\n",
              bf.failingDraws);
  std::printf("  equivalent bit-level yield: %.6f %%\n",
              100.0 * (1.0 - is.probability));
  return 0;
}
